#!/usr/bin/env bash
# Builds and runs the tier-1 test suite under ThreadSanitizer and under
# AddressSanitizer+UBSan, in separate build trees (the two cannot be
# combined in one binary). The cluster is genuinely multi-threaded (one
# thread per player + a barrier), so TSan exercises the exchange path —
# including the fault injector's delay queues — for real races.
#
# Usage: tools/sanitize.sh [tsan|asan|all]   (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local name="$1" sanitizers="$2" dir="build-san-$1"
  echo "=== [$name] configure + build ($sanitizers) ==="
  # -DDPRBG_FUZZ=ON: the fuzz targets build (and run via
  # fuzz_corpus_test) under every sanitizer mix, so the check.sh fuzz
  # smoke gate has instrumented binaries ready in build-san-asan.
  cmake -B "$dir" -S . -DDPRBG_SANITIZE="$sanitizers" -DDPRBG_FUZZ=ON \
    >/dev/null
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

case "$mode" in
  tsan) run_suite thread thread ;;
  asan) run_suite asan "address;undefined" ;;
  all)
    run_suite asan "address;undefined"
    run_suite thread thread
    ;;
  *)
    echo "usage: $0 [tsan|asan|all]" >&2
    exit 2
    ;;
esac
echo "sanitize.sh: all requested suites passed"
