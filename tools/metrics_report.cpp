// metrics_report: render a telemetry snapshot (JSONL, common/telemetry.h
// schema) as operator-facing tables, diff two snapshots, and surface the
// per-peer communication "top talkers".
//
// Usage:
//   metrics_report report <snap.jsonl>
//       Two tables: scalar instruments (counters/gauges) and histograms
//       (count, sum, p50/p90/p99/p999).
//   metrics_report diff <old.jsonl> <new.jsonl>
//       Per-instrument deltas (new - old), matched by (name, labels).
//       Purely informational — metrics are rates, not budgets — so the
//       exit code only reflects parse failures.
//   metrics_report top-talkers <snap.jsonl>
//       Per-player communication ranked by bytes, from the
//       net_player_{messages,bytes}_total counters that
//       Cluster::publish_comm_telemetry emits.
//   metrics_report prom <snap.jsonl>
//       Re-emit the snapshot in Prometheus text exposition format.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/telemetry.h"

namespace dprbg {
namespace {

using bench::fmt;

MetricsSnapshot load(const char* path, bool* ok) {
  std::ifstream is(path);
  *ok = static_cast<bool>(is);
  if (!*ok) {
    std::fprintf(stderr, "metrics_report: cannot open %s\n", path);
    return {};
  }
  std::size_t malformed = 0;
  auto snap = read_snapshot(is, &malformed);
  if (malformed != 0) {
    std::fprintf(stderr, "metrics_report: %zu malformed line(s) in %s\n",
                 malformed, path);
  }
  return snap;
}

void print_report(const MetricsSnapshot& snap) {
  bench::Table scalars({"name", "labels", "type", "value"});
  bench::Table hists(
      {"name", "labels", "count", "sum", "p50", "p90", "p99", "p999"});
  std::size_t nscalar = 0;
  std::size_t nhist = 0;
  for (const auto& s : snap.samples) {
    if (s.type == MetricType::kHistogram) {
      hists.row({s.name, s.labels, fmt(s.count), fmt(s.sum), fmt(s.p50),
                 fmt(s.p90), fmt(s.p99), fmt(s.p999)});
      ++nhist;
    } else {
      scalars.row({s.name, s.labels, to_string(s.type),
                   std::to_string(s.value)});
      ++nscalar;
    }
  }
  if (nscalar != 0) scalars.print();
  if (nhist != 0) {
    if (nscalar != 0) std::printf("\n");
    hists.print();
  }
  std::printf("\n%zu instrument(s): %zu scalar, %zu histogram\n",
              snap.samples.size(), nscalar, nhist);
}

// Signed delta as a printable cell ("+12", "-3", "0").
std::string sdelta(std::int64_t from, std::int64_t to) {
  const std::int64_t d = to - from;
  return d > 0 ? "+" + std::to_string(d) : std::to_string(d);
}

int print_diff(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  bench::Table table(
      {"name", "labels", "type", "d.value", "d.count", "d.sum"});
  for (const auto& sa : a.samples) {
    const MetricSample* sb = b.find(sa.name, sa.labels);
    if (sb == nullptr) {
      table.row({sa.name, sa.labels, to_string(sa.type), "(removed)"});
      continue;
    }
    if (sa.type == MetricType::kHistogram) {
      table.row({sa.name, sa.labels, "histogram", "",
                 sdelta(static_cast<std::int64_t>(sa.count),
                        static_cast<std::int64_t>(sb->count)),
                 sdelta(static_cast<std::int64_t>(sa.sum),
                        static_cast<std::int64_t>(sb->sum))});
    } else {
      table.row({sa.name, sa.labels, to_string(sa.type),
                 sdelta(sa.value, sb->value)});
    }
  }
  for (const auto& sb : b.samples) {
    if (a.find(sb.name, sb.labels) == nullptr) {
      table.row({sb.name, sb.labels, to_string(sb.type), "(new)"});
    }
  }
  table.print();
  return 0;
}

// The per-peer comm counters, ranked by bytes — who is loading the wire.
int print_top_talkers(const MetricsSnapshot& snap) {
  struct Talker {
    std::string player;
    std::int64_t messages = 0;
    std::int64_t bytes = 0;
  };
  std::vector<Talker> talkers;
  auto slot = [&talkers](const std::string& labels) -> Talker& {
    for (auto& t : talkers) {
      if (t.player == labels) return t;
    }
    talkers.push_back(Talker{labels, 0, 0});
    return talkers.back();
  };
  for (const auto& s : snap.samples) {
    if (s.name == "net_player_messages_total") {
      slot(s.labels).messages = s.value;
    } else if (s.name == "net_player_bytes_total") {
      slot(s.labels).bytes = s.value;
    }
  }
  if (talkers.empty()) {
    std::printf(
        "no net_player_* counters in snapshot (was "
        "Cluster::publish_comm_telemetry called?)\n");
    return 0;
  }
  std::stable_sort(talkers.begin(), talkers.end(),
                   [](const Talker& x, const Talker& y) {
                     return x.bytes > y.bytes;
                   });
  std::int64_t total_bytes = 0;
  for (const auto& t : talkers) total_bytes += t.bytes;
  bench::Table table({"player", "msgs", "bytes", "share"});
  for (const auto& t : talkers) {
    const double share =
        total_bytes == 0
            ? 0.0
            : 100.0 * static_cast<double>(t.bytes) /
                  static_cast<double>(total_bytes);
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.1f%%", share);
    table.row({t.player, std::to_string(t.messages), std::to_string(t.bytes),
               pct});
  }
  table.print();
  std::printf("\n%zu player(s), %lld bytes total\n", talkers.size(),
              static_cast<long long>(total_bytes));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  metrics_report report <snap.jsonl>\n"
               "  metrics_report diff <old.jsonl> <new.jsonl>\n"
               "  metrics_report top-talkers <snap.jsonl>\n"
               "  metrics_report prom <snap.jsonl>\n");
  return 2;
}

}  // namespace
}  // namespace dprbg

int main(int argc, char** argv) {
  using namespace dprbg;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if ((cmd == "report" || cmd == "top-talkers" || cmd == "prom") &&
      argc == 3) {
    bool ok = false;
    const auto snap = load(argv[2], &ok);
    if (!ok) return 1;
    if (cmd == "report") {
      print_report(snap);
      return 0;
    }
    if (cmd == "top-talkers") return print_top_talkers(snap);
    snap.write_prometheus(std::cout);
    return 0;
  }
  if (cmd == "diff" && argc == 4) {
    bool ok_a = false;
    bool ok_b = false;
    const auto a = load(argv[2], &ok_a);
    const auto b = load(argv[3], &ok_b);
    if (!ok_a || !ok_b) return 1;
    return print_diff(a, b);
  }
  return usage();
}
