#!/usr/bin/env bash
# One-stop pre-merge gate: tier-1 suite, the per-phase cost-regression
# budgets (tests/trace_budget_test.cpp — the paper's lemmas as executable
# budgets), and the sanitizer matrix. The budget test runs again under
# TSan via sanitize.sh, so a data race in the tracer cannot hide behind
# a green plain-mode run.
#
# Usage: tools/check.sh [fast]
#   fast  — skip the sanitizer matrix (tier-1 + budgets only)

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== [check] tier-1: configure + build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "=== [check] tier-1: ctest ==="
(cd build && ctest --output-on-failure -j "$jobs")

echo "=== [check] cost-regression budgets (trace_budget_test) ==="
./build/tests/trace_budget_test

echo "=== [check] pipelined Coin-Gen smoke (bench/pipeline) ==="
# Smoke run of E16: depth 1 must match the serial loop bit-for-bit
# ("serial_match": "yes") and no envelope may cross batches (stale 0).
pipeline_out="$(./build/bench/pipeline --json --smoke)"
echo "$pipeline_out"
echo "$pipeline_out" | grep -q '"serial_match": "yes"' || {
  echo "check.sh: pipeline depth-1 diverged from the serial loop" >&2
  exit 1
}
if echo "$pipeline_out" | grep '"stale"' | grep -qv '"stale": 0'; then
  echo "check.sh: pipeline reported cross-batch stale deliveries" >&2
  exit 1
fi

echo "=== [check] wide-batch kernel gate (zq_simd / block_kernels) ==="
# The SIMD-vs-scalar differentials in both dispatch modes: once with the
# runtime dispatcher free to pick AVX2/PCLMUL, once with
# DPRBG_FORCE_SCALAR=1 pinning every kernel to the portable path. The
# force-scalar rerun is what certifies the scalar fallback actually runs
# green on this host, not just that it exists.
./build/tests/zq_simd_test
./build/tests/block_kernels_test
DPRBG_FORCE_SCALAR=1 ./build/tests/zq_simd_test
DPRBG_FORCE_SCALAR=1 ./build/tests/block_kernels_test
DPRBG_FORCE_SCALAR=1 ./build/tests/gf2_test
DPRBG_FORCE_SCALAR=1 ./build/tests/fft_field_test

echo "=== [check] wide-batch M-sweep smoke (bench/pipeline --sweep-M) ==="
# E20 smoke: at every swept M, depth 1 must match the serial loop
# bit-for-bit and no envelope may cross batches. The bench exits 1
# itself on violations; the greps below double-check the markers.
sweep_out="$(./build/bench/pipeline --json --smoke --sweep-M)"
echo "$sweep_out"
if echo "$sweep_out" | grep '"serial_match"' | grep -v '"serial_match": "n/a"' \
    | grep -qv '"serial_match": "yes"'; then
  echo "check.sh: M-sweep depth-1 diverged from the serial loop" >&2
  exit 1
fi
if echo "$sweep_out" | grep '"stale"' | grep -qv '"stale": 0'; then
  echo "check.sh: M-sweep reported cross-batch stale deliveries" >&2
  exit 1
fi
# Kernel-level differential sweep (field_ops --sweep-M asserts
# SIMD == scalar on every timed buffer and exits 1 on mismatch).
./build/bench/field_ops --sweep-M --smoke --json >/dev/null || {
  echo "check.sh: field_ops kernel sweep differential failed" >&2
  exit 1
}

echo "=== [check] sharded-beacon smoke (bench/beacon) ==="
# Smoke run of E17 at K in {1,2}: honest players must agree on every
# committee's coins ("success": "yes"), no envelope may cross batches
# (stale 0) or committee rosters (foreign 0), and the per-committee
# fault-ledger sum must reconcile with Cluster::faults() (the bench
# exits nonzero itself on any of these).
beacon_out="$(./build/bench/beacon --json --smoke)"
echo "$beacon_out"
if echo "$beacon_out" | grep '"success"' | grep -qv '"success": "yes"'; then
  echo "check.sh: beacon committees disagreed or failed" >&2
  exit 1
fi
if echo "$beacon_out" | grep '"foreign"' | grep -qv '"foreign": 0'; then
  echo "check.sh: beacon reported cross-committee deliveries" >&2
  exit 1
fi

echo "=== [check] degraded-beacon smoke (bench/beacon --crash-committee) ==="
# Smoke run of E18: the last committee crashes after its first batch;
# the bench itself hard-fails unless the crashed committee is evicted,
# the survivors stay unanimous, and the degraded rate clears the
# liveness floor. Double-check the degraded marking here so a silently
# healthy-looking crashed run cannot slip through.
degraded_out="$(./build/bench/beacon --json --smoke --crash-committee)"
echo "$degraded_out"
echo "$degraded_out" | grep -q '"mode": "crashed".*"degraded": "yes"' || {
  echo "check.sh: crashed beacon run not marked degraded" >&2
  exit 1
}
echo "$degraded_out" | grep -q '"mode": "crashed".*"evicted": "yes"' || {
  echo "check.sh: crashed committee was not evicted" >&2
  exit 1
}

echo "=== [check] beacon failover chaos suite ==="
./build/tests/chaos_beacon_test

echo "=== [check] adversarial hardening suite (misbehavior / DoS / wire) ==="
# The stalling-peer DoS scenario (hostage detected, scored, banned;
# survivors bit-for-bit equal to a from-scratch run) plus the wire
# versioning and varint codec suites in the plain build. All four run
# again under the sanitizer matrix via ctest.
./build/tests/misbehavior_test
./build/tests/dos_stall_test
./build/tests/wire_format_test
./build/tests/varint_test

echo "=== [check] telemetry reconciliation gate ==="
# The telemetry unit suite (enable/disable identity, bucket math, the
# 8-thread hammer — the sanitizer matrix reruns it under TSan), then
# both benches' --metrics reconciliation: every snapshot counter must
# equal the cluster's own ledgers EXACTLY, and the beacon gate
# additionally cross-checks the trace layer's per-round comm deltas.
./build/tests/telemetry_test
metrics_dir="$(mktemp -d)"
trap 'rm -rf "$metrics_dir"' EXIT
./build/bench/pipeline --json --smoke --metrics="$metrics_dir/pipeline.jsonl" \
  >/dev/null || {
  echo "check.sh: pipeline telemetry reconciliation failed" >&2
  exit 1
}
./build/bench/beacon --json --smoke --metrics="$metrics_dir/beacon.jsonl" \
  >/dev/null || {
  echo "check.sh: beacon telemetry reconciliation failed" >&2
  exit 1
}
# The snapshots must render cleanly (no malformed lines -> exit 0).
./build/tools/metrics_report report "$metrics_dir/beacon.jsonl" >/dev/null
./build/tools/metrics_report top-talkers "$metrics_dir/beacon.jsonl" >/dev/null
./build/tools/metrics_report diff "$metrics_dir/pipeline.jsonl" \
  "$metrics_dir/beacon.jsonl" >/dev/null

if [[ "$mode" == "full" ]]; then
  echo "=== [check] sanitizer matrix ==="
  tools/sanitize.sh all

  echo "=== [check] fuzz smoke (60s per target under ASan+UBSan) ==="
  # sanitize.sh configured build-san-asan with -DDPRBG_FUZZ=ON, so the
  # fuzz binaries there are address+UB instrumented. Each target replays
  # its checked-in corpus and then mutates from it for the smoke budget;
  # any trap/sanitizer report is a hard failure. Under clang this is
  # coverage-guided libFuzzer; under gcc the standalone driver honors
  # the same flags.
  for target in fuzz_varint fuzz_envelope_header fuzz_protocol_decoders; do
    corpus="fuzz/corpus/${target#fuzz_}"
    ./build-san-asan/fuzz/"$target" -max_total_time=60 -seed=1 "$corpus" || {
      echo "check.sh: fuzz smoke failed for $target" >&2
      exit 1
    }
  done
else
  echo "=== [check] fast mode: sanitizer matrix + fuzz smoke skipped ==="
fi

echo "check.sh: all requested gates passed"
