// trace_report: turn a protocol trace (JSONL, common/trace.h schema) into
// the paper's per-phase cost ledger, and diff two traces to catch cost
// regressions.
//
// Usage:
//   trace_report gen <protocol> <out.jsonl> [seed]
//       Run an n=7, t=1 instance of <protocol> (vss | batch-vss | bitgen |
//       coin-gen) with tracing enabled and write the trace. The run is
//       seeded-deterministic: the same seed always produces the same
//       trace (timing excluded — traces carry no wall-clock).
//   trace_report report <trace.jsonl>
//       Aggregate the trace into a per-(protocol, phase) table:
//       rounds per player, field ops, messages, bytes — the shape of
//       Lemmas 2/4/6/8.
//   trace_report diff <old.jsonl> <new.jsonl>
//       Per-phase deltas (new - old); exits 1 when any phase's rounds
//       changed or any op/comm counter grew, so CI can gate on it.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/trace.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "coin/bitgen.h"
#include "coin/coin_gen.h"
#include "vss/batch_vss.h"
#include "vss/vss.h"

namespace dprbg {
namespace {

using F = GF2_64;
using bench::fmt;

constexpr int kN = 7;
constexpr unsigned kT = 1;
constexpr unsigned kM = 4;  // batch size for batch protocols

// Runs one traced n=7 instance of `protocol`; returns false for an
// unknown protocol name.
bool run_traced(const std::string& protocol, std::uint64_t seed) {
  auto genesis = trusted_dealer_coins<F>(kN, kT, 8, seed);
  Cluster cluster(kN, static_cast<int>(kT), seed);
  Cluster::Program program;
  if (protocol == "vss") {
    program = [&](PartyIo& io) {
      CoinPool<F> pool;
      for (auto& c : genesis[io.id()]) pool.add(std::move(c));
      std::optional<Polynomial<F>> poly;
      if (io.id() == 0) poly = Polynomial<F>::random(kT, io.rng());
      (void)vss_share_and_verify<F>(io, /*dealer=*/0, kT, poly,
                                    pool.take());
    };
  } else if (protocol == "batch-vss") {
    program = [&](PartyIo& io) {
      CoinPool<F> pool;
      for (auto& c : genesis[io.id()]) pool.add(std::move(c));
      std::vector<Polynomial<F>> polys;
      if (io.id() == 0) {
        for (unsigned j = 0; j < kM; ++j) {
          polys.push_back(Polynomial<F>::random(kT, io.rng()));
        }
      }
      (void)batch_vss<F>(io, /*dealer=*/0, kT, kM, polys, pool.take());
    };
  } else if (protocol == "bitgen") {
    program = [&](PartyIo& io) {
      CoinPool<F> pool;
      for (auto& c : genesis[io.id()]) pool.add(std::move(c));
      std::vector<Polynomial<F>> polys;
      for (unsigned j = 0; j < kM; ++j) {
        polys.push_back(Polynomial<F>::random(kT, io.rng()));
      }
      (void)bit_gen_all<F>(io, polys, kM, kT, pool.take());
    };
  } else if (protocol == "coin-gen") {
    program = [&](PartyIo& io) {
      CoinPool<F> pool;
      for (auto& c : genesis[io.id()]) pool.add(std::move(c));
      (void)coin_gen<F>(io, kM, pool);
    };
  } else {
    return false;
  }
  cluster.run(std::vector<Cluster::Program>(kN, program));
  return true;
}

std::vector<TraceEvent> load(const char* path, bool* ok) {
  std::ifstream is(path);
  *ok = static_cast<bool>(is);
  if (!*ok) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path);
    return {};
  }
  std::size_t malformed = 0;
  auto events = read_jsonl(is, &malformed);
  if (malformed != 0) {
    std::fprintf(stderr, "trace_report: %zu malformed line(s) in %s\n",
                 malformed, path);
  }
  return events;
}

void print_report(const std::vector<TraceEvent>& events) {
  const auto phases = aggregate_phases(events);
  bench::Table table({"protocol", "phase", "spans", "players", "rounds",
                      "adds", "muls", "invs", "interps", "msgs", "bytes"});
  for (const auto& p : phases) {
    table.row({p.protocol, p.phase, fmt(p.spans), fmt(p.players),
               fmt(p.rounds), fmt(p.ops.adds), fmt(p.ops.muls),
               fmt(p.ops.invs), fmt(p.ops.interpolations),
               fmt(p.comm.messages), fmt(p.comm.bytes)});
  }
  table.print();
  const FaultCounters faults = sum_fault_events(events);
  if (faults.total() != 0) {
    std::printf("\nfault events: %s\n", to_string(faults).c_str());
  }
  std::size_t points = 0;
  std::size_t decode_fails = 0;
  for (const auto& ev : events) {
    if (ev.kind != TraceEventKind::kPoint) continue;
    ++points;
    if (ev.phase == "decode-fail") ++decode_fails;
  }
  std::printf("\n%zu events (%zu point), %zu decode failure(s)\n",
              events.size(), points, decode_fails);
}

// Signed delta as a printable cell ("+12", "-3", "0").
std::string sdelta(std::uint64_t from, std::uint64_t to) {
  const auto d = static_cast<std::int64_t>(to) - static_cast<std::int64_t>(from);
  return d > 0 ? "+" + std::to_string(d) : std::to_string(d);
}

// The paper result each traced protocol's costs implement (the mapping of
// DESIGN.md §Observability, "phase <-> paper" table). A regressed phase
// is annotated with its lemma so the CI failure names the claim at risk.
std::string lemma_for(const std::string& protocol) {
  if (protocol == "vss") return "Fig. 2, Lemma 2";
  if (protocol == "batch-vss") return "Fig. 3, Lemma 4";
  if (protocol == "bitgen") return "Fig. 4, Lemma 6";
  if (protocol == "coin-gen") return "Fig. 5, Lemma 8";
  if (protocol == "coin-expose") return "Fig. 6, §5";
  if (protocol == "gradecast") return "[14] Grade-Cast";
  if (protocol == "phase-king") return "Phase-King BA";
  return "";
}

int print_diff(const std::vector<TraceEvent>& old_events,
               const std::vector<TraceEvent>& new_events) {
  const auto old_phases = aggregate_phases(old_events);
  const auto new_phases = aggregate_phases(new_events);
  auto find = [](const std::vector<PhaseCost>& v, const PhaseCost& key)
      -> const PhaseCost* {
    for (const auto& p : v) {
      if (p.protocol == key.protocol && p.phase == key.phase) return &p;
    }
    return nullptr;
  };

  bench::Table table({"protocol", "phase", "d.rounds", "d.adds", "d.muls",
                      "d.interps", "d.msgs", "d.bytes", "lemma"});
  bool regressed = false;
  std::vector<std::string> at_risk;  // lemmas of regressed phases, deduped
  auto flag = [&](const std::string& protocol) {
    regressed = true;
    const std::string lemma = lemma_for(protocol);
    if (lemma.empty()) return std::string();
    bool seen = false;
    for (const auto& l : at_risk) seen = seen || l == lemma;
    if (!seen) at_risk.push_back(lemma);
    return lemma;
  };
  auto check = [&](const PhaseCost& a, const PhaseCost& b) {
    std::string lemma;
    if (b.rounds != a.rounds || b.ops.adds > a.ops.adds ||
        b.ops.muls > a.ops.muls ||
        b.ops.interpolations > a.ops.interpolations ||
        b.comm.messages > a.comm.messages || b.comm.bytes > a.comm.bytes) {
      lemma = flag(a.protocol);
    }
    table.row({a.protocol, a.phase, sdelta(a.rounds, b.rounds),
               sdelta(a.ops.adds, b.ops.adds),
               sdelta(a.ops.muls, b.ops.muls),
               sdelta(a.ops.interpolations, b.ops.interpolations),
               sdelta(a.comm.messages, b.comm.messages),
               sdelta(a.comm.bytes, b.comm.bytes), lemma});
  };
  for (const auto& a : old_phases) {
    if (const PhaseCost* b = find(new_phases, a)) {
      check(a, *b);
    } else {
      table.row({a.protocol, a.phase, "(removed)"});
    }
  }
  for (const auto& b : new_phases) {
    if (find(old_phases, b) == nullptr) {
      table.row(
          {b.protocol, b.phase, "(new)", "", "", "", "", "", flag(b.protocol)});
    }
  }
  table.print();
  if (regressed) {
    std::string lemmas;
    for (const auto& l : at_risk) {
      if (!lemmas.empty()) lemmas += "; ";
      lemmas += l;
    }
    std::printf("\nREGRESSION: rounds changed or a cost grew%s%s\n",
                lemmas.empty() ? "" : " — claims at risk: ",
                lemmas.c_str());
  } else {
    std::printf("\nno cost regressions\n");
  }
  return regressed ? 1 : 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_report gen <vss|batch-vss|bitgen|coin-gen> "
               "<out.jsonl> [seed]\n"
               "  trace_report report <trace.jsonl>\n"
               "  trace_report diff <old.jsonl> <new.jsonl>\n");
  return 2;
}

}  // namespace
}  // namespace dprbg

int main(int argc, char** argv) {
  using namespace dprbg;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "gen" && (argc == 4 || argc == 5)) {
    const std::string protocol = argv[2];
    const std::uint64_t seed =
        argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 42;
    tracer().clear();
    tracer().set_enabled(true);
    if (!run_traced(protocol, seed)) {
      std::fprintf(stderr, "trace_report: unknown protocol %s\n",
                   protocol.c_str());
      return 2;
    }
    tracer().set_enabled(false);
    if (!tracer().write_jsonl_file(argv[3])) {
      std::fprintf(stderr, "trace_report: cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("wrote %zu events to %s (protocol=%s n=%d t=%u seed=%llu)\n",
                tracer().size(), argv[3], protocol.c_str(), kN, kT,
                static_cast<unsigned long long>(seed));
    return 0;
  }
  if (cmd == "report" && argc == 3) {
    bool ok = false;
    const auto events = load(argv[2], &ok);
    if (!ok) return 1;
    print_report(events);
    return 0;
  }
  if (cmd == "diff" && argc == 4) {
    bool ok_a = false;
    bool ok_b = false;
    const auto a = load(argv[2], &ok_a);
    const auto b = load(argv[3], &ok_b);
    if (!ok_a || !ok_b) return 1;
    return print_diff(a, b);
  }
  return usage();
}
