// Tests for the deterministic King-algorithm Byzantine agreement:
// validity, agreement under crash and Byzantine faults, vote-flipping and
// king-corruption adversaries.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ba/phase_king.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

struct BaRun {
  std::vector<int> decisions;  // -1 for faulty/no decision
};

BaRun run_ba(int n, int t, std::uint64_t seed, const std::vector<int>& inputs,
             const std::vector<int>& faulty = {},
             const Cluster::Program& adversary = nullptr) {
  BaRun run;
  run.decisions.assign(n, -1);
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        run.decisions[io.id()] = phase_king_ba(io, inputs[io.id()]);
      },
      faulty, adversary);
  return run;
}

void expect_agreement(const BaRun& run, const std::set<int>& faulty) {
  int decided = -1;
  for (std::size_t i = 0; i < run.decisions.size(); ++i) {
    if (faulty.count(static_cast<int>(i))) continue;
    ASSERT_NE(run.decisions[i], -1) << "player " << i << " undecided";
    if (decided == -1) decided = run.decisions[i];
    EXPECT_EQ(run.decisions[i], decided) << "player " << i;
  }
}

TEST(PhaseKingTest, ValidityAllZero) {
  const auto run = run_ba(9, 2, 1, std::vector<int>(9, 0));
  expect_agreement(run, {});
  EXPECT_EQ(run.decisions[0], 0);
}

TEST(PhaseKingTest, ValidityAllOne) {
  const auto run = run_ba(9, 2, 2, std::vector<int>(9, 1));
  expect_agreement(run, {});
  EXPECT_EQ(run.decisions[0], 1);
}

TEST(PhaseKingTest, MixedInputsStillAgree) {
  std::vector<int> inputs = {0, 1, 0, 1, 0, 1, 0, 1, 0};
  const auto run = run_ba(9, 2, 3, inputs);
  expect_agreement(run, {});
}

TEST(PhaseKingTest, ValidityDespiteCrashes) {
  std::vector<int> inputs(9, 1);
  const auto run = run_ba(9, 2, 4, inputs, {0, 8}, nullptr);
  expect_agreement(run, {0, 8});
  for (int i = 1; i < 8; ++i) EXPECT_EQ(run.decisions[i], 1);
}

TEST(PhaseKingTest, ByzantineVoteFlippersCannotBreakAgreement) {
  // Faulty players send opposite votes to different players each round,
  // and garbage as kings.
  const int n = 9, t = 2;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    std::vector<int> inputs(n);
    for (int i = 0; i < n; ++i) inputs[i] = (i + seed) % 2;
    BaRun run;
    run.decisions.assign(n, -1);
    Cluster cluster(n, t, 10 + seed);
    cluster.run(
        [&](PartyIo& io) {
          run.decisions[io.id()] = phase_king_ba(io, inputs[io.id()]);
        },
        {2, 6},
        [&](PartyIo& io) {
          for (int phase = 0; phase <= io.t(); ++phase) {
            const auto vote_tag =
                make_tag(ProtoId::kPhaseKing, 0, 2 * phase);
            const auto king_tag =
                make_tag(ProtoId::kPhaseKing, 0, 2 * phase + 1);
            for (int to = 0; to < io.n(); ++to) {
              io.send(to, vote_tag,
                      {static_cast<std::uint8_t>((to + phase) % 2)});
            }
            io.sync();
            // Equivocate as king too (only phase==id matters).
            for (int to = 0; to < io.n(); ++to) {
              io.send(to, king_tag, {static_cast<std::uint8_t>(to % 2)});
            }
            io.sync();
          }
        });
    expect_agreement(run, {2, 6});
  }
}

TEST(PhaseKingTest, UnanimousHonestInputWinsDespiteByzantine) {
  // Validity in the presence of active liars: all honest input 1.
  const int n = 9, t = 2;
  BaRun run;
  run.decisions.assign(n, -1);
  Cluster cluster(n, t, 20);
  cluster.run(
      [&](PartyIo& io) {
        run.decisions[io.id()] = phase_king_ba(io, 1);
      },
      {0, 1},
      [&](PartyIo& io) {
        for (int phase = 0; phase <= io.t(); ++phase) {
          io.send_all(make_tag(ProtoId::kPhaseKing, 0, 2 * phase), {0});
          io.sync();
          io.send_all(make_tag(ProtoId::kPhaseKing, 0, 2 * phase + 1), {0});
          io.sync();
        }
      });
  for (int i = 2; i < n; ++i) EXPECT_EQ(run.decisions[i], 1) << i;
}

TEST(PhaseKingTest, ManyConfigurations) {
  // Parameter sweep: n in {5, 9, 13}, t maximal with n > 4t.
  for (int t : {1, 2, 3}) {
    const int n = 4 * t + 1;
    std::vector<int> inputs(n);
    for (int i = 0; i < n; ++i) inputs[i] = i % 2;
    const auto run = run_ba(n, t, 30 + t, inputs);
    expect_agreement(run, {});
  }
}

TEST(PhaseKingTest, SequentialInstancesIndependent) {
  const int n = 5, t = 1;
  std::vector<int> first(n, -1), second(n, -1);
  Cluster cluster(n, t, 40);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    first[io.id()] = phase_king_ba(io, 1, /*instance=*/0);
    second[io.id()] = phase_king_ba(io, 0, /*instance=*/1);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(first[i], 1);
    EXPECT_EQ(second[i], 0);
  }
}

}  // namespace
}  // namespace dprbg
