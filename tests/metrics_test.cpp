// Direct coverage for common/metrics.h: counter algebra, MetricsScope
// delta capture (including nested scopes), and to_string round-trips.
// These counters are the substance of every cost table in EXPERIMENTS.md,
// so their arithmetic is locked down here.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>

#include "common/metrics.h"

namespace dprbg {
namespace {

TEST(MetricsTest, FieldCountersPlusEqualsAndMinus) {
  FieldCounters a{1, 2, 3, 4};
  const FieldCounters b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.adds, 11u);
  EXPECT_EQ(a.muls, 22u);
  EXPECT_EQ(a.invs, 33u);
  EXPECT_EQ(a.interpolations, 44u);

  const FieldCounters d = a - b;
  EXPECT_EQ(d.adds, 1u);
  EXPECT_EQ(d.muls, 2u);
  EXPECT_EQ(d.invs, 3u);
  EXPECT_EQ(d.interpolations, 4u);
}

TEST(MetricsTest, CommCountersPlusEqualsAndMinus) {
  CommCounters a{5, 500, 2};
  const CommCounters b{3, 300, 1};
  a += b;
  EXPECT_EQ(a.messages, 8u);
  EXPECT_EQ(a.bytes, 800u);
  EXPECT_EQ(a.rounds, 3u);
  const CommCounters d = a - b;
  EXPECT_EQ(d.messages, 5u);
  EXPECT_EQ(d.bytes, 500u);
  EXPECT_EQ(d.rounds, 2u);
}

TEST(MetricsTest, FaultCountersTotalAndAlgebra) {
  FaultCounters a{1, 2, 3, 4};
  EXPECT_EQ(a.total(), 10u);
  const FaultCounters b{1, 1, 1, 1};
  a += b;
  EXPECT_EQ(a.total(), 14u);
  const FaultCounters d = a - b;
  EXPECT_EQ(d.dropped, 1u);
  EXPECT_EQ(d.delayed, 2u);
  EXPECT_EQ(d.duplicated, 3u);
  EXPECT_EQ(d.corrupted, 4u);
  EXPECT_EQ(FaultCounters{}.total(), 0u);
}

TEST(MetricsTest, CountHooksBumpThreadLocalCounters) {
  const FieldCounters before = field_counters();
  count_add();
  count_add();
  count_mul();
  count_inv();
  count_interpolation();
  const FieldCounters delta = field_counters() - before;
  EXPECT_EQ(delta.adds, 2u);
  EXPECT_EQ(delta.muls, 1u);
  EXPECT_EQ(delta.invs, 1u);
  EXPECT_EQ(delta.interpolations, 1u);
}

TEST(MetricsTest, MetricsScopeCapturesExactDelta) {
  MetricsScope scope;
  count_add();
  count_mul();
  count_mul();
  const FieldCounters d = scope.delta();
  EXPECT_EQ(d.adds, 1u);
  EXPECT_EQ(d.muls, 2u);
  EXPECT_EQ(d.invs, 0u);
  EXPECT_EQ(d.interpolations, 0u);
}

TEST(MetricsTest, NestedScopesSeeOnlyTheirOwnWindow) {
  MetricsScope outer;
  count_add();
  {
    MetricsScope inner;
    count_mul();
    count_interpolation();
    const FieldCounters di = inner.delta();
    EXPECT_EQ(di.adds, 0u);  // the outer add predates the inner scope
    EXPECT_EQ(di.muls, 1u);
    EXPECT_EQ(di.interpolations, 1u);
  }
  count_add();
  const FieldCounters d = outer.delta();
  EXPECT_EQ(d.adds, 2u);  // outer sees its own plus the nested window
  EXPECT_EQ(d.muls, 1u);
  EXPECT_EQ(d.interpolations, 1u);
}

// to_string must stay machine-recoverable: the chaos harness and
// EXPERIMENTS.md quote these lines, and trace tooling greps them.
TEST(MetricsTest, FieldCountersToStringRoundTrips) {
  const FieldCounters c{12, 34, 56, 78};
  FieldCounters parsed;
  ASSERT_EQ(std::sscanf(to_string(c).c_str(),
                        "adds=%" SCNu64 " muls=%" SCNu64 " invs=%" SCNu64
                        " interps=%" SCNu64,
                        &parsed.adds, &parsed.muls, &parsed.invs,
                        &parsed.interpolations),
            4);
  EXPECT_EQ(parsed.adds, c.adds);
  EXPECT_EQ(parsed.muls, c.muls);
  EXPECT_EQ(parsed.invs, c.invs);
  EXPECT_EQ(parsed.interpolations, c.interpolations);
}

TEST(MetricsTest, CommCountersToStringRoundTrips) {
  const CommCounters c{7, 890, 12};
  CommCounters parsed;
  ASSERT_EQ(std::sscanf(to_string(c).c_str(),
                        "msgs=%" SCNu64 " bytes=%" SCNu64 " rounds=%" SCNu64,
                        &parsed.messages, &parsed.bytes, &parsed.rounds),
            3);
  EXPECT_EQ(parsed.messages, c.messages);
  EXPECT_EQ(parsed.bytes, c.bytes);
  EXPECT_EQ(parsed.rounds, c.rounds);
}

TEST(MetricsTest, FaultCountersToStringRoundTrips) {
  const FaultCounters c{1, 22, 333, 4444};
  FaultCounters parsed;
  ASSERT_EQ(std::sscanf(to_string(c).c_str(),
                        "dropped=%" SCNu64 " delayed=%" SCNu64
                        " duplicated=%" SCNu64 " corrupted=%" SCNu64,
                        &parsed.dropped, &parsed.delayed, &parsed.duplicated,
                        &parsed.corrupted),
            4);
  EXPECT_EQ(parsed.dropped, c.dropped);
  EXPECT_EQ(parsed.delayed, c.delayed);
  EXPECT_EQ(parsed.duplicated, c.duplicated);
  EXPECT_EQ(parsed.corrupted, c.corrupted);
}

}  // namespace
}  // namespace dprbg
