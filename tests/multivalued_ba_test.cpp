// Tests for multivalued BA (Turpin-Coan) and broadcast-from-BA.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ba/multivalued.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

TEST(MultivaluedBaTest, ValidityUnanimousInput) {
  const int n = 9, t = 2;
  const auto value = bytes({0xDE, 0xAD, 0xBE, 0xEF});
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 1);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    results[io.id()] = multivalued_ba(io, value);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(results[i].from_inputs);
    EXPECT_EQ(results[i].value, value);
  }
}

TEST(MultivaluedBaTest, SplitInputsAgreeOnSomething) {
  const int n = 9, t = 2;
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 2);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    results[io.id()] = multivalued_ba(
        io, bytes({static_cast<std::uint8_t>(io.id() % 3)}),
        /*fallback=*/bytes({0xFF}));
  }));
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(results[i].value, results[0].value) << i;
    EXPECT_EQ(results[i].from_inputs, results[0].from_inputs);
  }
  // With a 3-way split no value is proper: fallback everywhere.
  EXPECT_EQ(results[0].value, bytes({0xFF}));
}

TEST(MultivaluedBaTest, SupermajoritySurvivesByzantineLiars) {
  const int n = 9, t = 2;
  const auto value = bytes({0x42});
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 3);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = multivalued_ba(io, value, bytes({0x00}));
      },
      {3, 7},
      [&](PartyIo& io) {
        // Lie in both exchange rounds, then vote 0 in every BA round.
        io.send_all(make_tag(ProtoId::kRandomizedBa, 0, 40), {0x13});
        io.sync();
        io.send_all(make_tag(ProtoId::kRandomizedBa, 0, 41), {1, 0x13});
        io.sync();
        for (int phase = 0; phase <= io.t(); ++phase) {
          io.send_all(make_tag(ProtoId::kPhaseKing, 0, 2 * phase), {0});
          io.sync();
          io.send_all(make_tag(ProtoId::kPhaseKing, 0, 2 * phase + 1), {0});
          io.sync();
        }
      });
  for (int i = 0; i < n; ++i) {
    if (i == 3 || i == 7) continue;
    EXPECT_TRUE(results[i].from_inputs) << i;
    EXPECT_EQ(results[i].value, value) << i;
  }
}

TEST(MultivaluedBaTest, EmptyValueIsLegal) {
  const int n = 5, t = 1;
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 4);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    results[io.id()] = multivalued_ba(io, {}, bytes({0xEE}));
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(results[i].from_inputs);
    EXPECT_TRUE(results[i].value.empty());
  }
}

TEST(BroadcastViaBaTest, HonestSenderReachesEveryone) {
  const int n = 9, t = 2;
  const auto value = bytes({1, 2, 3, 4, 5});
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 5);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    results[io.id()] = broadcast_via_ba(io, /*sender=*/4, value);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(results[i].value, value) << i;
  }
}

TEST(BroadcastViaBaTest, EquivocatingSenderCannotSplit) {
  const int n = 9, t = 2;
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 6);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = broadcast_via_ba(io, 0, {});
      },
      {0},
      [&](PartyIo& io) {
        // Send a different value to each half, then participate in the
        // agreement rounds with more lies.
        const auto tag = make_tag(ProtoId::kRandomizedBa, 0, 42);
        for (int to = 0; to < io.n(); ++to) {
          io.send(to, tag, bytes({static_cast<std::uint8_t>(to % 2)}));
        }
        io.sync();
        io.sync();  // round 1 of multivalued (silent)
        io.sync();  // round 2 of multivalued (silent)
        for (int phase = 0; phase <= io.t(); ++phase) {
          io.sync();
          io.sync();
        }
      });
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(results[i].value, results[1].value) << i;
  }
}

TEST(BroadcastViaBaTest, SilentSenderYieldsFallbackEverywhere) {
  const int n = 9, t = 2;
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 7);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = broadcast_via_ba(io, 0, {});
      },
      {0}, nullptr);
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(results[i].value, results[1].value);
  }
}

TEST(MultivaluedBaTest, SequentialInstancesIndependent) {
  const int n = 5, t = 1;
  std::vector<MultivaluedResult> first(n), second(n);
  Cluster cluster(n, t, 8);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    first[io.id()] = multivalued_ba(io, bytes({1}), {}, 0);
    second[io.id()] = multivalued_ba(io, bytes({2}), {}, 1);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(first[i].value, bytes({1}));
    EXPECT_EQ(second[i].value, bytes({2}));
  }
}

}  // namespace
}  // namespace dprbg
