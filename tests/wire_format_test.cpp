// Versioned wire framing (net/msg.h) and the Grade-Cast echo layouts
// (gradecast/gradecast.h): v0 stays bit-for-bit the historical format,
// v1 round-trips canonically and measurably shrinks echo bytes at small
// field values, and protocol results are identical under either framing.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serial.h"
#include "common/trace.h"
#include "gradecast/gradecast.h"
#include "gtest/gtest.h"
#include "net/cluster.h"
#include "net/msg.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

// Every test leaves the process default at v0 (the tier-1 contract).
class WireFormatTest : public ::testing::Test {
 protected:
  void TearDown() override { set_wire_version(WireVersion::kV0); }
};

EnvelopeHeader sample_header() {
  EnvelopeHeader h;
  h.from = 3;
  h.tag = make_tag(ProtoId::kGradeCast, 2, 1);
  h.batch = 7;
  h.body_len = 96;
  return h;
}

TEST_F(WireFormatTest, V0HeaderGoldenBytes) {
  // The exact 14-byte little-endian layout charged as kHeaderBytes since
  // PR 1 — pinned so wire versioning can never silently reframe v0.
  ByteWriter w;
  encode_envelope_header(w, sample_header(), WireVersion::kV0);
  const std::vector<std::uint8_t> expect{
      0x03, 0x00, 0x00, 0x00,  // from  = 3        (u32)
      0x10, 0x20, 0x00, 0x06,  // tag               (u32, proto kGradeCast)
      0x07, 0x00,              // batch = 7        (u16)
      0x60, 0x00, 0x00, 0x00,  // body_len = 96    (u32)
  };
  EXPECT_EQ(w.data(), expect);
  EXPECT_EQ(w.size(), kV0HeaderBytes);
  EXPECT_EQ(envelope_header_bytes(sample_header(), WireVersion::kV0),
            kV0HeaderBytes);
}

TEST_F(WireFormatTest, V1HeaderGoldenBytesAndShorter) {
  ByteWriter w;
  encode_envelope_header(w, sample_header(), WireVersion::kV1);
  // tag 0x06002010 rotates to 0x00201006 (proto byte low) and varints to
  // 4 bytes; from/batch/body_len are single-byte varints.
  const std::vector<std::uint8_t> expect{
      0x10,                    // version 1, flags 0
      0x03,                    // from = 3
      0x86, 0xA0, 0x80, 0x01,  // wire_tag(tag) = 0x00201006
      0x07,                    // batch = 7
      0x60,                    // body_len = 96
  };
  EXPECT_EQ(w.data(), expect);
  EXPECT_LT(w.size(), kV0HeaderBytes);
  EXPECT_EQ(envelope_header_bytes(sample_header(), WireVersion::kV1),
            w.size());
}

TEST_F(WireFormatTest, HeadersRoundTripBothVersions) {
  Chacha rng(0xC0FFEE, 1);
  for (int i = 0; i < 2000; ++i) {
    EnvelopeHeader h;
    h.from = static_cast<std::uint32_t>(rng.next_u64() % 1000);
    h.tag = static_cast<std::uint32_t>(rng.next_u64());
    h.batch = static_cast<std::uint32_t>(rng.next_u64() % 0x10000);
    h.body_len = static_cast<std::uint32_t>(rng.next_u64());
    for (const WireVersion v : {WireVersion::kV0, WireVersion::kV1}) {
      ByteWriter w;
      encode_envelope_header(w, h, v);
      ASSERT_EQ(w.size(), envelope_header_bytes(h, v));
      ByteReader r(w.data());
      const auto back = decode_envelope_header(r, v);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(back->from, h.from);
      EXPECT_EQ(back->tag, h.tag);
      EXPECT_EQ(back->batch, h.batch);
      EXPECT_EQ(back->body_len, h.body_len);
      EXPECT_TRUE(r.done());
    }
  }
}

TEST_F(WireFormatTest, V0StaysDecodableWhileProcessRunsV1) {
  // "Legacy framing kept decodable": the decoder takes the version
  // explicitly, so a v1 process still reads v0 transcripts.
  ByteWriter w;
  encode_envelope_header(w, sample_header(), WireVersion::kV0);
  set_wire_version(WireVersion::kV1);
  ByteReader r(w.data());
  const auto h = decode_envelope_header(r, WireVersion::kV0);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->tag, sample_header().tag);
  EXPECT_TRUE(r.done());
}

TEST_F(WireFormatTest, V1RejectsMalformedHeaders) {
  ByteWriter good;
  encode_envelope_header(good, sample_header(), WireVersion::kV1);
  // Truncation: every strict prefix fails.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<std::uint8_t> prefix(good.data().begin(),
                                     good.data().begin() + cut);
    ByteReader r(prefix);
    EXPECT_FALSE(decode_envelope_header(r, WireVersion::kV1).has_value())
        << "cut " << cut;
  }
  // Nonzero reserved flags.
  std::vector<std::uint8_t> bad_flags = good.data();
  bad_flags[0] = 0x13;
  {
    ByteReader r(bad_flags);
    EXPECT_FALSE(decode_envelope_header(r, WireVersion::kV1).has_value());
  }
  // Wrong version nibble.
  std::vector<std::uint8_t> bad_version = good.data();
  bad_version[0] = 0x20;
  {
    ByteReader r(bad_version);
    EXPECT_FALSE(decode_envelope_header(r, WireVersion::kV1).has_value());
  }
  // Overlong varint in the sender field.
  std::vector<std::uint8_t> overlong{0x10, 0x83, 0x00, 0x01, 0x02, 0x03};
  {
    ByteReader r(overlong);
    EXPECT_FALSE(decode_envelope_header(r, WireVersion::kV1).has_value());
  }
}

TEST_F(WireFormatTest, TagRotationIsLossless) {
  Chacha rng(0x7A6, 2);
  for (int i = 0; i < 1000; ++i) {
    const auto tag = static_cast<std::uint32_t>(rng.next_u64());
    EXPECT_EQ(unwire_tag(wire_tag(tag)), tag);
  }
  // The rotation puts the proto byte low: a bare proto tag is tiny.
  const std::uint32_t bare = make_tag(ProtoId::kGradeCast, 0, 0);
  EXPECT_EQ(varint_size(wire_tag(bare)), 1u);
}

TEST_F(WireFormatTest, EchoCodecV1RoundTripsAndShrinks) {
  using gradecast_detail::MaybeValue;
  std::vector<MaybeValue> per_sender(7);
  per_sender[0] = std::vector<std::uint8_t>{1, 2};        // GF(2^16)-sized
  per_sender[2] = std::vector<std::uint8_t>(8, 0xAB);     // GF(2^64)-sized
  per_sender[3] = std::vector<std::uint8_t>{};            // present, empty
  per_sender[6] = std::vector<std::uint8_t>(200, 0x42);   // 2-byte varint

  const auto v0 = gradecast_detail::encode_echoes(per_sender,
                                                  WireVersion::kV0);
  const auto v1 = gradecast_detail::encode_echoes(per_sender,
                                                  WireVersion::kV1);
  // v0: 5 bytes/sender overhead; v1: 1 byte for absent or small, 2 for
  // the 200-byte value.
  EXPECT_EQ(v0.size(), 7 * 5 + 2 + 8 + 0 + 200);
  EXPECT_EQ(v1.size(), 6 * 1 + 2 + 2 + 8 + 0 + 200);
  EXPECT_LT(v1.size(), v0.size());

  const auto d0 =
      gradecast_detail::decode_echoes(v0, 7, 1u << 10, WireVersion::kV0);
  const auto d1 =
      gradecast_detail::decode_echoes(v1, 7, 1u << 10, WireVersion::kV1);
  ASSERT_TRUE(d0.has_value());
  ASSERT_TRUE(d1.has_value());
  for (int s = 0; s < 7; ++s) {
    EXPECT_EQ((*d0)[s], per_sender[s]) << "sender " << s;
    EXPECT_EQ((*d1)[s], per_sender[s]) << "sender " << s;
  }
  // Cross-version decoding fails shape validation rather than
  // misinterpreting (v1 bytes are far too short for v0's minimum).
  EXPECT_FALSE(gradecast_detail::decode_echoes(v1, 7, 1u << 10,
                                               WireVersion::kV0)
                   .has_value());
}

TEST_F(WireFormatTest, EchoV1RejectsOversizeAndTrailing) {
  using gradecast_detail::MaybeValue;
  std::vector<MaybeValue> per_sender(2);
  per_sender[0] = std::vector<std::uint8_t>(16, 1);
  auto bytes = gradecast_detail::encode_echoes(per_sender, WireVersion::kV1);
  // Cap below the value size: rejected before allocation.
  EXPECT_FALSE(gradecast_detail::decode_echoes(bytes, 2, 8,
                                               WireVersion::kV1)
                   .has_value());
  // Trailing garbage: rejected by the done() check.
  bytes.push_back(0x00);
  EXPECT_FALSE(gradecast_detail::decode_echoes(bytes, 2, 1u << 10,
                                               WireVersion::kV1)
                   .has_value());
  // Key varint overlong: rejected by canonical decoding.
  const std::vector<std::uint8_t> overlong{0x80, 0x00, 0x00};
  EXPECT_FALSE(gradecast_detail::decode_echoes(overlong, 2, 1u << 10,
                                               WireVersion::kV1)
                   .has_value());
}

// Runs a 3-round all-sender Grade-Cast on a fresh cluster and returns
// (results at every player, echo-phase bytes, total comm bytes).
struct GradeCastRun {
  std::vector<std::vector<GradeCastResult>> results;
  std::uint64_t echo_bytes = 0;
  std::uint64_t total_bytes = 0;
};

GradeCastRun run_gradecast(WireVersion v) {
  set_wire_version(v);
  constexpr int kN = 7;
  constexpr int kT = 2;
  Cluster cluster(kN, kT, /*seed=*/0x6C0DE);
  GradeCastRun out;
  out.results.resize(kN);
  tracer().set_enabled(true);
  tracer().clear();
  cluster.run([&](PartyIo& io) {
    // Small values: two bytes, the size a GF(2^16) share would have —
    // where the 5-byte v0 echo overhead dominates.
    const std::vector<std::uint8_t> mine{
        static_cast<std::uint8_t>(io.id()),
        static_cast<std::uint8_t>(io.id() + 100)};
    out.results[io.id()] = grade_cast_all(io, mine);
  }, {}, nullptr);
  for (const TraceEvent& ev : tracer().events()) {
    if (ev.protocol == "gradecast" &&
        (ev.phase == "echo" || ev.phase == "support")) {
      out.echo_bytes += ev.comm.bytes;
    }
  }
  tracer().set_enabled(false);
  tracer().clear();
  out.total_bytes = cluster.comm().bytes;
  set_wire_version(WireVersion::kV0);
  return out;
}

TEST_F(WireFormatTest, GradeCastIdenticalResultsFewerBytesUnderV1) {
  const GradeCastRun r0 = run_gradecast(WireVersion::kV0);
  const GradeCastRun r1 = run_gradecast(WireVersion::kV1);
  // Bit-for-bit identical protocol outcome...
  ASSERT_EQ(r0.results.size(), r1.results.size());
  for (std::size_t p = 0; p < r0.results.size(); ++p) {
    ASSERT_EQ(r0.results[p].size(), r1.results[p].size());
    for (std::size_t s = 0; s < r0.results[p].size(); ++s) {
      EXPECT_EQ(r0.results[p][s].value, r1.results[p][s].value);
      EXPECT_EQ(r0.results[p][s].confidence, r1.results[p][s].confidence);
      EXPECT_EQ(r0.results[p][s].confidence, 2);  // all honest senders
    }
  }
  // ... at measurably fewer bytes: the echo+support phases carry 7
  // entries x 5 bytes of v0 overhead per message vs ~1 byte under v1,
  // and every envelope header shrinks from 14 bytes to ~6.
  EXPECT_GT(r0.echo_bytes, 0u);
  EXPECT_LT(r1.echo_bytes, r0.echo_bytes);
  EXPECT_LT(r1.total_bytes, r0.total_bytes);
  // The echo layout alone saves at least 4 bytes/sender-entry on most
  // entries; assert a conservative floor (>25% off the echo phases).
  EXPECT_LT(r1.echo_bytes * 4, r0.echo_bytes * 3);
}

}  // namespace
}  // namespace dprbg
