// Committee/Endpoint abstraction (net/committee.h).
//
// The load-bearing claim: the identity committee (committee #0, all
// players, streams unshifted) is bit-for-bit the raw cluster — same
// protocol outputs, same message/byte/round totals, same fault effects —
// so lifting every protocol onto the NetEndpoint concept costs nothing
// in the single-committee case. The remaining tests cover what committees
// add: roster-scoped barriers (disjoint committees progress
// independently), per-committee fault plans and ledgers reconciling
// exactly with the cluster totals, and the foreign-roster backstop.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "beacon/beacon.h"
#include "chaos_util.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "coin/coin_pipeline.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "net/committee.h"
#include "net/fault.h"
#include "vss/vss.h"

namespace dprbg {
namespace {

using F = GF2_64;

constexpr int kN = 7;
constexpr unsigned kT = 1;
constexpr unsigned kM = 2;
constexpr unsigned kBatches = 4;
constexpr std::uint64_t kSeed = 777;

struct RunOutcome {
  std::vector<PipelineResult<F>> results;  // per player
  std::vector<std::optional<F>> exposed;   // per player, first coin
  CommCounters comm;
  std::uint64_t faults = 0;
  std::uint64_t stale = 0;
  std::uint64_t foreign = 0;
};

// The shared workload: a depth-2 pipelined Coin-Gen run plus one
// exposure on the root stream — exercises root handles, per-batch
// instances, sync, rng, and comm accounting.
template <typename Io>
void workload(Io& io, std::vector<std::vector<SealedCoin<F>>>& genesis,
              RunOutcome& out) {
  CoinPool<F> pool;
  for (auto& c : genesis[io.id()]) pool.add(std::move(c));
  PipelineOptions opts;
  opts.depth = 2;
  out.results[io.id()] = pipelined_coin_gen<F>(io, kM, pool, kBatches, opts);
  const auto& first = out.results[io.id()].batches[0];
  if (first.success) {
    const auto sealed = first.sealed_coins(kT);
    const SealedCoin<F> coin =
        sealed.empty() ? SealedCoin<F>{std::nullopt, kT} : sealed[0];
    out.exposed[io.id()] = coin_expose<F>(io, coin, /*instance=*/100);
  }
}

RunOutcome run_raw(std::shared_ptr<FaultInjector> injector = nullptr) {
  auto genesis = trusted_dealer_coins<F>(kN, kT, 32, kSeed);
  RunOutcome out;
  out.results.resize(kN);
  out.exposed.resize(kN);
  Cluster cluster(kN, static_cast<int>(kT), kSeed);
  if (injector) cluster.set_fault_injector(std::move(injector));
  cluster.run(std::vector<Cluster::Program>(
      kN, [&](PartyIo& io) { workload(io, genesis, out); }));
  out.comm = cluster.comm();
  out.faults = cluster.faults().total();
  out.stale = cluster.stale_rejections();
  out.foreign = cluster.foreign_rejections();
  return out;
}

RunOutcome run_identity_committee(std::optional<FaultPlan> plan = {}) {
  auto genesis = trusted_dealer_coins<F>(kN, kT, 32, kSeed);
  RunOutcome out;
  out.results.resize(kN);
  out.exposed.resize(kN);
  Cluster cluster(kN, static_cast<int>(kT), kSeed);
  Committee com(cluster);
  if (plan) com.set_fault_injector(std::move(*plan));
  cluster.run(std::vector<Cluster::Program>(kN, [&](PartyIo& io) {
    Endpoint& ep = com.endpoint(io);
    workload(ep, genesis, out);
  }));
  out.comm = cluster.comm();
  out.faults = cluster.faults().total();
  out.stale = cluster.stale_rejections();
  out.foreign = cluster.foreign_rejections();
  return out;
}

void expect_identical(const RunOutcome& a, const RunOutcome& b) {
  for (int p = 0; p < kN; ++p) {
    ASSERT_EQ(a.results[p].batches.size(), b.results[p].batches.size());
    for (unsigned i = 0; i < kBatches; ++i) {
      const auto& x = a.results[p].batches[i];
      const auto& y = b.results[p].batches[i];
      SCOPED_TRACE("player " + std::to_string(p) + " batch " +
                   std::to_string(i));
      EXPECT_EQ(x.success, y.success);
      EXPECT_EQ(x.clique, y.clique);
      EXPECT_EQ(x.summed_dealers, y.summed_dealers);
      EXPECT_EQ(x.qualified, y.qualified);
      EXPECT_EQ(x.iterations, y.iterations);
      EXPECT_EQ(x.seed_coins_used, y.seed_coins_used);
      ASSERT_EQ(x.coin_shares.size(), y.coin_shares.size());
      for (std::size_t h = 0; h < x.coin_shares.size(); ++h) {
        EXPECT_EQ(x.coin_shares[h], y.coin_shares[h]);
      }
    }
    EXPECT_EQ(a.exposed[p], b.exposed[p]) << "player " << p;
  }
  EXPECT_EQ(a.comm.messages, b.comm.messages);
  EXPECT_EQ(a.comm.bytes, b.comm.bytes);
  EXPECT_EQ(a.comm.rounds, b.comm.rounds);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.stale, b.stale);
  EXPECT_EQ(a.foreign, 0u);
  EXPECT_EQ(b.foreign, 0u);
}

TEST(CommitteeTest, IdentityCommitteeBitForBitMatchesRawCluster) {
  expect_identical(run_raw(), run_identity_committee());
}

TEST(CommitteeTest, IdentityCommitteeBitForBitUnderFaultPlan) {
  FaultPlanParams params;
  params.n = kN;
  params.t = kT;
  params.rounds = 48;
  params.fault_rate = 0.08;
  const FaultPlan plan = random_fault_plan(params, kSeed);
  auto raw = run_raw(std::make_shared<FaultInjector>(FaultPlan(plan)));
  auto via = run_identity_committee(FaultPlan(plan));
  EXPECT_GT(raw.faults, 0u);  // the plan genuinely fired
  expect_identical(raw, via);
}

// Disjoint committees: different protocols, different round counts, one
// cluster — roster-scoped barriers mean neither blocks the other, and no
// envelope crosses a roster (foreign_rejections() == 0 because sends are
// structurally confined, not because the backstop fired).
TEST(CommitteeTest, DisjointCommitteesProgressIndependently) {
  const int total = 2 * kN;
  Cluster cluster(total, static_cast<int>(kT), kSeed);
  Committee::Options o0;
  o0.id = 0;
  o0.first_stream = 0;
  o0.stream_count = 4096;
  o0.t = static_cast<int>(kT);
  Committee::Options o1 = o0;
  o1.id = 1;
  o1.first_stream = 4096;
  std::vector<int> m0, m1;
  for (int i = 0; i < kN; ++i) m0.push_back(i);
  for (int i = kN; i < total; ++i) m1.push_back(i);
  Committee com0(cluster, m0, o0);
  Committee com1(cluster, m1, o1);

  auto genesis0 = trusted_dealer_coins<F>(kN, kT, 8, kSeed);
  auto genesis1 = trusted_dealer_coins<F>(kN, kT, 1, kSeed + 1);

  // Committee 0: a full Coin-Gen (~10 rounds + BA). Committee 1: a
  // 3-round VSS. Wildly different round counts on one cluster.
  std::vector<CoinGenResult<F>> gen(kN);
  std::vector<char> accepted(kN);
  cluster.run(std::vector<Cluster::Program>(
      total, [&](PartyIo& io) {
        if (io.id() < kN) {
          Endpoint& ep = com0.endpoint(io);
          CoinPool<F> pool;
          for (auto& c : genesis0[ep.id()]) pool.add(std::move(c));
          gen[ep.id()] = coin_gen<F>(ep, kM, pool);
        } else {
          Endpoint& ep = com1.endpoint(io);
          std::optional<Polynomial<F>> poly;
          if (ep.id() == 0) poly = Polynomial<F>::random(kT, ep.rng());
          const auto out = vss_share_and_verify<F>(
              ep, /*dealer=*/0, kT, poly,
              SealedCoin<F>{genesis1[ep.id()][0].share, kT});
          accepted[ep.id()] = out.accepted;
        }
      }));

  for (int i = 0; i < kN; ++i) {
    EXPECT_TRUE(gen[i].success) << "committee 0 player " << i;
    EXPECT_EQ(gen[i].clique, gen[0].clique);
    EXPECT_TRUE(accepted[i]) << "committee 1 player " << i;
  }
  EXPECT_EQ(cluster.stale_rejections(), 0u);
  EXPECT_EQ(cluster.foreign_rejections(), 0u);
}

// Per-committee fault plans: each committee gets its own seeded plan in
// LOCAL indices; effects land on that committee's ledger only, and the
// ledgers plus the (injector-free) default domain reconcile exactly with
// Cluster::faults().
TEST(CommitteeTest, PerCommitteeFaultLedgersSumToClusterTotal) {
  const int total = 2 * kN;
  Cluster cluster(total, static_cast<int>(kT), kSeed);
  Committee::Options o0;
  o0.id = 0;
  o0.first_stream = 0;
  o0.stream_count = 4096;
  o0.t = static_cast<int>(kT);
  Committee::Options o1 = o0;
  o1.id = 1;
  o1.first_stream = 4096;
  std::vector<int> m0, m1;
  for (int i = 0; i < kN; ++i) m0.push_back(i);
  for (int i = kN; i < total; ++i) m1.push_back(i);
  Committee com0(cluster, m0, o0);
  Committee com1(cluster, m1, o1);

  FaultPlanParams params;
  params.n = kN;
  params.t = kT;
  params.rounds = 24;
  params.fault_rate = 0.10;
  com0.set_fault_injector(random_fault_plan(params, kSeed + 10));
  com1.set_fault_injector(random_fault_plan(params, kSeed + 20));

  auto genesis = trusted_dealer_coins<F>(kN, kT, 8, kSeed);
  std::vector<CoinGenResult<F>> gen(total);
  cluster.run(std::vector<Cluster::Program>(
      total, [&](PartyIo& io) {
        Committee& com = io.id() < kN ? com0 : com1;
        Endpoint& ep = com.endpoint(io);
        CoinPool<F> pool;
        for (auto& c : genesis[ep.id()]) pool.add(std::move(c));
        gen[io.id()] = coin_gen<F>(ep, kM, pool);
      }));

  EXPECT_GT(com0.faults().total(), 0u);
  EXPECT_GT(com1.faults().total(), 0u);
  EXPECT_EQ(com0.faults().total() + com1.faults().total(),
            cluster.faults().total());
  EXPECT_EQ(cluster.foreign_rejections(), 0u);
  // Same local plan seed != same effects: the plans were remapped onto
  // disjoint global rosters and fire independently.
}

// Eviction must not corrupt the fault accounting: with both committees
// under seeded fault plans and committee 1 evicted mid-run, the
// per-committee ledgers still sum exactly to Cluster::faults(), and the
// locked ledger() snapshot agrees with the post-run faults() reference.
TEST(CommitteeTest, LedgersSumToClusterTotalAfterEviction) {
  using BF = GF2_64;
  typename Beacon<BF>::Options opts;
  opts.committees = 2;
  opts.committee_size = kN;
  opts.committee_t = kT;
  opts.coins_per_batch = kM;
  opts.batches = 3;
  opts.depth = 2;
  opts.seed = kSeed;
  opts.chaos.scripted_evictions.push_back({1u, 1u});
  Beacon<BF> beacon(opts);

  FaultPlanParams params;
  params.n = kN;
  params.t = kT;
  params.rounds = 24;
  params.fault_rate = 0.10;
  beacon.committee(0).set_fault_injector(random_fault_plan(params, kSeed + 10));
  beacon.committee(1).set_fault_injector(random_fault_plan(params, kSeed + 20));

  const auto out = beacon.run();
  EXPECT_EQ(out.committees[1].health, CommitteeHealth::kEvicted);
  EXPECT_EQ(out.committees[1].reason, EvictionReason::kScripted);

  const auto led0 = beacon.committee(0).ledger();
  const auto led1 = beacon.committee(1).ledger();
  EXPECT_GT(led0.faults.total(), 0u);
  EXPECT_GT(led1.faults.total(), 0u);
  EXPECT_EQ(led0.faults.total() + led1.faults.total(),
            beacon.cluster().faults().total());
  // The snapshot and the post-run reference are the same ledger.
  EXPECT_EQ(led0.faults.total(), beacon.committee(0).faults().total());
  EXPECT_EQ(led1.faults.total(), beacon.committee(1).faults().total());
  EXPECT_EQ(led0.stale + led1.stale, beacon.cluster().stale_rejections());
  EXPECT_EQ(led0.foreign + led1.foreign,
            beacon.cluster().foreign_rejections());
}

// Committee-local identity surface: ids, sizes, translations, streams.
TEST(CommitteeTest, LocalGlobalTranslation) {
  Cluster cluster(10, 1, kSeed);
  Committee::Options opts;
  opts.id = 3;
  opts.first_stream = 8192;
  opts.stream_count = 1024;
  opts.t = 2;
  Committee com(cluster, {7, 2, 9}, opts);
  EXPECT_EQ(com.n(), 3);
  EXPECT_EQ(com.t(), 2);
  EXPECT_EQ(com.members(), (std::vector<int>{2, 7, 9}));
  EXPECT_EQ(com.global_id(0), 2);
  EXPECT_EQ(com.global_id(2), 9);
  EXPECT_EQ(com.local_id(7), 1);
  EXPECT_EQ(com.local_id(3), -1);
  EXPECT_EQ(com.global_stream(0), 8192u);
  EXPECT_EQ(com.global_stream(5), 8197u);
  EXPECT_EQ(cluster.committee_of(8192), 3u);
  EXPECT_EQ(cluster.committee_of(0), 0u);
}

}  // namespace
}  // namespace dprbg
