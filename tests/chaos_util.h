// Shared invariant checkers for the chaos harness.
//
// The fault model (net/fault.h, DESIGN.md "Link faults") charges every
// faulted link to a player set of size <= t, so the paper's guarantees
// must keep holding for the players *outside* that set. These helpers
// state those guarantees once — honest unanimity of protocol outputs and
// the grade-cast confidence band — and stamp every failure with the fault
// seed so a red run can be replayed deterministically.

#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gradecast/gradecast.h"
#include "net/cluster.h"
#include "net/fault.h"

namespace dprbg::chaos {

// One chaos trial: a cluster with a random seeded link-fault plan
// charged to <= t players. Shared by every chaos suite (soak, pipeline,
// proactive) so the plan-building knobs stay in one place.
struct Trial {
  Cluster cluster;
  std::set<int> charged;

  Trial(int n, unsigned t, std::uint64_t seed, std::uint64_t rounds,
        double rate, std::vector<int> never_charge = {})
      : cluster(n, static_cast<int>(t), seed) {
    FaultPlanParams params;
    params.n = n;
    params.t = t;
    params.rounds = rounds;
    params.fault_rate = rate;
    params.never_charge = std::move(never_charge);
    FaultPlan plan = random_fault_plan(params, seed);
    charged = plan.charged();
    cluster.set_fault_injector(
        std::make_shared<FaultInjector>(std::move(plan)));
  }
};

// Every chaos assertion carries this note: rerunning the test with the
// printed seed reproduces the failing execution bit-for-bit.
inline std::string replay_note(std::uint64_t seed) {
  return "REPLAY: failing fault seed = " + std::to_string(seed);
}

// Slow-drip plan: one hostage player delays EVERY outgoing message by
// `delay` rounds for `rounds` rounds — the "holds the barrier hostage"
// adversary of the failover suite (tests/chaos_beacon_test.cpp). Charged
// entirely to the hostage, so honest-player invariants keep applying to
// everyone else. Written in committee-local indices; install it with
// Committee::set_fault_injector to confine the drip to one committee.
inline FaultPlan slow_drip_plan(int hostage, int n, std::uint64_t rounds,
                                unsigned delay = 1) {
  FaultPlan plan;
  plan.charge(hostage);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (int to = 0; to < n; ++to) {
      if (to == hostage) continue;
      plan.add(r, hostage, to, FaultSpec{FaultAction::kDelay, delay});
    }
  }
  return plan;
}

// Honest-unanimity invariant: every player outside `charged` produced an
// identical value. `what` names the output being compared (e.g.
// "coin-gen success flag").
template <typename T>
void expect_honest_unanimous(const std::vector<T>& per_player,
                             const std::set<int>& charged,
                             std::uint64_t seed, const std::string& what) {
  int ref = -1;
  for (std::size_t i = 0; i < per_player.size(); ++i) {
    if (charged.count(static_cast<int>(i)) != 0) continue;
    if (ref < 0) {
      ref = static_cast<int>(i);
      continue;
    }
    EXPECT_EQ(per_player[i], per_player[ref])
        << what << ": honest players " << i << " and " << ref
        << " disagree; " << replay_note(seed);
  }
}

// Grade-cast band invariant for one sender, across all players'
// GradeCastResult for that sender:
//   * honest confidences differ by at most one level;
//   * if any honest player holds confidence 2, every honest player with
//     confidence >= 1 holds the same value.
inline void expect_gradecast_band(
    const std::vector<GradeCastResult>& per_player,
    const std::set<int>& charged, std::uint64_t seed, int sender) {
  int min_conf = 2;
  int max_conf = 0;
  const std::vector<std::uint8_t>* committed = nullptr;
  for (std::size_t i = 0; i < per_player.size(); ++i) {
    if (charged.count(static_cast<int>(i)) != 0) continue;
    min_conf = std::min(min_conf, per_player[i].confidence);
    max_conf = std::max(max_conf, per_player[i].confidence);
    if (per_player[i].confidence == 2) committed = &per_player[i].value;
  }
  EXPECT_LE(max_conf - min_conf, 1)
      << "grade-cast confidences for sender " << sender
      << " differ by more than one level; " << replay_note(seed);
  if (committed == nullptr) return;
  for (std::size_t i = 0; i < per_player.size(); ++i) {
    if (charged.count(static_cast<int>(i)) != 0) continue;
    EXPECT_GE(per_player[i].confidence, 1)
        << "sender " << sender << ": player " << i
        << " below confidence 1 while another honest player committed; "
        << replay_note(seed);
    if (per_player[i].confidence >= 1) {
      EXPECT_EQ(per_player[i].value, *committed)
          << "sender " << sender << ": player " << i
          << " holds a different value than a confidence-2 player; "
          << replay_note(seed);
    }
  }
}

}  // namespace dprbg::chaos
