// Final coverage sweeps: dense parameter grids over the protocol stack,
// complementing the targeted tests with breadth (every cell is a full
// protocol execution on a fresh cluster).

#include <gtest/gtest.h>

#include <optional>
#include <tuple>
#include <vector>

#include "coin/bitgen.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen_bc.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "gradecast/gradecast.h"
#include "net/cluster.h"
#include "vss/batch_vss.h"

namespace dprbg {
namespace {

using F = GF2_64;

// --- Batch-VSS grid: (t, M, bad position or none) ------------------------

class BatchVssGrid
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BatchVssGrid, AcceptsGoodRejectsBad) {
  const auto [t, m, bad_pos] = GetParam();  // bad_pos = -1: honest batch
  const int n = 3 * t + 1;
  const std::uint64_t seed =
      10000 + static_cast<std::uint64_t>(t * 1000 + m * 10 + bad_pos + 1);
  auto coins = trusted_dealer_coins<F>(n, t, 1, seed);
  Chacha dealer_rng(seed, 777);
  std::vector<Polynomial<F>> polys;
  for (int j = 0; j < m; ++j) {
    polys.push_back(Polynomial<F>::random(t, dealer_rng));
  }
  if (bad_pos >= 0) {
    polys[bad_pos % m] = Polynomial<F>::random(t + 1, dealer_rng);
  }
  const bool bad_is_real =
      bad_pos >= 0 && polys[bad_pos % m].degree() > t;
  std::vector<char> accepted(n, false);
  Cluster cluster(n, t, seed);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::span<const Polynomial<F>> mine;
    if (io.id() == 0) mine = polys;
    accepted[io.id()] =
        batch_vss<F>(io, 0, t, m, mine, coins[io.id()][0]).accepted;
  }));
  for (int i = 0; i < n; ++i) {
    if (bad_is_real) {
      EXPECT_FALSE(accepted[i]) << "t=" << t << " m=" << m << " i=" << i;
    } else if (bad_pos < 0) {
      EXPECT_TRUE(accepted[i]) << "t=" << t << " m=" << m << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchVssGrid,
    ::testing::Combine(::testing::Values(1, 2, 4),       // t
                       ::testing::Values(1, 7, 33),      // M
                       ::testing::Values(-1, 0, 3)),     // bad position
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param)) + "_bad" +
             std::to_string(std::get<2>(info.param) + 1);
    });

// --- Bit-Gen grid: (t, M) with the dealer rotating -----------------------

class BitGenGrid : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BitGenGrid, EveryDealerPositionWorks) {
  const auto [t, m] = GetParam();
  const int n = 6 * t + 1;
  for (int dealer : {0, n / 2, n - 1}) {
    const std::uint64_t seed = 20000 + t * 100 + m + dealer;
    auto coins = trusted_dealer_coins<F>(n, t, 1, seed);
    Chacha dealer_rng(seed, 777);
    std::vector<Polynomial<F>> polys;
    for (int j = 0; j < m; ++j) {
      polys.push_back(Polynomial<F>::random(t, dealer_rng));
    }
    std::vector<char> accepted(n, false);
    Cluster cluster(n, t, seed);
    cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
      std::span<const Polynomial<F>> mine;
      if (io.id() == dealer) mine = polys;
      accepted[io.id()] = bit_gen_single<F>(io, dealer, m, t, mine,
                                            coins[io.id()][0])
                              .accepted();
    }));
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(accepted[i])
          << "t=" << t << " m=" << m << " dealer=" << dealer << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BitGenGrid,
    ::testing::Combine(::testing::Values(1, 2), ::testing::Values(1, 16)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

// --- Grade-cast grid: n sweep with rotating sender -----------------------

class GradeCastGrid : public ::testing::TestWithParam<int> {};

TEST_P(GradeCastGrid, HonestSenderAlwaysConfidence2) {
  const int t = GetParam();
  const int n = 3 * t + 1;
  for (int sender : {0, n - 1}) {
    std::vector<GradeCastResult> results(n);
    Cluster cluster(n, t, 30000 + t + sender);
    cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
      results[io.id()] = grade_cast(
          io, sender, {static_cast<std::uint8_t>(sender), 0xEE});
    }));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(results[i].confidence, 2)
          << "t=" << t << " sender=" << sender << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, GradeCastGrid, ::testing::Values(1, 2, 4, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

// --- Broadcast-model coin generation grid --------------------------------

class BcCoinGrid : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BcCoinGrid, UnanimousCoins) {
  const auto [t, m] = GetParam();
  const int n = 3 * t + 1;
  const std::uint64_t seed = 40000 + t * 100 + m;
  auto coins = trusted_dealer_coins<F>(n, t, 1, seed);
  std::vector<std::optional<F>> values(n);
  Cluster cluster(n, t, seed);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    const auto result = coin_gen_broadcast<F>(io, m, coins[io.id()][0]);
    ASSERT_TRUE(result.success);
    const auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
    values[io.id()] = coin_expose<F>(io, sealed[m - 1], 77);
  }));
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(values[i].has_value());
    EXPECT_EQ(*values[i], *values[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BcCoinGrid,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 12)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dprbg
