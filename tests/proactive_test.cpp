// Tests for pro-active refresh of sealed coins (Section 1.2's mobile-
// adversary application; DESIGN.md substrate table).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "coin/coin_expose.h"
#include "dprbg/proactive.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

TEST(ProactiveTest, ZeroSecretPolynomialShape) {
  Chacha rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = random_zero_secret<F>(4, rng);
    EXPECT_TRUE(p(F::zero()).is_zero());
    EXPECT_LE(p.degree(), 4);
  }
}

TEST(ProactiveTest, RefreshPreservesCoinValues) {
  const int n = 7, t = 2;
  const int kCoins = 4;
  auto coins = trusted_dealer_coins<F>(n, t, kCoins, 2);
  auto challenge = trusted_dealer_coins<F>(n, t, 1, 3);

  std::vector<std::vector<std::optional<F>>> before(n), after(n);
  Cluster cluster(n, t, 2);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    // Expose a snapshot... we cannot expose before refreshing (that would
    // unseal them); instead refresh first, expose the refreshed coins,
    // then compare with an offline reconstruction of the originals.
    const auto result = proactive_refresh<F>(
        io, std::span<const SealedCoin<F>>(coins[io.id()]),
        challenge[io.id()][0]);
    ASSERT_TRUE(result.success);
    for (int h = 0; h < kCoins; ++h) {
      after[io.id()].push_back(
          coin_expose<F>(io, result.coins[h], 10 + h));
    }
  }));
  // Offline ground truth of the original coins.
  for (int h = 0; h < kCoins; ++h) {
    std::vector<PointValue<F>> pts;
    for (int i = 0; i < n; ++i) {
      pts.push_back({eval_point<F>(i), *coins[i][h].share});
    }
    const F original = *reconstruct_secret<F>(pts, t, 0);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(after[i][h].has_value()) << i << "," << h;
      EXPECT_EQ(*after[i][h], original) << i << "," << h;
    }
  }
}

TEST(ProactiveTest, SharesActuallyChange) {
  // The refresh must re-randomize: every player's share should differ
  // from its pre-refresh value (same value coincidence has prob 2^-64).
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 2, 4);
  auto challenge = trusted_dealer_coins<F>(n, t, 1, 5);
  std::vector<std::vector<F>> new_shares(n);
  Cluster cluster(n, t, 4);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    const auto result = proactive_refresh<F>(
        io, std::span<const SealedCoin<F>>(coins[io.id()]),
        challenge[io.id()][0]);
    ASSERT_TRUE(result.success);
    for (const auto& c : result.coins) {
      new_shares[io.id()].push_back(*c.share);
    }
  }));
  for (int i = 0; i < n; ++i) {
    for (int h = 0; h < 2; ++h) {
      EXPECT_NE(new_shares[i][h], *coins[i][h].share) << i << "," << h;
    }
  }
}

TEST(ProactiveTest, OldSharesUselessAfterRefresh) {
  // The mobile-adversary property: t old shares + t NEW shares from a
  // different corruption set stay below the reconstruction threshold —
  // the combined 2t points do not pin down the coin because they lie on
  // different polynomials. Constructively: the old shares are consistent
  // with every candidate value of the *new* sharing's polynomial? The
  // meaningful check: reconstruction from t old + t new shares fails
  // (Berlekamp-Welch finds no degree-t polynomial through >= 3t+1 ...),
  // here simply: mixing old and new shares yields a decoding that does
  // NOT equal the coin unless enough consistent new shares are present.
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 6);
  auto challenge = trusted_dealer_coins<F>(n, t, 1, 7);
  std::vector<std::optional<F>> new_share(n);
  Cluster cluster(n, t, 6);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    const auto result = proactive_refresh<F>(
        io, std::span<const SealedCoin<F>>(coins[io.id()]),
        challenge[io.id()][0]);
    ASSERT_TRUE(result.success);
    new_share[io.id()] = *result.coins[0].share;
  }));
  // Adversary epoch 1 corrupted {0,1} (old shares), epoch 2 corrupted
  // {2,3} (new shares). 4 = 2t points, mixed generations.
  std::vector<PointValue<F>> mixed = {
      {eval_point<F>(0), *coins[0][0].share},
      {eval_point<F>(1), *coins[1][0].share},
      {eval_point<F>(2), *new_share[2]},
      {eval_point<F>(3), *new_share[3]},
  };
  // Ground truth.
  std::vector<PointValue<F>> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({eval_point<F>(i), *coins[i][0].share});
  }
  const F truth = *reconstruct_secret<F>(pts, t, 0);
  // The mixed points interpolate to a cubic (2t+... 4 points define a
  // unique degree-3 polynomial); its value at 0 is NOT the coin — the
  // adversary learned nothing actionable.
  const auto f = lagrange_interpolate<F>(mixed);
  EXPECT_NE(f(F::zero()), truth);
  // And each generation alone (t points) is information-theoretically
  // consistent with every candidate coin value.
  for (std::uint64_t candidate : {0ull, 999ull}) {
    std::vector<PointValue<F>> old_pts = {mixed[0], mixed[1],
                                          {F::zero(), F::from_uint(candidate)}};
    EXPECT_LE(lagrange_interpolate<F>(old_pts).degree(),
              static_cast<int>(t));
  }
}

TEST(ProactiveTest, CheatingRefresherExcluded) {
  // A refresher dealing NON-zero-secret polynomials (which would *shift*
  // the coin values) must be rejected by the F(0) = 0 check.
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 2, 8);
  auto challenge = trusted_dealer_coins<F>(n, t, 1, 9);
  std::vector<RefreshResult<F>> results(n);
  Cluster cluster(n, t, 8);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = proactive_refresh<F>(
            io, std::span<const SealedCoin<F>>(coins[io.id()]),
            challenge[io.id()][0]);
      },
      {1},
      [&](PartyIo& io) {
        // Deals valid degree-t but NONZERO-secret polynomials (a shift
        // attack on the coin values).
        const auto row_tag = make_tag(ProtoId::kBitGen, 0, 0);
        std::vector<Polynomial<F>> polys;
        for (unsigned j = 0; j < 3; ++j) {
          polys.push_back(Polynomial<F>::random(io.t(), io.rng()));
        }
        for (int i = 0; i < io.n(); ++i) {
          ByteWriter w;
          for (const auto& f : polys) write_elem(w, f(eval_point<F>(i)));
          io.send(i, row_tag, std::move(w).take());
        }
        (void)coin_expose<F>(io, challenge[io.id()][0], 0);
        // Honest-looking combination for its own instance.
        io.sync();
      });
  for (int i = 0; i < n; ++i) {
    if (i == 1) continue;
    ASSERT_TRUE(results[i].success) << i;
    for (int d : results[i].accepted_dealers) EXPECT_NE(d, 1) << i;
  }
}

TEST(ProactiveTest, RepeatedRefreshesStayCorrect) {
  // Refresh the same coin several epochs in a row, then expose: value
  // unchanged (the Section 1.2 "kept alive" source).
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 10);
  auto challenges = trusted_dealer_coins<F>(n, t, 4, 11);
  std::vector<PointValue<F>> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({eval_point<F>(i), *coins[i][0].share});
  }
  const F truth = *reconstruct_secret<F>(pts, t, 0);

  std::vector<std::optional<F>> finals(n);
  Cluster cluster(n, t, 10);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::vector<SealedCoin<F>> mine = coins[io.id()];
    for (int epoch = 0; epoch < 4; ++epoch) {
      const auto result = proactive_refresh<F>(
          io, std::span<const SealedCoin<F>>(mine),
          challenges[io.id()][epoch], /*instance=*/epoch);
      ASSERT_TRUE(result.success);
      mine = result.coins;
    }
    finals[io.id()] = coin_expose<F>(io, mine[0], 99);
  }));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(finals[i].has_value());
    EXPECT_EQ(*finals[i], truth);
  }
}

}  // namespace
}  // namespace dprbg
