// Tests for Coin-Expose (Fig. 6) and trusted-dealer genesis coins.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "coin/coin_expose.h"
#include "coin/sealed_coin.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

using F = GF2_64;

struct ExposeRun {
  std::vector<std::optional<F>> results;  // per player
};

// Runs coin_expose for the given coin set under the given faulty behavior.
ExposeRun run_expose(int n, int t, std::uint64_t seed,
                     const std::vector<int>& faulty,
                     const Cluster::Program& adversary) {
  auto coins = trusted_dealer_coins<F>(n, t, 1, seed);
  ExposeRun out;
  out.results.assign(n, std::nullopt);
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        out.results[io.id()] = coin_expose<F>(io, coins[io.id()][0]);
      },
      faulty, adversary);
  return out;
}

TEST(CoinExposeTest, AllHonestUnanimous) {
  const auto run = run_expose(7, 2, 1, {}, nullptr);
  ASSERT_TRUE(run.results[0].has_value());
  for (int i = 1; i < 7; ++i) {
    ASSERT_TRUE(run.results[i].has_value());
    EXPECT_EQ(*run.results[i], *run.results[0]);
  }
}

TEST(CoinExposeTest, CrashFaultsTolerated) {
  const auto run = run_expose(7, 2, 2, {0, 3}, nullptr);
  std::optional<F> first;
  for (int i = 0; i < 7; ++i) {
    if (i == 0 || i == 3) continue;
    ASSERT_TRUE(run.results[i].has_value()) << i;
    if (!first) first = *run.results[i];
    EXPECT_EQ(*run.results[i], *first);
  }
}

TEST(CoinExposeTest, ByzantineWrongSharesTolerated) {
  // Faulty players send random garbage shares; Berlekamp-Welch must still
  // produce the true coin for every honest player.
  auto coins = trusted_dealer_coins<F>(7, 2, 1, 3);
  // Ground truth: reconstruct offline from all honest shares.
  std::vector<PointValue<F>> pts;
  for (int i = 0; i < 7; ++i) {
    pts.push_back({eval_point<F>(i), *coins[i][0].share});
  }
  const F truth = *reconstruct_secret<F>(pts, 2, 0);

  std::vector<std::optional<F>> results(7);
  Cluster cluster(7, 2, 3);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = coin_expose<F>(io, coins[io.id()][0]);
      },
      {1, 5},
      [&](PartyIo& io) {
        // Equivocating garbage: a different random share to each receiver.
        const std::uint32_t tag = make_tag(ProtoId::kCoinExpose, 0, 0);
        for (int to = 0; to < io.n(); ++to) {
          ByteWriter w;
          write_elem(w, random_element<F>(io.rng()));
          io.send(to, tag, std::move(w).take());
        }
        io.sync();
      });
  for (int i = 0; i < 7; ++i) {
    if (i == 1 || i == 5) continue;
    ASSERT_TRUE(results[i].has_value()) << i;
    EXPECT_EQ(*results[i], truth) << i;
  }
}

TEST(CoinExposeTest, MalformedMessagesIgnored) {
  auto coins = trusted_dealer_coins<F>(7, 2, 1, 4);
  std::vector<std::optional<F>> results(7);
  Cluster cluster(7, 2, 4);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = coin_expose<F>(io, coins[io.id()][0]);
      },
      {2},
      [&](PartyIo& io) {
        // Truncated/oversized junk.
        const std::uint32_t tag = make_tag(ProtoId::kCoinExpose, 0, 0);
        io.send_all(tag, {0x01, 0x02});
        io.sync();
      });
  for (int i = 0; i < 7; ++i) {
    if (i == 2) continue;
    ASSERT_TRUE(results[i].has_value());
  }
}

TEST(CoinExposeTest, NonHolderStillLearnsCoin) {
  // A player without a share (e.g. outside the qualified set) receives
  // the coin anyway.
  auto coins = trusted_dealer_coins<F>(7, 2, 1, 5);
  coins[6][0].share.reset();  // player 6 holds nothing
  std::vector<std::optional<F>> results(7);
  Cluster cluster(7, 2, 5);
  cluster.run(std::vector<Cluster::Program>(7, [&](PartyIo& io) {
    results[io.id()] = coin_expose<F>(io, coins[io.id()][0]);
  }));
  ASSERT_TRUE(results[6].has_value());
  EXPECT_EQ(*results[6], *results[0]);
}

TEST(CoinExposeTest, CoinsAreUniformlyDistributedBits) {
  // Binary projection of many independent genesis coins is ~fair.
  const int kCoins = 400;
  auto coins = trusted_dealer_coins<F>(4, 1, kCoins, 6);
  int ones = 0;
  Cluster cluster(4, 1, 6);
  cluster.run(std::vector<Cluster::Program>(4, [&](PartyIo& io) {
    for (int c = 0; c < kCoins; ++c) {
      auto v = coin_expose<F>(io, coins[io.id()][c], c);
      ASSERT_TRUE(v.has_value());
      if (io.id() == 0) ones += coin_to_bit(*v);
    }
  }));
  EXPECT_NEAR(double(ones) / kCoins, 0.5, 0.1);
}

TEST(CoinExposeTest, AdversaryCoalitionCannotPredictCoin) {
  // Information-theoretic unpredictability: t shares of a degree-t
  // sharing are consistent with every possible coin value. Constructive
  // check as in ShamirTest::TSharesRevealNothing, on dealer output.
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 7);
  // Adversary corrupts players 0,1 (t = 2) and tries to infer the coin.
  std::vector<PointValue<F>> known = {
      {eval_point<F>(0), *coins[0][0].share},
      {eval_point<F>(1), *coins[1][0].share},
  };
  // For any candidate coin value v there is a consistent polynomial.
  for (std::uint64_t v : {0ull, 1ull, 0xDEADull}) {
    std::vector<PointValue<F>> pts = known;
    pts.push_back({F::zero(), F::from_uint(v)});
    const auto f = lagrange_interpolate<F>(pts);
    EXPECT_LE(f.degree(), t);
  }
}

TEST(CoinExposeTest, ParallelInstancesDoNotInterfere) {
  auto coins = trusted_dealer_coins<F>(4, 1, 2, 8);
  std::vector<F> coin_a(4), coin_b(4);
  Cluster cluster(4, 1, 8);
  cluster.run(std::vector<Cluster::Program>(4, [&](PartyIo& io) {
    // Expose two different coins with different instance tags in the same
    // round (both sends staged before the shared sync inside the second
    // call would be wrong, so expose sequentially but verify tags).
    coin_a[io.id()] = *coin_expose<F>(io, coins[io.id()][0], 10);
    coin_b[io.id()] = *coin_expose<F>(io, coins[io.id()][1], 11);
  }));
  EXPECT_NE(coin_a[0], coin_b[0]);  // distinct coins (w.h.p.)
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(coin_a[i], coin_a[0]);
    EXPECT_EQ(coin_b[i], coin_b[0]);
  }
}

}  // namespace
}  // namespace dprbg
