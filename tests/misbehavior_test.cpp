// Tests for the per-peer misbehavior scoring / ban-policy layer
// (net/misbehavior.h) and its cluster demux integration: standing
// transitions with hysteresis, score decay, banned-traffic suppression
// semantics (counted but never delivered), and ledger reconciliation
// against the cluster's fault and misbehavior counters.

#include "net/misbehavior.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "net/fault.h"
#include "net/msg.h"

namespace dprbg {
namespace {

constexpr std::uint32_t kTag = make_tag(ProtoId::kApp, 0, 0);

MisbehaviorPolicy test_policy() {
  MisbehaviorPolicy p;
  p.decode_weight = 10;
  p.stale_weight = 5;
  p.foreign_weight = 20;
  p.slow_weight = 2;
  p.suspect_enter = 50;
  p.suspect_exit = 25;
  p.ban_enter = 200;
  p.ban_exit = 100;
  p.decay_per_tick = 10;
  return p;
}

TEST(MisbehaviorTest, ScoresAccumulateByWeightAndDecay) {
  MisbehaviorManager mgr(4, test_policy());
  mgr.report(1, MisbehaviorSignal::kDecodeFailure, 3);  // 30
  mgr.report(1, MisbehaviorSignal::kSlowEnvelope, 5);   // +10
  EXPECT_EQ(mgr.score(1), 40u);
  EXPECT_EQ(mgr.standing(1), PeerStanding::kHealthy);
  EXPECT_EQ(mgr.score(0), 0u);

  mgr.tick(3);  // -30
  EXPECT_EQ(mgr.score(1), 10u);
  mgr.tick(5);  // clamps at zero, never underflows
  EXPECT_EQ(mgr.score(1), 0u);

  const auto snap = mgr.peer(1);
  EXPECT_EQ(snap.reports[static_cast<int>(MisbehaviorSignal::kDecodeFailure)],
            3u);
  EXPECT_EQ(snap.reports[static_cast<int>(MisbehaviorSignal::kSlowEnvelope)],
            5u);
  EXPECT_EQ(mgr.totals().reports, 8u);
}

TEST(MisbehaviorTest, StandingWalksUpAndDecaysBackDown) {
  MisbehaviorManager mgr(3, test_policy());
  // 50 = suspect_enter.
  mgr.report(2, MisbehaviorSignal::kForeignTraffic, 2);  // 40
  EXPECT_EQ(mgr.standing(2), PeerStanding::kHealthy);
  mgr.report(2, MisbehaviorSignal::kStaleFlood, 2);  // 50
  EXPECT_EQ(mgr.standing(2), PeerStanding::kSuspect);
  EXPECT_FALSE(mgr.banned(2));

  // 200 = ban_enter.
  mgr.report(2, MisbehaviorSignal::kDecodeFailure, 15);  // 200
  EXPECT_EQ(mgr.standing(2), PeerStanding::kBanned);
  EXPECT_TRUE(mgr.banned(2));
  EXPECT_EQ(mgr.peer(2).bans, 1u);
  EXPECT_EQ(mgr.totals().bans, 1u);

  // Decay to 100 (= ban_exit): still banned — exit requires dropping
  // strictly below the threshold.
  mgr.tick(10);
  EXPECT_EQ(mgr.score(2), 100u);
  EXPECT_TRUE(mgr.banned(2));

  // Below ban_exit: demoted to suspect, not straight to healthy.
  mgr.tick(1);
  EXPECT_EQ(mgr.score(2), 90u);
  EXPECT_EQ(mgr.standing(2), PeerStanding::kSuspect);
  EXPECT_FALSE(mgr.banned(2));
  EXPECT_EQ(mgr.peer(2).unbans, 1u);

  // One big decay can cascade suspect -> healthy in the same tick.
  mgr.tick(8);
  EXPECT_EQ(mgr.score(2), 10u);
  EXPECT_EQ(mgr.standing(2), PeerStanding::kHealthy);
}

TEST(MisbehaviorTest, HysteresisPreventsBanFlapping) {
  MisbehaviorManager mgr(2, test_policy());
  mgr.report(0, MisbehaviorSignal::kForeignTraffic, 10);  // 200: banned
  ASSERT_TRUE(mgr.banned(0));
  ASSERT_EQ(mgr.peer(0).bans, 1u);

  // Hover in the hysteresis band (ban_exit, ban_enter): decay a little,
  // report a little, many times over. The peer must stay banned the
  // whole time and the ban counter must not move — this is exactly the
  // flapping the distinct enter/exit thresholds exist to prevent.
  for (int i = 0; i < 50; ++i) {
    mgr.tick(5);  // -50 -> 150
    EXPECT_TRUE(mgr.banned(0)) << "iteration " << i;
    mgr.report(0, MisbehaviorSignal::kStaleFlood, 10);  // +50 -> 200
    EXPECT_TRUE(mgr.banned(0)) << "iteration " << i;
  }
  EXPECT_EQ(mgr.peer(0).bans, 1u);
  EXPECT_EQ(mgr.peer(0).unbans, 0u);

  // Same hovering just under suspect_enter never promotes: report to 49,
  // decay, repeat — standing stays healthy once it exits.
  mgr.tick(100);  // bleed peer 0 dry: banned -> suspect -> healthy
  EXPECT_EQ(mgr.standing(0), PeerStanding::kHealthy);
  EXPECT_EQ(mgr.peer(0).unbans, 1u);
  for (int i = 0; i < 20; ++i) {
    mgr.report(0, MisbehaviorSignal::kSlowEnvelope, 2);  // +4, max 44 < 50
    EXPECT_EQ(mgr.standing(0), PeerStanding::kHealthy);
    mgr.tick(0);
    mgr.tick(1);  // net +4 -10 per loop, clamped at 0
  }
  EXPECT_EQ(mgr.peer(0).bans, 1u);
}

TEST(MisbehaviorTest, PermanentBanSurvivesFullDecay) {
  MisbehaviorPolicy p = test_policy();
  p.permanent_ban = true;
  MisbehaviorManager mgr(2, p);
  mgr.report(1, MisbehaviorSignal::kForeignTraffic, 10);  // 200
  ASSERT_TRUE(mgr.banned(1));
  mgr.tick(1000);
  EXPECT_EQ(mgr.score(1), 0u);
  EXPECT_TRUE(mgr.banned(1));
  EXPECT_EQ(mgr.standing(1), PeerStanding::kBanned);
  EXPECT_EQ(mgr.peer(1).unbans, 0u);
}

TEST(MisbehaviorTest, OutOfRangePeersAreIgnoredDefensively) {
  MisbehaviorManager mgr(3, test_policy());
  mgr.report(-1, MisbehaviorSignal::kDecodeFailure, 100);
  mgr.report(3, MisbehaviorSignal::kDecodeFailure, 100);
  mgr.note_suppressed(99);
  EXPECT_EQ(mgr.totals().reports, 0u);
  EXPECT_EQ(mgr.totals().suppressed, 0u);
  EXPECT_FALSE(mgr.banned(-5));
  EXPECT_FALSE(mgr.banned(3));
  EXPECT_EQ(mgr.score(-1), 0u);
  EXPECT_EQ(mgr.standing(17), PeerStanding::kHealthy);
}

// ---------------------------------------------------------------------
// Cluster integration.
// ---------------------------------------------------------------------

std::string render_inbox(const Inbox& inbox) {
  std::ostringstream os;
  for (const Msg& m : inbox.all()) {
    os << m.from << ":";
    for (std::uint8_t b : m.body) os << static_cast<int>(b);
    os << " ";
  }
  return os.str();
}

struct EchoRun {
  std::vector<std::vector<std::string>> transcript;  // [player][round]
  CommCounters comm;
};

// Every player broadcasts one byte per round; transcripts record each
// player's full inbox so delivery semantics are byte-checkable.
EchoRun run_echo(Cluster& cluster, int n, int rounds) {
  EchoRun run;
  run.transcript.assign(n, std::vector<std::string>(rounds));
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    for (int r = 0; r < rounds; ++r) {
      io.send_all(kTag, {static_cast<std::uint8_t>(io.id() * 16 + r)});
      run.transcript[io.id()][r] = render_inbox(io.sync());
    }
  }));
  run.comm = cluster.comm();
  return run;
}

TEST(MisbehaviorTest, BannedTrafficIsCountedButNeverDelivered) {
  const int n = 4, rounds = 3;
  auto mgr = std::make_shared<MisbehaviorManager>(n, test_policy());
  mgr->report(1, MisbehaviorSignal::kForeignTraffic, 10);  // pre-ban peer 1
  ASSERT_TRUE(mgr->banned(1));

  Cluster banned_cluster(n, /*t=*/1, /*seed=*/11);
  banned_cluster.set_misbehavior_manager(mgr);
  const EchoRun with_ban = run_echo(banned_cluster, n, rounds);

  Cluster clean_cluster(n, /*t=*/1, /*seed=*/11);
  const EchoRun clean = run_echo(clean_cluster, n, rounds);

  // Peer 1's messages reach nobody else, but its own loopback survives
  // (self-deliveries are exempt) and everyone else's traffic is intact.
  for (int p = 0; p < n; ++p) {
    for (int r = 0; r < rounds; ++r) {
      if (p == 1) {
        EXPECT_EQ(with_ban.transcript[p][r], clean.transcript[p][r]);
      } else {
        EXPECT_EQ(with_ban.transcript[p][r].find("1:"), std::string::npos)
            << "player " << p << " round " << r;
      }
    }
  }

  // The traffic still traversed the sender's links: comm accounting is
  // identical to the clean run — suppression happens at admit, after
  // the bytes were charged.
  EXPECT_EQ(with_ban.comm.messages, clean.comm.messages);
  EXPECT_EQ(with_ban.comm.bytes, clean.comm.bytes);

  // Suppression ledger: (n - 1) victims x rounds envelopes, visible and
  // mutually consistent across cluster counter, domain ledger, and the
  // manager's own per-peer snapshot.
  const std::uint64_t expect =
      static_cast<std::uint64_t>(n - 1) * rounds;
  EXPECT_EQ(banned_cluster.banned_suppressions(), expect);
  EXPECT_EQ(banned_cluster.domain_ledger(0).banned, expect);
  EXPECT_EQ(mgr->peer(1).suppressed, expect);
  EXPECT_EQ(mgr->totals().suppressed, expect);
  EXPECT_EQ(banned_cluster.faults().total(), 0u);  // no link faults here
}

TEST(MisbehaviorTest, SlowEnvelopeSignalMatchesDelayQueueMerges) {
  const int n = 4, rounds = 6;
  FaultPlan plan;
  plan.charge(2);
  // Three delayed envelopes on 2's outgoing links; each merges exactly
  // once, a round (or more) late.
  plan.add(/*round=*/0, /*from=*/2, /*to=*/0, {FaultAction::kDelay, 1});
  plan.add(/*round=*/1, /*from=*/2, /*to=*/3, {FaultAction::kDelay, 2});
  plan.add(/*round=*/2, /*from=*/2, /*to=*/1, {FaultAction::kDelay, 3});

  auto mgr = std::make_shared<MisbehaviorManager>(n, test_policy());
  Cluster cluster(n, /*t=*/1, /*seed=*/5);
  cluster.set_fault_injector(
      std::make_shared<FaultInjector>(std::move(plan)));
  cluster.set_misbehavior_manager(mgr);
  run_echo(cluster, n, rounds);

  EXPECT_EQ(cluster.faults().delayed, 3u);
  EXPECT_EQ(cluster.slow_envelopes(), 3u);
  EXPECT_EQ(cluster.domain_ledger(0).slow, 3u);
  const auto snap = mgr->peer(2);
  EXPECT_EQ(snap.reports[static_cast<int>(MisbehaviorSignal::kSlowEnvelope)],
            3u);
  EXPECT_EQ(mgr->score(2), 3u * test_policy().slow_weight);
  EXPECT_EQ(mgr->standing(2), PeerStanding::kHealthy);  // 6 < 50
  // Nobody else was charged anything.
  for (int p : {0, 1, 3}) EXPECT_EQ(mgr->score(p), 0u);
}

TEST(MisbehaviorTest, DecodeFailureReportsFlowThroughTheCluster) {
  const int n = 4, reports_per_round = 1, rounds = 2;
  auto mgr = std::make_shared<MisbehaviorManager>(n, test_policy());
  Cluster cluster(n, /*t=*/1, /*seed=*/3);
  cluster.set_misbehavior_manager(mgr);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    for (int r = 0; r < rounds; ++r) {
      io.send_all(kTag, {0xFF});
      io.sync();
      // Everyone but player 0 judges player 0's body malformed.
      if (io.id() != 0) io.note_decode_failure(0);
      // Self-reports and out-of-range ids are dropped defensively.
      io.note_decode_failure(io.id());
      io.note_decode_failure(n + 3);
    }
  }));
  const std::uint64_t expect =
      static_cast<std::uint64_t>(n - 1) * reports_per_round * rounds;
  EXPECT_EQ(cluster.decode_rejections(), expect);
  EXPECT_EQ(cluster.domain_ledger(0).decode, expect);
  const auto snap = mgr->peer(0);
  EXPECT_EQ(
      snap.reports[static_cast<int>(MisbehaviorSignal::kDecodeFailure)],
      expect);
  EXPECT_EQ(mgr->score(0), expect * test_policy().decode_weight);
  // 6 reports x weight 10 = 60 >= suspect_enter: flagged, not banned.
  EXPECT_EQ(mgr->standing(0), PeerStanding::kSuspect);
  for (int p = 1; p < n; ++p) EXPECT_EQ(mgr->score(p), 0u);
}

TEST(MisbehaviorTest, LedgerSumsReconcileUnderChaosWithManagerActive) {
  const int n = 5, rounds = 12;
  FaultPlanParams params;
  params.n = n;
  params.t = 1;
  // Keep the plan horizon max_delay short of the run so every delayed
  // envelope's merge round lands inside the run — otherwise a tail-end
  // delay is counted in faults().delayed but never merges (and so never
  // reports kSlowEnvelope), and the equality below would be an <=.
  params.max_delay = 2;
  params.rounds = rounds - params.max_delay;
  params.fault_rate = 0.25;
  const FaultPlan plan = random_fault_plan(params, /*seed=*/0xFEED);

  auto mgr = std::make_shared<MisbehaviorManager>(n, test_policy());
  Cluster cluster(n, /*t=*/1, /*seed=*/21);
  cluster.set_fault_injector(std::make_shared<FaultInjector>(plan));
  cluster.set_misbehavior_manager(mgr);
  run_echo(cluster, n, rounds);

  // Domain ledger totals reconcile against the cluster-wide counters,
  // manager report totals, and the fault counters the injector kept.
  const Cluster::DomainLedger ledger = cluster.domain_ledger(0);
  EXPECT_EQ(ledger.faults.total(), cluster.faults().total());
  EXPECT_EQ(ledger.slow, cluster.slow_envelopes());
  EXPECT_EQ(ledger.stale, cluster.stale_rejections());
  EXPECT_EQ(ledger.decode, cluster.decode_rejections());
  EXPECT_EQ(ledger.banned, cluster.banned_suppressions());
  EXPECT_EQ(cluster.slow_envelopes(), cluster.faults().delayed);

  std::uint64_t slow_reports = 0;
  for (int p = 0; p < n; ++p) {
    slow_reports += mgr->peer(p).reports[static_cast<int>(
        MisbehaviorSignal::kSlowEnvelope)];
  }
  EXPECT_EQ(slow_reports, cluster.slow_envelopes());
  // Slow envelopes are the only reportable signal this run can produce
  // (no stale/foreign/decode events in a plain echo program). Note the
  // sender a slow envelope is charged to need not be in the plan's
  // charged set: a kDelay on a charged player's *incoming* link delays
  // an honest sender's message, consistent with the fault-attribution
  // reading that the charged player "saw it late".
  EXPECT_EQ(mgr->totals().reports, slow_reports);
}

TEST(MisbehaviorTest, ManagerInstallGuards) {
  Cluster cluster(3, /*t=*/1, /*seed=*/1);
  // Wrong-n manager is a programmer error (checked), null detaches.
  cluster.set_misbehavior_manager(nullptr);
  EXPECT_EQ(cluster.misbehavior(), nullptr);
  auto mgr = std::make_shared<MisbehaviorManager>(3);
  cluster.set_misbehavior_manager(mgr);
  EXPECT_EQ(cluster.misbehavior(), mgr.get());
}

TEST(MisbehaviorTest, ToStringCoversAllStates) {
  EXPECT_STREQ(to_string(PeerStanding::kHealthy), "healthy");
  EXPECT_STREQ(to_string(PeerStanding::kSuspect), "suspect");
  EXPECT_STREQ(to_string(PeerStanding::kBanned), "banned");
  EXPECT_STREQ(to_string(MisbehaviorSignal::kDecodeFailure),
               "decode_failure");
  EXPECT_STREQ(to_string(MisbehaviorSignal::kStaleFlood), "stale_flood");
  EXPECT_STREQ(to_string(MisbehaviorSignal::kForeignTraffic),
               "foreign_traffic");
  EXPECT_STREQ(to_string(MisbehaviorSignal::kSlowEnvelope),
               "slow_envelope");
}

}  // namespace
}  // namespace dprbg
