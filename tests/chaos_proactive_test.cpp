// Chaos over pro-active refresh (dprbg/proactive.h): seeded random
// link-fault plans against the epoch re-randomization, closing the
// ROADMAP chaos item for the refresh path.
//
// The refresh runs in the Section 3 broadcast model, so — exactly as the
// VSS chaos suite — the fault horizon stops after round 0 (zero-secret
// row delivery + challenge exposure): faulting the round-1 combination
// broadcast would equivocate the broadcast assumption itself, which is
// more power than a Byzantine dealer has.
//
// Within round 0 the fault SHAPE matters, because every player deals.
// Faulting a charged player's OUTGOING links turns it into an
// equivocating dealer — its row reaches some honest players and not
// others, so holder status (and with it the success flag) is
// legitimately non-unanimous; coin_gen_bc.h documents exactly this
// caveat for the shared broadcast-model machinery. What survives
// arbitrary round-0 plans is everything derived from the round-1
// broadcast: the accepted-dealer set and the refresher choice.
//
// The strong guarantees — unanimous success plus every coin's VALUE
// unchanged while its sharing re-randomizes — hold for the
// flaky-receiver shape (faults confined to the charged player's
// INCOMING links): honest players' views stay pairwise identical, and
// the charged player's garbled combination contributions are absorbed
// by the decoder's error tolerance. Both shapes are soaked below.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <span>
#include <vector>

#include "chaos_util.h"
#include "coin/sealed_coin.h"
#include "dprbg/dprbg.h"
#include "dprbg/proactive.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "sharing/shamir.h"

namespace dprbg {
namespace {

using F = GF2_64;
using chaos::expect_honest_unanimous;
using chaos::replay_note;
using chaos::Trial;

constexpr int kN = 7;
constexpr unsigned kT = 1;
constexpr unsigned kM = 4;  // coins refreshed per trial

// A trial whose round-0 faults land only on the charged player's
// incoming links (the flaky-receiver shape; see the header comment).
struct ReceiverTrial {
  Cluster cluster;
  std::set<int> charged;

  ReceiverTrial(std::uint64_t seed, double rate)
      : cluster(kN, static_cast<int>(kT), seed) {
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1);
    const int victim = static_cast<int>(rng() % kN);
    charged.insert(victim);
    const auto threshold = static_cast<std::uint64_t>(
        rate *
        static_cast<double>(std::numeric_limits<std::uint64_t>::max()));
    FaultPlan plan;
    plan.charge(victim);
    for (int from = 0; from < kN; ++from) {
      if (from == victim || rng() > threshold) continue;
      FaultSpec spec;
      switch (rng() % 3) {
        case 0:
          spec = {FaultAction::kDrop, 1};
          break;
        case 1:
          spec = {FaultAction::kCorrupt,
                  1 + static_cast<unsigned>(rng() % 4)};
          break;
        default:
          spec = {FaultAction::kDelay, 1 + static_cast<unsigned>(rng() % 2)};
          break;
      }
      plan.add(/*round=*/0, from, victim, spec);
    }
    cluster.set_fault_injector(
        std::make_shared<FaultInjector>(std::move(plan)));
  }
};

// Reconstructs a coin's value from the non-charged players' shares.
// Decode with the same t-error tolerance Coin-Expose uses, in case an
// accepted dealer's corrupted row was absorbed as a decode error and
// left one player a bad delta.
std::optional<F> honest_value(const std::vector<std::optional<F>>& shares,
                              const std::set<int>& charged) {
  std::vector<PointValue<F>> points;
  for (int i = 0; i < kN; ++i) {
    if (charged.count(i) != 0 || !shares[i].has_value()) continue;
    points.push_back({eval_point<F>(i), *shares[i]});
  }
  if (points.size() < kT + 1) return std::nullopt;
  const unsigned max_errors = std::min<unsigned>(
      kT, static_cast<unsigned>((points.size() - kT - 1) / 2));
  return reconstruct_secret<F>(points, kT, max_errors);
}

TEST(ChaosProactiveTest, RefreshUnanimousAndValuePreservingUnderFaults) {
  const int kSeeds = 60;
  std::uint64_t fault_total = 0;
  int refresh_successes = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    ReceiverTrial trial(seed, /*rate=*/0.5);
    auto genesis = trusted_dealer_coins<F>(kN, kT, kM + 1, seed);

    std::vector<RefreshResult<F>> results(kN);
    trial.cluster.run(
        [&](PartyIo& io) {
          const auto& mine = genesis[io.id()];
          const SealedCoin<F> challenge = mine[0];
          const std::vector<SealedCoin<F>> coins(mine.begin() + 1,
                                                 mine.end());
          results[io.id()] = proactive_refresh<F>(
              io, std::span<const SealedCoin<F>>(coins), challenge);
        },
        {}, nullptr);

    std::vector<char> success(kN);
    std::vector<std::vector<int>> refreshers(kN);
    std::vector<std::vector<int>> accepted(kN);
    for (int i = 0; i < kN; ++i) {
      success[i] = results[i].success;
      refreshers[i] = results[i].refreshers;
      accepted[i] = results[i].accepted_dealers;
    }
    expect_honest_unanimous(success, trial.charged, seed,
                            "refresh success flag");
    expect_honest_unanimous(accepted, trial.charged, seed,
                            "refresh accepted dealers");
    expect_honest_unanimous(refreshers, trial.charged, seed,
                            "refresher set");

    const int witness = trial.charged.count(0) != 0 ? 1 : 0;
    if (results[witness].success) {
      ++refresh_successes;
      for (unsigned h = 0; h < kM; ++h) {
        // Old and new sharings must hide the SAME value...
        std::vector<std::optional<F>> before(kN);
        std::vector<std::optional<F>> after(kN);
        for (int i = 0; i < kN; ++i) {
          before[i] = genesis[i][h + 1].share;
          if (results[i].success) {
            after[i] = results[i].coins[h].share;
          }
        }
        const auto v_before = honest_value(before, trial.charged);
        const auto v_after = honest_value(after, trial.charged);
        ASSERT_TRUE(v_before.has_value()) << replay_note(seed);
        ASSERT_TRUE(v_after.has_value())
            << "refreshed sharing of coin " << h
            << " does not decode to degree t; " << replay_note(seed);
        EXPECT_EQ(*v_after, *v_before)
            << "refresh changed coin " << h << "'s value; "
            << replay_note(seed);
        // ...through genuinely different shares (the re-randomization).
        bool any_changed = false;
        for (int i = 0; i < kN; ++i) {
          if (before[i] && after[i] && !(*before[i] == *after[i])) {
            any_changed = true;
          }
        }
        EXPECT_TRUE(any_changed)
            << "refresh left coin " << h << "'s sharing untouched; "
            << replay_note(seed);
      }
    }
    fault_total += trial.cluster.faults().total();
  }
  // The harness must be hitting the network, and honest dealers' rows
  // all arrive under this shape, so every trial must refresh.
  EXPECT_GT(fault_total, static_cast<std::uint64_t>(kSeeds));
  EXPECT_EQ(refresh_successes, kSeeds)
      << "flaky-receiver faults must never sink an honest refresh";
}

// Unrestricted round-0 plans: the charged player's outgoing row delivery
// may fail toward a strict subset of players — an equivocating dealer.
// If such a dealer is accepted (its combination still decodes) and
// drafted as a refresher, players missing its row report failure while
// the rest succeed, so the success flag is NOT asserted unanimous here.
// The broadcast-derived sets must still agree everywhere.
TEST(ChaosProactiveTest, AcceptedSetsUnanimousUnderUnrestrictedFaults) {
  const int kSeeds = 40;
  std::uint64_t fault_total = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    // Horizon 1 round: the broadcast-model caveat above.
    Trial trial(kN, kT, seed, /*rounds=*/1, /*rate=*/0.5);
    auto genesis = trusted_dealer_coins<F>(kN, kT, kM + 1, seed);

    std::vector<RefreshResult<F>> results(kN);
    trial.cluster.run(
        [&](PartyIo& io) {
          const auto& mine = genesis[io.id()];
          const SealedCoin<F> challenge = mine[0];
          const std::vector<SealedCoin<F>> coins(mine.begin() + 1,
                                                 mine.end());
          results[io.id()] = proactive_refresh<F>(
              io, std::span<const SealedCoin<F>>(coins), challenge);
        },
        {}, nullptr);

    std::vector<std::vector<int>> refreshers(kN);
    std::vector<std::vector<int>> accepted(kN);
    for (int i = 0; i < kN; ++i) {
      refreshers[i] = results[i].refreshers;
      accepted[i] = results[i].accepted_dealers;
    }
    expect_honest_unanimous(accepted, trial.charged, seed,
                            "refresh accepted dealers");
    expect_honest_unanimous(refreshers, trial.charged, seed,
                            "refresher set");
    fault_total += trial.cluster.faults().total();
  }
  EXPECT_GT(fault_total, static_cast<std::uint64_t>(kSeeds));
}

// The DPrbg wrapper path: refresh_pool() mid-stream, then keep drawing —
// the refreshed pool must expose the same unanimous coin values it would
// have without the refresh (values are refresh-invariant by design).
// Flaky-receiver shape, for the same reason as above: the wrapper's
// "uniform across honest players" return contract presumes every honest
// dealer's row delivery completes.
TEST(ChaosProactiveTest, DPrbgRefreshPoolKeepsDrawsUnanimousUnderFaults) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    ReceiverTrial trial(seed, /*rate=*/0.4);
    auto genesis = trusted_dealer_coins<F>(kN, kT, 8, seed);

    std::vector<char> refreshed(kN);
    std::vector<std::optional<F>> drawn(kN);
    trial.cluster.run(
        [&](PartyIo& io) {
          typename DPrbg<F>::Options opts;
          opts.reserve = 0;  // no refill mid-test: isolate the refresh
          DPrbg<F> prbg(opts, genesis[io.id()]);
          refreshed[io.id()] = prbg.refresh_pool(io);
          drawn[io.id()] = prbg.next_coin(io);
        },
        {}, nullptr);

    expect_honest_unanimous(refreshed, trial.charged, seed,
                            "refresh_pool outcome");
    expect_honest_unanimous(drawn, trial.charged, seed,
                            "post-refresh coin value");
    const int witness = trial.charged.count(0) != 0 ? 1 : 0;
    EXPECT_TRUE(refreshed[witness]) << replay_note(seed);
    ASSERT_TRUE(drawn[witness].has_value()) << replay_note(seed);
  }
}

}  // namespace
}  // namespace dprbg
