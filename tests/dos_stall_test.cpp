// Stalling-peer DoS scenario: a hostage peer holds round barriers
// hostage (every envelope it stages is a round late) while spraying junk
// on app and coin-protocol tags. The misbehavior layer must (a) detect
// the stall via kSlowEnvelope signals, (b) ban the peer before the coin
// protocol starts, and (c) suppress its traffic so thoroughly that the
// survivors' Coin-Gen/Coin-Expose outputs are bit-for-bit equal to a
// from-scratch run in which the same peer simply crashed — banning a
// live hostile peer and losing a crashed one must be indistinguishable
// to every honest player.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "chaos_util.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "net/misbehavior.h"
#include "net/msg.h"

namespace dprbg {
namespace {

using F = GF2_64;

constexpr int kN = 7, kT = 1, kHostage = 3;
constexpr int kPreRounds = 4;   // app heartbeats before the coin phase
constexpr unsigned kCoins = 2;  // coins generated + exposed per run
constexpr std::uint64_t kSeed = 0x6005;

constexpr std::uint32_t kHeartbeatTag = make_tag(ProtoId::kApp, 0, 0);
// The hostage sprays junk on an app tag AND on a tag colliding with
// Coin-Gen's namespace — traffic that would hit honest decoders if the
// ban did not suppress it.
constexpr std::uint32_t kJunkTags[] = {
    make_tag(ProtoId::kApp, 1, 0),
    make_tag(ProtoId::kCoinGen, 0, 0),
};
constexpr int kJunkTagCount = 2;

// Aggressive policy for the scenario: a slow envelope costs 25, a dozen
// of them (one stalled round's worth of spray) reaches ban_enter — the
// ban lands during the heartbeat phase, well before Coin-Gen starts.
MisbehaviorPolicy stall_policy() {
  MisbehaviorPolicy p;
  p.slow_weight = 25;
  p.suspect_enter = 50;
  p.suspect_exit = 25;
  p.ban_enter = 300;
  p.ban_exit = 150;
  p.decay_per_tick = 0;
  p.permanent_ban = true;
  return p;
}

struct CoinRun {
  std::vector<CoinGenResult<F>> results;             // per player
  std::vector<std::vector<std::optional<F>>> coins;  // [player][coin]
};

// The honest program both runs share: heartbeat rounds whose inbox
// contents are deliberately ignored, then Coin-Gen + Coin-Expose.
Cluster::Program honest_program(
    const std::vector<std::vector<SealedCoin<F>>>& genesis, CoinRun& run) {
  return [&genesis, &run](PartyIo& io) {
    for (int r = 0; r < kPreRounds; ++r) {
      io.send_all(kHeartbeatTag, {static_cast<std::uint8_t>(r)});
      io.sync();
    }
    CoinPool<F> pool;
    for (const auto& c : genesis[static_cast<std::size_t>(io.id())]) {
      pool.add(c);
    }
    const auto result = coin_gen<F>(io, kCoins, pool);
    run.results[static_cast<std::size_t>(io.id())] = result;
    if (!result.success) return;
    const auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
    for (unsigned h = 0; h < kCoins; ++h) {
      run.coins[static_cast<std::size_t>(io.id())].push_back(
          coin_expose<F>(io, sealed[h], /*instance=*/100 + h));
    }
  };
}

// Run B: from-scratch baseline — same seed, same honest program, but the
// hostage simply crashes (never sends) and there is no injector and no
// misbehavior manager at all.
CoinRun run_with_crash() {
  const auto genesis = trusted_dealer_coins<F>(kN, kT, /*coins=*/8, kSeed);
  CoinRun run;
  run.results.resize(kN);
  run.coins.assign(kN, {});
  Cluster cluster(kN, kT, kSeed);
  cluster.run(honest_program(genesis, run), {kHostage},
              /*adversary=*/nullptr);
  return run;
}

TEST(DosStallTest, StallingPeerIsDetectedBannedAndNeutralized) {
  auto mgr = std::make_shared<MisbehaviorManager>(kN, stall_policy());

  const auto genesis = trusted_dealer_coins<F>(kN, kT, /*coins=*/8, kSeed);
  CoinRun hostage_run;
  hostage_run.results.resize(kN);
  hostage_run.coins.assign(kN, {});

  Cluster cluster(kN, kT, kSeed);
  cluster.set_fault_injector(std::make_shared<FaultInjector>(
      chaos::slow_drip_plan(kHostage, kN, kPreRounds, /*delay=*/1)));
  cluster.set_misbehavior_manager(mgr);

  const Cluster::Program adversary = [](PartyIo& io) {
    for (int r = 0; r < kPreRounds + 40; ++r) {
      for (const std::uint32_t tag : kJunkTags) {
        io.send_all(tag, {0xDE, 0xAD, 0xBE, 0xEF});
      }
      io.sync();
    }
  };
  cluster.run(honest_program(genesis, hostage_run), {kHostage}, adversary);

  // (a) The stall was detected: every delayed envelope from the
  // heartbeat phase merged late and was charged to the hostage.
  // kPreRounds rounds x (kN - 1) victims x kJunkTagCount tags.
  const std::uint64_t expect_slow = static_cast<std::uint64_t>(kPreRounds) *
                                    (kN - 1) * kJunkTagCount;
  EXPECT_EQ(cluster.slow_envelopes(), expect_slow);
  EXPECT_EQ(cluster.faults().delayed, expect_slow);
  const auto snap = mgr->peer(kHostage);
  EXPECT_EQ(snap.reports[static_cast<int>(MisbehaviorSignal::kSlowEnvelope)],
            expect_slow);

  // (b) Banned — permanently, exactly once, before the coin phase could
  // be held hostage. Everyone else stays healthy.
  EXPECT_TRUE(mgr->banned(kHostage));
  EXPECT_EQ(mgr->standing(kHostage), PeerStanding::kBanned);
  EXPECT_EQ(snap.bans, 1u);
  EXPECT_EQ(snap.unbans, 0u);
  for (int p = 0; p < kN; ++p) {
    if (p == kHostage) continue;
    EXPECT_EQ(mgr->standing(p), PeerStanding::kHealthy) << "player " << p;
    EXPECT_EQ(mgr->score(p), 0u) << "player " << p;
  }

  // (c) The junk spray was suppressed, and every ledger agrees on how
  // much: cluster counter == domain ledger == the manager's own count.
  EXPECT_GT(cluster.banned_suppressions(), 0u);
  EXPECT_EQ(cluster.domain_ledger(0).banned, cluster.banned_suppressions());
  EXPECT_EQ(mgr->totals().suppressed, cluster.banned_suppressions());
  EXPECT_EQ(snap.suppressed, cluster.banned_suppressions());

  // (d) Survivors succeeded despite the hostage.
  for (int p = 0; p < kN; ++p) {
    if (p == kHostage) continue;
    ASSERT_TRUE(hostage_run.results[static_cast<std::size_t>(p)].success)
        << "player " << p;
    ASSERT_EQ(hostage_run.coins[static_cast<std::size_t>(p)].size(), kCoins);
  }

  // (e) Eviction invariance: banning the live hostile peer must be
  // bit-for-bit indistinguishable (to every honest player) from that
  // peer having crashed before sending anything — same clique, same
  // summed dealer set, same exposed coin values.
  const CoinRun crash_run = run_with_crash();
  for (int p = 0; p < kN; ++p) {
    if (p == kHostage) continue;
    const auto& a = hostage_run.results[static_cast<std::size_t>(p)];
    const auto& b = crash_run.results[static_cast<std::size_t>(p)];
    ASSERT_TRUE(b.success) << "player " << p;
    EXPECT_EQ(a.clique, b.clique) << "player " << p;
    EXPECT_EQ(a.summed_dealers, b.summed_dealers) << "player " << p;
    EXPECT_EQ(a.iterations, b.iterations) << "player " << p;
    for (unsigned h = 0; h < kCoins; ++h) {
      const auto& ca = hostage_run.coins[static_cast<std::size_t>(p)][h];
      const auto& cb = crash_run.coins[static_cast<std::size_t>(p)][h];
      ASSERT_TRUE(ca.has_value()) << "player " << p << " coin " << h;
      ASSERT_TRUE(cb.has_value()) << "player " << p << " coin " << h;
      EXPECT_EQ(*ca, *cb) << "player " << p << " coin " << h;
    }
  }

  // The banned clique never contains the hostage.
  for (int p = 0; p < kN; ++p) {
    if (p == kHostage) continue;
    for (const int member :
         hostage_run.results[static_cast<std::size_t>(p)].clique) {
      EXPECT_NE(member, kHostage);
    }
  }
}

// Control: the same stall plan WITHOUT a misbehavior manager still
// completes (the paper's own fault tolerance covers it) — the manager is
// an availability hardening, not a correctness crutch. This pins the
// contract that installing the manager never becomes load-bearing for
// liveness in the benign case.
TEST(DosStallTest, ScenarioAlsoCompletesWithoutManager) {
  const auto genesis = trusted_dealer_coins<F>(kN, kT, /*coins=*/8, kSeed);
  CoinRun run;
  run.results.resize(kN);
  run.coins.assign(kN, {});
  Cluster cluster(kN, kT, kSeed);
  cluster.run(honest_program(genesis, run), {kHostage},
              /*adversary=*/nullptr);
  for (int p = 0; p < kN; ++p) {
    if (p == kHostage) continue;
    EXPECT_TRUE(run.results[static_cast<std::size_t>(p)].success);
  }
  EXPECT_EQ(cluster.slow_envelopes(), 0u);
  EXPECT_EQ(cluster.banned_suppressions(), 0u);
}

}  // namespace
}  // namespace dprbg
