// Full-stack composition tests: D-PRBG coins -> randomized binary BA ->
// multivalued BA -> reliable broadcast, with no broadcast assumption at
// any layer (the paper's Section 1 / Section 4 motivation).

#include <gtest/gtest.h>

#include <vector>

#include "ba/multivalued.h"
#include "ba/randomized_ba.h"
#include "dprbg/dprbg.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

// Binary BA hook backed by a per-player D-PRBG.
BinaryBa make_coin_ba(DPrbg<F>& prbg) {
  return [&prbg](PartyIo& io, int input, unsigned instance) {
    const auto result = randomized_ba(
        io, input, [&](PartyIo& p) { return prbg.next_bit(p); },
        /*max_phases=*/12, instance);
    return result.decision.value_or(0);
  };
}

TEST(CompositionTest, MultivaluedBaOverRandomizedBinaryBa) {
  const int n = 11, t = 2;
  const auto value = bytes({9, 8, 7});
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 1);
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 1);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F>::Options opts;
    opts.batch_size = 64;
    opts.reserve = 4;
    DPrbg<F> prbg(opts, genesis[io.id()]);
    results[io.id()] = multivalued_ba(io, value, {}, 0, make_coin_ba(prbg));
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(results[i].from_inputs) << i;
    EXPECT_EQ(results[i].value, value) << i;
  }
}

TEST(CompositionTest, BroadcastFromCoinsHonestSender) {
  const int n = 11, t = 2;
  const auto value = bytes({0xCA, 0xFE});
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 2);
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 2);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F>::Options opts;
    opts.batch_size = 64;
    opts.reserve = 4;
    DPrbg<F> prbg(opts, genesis[io.id()]);
    results[io.id()] =
        broadcast_via_ba(io, /*sender=*/5, value, 0, make_coin_ba(prbg));
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(results[i].value, value) << i;
  }
}

TEST(CompositionTest, BroadcastFromCoinsEquivocatingSender) {
  const int n = 11, t = 2;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 3);
  std::vector<MultivaluedResult> results(n);
  Cluster cluster(n, t, 3);
  cluster.run(
      [&](PartyIo& io) {
        DPrbg<F>::Options opts;
        opts.batch_size = 64;
        opts.reserve = 4;
        DPrbg<F> prbg(opts, genesis[io.id()]);
        results[io.id()] =
            broadcast_via_ba(io, /*sender=*/0, {}, 0, make_coin_ba(prbg));
      },
      {0},
      [&](PartyIo& io) {
        const auto tag = make_tag(ProtoId::kRandomizedBa, 0, 42);
        for (int to = 0; to < io.n(); ++to) {
          io.send(to, tag, bytes({static_cast<std::uint8_t>(to % 2)}));
        }
        io.sync();
      });
  for (int i = 2; i < n; ++i) {
    EXPECT_EQ(results[i].value, results[1].value) << i;
  }
}

TEST(CompositionTest, CoinConsumptionFlowsThroughTheStack) {
  // The broadcast consumed coins through the whole stack; the D-PRBG
  // refilled itself along the way — end-to-end self-sufficiency.
  const int n = 11, t = 2;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 4);
  std::uint64_t drawn = 0, refills = 0;
  Cluster cluster(n, t, 4);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F>::Options opts;
    opts.batch_size = 32;
    opts.reserve = 4;
    DPrbg<F> prbg(opts, genesis[io.id()]);
    (void)broadcast_via_ba(io, 5, bytes({1}), 0, make_coin_ba(prbg));
    if (io.id() == 0) {
      drawn = prbg.coins_drawn();
      refills = prbg.refills();
    }
  }));
  EXPECT_GE(drawn, 12u);   // one coin per BA phase (fixed budget)
  EXPECT_GE(refills, 1u);  // genesis alone could not cover it
}

}  // namespace
}  // namespace dprbg
