// Integration tests for Coin-Gen (Fig. 5) + Coin-Expose (Fig. 6):
// Lemma 7 (agreed clique of size >= 4t+1 with an honest reconstruction
// core), Theorem 1 (the generated coins expose unanimously), fault
// tolerance, and statistical coin quality.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

struct GenRun {
  std::vector<CoinGenResult<F>> results;           // per player
  std::vector<std::vector<std::optional<F>>> coins;  // [player][coin]
};

// Runs Coin-Gen for m coins, then exposes all of them.
GenRun run_coin_gen(int n, int t, std::uint64_t seed, unsigned m,
                    const std::vector<int>& faulty = {},
                    const Cluster::Program& adversary = nullptr,
                    int seed_coins = 8) {
  auto genesis = trusted_dealer_coins<F>(n, t, seed_coins, seed);
  GenRun run;
  run.results.resize(n);
  run.coins.assign(n, {});
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        auto result = coin_gen<F>(io, m, pool);
        run.results[io.id()] = result;
        if (!result.success) return;
        const auto sealed =
            result.sealed_coins(static_cast<unsigned>(io.t()));
        for (unsigned h = 0; h < m; ++h) {
          run.coins[io.id()].push_back(
              coin_expose<F>(io, sealed[h], /*instance=*/100 + h));
        }
      },
      faulty, adversary);
  return run;
}

void expect_unanimous_coins(const GenRun& run, int n, unsigned m,
                            const std::set<int>& faulty) {
  int reference = -1;
  for (int i = 0; i < n; ++i) {
    if (faulty.count(i)) continue;
    ASSERT_TRUE(run.results[i].success) << "player " << i;
    ASSERT_EQ(run.coins[i].size(), m) << "player " << i;
    if (reference < 0) reference = i;
    EXPECT_EQ(run.results[i].clique, run.results[reference].clique);
    EXPECT_EQ(run.results[i].summed_dealers,
              run.results[reference].summed_dealers);
    for (unsigned h = 0; h < m; ++h) {
      ASSERT_TRUE(run.coins[i][h].has_value())
          << "player " << i << " coin " << h;
      EXPECT_EQ(*run.coins[i][h], *run.coins[reference][h])
          << "player " << i << " coin " << h;
    }
  }
}

TEST(CoinGenTest, AllHonestSmallSystem) {
  const int n = 7, t = 1;
  const unsigned m = 4;
  const auto run = run_coin_gen(n, t, 1, m);
  expect_unanimous_coins(run, n, m, {});
  // Lemma 7: clique size >= n - 2t; all players qualified when honest.
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(run.results[i].clique.size(),
              static_cast<std::size_t>(n - 2 * t));
    EXPECT_TRUE(run.results[i].qualified);
    EXPECT_EQ(run.results[i].summed_dealers.size(),
              static_cast<std::size_t>(3 * t + 1));
  }
}

TEST(CoinGenTest, ExpectedConstantIterationsAllHonest) {
  // With no faults the first leader is always honest: 1 iteration.
  const auto run = run_coin_gen(7, 1, 2, 2);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(run.results[i].iterations, 1u);
    EXPECT_EQ(run.results[i].seed_coins_used, 2u);  // challenge + leader
  }
}

TEST(CoinGenTest, CrashFaultsTolerated) {
  const int n = 13, t = 2;
  const unsigned m = 3;
  const auto run = run_coin_gen(n, t, 3, m, {0, 7}, nullptr);
  expect_unanimous_coins(run, n, m, {0, 7});
}

TEST(CoinGenTest, CrashedDealersExcludedFromClique) {
  const int n = 13, t = 2;
  const auto run = run_coin_gen(n, t, 4, 2, {0, 7}, nullptr);
  for (int i = 0; i < n; ++i) {
    if (i == 0 || i == 7) continue;
    for (int member : run.results[i].clique) {
      EXPECT_NE(member, 0);
      EXPECT_NE(member, 7);
    }
  }
}

TEST(CoinGenTest, OverDegreeByzantineDealerTolerated) {
  // A Byzantine player deals degree-(t+3) polynomials but otherwise
  // follows the protocol. Honest players must still agree and expose
  // identical coins; the cheater lands outside every honest clique.
  const int n = 13, t = 2;
  const unsigned m = 3;
  const int bad = 4;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 5);
  GenRun run;
  run.results.resize(n);
  run.coins.assign(n, {});
  Cluster cluster(n, t, 5);
  cluster.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        auto result = coin_gen<F>(io, m, pool);
        run.results[io.id()] = result;
        if (!result.success) return;
        const auto sealed =
            result.sealed_coins(static_cast<unsigned>(io.t()));
        for (unsigned h = 0; h < m; ++h) {
          run.coins[io.id()].push_back(
              coin_expose<F>(io, sealed[h], 100 + h));
        }
      },
      {bad},
      [&](PartyIo& io) {
        // Same program as honest coin_gen, but the dealt polynomials have
        // too-high degree. We reuse coin_gen by monkey-patching degree:
        // simplest faithful attack: run the honest code after dealing bad
        // rows manually is complex, so emulate: deal junk rows, then
        // behave honestly for the rest of the rounds (combination values
        // are random junk too).
        const auto row_tag = make_tag(ProtoId::kBitGen, 0, 0);
        for (int i = 0; i < io.n(); ++i) {
          ByteWriter w;
          for (unsigned j = 0; j < m + 1; ++j) {
            write_elem(w, random_element<F>(io.rng()));
          }
          io.send(i, row_tag, std::move(w).take());
        }
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        (void)coin_expose<F>(io, pool.take(), 0);
        // Send junk combinations, then fall silent.
        ByteWriter w;
        for (int dealer = 0; dealer < io.n(); ++dealer) {
          w.u8(1);
          write_elem(w, random_element<F>(io.rng()));
        }
        io.send_all(make_tag(ProtoId::kBitGen, 0, 1), w.data());
        io.sync();
      });
  std::set<int> faulty = {bad};
  expect_unanimous_coins(run, n, m, faulty);
  for (int i = 0; i < n; ++i) {
    if (i == bad) continue;
    for (int member : run.results[i].clique) EXPECT_NE(member, bad);
  }
}

TEST(CoinGenTest, CoinsAreStatisticallyFair) {
  // Many independent Coin-Gen runs; the exposed binary coins should be
  // roughly balanced.
  const int n = 7, t = 1;
  int ones = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const unsigned m = 8;
    const auto run = run_coin_gen(n, t, 200 + seed, m);
    for (unsigned h = 0; h < m; ++h) {
      ASSERT_TRUE(run.coins[0][h].has_value());
      ones += coin_to_bit(*run.coins[0][h]);
      ++total;
    }
  }
  EXPECT_NEAR(double(ones) / total, 0.5, 0.17);
}

TEST(CoinGenTest, DistinctCoinsWithinBatch) {
  // k-ary coins from one batch are independent uniform values — over
  // GF(2^64) they virtually never collide.
  const unsigned m = 16;
  const auto run = run_coin_gen(7, 1, 6, m);
  std::set<std::uint64_t> values;
  for (unsigned h = 0; h < m; ++h) {
    values.insert(run.coins[0][h]->to_uint());
  }
  EXPECT_EQ(values.size(), m);
}

TEST(CoinGenTest, PoolExhaustionFailsUniformly) {
  // Only 1 seed coin: the challenge consumes it and the leader draw
  // cannot happen. Everyone must fail identically (no deadlock, no
  // crash).
  const auto run = run_coin_gen(7, 1, 7, 4, {}, nullptr, /*seed_coins=*/1);
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(run.results[i].success);
    EXPECT_EQ(run.results[i].seed_coins_used, 1u);
  }
}

TEST(CoinGenTest, LargerSystem19Players) {
  const int n = 19, t = 3;
  const unsigned m = 2;
  const auto run = run_coin_gen(n, t, 8, m, {2, 11, 17}, nullptr);
  expect_unanimous_coins(run, n, m, {2, 11, 17});
}

TEST(CoinGenTest, QualifiedSetLargeEnoughForReconstruction) {
  // Theorem 1 precondition: at least 2t+1 honest qualified players.
  const int n = 13, t = 2;
  const auto run = run_coin_gen(n, t, 9, 2, {1, 6}, nullptr);
  int qualified_honest = 0;
  for (int i = 0; i < n; ++i) {
    if (i == 1 || i == 6) continue;
    if (run.results[i].qualified) ++qualified_honest;
  }
  EXPECT_GE(qualified_honest, 2 * t + 1);
}

}  // namespace
}  // namespace dprbg
