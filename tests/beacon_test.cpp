// Sharded beacon (src/beacon/beacon.h): golden determinism and the
// XOR-combination contract.
//
// The beacon's output must be a pure function of its Options seed and
// shape — independent of pipeline depth, simulated link latency, and how
// the committee threads happen to interleave — because honest players in
// a deployment re-derive the same beacon from the same genesis. The
// golden values below pin that function; they were produced by this
// harness and must never drift (a drift means the transcript depends on
// scheduling, which would be a soundness bug, not a refactor).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "beacon/beacon.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

typename Beacon<F>::Options base_options() {
  typename Beacon<F>::Options opts;
  opts.committees = 2;
  opts.committee_size = 7;
  opts.committee_t = 1;
  opts.coins_per_batch = 2;
  opts.batches = 3;
  opts.depth = 2;
  opts.seed = 20260807;
  return opts;
}

std::vector<std::uint64_t> beacon_bits(const typename Beacon<F>::Output& out) {
  std::vector<std::uint64_t> bits;
  for (const F& v : out.beacon) bits.push_back(v.to_uint());
  return bits;
}

TEST(BeaconTest, OutputInvariantAcrossDepthAndLatency) {
  std::vector<std::uint64_t> reference;
  std::vector<std::vector<std::uint64_t>> reference_committees;
  for (unsigned depth : {1u, 2u, 4u}) {
    for (unsigned latency_us : {0u, 500u}) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " latency=" + std::to_string(latency_us));
      auto opts = base_options();
      opts.depth = depth;
      opts.round_latency_us = latency_us;
      Beacon<F> beacon(opts);
      const auto out = beacon.run();
      ASSERT_TRUE(out.success);
      ASSERT_EQ(out.committees.size(), 2u);
      for (const auto& c : out.committees) {
        EXPECT_TRUE(c.unanimous);
        EXPECT_EQ(c.batches_ok, opts.batches);
      }
      EXPECT_EQ(beacon.cluster().stale_rejections(), 0u);
      EXPECT_EQ(beacon.cluster().foreign_rejections(), 0u);
      const auto bits = beacon_bits(out);
      ASSERT_EQ(bits.size(), 6u);  // batches * coins_per_batch
      std::vector<std::vector<std::uint64_t>> committees;
      for (const auto& c : out.committees) {
        std::vector<std::uint64_t> vals;
        for (const F& v : c.coins) vals.push_back(v.to_uint());
        committees.push_back(std::move(vals));
      }
      if (reference.empty()) {
        reference = bits;
        reference_committees = committees;
      } else {
        EXPECT_EQ(bits, reference);
        EXPECT_EQ(committees, reference_committees);
      }
    }
  }
  // The combination is field addition = XOR in GF(2^64).
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i],
              reference_committees[0][i] ^ reference_committees[1][i]);
  }
}

TEST(BeaconTest, DistinctSeedsDiverge) {
  auto opts = base_options();
  Beacon<F> a(opts);
  const auto out_a = a.run();
  opts.seed ^= 0x5EEDF00Dull;
  Beacon<F> b(opts);
  const auto out_b = b.run();
  ASSERT_TRUE(out_a.success);
  ASSERT_TRUE(out_b.success);
  EXPECT_NE(beacon_bits(out_a), beacon_bits(out_b));
}

// Committees must be independent: committee 0's coins with K=2 equal
// committee 0's coins with K=1 (same seed), because its genesis, roster,
// and stream slice do not depend on K.
TEST(BeaconTest, CommitteeZeroUnaffectedByAddingCommittees) {
  auto opts = base_options();
  opts.committees = 1;
  Beacon<F> solo(opts);
  const auto out_solo = solo.run();
  opts.committees = 2;
  Beacon<F> duo(opts);
  const auto out_duo = duo.run();
  ASSERT_TRUE(out_solo.success);
  ASSERT_TRUE(out_duo.success);
  EXPECT_EQ(out_solo.committees[0].coins, out_duo.committees[0].coins);
}

// The K=1 beacon is the raw pre-committee idiom: the same per-batch
// schedule driven directly over the cluster's PartyIo handles yields the
// same coins (the identity-committee bit-for-bit claim, exercised
// through the beacon's own scheduler).
TEST(BeaconTest, SingleCommitteeMatchesRawClusterReference) {
  auto opts = base_options();
  opts.committees = 1;
  opts.depth = 1;
  Beacon<F> beacon(opts);
  const auto out = beacon.run();
  ASSERT_TRUE(out.success);

  const int n = static_cast<int>(opts.committee_size);
  const unsigned genesis_count = opts.batches * (1 + opts.leader_coins);
  auto genesis = trusted_dealer_coins<F>(
      n, opts.committee_t, static_cast<int>(genesis_count),
      committee_seed(opts.seed, 0));
  Cluster cluster(n, static_cast<int>(opts.committee_t), opts.seed);
  std::vector<std::vector<F>> exposed(n);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    unsigned idx = 0;
    for (unsigned b = 0; b < opts.batches; ++b) {
      CoinPool<F> sub;
      sub.add_batch(pool.take_batch(std::min<std::size_t>(
          1 + opts.leader_coins, pool.remaining())));
      const auto res = coin_gen<F>(io.instance(1 + b), opts.coins_per_batch,
                                   sub, opts.max_iterations);
      if (!sub.empty()) pool.add_batch(sub.take_batch(sub.remaining()));
      if (!res.success) continue;
      for (const auto& coin : res.sealed_coins(opts.committee_t)) {
        const auto v = coin_expose<F>(io, coin, idx++);
        if (v) exposed[io.id()].push_back(*v);
      }
    }
  }));
  EXPECT_EQ(out.committees[0].coins, exposed[0]);
  EXPECT_EQ(out.beacon, exposed[0]);
}

// Degraded-mode determinism (the full-drop rule end to end): a K=3
// beacon with committee 2 evicted mid-run emits exactly the beacon a
// from-scratch K=2 run produces — the survivors' XOR is a pure function
// of the surviving committee set, not of when the eviction landed.
TEST(BeaconTest, DegradedOutputMatchesSurvivorsFromScratch) {
  auto opts = base_options();
  opts.committees = 3;
  opts.chaos.scripted_evictions.push_back({2u, 1u});
  Beacon<F> degraded(opts);
  const auto out = degraded.run();

  auto ref_opts = base_options();  // committees 0 and 1, same seeds
  Beacon<F> survivors(ref_opts);
  const auto ref = survivors.run();

  ASSERT_TRUE(out.success);
  ASSERT_TRUE(ref.success);
  EXPECT_TRUE(out.degraded);
  EXPECT_FALSE(ref.degraded);
  EXPECT_EQ(out.committees[2].health, CommitteeHealth::kEvicted);
  EXPECT_EQ(out.beacon, ref.beacon);
  EXPECT_EQ(out.committees[0].coins, ref.committees[0].coins);
  EXPECT_EQ(out.committees[1].coins, ref.committees[1].coins);
  for (std::uint32_t mask : out.window_mask) EXPECT_EQ(mask, 0b011u);
}

}  // namespace
}  // namespace dprbg
