// Chaos over the pipelined Coin-Gen scheduler: random link-fault plans
// and targeted stale-traffic delay floods against a depth-4 overlapped
// schedule. The per-stream fault contract (net/fault.h) applies a plan's
// round r to round r of every stream, so each in-flight batch is hit the
// same way a serial run would be — honest unanimity must hold per batch,
// and no envelope may ever cross batches (stale_rejections() == 0: the
// wire batch tag plus per-stream delay queues make cross-batch delivery
// structurally impossible, and the demux guard backstops it).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "chaos_util.h"
#include "coin/coin_pipeline.h"
#include "common/trace.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "net/fault.h"

namespace dprbg {
namespace {

using F = GF2_64;
using chaos::expect_honest_unanimous;
using chaos::replay_note;
using chaos::Trial;

constexpr int kN = 7;
constexpr unsigned kT = 1;
constexpr unsigned kM = 2;
constexpr unsigned kBatches = 4;
constexpr unsigned kDepth = 4;

std::vector<PipelineResult<F>> run_pipelined(Cluster& cluster,
                                             std::uint64_t seed) {
  auto genesis = trusted_dealer_coins<F>(kN, kT, 32, seed);
  std::vector<PipelineResult<F>> results(kN);
  cluster.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        PipelineOptions opts;
        opts.depth = kDepth;
        results[io.id()] =
            pipelined_coin_gen<F>(io, kM, pool, kBatches, opts);
      },
      {}, nullptr);
  return results;
}

void expect_batches_unanimous(const std::vector<PipelineResult<F>>& results,
                              const std::set<int>& charged,
                              std::uint64_t seed) {
  for (unsigned b = 0; b < kBatches; ++b) {
    std::vector<char> success(kN);
    std::vector<std::vector<int>> cliques(kN);
    std::vector<std::vector<int>> summed(kN);
    std::vector<unsigned> iterations(kN);
    for (int i = 0; i < kN; ++i) {
      success[i] = results[i].batches[b].success;
      cliques[i] = results[i].batches[b].clique;
      summed[i] = results[i].batches[b].summed_dealers;
      iterations[i] = results[i].batches[b].iterations;
    }
    SCOPED_TRACE("batch " + std::to_string(b));
    expect_honest_unanimous(success, charged, seed, "batch success flag");
    expect_honest_unanimous(cliques, charged, seed, "batch clique");
    expect_honest_unanimous(summed, charged, seed, "batch summed dealers");
    expect_honest_unanimous(iterations, charged, seed,
                            "batch iteration count");
  }
}

// ---------------------------------------------------------------------
// Random plans against the overlapped schedule.
// ---------------------------------------------------------------------

TEST(ChaosPipelineTest, OverlappedBatchesUnanimousAcross40FaultPlans) {
  const int kSeeds = 40;
  std::uint64_t fault_total = 0;
  unsigned batch_successes = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    Trial trial(kN, kT, seed, /*rounds=*/48, /*rate=*/0.08);

    const auto results = run_pipelined(trial.cluster, seed);
    expect_batches_unanimous(results, trial.charged, seed);
    EXPECT_EQ(trial.cluster.stale_rejections(), 0u) << replay_note(seed);

    const int witness = trial.charged.count(0) != 0 ? 1 : 0;
    batch_successes += results[witness].successes();
    fault_total += trial.cluster.faults().total();
  }
  // The harness must genuinely hit the overlapped streams, and the
  // faulty-leader retry logic must ride out the vast majority of plans.
  EXPECT_GT(fault_total, static_cast<std::uint64_t>(kSeeds));
  EXPECT_GE(batch_successes, kSeeds * kBatches * 8 / 10)
      << "pipelined Coin-Gen failed far more often than a <= t/n "
         "faulty-leader rate explains";
}

// ---------------------------------------------------------------------
// Stale-traffic flood: long delays pushing one player's envelopes across
// phase (and wall-clock batch) boundaries. Per-stream delay queues mean
// a batch-k envelope re-merges into batch k only — batches k+1, k+2
// running concurrently must see none of it.
// ---------------------------------------------------------------------

TEST(ChaosPipelineTest, StaleTagDelayFloodNeverCrossesBatches) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    const int victim = static_cast<int>(seed % kN);
    FaultPlan plan;
    plan.charge(victim);
    // Delay every outgoing message of the victim for the bulk of a
    // Coin-Gen run's rounds, with delays long enough to land in a later
    // protocol phase of the same stream (deal traffic surfacing during
    // gradecast, gradecast during BA, ...).
    for (std::uint64_t round = 0; round <= 12; ++round) {
      for (int to = 0; to < kN; ++to) {
        if (to == victim) continue;
        plan.add(round, victim, to,
                 FaultSpec{FaultAction::kDelay,
                           static_cast<unsigned>(2 + (round + seed) % 5)});
      }
    }
    Cluster cluster(kN, static_cast<int>(kT), seed);
    cluster.set_fault_injector(
        std::make_shared<FaultInjector>(std::move(plan)));

    tracer().clear();
    tracer().set_enabled(true);
    const auto results = run_pipelined(cluster, seed);
    const auto events = tracer().events();
    tracer().set_enabled(false);
    tracer().clear();

    expect_batches_unanimous(results, {victim}, seed);
    // The flood genuinely delayed traffic on the overlapped streams...
    EXPECT_GT(cluster.faults().delayed, 0u) << replay_note(seed);
    // ...and not one envelope surfaced outside its own batch.
    EXPECT_EQ(cluster.stale_rejections(), 0u) << replay_note(seed);
    // Fault parity holds per-instance: the batch-stamped net/fault trace
    // events reconcile exactly with the cluster's fault counters.
    const FaultCounters traced = sum_fault_events(events);
    EXPECT_EQ(traced.dropped, cluster.faults().dropped) << replay_note(seed);
    EXPECT_EQ(traced.delayed, cluster.faults().delayed) << replay_note(seed);
    EXPECT_EQ(traced.duplicated, cluster.faults().duplicated)
        << replay_note(seed);
    EXPECT_EQ(traced.corrupted, cluster.faults().corrupted)
        << replay_note(seed);
    // Every fault event names the stream it fired on; the flood spans
    // multiple concurrent streams, not just one.
    std::set<std::uint32_t> fault_streams;
    for (const auto& ev : events) {
      if (ev.protocol == "net" && ev.phase == "fault") {
        fault_streams.insert(ev.batch);
      }
    }
    EXPECT_GT(fault_streams.size(), 1u)
        << "flood did not reach the overlapped streams; "
        << replay_note(seed);
  }
}

}  // namespace
}  // namespace dprbg
