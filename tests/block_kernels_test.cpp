// Blocked SoA kernel equivalence (poly/interpolate.h, poly/polynomial.h):
// batch_combine_block / accumulate_rows_block / eval_polys_block must be
// bit-for-bit equal to their scalar loops AND perform identical field op
// counts (the Lemma 2/4/6/8 trace budgets depend on it);
// interpolate_at_block must be value-equal to per-column interpolate_at
// (it is allowed — designed — to use fewer multiplications).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/metrics.h"
#include "gf/gf2.h"
#include "poly/interpolate.h"
#include "poly/polynomial.h"
#include "rng/chacha.h"
#include "sharing/shamir.h"
#include "vss/batch_vss.h"

namespace dprbg {
namespace {

template <typename F>
class BlockKernelsTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<GF2_8, GF2_64>;
TYPED_TEST_SUITE(BlockKernelsTest, FieldTypes);

template <typename F>
std::vector<std::vector<F>> random_matrix(std::size_t rows, std::size_t m,
                                          Chacha& rng) {
  std::vector<std::vector<F>> out(rows);
  for (auto& row : out) {
    row.resize(m);
    for (auto& v : row) v = random_element<F>(rng);
  }
  return out;
}

TYPED_TEST(BlockKernelsTest, BatchCombineBlockMatchesScalarExactly) {
  using F = TypeParam;
  Chacha rng(101);
  for (std::size_t rows : {std::size_t{1}, std::size_t{5}, std::size_t{32},
                           std::size_t{33}, std::size_t{70}}) {
    for (std::size_t m : {std::size_t{1}, std::size_t{4}, std::size_t{65}}) {
      const auto mat = random_matrix<F>(rows, m, rng);
      const F r = random_element<F>(rng);

      const FieldCounters before_scalar = field_counters();
      std::vector<F> expect(rows);
      for (std::size_t i = 0; i < rows; ++i) {
        expect[i] = batch_combine<F>(mat[i], r);
      }
      const FieldCounters scalar_ops = field_counters() - before_scalar;

      std::vector<const F*> ptrs(rows);
      for (std::size_t i = 0; i < rows; ++i) ptrs[i] = mat[i].data();
      std::vector<F> got(rows);
      const FieldCounters before_block = field_counters();
      batch_combine_block<F>(ptrs, m, r, got);
      const FieldCounters block_ops = field_counters() - before_block;

      ASSERT_EQ(got, expect) << "rows=" << rows << " m=" << m;
      EXPECT_EQ(block_ops.adds, scalar_ops.adds) << "rows=" << rows;
      EXPECT_EQ(block_ops.muls, scalar_ops.muls) << "rows=" << rows;
    }
  }
}

TYPED_TEST(BlockKernelsTest, AccumulateRowsBlockMatchesScalarExactly) {
  using F = TypeParam;
  Chacha rng(202);
  for (std::size_t rows : {std::size_t{1}, std::size_t{4}, std::size_t{9}}) {
    for (std::size_t m : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                          std::size_t{200}}) {
      const auto mat = random_matrix<F>(rows, m, rng);

      const FieldCounters before_scalar = field_counters();
      std::vector<F> expect(m, F::zero());
      for (std::size_t h = 0; h < m; ++h) {
        for (std::size_t i = 0; i < rows; ++i) {
          expect[h] = expect[h] + mat[i][h];
        }
      }
      const FieldCounters scalar_ops = field_counters() - before_scalar;

      std::vector<const F*> ptrs(rows);
      for (std::size_t i = 0; i < rows; ++i) ptrs[i] = mat[i].data();
      std::vector<F> got(m, F::zero());
      const FieldCounters before_block = field_counters();
      accumulate_rows_block<F>(ptrs, got);
      const FieldCounters block_ops = field_counters() - before_block;

      ASSERT_EQ(got, expect) << "rows=" << rows << " m=" << m;
      EXPECT_EQ(block_ops.adds, scalar_ops.adds);
      EXPECT_EQ(block_ops.muls, scalar_ops.muls);
    }
  }
}

TYPED_TEST(BlockKernelsTest, EvalPolysBlockMatchesScalarExactly) {
  using F = TypeParam;
  Chacha rng(303);
  for (std::size_t count : {std::size_t{1}, std::size_t{17},
                            std::size_t{32}, std::size_t{40}}) {
    std::vector<Polynomial<F>> polys;
    for (std::size_t j = 0; j < count; ++j) {
      // Ragged degrees (including the zero polynomial) so the per-poly
      // engagement guard is exercised.
      polys.push_back(
          Polynomial<F>::random(static_cast<unsigned>(j % 7), rng));
    }
    polys.push_back(Polynomial<F>{});  // zero polynomial
    const F x = random_element<F>(rng);

    const FieldCounters before_scalar = field_counters();
    std::vector<F> expect;
    for (const auto& p : polys) expect.push_back(p(x));
    const FieldCounters scalar_ops = field_counters() - before_scalar;

    std::vector<F> got(polys.size());
    const FieldCounters before_block = field_counters();
    eval_polys_block<F>(polys, x, got);
    const FieldCounters block_ops = field_counters() - before_block;

    ASSERT_EQ(got, expect) << "count=" << count;
    EXPECT_EQ(block_ops.adds, scalar_ops.adds);
    EXPECT_EQ(block_ops.muls, scalar_ops.muls);
  }
}

TYPED_TEST(BlockKernelsTest, InterpolateAtBlockMatchesPerColumn) {
  using F = TypeParam;
  Chacha rng(404);
  for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{9}}) {
    for (std::size_t m : {std::size_t{1}, std::size_t{7}, std::size_t{80}}) {
      const auto mat = random_matrix<F>(n, m, rng);
      std::vector<PointValue<F>> points(n);
      for (std::size_t i = 0; i < n; ++i) {
        points[i] = {eval_point<F>(static_cast<int>(i)), F::zero()};
      }
      const F target = F::zero();

      std::vector<F> expect(m);
      for (std::size_t h = 0; h < m; ++h) {
        std::vector<PointValue<F>> col(n);
        for (std::size_t i = 0; i < n; ++i) {
          col[i] = {points[i].x, mat[i][h]};
        }
        expect[h] = interpolate_at<F>(col, target);
      }

      std::vector<const F*> ptrs(n);
      for (std::size_t i = 0; i < n; ++i) ptrs[i] = mat[i].data();
      std::vector<F> got(m);
      interpolate_at_block<F>(points, ptrs, target, got);
      ASSERT_EQ(got, expect) << "n=" << n << " m=" << m;
    }
  }
}

// Off-grid points (no cached-grid fast path) take the computed-weights
// branch of interpolate_at_block.
TYPED_TEST(BlockKernelsTest, InterpolateAtBlockOffGrid) {
  using F = TypeParam;
  Chacha rng(505);
  const std::size_t n = 5, m = 13;
  const auto mat = random_matrix<F>(n, m, rng);
  std::vector<PointValue<F>> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Distinct but non-grid x coordinates.
    points[i] = {eval_point<F>(static_cast<int>(2 * i + 1)), F::zero()};
  }
  const F target = random_element<F>(rng);
  std::vector<F> expect(m);
  for (std::size_t h = 0; h < m; ++h) {
    std::vector<PointValue<F>> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = {points[i].x, mat[i][h]};
    expect[h] = interpolate_at<F>(col, target);
  }
  std::vector<const F*> ptrs(n);
  for (std::size_t i = 0; i < n; ++i) ptrs[i] = mat[i].data();
  std::vector<F> got(m);
  interpolate_at_block<F>(points, ptrs, target, got);
  EXPECT_EQ(got, expect);
}

// Arena sanity: nested scopes rewind to their high-water marks and the
// scratch survives heavy reuse without growing unboundedly.
TEST(ArenaTest, ScopedRewindAndReuse) {
  Arena arena(64);
  std::size_t cap_after_first = 0;
  {
    ArenaScope outer(arena);
    auto a = arena.alloc_span<std::uint64_t>(100);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = i;
    {
      ArenaScope inner(arena);
      auto b = arena.alloc_span<std::uint32_t>(1000);
      EXPECT_EQ(b[999], 0u);  // value-initialized
    }
    // Inner scope rewound; outer allocation is intact.
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], i);
    }
    cap_after_first = arena.capacity();
  }
  // Repeated identical usage must not grow capacity further.
  for (int round = 0; round < 100; ++round) {
    ArenaScope scope(arena);
    auto a = arena.alloc_span<std::uint64_t>(100);
    auto b = arena.alloc_span<std::uint32_t>(1000);
    a[0] = b[0];
  }
  EXPECT_EQ(arena.capacity(), cap_after_first);
}

TEST(ArenaTest, AlignmentIsRespected) {
  Arena arena(16);
  for (int i = 0; i < 50; ++i) {
    ArenaScope scope(arena);
    arena.allocate(1, 1);
    void* p = arena.allocate(8, 8);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    void* q = arena.allocate(32, 32);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 32, 0u);
  }
}

TEST(ArenaTest, ScratchVecFallsBackForNonTrivialTypes) {
  Arena arena(64);
  ArenaScope scope(arena);
  ScratchVec<std::vector<int>> v(scope, 3);  // non-trivial destructor
  v[0].push_back(42);
  EXPECT_EQ(v[0][0], 42);
  EXPECT_EQ(v.size(), 3u);
}

}  // namespace
}  // namespace dprbg
