// Tests for the baseline protocols: cut-and-choose VSS, naive from-
// scratch coin, the continuous trusted-dealer stream, and the analytic
// cost models of Section 1.4.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "baseline/cost_models.h"
#include "baseline/cut_and_choose_vss.h"
#include "baseline/dealer_stream.h"
#include "baseline/naive_coin.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

TEST(CutAndChooseVssTest, HonestDealerAccepted) {
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 1);
  Chacha dealer_rng(1, 777);
  const auto poly = Polynomial<F>::random(t, dealer_rng);
  std::vector<CutAndChooseOutcome<F>> outcomes(n);
  Cluster cluster(n, t, 1);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::optional<Polynomial<F>> mine;
    if (io.id() == 0) mine = poly;
    outcomes[io.id()] =
        cut_and_choose_vss<F>(io, 0, t, /*kappa=*/16, mine, coins[io.id()][0]);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(outcomes[i].accepted) << "player " << i;
    EXPECT_EQ(outcomes[i].share, poly(eval_point<F>(i)));
  }
}

TEST(CutAndChooseVssTest, OverDegreeDealerRejectedWithHighProbability) {
  // Per challenge the cheater survives with prob 1/2; with kappa = 16 the
  // acceptance probability is 2^-16 — effectively never.
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 2);
  Chacha dealer_rng(2, 777);
  const auto poly = Polynomial<F>::random(t + 2, dealer_rng);
  std::vector<CutAndChooseOutcome<F>> outcomes(n);
  Cluster cluster(n, t, 2);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::optional<Polynomial<F>> mine;
    if (io.id() == 0) mine = poly;
    outcomes[io.id()] =
        cut_and_choose_vss<F>(io, 0, t, 16, mine, coins[io.id()][0]);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_FALSE(outcomes[i].accepted) << "player " << i;
  }
}

TEST(CutAndChooseVssTest, CostsKappaInterpolations) {
  // The baseline's defining inefficiency vs Fig. 2's single check.
  const int n = 7, t = 2;
  const unsigned kappa = 8;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 3);
  Chacha dealer_rng(3, 777);
  const auto poly = Polynomial<F>::random(t, dealer_rng);
  Cluster cluster(n, t, 3);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::optional<Polynomial<F>> mine;
    if (io.id() == 0) mine = poly;
    (void)cut_and_choose_vss<F>(io, 0, t, kappa, mine, coins[io.id()][0]);
  }));
  for (int i = 0; i < n; ++i) {
    // kappa reveal checks + 1 coin exposure.
    EXPECT_GE(cluster.per_player_field_ops()[i].interpolations, kappa);
    EXPECT_LE(cluster.per_player_field_ops()[i].interpolations, kappa + 1);
  }
}

TEST(NaiveCoinTest, UnanimousWhenHonest) {
  const int n = 7, t = 2;
  std::vector<std::optional<F>> coins(n);
  Cluster cluster(n, t, 4);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    coins[io.id()] = naive_coin<F>(io, t);
  }));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(coins[i].has_value());
    EXPECT_EQ(*coins[i], *coins[0]);
  }
}

TEST(NaiveCoinTest, SequentialCoinsDiffer) {
  std::vector<F> first(7), second(7);
  Cluster cluster(7, 2, 5);
  cluster.run(std::vector<Cluster::Program>(7, [&](PartyIo& io) {
    first[io.id()] = *naive_coin<F>(io, 2, 0);
    second[io.id()] = *naive_coin<F>(io, 2, 1);
  }));
  EXPECT_NE(first[0], second[0]);
}

TEST(NaiveCoinTest, CostsNInterpolationsPerCoin) {
  const int n = 7, t = 2;
  Cluster cluster(n, t, 6);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    (void)naive_coin<F>(io, t);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(cluster.per_player_field_ops()[i].interpolations,
              static_cast<std::uint64_t>(n));
  }
}

TEST(NaiveCoinTest, SurvivesCrashedDealers) {
  const int n = 7, t = 2;
  std::vector<std::optional<F>> coins(n);
  Cluster cluster(n, t, 7);
  cluster.run(
      [&](PartyIo& io) { coins[io.id()] = naive_coin<F>(io, t); },
      {1, 4}, nullptr);
  for (int i = 0; i < n; ++i) {
    if (i == 1 || i == 4) continue;
    ASSERT_TRUE(coins[i].has_value());
    EXPECT_EQ(*coins[i], *coins[2]);
  }
}

TEST(DealerStreamTest, ProvidesUnanimousCoinsForever) {
  const int n = 7, t = 2;
  const int draws = 25;
  std::vector<std::vector<F>> streams(n);
  std::vector<std::uint64_t> visits(n);
  Cluster cluster(n, t, 8);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DealerStream<F> dealer(n, t, io.id(), /*provision=*/8, /*seed=*/999);
    for (int d = 0; d < draws; ++d) {
      streams[io.id()].push_back(*dealer.next_coin(io));
    }
    visits[io.id()] = dealer.dealer_visits();
  }));
  for (int d = 0; d < draws; ++d) {
    for (int i = 1; i < n; ++i) {
      EXPECT_EQ(streams[i][d], streams[0][d]);
    }
  }
  // The defining weakness: the dealer is revisited again and again.
  EXPECT_EQ(visits[0], 4u);  // ceil(25 / 8)
}

TEST(CostModelsTest, AsymptoticOrderingMatchesSection14) {
  // The paper's claim: the D-PRBG's amortized per-coin cost beats every
  // from-scratch protocol it compares against, at any realistic scale.
  for (int n : {7, 13, 25, 49}) {
    const auto fm = feldman_micali_model(n, 64);
    const auto ours = dprbg_model(n, 64, /*m=*/128);
    EXPECT_LT(ours.ops_per_coin, fm.ops_per_coin) << "n=" << n;
    EXPECT_LT(ours.messages_per_coin, fm.messages_per_coin) << "n=" << n;
  }
}

TEST(CostModelsTest, ResilienceAndAssumptions) {
  const auto models = all_models(13, 64, 128);
  ASSERT_EQ(models.size(), 4u);
  // Beaver-So: best resilience but needs complexity assumptions.
  EXPECT_TRUE(models[1].needs_complexity_assumptions);
  EXPECT_GT(models[1].max_t, models[0].max_t);
  // Feldman-Micali and DSS: not all players see the coin.
  EXPECT_FALSE(models[0].all_players_see_coin);
  EXPECT_FALSE(models[2].all_players_see_coin);
  // Ours: unanimous, no assumptions.
  EXPECT_TRUE(models[3].all_players_see_coin);
  EXPECT_FALSE(models[3].needs_complexity_assumptions);
}

TEST(CostModelsTest, AmortizationImprovesWithM) {
  const auto small = dprbg_model(13, 64, 1);
  const auto large = dprbg_model(13, 64, 1024);
  EXPECT_GT(small.messages_per_coin, large.messages_per_coin);
}

}  // namespace
}  // namespace dprbg
