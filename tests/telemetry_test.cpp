// Tests for the live telemetry subsystem (common/telemetry.h):
//   * enable/disable contract — with telemetry disabled, a full cluster
//     run performs ZERO registry mutations (no instruments created, no
//     cells bumped): the disabled mode is an identity, not just "cheap";
//   * histogram bucket math — log-bucketed observations land in the
//     bucket whose [lower, upper] range brackets the value, and every
//     percentile matches a scalar reference computation bucket-for-bucket;
//   * snapshot JSONL round-trip and the Prometheus writer;
//   * registry thread-safety — an 8-thread hammer on shared instruments
//     (exercised under TSan by tools/sanitize.sh);
//   * reconciliation — an enabled cluster run's counters equal the
//     cluster's own ledgers exactly, and BeaconStatus reflects the
//     HealthBoard it distills.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "beacon/beacon_status.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "net/misbehavior.h"

namespace dprbg {
namespace {

using F = GF2_64;

// Every test leaves the global registry empty and telemetry off.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_telemetry_enabled(false);
    metrics().reset();
  }
  void TearDown() override {
    set_telemetry_enabled(false);
    metrics().reset();
  }
};

// ---------------------------------------------------------------------
// Enable/disable contract.
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, DisabledInstrumentMutatorsAreIdentity) {
  Counter& c = metrics().counter("t_counter");
  Gauge& g = metrics().gauge("t_gauge");
  Histogram& h = metrics().histogram("t_hist");
  ASSERT_FALSE(telemetry_enabled());
  c.add(5);
  g.set(42);
  g.add(-3);
  h.observe(1000);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);

  set_telemetry_enabled(true);
  c.add(5);
  g.set(42);
  h.observe(1000);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(g.value(), 42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1000u);
}

// The instrumented hot paths must not even CREATE instruments while
// telemetry is off — a disabled run leaves the registry bit-for-bit
// untouched. This is the zero-overhead claim the E19 bench quantifies.
TEST_F(TelemetryTest, DisabledClusterRunPerformsZeroRegistryMutations) {
  // reset() zeroes instruments but never destroys them (cached refs must
  // stay valid), so measure the registry as a delta, not an absolute.
  const std::size_t size_before = metrics().size();
  const int n = 5;
  const unsigned t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 4, /*seed=*/11);
  Cluster cluster(n, static_cast<int>(t), /*seed=*/11);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    io.send_all(make_tag(ProtoId::kApp, 0, 0), {1, 2, 3});
    io.sync();
    (void)pool.take();
  }));
  cluster.publish_comm_telemetry();
  EXPECT_EQ(metrics().size(), size_before);
  EXPECT_GT(cluster.comm().messages, 0u);  // the run really ran
}

// ---------------------------------------------------------------------
// Histogram bucket math.
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, BucketBoundsBracketEveryValue) {
  // Small values are exact buckets.
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::bucket_of(v), static_cast<unsigned>(v));
    EXPECT_EQ(Histogram::bucket_lower(Histogram::bucket_of(v)), v);
    EXPECT_EQ(Histogram::bucket_upper(Histogram::bucket_of(v)), v);
  }
  // Larger values: lower <= v <= upper, buckets contiguous, index
  // monotone in v.
  const std::vector<std::uint64_t> probes = {
      8, 9, 15, 16, 17, 100, 1000, 4095, 4096, 123456789,
      (1ull << 40) + 12345, ~0ull};
  unsigned last = 0;
  for (std::uint64_t v : probes) {
    const unsigned b = Histogram::bucket_of(v);
    ASSERT_LT(b, Histogram::kBuckets) << v;
    EXPECT_LE(Histogram::bucket_lower(b), v) << v;
    EXPECT_GE(Histogram::bucket_upper(b), v) << v;
    EXPECT_GE(b, last) << v;
    last = b;
  }
  // Contiguity: each bucket's upper is the next bucket's lower - 1.
  for (unsigned b = 0; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_upper(b) + 1, Histogram::bucket_lower(b + 1))
        << b;
  }
  // Relative error bound: bucket width <= lower/8 from 8 upward (the
  // <=12.5% widening the header promises). lower >= 2^msb and width =
  // 2^(msb-3), so width * 8 <= lower exactly.
  for (unsigned b = 8; b < Histogram::kBuckets; ++b) {
    const std::uint64_t lo = Histogram::bucket_lower(b);
    const std::uint64_t width = Histogram::bucket_upper(b) - lo + 1;
    EXPECT_LE(width, lo / 8) << b;
  }
}

// Percentiles against a scalar reference: the histogram may widen a
// value to its bucket, so the correct assertion is bucket equality —
// percentile(q) must be the upper bound of the bucket holding the
// rank-ceil(q*count) element of the sorted sample.
TEST_F(TelemetryTest, PercentilesMatchScalarReference) {
  set_telemetry_enabled(true);
  Histogram& h = metrics().histogram("t_pctl");
  std::vector<std::uint64_t> values;
  std::uint64_t x = 88172645463325252ull;  // xorshift64 stream
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t v = x % 1000000;  // microsecond-latency shaped
    values.push_back(v);
    h.observe(v);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(h.count(), values.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    // Same ceil-rank the implementation uses.
    const double target = q * static_cast<double>(values.size());
    std::size_t rank = static_cast<std::size_t>(target);
    if (static_cast<double>(rank) < target) ++rank;
    if (rank == 0) rank = 1;
    const std::uint64_t ref = values[std::min(rank, values.size()) - 1];
    const std::uint64_t got = h.percentile(q);
    EXPECT_EQ(Histogram::bucket_of(got), Histogram::bucket_of(ref))
        << "q=" << q << " ref=" << ref << " got=" << got;
    EXPECT_EQ(got, Histogram::bucket_upper(Histogram::bucket_of(ref)))
        << "q=" << q;
  }
  // Sum is exact (not bucketed).
  std::uint64_t sum = 0;
  for (std::uint64_t v : values) sum += v;
  EXPECT_EQ(h.sum(), sum);
}

// ---------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, RegistryKeysByNameAndLabelsWithStableRefs) {
  set_telemetry_enabled(true);
  const std::size_t size_before = metrics().size();
  Counter& a = metrics().counter("reqs", "committee=0");
  Counter& b = metrics().counter("reqs", "committee=1");
  Counter& a2 = metrics().counter("reqs", "committee=0");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a2);
  a.add(3);
  b.add(4);
  EXPECT_EQ(metrics().size(), size_before + 2);

  // reset() zeroes values but keeps instruments (cached refs stay valid).
  metrics().reset();
  EXPECT_EQ(metrics().size(), size_before + 2);
  EXPECT_EQ(a.value(), 0u);
  a.add(7);
  EXPECT_EQ(metrics().counter("reqs", "committee=0").value(), 7u);
}

TEST_F(TelemetryTest, SnapshotRoundTripsThroughJsonl) {
  set_telemetry_enabled(true);
  metrics().counter("c_total", "committee=0").add(12);
  metrics().gauge("g_depth").set(-5);
  Histogram& h = metrics().histogram("h_us", "phase=combine");
  h.observe(3);
  h.observe(1000);
  h.observe(123456);
  const MetricsSnapshot snap = metrics().snapshot();

  std::ostringstream os;
  snap.write_json(os);
  std::istringstream is(os.str());
  std::size_t malformed = 9;
  const MetricsSnapshot back = read_snapshot(is, &malformed);
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(back.samples.size(), snap.samples.size());
  for (std::size_t i = 0; i < snap.samples.size(); ++i) {
    const MetricSample& x = snap.samples[i];
    const MetricSample* y = back.find(x.name, x.labels);
    ASSERT_NE(y, nullptr) << x.name;
    EXPECT_EQ(y->type, x.type);
    EXPECT_EQ(y->value, x.value);
    EXPECT_EQ(y->count, x.count);
    EXPECT_EQ(y->sum, x.sum);
    EXPECT_EQ(y->buckets, x.buckets);
    EXPECT_EQ(y->p50, x.p50);
    EXPECT_EQ(y->p999, x.p999);
  }
  // Unknown keys and garbage lines are tolerated, counted, skipped.
  std::istringstream dirty(
      "{\"name\":\"ok\",\"labels\":\"\",\"type\":\"counter\",\"value\":1,"
      "\"future_field\":\"ignored\"}\n"
      "not json at all\n");
  malformed = 0;
  const MetricsSnapshot tol = read_snapshot(dirty, &malformed);
  EXPECT_EQ(tol.samples.size(), 1u);
  EXPECT_EQ(malformed, 1u);
}

TEST_F(TelemetryTest, PrometheusWriterEmitsTypedSamples) {
  set_telemetry_enabled(true);
  metrics().counter("c_total", "committee=2").add(9);
  Histogram& h = metrics().histogram("h_us");
  h.observe(5);
  h.observe(70);
  std::ostringstream os;
  metrics().snapshot().write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE dprbg_c_total counter"), std::string::npos);
  EXPECT_NE(text.find("dprbg_c_total{committee=\"2\"} 9"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dprbg_h_us histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("dprbg_h_us_sum 75"), std::string::npos);
  EXPECT_NE(text.find("dprbg_h_us_count 2"), std::string::npos);
}

// ---------------------------------------------------------------------
// Thread safety (TSan-exercised via tools/sanitize.sh).
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, ConcurrentMutationAndSnapshotIsExact) {
  set_telemetry_enabled(true);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  Counter& c = metrics().counter("hammer_total");
  Gauge& g = metrics().gauge("hammer_depth");
  Histogram& h = metrics().histogram("hammer_us");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([ti, &c, &g, &h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        g.set(static_cast<std::int64_t>(i));
        h.observe(i % 4096);
        if (i % 1024 == 0) {
          // Concurrent registry lookups race instrument creation.
          metrics()
              .counter("hammer_lane", "lane=" + std::to_string(ti % 3))
              .add(1);
          (void)metrics().snapshot();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t lanes = 0;
  for (int lane = 0; lane < 3; ++lane) {
    lanes +=
        metrics().counter("hammer_lane", "lane=" + std::to_string(lane))
            .value();
  }
  // i = 0, 1024, ... fires ceil(kPerThread / 1024) times per thread.
  EXPECT_EQ(lanes, kThreads * ((kPerThread + 1023) / 1024));
  EXPECT_GE(g.value(), 0);  // last-writer-wins, but always a written value
}

// ---------------------------------------------------------------------
// Reconciliation with the cluster's own ledgers.
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, EnabledClusterRunReconcilesWithClusterLedgers) {
  set_telemetry_enabled(true);
  const int n = 5;
  Cluster cluster(n, 1, /*seed=*/21);
  cluster.run(std::vector<Cluster::Program>(n, [](PartyIo& io) {
    for (int r = 0; r < 3; ++r) {
      io.send_all(make_tag(ProtoId::kApp, 0, r), {9, 9, 9, 9});
      io.sync();
    }
  }));
  cluster.publish_comm_telemetry();
  const MetricsSnapshot snap = metrics().snapshot();
  EXPECT_EQ(snap.sum_values("net_domain_messages_total"),
            static_cast<std::int64_t>(cluster.comm().messages));
  EXPECT_EQ(snap.sum_values("net_domain_bytes_total"),
            static_cast<std::int64_t>(cluster.comm().bytes));
  EXPECT_EQ(snap.sum_values("net_stale_rejections_total"),
            static_cast<std::int64_t>(cluster.stale_rejections()));
  EXPECT_EQ(snap.sum_values("net_player_messages_total"),
            static_cast<std::int64_t>(cluster.comm().messages));
  EXPECT_EQ(snap.sum_values("net_player_bytes_total"),
            static_cast<std::int64_t>(cluster.comm().bytes));
  // Per-player counters match the trace ledger player by player.
  const auto per_player = cluster.per_player_comm();
  for (int p = 0; p < n; ++p) {
    const MetricSample* s = snap.find("net_player_bytes_total",
                                      "player=" + std::to_string(p));
    ASSERT_NE(s, nullptr) << p;
    EXPECT_EQ(s->value, static_cast<std::int64_t>(per_player[p].bytes)) << p;
  }
  // publish is delta-based: publishing twice with no traffic in between
  // must not double-count.
  cluster.publish_comm_telemetry();
  const MetricsSnapshot again = metrics().snapshot();
  EXPECT_EQ(again.sum_values("net_player_bytes_total"),
            static_cast<std::int64_t>(cluster.comm().bytes));
  // The barrier-wait histogram saw every non-last arrival.
  const MetricSample* wait = snap.find("net_barrier_wait_us");
  ASSERT_NE(wait, nullptr);
  EXPECT_GT(wait->count, 0u);
}

TEST_F(TelemetryTest, MisbehaviorCountersReconcileWithClusterAndManager) {
  set_telemetry_enabled(true);
  const int n = 4, rounds = 3;
  auto mgr = std::make_shared<MisbehaviorManager>(n);
  // Pre-ban player 2 so the run also exercises the suppression counter.
  mgr->report(2, MisbehaviorSignal::kForeignTraffic, 10);
  ASSERT_TRUE(mgr->banned(2));

  FaultPlan plan;
  plan.charge(1);
  plan.add(/*round=*/0, /*from=*/1, /*to=*/0, {FaultAction::kDelay, 1});
  plan.add(/*round=*/1, /*from=*/1, /*to=*/3, {FaultAction::kDelay, 1});

  Cluster cluster(n, 1, /*seed=*/33);
  cluster.set_fault_injector(
      std::make_shared<FaultInjector>(std::move(plan)));
  cluster.set_misbehavior_manager(mgr);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    for (int r = 0; r < rounds; ++r) {
      io.send_all(make_tag(ProtoId::kApp, 0, r), {7, 7});
      io.sync();
      // Everyone rejects player 0's body: what used to be a silent drop
      // is now an attributable, counted event.
      if (io.id() != 0) io.note_decode_failure(0);
    }
  }));

  // Every new counter reconciles three ways: telemetry snapshot ==
  // cluster ledger == domain ledger (and the manager's own totals).
  const MetricsSnapshot snap = metrics().snapshot();
  const Cluster::DomainLedger ledger = cluster.domain_ledger(0);
  EXPECT_EQ(cluster.decode_rejections(),
            static_cast<std::uint64_t>(n - 1) * rounds);
  EXPECT_EQ(snap.sum_values("net_decode_rejections_total"),
            static_cast<std::int64_t>(cluster.decode_rejections()));
  EXPECT_EQ(ledger.decode, cluster.decode_rejections());
  EXPECT_EQ(cluster.slow_envelopes(), 2u);
  EXPECT_EQ(snap.sum_values("net_slow_envelopes_total"),
            static_cast<std::int64_t>(cluster.slow_envelopes()));
  EXPECT_EQ(ledger.slow, cluster.slow_envelopes());
  EXPECT_GT(cluster.banned_suppressions(), 0u);
  EXPECT_EQ(snap.sum_values("net_banned_suppressed_total"),
            static_cast<std::int64_t>(cluster.banned_suppressions()));
  EXPECT_EQ(ledger.banned, cluster.banned_suppressions());

  // Manager-side instruments: per-signal report counters, ban counter,
  // and the per-peer standing gauge.
  EXPECT_EQ(snap.sum_values("net_misbehavior_reports_total"),
            static_cast<std::int64_t>(mgr->totals().reports));
  EXPECT_EQ(snap.sum_values("net_peer_bans_total"),
            static_cast<std::int64_t>(mgr->totals().bans));
  const MetricSample* standing =
      snap.find("net_peer_standing", "player=2");
  ASSERT_NE(standing, nullptr);
  EXPECT_EQ(standing->value,
            static_cast<std::int64_t>(PeerStanding::kBanned));
}

TEST_F(TelemetryTest, BeaconStatusDistillsHealthBoard) {
  FailoverPolicy policy;
  HealthBoard board(/*committees=*/3, /*batches=*/4, policy);
  board.report_batch_done(0, 0);
  board.report_batch_done(0, 1);
  board.evict(2, 1, EvictionReason::kCrashed);
  const BeaconStatus st = beacon_status(board);
  EXPECT_EQ(st.committees, 3u);
  EXPECT_EQ(st.live, 2u);
  EXPECT_EQ(st.evicted, 1u);
  EXPECT_TRUE(st.degraded);
  EXPECT_EQ(st.counters.evictions, 1u);
  EXPECT_EQ(st.per_committee[0].batches_done, 2u);
  EXPECT_EQ(st.per_committee[2].health, CommitteeHealth::kEvicted);
  EXPECT_EQ(st.per_committee[2].reason, EvictionReason::kCrashed);
  // Telemetry disabled: no pool gauge to read.
  EXPECT_EQ(st.pool_depth, -1);
  const std::string line = st.to_json();
  EXPECT_NE(line.find("\"kind\":\"beacon_status\""), std::string::npos);
  EXPECT_NE(line.find("\"evicted\":1"), std::string::npos);
  EXPECT_NE(line.find("2:evicted(crashed)@1"), std::string::npos);
}

}  // namespace
}  // namespace dprbg
