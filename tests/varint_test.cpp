// Round-trip + adversarial property suite for the canonical varint
// codec (common/varint.h) and its ByteWriter/ByteReader integration.

#include "common/varint.h"

#include <cstdint>
#include <span>
#include <vector>

#include "common/serial.h"
#include "gtest/gtest.h"

namespace dprbg {
namespace {

// Independent reference encoder: builds the 7-bit groups explicitly,
// low-to-high, continuation bit on every group but the last. Kept
// deliberately different in structure from append_varint so the
// differential test is not comparing an implementation against itself.
std::vector<std::uint8_t> reference_encode(std::uint64_t v) {
  std::vector<std::uint8_t> groups;
  do {
    groups.push_back(static_cast<std::uint8_t>(v & 0x7Fu));
    v >>= 7;
  } while (v != 0);
  for (std::size_t i = 0; i + 1 < groups.size(); ++i) groups[i] |= 0x80u;
  return groups;
}

// Boundary values around every 7-bit group edge, plus the 64-bit edges.
std::vector<std::uint64_t> boundary_values() {
  std::vector<std::uint64_t> vals{0, 1, 2, 63, 64};
  for (unsigned shift = 7; shift <= 63; shift += 7) {
    const std::uint64_t edge = 1ull << shift;
    vals.push_back(edge - 2);
    vals.push_back(edge - 1);
    vals.push_back(edge);
    vals.push_back(edge + 1);
  }
  vals.push_back((1ull << 32) - 1);
  vals.push_back(1ull << 32);
  vals.push_back(~0ull - 1);
  vals.push_back(~0ull);
  return vals;
}

TEST(VarintTest, DifferentialAgainstReferenceEncoder) {
  for (const std::uint64_t v : boundary_values()) {
    std::vector<std::uint8_t> enc;
    append_varint(enc, v);
    EXPECT_EQ(enc, reference_encode(v)) << "value " << v;
    EXPECT_EQ(enc.size(), varint_size(v)) << "value " << v;
  }
  // Dense sweep over the first two group boundaries.
  for (std::uint64_t v = 0; v < (1u << 15); ++v) {
    std::vector<std::uint8_t> enc;
    append_varint(enc, v);
    ASSERT_EQ(enc, reference_encode(v)) << "value " << v;
  }
}

TEST(VarintTest, RoundTripAndExactSizes) {
  for (const std::uint64_t v : boundary_values()) {
    std::vector<std::uint8_t> enc;
    append_varint(enc, v);
    // Size grows one byte per 7 bits: 1..10.
    std::size_t expect_size = 1;
    for (std::uint64_t x = v; x >= 0x80; x >>= 7) ++expect_size;
    ASSERT_EQ(enc.size(), expect_size);
    ASSERT_LE(enc.size(), kMaxVarintBytes);
    const VarintDecode d = read_varint(enc);
    ASSERT_TRUE(d.ok) << "value " << v;
    EXPECT_EQ(d.value, v);
    EXPECT_EQ(d.bytes, enc.size());
  }
}

TEST(VarintTest, FiveByteBoundariesExhaustive) {
  // Every encoded length 1..5 has an exact value window; check both ends
  // of each window decode to the window edge and sizes match.
  for (unsigned len = 1; len <= 5; ++len) {
    const std::uint64_t lo = len == 1 ? 0 : 1ull << (7 * (len - 1));
    const std::uint64_t hi = (1ull << (7 * len)) - 1;
    for (const std::uint64_t v : {lo, lo + 1, hi - 1, hi}) {
      EXPECT_EQ(varint_size(v), len) << "value " << v;
      std::vector<std::uint8_t> enc;
      append_varint(enc, v);
      ASSERT_EQ(enc.size(), len);
      const VarintDecode d = read_varint(enc);
      ASSERT_TRUE(d.ok);
      EXPECT_EQ(d.value, v);
    }
  }
}

TEST(VarintTest, TruncationRejected) {
  for (const std::uint64_t v : boundary_values()) {
    std::vector<std::uint8_t> enc;
    append_varint(enc, v);
    // Every strict prefix must fail (the final byte clears the
    // continuation bit, so a prefix always ends mid-run).
    for (std::size_t cut = 0; cut < enc.size(); ++cut) {
      const std::span<const std::uint8_t> prefix(enc.data(), cut);
      EXPECT_FALSE(read_varint(prefix).ok)
          << "value " << v << " cut " << cut;
    }
  }
  EXPECT_FALSE(read_varint({}).ok);
}

TEST(VarintTest, OverlongEncodingsRejected) {
  // Append a redundant zero group to an otherwise valid encoding: the
  // value is unchanged but the spelling is non-minimal.
  for (const std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull,
                                (1ull << 21) - 1}) {
    std::vector<std::uint8_t> enc;
    append_varint(enc, v);
    if (enc.size() >= kMaxVarintBytes) continue;
    std::vector<std::uint8_t> overlong = enc;
    overlong.back() |= 0x80u;  // turn the final group into a continuation
    overlong.push_back(0x00);  // ... followed by an empty group
    EXPECT_FALSE(read_varint(overlong).ok) << "value " << v;
  }
  // Classic two-byte zero.
  EXPECT_FALSE(read_varint(std::vector<std::uint8_t>{0x80, 0x00}).ok);
}

TEST(VarintTest, OverflowRejected) {
  // 10-byte encoding whose final group exceeds bit 63.
  std::vector<std::uint8_t> too_big(10, 0xFF);
  too_big.back() = 0x02;  // bit 64
  EXPECT_FALSE(read_varint(too_big).ok);
  // Exactly u64 max is fine: nine 0xFF then 0x01.
  std::vector<std::uint8_t> max(9, 0xFF);
  max.push_back(0x01);
  const VarintDecode d = read_varint(max);
  ASSERT_TRUE(d.ok);
  EXPECT_EQ(d.value, ~0ull);
  // An 11-byte continuation run can never terminate validly.
  std::vector<std::uint8_t> run(11, 0x80);
  EXPECT_FALSE(read_varint(run).ok);
}

TEST(VarintTest, TwoByteSpaceExhaustive) {
  // All 1- and 2-byte inputs: acceptance matches the canonical predicate
  // exactly. One byte: accepted iff the continuation bit is clear. Two
  // bytes: accepted (consuming 2) iff byte0 continues and byte1 is a
  // terminal nonzero group.
  for (unsigned b0 = 0; b0 < 256; ++b0) {
    const std::uint8_t byte0 = static_cast<std::uint8_t>(b0);
    const VarintDecode one = read_varint(std::vector<std::uint8_t>{byte0});
    EXPECT_EQ(one.ok, (b0 & 0x80u) == 0);
    if (one.ok) EXPECT_EQ(one.value, b0 & 0x7Fu);
    for (unsigned b1 = 0; b1 < 256; ++b1) {
      const std::vector<std::uint8_t> in{byte0,
                                         static_cast<std::uint8_t>(b1)};
      const VarintDecode d = read_varint(in);
      if ((b0 & 0x80u) == 0) {
        // Terminates at byte 0; the second byte is simply not consumed.
        ASSERT_TRUE(d.ok);
        EXPECT_EQ(d.bytes, 1u);
      } else if ((b1 & 0x80u) == 0 && (b1 & 0x7Fu) != 0) {
        ASSERT_TRUE(d.ok) << b0 << " " << b1;
        EXPECT_EQ(d.bytes, 2u);
        EXPECT_EQ(d.value,
                  static_cast<std::uint64_t>(b0 & 0x7Fu) |
                      (static_cast<std::uint64_t>(b1 & 0x7Fu) << 7));
      } else {
        EXPECT_FALSE(d.ok) << b0 << " " << b1;  // truncated or overlong
      }
    }
  }
}

TEST(VarintTest, ByteWriterReaderIntegration) {
  ByteWriter w;
  w.u8(0xAB);
  w.uvarint(0);
  w.uvarint(127);
  w.uvarint(300);
  w.uvarint(~0ull);
  w.u16(0xBEEF);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.uvarint(), 0u);
  EXPECT_EQ(r.uvarint(), 127u);
  EXPECT_EQ(r.uvarint(), 300u);
  EXPECT_EQ(r.uvarint(), ~0ull);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_TRUE(r.done());
}

TEST(VarintTest, ReaderFailsPermanentlyOnBadVarint) {
  const std::vector<std::uint8_t> bad{0x80, 0x00, 0x42};  // overlong + junk
  ByteReader r(bad);
  EXPECT_EQ(r.uvarint(), 0u);
  EXPECT_FALSE(r.ok());
  // Parked at the end: subsequent reads keep failing, done() stays false.
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.done());
}

}  // namespace
}  // namespace dprbg
