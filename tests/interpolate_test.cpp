// Tests for Lagrange interpolation and the degree test (Problem 1's
// "basic solution", Section 3.1).

#include <gtest/gtest.h>

#include <vector>

#include "gf/gf2.h"
#include "poly/interpolate.h"
#include "poly/polynomial.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

using F = GF2_32;
using P = Polynomial<F>;

F fe(std::uint64_t v) { return F::from_uint(v); }

std::vector<PointValue<F>> sample(const P& p, int n) {
  std::vector<PointValue<F>> pts;
  for (int i = 1; i <= n; ++i) {
    pts.push_back({fe(i), p(fe(i))});
  }
  return pts;
}

TEST(InterpolateTest, RecoversOriginalPolynomial) {
  Chacha rng(1);
  for (unsigned deg = 0; deg <= 10; ++deg) {
    const P p = P::random(deg, rng);
    const auto pts = sample(p, static_cast<int>(deg) + 1);
    EXPECT_EQ(lagrange_interpolate<F>(pts), p) << "deg=" << deg;
  }
}

TEST(InterpolateTest, MorePointsThanDegreeStillExact) {
  Chacha rng(2);
  const P p = P::random(4, rng);
  const auto pts = sample(p, 12);
  // Using only the first 5 points must reconstruct p exactly.
  EXPECT_EQ(lagrange_interpolate<F>(std::span(pts).first(5)), p);
}

TEST(InterpolateTest, SinglePointConstant) {
  const std::vector<PointValue<F>> pts = {{fe(3), fe(42)}};
  const P p = lagrange_interpolate<F>(pts);
  EXPECT_EQ(p.degree(), 0);
  EXPECT_EQ(p(fe(99)), fe(42));
}

TEST(InterpolateTest, InterpolateAtMatchesFull) {
  Chacha rng(3);
  const P p = P::random(6, rng);
  const auto pts = sample(p, 7);
  EXPECT_EQ(interpolate_at<F>(pts, F::zero()), p(F::zero()));
  EXPECT_EQ(interpolate_at<F>(pts, fe(1000)), p(fe(1000)));
}

TEST(InterpolateTest, DegreeTestAcceptsLowDegree) {
  Chacha rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const P p = P::random(3, rng);
    const auto pts = sample(p, 10);
    EXPECT_TRUE(is_degree_at_most<F>(pts, 3));
    EXPECT_TRUE(is_degree_at_most<F>(pts, 5));
  }
}

TEST(InterpolateTest, DegreeTestRejectsHighDegree) {
  Chacha rng(5);
  int rejected = 0;
  for (int trial = 0; trial < 20; ++trial) {
    P p = P::random(7, rng);
    while (p.degree() < 7) p = P::random(7, rng);  // force degree exactly 7
    const auto pts = sample(p, 10);
    if (!is_degree_at_most<F>(pts, 3)) ++rejected;
  }
  // Over GF(2^32) a random degree-7 polynomial never looks degree-3 on 10
  // points except with probability ~2^-32 per trial.
  EXPECT_EQ(rejected, 20);
}

TEST(InterpolateTest, DegreeTestVacuousWithFewPoints) {
  Chacha rng(6);
  const P p = P::random(9, rng);
  const auto pts = sample(p, 4);
  EXPECT_TRUE(is_degree_at_most<F>(pts, 3));  // 4 points always fit deg 3
}

TEST(InterpolateTest, ShuffledPointsGiveSamePolynomial) {
  Chacha rng(7);
  const P p = P::random(5, rng);
  auto pts = sample(p, 6);
  std::swap(pts[0], pts[5]);
  std::swap(pts[2], pts[3]);
  EXPECT_EQ(lagrange_interpolate<F>(pts), p);
}

TEST(InterpolateTest, CountsOneInterpolation) {
  Chacha rng(8);
  const P p = P::random(3, rng);
  const auto pts = sample(p, 4);
  const FieldCounters before = field_counters();
  (void)lagrange_interpolate<F>(pts);
  const FieldCounters delta = field_counters() - before;
  EXPECT_EQ(delta.interpolations, 1u);
}

}  // namespace
}  // namespace dprbg
