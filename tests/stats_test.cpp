// Tests for the bit-statistics module and the randomized-BA-backed
// Coin-Gen (the "run any BA protocol" extension point with its seed-coin
// accounting, Section 1.2).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "ba/randomized_ba.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "common/stats.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

using F = GF2_64;

TEST(StatsTest, FairRandomBitsPass) {
  Chacha rng(1);
  std::vector<int> bits;
  for (int i = 0; i < 20000; ++i) {
    bits.push_back(static_cast<int>(rng.next_u32() & 1u));
  }
  const auto q = analyze_bits(bits);
  EXPECT_TRUE(q.passes()) << "monobit=" << q.monobit << " runs=" << q.runs
                          << " serial=" << q.serial;
}

TEST(StatsTest, BiasedBitsFailMonobit) {
  Chacha rng(2);
  std::vector<int> bits;
  for (int i = 0; i < 20000; ++i) {
    bits.push_back(rng.uniform(10) < 6 ? 1 : 0);  // 60/40 bias
  }
  EXPECT_GT(std::abs(monobit_z(bits)), 4.5);
}

TEST(StatsTest, AlternatingBitsFailRunsAndSerial) {
  std::vector<int> bits;
  for (int i = 0; i < 10000; ++i) bits.push_back(i & 1);
  EXPECT_NEAR(monobit_z(bits), 0.0, 0.1);          // perfectly balanced...
  EXPECT_GT(std::abs(runs_z(bits)), 4.5);          // ...but obviously not
  EXPECT_GT(std::abs(serial_z(bits)), 4.5);        // independent
}

TEST(StatsTest, ConstantBitsFailMonobit) {
  std::vector<int> bits(1000, 1);
  EXPECT_GT(std::abs(monobit_z(bits)), 4.5);
  EXPECT_EQ(runs_z(bits), 0.0);  // documented degenerate-case behaviour
}

TEST(StatsTest, DprbgCoinBitsPassAllChecks) {
  // The real deliverable: bits coming out of the full protocol stack look
  // random under all three checks.
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 3);
  std::vector<int> bits;
  Cluster cluster(n, t, 3);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    const auto result = coin_gen<F>(io, 64, pool);
    ASSERT_TRUE(result.success);
    const auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
    std::vector<int> local;
    for (unsigned h = 0; h < 64; ++h) {
      const auto v = coin_expose<F>(io, sealed[h], 100 + h);
      ASSERT_TRUE(v.has_value());
      // Use all 64 bits of each k-ary coin.
      for (unsigned b = 0; b < F::kBits; ++b) {
        local.push_back(static_cast<int>((v->to_uint() >> b) & 1u));
      }
    }
    if (io.id() == 0) bits = std::move(local);
  }));
  ASSERT_EQ(bits.size(), 64u * 64u);
  const auto q = analyze_bits(bits);
  EXPECT_TRUE(q.passes()) << "monobit=" << q.monobit << " runs=" << q.runs
                          << " serial=" << q.serial;
}

TEST(RandomizedCoinGenTest, CoinGenWithRandomizedBa) {
  // Fully randomized pipeline: Coin-Gen's agreement step itself runs the
  // coin-driven randomized BA, drawing from the same pool (Section 1.2's
  // accounting scenario). n >= 6t+1 also satisfies randomized BA's
  // n >= 5t+1.
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 24, 4);
  std::vector<CoinGenResult<F>> results(n);
  std::vector<std::optional<F>> values(n);
  std::vector<unsigned> pool_used(n, 0);
  Cluster cluster(n, t, 4);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    // The BA hook consumes binary coins straight from the shared pool.
    const BinaryBa randomized = [&pool](PartyIo& pio, int input,
                                        unsigned instance) {
      const auto result = randomized_ba(
          pio, input,
          [&pool](PartyIo& p) -> std::optional<int> {
            if (pool.empty()) return std::nullopt;
            const unsigned inst =
                static_cast<unsigned>(2000 + pool.consumed() % 2000);
            const auto v = coin_expose<F>(p, pool.take(), inst);
            if (!v) return std::nullopt;
            return coin_to_bit(*v);
          },
          /*max_phases=*/8, instance);
      return result.decision.value_or(0);
    };
    results[io.id()] = coin_gen<F>(io, 4, pool, 16, randomized);
    if (!results[io.id()].success) return;
    pool_used[io.id()] =
        static_cast<unsigned>(24 - pool.remaining());
    const auto sealed =
        results[io.id()].sealed_coins(static_cast<unsigned>(io.t()));
    values[io.id()] = coin_expose<F>(io, sealed[0], 999);
  }));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(results[i].success) << i;
    ASSERT_TRUE(values[i].has_value()) << i;
    EXPECT_EQ(*values[i], *values[0]);
  }
  // Accounting (Section 1.2): the randomized BA burned 8 coins per
  // iteration on top of the challenge + leader draws — the "coins needed
  // by the BA protocol must be taken into consideration".
  EXPECT_EQ(pool_used[0],
            results[0].seed_coins_used + results[0].iterations * 8);
}

}  // namespace
}  // namespace dprbg
