// Tests for Protocol VSS (Fig. 2): completeness, soundness (Lemma 1),
// cost accounting (Lemma 2), fault tolerance.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "vss/vss.h"

namespace dprbg {
namespace {

using F = GF2_64;

struct VssRun {
  std::vector<std::optional<VssOutcome<F>>> outcomes;
};

VssRun run_vss(int n, int t, std::uint64_t seed, unsigned poly_degree,
               const std::vector<int>& faulty = {},
               const Cluster::Program& adversary = nullptr) {
  auto coins = trusted_dealer_coins<F>(n, t, 1, seed);
  Chacha dealer_rng(seed, 777);
  const auto poly = Polynomial<F>::random(poly_degree, dealer_rng);
  VssRun run;
  run.outcomes.assign(n, std::nullopt);
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        std::optional<Polynomial<F>> mine;
        if (io.id() == 0) mine = poly;
        run.outcomes[io.id()] = vss_share_and_verify<F>(
            io, /*dealer=*/0, t, mine, coins[io.id()][0]);
      },
      faulty, adversary);
  return run;
}

TEST(VssTest, HonestDealerAccepted) {
  const auto run = run_vss(7, 2, 1, /*poly_degree=*/2);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(run.outcomes[i].has_value());
    EXPECT_TRUE(run.outcomes[i]->accepted) << "player " << i;
  }
}

TEST(VssTest, SharesMatchDealtPolynomial) {
  Chacha dealer_rng(2, 777);
  const auto poly = Polynomial<F>::random(2, dealer_rng);
  const auto run = run_vss(7, 2, 2, 2);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(run.outcomes[i]->share, poly(eval_point<F>(i)));
  }
}

TEST(VssTest, OverDegreeDealerRejected) {
  // Degree t+1 sharing: over GF(2^64), acceptance probability is 2^-64.
  const auto run = run_vss(7, 2, 3, /*poly_degree=*/3);
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(run.outcomes[i]->accepted) << "player " << i;
  }
}

TEST(VssTest, FarOverDegreeDealerRejected) {
  const auto run = run_vss(7, 2, 4, /*poly_degree=*/6);
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(run.outcomes[i]->accepted);
  }
}

TEST(VssTest, UnanimousUnderCrashFaults) {
  const auto run = run_vss(7, 2, 5, 2, {3, 6}, nullptr);
  for (int i = 0; i < 7; ++i) {
    if (i == 3 || i == 6) continue;
    EXPECT_TRUE(run.outcomes[i]->accepted) << "player " << i;
  }
}

TEST(VssTest, ByzantineCombinersCannotForceReject) {
  // Faulty players broadcast wrong beta values; honest players must still
  // accept an honest dealer (Berlekamp-Welch absorbs t lies).
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 6);
  Chacha dealer_rng(6, 777);
  const auto poly = Polynomial<F>::random(t, dealer_rng);
  std::vector<std::optional<VssOutcome<F>>> outcomes(n);
  Cluster cluster(n, t, 6);
  cluster.run(
      [&](PartyIo& io) {
        std::optional<Polynomial<F>> mine;
        if (io.id() == 0) mine = poly;
        outcomes[io.id()] =
            vss_share_and_verify<F>(io, 0, t, mine, coins[io.id()][0]);
      },
      {4, 5},
      [&](PartyIo& io) {
        // Participate in the coin exposure honestly (shares are valid),
        // then lie in the combination broadcast.
        (void)coin_expose<F>(io, coins[io.id()][0]);
        ByteWriter w;
        write_elem(w, random_element<F>(io.rng()));
        io.send_all(make_tag(ProtoId::kVss, 0, 2), w.data());
        io.sync();
      });
  for (int i = 0; i < n; ++i) {
    if (i == 4 || i == 5) continue;
    EXPECT_TRUE(outcomes[i]->accepted) << "player " << i;
  }
}

TEST(VssTest, InconsistentSharesRejected) {
  // A Byzantine dealer sends shares of a *high-degree* polynomial by
  // sending each player a random value: with overwhelming probability no
  // degree-2 polynomial fits any 5 of the 7 random points.
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 7);
  std::vector<std::optional<VssOutcome<F>>> outcomes(n);
  Cluster cluster(n, t, 7);
  cluster.run(
      [&](PartyIo& io) {
        outcomes[io.id()] = vss_share_and_verify<F>(
            io, 0, t, std::nullopt, coins[io.id()][0]);
      },
      {0},
      [&](PartyIo& io) {
        // Dealer role: random junk shares, then follow the protocol shape.
        for (int i = 0; i < io.n(); ++i) {
          ByteWriter w;
          write_elem(w, random_element<F>(io.rng()));
          write_elem(w, random_element<F>(io.rng()));
          io.send(i, make_tag(ProtoId::kVss, 0, 0), std::move(w).take());
        }
        (void)coin_expose<F>(io, coins[io.id()][0]);
        io.sync();
      });
  for (int i = 1; i < n; ++i) {
    EXPECT_FALSE(outcomes[i]->accepted) << "player " << i;
  }
}

TEST(VssTest, LargerSystemsWork) {
  for (int t : {1, 3, 4}) {
    const int n = 3 * t + 1;
    const auto run = run_vss(n, t, 100 + t, t);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(run.outcomes[i]->accepted) << "n=" << n << " i=" << i;
    }
  }
}

TEST(VssTest, CostMatchesLemma2Shape) {
  // Lemma 2: 2 interpolations per player, 2 rounds, O(n) messages of size
  // k. We check the interpolation count and the communication volume.
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 8);
  Chacha dealer_rng(8, 777);
  const auto poly = Polynomial<F>::random(t, dealer_rng);
  Cluster cluster(n, t, 8);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::optional<Polynomial<F>> mine;
    if (io.id() == 0) mine = poly;
    (void)vss_share_and_verify<F>(io, 0, t, mine, coins[io.id()][0]);
  }));
  // Each player: 1 interpolation for the coin + 1 for the degree check.
  for (int i = 0; i < n; ++i) {
    EXPECT_LE(cluster.per_player_field_ops()[i].interpolations, 2u)
        << "player " << i;
  }
  // Communication: coin shares (n*(n-1)) + dealer shares (n-1) + combos
  // (n*(n-1)); all messages O(k) bytes.
  const auto& comm = cluster.comm();
  EXPECT_LE(comm.messages, static_cast<std::uint64_t>(2 * n * n + n));
  EXPECT_EQ(comm.rounds, 2u);
}

}  // namespace
}  // namespace dprbg
