// Committee failover (src/beacon/beacon_failover.h): the beacon keeps
// emitting when a committee is evicted, crashed, stalled, or caught
// misbehaving.
//
// The load-bearing claim is the full-drop rule: an evicted committee
// contributes NOTHING to the combination, so the degraded output is a
// pure function of the surviving committee set — "evict committee c" and
// "run from scratch without committee c" must produce the same beacon.
// The HealthBoard's latched gates are what keep an eviction from
// deadlocking the evicted committee's own roster barriers; the unit test
// pins the latch semantics directly.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "beacon/beacon.h"
#include "beacon/beacon_failover.h"
#include "gf/gf2.h"
#include "net/fault.h"

namespace dprbg {
namespace {

using F = GF2_64;

typename Beacon<F>::Options base_options() {
  typename Beacon<F>::Options opts;
  opts.committees = 2;
  opts.committee_size = 7;
  opts.committee_t = 1;
  opts.coins_per_batch = 2;
  opts.batches = 3;
  opts.depth = 2;
  opts.seed = 20260807;
  return opts;
}

TEST(HealthBoardTest, LatchedGatesAndMinLiveFloor) {
  FailoverPolicy policy;  // enabled, min_live = 1
  HealthBoard board(2, 4, policy);

  // Gates latch on first consult; eviction only closes future gates.
  EXPECT_TRUE(board.may_launch(0, 0));
  EXPECT_TRUE(board.evict(0, 2, EvictionReason::kScripted));
  EXPECT_TRUE(board.may_launch(0, 0));  // latched open stays open
  EXPECT_TRUE(board.may_launch(0, 1));  // batches before evicted_at run
  EXPECT_FALSE(board.may_launch(0, 2));
  EXPECT_TRUE(board.launched(0, 0));
  EXPECT_FALSE(board.launched(0, 2));
  EXPECT_FALSE(board.launched(0, 3));  // never consulted -> not launched
  EXPECT_FALSE(board.may_expose(0));
  EXPECT_EQ(board.health(0), CommitteeHealth::kEvicted);
  EXPECT_EQ(board.reason(0), EvictionReason::kScripted);
  EXPECT_EQ(board.evicted_at(0), 2u);
  EXPECT_TRUE(board.evict(0, 1, EvictionReason::kStalled));  // idempotent
  EXPECT_EQ(board.reason(0), EvictionReason::kScripted);     // first wins

  // The min_live floor refuses to black out the beacon.
  EXPECT_FALSE(board.evict(1, 0, EvictionReason::kStalled));
  EXPECT_EQ(board.health(1), CommitteeHealth::kLive);
  EXPECT_TRUE(board.may_expose(1));
  EXPECT_EQ(board.live_count(), 1u);

  // Lagging flips back to live on progress.
  board.mark_lagging(1);
  EXPECT_EQ(board.health(1), CommitteeHealth::kLagging);
  board.report_batch_done(1, 0);
  EXPECT_EQ(board.health(1), CommitteeHealth::kLive);
  EXPECT_EQ(board.batches_done(1), 1u);

  const HealthCounters c = board.counters();
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.cancelled_batches, 1u);
  EXPECT_EQ(c.lagging_transitions, 1u);
}

TEST(HealthBoardTest, DisabledPolicyOpensEverything) {
  FailoverPolicy policy;
  policy.enabled = false;
  HealthBoard board(2, 4, policy);
  EXPECT_TRUE(board.evict(0, 0, EvictionReason::kScripted));
  EXPECT_TRUE(board.may_launch(0, 0));  // gates ignore the eviction
  EXPECT_TRUE(board.may_expose(0));
  EXPECT_EQ(board.counters().cancelled_batches, 0u);
}

// Full-drop determinism: evicting committee 1 (scripted, before launch)
// leaves exactly the solo committee-0 beacon, flagged degraded with
// every window masked to committee 0 only.
TEST(BeaconFailoverTest, ScriptedEvictionDropsCommitteeFromCombine) {
  auto solo_opts = base_options();
  solo_opts.committees = 1;
  Beacon<F> solo(solo_opts);
  const auto ref = solo.run();
  ASSERT_TRUE(ref.success);

  auto opts = base_options();
  opts.chaos.scripted_evictions.push_back({1u, 0u});
  Beacon<F> beacon(opts);
  const auto out = beacon.run();

  ASSERT_TRUE(out.success);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.committees[1].health, CommitteeHealth::kEvicted);
  EXPECT_EQ(out.committees[1].reason, EvictionReason::kScripted);
  EXPECT_TRUE(out.committees[1].coins.empty());
  EXPECT_EQ(out.committees[0].health, CommitteeHealth::kLive);
  EXPECT_EQ(out.beacon, ref.beacon);
  ASSERT_EQ(out.window_mask.size(), opts.batches);
  for (std::uint32_t mask : out.window_mask) EXPECT_EQ(mask, 0b01u);
  EXPECT_EQ(out.health.evictions, 1u);
  EXPECT_GT(out.health.cancelled_batches, 0u);
}

// The full-drop rule discards even pre-eviction batches, so the eviction
// batch does not matter: evicting committee 1 at batch 0 and at batch 2
// yield the same surviving output.
TEST(BeaconFailoverTest, EvictionAtAnyBatchYieldsSameSurvivorOutput) {
  auto early_opts = base_options();
  early_opts.chaos.scripted_evictions.push_back({1u, 0u});
  Beacon<F> early(early_opts);
  const auto out_early = early.run();

  auto late_opts = base_options();
  late_opts.chaos.scripted_evictions.push_back({1u, 2u});
  Beacon<F> late(late_opts);
  const auto out_late = late.run();

  ASSERT_TRUE(out_early.success);
  ASSERT_TRUE(out_late.success);
  EXPECT_TRUE(out_late.degraded);
  EXPECT_EQ(out_late.committees[1].health, CommitteeHealth::kEvicted);
  EXPECT_EQ(out_late.committees[1].evicted_at, 2u);
  EXPECT_EQ(out_late.committees[1].batches_done, 2u);  // ran batches 0, 1
  EXPECT_EQ(out_early.beacon, out_late.beacon);
  EXPECT_EQ(out_early.window_mask, out_late.window_mask);
}

// A committee whose members all die mid-run (after batch 0, before
// exposing anything) is detected by the combine-time crash fallback even
// with the wall-clock monitor off, and the survivors' output is the solo
// beacon.
TEST(BeaconFailoverTest, CrashedCommitteeDetectedAndOutputDegraded) {
  auto solo_opts = base_options();
  solo_opts.committees = 1;
  Beacon<F> solo(solo_opts);
  const auto ref = solo.run();

  auto opts = base_options();
  opts.chaos.crash_committee = 1;
  opts.chaos.crash_at_batch = 1;
  Beacon<F> beacon(opts);
  const auto out = beacon.run();

  ASSERT_TRUE(out.success);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.committees[1].health, CommitteeHealth::kEvicted);
  EXPECT_EQ(out.committees[1].reason, EvictionReason::kCrashed);
  EXPECT_EQ(out.committees[1].batches_done, 1u);
  EXPECT_TRUE(out.committees[1].coins.empty());
  EXPECT_EQ(out.beacon, ref.beacon);
  for (std::uint32_t mask : out.window_mask) EXPECT_EQ(mask, 0b01u);
}

// Wall-clock failover: committee 1 runs at a simulated 150 ms per round
// while committee 0 runs at full speed; the budget monitor evicts it and
// the beacon finishes from committee 0 alone. Timing-dependent by
// design, so the budget is generous: the only way this flakes is a
// healthy committee taking > 1.2 s per batch.
TEST(BeaconFailoverTest, WallClockMonitorEvictsStalledCommittee) {
  auto solo_opts = base_options();
  solo_opts.committees = 1;
  solo_opts.depth = 1;
  Beacon<F> solo(solo_opts);
  const auto ref = solo.run();

  auto opts = base_options();
  opts.depth = 1;
  opts.failover.wall_budget_ms = 600;
  opts.failover.lagging_after = 0.5;
  opts.failover.evict_after = 2.0;
  opts.failover.poll_ms = 10;
  Beacon<F> beacon(opts);
  beacon.committee(1).set_round_latency_us(150000);
  const auto out = beacon.run();

  ASSERT_TRUE(out.success);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.committees[1].health, CommitteeHealth::kEvicted);
  // kCrashed if the monitor fired before batch 0 completed, kStalled
  // after; both mean "over wall budget" here.
  EXPECT_TRUE(out.committees[1].reason == EvictionReason::kCrashed ||
              out.committees[1].reason == EvictionReason::kStalled)
      << "reason=" << to_string(out.committees[1].reason);
  EXPECT_EQ(out.committees[0].health, CommitteeHealth::kLive);
  EXPECT_EQ(out.beacon, ref.beacon);
  EXPECT_GE(out.health.evictions, 1u);
}

// Misbehavior-score failover: committee 1 carries a heavy link-fault
// plan; its domain ledger crosses the eviction threshold at the first
// gate after the faults fire and the committee is dropped, leaving the
// solo committee-0 output.
TEST(BeaconFailoverTest, MisbehaviorScoreEvictsFaultyCommittee) {
  auto solo_opts = base_options();
  solo_opts.committees = 1;
  solo_opts.depth = 1;
  Beacon<F> solo(solo_opts);
  const auto ref = solo.run();

  auto opts = base_options();
  opts.depth = 1;
  opts.failover.misbehavior_threshold = 1;  // any charged effect evicts
  Beacon<F> beacon(opts);
  FaultPlanParams params;
  params.n = static_cast<int>(opts.committee_size);
  params.t = opts.committee_t;
  params.rounds = 12;
  params.fault_rate = 0.5;
  beacon.committee(1).set_fault_injector(random_fault_plan(params, 4242));
  const auto out = beacon.run();

  ASSERT_TRUE(out.success);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.committees[1].health, CommitteeHealth::kEvicted);
  EXPECT_EQ(out.committees[1].reason, EvictionReason::kMisbehavior);
  EXPECT_GT(out.committees[1].evicted_at, 0u);  // batch 0 had launched
  EXPECT_GT(beacon.committee(1).ledger().faults.total(), 0u);
  EXPECT_EQ(out.beacon, ref.beacon);
}

}  // namespace
}  // namespace dprbg
