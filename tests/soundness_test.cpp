// Statistical validation of the soundness lemmas over GF(2^8)
// (experiments E2, E4, E13 at test scale; the error_prob benchmark runs
// more trials).

#include <gtest/gtest.h>

#include <cmath>

#include "gf/gf2.h"
#include "vss/soundness.h"

namespace dprbg {
namespace {

using F8 = GF2_8;  // p = 256: error probabilities large enough to measure

// 3-sigma binomial tolerance around expectation.
void expect_rate_near(const SoundnessResult& r, double expected) {
  const double sigma =
      std::sqrt(expected * (1 - expected) / double(r.trials));
  EXPECT_NEAR(r.rate(), expected, 4 * sigma + 1e-9)
      << "accepts=" << r.accepts << "/" << r.trials;
}

TEST(SoundnessTest, Lemma1VssErrorIsOneOverP) {
  const auto r = vss_soundness_trials<F8>(7, 2, 60000, 1);
  expect_rate_near(r, 1.0 / 256);
}

TEST(SoundnessTest, Lemma1HoldsAcrossSystemSizes) {
  for (int t : {1, 3}) {
    const int n = 3 * t + 1;
    const auto r = vss_soundness_trials<F8>(n, t, 40000, 10 + t);
    expect_rate_near(r, 1.0 / 256);
  }
}

TEST(SoundnessTest, Lemma3BatchErrorIsMOverP) {
  for (unsigned m : {1u, 4u, 16u}) {
    const auto r = batch_soundness_trials<F8>(7, 2, m, 60000, 20 + m);
    expect_rate_near(r, double(m) / 256);
  }
}

TEST(SoundnessTest, Lemma3ScalesLinearlyInM) {
  const auto small = batch_soundness_trials<F8>(7, 2, 2, 40000, 30);
  const auto large = batch_soundness_trials<F8>(7, 2, 32, 40000, 31);
  // 16x more roots -> ~16x the acceptance rate.
  EXPECT_GT(large.rate(), 8 * small.rate());
  EXPECT_LT(large.rate(), 32 * small.rate());
}

TEST(SoundnessTest, Lemma5BitGenErrorIsMOverP) {
  // Broadcast-free decision rule with t garbage shares mixed in.
  for (unsigned m : {1u, 8u}) {
    const auto r = bitgen_soundness_trials<F8>(13, 2, m, 30000, 40 + m);
    expect_rate_near(r, double(m) / 256);
  }
}

TEST(SoundnessTest, LargeFieldNeverAccepts) {
  // Over GF(2^64) the same optimal dealer never wins in any feasible
  // number of trials.
  const auto r = vss_soundness_trials<GF2_64>(7, 2, 5000, 50);
  EXPECT_EQ(r.accepts, 0u);
  const auto rb = batch_soundness_trials<GF2_64>(7, 2, 16, 2000, 51);
  EXPECT_EQ(rb.accepts, 0u);
}

}  // namespace
}  // namespace dprbg
