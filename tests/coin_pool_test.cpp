// Unit tests for CoinPool, trusted-dealer genesis, metrics plumbing, and
// the "random access to the bits" claim of Section 1.4.

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

TEST(CoinPoolTest, FifoOrder) {
  CoinPool<F> pool;
  for (std::uint64_t v = 0; v < 5; ++v) {
    pool.add(SealedCoin<F>{F::from_uint(v), 2});
  }
  EXPECT_EQ(pool.remaining(), 5u);
  for (std::uint64_t v = 0; v < 5; ++v) {
    const auto c = pool.take();
    EXPECT_EQ(c.share->to_uint(), v);
  }
  EXPECT_TRUE(pool.empty());
}

TEST(CoinPoolTest, ConsumedCounterMonotone) {
  CoinPool<F> pool;
  pool.add(SealedCoin<F>{F::one(), 1});
  pool.add(SealedCoin<F>{F::one(), 1});
  EXPECT_EQ(pool.consumed(), 0u);
  (void)pool.take();
  EXPECT_EQ(pool.consumed(), 1u);
  pool.add(SealedCoin<F>{F::one(), 1});
  (void)pool.take();
  (void)pool.take();
  EXPECT_EQ(pool.consumed(), 3u);
  EXPECT_TRUE(pool.empty());
}

TEST(CoinPoolTest, TakeBatchEquivalentToRepeatedTake) {
  CoinPool<F> a;
  CoinPool<F> b;
  for (std::uint64_t v = 0; v < 8; ++v) {
    a.add(SealedCoin<F>{F::from_uint(v), 2});
    b.add(SealedCoin<F>{F::from_uint(v), 2});
  }
  const auto bulk = a.take_batch(5);
  ASSERT_EQ(bulk.size(), 5u);
  for (std::uint64_t v = 0; v < 5; ++v) {
    EXPECT_EQ(bulk[v].share->to_uint(), v);
    EXPECT_EQ(b.take().share->to_uint(), v);
  }
  EXPECT_EQ(a.remaining(), b.remaining());
  EXPECT_EQ(a.consumed(), b.consumed());
  EXPECT_EQ(a.consumed(), 5u);
  // The survivors are the same in both pools, in the same order.
  while (!a.empty()) {
    EXPECT_EQ(a.take().share->to_uint(), b.take().share->to_uint());
  }
}

TEST(CoinPoolTest, TakeBatchWholePoolAndEmpty) {
  CoinPool<F> pool;
  EXPECT_TRUE(pool.take_batch(0).empty());
  pool.add(SealedCoin<F>{F::one(), 1});
  pool.add(SealedCoin<F>{F::zero(), 1});
  const auto all = pool.take_batch(2);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.consumed(), 2u);
}

TEST(CoinPoolTest, AddBatchAppendsInOrder) {
  CoinPool<F> pool;
  pool.add(SealedCoin<F>{F::from_uint(100), 1});
  std::vector<SealedCoin<F>> fresh;
  for (std::uint64_t v = 0; v < 3; ++v) {
    fresh.push_back(SealedCoin<F>{F::from_uint(v), 1});
  }
  pool.add_batch(std::move(fresh));
  EXPECT_EQ(pool.remaining(), 4u);
  EXPECT_EQ(pool.take().share->to_uint(), 100u);
  for (std::uint64_t v = 0; v < 3; ++v) {
    EXPECT_EQ(pool.take().share->to_uint(), v);
  }
}

TEST(CoinPoolTest, TakeBatchThenReturnKeepsConsumedAligned) {
  // The pipelined driver charges a batch up front and returns unspent
  // coins; consumed() must keep advancing monotonically (it doubles as
  // the cross-player Coin-Expose instance id and may never rewind).
  CoinPool<F> pool;
  for (std::uint64_t v = 0; v < 6; ++v) {
    pool.add(SealedCoin<F>{F::from_uint(v), 1});
  }
  auto charge = pool.take_batch(4);
  EXPECT_EQ(pool.consumed(), 4u);
  // Two coins spent; return the rest.
  charge.erase(charge.begin(), charge.begin() + 2);
  pool.add_batch(std::move(charge));
  EXPECT_EQ(pool.remaining(), 4u);
  EXPECT_EQ(pool.consumed(), 4u);
  EXPECT_EQ(pool.take().share->to_uint(), 4u);  // original tail first
  EXPECT_EQ(pool.consumed(), 5u);
}

TEST(TrustedDealerTest, SharesLieOnDegreeTPolynomial) {
  const int n = 9;
  const unsigned t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 3, 1);
  for (int c = 0; c < 3; ++c) {
    std::vector<PointValue<F>> pts;
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(coins[i][c].share.has_value());
      EXPECT_EQ(coins[i][c].degree, t);
      pts.push_back({eval_point<F>(i), *coins[i][c].share});
    }
    EXPECT_TRUE(is_degree_at_most<F>(pts, t));
  }
}

TEST(TrustedDealerTest, DeterministicUnderSeed) {
  const auto a = trusted_dealer_coins<F>(5, 1, 2, 99);
  const auto b = trusted_dealer_coins<F>(5, 1, 2, 99);
  for (int i = 0; i < 5; ++i) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(*a[i][c].share, *b[i][c].share);
    }
  }
}

TEST(TrustedDealerTest, DistinctSeedsDistinctCoins) {
  const auto a = trusted_dealer_coins<F>(5, 1, 1, 1);
  const auto b = trusted_dealer_coins<F>(5, 1, 1, 2);
  EXPECT_NE(*a[0][0].share, *b[0][0].share);
}

TEST(MetricsTest, ScopeCapturesDeltas) {
  const auto a = F::from_uint(3), b = F::from_uint(5);
  MetricsScope scope;
  auto c = a * b;
  c = c + a;
  const FieldCounters delta = scope.delta();
  EXPECT_EQ(delta.muls, 1u);
  EXPECT_EQ(delta.adds, 1u);
}

TEST(MetricsTest, CountersAreThreadLocal) {
  const FieldCounters before = field_counters();
  std::thread worker([] {
    const auto a = F::from_uint(3) * F::from_uint(5);
    (void)a;
  });
  worker.join();
  // The worker's multiplication never leaks into this thread's counters.
  EXPECT_EQ(field_counters().muls, before.muls);
}

TEST(RandomAccessTest, CoinsExposableInAnyOrder) {
  // Section 1.4: "our scheme also provides 'random access' to the bits."
  // Expose a minted batch in a scrambled order and in natural order; the
  // values per index must coincide.
  const int n = 7, t = 1;
  const unsigned m = 6;
  const std::vector<unsigned> order = {4, 0, 5, 2, 1, 3};

  auto run_with_order = [&](const std::vector<unsigned>& idx) {
    auto genesis = trusted_dealer_coins<F>(n, t, 8, 77);
    std::vector<F> values(m);
    Cluster cluster(n, t, 77);
    cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
      CoinPool<F> pool;
      for (auto& c : genesis[io.id()]) pool.add(std::move(c));
      const auto result = coin_gen<F>(io, m, pool);
      ASSERT_TRUE(result.success);
      const auto sealed =
          result.sealed_coins(static_cast<unsigned>(io.t()));
      for (unsigned h : idx) {
        const auto v = coin_expose<F>(io, sealed[h], 100 + h);
        ASSERT_TRUE(v.has_value());
        if (io.id() == 0) values[h] = *v;
      }
    }));
    return values;
  };

  std::vector<unsigned> natural(m);
  for (unsigned h = 0; h < m; ++h) natural[h] = h;
  const auto scrambled_values = run_with_order(order);
  const auto natural_values = run_with_order(natural);
  for (unsigned h = 0; h < m; ++h) {
    EXPECT_EQ(scrambled_values[h], natural_values[h]) << "coin " << h;
  }
}

TEST(RandomAccessTest, PartialExposureLeavesRestSealed) {
  // Exposing a prefix of a batch must not help predict the rest (the
  // blinding ablation proves the linear-combination channel is closed;
  // here: the adversary's t shares of an unexposed coin remain consistent
  // with every value even after other coins were exposed).
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 78);
  std::vector<CoinGenResult<F>> results(n);
  Cluster cluster(n, t, 78);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    results[io.id()] = coin_gen<F>(io, 4, pool);
    ASSERT_TRUE(results[io.id()].success);
    const auto sealed =
        results[io.id()].sealed_coins(static_cast<unsigned>(io.t()));
    // Expose coins 0..2, keep coin 3 sealed.
    for (unsigned h = 0; h < 3; ++h) {
      (void)coin_expose<F>(io, sealed[h], 100 + h);
    }
  }));
  // Adversary = player 0 (t = 1): its single share of coin 3's polynomial
  // is consistent with any value.
  for (std::uint64_t candidate : {0ull, 42ull}) {
    std::vector<PointValue<F>> pts = {
        {eval_point<F>(0), results[0].coin_shares[3]},
        {F::zero(), F::from_uint(candidate)},
    };
    EXPECT_LE(lagrange_interpolate<F>(pts).degree(), static_cast<int>(t));
  }
}

}  // namespace
}  // namespace dprbg
