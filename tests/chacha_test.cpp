// Tests for the ChaCha20-based deterministic CSPRNG.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "gf/gf2.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

TEST(ChachaTest, DeterministicUnderSeed) {
  Chacha a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(ChachaTest, StreamsAreIndependent) {
  Chacha a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(ChachaTest, DifferentSeedsDiffer) {
  Chacha a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(ChachaTest, BitBalance) {
  // Each of the 64 bit positions should be ~50% ones over many draws.
  Chacha rng(7);
  constexpr int kDraws = 20000;
  std::array<int, 64> ones{};
  for (int i = 0; i < kDraws; ++i) {
    std::uint64_t v = rng.next_u64();
    for (int b = 0; b < 64; ++b) ones[b] += (v >> b) & 1;
  }
  for (int b = 0; b < 64; ++b) {
    const double frac = double(ones[b]) / kDraws;
    EXPECT_NEAR(frac, 0.5, 0.02) << "bit " << b;
  }
}

TEST(ChachaTest, UniformBoundIsRespectedAndRoughlyUniform) {
  Chacha rng(11);
  constexpr std::uint64_t kBound = 10;
  std::array<int, kBound> counts{};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = rng.uniform(kBound);
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(double(counts[v]) / kDraws, 0.1, 0.02);
  }
}

TEST(ChachaTest, FillBytesCoversPartialWords) {
  Chacha a(3), b(3);
  std::vector<std::uint8_t> buf(13);
  a.fill_bytes(buf);
  // Consuming the same stream word-wise must produce the same prefix.
  std::vector<std::uint8_t> expected;
  while (expected.size() < 13) {
    const std::uint32_t w = b.next_u32();
    for (int i = 0; i < 4 && expected.size() < 13; ++i) {
      expected.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
  }
  EXPECT_EQ(buf, expected);
}

TEST(ChachaTest, NoShortCycles) {
  Chacha rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 10000u);  // birthday collision over 2^64 ~ never
}

TEST(ChachaTest, RandomFieldElementIsInRange) {
  Chacha rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto e = random_element<GF2_8>(rng);
    EXPECT_LE(e.to_uint(), 0xFFu);
  }
}

TEST(ChachaTest, RandomNonzeroNeverZero) {
  Chacha rng(10);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(random_nonzero<GF2<4>>(rng).is_zero());
  }
}

TEST(ChachaTest, FieldElementDistributionRoughlyUniform) {
  // Chi-squared-ish sanity over GF(2^4): 16 buckets.
  Chacha rng(13);
  std::array<int, 16> counts{};
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[random_element<GF2<4>>(rng).to_uint()];
  }
  for (int v = 0; v < 16; ++v) {
    EXPECT_NEAR(double(counts[v]) / kDraws, 1.0 / 16, 0.01);
  }
}

}  // namespace
}  // namespace dprbg
