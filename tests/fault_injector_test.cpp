// Unit tests for the link-fault injection layer (net/fault.h): each
// action's delivery semantics, the attribution (charging) contract, the
// seeded random-plan generator's determinism, and — critically — that a
// cluster with a null or empty injector is byte-identical to a fault-free
// cluster.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "net/fault.h"
#include "net/msg.h"

namespace dprbg {
namespace {

constexpr std::uint32_t kTag = make_tag(ProtoId::kApp, 0, 0);

// Runs `rounds` rounds in which every player sends one byte (id ^ round)
// to everyone, and records each player's full inbox per round as a
// printable transcript — the byte-level ground truth for comparisons.
struct EchoRun {
  std::vector<std::vector<std::string>> transcript;  // [player][round]
  CommCounters comm;
  FaultCounters faults;
};

std::string render_inbox(const Inbox& inbox) {
  std::ostringstream os;
  for (const Msg& m : inbox.all()) {
    os << m.from << "/" << m.tag << "/";
    for (std::uint8_t b : m.body) os << static_cast<int>(b) << ".";
    os << " ";
  }
  return os.str();
}

EchoRun run_echo(int n, int rounds,
                 std::shared_ptr<const FaultInjector> injector,
                 std::uint64_t seed = 7) {
  EchoRun run;
  run.transcript.assign(n, std::vector<std::string>(rounds));
  Cluster cluster(n, /*t=*/1, seed);
  if (injector != nullptr) cluster.set_fault_injector(std::move(injector));
  cluster.run(std::vector<Cluster::Program>(
      n, [&](PartyIo& io) {
        for (int r = 0; r < rounds; ++r) {
          io.send_all(kTag, {static_cast<std::uint8_t>(io.id() ^ r)});
          run.transcript[io.id()][r] = render_inbox(io.sync());
        }
      }));
  run.comm = cluster.comm();
  run.faults = cluster.faults();
  return run;
}

TEST(FaultInjectorTest, EmptyInjectorIsByteIdenticalToNoInjector) {
  const auto bare = run_echo(5, 4, nullptr);
  const auto empty =
      run_echo(5, 4, std::make_shared<FaultInjector>(FaultPlan{}));
  EXPECT_EQ(bare.transcript, empty.transcript);
  EXPECT_EQ(bare.comm.messages, empty.comm.messages);
  EXPECT_EQ(bare.comm.bytes, empty.comm.bytes);
  EXPECT_EQ(bare.comm.rounds, empty.comm.rounds);
  EXPECT_EQ(empty.faults.total(), 0u);
}

TEST(FaultInjectorTest, DropSuppressesExactlyTheFaultedLink) {
  FaultPlan plan;
  plan.charge(1);
  plan.add(/*round=*/0, /*from=*/1, /*to=*/0, {FaultAction::kDrop, 1});
  const auto run =
      run_echo(4, 2, std::make_shared<FaultInjector>(std::move(plan)));
  const auto clean = run_echo(4, 2, nullptr);
  // Player 0 misses 1's round-0 message; everything else is untouched.
  EXPECT_EQ(run.transcript[0][0], "0/251658240/0. 2/251658240/2. 3/251658240/3. ");
  EXPECT_EQ(run.transcript[1], clean.transcript[1]);
  EXPECT_EQ(run.transcript[2], clean.transcript[2]);
  EXPECT_EQ(run.transcript[0][1], clean.transcript[0][1]);
  EXPECT_EQ(run.faults.dropped, 1u);
  // Dropped traffic still traversed the sender's link: comm unchanged.
  EXPECT_EQ(run.comm.messages, clean.comm.messages);
}

TEST(FaultInjectorTest, DelayMergesIntoTheTargetRound) {
  FaultPlan plan;
  plan.charge(2);
  plan.add(/*round=*/0, /*from=*/2, /*to=*/0, {FaultAction::kDelay, 2});
  const auto run =
      run_echo(4, 4, std::make_shared<FaultInjector>(std::move(plan)));
  // Round 0: player 0 misses 2's message.
  EXPECT_EQ(run.transcript[0][0], "0/251658240/0. 1/251658240/1. 3/251658240/3. ");
  // Round 2: the stale round-0 body (2 ^ 0 = 2) arrives ahead of the
  // fresh round-2 one (2 ^ 2 = 0) from the same sender and tag.
  EXPECT_EQ(run.transcript[0][2],
            "0/251658240/2. 1/251658240/3. 2/251658240/2. 2/251658240/0. "
            "3/251658240/1. ");
  EXPECT_EQ(run.faults.delayed, 1u);
}

TEST(FaultInjectorTest, DuplicateDeliversExtraCopies) {
  FaultPlan plan;
  plan.charge(1);
  plan.add(/*round=*/0, /*from=*/1, /*to=*/2, {FaultAction::kDuplicate, 1});
  const auto run =
      run_echo(4, 1, std::make_shared<FaultInjector>(std::move(plan)));
  EXPECT_EQ(run.transcript[2][0],
            "0/251658240/0. 1/251658240/1. 1/251658240/1. 2/251658240/2. "
            "3/251658240/3. ");
  EXPECT_EQ(run.faults.duplicated, 1u);
}

TEST(FaultInjectorTest, CorruptionIsDeterministicAndChangesTheBody) {
  FaultPlan plan;
  plan.charge(3);
  plan.add(/*round=*/1, /*from=*/3, /*to=*/1, {FaultAction::kCorrupt, 2});
  auto injector = std::make_shared<FaultInjector>(std::move(plan));
  const auto a = run_echo(4, 3, injector);
  const auto b = run_echo(4, 3, injector);
  const auto clean = run_echo(4, 3, nullptr);
  // The corrupted inbox differs from the fault-free one...
  EXPECT_NE(a.transcript[1][1], clean.transcript[1][1]);
  // ...identically on every replay.
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(a.faults.corrupted, 1u);
  // Other rounds and receivers are untouched.
  EXPECT_EQ(a.transcript[1][0], clean.transcript[1][0]);
  EXPECT_EQ(a.transcript[2], clean.transcript[2]);
}

TEST(FaultInjectorTest, PartitionSuppressesAllCrossTraffic) {
  const int n = 5;
  FaultPlan plan;
  plan.charge(4);
  plan.isolate(/*first_round=*/0, /*last_round=*/1, /*player=*/4, n);
  const auto run =
      run_echo(n, 3, std::make_shared<FaultInjector>(std::move(plan)));
  // During the window, 4 hears only itself and nobody hears 4.
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(run.transcript[4][r],
              "4/251658240/" + std::to_string(4 ^ r) + ". ");
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(run.transcript[i][r].find("4/251658240"), std::string::npos)
          << "player " << i << " round " << r;
    }
  }
  // After the window the island rejoins.
  EXPECT_NE(run.transcript[0][2].find("4/251658240"), std::string::npos);
  // 2 windows x (n-1) outgoing + (n-1) incoming drops.
  EXPECT_EQ(run.faults.dropped, 2u * 2u * (n - 1));
}

TEST(FaultInjectorTest, AddRequiresAChargedEndpoint) {
  FaultPlan plan;
  plan.charge(2);
  EXPECT_DEATH(plan.add(0, 0, 1, {FaultAction::kDrop, 1}), "DPRBG_CHECK");
  EXPECT_DEATH(plan.add(0, 2, 2, {FaultAction::kDrop, 1}), "DPRBG_CHECK");
  plan.add(0, 2, 1, {FaultAction::kDrop, 1});  // adjacent to charged: fine
  plan.add(0, 1, 2, {FaultAction::kDrop, 1});
  EXPECT_EQ(plan.size(), 2u);
}

TEST(FaultInjectorTest, RandomPlanIsAttributableAndReplayable) {
  FaultPlanParams params;
  params.n = 9;
  params.t = 2;
  params.rounds = 24;
  params.fault_rate = 0.2;
  params.never_charge = {0, 3};
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const FaultPlan a = random_fault_plan(params, seed);
    const FaultPlan b = random_fault_plan(params, seed);
    EXPECT_TRUE(a.attributable(params.t)) << "seed " << seed;
    EXPECT_EQ(a.charged().count(0), 0u) << "seed " << seed;
    EXPECT_EQ(a.charged().count(3), 0u) << "seed " << seed;
    EXPECT_EQ(a.charged(), b.charged()) << "seed " << seed;
    EXPECT_EQ(a.size(), b.size()) << "seed " << seed;
    EXPECT_EQ(a.horizon(), b.horizon()) << "seed " << seed;
    EXPECT_LT(a.horizon(), params.rounds) << "seed " << seed;
  }
  // Distinct seeds produce distinct plans (with overwhelming probability).
  const FaultPlan p1 = random_fault_plan(params, 100);
  const FaultPlan p2 = random_fault_plan(params, 101);
  EXPECT_TRUE(p1.charged() != p2.charged() || p1.size() != p2.size());
}

TEST(FaultInjectorTest, FaultedExecutionReplaysBitForBit) {
  FaultPlanParams params;
  params.n = 5;
  params.t = 1;
  params.rounds = 6;
  params.fault_rate = 0.3;
  const FaultPlan plan = random_fault_plan(params, 42);
  auto injector = std::make_shared<FaultInjector>(plan);
  const auto a = run_echo(5, 6, injector);
  const auto b = run_echo(5, 6, injector);
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(a.faults.dropped, b.faults.dropped);
  EXPECT_EQ(a.faults.delayed, b.faults.delayed);
  EXPECT_EQ(a.faults.duplicated, b.faults.duplicated);
  EXPECT_EQ(a.faults.corrupted, b.faults.corrupted);
}

}  // namespace
}  // namespace dprbg
