// Tests for the Berlekamp-Welch decoder [5], the error-tolerant
// interpolation at the heart of Bit-Gen and Coin-Expose.

#include <gtest/gtest.h>

#include <vector>

#include "gf/gf2.h"
#include "poly/berlekamp_welch.h"
#include "poly/polynomial.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

using F = GF2_32;
using P = Polynomial<F>;

F fe(std::uint64_t v) { return F::from_uint(v); }

std::vector<PointValue<F>> sample(const P& p, int n) {
  std::vector<PointValue<F>> pts;
  for (int i = 1; i <= n; ++i) pts.push_back({fe(i), p(fe(i))});
  return pts;
}

// Corrupts `count` distinct positions with fresh random wrong values.
void corrupt(std::vector<PointValue<F>>& pts, int count, Chacha& rng) {
  for (int c = 0; c < count; ++c) {
    auto& pv = pts[c * 2 % pts.size()];  // distinct for count <= size/2
    F bad = random_element<F>(rng);
    while (bad == pv.y) bad = random_element<F>(rng);
    pv.y = bad;
  }
}

TEST(BerlekampWelchTest, DecodesCleanPoints) {
  Chacha rng(1);
  const P p = P::random(3, rng);
  const auto pts = sample(p, 10);
  const auto decoded = berlekamp_welch<F>(pts, 3, 3);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

// Decoding succeeds for any error count e as long as n >= d + 2e + 1:
// the PODC'96 setting is n = 3t+1 points, degree t, up to t errors.
class BwSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BwSweep, DecodesWithErrors) {
  const auto [deg, errors] = GetParam();
  const int n = deg + 2 * errors + 1;
  Chacha rng(100 + deg * 17 + errors);
  for (int trial = 0; trial < 10; ++trial) {
    const P p = P::random(deg, rng);
    auto pts = sample(p, n);
    corrupt(pts, errors, rng);
    const auto decoded = berlekamp_welch<F>(pts, deg, errors);
    ASSERT_TRUE(decoded.has_value())
        << "deg=" << deg << " errors=" << errors << " trial=" << trial;
    EXPECT_EQ(*decoded, p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreeErrorGrid, BwSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(0, 1, 2, 4)));

TEST(BerlekampWelchTest, PodcParameters) {
  // The paper's reconstruction setting: |S| = 3t+1 points, polynomial of
  // degree t, up to t of the points corrupted by faulty players.
  for (int t = 1; t <= 5; ++t) {
    Chacha rng(200 + t);
    const P p = P::random(t, rng);
    auto pts = sample(p, 3 * t + 1);
    corrupt(pts, t, rng);
    const auto decoded = berlekamp_welch<F>(pts, t, t);
    ASSERT_TRUE(decoded.has_value()) << "t=" << t;
    EXPECT_EQ(*decoded, p);
  }
}

TEST(BerlekampWelchTest, RejectsOverDegreePolynomial) {
  // A cheating dealer's degree-(t+1) sharing must not decode as degree t
  // when enough honest points pin it down.
  Chacha rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    P p = P::random(5, rng);
    while (p.degree() < 5) p = P::random(5, rng);
    const auto pts = sample(p, 10);  // clean but over-degree
    const auto decoded = berlekamp_welch<F>(pts, 3, 1);
    // Either decoding fails, or the decoded polynomial would need > 1
    // disagreements — the implementation checks this, so it must fail.
    EXPECT_FALSE(decoded.has_value()) << "trial=" << trial;
  }
}

TEST(BerlekampWelchTest, TooManyErrorsFailsGracefully) {
  Chacha rng(4);
  const P p = P::random(2, rng);
  auto pts = sample(p, 7);  // supports e <= 2 for degree 2
  corrupt(pts, 3, rng);
  // With max_errors=2 the decoder must not hallucinate agreement.
  const auto decoded = berlekamp_welch<F>(pts, 2, 2);
  if (decoded.has_value()) {
    // If decoding "succeeded" the result must still disagree with at most
    // 2 points, i.e. it found some valid nearby codeword. Verify that
    // claim independently.
    int disagreements = 0;
    for (const auto& pv : pts) {
      if ((*decoded)(pv.x) != pv.y) ++disagreements;
    }
    EXPECT_LE(disagreements, 2);
  }
}

TEST(BerlekampWelchTest, FewerPointsThanDegreeFails) {
  Chacha rng(5);
  const P p = P::random(5, rng);
  const auto pts = sample(p, 4);
  EXPECT_FALSE(berlekamp_welch<F>(pts, 5, 0).has_value());
}

TEST(BerlekampWelchTest, ZeroPolynomialDecodes) {
  std::vector<PointValue<F>> pts;
  for (int i = 1; i <= 7; ++i) pts.push_back({fe(i), F::zero()});
  const auto decoded = berlekamp_welch<F>(pts, 2, 2);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_zero());
}

TEST(BerlekampWelchTest, ErrorPositionsDoNotMatter) {
  Chacha rng(6);
  const P p = P::random(2, rng);
  for (std::size_t pos = 0; pos < 7; ++pos) {
    auto pts = sample(p, 7);
    pts[pos].y = pts[pos].y + fe(1);
    const auto decoded = berlekamp_welch<F>(pts, 2, 2);
    ASSERT_TRUE(decoded.has_value()) << "pos=" << pos;
    EXPECT_EQ(*decoded, p);
  }
}

TEST(BerlekampWelchTest, SmallFieldDecoding) {
  // Everything still works over GF(2^8), the soundness-experiment field.
  using F8 = GF2_8;
  Chacha rng(7);
  const auto p = Polynomial<F8>::random(2, rng);
  std::vector<PointValue<F8>> pts;
  for (int i = 1; i <= 7; ++i) {
    pts.push_back({F8::from_uint(i), p(F8::from_uint(i))});
  }
  pts[1].y = pts[1].y + F8::one();
  pts[4].y = pts[4].y + F8::from_uint(17);
  const auto decoded = berlekamp_welch<F8>(pts, 2, 2);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

}  // namespace
}  // namespace dprbg
