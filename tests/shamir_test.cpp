// Tests for Shamir secret sharing [18].

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "gf/gf2.h"
#include "rng/chacha.h"
#include "sharing/shamir.h"

namespace dprbg {
namespace {

using F = GF2_64;

std::vector<PointValue<F>> to_points(const std::vector<F>& shares) {
  std::vector<PointValue<F>> pts;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    pts.push_back({eval_point<F>(static_cast<int>(i)), shares[i]});
  }
  return pts;
}

TEST(ShamirTest, EvalPointsDistinctAndNonzero) {
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(eval_point<F>(i).is_zero());
    for (int j = i + 1; j < 64; ++j) {
      EXPECT_NE(eval_point<F>(i), eval_point<F>(j));
    }
  }
}

TEST(ShamirTest, ReconstructFromAllShares) {
  Chacha rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const F secret = random_element<F>(rng);
    const auto shares = share_secret(secret, 2, 7, rng);
    const auto pts = to_points(shares);
    const auto rec = reconstruct_secret<F>(pts, 2, 0);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(*rec, secret);
  }
}

TEST(ShamirTest, ReconstructFromThresholdSubset) {
  Chacha rng(2);
  const F secret = random_element<F>(rng);
  const auto shares = share_secret(secret, 3, 10, rng);
  auto pts = to_points(shares);
  pts.resize(4);  // exactly t+1 shares
  const auto rec = reconstruct_secret<F>(pts, 3, 0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, secret);
}

TEST(ShamirTest, ReconstructDespiteCorruptedShares) {
  Chacha rng(3);
  const F secret = random_element<F>(rng);
  auto shares = share_secret(secret, 2, 9, rng);  // n >= t + 2e + 1 = 9
  shares[1] = shares[1] + F::one();
  shares[6] = random_element<F>(rng);
  const auto pts = to_points(shares);
  const auto rec = reconstruct_secret<F>(pts, 2, 2);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, secret);
}

TEST(ShamirTest, TSharesRevealNothing) {
  // Perfect secrecy: for any t shares there exists a sharing polynomial
  // consistent with *every* candidate secret. Verify constructively: for
  // two random secrets, the distribution of any fixed t shares is
  // identical (here: both can be extended to full consistent sharings).
  Chacha rng(4);
  const unsigned t = 3;
  const F s0 = random_element<F>(rng);
  const auto shares = share_secret(s0, t, 10, rng);
  // Take the first t shares and an arbitrary alternative secret; the
  // interpolation through (0, s1) plus those t points has degree <= t,
  // i.e. it is a valid sharing of s1 producing the same observed shares.
  const F s1 = random_element<F>(rng);
  std::vector<PointValue<F>> pts = {{F::zero(), s1}};
  for (unsigned i = 0; i < t; ++i) {
    pts.push_back({eval_point<F>(static_cast<int>(i)), shares[i]});
  }
  const auto f = lagrange_interpolate<F>(pts);
  EXPECT_LE(f.degree(), static_cast<int>(t));
  EXPECT_EQ(f(F::zero()), s1);
  for (unsigned i = 0; i < t; ++i) {
    EXPECT_EQ(f(eval_point<F>(static_cast<int>(i))), shares[i]);
  }
}

TEST(ShamirTest, ShareOfSumIsSumOfShares) {
  // Linearity: the homomorphism Coin-Expose relies on (Fig. 6 sums shares
  // across dealers before interpolating once).
  Chacha rng(5);
  const F a = random_element<F>(rng);
  const F b = random_element<F>(rng);
  const auto sa = share_secret(a, 2, 7, rng);
  const auto sb = share_secret(b, 2, 7, rng);
  std::vector<F> sum(7);
  for (int i = 0; i < 7; ++i) sum[i] = sa[i] + sb[i];
  const auto rec = reconstruct_secret<F>(to_points(sum), 2, 0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, a + b);
}

TEST(ShamirTest, DealSharesMatchesPolynomialEvaluation) {
  Chacha rng(6);
  const auto f = Polynomial<F>::random(4, rng);
  const auto shares = deal_shares(f, 9);
  ASSERT_EQ(shares.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(shares[i], f(eval_point<F>(i)));
  }
}

TEST(ShamirTest, TooFewSharesCannotReconstruct) {
  Chacha rng(7);
  const F secret = random_element<F>(rng);
  const auto shares = share_secret(secret, 5, 10, rng);
  auto pts = to_points(shares);
  pts.resize(5);  // only t shares for degree-t polynomial
  EXPECT_FALSE(reconstruct_secret<F>(pts, 5, 0).has_value());
}

}  // namespace
}  // namespace dprbg
