// Cost-regression gates: checked-in per-phase budgets for n=7, t=1 runs
// of VSS, Batch-VSS, Bit-Gen, and Coin-Gen, enforced against the trace
// layer's per-phase ledger (common/trace.h).
//
// The budgets ARE the paper's lemmas, made executable:
//   * Lemma 2:  VSS       = 2 rounds (challenge + respond), 2 interps.
//   * Lemma 4:  Batch-VSS = 2 rounds, 2 interps — independent of M.
//   * Lemma 6:  Bit-Gen   = 2 rounds, interps independent of M.
//   * Lemma 8 / Fig. 5: Coin-Gen = deal(2) + gradecast(3) + per-iteration
//     leader(1) + BA(2(t+1)) rounds, one iteration when leaders are
//     honest — 10 rounds total at t=1.
//
// Round budgets are EXACT (the protocols are synchronous and lockstep;
// any change is a protocol change). Operation and byte budgets allow a
// +/-25% band so harmless refactors (e.g. a different Berlekamp-Welch
// pivot order) pass while a silently inflated lemma cost fails tier-1.
// If a budget fails because you *intentionally* changed a protocol's
// cost, re-measure with `trace_report gen/report` and update the table —
// in the same PR that changes the cost, with a line in EXPERIMENTS.md.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/trace.h"
#include "coin/bitgen.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "vss/batch_vss.h"
#include "vss/vss.h"

namespace dprbg {
namespace {

using F = GF2_64;

constexpr int kN = 7;
constexpr unsigned kT = 1;
constexpr unsigned kM = 4;         // batch size (Batch-VSS / Bit-Gen rows)
constexpr std::uint64_t kSeed = 42;  // must match trace_report's default

// One checked-in budget row. Rounds are exact; every other column is the
// expected total across all players and spans of that phase, allowed a
// +/-25% band (0 means "must be 0").
struct PhaseBudget {
  const char* protocol;
  const char* phase;
  std::uint64_t rounds;   // exact, max over players
  std::uint64_t adds;
  std::uint64_t muls;
  std::uint64_t interps;
  std::uint64_t msgs;
  std::uint64_t bytes;
};

void expect_within_band(const char* what, const std::string& where,
                        std::uint64_t expected, std::uint64_t actual) {
  if (expected == 0) {
    EXPECT_EQ(actual, 0u) << where << ": " << what
                          << " expected 0, measured " << actual;
    return;
  }
  const std::uint64_t lo = expected - expected / 4;
  const std::uint64_t hi = expected + expected / 4;
  EXPECT_GE(actual, lo) << where << ": " << what << " fell below budget ("
                        << actual << " < " << lo << ", expected ~"
                        << expected << ") — update the budget if the "
                        << "improvement is intentional";
  EXPECT_LE(actual, hi) << where << ": " << what << " exceeded budget ("
                        << actual << " > " << hi << ", expected ~"
                        << expected << ") — a lemma cost regressed";
}

void check_budgets(const std::vector<PhaseCost>& phases,
                   const std::vector<PhaseBudget>& budgets) {
  for (const auto& b : budgets) {
    const PhaseCost* found = nullptr;
    for (const auto& p : phases) {
      if (p.protocol == b.protocol && p.phase == b.phase) {
        found = &p;
        break;
      }
    }
    const std::string where =
        std::string(b.protocol) + "/" + b.phase;
    ASSERT_NE(found, nullptr) << where << ": phase missing from trace";
    EXPECT_EQ(found->rounds, b.rounds)
        << where << ": round count changed — this is a protocol change "
        << "(rounds are exact, no tolerance)";
    expect_within_band("adds", where, b.adds, found->ops.adds);
    expect_within_band("muls", where, b.muls, found->ops.muls);
    expect_within_band("interps", where, b.interps,
                       found->ops.interpolations);
    expect_within_band("msgs", where, b.msgs, found->comm.messages);
    expect_within_band("bytes", where, b.bytes, found->comm.bytes);
  }
}

// Runs `program` on a fresh traced n=7 cluster and returns the per-phase
// aggregation of the trace.
std::vector<PhaseCost> trace_run(const Cluster::Program& program) {
  tracer().clear();
  tracer().set_enabled(true);
  Cluster cluster(kN, static_cast<int>(kT), kSeed);
  cluster.run(std::vector<Cluster::Program>(kN, program));
  tracer().set_enabled(false);
  return aggregate_phases(tracer().events());
}

class TraceBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    genesis_ = trusted_dealer_coins<F>(kN, kT, 8, kSeed);
    tracer().set_enabled(false);
    tracer().clear();
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().clear();
  }

  CoinPool<F> pool_for(int id) {
    CoinPool<F> pool;
    for (auto& c : genesis_[id]) pool.add(std::move(c));
    return pool;
  }

  std::vector<std::vector<SealedCoin<F>>> genesis_;
};

TEST_F(TraceBudgetTest, VssPerPhaseBudget) {
  const auto phases = trace_run([&](PartyIo& io) {
    auto pool = pool_for(io.id());
    std::optional<Polynomial<F>> poly;
    if (io.id() == 0) poly = Polynomial<F>::random(kT, io.rng());
    const auto out =
        vss_share_and_verify<F>(io, /*dealer=*/0, kT, poly, pool.take());
    ASSERT_TRUE(out.accepted);
  });
  // Lemma 2: 2 rounds of n messages, 2 interpolations per player (one in
  // the challenge exposure, one in the final decode).
  check_budgets(phases, {
      // proto, phase, rounds, adds, muls, interps, msgs, bytes
      {"vss", "deal", 0, 28, 28, 0, 6, 168},
      {"vss", "challenge", 1, 798, 987, 7, 42, 840},
      {"vss", "respond", 1, 7, 7, 0, 42, 840},
      {"vss", "interpolate", 0, 882, 1071, 7, 0, 0},
  });
}

TEST_F(TraceBudgetTest, BatchVssPerPhaseBudget) {
  const auto phases = trace_run([&](PartyIo& io) {
    auto pool = pool_for(io.id());
    std::vector<Polynomial<F>> polys;
    if (io.id() == 0) {
      for (unsigned j = 0; j < kM; ++j) {
        polys.push_back(Polynomial<F>::random(kT, io.rng()));
      }
    }
    const auto out =
        batch_vss<F>(io, /*dealer=*/0, kT, kM, polys, pool.take());
    ASSERT_TRUE(out.accepted);
  });
  // Lemma 4: the batch costs what a single VSS costs — 2 rounds, 2
  // interpolations — independent of M (only deal bytes grow with M).
  check_budgets(phases, {
      {"batch-vss", "deal", 0, 56, 56, 0, 6, 264},
      {"batch-vss", "challenge", 1, 798, 987, 7, 42, 840},
      {"batch-vss", "combine", 1, 28, 28, 0, 42, 840},
      {"batch-vss", "interpolate", 0, 882, 1071, 7, 0, 0},
  });
}

TEST_F(TraceBudgetTest, BitGenPerPhaseBudget) {
  const auto phases = trace_run([&](PartyIo& io) {
    auto pool = pool_for(io.id());
    std::vector<Polynomial<F>> polys;
    for (unsigned j = 0; j < kM; ++j) {
      polys.push_back(Polynomial<F>::random(kT, io.rng()));
    }
    const auto out = bit_gen_all<F>(io, polys, kM, kT, pool.take());
    for (int dealer = 0; dealer < kN; ++dealer) {
      ASSERT_TRUE(out.views[dealer].accepted());
    }
  });
  // Lemma 6: 2 rounds; n messages of size Mk (deal) + n^2 of size k
  // (challenge coin) + n^2 of size ~kn (batched combinations).
  check_budgets(phases, {
      {"bitgen", "deal", 0, 392, 392, 0, 42, 1848},
      {"bitgen", "challenge", 1, 798, 987, 7, 42, 840},
      {"bitgen", "combine", 1, 196, 196, 0, 42, 3150},
      {"bitgen", "decode", 0, 6174, 7497, 49, 0, 0},
  });
}

TEST_F(TraceBudgetTest, CoinGenPerPhaseBudget) {
  const auto phases = trace_run([&](PartyIo& io) {
    auto pool = pool_for(io.id());
    const auto out = coin_gen<F>(io, /*m=*/kM, pool);
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.iterations, 1u);  // honest leader on the first draw
  });
  // Fig. 5 / Lemma 8: deal rides on Bit-Gen (2 rounds), grade-cast adds
  // 3, one leader exposure (1) + one Phase-King BA (2(t+1) = 4) when the
  // first leader is honest: 10 rounds total.
  check_budgets(phases, {
      {"coin-gen", "deal", 2, 7707, 9219, 56, 126, 6174},
      {"coin-gen", "graph", 0, 588, 588, 0, 0, 0},
      {"coin-gen", "clique", 0, 0, 0, 0, 0, 0},
      {"coin-gen", "gradecast", 3, 0, 0, 0, 126, 80052},
      {"coin-gen", "leader", 1, 798, 987, 7, 42, 840},
      {"coin-gen", "ba", 4, 0, 0, 0, 96, 1248},
      {"coin-gen", "output", 0, 455, 343, 0, 0, 0},
  });
  // Lemma-8 sanity: the whole run fits in 10 rounds at one iteration.
  std::uint64_t total_rounds = 0;
  for (const auto& p : phases) {
    if (p.protocol == "coin-gen") total_rounds += p.rounds;
  }
  EXPECT_EQ(total_rounds, 10u);
}

}  // namespace
}  // namespace dprbg
