// Tests for the synchronous cluster substrate: lockstep rounds, private
// channels, deterministic delivery, drop-on-return, metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/serial.h"
#include "net/cluster.h"
#include "net/msg.h"

namespace dprbg {
namespace {

std::vector<std::uint8_t> payload(std::uint64_t v) {
  ByteWriter w;
  w.u64(v);
  return std::move(w).take();
}

std::uint64_t value_of(const Msg& m) {
  ByteReader r(m.body);
  return r.u64();
}

TEST(ClusterTest, AllToAllDelivery) {
  Cluster cluster(5, 1, /*seed=*/1);
  const std::uint32_t tag = make_tag(ProtoId::kApp, 0, 0);
  cluster.run(std::vector<Cluster::Program>(
      5, [&](PartyIo& io) {
        io.send_all(tag, payload(100 + io.id()));
        const Inbox& in = io.sync();
        const auto msgs = in.with_tag(tag);
        ASSERT_EQ(msgs.size(), 5u);
        for (const Msg* m : msgs) {
          EXPECT_EQ(value_of(*m), 100u + m->from);
        }
      }));
}

TEST(ClusterTest, PrivateChannelsDeliverOnlyToRecipient) {
  Cluster cluster(4, 1, 2);
  const std::uint32_t tag = make_tag(ProtoId::kApp, 1, 0);
  cluster.run(std::vector<Cluster::Program>(4, [&](PartyIo& io) {
    // Everyone sends a private value to player 2 only.
    io.send(2, tag, payload(io.id()));
    const Inbox& in = io.sync();
    if (io.id() == 2) {
      EXPECT_EQ(in.with_tag(tag).size(), 4u);
    } else {
      EXPECT_TRUE(in.with_tag(tag).empty());
    }
  }));
}

TEST(ClusterTest, MessagesCrossOneRoundBoundary) {
  Cluster cluster(3, 0, 3);
  const std::uint32_t tag = make_tag(ProtoId::kApp, 2, 0);
  cluster.run(std::vector<Cluster::Program>(3, [&](PartyIo& io) {
    // Round 0: nothing sent. Round 1: send. Message must arrive at the
    // sync ending round 1, not earlier.
    const Inbox& in0 = io.sync();
    EXPECT_TRUE(in0.with_tag(tag).empty());
    io.send_all(tag, payload(7));
    const Inbox& in1 = io.sync();
    EXPECT_EQ(in1.with_tag(tag).size(), 3u);
  }));
}

TEST(ClusterTest, EarlyReturnDoesNotDeadlock) {
  Cluster cluster(4, 1, 4);
  const std::uint32_t tag = make_tag(ProtoId::kApp, 3, 0);
  std::vector<Cluster::Program> programs;
  // Player 0 crashes immediately; the rest run 3 rounds.
  programs.push_back([](PartyIo&) {});
  for (int i = 1; i < 4; ++i) {
    programs.push_back([&](PartyIo& io) {
      for (int round = 0; round < 3; ++round) {
        io.send_all(tag, payload(io.id()));
        const Inbox& in = io.sync();
        // Crashed player 0 sends nothing.
        EXPECT_EQ(in.with_tag(tag).size(), 3u);
        EXPECT_EQ(in.from(0, tag), nullptr);
      }
    });
  }
  cluster.run(std::move(programs));
}

TEST(ClusterTest, InboxSortedBySenderThenTag) {
  Cluster cluster(4, 1, 5);
  const std::uint32_t tag_a = make_tag(ProtoId::kApp, 4, 0);
  const std::uint32_t tag_b = make_tag(ProtoId::kApp, 4, 1);
  cluster.run(std::vector<Cluster::Program>(4, [&](PartyIo& io) {
    io.send(0, tag_b, payload(1));
    io.send(0, tag_a, payload(2));
    const Inbox& in = io.sync();
    if (io.id() != 0) return;
    const auto& all = in.all();
    ASSERT_EQ(all.size(), 8u);
    for (std::size_t i = 1; i < all.size(); ++i) {
      const bool ordered =
          all[i - 1].from < all[i].from ||
          (all[i - 1].from == all[i].from && all[i - 1].tag <= all[i].tag);
      EXPECT_TRUE(ordered) << "position " << i;
    }
  }));
}

TEST(ClusterTest, DuplicateSuppressionInWithTag) {
  Cluster cluster(3, 0, 6);
  const std::uint32_t tag = make_tag(ProtoId::kApp, 5, 0);
  std::vector<Cluster::Program> programs(3, [&](PartyIo& io) {
    const Inbox& in = io.sync();
    if (io.id() == 0) {
      // An equivocator double-sends; with_tag keeps the first per sender.
      EXPECT_EQ(in.with_tag(tag).size(), 1u);
      EXPECT_EQ(value_of(*in.with_tag(tag)[0]), 111u);
    }
  });
  programs[1] = [&](PartyIo& io) {
    io.send(0, tag, payload(111));
    io.send(0, tag, payload(222));
    io.sync();
  };
  cluster.run(std::move(programs));
}

TEST(ClusterTest, DeterministicRngPerPlayer) {
  std::vector<std::uint64_t> draws_a(3), draws_b(3);
  for (auto* draws : {&draws_a, &draws_b}) {
    Cluster cluster(3, 0, 42);
    cluster.run(std::vector<Cluster::Program>(3, [&](PartyIo& io) {
      (*draws)[io.id()] = io.rng().next_u64();
    }));
  }
  EXPECT_EQ(draws_a, draws_b);  // same seed -> same randomness
  std::set<std::uint64_t> distinct(draws_a.begin(), draws_a.end());
  EXPECT_EQ(distinct.size(), 3u);  // players' streams differ
}

TEST(ClusterTest, CommCountersTrackTraffic) {
  Cluster cluster(4, 1, 7);
  const std::uint32_t tag = make_tag(ProtoId::kApp, 6, 0);
  cluster.run(std::vector<Cluster::Program>(4, [&](PartyIo& io) {
    io.send_all(tag, payload(0));
    io.sync();
  }));
  // 4 players x 3 non-self messages (self-delivery is free).
  EXPECT_EQ(cluster.comm().messages, 12u);
  EXPECT_GE(cluster.comm().rounds, 1u);
  EXPECT_GT(cluster.comm().bytes, 0u);
}

TEST(ClusterTest, PerPlayerCommSumsToClusterTotals) {
  const int n = 5;
  Cluster cluster(n, 1, 11);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    // Asymmetric traffic: player i sends i+1 rounds of announcements,
    // then keeps syncing so every staged message gets exchanged.
    for (int r = 0; r < n; ++r) {
      if (r <= io.id()) {
        io.send_all(make_tag(ProtoId::kApp, 7, r), payload(io.id()));
      }
      io.sync();
    }
  }));
  const auto per_player = cluster.per_player_comm();
  ASSERT_EQ(per_player.size(), static_cast<std::size_t>(n));
  CommCounters sum;
  for (int i = 0; i < n; ++i) {
    // Player i announced in i+1 rounds, n-1 non-self messages each.
    EXPECT_EQ(per_player[i].messages, static_cast<std::uint64_t>(
                                          (i + 1) * (n - 1)));
    EXPECT_EQ(per_player[i].rounds, static_cast<std::uint64_t>(n));
    sum += per_player[i];
  }
  EXPECT_EQ(sum.messages, cluster.comm().messages);
  EXPECT_EQ(sum.bytes, cluster.comm().bytes);
  // comm().rounds counts cluster exchanges, not the sum of player syncs.
  EXPECT_EQ(cluster.comm().rounds, static_cast<std::uint64_t>(n));
}

TEST(ClusterTest, PlayerExceptionPropagates) {
  Cluster cluster(3, 0, 8);
  std::vector<Cluster::Program> programs(3, [](PartyIo& io) { io.sync(); });
  programs[1] = [](PartyIo&) { throw std::runtime_error("boom"); };
  EXPECT_THROW(cluster.run(std::move(programs)), std::runtime_error);
}

TEST(ClusterTest, StatePersistsAcrossRuns) {
  // The D-PRBG driver runs multiple protocol phases as separate run()
  // calls; player RNG streams must continue, not restart.
  Cluster cluster(2, 0, 9);
  std::uint64_t first = 0, second = 0;
  cluster.run({[&](PartyIo& io) { first = io.rng().next_u64(); },
               [](PartyIo&) {}});
  cluster.run({[&](PartyIo& io) { second = io.rng().next_u64(); },
               [](PartyIo&) {}});
  EXPECT_NE(first, second);
}

TEST(ClusterTest, DropReleasesAllParkedStreams) {
  // Regression: drop() must release EVERY stream parked at
  // waiting == expected_, not just the first. Stream waiting counts
  // worker threads, so when a player drops mid-pipeline several batch
  // streams can satisfy the barrier at once — waking only one leaves the
  // others with no future arrivals (deadlock; this test hangs without
  // the fix).
  const int n = 4;
  Cluster cluster(n, 1, 11);
  std::atomic<int> round1_done{0};
  std::atomic<int> round2_done{0};
  std::vector<Cluster::Program> programs;
  for (int i = 0; i < n - 1; ++i) {
    programs.push_back([&](PartyIo& io) {
      // Two workers, one per batch stream; each runs two rounds. Round 2
      // can only complete after the faulty player drops.
      std::vector<std::thread> workers;
      for (std::uint32_t s : {1u, 2u}) {
        workers.emplace_back([&io, &round1_done, &round2_done, s] {
          PartyIo& inst = io.instance(s);
          inst.sync();
          ++round1_done;
          inst.sync();
          ++round2_done;
        });
      }
      for (auto& w : workers) w.join();
    });
  }
  programs.push_back([&](PartyIo& io) {
    // The faulty player participates in round 1 of both streams, then
    // returns — so the drop happens while both streams are parked at
    // n-1 waiters.
    std::vector<std::thread> workers;
    for (std::uint32_t s : {1u, 2u}) {
      workers.emplace_back([&io, s] { io.instance(s).sync(); });
    }
    for (auto& w : workers) w.join();
    while (round1_done.load() < 2 * (n - 1)) std::this_thread::yield();
    // Let the honest workers park at their round-2 barriers. Correctness
    // does not depend on this sleep — a worker arriving after the drop
    // fires the barrier itself — it just makes the pre-fix deadlock
    // reliable.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  cluster.run(std::move(programs));
  EXPECT_EQ(round2_done.load(), 2 * (n - 1));
}

TEST(ClusterTest, RunHonestFaultyHelper) {
  Cluster cluster(7, 2, 10);
  const std::uint32_t tag = make_tag(ProtoId::kApp, 7, 0);
  std::atomic<int> honest_runs{0};
  cluster.run(
      [&](PartyIo& io) {
        io.send_all(tag, payload(1));
        const Inbox& in = io.sync();
        // 5 honest senders (faulty crash), self included.
        EXPECT_EQ(in.with_tag(tag).size(), 5u);
        ++honest_runs;
      },
      {1, 4}, nullptr);
  EXPECT_EQ(honest_runs.load(), 5);
}

}  // namespace
}  // namespace dprbg
