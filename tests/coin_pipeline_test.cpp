// Pipelined Coin-Gen (coin/coin_pipeline.h) + round streams
// (net/cluster.h): depth 1 must reproduce the serial loop bit-for-bit,
// overlapped depths must replay deterministically from a fixed seed, and
// per-batch instance handles must stay fully isolated (independent
// rounds, rng, inboxes; zero cross-batch deliveries).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "coin/coin_pipeline.h"
#include "common/trace.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

constexpr int kN = 7;
constexpr int kT = 1;
constexpr unsigned kM = 4;

struct PipelineRun {
  std::vector<PipelineResult<F>> results;  // per player
  // [player][batch][coin] exposed values (root stream, after the drain).
  std::vector<std::vector<std::vector<std::optional<F>>>> coins;
  CommCounters comm;
  std::uint64_t stale = 0;
};

PipelineRun run_pipeline(std::uint64_t seed, unsigned batches,
                         unsigned depth, int seed_coins = 32) {
  auto genesis = trusted_dealer_coins<F>(kN, kT, seed_coins, seed);
  PipelineRun run;
  run.results.resize(kN);
  run.coins.assign(kN, {});
  Cluster cluster(kN, kT, seed);
  cluster.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        PipelineOptions opts;
        opts.depth = depth;
        auto result = pipelined_coin_gen<F>(io, kM, pool, batches, opts);
        run.results[io.id()] = result;
        // Drain: expose every minted coin on the root stream, in batch
        // order — the canonical consumption order of the pipeline.
        run.coins[io.id()].assign(batches, {});
        for (unsigned b = 0; b < batches; ++b) {
          const auto& batch = result.batches[b];
          if (!batch.success) continue;
          const auto sealed =
              batch.sealed_coins(static_cast<unsigned>(io.t()));
          for (unsigned h = 0; h < kM; ++h) {
            const SealedCoin<F> coin = h < sealed.size()
                                           ? sealed[h]
                                           : SealedCoin<F>{std::nullopt, kT};
            run.coins[io.id()][b].push_back(coin_expose<F>(
                io, coin, /*instance=*/100 + b * kM + h));
          }
        }
      },
      {}, nullptr);
  run.comm = cluster.comm();
  run.stale = cluster.stale_rejections();
  return run;
}

// Comparable projection of a batch outcome (CoinGenResult has no ==).
using BatchKey = std::tuple<bool, std::vector<int>, std::vector<int>, bool,
                            unsigned, unsigned>;
BatchKey batch_key(const CoinGenResult<F>& r) {
  return {r.success,        r.clique,     r.summed_dealers,
          r.qualified,      r.iterations, r.seed_coins_used};
}

void expect_runs_identical(const PipelineRun& a, const PipelineRun& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].batches.size(), b.results[i].batches.size())
        << "player " << i;
    EXPECT_EQ(a.results[i].seed_coins_used, b.results[i].seed_coins_used)
        << "player " << i;
    for (std::size_t bi = 0; bi < a.results[i].batches.size(); ++bi) {
      EXPECT_EQ(batch_key(a.results[i].batches[bi]),
                batch_key(b.results[i].batches[bi]))
          << "player " << i << " batch " << bi;
      EXPECT_EQ(a.results[i].batches[bi].coin_shares.size(),
                b.results[i].batches[bi].coin_shares.size());
      for (std::size_t h = 0; h < a.results[i].batches[bi].coin_shares.size();
           ++h) {
        EXPECT_EQ(a.results[i].batches[bi].coin_shares[h],
                  b.results[i].batches[bi].coin_shares[h])
            << "player " << i << " batch " << bi << " share " << h;
      }
    }
    EXPECT_EQ(a.coins[i], b.coins[i]) << "player " << i;
  }
  EXPECT_EQ(a.comm.messages, b.comm.messages);
  EXPECT_EQ(a.comm.bytes, b.comm.bytes);
  EXPECT_EQ(a.comm.rounds, b.comm.rounds);
}

// ---------------------------------------------------------------------
// Depth 1 == the plain serial coin_gen loop, bit for bit.
// ---------------------------------------------------------------------

TEST(CoinPipelineTest, Depth1MatchesSerialLoopBitForBit) {
  const std::uint64_t seed = 11;
  const unsigned batches = 3;

  // Reference: the pre-pipeline idiom — a serial loop of coin_gen calls
  // on the root stream.
  auto genesis = trusted_dealer_coins<F>(kN, kT, 32, seed);
  std::vector<std::vector<CoinGenResult<F>>> serial(kN);
  Cluster ref(kN, kT, seed);
  ref.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        for (unsigned b = 0; b < batches; ++b) {
          serial[io.id()].push_back(coin_gen<F>(io, kM, pool));
        }
      },
      {}, nullptr);

  const PipelineRun piped = run_pipeline(seed, batches, /*depth=*/1);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(piped.results[i].batches.size(), batches);
    for (unsigned b = 0; b < batches; ++b) {
      EXPECT_EQ(batch_key(serial[i][b]),
                batch_key(piped.results[i].batches[b]))
          << "player " << i << " batch " << b;
      ASSERT_EQ(serial[i][b].coin_shares.size(),
                piped.results[i].batches[b].coin_shares.size());
      for (std::size_t h = 0; h < serial[i][b].coin_shares.size(); ++h) {
        EXPECT_EQ(serial[i][b].coin_shares[h],
                  piped.results[i].batches[b].coin_shares[h])
            << "player " << i << " batch " << b << " share " << h;
      }
    }
  }
  // Identical transcripts imply identical communication totals. The
  // pipelined run's comm includes its expose drain; compare the
  // generation-phase totals only via per-batch message equality above
  // plus the depth-1 serial fallback being the very same code path:
  // message/byte counts per batch must match the reference exactly.
  EXPECT_EQ(piped.stale, 0u);
}

TEST(CoinPipelineTest, Depth1AndSerialCommBitForBit) {
  // Same programs on both clusters (pipeline depth 1 vs the raw loop):
  // the cluster-level byte/message/round counters must be equal.
  const std::uint64_t seed = 12;
  const unsigned batches = 2;
  auto genesis = trusted_dealer_coins<F>(kN, kT, 32, seed);

  CommCounters serial_comm;
  {
    Cluster c(kN, kT, seed);
    c.run(
        [&](PartyIo& io) {
          CoinPool<F> pool;
          for (auto& coin : genesis[io.id()]) pool.add(std::move(coin));
          for (unsigned b = 0; b < batches; ++b) {
            (void)coin_gen<F>(io, kM, pool);
          }
        },
        {}, nullptr);
    serial_comm = c.comm();
  }
  CommCounters piped_comm;
  {
    Cluster c(kN, kT, seed);
    c.run(
        [&](PartyIo& io) {
          CoinPool<F> pool;
          for (auto& coin : genesis[io.id()]) pool.add(std::move(coin));
          PipelineOptions opts;
          opts.depth = 1;
          (void)pipelined_coin_gen<F>(io, kM, pool, batches, opts);
        },
        {}, nullptr);
    piped_comm = c.comm();
  }
  EXPECT_EQ(serial_comm.messages, piped_comm.messages);
  EXPECT_EQ(serial_comm.bytes, piped_comm.bytes);
  EXPECT_EQ(serial_comm.rounds, piped_comm.rounds);
}

// ---------------------------------------------------------------------
// Overlapped depths: correctness and unanimity.
// ---------------------------------------------------------------------

TEST(CoinPipelineTest, DepthFourCleanRunSucceedsUnanimously) {
  const std::uint64_t seed = 21;
  const unsigned batches = 6;
  const PipelineRun run = run_pipeline(seed, batches, /*depth=*/4);
  EXPECT_EQ(run.stale, 0u);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(run.results[i].batches.size(), batches) << "player " << i;
    EXPECT_EQ(run.results[i].successes(), batches) << "player " << i;
    for (unsigned b = 0; b < batches; ++b) {
      // Outputs agree with player 0's across every batch.
      EXPECT_EQ(batch_key(run.results[i].batches[b]),
                batch_key(run.results[0].batches[b]))
          << "player " << i << " batch " << b;
      ASSERT_EQ(run.coins[i][b].size(), kM);
      for (unsigned h = 0; h < kM; ++h) {
        ASSERT_TRUE(run.coins[i][b][h].has_value())
            << "player " << i << " batch " << b << " coin " << h;
        EXPECT_EQ(*run.coins[i][b][h], *run.coins[0][b][h])
            << "player " << i << " batch " << b << " coin " << h;
      }
    }
  }
  // Distinct batches mint distinct randomness: with 64-bit coins, any
  // collision across batches would be astronomically unlikely.
  std::set<std::uint64_t> values;
  for (unsigned b = 0; b < batches; ++b) {
    for (unsigned h = 0; h < kM; ++h) {
      values.insert(run.coins[0][b][h]->to_uint());
    }
  }
  EXPECT_EQ(values.size(), batches * kM);
}

TEST(CoinPipelineTest, DepthFourReplayIsDeterministic) {
  // Same seed, two full traced runs: batch outputs, exposed coins,
  // communication totals, and the canonicalized trace must be identical.
  // (Canonicalized: the tracer's seq order depends on wall-clock worker
  // interleaving, so events are compared as a sorted multiset.)
  const std::uint64_t seed = 33;
  const unsigned batches = 6;

  auto traced_run = [&] {
    tracer().clear();
    tracer().set_enabled(true);
    PipelineRun run = run_pipeline(seed, batches, /*depth=*/4);
    auto events = tracer().events();
    tracer().set_enabled(false);
    tracer().clear();
    return std::make_pair(std::move(run), std::move(events));
  };
  auto [run_a, events_a] = traced_run();
  auto [run_b, events_b] = traced_run();

  expect_runs_identical(run_a, run_b);

  auto canonical = [](const std::vector<TraceEvent>& events) {
    std::vector<std::string> lines;
    lines.reserve(events.size());
    for (TraceEvent ev : events) {
      ev.seq = 0;  // the only order-dependent field
      lines.push_back(to_jsonl(ev));
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(canonical(events_a), canonical(events_b));
}

TEST(CoinPipelineTest, DepthTwoMatchesDepthFourOutputs) {
  // Per-batch transcripts are depth-independent: each batch runs the
  // same protocol on the same stream with the same rng and sub-pool no
  // matter how many neighbors are in flight.
  const std::uint64_t seed = 44;
  const unsigned batches = 4;
  const PipelineRun d2 = run_pipeline(seed, batches, /*depth=*/2);
  const PipelineRun d4 = run_pipeline(seed, batches, /*depth=*/4);
  expect_runs_identical(d2, d4);
}

TEST(CoinPipelineTest, DepthFourToleratesCrashFaults) {
  const std::uint64_t seed = 55;
  const unsigned batches = 4;
  auto genesis = trusted_dealer_coins<F>(kN, kT, 32, seed);
  std::vector<PipelineResult<F>> results(kN);
  Cluster cluster(kN, kT, seed);
  cluster.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        PipelineOptions opts;
        opts.depth = 4;
        results[io.id()] = pipelined_coin_gen<F>(io, kM, pool, batches, opts);
      },
      {3}, nullptr);
  EXPECT_EQ(cluster.stale_rejections(), 0u);
  for (int i = 0; i < kN; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(results[i].successes(), batches) << "player " << i;
    for (unsigned b = 0; b < batches; ++b) {
      EXPECT_EQ(batch_key(results[i].batches[b]),
                batch_key(results[(3 + 1) % kN].batches[b]))
          << "player " << i << " batch " << b;
      for (int member : results[i].batches[b].clique) {
        EXPECT_NE(member, 3) << "crashed dealer inside batch " << b;
      }
    }
  }
}

TEST(CoinPipelineTest, MidPipelineCrashReleasesAllParkedStreams) {
  // Regression for Cluster::drop(): the faulty player rides the first
  // rounds of every in-flight batch stream (silently) and then returns,
  // so the drop happens while several batch streams are simultaneously
  // parked at waiting == expected_. drop() must release them all —
  // waking only the first deadlocks the rest and hangs the drivers in
  // thread::join (this test hangs without the fix). A silent participant
  // delivers byte-identical inboxes to an immediate crash, so honest
  // outcomes must also match the pure-crash run bit for bit.
  const std::uint64_t seed = 77;
  const unsigned batches = 4;
  const int faulty = 3;
  auto genesis = trusted_dealer_coins<F>(kN, kT, 32, seed);

  auto run_with = [&](const Cluster::Program& adversary) {
    std::vector<PipelineResult<F>> results(kN);
    Cluster cluster(kN, kT, seed);
    cluster.run(
        [&](PartyIo& io) {
          CoinPool<F> pool;
          for (auto& c : genesis[io.id()]) pool.add(std::move(c));
          PipelineOptions opts;
          opts.depth = 4;
          results[io.id()] =
              pipelined_coin_gen<F>(io, kM, pool, batches, opts);
        },
        {faulty}, adversary);
    EXPECT_EQ(cluster.stale_rejections(), 0u);
    return results;
  };

  const auto crash = run_with(nullptr);
  const auto mid = run_with([&](PartyIo& io) {
    // Two silent rounds on each of the depth-4 batch streams (default
    // first_batch_id = 1), then crash mid-pipeline.
    std::vector<std::thread> workers;
    for (unsigned b = 0; b < batches; ++b) {
      workers.emplace_back([&io, b] {
        PartyIo& inst = io.instance(1 + b);
        inst.sync();
        inst.sync();
      });
    }
    for (auto& w : workers) w.join();
    // Let the honest workers park at their next barriers before the
    // drop. Correctness does not depend on this sleep — a worker
    // arriving after the drop fires the barrier itself — it just makes
    // the pre-fix deadlock reliable.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });

  for (int i = 0; i < kN; ++i) {
    if (i == faulty) continue;
    ASSERT_EQ(mid[i].batches.size(), batches) << "player " << i;
    EXPECT_EQ(mid[i].successes(), batches) << "player " << i;
    for (unsigned b = 0; b < batches; ++b) {
      EXPECT_EQ(batch_key(mid[i].batches[b]), batch_key(crash[i].batches[b]))
          << "player " << i << " batch " << b;
      ASSERT_EQ(mid[i].batches[b].coin_shares.size(),
                crash[i].batches[b].coin_shares.size());
      for (std::size_t h = 0; h < mid[i].batches[b].coin_shares.size(); ++h) {
        EXPECT_EQ(mid[i].batches[b].coin_shares[h],
                  crash[i].batches[b].coin_shares[h])
            << "player " << i << " batch " << b << " share " << h;
      }
      for (int member : mid[i].batches[b].clique) {
        EXPECT_NE(member, faulty) << "crashed dealer inside batch " << b;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Instance handles: isolation and accounting.
// ---------------------------------------------------------------------

TEST(CoinPipelineTest, InstanceHandlesHaveIndependentRoundsAndInboxes) {
  const int n = 3;
  Cluster cluster(n, 0, 7);
  std::vector<int> got_from(n, -1);
  std::vector<std::uint64_t> root_rounds(n), inst_rounds(n);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    PartyIo& inst = io.instance(5);
    EXPECT_EQ(inst.stream(), 5u);
    EXPECT_EQ(&io.instance(0), &io);          // 0 = self
    EXPECT_EQ(&inst.instance(5), &inst);      // own stream = self
    EXPECT_EQ(&io.instance(5), &inst);        // stable handle
    // Ring message on stream 5 only.
    const auto tag = make_tag(ProtoId::kVss, 9, 0);
    inst.send((io.id() + 1) % n, tag, {static_cast<std::uint8_t>(io.id())});
    inst.sync();
    const Msg* from_prev = inst.inbox().from((io.id() + n - 1) % n, tag);
    ASSERT_NE(from_prev, nullptr);
    got_from[io.id()] = from_prev->from;
    root_rounds[io.id()] = io.rounds();
    inst_rounds[io.id()] = inst.rounds();
    EXPECT_TRUE(io.inbox().all().empty());    // root stream untouched
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(got_from[i], (i + n - 1) % n);
    EXPECT_EQ(root_rounds[i], 0u);  // root never synced
    EXPECT_EQ(inst_rounds[i], 1u);
  }
  EXPECT_EQ(cluster.stale_rejections(), 0u);
}

TEST(CoinPipelineTest, PerPlayerCommIncludesInstanceTraffic) {
  const int n = 3;
  Cluster cluster(n, 0, 8);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    PartyIo& inst = io.instance(2);
    inst.send_all(make_tag(ProtoId::kVss, 1, 0), {0xAB, 0xCD});
    inst.sync();
  }));
  const auto per_player = cluster.per_player_comm();
  std::uint64_t messages = 0, bytes = 0;
  for (const auto& c : per_player) {
    messages += c.messages;
    bytes += c.bytes;
  }
  EXPECT_EQ(messages, cluster.comm().messages);
  EXPECT_EQ(bytes, cluster.comm().bytes);
  EXPECT_GT(messages, 0u);
}

TEST(CoinPipelineTest, InstanceRngsAreIndependentOfRootStream) {
  // The per-batch rng must not replay the root stream's randomness (a
  // batch dealing the same polynomials as the root would correlate
  // coins).
  const int n = 2;
  Cluster cluster(n, 0, 9);
  std::vector<std::uint64_t> root_draw(n), inst_draw(n), inst2_draw(n);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    root_draw[io.id()] = io.rng().next_u64();
    inst_draw[io.id()] = io.instance(1).rng().next_u64();
    inst2_draw[io.id()] = io.instance(2).rng().next_u64();
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_NE(root_draw[i], inst_draw[i]);
    EXPECT_NE(root_draw[i], inst2_draw[i]);
    EXPECT_NE(inst_draw[i], inst2_draw[i]);
  }
}

TEST(CoinPipelineTest, TraceEventsCarryBatchIds) {
  const std::uint64_t seed = 66;
  const unsigned batches = 4;
  tracer().clear();
  tracer().set_enabled(true);
  (void)run_pipeline(seed, batches, /*depth=*/4);
  const auto events = tracer().events();
  tracer().set_enabled(false);
  tracer().clear();

  std::set<std::uint32_t> coin_gen_streams;
  for (const auto& ev : events) {
    if (ev.protocol == "coin-gen" && ev.kind == TraceEventKind::kSpan) {
      coin_gen_streams.insert(ev.batch);
    }
    if (ev.protocol == "coin-expose") {
      // The drain runs on the root stream.
      continue;
    }
  }
  // Every batch's spans are stamped with its stream id (default
  // first_batch_id = 1), and nothing coin-gen runs on stream 0.
  const std::set<std::uint32_t> expected{1, 2, 3, 4};
  EXPECT_EQ(coin_gen_streams, expected);
}

}  // namespace
}  // namespace dprbg
