// Adversary zoo: integration tests that attack Coin-Gen / D-PRBG with
// actively malicious behaviours beyond simple crashes — equivocating
// dealers, lying grade-casters, protocol-noise injection — and verify the
// paper's guarantees (unanimity, agreement, unpredictability) survive.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/dprbg.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "poly/interpolate.h"

namespace dprbg {
namespace {

using F = GF2_64;

struct AttackRun {
  std::vector<CoinGenResult<F>> results;
  std::vector<std::vector<std::optional<F>>> coins;
};

AttackRun run_attack(int n, int t, std::uint64_t seed, unsigned m,
               const std::vector<int>& faulty,
               const Cluster::Program& adversary) {
  auto genesis = trusted_dealer_coins<F>(n, t, 10, seed);
  AttackRun run;
  run.results.resize(n);
  run.coins.assign(n, {});
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        auto result = coin_gen<F>(io, m, pool);
        run.results[io.id()] = result;
        if (!result.success) return;
        auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
        for (unsigned h = 0; h < m; ++h) {
          run.coins[io.id()].push_back(
              coin_expose<F>(io, sealed[h], 100 + h));
        }
      },
      faulty, adversary);
  return run;
}

void expect_success_and_unanimity(const AttackRun& run, int n, unsigned m,
                                  const std::set<int>& faulty) {
  int ref = -1;
  for (int i = 0; i < n; ++i) {
    if (faulty.count(i)) continue;
    ASSERT_TRUE(run.results[i].success) << "player " << i;
    if (ref < 0) ref = i;
    EXPECT_EQ(run.results[i].clique, run.results[ref].clique) << i;
    ASSERT_EQ(run.coins[i].size(), m) << i;
    for (unsigned h = 0; h < m; ++h) {
      ASSERT_TRUE(run.coins[i][h].has_value()) << i << "," << h;
      EXPECT_EQ(*run.coins[i][h], *run.coins[ref][h]) << i << "," << h;
    }
  }
}

TEST(AdversaryTest, EquivocatingBitGenDealer) {
  // The Byzantine dealer sends DIFFERENT valid-looking rows to different
  // players (an equivocation the broadcast-free model must survive).
  const int n = 13, t = 2;
  const unsigned m = 3;
  auto genesis = trusted_dealer_coins<F>(n, t, 10, 11);
  AttackRun run;
  run.results.resize(n);
  run.coins.assign(n, {});
  Cluster cluster(n, t, 11);
  const std::vector<int> faulty = {4};
  cluster.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        auto result = coin_gen<F>(io, m, pool);
        run.results[io.id()] = result;
        if (!result.success) return;
        auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
        for (unsigned h = 0; h < m; ++h) {
          run.coins[io.id()].push_back(
              coin_expose<F>(io, sealed[h], 100 + h));
        }
      },
      faulty,
      [&](PartyIo& io) {
        // Deal per-receiver-different rows (each individually on a valid
        // degree-t polynomial family, but mutually inconsistent).
        const auto row_tag = make_tag(ProtoId::kBitGen, 0, 0);
        for (int i = 0; i < io.n(); ++i) {
          std::vector<Polynomial<F>> polys;
          for (unsigned j = 0; j < m + 1; ++j) {
            polys.push_back(Polynomial<F>::random(t, io.rng()));
          }
          ByteWriter w;
          for (const auto& f : polys) write_elem(w, f(eval_point<F>(i)));
          io.send(i, row_tag, std::move(w).take());
        }
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        (void)coin_expose<F>(io, pool.take(), 0);
        io.sync();  // skip combo round (silent)
      });
  expect_success_and_unanimity(run, n, m, {4});
}

TEST(AdversaryTest, LyingGradeCaster) {
  // A Byzantine player grade-casts a fabricated clique + fabricated
  // polynomials. If the leader coin selects it, BA must reject (vote 0)
  // and the loop must retry; otherwise it is ignored. Either way honest
  // players end unanimous. Several seeds exercise both paths.
  const int n = 13, t = 2;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto genesis = trusted_dealer_coins<F>(n, t, 10, 100 + seed);
    AttackRun run;
    run.results.resize(n);
    run.coins.assign(n, {});
    Cluster cluster(n, t, 100 + seed);
    cluster.run(
        [&](PartyIo& io) {
          CoinPool<F> pool;
          for (auto& c : genesis[io.id()]) pool.add(std::move(c));
          auto result = coin_gen<F>(io, 2, pool);
          run.results[io.id()] = result;
          if (!result.success) return;
          auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
          for (unsigned h = 0; h < 2; ++h) {
            run.coins[io.id()].push_back(
                coin_expose<F>(io, sealed[h], 100 + h));
          }
        },
        {6},
        [&](PartyIo& io) {
          // Round 1: deal honestly-shaped rows (degree t) so it may enter
          // cliques.
          std::vector<Polynomial<F>> polys;
          for (unsigned j = 0; j < 3; ++j) {
            polys.push_back(Polynomial<F>::random(t, io.rng()));
          }
          const auto row_tag = make_tag(ProtoId::kBitGen, 0, 0);
          for (int i = 0; i < io.n(); ++i) {
            ByteWriter w;
            for (const auto& f : polys) write_elem(w, f(eval_point<F>(i)));
            io.send(i, row_tag, std::move(w).take());
          }
          CoinPool<F> pool;
          for (auto& c : genesis[io.id()]) pool.add(std::move(c));
          (void)coin_expose<F>(io, pool.take(), 0);
          // Round 2: silent in combos.
          io.sync();
          // Grade-cast rounds: fabricate a clique message claiming all of
          // {0..4t} with zero polynomials.
          ByteWriter lie;
          lie.u8(static_cast<std::uint8_t>(4 * t + 1));
          for (int j = 0; j <= 4 * t; ++j) {
            lie.u8(static_cast<std::uint8_t>(j));
            for (unsigned c = 0; c <= t; ++c) write_elem(lie, F::zero());
          }
          io.send_all(make_tag(ProtoId::kGradeCast, 0, 0), lie.data());
          io.sync();
          io.sync();
          io.sync();
          // Then crash (stops voting in BA / leader exposures).
        });
    expect_success_and_unanimity(run, n, 2, {6});
  }
}

TEST(AdversaryTest, ProtocolNoiseFuzz) {
  // Faulty players spray random bytes with plausible tags on every round
  // for the whole protocol: nothing may crash, and honest players stay
  // unanimous. This fuzzes every deserialization path in the stack.
  const int n = 13, t = 2;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const std::vector<int> faulty = {2, 9};
    const auto run = run_attack(
        n, t, 200 + seed, 2, faulty, [&](PartyIo& io) {
          Chacha& rng = io.rng();
          for (int round = 0; round < 60; ++round) {
            for (int burst = 0; burst < 5; ++burst) {
              const auto proto = static_cast<ProtoId>(
                  1 + rng.uniform(10));
              const auto tag =
                  make_tag(proto, static_cast<unsigned>(rng.uniform(16)),
                           static_cast<unsigned>(rng.uniform(8)));
              std::vector<std::uint8_t> junk(rng.uniform(64));
              rng.fill_bytes(junk);
              io.send(static_cast<int>(rng.uniform(io.n())), tag,
                      std::move(junk));
            }
            io.sync();
          }
        });
    expect_success_and_unanimity(run, n, 2, {2, 9});
  }
}

TEST(AdversaryTest, MintedCoinsUnpredictableToCoalition) {
  // Information-theoretic unpredictability of a minted (not yet exposed)
  // coin: the t coalition shares of the sum polynomial are consistent
  // with EVERY possible coin value.
  const int n = 13, t = 2;
  const auto run = run_attack(n, t, 300, 2, {}, nullptr);
  // Suppose the adversary corrupted players 0 and 1 (any t players).
  for (unsigned h = 0; h < 2; ++h) {
    std::vector<PointValue<F>> known = {
        {eval_point<F>(0), run.results[0].coin_shares[h]},
        {eval_point<F>(1), run.results[1].coin_shares[h]},
    };
    for (std::uint64_t candidate : {0ull, 1ull, 0xFFFFull}) {
      auto pts = known;
      pts.push_back({F::zero(), F::from_uint(candidate)});
      const auto f = lagrange_interpolate<F>(pts);
      EXPECT_LE(f.degree(), static_cast<int>(t));
    }
  }
}

TEST(AdversaryTest, DprbgSurvivesByzantineNoiseAcrossRefills) {
  // Full D-PRBG stream with persistent noise injectors: refills + draws
  // stay unanimous.
  const int n = 13, t = 2;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 400);
  const int kDraws = 20;
  std::vector<std::vector<std::optional<F>>> streams(n);
  Cluster cluster(n, t, 400);
  cluster.run(
      [&](PartyIo& io) {
        DPrbg<F>::Options opts;
        opts.batch_size = 10;
        opts.reserve = 4;
        DPrbg<F> prbg(opts, genesis[io.id()]);
        for (int d = 0; d < kDraws; ++d) {
          streams[io.id()].push_back(prbg.next_coin(io));
        }
      },
      {5, 11},
      [&](PartyIo& io) {
        Chacha& rng = io.rng();
        for (int round = 0; round < 200; ++round) {
          const auto tag = make_tag(
              static_cast<ProtoId>(1 + rng.uniform(10)),
              static_cast<unsigned>(rng.uniform(4096)),
              static_cast<unsigned>(rng.uniform(8)));
          std::vector<std::uint8_t> junk(rng.uniform(32));
          rng.fill_bytes(junk);
          io.send_all(tag, junk);
          io.sync();
        }
      });
  for (int d = 0; d < kDraws; ++d) {
    std::optional<F> ref;
    for (int i = 0; i < n; ++i) {
      if (i == 5 || i == 11) continue;
      ASSERT_TRUE(streams[i][d].has_value())
          << "player " << i << " draw " << d;
      if (!ref) ref = *streams[i][d];
      EXPECT_EQ(*streams[i][d], *ref) << "player " << i << " draw " << d;
    }
  }
}

TEST(AdversaryTest, WrongSigmaSharesAtExposeTime) {
  // Qualified Byzantine players contribute corrupted sigma shares during
  // exposure; Berlekamp-Welch absorbs them (Theorem 1's mechanism).
  const int n = 13, t = 2;
  auto genesis = trusted_dealer_coins<F>(n, t, 10, 500);
  const unsigned m = 4;
  std::vector<std::vector<std::optional<F>>> coins(n);
  Cluster cluster(n, t, 500);
  // Everyone runs Coin-Gen honestly; players 3 and 7 corrupt only the
  // expose phase.
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    auto result = coin_gen<F>(io, m, pool);
    ASSERT_TRUE(result.success);
    auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
    const bool corrupt = io.id() == 3 || io.id() == 7;
    for (unsigned h = 0; h < m; ++h) {
      SealedCoin<F> coin = sealed[h];
      if (corrupt && coin.share) {
        coin.share = *coin.share + F::one();  // subtly wrong
      }
      coins[io.id()].push_back(coin_expose<F>(io, coin, 100 + h));
    }
  }));
  for (unsigned h = 0; h < m; ++h) {
    std::optional<F> ref;
    for (int i = 0; i < n; ++i) {
      if (i == 3 || i == 7) continue;
      ASSERT_TRUE(coins[i][h].has_value());
      if (!ref) ref = *coins[i][h];
      EXPECT_EQ(*coins[i][h], *ref);
    }
  }
}

}  // namespace
}  // namespace dprbg
