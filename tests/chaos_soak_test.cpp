// Chaos soak: hammer every protocol with seeded random link-fault plans
// (net/fault.h) and assert the paper's guarantees for the players the
// faults are NOT charged to. Because every faulted link is attributed to
// a charged set of size <= t, a lossy link is indistinguishable from a
// Byzantine player — so honest-side unanimity (Lemmas 1-8) must survive
// every plan. Each failure prints its fault seed; rerunning with that
// seed replays the execution bit-for-bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "ba/randomized_ba.h"
#include "chaos_util.h"
#include "coin/bitgen.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "gradecast/gradecast.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "vss/batch_vss.h"
#include "vss/vss.h"

namespace dprbg {
namespace {

using F = GF2_64;
using chaos::expect_gradecast_band;
using chaos::expect_honest_unanimous;
using chaos::replay_note;
using chaos::Trial;

// ---------------------------------------------------------------------
// Coin-Gen: the acceptance criterion — >= 200 seeded plans, unanimous
// success/clique/coin outputs across all non-charged players.
// ---------------------------------------------------------------------

TEST(ChaosSoakTest, CoinGenUnanimousAcross200FaultPlans) {
  const int n = 7;
  const unsigned t = 1;
  const unsigned m = 2;
  const int kSeeds = 200;
  int successes = 0;
  std::uint64_t fault_total = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    Trial trial(n, t, seed, /*rounds=*/48, /*rate=*/0.08);
    auto genesis = trusted_dealer_coins<F>(n, t, 8, seed);
    std::vector<CoinGenResult<F>> results(n);
    std::vector<std::vector<std::optional<F>>> coins(
        n, std::vector<std::optional<F>>(m));
    trial.cluster.run(
        [&](PartyIo& io) {
          CoinPool<F> pool;
          for (auto& c : genesis[io.id()]) pool.add(std::move(c));
          results[io.id()] = coin_gen<F>(io, m, pool);
          if (!results[io.id()].success) return;
          const auto sealed = results[io.id()].sealed_coins(t);
          for (unsigned h = 0; h < m; ++h) {
            // An unqualified player holds no shares (sealed_coins is
            // empty) but still joins the expose rounds and learns the
            // value from the qualified players' sigmas.
            const SealedCoin<F> coin = h < sealed.size()
                                           ? sealed[h]
                                           : SealedCoin<F>{std::nullopt, t};
            coins[io.id()][h] =
                coin_expose<F>(io, coin, /*instance=*/100 + h);
          }
        },
        {}, nullptr);

    std::vector<char> success(n);
    std::vector<std::vector<int>> cliques(n);
    std::vector<std::vector<int>> summed(n);
    std::vector<unsigned> iterations(n);
    for (int i = 0; i < n; ++i) {
      success[i] = results[i].success;
      cliques[i] = results[i].clique;
      summed[i] = results[i].summed_dealers;
      iterations[i] = results[i].iterations;
    }
    expect_honest_unanimous(success, trial.charged, seed,
                            "coin-gen success flag");
    expect_honest_unanimous(cliques, trial.charged, seed,
                            "coin-gen clique");
    expect_honest_unanimous(summed, trial.charged, seed,
                            "coin-gen summed dealers");
    expect_honest_unanimous(iterations, trial.charged, seed,
                            "coin-gen iteration count");
    const int witness =
        trial.charged.count(0) != 0 ? 1 : 0;  // some non-charged player
    if (results[witness].success) {
      ++successes;
      expect_honest_unanimous(coins, trial.charged, seed,
                              "exposed coin values");
      for (unsigned h = 0; h < m; ++h) {
        EXPECT_TRUE(coins[witness][h].has_value())
            << "coin " << h << " failed to expose; " << replay_note(seed);
      }
    }
    fault_total += trial.cluster.faults().total();
  }
  // The harness must be hitting the network (not vacuously clean plans)
  // and the protocol must ride out the vast majority of them.
  EXPECT_GT(fault_total, static_cast<std::uint64_t>(kSeeds));
  EXPECT_GE(successes, kSeeds * 9 / 10)
      << "Coin-Gen failed (unanimously) far more often than a <= t/n "
         "faulty-leader rate explains";
}

// A deliberately harsher shape: the charged player is fully partitioned
// for a window covering Bit-Gen and grade-cast, then rejoins.
TEST(ChaosSoakTest, CoinGenSurvivesMidProtocolPartition) {
  const int n = 7;
  const unsigned t = 1;
  const unsigned m = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    const int victim = static_cast<int>(seed % n);
    FaultPlan plan;
    plan.charge(victim);
    plan.isolate(/*first_round=*/1, /*last_round=*/4, victim, n);
    Cluster cluster(n, static_cast<int>(t), seed);
    cluster.set_fault_injector(
        std::make_shared<FaultInjector>(std::move(plan)));
    auto genesis = trusted_dealer_coins<F>(n, t, 8, seed);
    std::vector<CoinGenResult<F>> results(n);
    cluster.run(
        [&](PartyIo& io) {
          CoinPool<F> pool;
          for (auto& c : genesis[io.id()]) pool.add(std::move(c));
          results[io.id()] = coin_gen<F>(io, m, pool);
        },
        {}, nullptr);
    const std::set<int> charged{victim};
    std::vector<char> success(n);
    std::vector<std::vector<int>> cliques(n);
    for (int i = 0; i < n; ++i) {
      success[i] = results[i].success;
      cliques[i] = results[i].clique;
    }
    expect_honest_unanimous(success, charged, seed, "success flag");
    expect_honest_unanimous(cliques, charged, seed, "clique");
    EXPECT_TRUE(results[(victim + 1) % n].success) << replay_note(seed);
  }
}

// ---------------------------------------------------------------------
// Grade-Cast: honest-sender delivery and the confidence band.
// ---------------------------------------------------------------------

TEST(ChaosSoakTest, GradeCastBandHoldsUnderFaults) {
  const int n = 7;
  const unsigned t = 2;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    Trial trial(n, t, seed, /*rounds=*/3, /*rate=*/0.15);
    std::vector<std::vector<GradeCastResult>> results(n);
    trial.cluster.run(
        [&](PartyIo& io) {
          const std::vector<std::uint8_t> mine{
              static_cast<std::uint8_t>(io.id()), 0xA5};
          results[io.id()] = grade_cast_all(io, mine);
        },
        {}, nullptr);
    for (int s = 0; s < n; ++s) {
      std::vector<GradeCastResult> per_player(n);
      for (int i = 0; i < n; ++i) per_player[i] = results[i][s];
      if (trial.charged.count(s) == 0) {
        // Honest sender with clean links: everyone non-charged commits.
        for (int i = 0; i < n; ++i) {
          if (trial.charged.count(i) != 0) continue;
          EXPECT_EQ(per_player[i].confidence, 2)
              << "sender " << s << " player " << i << "; "
              << replay_note(seed);
          const std::vector<std::uint8_t> expected{
              static_cast<std::uint8_t>(s), 0xA5};
          EXPECT_EQ(per_player[i].value, expected)
              << "sender " << s << " player " << i << "; "
              << replay_note(seed);
        }
      }
      expect_gradecast_band(per_player, trial.charged, seed, s);
    }
  }
}

// ---------------------------------------------------------------------
// VSS / Batch-VSS: unanimous accept with an honest unfaulted dealer,
// unanimous *decision* even when the dealer's links are the faulted ones.
// ---------------------------------------------------------------------

TEST(ChaosSoakTest, VssAcceptsWithHonestDealerUnderFaults) {
  const int n = 7;
  const unsigned t = 2;
  const int dealer = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    Trial trial(n, t, seed, /*rounds=*/4, /*rate=*/0.12,
                /*never_charge=*/{dealer});
    auto genesis = trusted_dealer_coins<F>(n, t, 1, seed);
    std::vector<char> accepted(n);
    trial.cluster.run(
        [&](PartyIo& io) {
          std::optional<Polynomial<F>> poly;
          if (io.id() == dealer) {
            poly = Polynomial<F>::random(t, io.rng());
          }
          const auto out = vss_share_and_verify<F>(
              io, dealer, t, poly,
              SealedCoin<F>{genesis[io.id()][0].share, t});
          accepted[io.id()] = out.accepted;
        },
        {}, nullptr);
    for (int i = 0; i < n; ++i) {
      if (trial.charged.count(i) != 0) continue;
      EXPECT_TRUE(accepted[i])
          << "player " << i << " rejected an honest unfaulted dealer; "
          << replay_note(seed);
    }
  }
}

TEST(ChaosSoakTest, VssDecisionUnanimousEvenWithFaultedDealerLinks) {
  const int n = 7;
  const unsigned t = 2;
  const int dealer = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    // No never_charge: the dealer itself may be the charged player, so
    // its outgoing shares can be corrupted — the decision must still be
    // unanimous among the others. The fault horizon stops after round 0
    // (share delivery + challenge exposure): VSS agreement is proven
    // under the broadcast assumption, and faulting a link in the
    // combination round (round 1) would equivocate the broadcast itself —
    // more power than a Byzantine dealer has (see DESIGN.md, "What link
    // faults may not touch").
    Trial trial(n, t, seed, /*rounds=*/1, /*rate=*/0.5);
    auto genesis = trusted_dealer_coins<F>(n, t, 1, seed);
    std::vector<char> accepted(n);
    trial.cluster.run(
        [&](PartyIo& io) {
          std::optional<Polynomial<F>> poly;
          if (io.id() == dealer) {
            poly = Polynomial<F>::random(t, io.rng());
          }
          const auto out = vss_share_and_verify<F>(
              io, dealer, t, poly,
              SealedCoin<F>{genesis[io.id()][0].share, t});
          accepted[io.id()] = out.accepted;
        },
        {}, nullptr);
    expect_honest_unanimous(accepted, trial.charged, seed,
                            "VSS accept/reject decision");
  }
}

TEST(ChaosSoakTest, BatchVssAcceptsWithHonestDealerUnderFaults) {
  const int n = 7;
  const unsigned t = 2;
  const int dealer = 2;
  const unsigned m = 6;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    Trial trial(n, t, seed, /*rounds=*/4, /*rate=*/0.12,
                /*never_charge=*/{dealer});
    auto genesis = trusted_dealer_coins<F>(n, t, 1, seed);
    std::vector<char> accepted(n);
    trial.cluster.run(
        [&](PartyIo& io) {
          std::vector<Polynomial<F>> polys;
          if (io.id() == dealer) {
            for (unsigned j = 0; j < m; ++j) {
              polys.push_back(Polynomial<F>::random(t, io.rng()));
            }
          }
          const auto out = batch_vss<F>(
              io, dealer, t, m, polys,
              SealedCoin<F>{genesis[io.id()][0].share, t});
          accepted[io.id()] = out.accepted;
        },
        {}, nullptr);
    for (int i = 0; i < n; ++i) {
      if (trial.charged.count(i) != 0) continue;
      EXPECT_TRUE(accepted[i])
          << "player " << i << " rejected an honest unfaulted dealer; "
          << replay_note(seed);
    }
  }
}

// ---------------------------------------------------------------------
// Bit-Gen: every non-charged player decodes the same combined
// polynomial from an honest unfaulted dealer.
// ---------------------------------------------------------------------

TEST(ChaosSoakTest, BitGenDecodesUnanimouslyUnderFaults) {
  const int n = 7;
  const unsigned t = 1;
  const int dealer = 3;
  const unsigned m_total = 5;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    Trial trial(n, t, seed, /*rounds=*/3, /*rate=*/0.15,
                /*never_charge=*/{dealer});
    auto genesis = trusted_dealer_coins<F>(n, t, 1, seed);
    std::vector<std::vector<std::uint64_t>> decoded(n);
    trial.cluster.run(
        [&](PartyIo& io) {
          std::vector<Polynomial<F>> polys;
          if (io.id() == dealer) {
            for (unsigned j = 0; j < m_total; ++j) {
              polys.push_back(Polynomial<F>::random(t, io.rng()));
            }
          }
          const auto view = bit_gen_single<F>(
              io, dealer, m_total, t, polys,
              SealedCoin<F>{genesis[io.id()][0].share, t});
          if (view.poly) {
            for (unsigned c = 0; c <= t; ++c) {
              decoded[io.id()].push_back(view.poly->coeff(c).to_uint());
            }
          }
        },
        {}, nullptr);
    for (int i = 0; i < n; ++i) {
      if (trial.charged.count(i) != 0) continue;
      EXPECT_FALSE(decoded[i].empty())
          << "player " << i << " output bottom for an honest unfaulted "
          << "dealer; " << replay_note(seed);
    }
    expect_honest_unanimous(decoded, trial.charged, seed,
                            "bit-gen combined polynomial");
  }
}

// ---------------------------------------------------------------------
// Randomized BA: agreement + validity with coins exposed over faulted
// links.
// ---------------------------------------------------------------------

TEST(ChaosSoakTest, RandomizedBaAgreesUnderFaults) {
  const int n = 7;
  const unsigned t = 1;
  const unsigned kPhases = 12;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE(replay_note(seed));
    Trial trial(n, t, seed, /*rounds=*/2 * kPhases + 2, /*rate=*/0.1);
    auto genesis =
        trusted_dealer_coins<F>(n, t, static_cast<int>(kPhases), seed);
    std::vector<std::optional<int>> decisions(n);
    trial.cluster.run(
        [&](PartyIo& io) {
          CoinPool<F> pool;
          for (auto& c : genesis[io.id()]) pool.add(std::move(c));
          unsigned draw = 0;
          const auto coin_source =
              [&](PartyIo& pio) -> std::optional<int> {
            if (pool.empty()) return std::nullopt;
            const auto val = coin_expose<F>(pio, pool.take(),
                                            /*instance=*/500 + draw++);
            if (!val) return std::nullopt;
            return static_cast<int>(val->to_uint() & 1u);
          };
          const auto result = randomized_ba(
              io, (io.id() * 7 + static_cast<int>(seed)) % 2, coin_source,
              kPhases, /*instance=*/0);
          decisions[io.id()] = result.decision;
        },
        {}, nullptr);
    expect_honest_unanimous(decisions, trial.charged, seed,
                            "randomized BA decision");
  }
}

TEST(ChaosSoakTest, RandomizedBaValidityUnderFaults) {
  const int n = 7;
  const unsigned t = 1;
  const unsigned kPhases = 8;
  for (int v : {0, 1}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      SCOPED_TRACE(replay_note(seed));
      Trial trial(n, t, seed + 977 * v, /*rounds=*/2 * kPhases + 2,
                  /*rate=*/0.1);
      auto genesis = trusted_dealer_coins<F>(
          n, t, static_cast<int>(kPhases), seed);
      std::vector<std::optional<int>> decisions(n);
      trial.cluster.run(
          [&](PartyIo& io) {
            CoinPool<F> pool;
            for (auto& c : genesis[io.id()]) pool.add(std::move(c));
            unsigned draw = 0;
            const auto coin_source =
                [&](PartyIo& pio) -> std::optional<int> {
              if (pool.empty()) return std::nullopt;
              const auto val = coin_expose<F>(pio, pool.take(),
                                              /*instance=*/500 + draw++);
              if (!val) return std::nullopt;
              return static_cast<int>(val->to_uint() & 1u);
            };
            decisions[io.id()] =
                randomized_ba(io, v, coin_source, kPhases).decision;
          },
          {}, nullptr);
      // Unanimous honest input v must decide v (validity), faults or not.
      for (int i = 0; i < n; ++i) {
        if (trial.charged.count(i) != 0) continue;
        ASSERT_TRUE(decisions[i].has_value())
            << "player " << i << "; " << replay_note(seed);
        EXPECT_EQ(*decisions[i], v)
            << "player " << i << "; " << replay_note(seed);
      }
    }
  }
}

}  // namespace
}  // namespace dprbg
