// Tests for the matching-based clique approximation (Fig. 5 step 6,
// Garey & Johnson p. 134).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "coin/clique.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

Graph complete_graph(int n) {
  Graph g(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

// Graph where the `faulty` set has arbitrary (here: no) edges and all
// honest pairs are connected — the structure Coin-Gen produces.
Graph honest_core_graph(int n, const std::set<int>& faulty) {
  Graph g(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!faulty.count(a) && !faulty.count(b)) g.add_edge(a, b);
    }
  }
  return g;
}

TEST(CliqueTest, CompleteGraphGivesAllVertices) {
  const auto clique = find_large_clique(complete_graph(7));
  EXPECT_EQ(clique.size(), 7u);
}

TEST(CliqueTest, SingleVertex) {
  Graph g(1);
  EXPECT_EQ(find_large_clique(g).size(), 1u);
}

TEST(CliqueTest, HonestCoreGuarantee) {
  // With every complement edge touching a faulty vertex, the clique found
  // has size >= n - 2t.
  for (int t : {1, 2, 3}) {
    const int n = 6 * t + 1;
    std::set<int> faulty;
    for (int i = 0; i < t; ++i) faulty.insert(i * 2);
    const Graph g = honest_core_graph(n, faulty);
    const auto clique = find_large_clique(g);
    EXPECT_GE(clique.size(), static_cast<std::size_t>(n - 2 * t))
        << "t=" << t;
    EXPECT_TRUE(g.is_clique(clique));
  }
}

TEST(CliqueTest, FaultyWithPartialEdgesStillLargeClique) {
  // Faulty players connected to *some* honest players (the realistic
  // Coin-Gen case): the guarantee still holds.
  Chacha rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 13, t = 2;
    const std::set<int> faulty = {3, 8};
    Graph g = honest_core_graph(n, faulty);
    for (int f : faulty) {
      for (int b = 0; b < n; ++b) {
        if (b != f && rng.next_u32() % 2 == 0) g.add_edge(f, b);
      }
    }
    const auto clique = find_large_clique(g);
    EXPECT_GE(clique.size(), static_cast<std::size_t>(n - 2 * t));
    EXPECT_TRUE(g.is_clique(clique));
  }
}

TEST(CliqueTest, DeterministicAcrossCalls) {
  const Graph g = honest_core_graph(13, {1, 7});
  EXPECT_EQ(find_large_clique(g), find_large_clique(g));
}

TEST(CliqueTest, OutputSorted) {
  const auto clique = find_large_clique(honest_core_graph(10, {2, 5}));
  EXPECT_TRUE(std::is_sorted(clique.begin(), clique.end()));
}

TEST(CliqueTest, EmptyGraphYieldsSmallClique) {
  // No edges at all: maximal matching pairs everything up; the result is
  // still a (possibly tiny) valid clique — never a crash.
  Graph g(6);
  const auto clique = find_large_clique(g);
  EXPECT_LE(clique.size(), 1u);
}

TEST(GraphTest, BasicAdjacency) {
  Graph g(4);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 1));
  g.add_edge(3, 3);  // self-loop ignored
  EXPECT_FALSE(g.has_edge(3, 3));
}

TEST(GraphTest, IsCliqueChecksAllPairs) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.is_clique({0, 1, 2}));
  EXPECT_FALSE(g.is_clique({0, 1, 3}));
  EXPECT_TRUE(g.is_clique({2}));
  EXPECT_TRUE(g.is_clique({}));
}

}  // namespace
}  // namespace dprbg
