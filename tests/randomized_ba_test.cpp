// Tests for randomized BA driven by D-PRBG coins — the paper's headline
// application (shared coins -> fast Byzantine agreement).

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "ba/randomized_ba.h"
#include "dprbg/dprbg.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

struct RbaRun {
  std::vector<std::optional<int>> decisions;
  std::vector<unsigned> phases;
};

RbaRun run_rba(int n, int t, std::uint64_t seed,
               const std::vector<int>& inputs,
               const std::vector<int>& faulty = {},
               const Cluster::Program& adversary = nullptr) {
  auto genesis = trusted_dealer_coins<F>(n, t, 8, seed);
  RbaRun run;
  run.decisions.assign(n, std::nullopt);
  run.phases.assign(n, 0);
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        DPrbg<F>::Options opts;
        opts.batch_size = 24;
        opts.reserve = 4;
        DPrbg<F> prbg(opts, genesis[io.id()]);
        const auto result = randomized_ba(
            io, inputs[io.id()],
            [&](PartyIo& pio) { return prbg.next_bit(pio); });
        run.decisions[io.id()] = result.decision;
        run.phases[io.id()] = result.phases_run;
      },
      faulty, adversary);
  return run;
}

void expect_agreement(const RbaRun& run, const std::set<int>& faulty,
                      std::optional<int> expected = std::nullopt) {
  std::optional<int> ref = expected;
  for (std::size_t i = 0; i < run.decisions.size(); ++i) {
    if (faulty.count(static_cast<int>(i))) continue;
    ASSERT_TRUE(run.decisions[i].has_value()) << "player " << i;
    if (!ref) ref = run.decisions[i];
    EXPECT_EQ(*run.decisions[i], *ref) << "player " << i;
  }
}

TEST(RandomizedBaTest, ValidityUnanimousInput) {
  for (int v : {0, 1}) {
    const auto run = run_rba(7, 1, 10 + v, std::vector<int>(7, v));
    expect_agreement(run, {}, v);
    // Unanimous input decides in the very first phase.
    for (int i = 0; i < 7; ++i) EXPECT_EQ(run.phases[i], 1u);
  }
}

TEST(RandomizedBaTest, MixedInputsConverge) {
  std::vector<int> inputs = {0, 1, 0, 1, 0, 1, 0};
  const auto run = run_rba(7, 1, 12, inputs);
  expect_agreement(run, {});
}

TEST(RandomizedBaTest, ConvergesFastInExpectation) {
  // Expected O(1) phases: over several seeds, the mean must be small.
  double total_phases = 0;
  const int kTrials = 8;
  for (int s = 0; s < kTrials; ++s) {
    std::vector<int> inputs(7);
    for (int i = 0; i < 7; ++i) inputs[i] = (i + s) % 2;
    const auto run = run_rba(7, 1, 20 + s, inputs);
    expect_agreement(run, {});
    total_phases += run.phases[0];
  }
  EXPECT_LE(total_phases / kTrials, 6.0);
}

TEST(RandomizedBaTest, ToleratesCrashFaults) {
  std::vector<int> inputs(11, 1);
  const auto run = run_rba(11, 2, 30, inputs, {0, 5}, nullptr);
  expect_agreement(run, {0, 5}, 1);
}

TEST(RandomizedBaTest, ToleratesByzantineVoteFlipping) {
  const int n = 11, t = 2;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 40);
  RbaRun run;
  run.decisions.assign(n, std::nullopt);
  run.phases.assign(n, 0);
  std::vector<int> inputs(n, 1);
  Cluster cluster(n, t, 40);
  cluster.run(
      [&](PartyIo& io) {
        DPrbg<F>::Options opts;
        opts.batch_size = 24;
        opts.reserve = 4;
        DPrbg<F> prbg(opts, genesis[io.id()]);
        const auto result = randomized_ba(
            io, inputs[io.id()],
            [&](PartyIo& pio) { return prbg.next_bit(pio); });
        run.decisions[io.id()] = result.decision;
      },
      {3, 8},
      [&](PartyIo& io) {
        // Flip votes per receiver every phase; stay silent on coins.
        for (unsigned phase = 0; phase < 20; ++phase) {
          const auto tag =
              make_tag(ProtoId::kRandomizedBa, 0, phase & 0xFF);
          for (int to = 0; to < io.n(); ++to) {
            io.send(to, tag, {static_cast<std::uint8_t>(to % 2)});
          }
          io.sync();  // vote round
          io.sync();  // coin round
        }
      });
  expect_agreement(run, {3, 8}, 1);
}

TEST(RandomizedBaTest, CoinConsumptionAccounted) {
  auto genesis = trusted_dealer_coins<F>(7, 1, 8, 50);
  std::vector<unsigned> consumed(7, 0);
  Cluster cluster(7, 1, 50);
  cluster.run(std::vector<Cluster::Program>(7, [&](PartyIo& io) {
    DPrbg<F>::Options opts;
    opts.batch_size = 24;
    opts.reserve = 4;
    DPrbg<F> prbg(opts, genesis[io.id()]);
    const auto result = randomized_ba(
        io, io.id() % 2, [&](PartyIo& pio) { return prbg.next_bit(pio); },
        /*max_phases=*/10);
    consumed[io.id()] = result.coins_consumed;
  }));
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(consumed[i], 10u);  // one coin per phase, fixed budget
  }
}

TEST(RandomizedBaTest, DecisionStableAcrossExtraPhases) {
  // Longer budget never changes the decision (agreement persists).
  std::vector<int> inputs = {1, 1, 1, 1, 0, 0, 0};
  auto genesis = trusted_dealer_coins<F>(7, 1, 8, 60);
  std::vector<std::optional<int>> short_run(7), long_run(7);
  for (auto* out : {&short_run, &long_run}) {
    Cluster cluster(7, 1, 60);
    const unsigned budget = (out == &short_run) ? 8u : 16u;
    cluster.run(std::vector<Cluster::Program>(7, [&](PartyIo& io) {
      DPrbg<F>::Options opts;
      opts.batch_size = 24;
      opts.reserve = 4;
      DPrbg<F> prbg(opts, genesis[io.id()]);
      (*out)[io.id()] =
          randomized_ba(io, inputs[io.id()],
                        [&](PartyIo& pio) { return prbg.next_bit(pio); },
                        budget)
              .decision;
    }));
  }
  ASSERT_TRUE(short_run[0].has_value());
  ASSERT_TRUE(long_run[0].has_value());
  EXPECT_EQ(*short_run[0], *long_run[0]);
}

}  // namespace
}  // namespace dprbg
