// Tests for the broadcast-model coin generator (Section 4's "simpler
// algorithm which assumes broadcast", n >= 3t+1).

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "coin/coin_expose.h"
#include "coin/coin_gen_bc.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

struct BcRun {
  std::vector<BcCoinGenResult<F>> results;
  std::vector<std::vector<std::optional<F>>> coins;
};

BcRun run_bc(int n, int t, std::uint64_t seed, unsigned m,
             const std::vector<int>& faulty = {},
             const Cluster::Program& adversary = nullptr) {
  auto genesis = trusted_dealer_coins<F>(n, t, 1, seed);
  BcRun run;
  run.results.resize(n);
  run.coins.assign(n, {});
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        auto result = coin_gen_broadcast<F>(io, m, genesis[io.id()][0]);
        run.results[io.id()] = result;
        if (!result.success) return;
        auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
        for (unsigned h = 0; h < m; ++h) {
          run.coins[io.id()].push_back(
              coin_expose<F>(io, sealed[h], 50 + h));
        }
      },
      faulty, adversary);
  return run;
}

TEST(CoinGenBroadcastTest, AllHonestUnanimousCoins) {
  const int n = 7, t = 2;  // n >= 3t+1 suffices in this model
  const unsigned m = 5;
  const auto run = run_bc(n, t, 1, m);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(run.results[i].success) << i;
    EXPECT_EQ(run.results[i].summed_dealers,
              run.results[0].summed_dealers);
    EXPECT_EQ(run.results[i].summed_dealers.size(),
              static_cast<std::size_t>(t + 1));
    for (unsigned h = 0; h < m; ++h) {
      ASSERT_TRUE(run.coins[i][h].has_value());
      EXPECT_EQ(*run.coins[i][h], *run.coins[0][h]);
    }
  }
}

TEST(CoinGenBroadcastTest, ToleratesCrashedDealers) {
  const int n = 7, t = 2;
  const auto run = run_bc(n, t, 2, 3, {0, 4}, nullptr);
  for (int i = 0; i < n; ++i) {
    if (i == 0 || i == 4) continue;
    ASSERT_TRUE(run.results[i].success) << i;
    // Crashed dealers are not accepted.
    for (int d : run.results[i].accepted_dealers) {
      EXPECT_NE(d, 0);
      EXPECT_NE(d, 4);
    }
    for (unsigned h = 0; h < 3; ++h) {
      EXPECT_EQ(*run.coins[i][h], *run.coins[1][h]);
    }
  }
}

TEST(CoinGenBroadcastTest, OverDegreeDealerExcluded) {
  const int n = 7, t = 2;
  auto genesis = trusted_dealer_coins<F>(n, t, 1, 3);
  const unsigned m = 2;
  std::vector<BcCoinGenResult<F>> results(n);
  Cluster cluster(n, t, 3);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = coin_gen_broadcast<F>(io, m, genesis[io.id()][0]);
      },
      {1},
      [&](PartyIo& io) {
        // Deal over-degree rows; otherwise follow the message shape.
        const auto row_tag = make_tag(ProtoId::kBitGen, 0, 0);
        std::vector<Polynomial<F>> polys;
        for (unsigned j = 0; j < m + 1; ++j) {
          polys.push_back(Polynomial<F>::random(io.t() + 2, io.rng()));
        }
        for (int i = 0; i < io.n(); ++i) {
          ByteWriter w;
          for (const auto& f : polys) write_elem(w, f(eval_point<F>(i)));
          io.send(i, row_tag, std::move(w).take());
        }
        (void)coin_expose<F>(io, genesis[io.id()][0], 0);
        io.sync();
      });
  for (int i = 0; i < n; ++i) {
    if (i == 1) continue;
    ASSERT_TRUE(results[i].success);
    for (int d : results[i].accepted_dealers) EXPECT_NE(d, 1);
  }
}

TEST(CoinGenBroadcastTest, CheaperThanFullCoinGen) {
  // The whole point of the Section 4 machinery is removing the broadcast
  // assumption; with it, generation is strictly cheaper (no grade-cast,
  // no BA -> fewer rounds and messages).
  const int n = 7, t = 1;
  const unsigned m = 16;
  auto genesis = trusted_dealer_coins<F>(n, t, 1, 4);
  Cluster cluster(n, t, 4);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    (void)coin_gen_broadcast<F>(io, m, genesis[io.id()][0]);
  }));
  EXPECT_EQ(cluster.comm().rounds, 2u);  // vs 2 + 3 + (1 + 2(t+1))/iter
}

TEST(CoinGenBroadcastTest, CoinsUnpredictableFromTShares) {
  const int n = 7, t = 2;
  const auto run = run_bc(n, t, 5, 2);
  for (unsigned h = 0; h < 2; ++h) {
    std::vector<PointValue<F>> known = {
        {eval_point<F>(0), run.results[0].coin_shares[h]},
        {eval_point<F>(1), run.results[1].coin_shares[h]},
    };
    for (std::uint64_t candidate : {7ull, 1234567ull}) {
      auto pts = known;
      pts.push_back({F::zero(), F::from_uint(candidate)});
      EXPECT_LE(lagrange_interpolate<F>(pts).degree(),
                static_cast<int>(t));
    }
  }
}

}  // namespace
}  // namespace dprbg
