// Edge cases across the stack: degenerate parameters, failed challenge
// exposure, tiny fields where soundness errors actually fire, the
// umbrella header, and the DPrbg pool refresh integration.

#include <gtest/gtest.h>

// The umbrella header must compile standalone and bring in everything
// used below.
#include "dprbg_all.h"

namespace dprbg {
namespace {

using F = GF2_64;

TEST(EdgeCaseTest, SinglePlayerClusterTrivias) {
  // n = 1, t = 0: everything degenerates gracefully.
  Cluster cluster(1, 0, 1);
  int delivered = -1;
  cluster.run({[&](PartyIo& io) {
    io.send_all(make_tag(ProtoId::kApp, 0, 0), {42});
    const Inbox& in = io.sync();
    delivered = static_cast<int>(in.with_tag(make_tag(ProtoId::kApp, 0, 0))
                                     .size());
  }});
  EXPECT_EQ(delivered, 1);  // self-delivery
}

TEST(EdgeCaseTest, CoinGenWithZeroFaultTolerance) {
  // t = 0: Coin-Gen still runs (clique = everyone, 1 summed dealer).
  const int n = 7, t = 0;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 2);
  std::vector<std::optional<F>> values(n);
  Cluster cluster(n, t, 2);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    const auto result = coin_gen<F>(io, 2, pool);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.clique.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(result.summed_dealers.size(), 1u);
    const auto sealed = result.sealed_coins(0);
    values[io.id()] = coin_expose<F>(io, sealed[0], 50);
  }));
  for (int i = 1; i < n; ++i) EXPECT_EQ(*values[i], *values[0]);
}

TEST(EdgeCaseTest, VssWithDeadChallengeCoinRejects) {
  // Nobody holds a share of the challenge coin: the exposure fails and
  // VSS must reject uniformly without deadlocking.
  const int n = 7, t = 2;
  const SealedCoin<F> dead{std::nullopt, static_cast<unsigned>(t)};
  Chacha dealer_rng(3, 777);
  const auto poly = Polynomial<F>::random(t, dealer_rng);
  std::vector<char> accepted(n, true);
  Cluster cluster(n, t, 3);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::optional<Polynomial<F>> mine;
    if (io.id() == 0) mine = poly;
    accepted[io.id()] =
        vss_share_and_verify<F>(io, 0, t, mine, dead).accepted;
  }));
  for (int i = 0; i < n; ++i) EXPECT_FALSE(accepted[i]) << i;
}

TEST(EdgeCaseTest, BatchVssWithM0IsVacuous) {
  // Zero secrets: combination is all-zero and trivially degree <= t.
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 4);
  std::vector<char> accepted(n, false);
  Cluster cluster(n, t, 4);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::span<const Polynomial<F>> none;
    accepted[io.id()] =
        batch_vss<F>(io, 0, t, 0, none, coins[io.id()][0]).accepted;
  }));
  for (int i = 0; i < n; ++i) EXPECT_TRUE(accepted[i]);
}

TEST(EdgeCaseTest, SmallFieldCoinGenEndToEnd) {
  // GF(2^8): unanimity error ~ M n / 256 is non-negligible, so pick a
  // seed where the run succeeds and assert the machinery handles the tiny
  // field (the soundness benchmark quantifies the failure rate).
  using F8 = GF2_8;
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F8>(n, t, 8, 5);
  std::vector<std::optional<F8>> values(n);
  bool success = false;
  Cluster cluster(n, t, 5);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F8> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    const auto result = coin_gen<F8>(io, 2, pool);
    if (io.id() == 0) success = result.success;
    if (!result.success) return;
    const auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
    values[io.id()] = coin_expose<F8>(io, sealed[0], 50);
  }));
  ASSERT_TRUE(success);
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(values[i].has_value());
    EXPECT_EQ(*values[i], *values[0]);
  }
  // Eval points must stay distinct: n = 7 < 2^8.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      EXPECT_NE(eval_point<F8>(i), eval_point<F8>(j));
    }
  }
}

TEST(EdgeCaseTest, DprbgPoolRefreshIntegration) {
  // Draw, refresh the pool (sharings rotate, values stay), draw more:
  // the stream is identical to a run without the refresh.
  const int n = 7, t = 2;  // refresh needs only n >= 3t+1
  auto run = [&](bool with_refresh) {
    auto genesis = trusted_dealer_coins<F>(n, t, 12, 6);
    std::vector<F> stream;
    Cluster cluster(n, t, 6);
    cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
      DPrbg<F>::Options opts;
      opts.batch_size = 8;
      opts.reserve = 3;
      DPrbg<F> prbg(opts, genesis[io.id()]);
      std::vector<F> local;
      for (int d = 0; d < 3; ++d) local.push_back(*prbg.next_coin(io));
      if (with_refresh) {
        ASSERT_TRUE(prbg.refresh_pool(io));
        EXPECT_EQ(prbg.refreshes(), 1u);
      } else {
        // Burn the same challenge coin so the pools stay aligned between
        // the two runs being compared.
        (void)prbg.next_coin(io);
      }
      for (int d = 0; d < 3; ++d) local.push_back(*prbg.next_coin(io));
      if (io.id() == 0) stream = std::move(local);
    }));
    return stream;
  };
  const auto with = run(true);
  const auto without = run(false);
  ASSERT_EQ(with.size(), 6u);
  // First three draws identical; the post-refresh draws expose coins
  // whose SHARINGS were rotated but whose values match the unrefreshed
  // pool's coins shifted by one (the refresh consumed the challenge; the
  // control run consumed the same coin by drawing it).
  for (int d = 0; d < 3; ++d) EXPECT_EQ(with[d], without[d]);
  for (int d = 3; d < 6; ++d) EXPECT_EQ(with[d], without[d]);
}

TEST(EdgeCaseTest, GradeCastWithEmptyValue) {
  const int n = 7, t = 2;
  std::vector<GradeCastResult> results(n);
  Cluster cluster(n, t, 7);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    results[io.id()] = grade_cast(io, 2, {});
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(results[i].confidence, 2);
    EXPECT_TRUE(results[i].value.empty());
  }
}

TEST(EdgeCaseTest, ExposeWithExactlyThresholdHolders) {
  // Only degree+1 holders and zero slack: decoding succeeds with zero
  // errors tolerated.
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 8);
  // Strip shares from all but 3 players (t+1 = 3 needed for degree t=2).
  for (int i = 3; i < n; ++i) coins[i][0].share.reset();
  std::vector<std::optional<F>> values(n);
  Cluster cluster(n, t, 8);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    values[io.id()] = coin_expose<F>(io, coins[io.id()][0]);
  }));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(values[i].has_value()) << i;
    EXPECT_EQ(*values[i], *values[0]);
  }
}

}  // namespace
}  // namespace dprbg
