// Epoch reconfiguration (beacon_failover.h EpochBridge +
// dprbg/proactive.h cross_roster_reshare): a sealed CoinPool migrates
// from a retiring roster to its replacement without exposing any coin.
//
// The acceptance claim: expose the coins on the OLD roster (recording
// their values), migrate the still-sealed pool across the bridge, expose
// the migrated coins on the NEW roster — the values must match exactly,
// the old roster must come out shareless, and the pool's order and
// consumed() counter must be untouched (so exposure instance ids stay
// aligned across the epoch boundary).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "beacon/beacon_failover.h"
#include "coin/coin_expose.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "net/committee.h"

namespace dprbg {
namespace {

using F = GF2_64;

constexpr int kRosterN = 7;
constexpr unsigned kT = 1;
constexpr std::uint64_t kSeed = 987654;
constexpr int kCoins = 3;  // pool coins; genesis coin 3 is the challenge

struct MigrationRun {
  std::vector<std::vector<F>> old_vals;  // per old member, pre-migration
  std::vector<std::vector<F>> new_vals;  // per new member, post-migration
  std::vector<char> migrate_ok;
  std::vector<char> old_shareless;
  std::vector<std::size_t> old_remaining;
  std::vector<std::size_t> old_consumed;
};

// The full handover, optionally with one old member crashed from the
// start (it participates in nothing — the reshare must tolerate losing
// up to n_old - (t_old + 1) dealers).
MigrationRun run_migration(int crashed_old_member = -1) {
  const int total = 2 * kRosterN;
  auto genesis =
      trusted_dealer_coins<F>(kRosterN, kT, kCoins + 1, kSeed);

  MigrationRun out;
  out.old_vals.resize(kRosterN);
  out.new_vals.resize(kRosterN);
  out.migrate_ok.assign(total, 0);
  out.old_shareless.assign(kRosterN, 0);
  out.old_remaining.assign(kRosterN, 0);
  out.old_consumed.assign(kRosterN, 0);

  Cluster cluster(total, static_cast<int>(kT), kSeed);
  std::vector<int> old_members, new_members;
  for (int i = 0; i < kRosterN; ++i) old_members.push_back(i);
  for (int i = kRosterN; i < total; ++i) new_members.push_back(i);
  EpochBridge bridge(cluster, old_members, new_members);

  cluster.run(std::vector<Cluster::Program>(total, [&](PartyIo& io) {
    const int id = io.id();
    if (id == crashed_old_member) return;
    if (id < kRosterN) {
      Endpoint& oep = bridge.old_roster().endpoint(io);
      CoinPool<F> pool;
      for (int h = 0; h < kCoins; ++h) pool.add(genesis[id][h]);
      const SealedCoin<F> challenge = genesis[id][kCoins];
      // Record the coin values on the old roster before migration.
      for (int h = 0; h < kCoins; ++h) {
        const auto v = coin_expose<F>(oep, pool.coins()[h],
                                      static_cast<unsigned>(h));
        if (v) out.old_vals[id].push_back(*v);
      }
      out.migrate_ok[id] =
          bridge.migrate_pool<F>(io, pool, challenge) ? 1 : 0;
      bool shareless = true;
      for (const auto& c : pool.coins()) {
        shareless = shareless && !c.share.has_value() && c.degree == kT;
      }
      out.old_shareless[id] = shareless ? 1 : 0;
      out.old_remaining[id] = pool.remaining();
      out.old_consumed[id] = pool.consumed();
    } else {
      // New members start with shareless views of the same pool.
      CoinPool<F> pool = EpochBridge::shareless_pool<F>(kCoins, kT);
      const SealedCoin<F> challenge{std::nullopt, kT};
      out.migrate_ok[id] =
          bridge.migrate_pool<F>(io, pool, challenge) ? 1 : 0;
      Endpoint& nep = bridge.new_roster().endpoint(io);
      for (int h = 0; h < kCoins; ++h) {
        const auto v = coin_expose<F>(nep, pool.coins()[h],
                                      static_cast<unsigned>(h));
        if (v) out.new_vals[id - kRosterN].push_back(*v);
      }
    }
  }));
  return out;
}

void expect_values_preserved(const MigrationRun& out, int crashed = -1) {
  int ref = -1;
  for (int i = 0; i < kRosterN; ++i) {
    if (i == crashed) continue;
    if (ref < 0) ref = i;
    ASSERT_EQ(out.old_vals[i].size(), static_cast<std::size_t>(kCoins))
        << "old member " << i;
    EXPECT_EQ(out.old_vals[i], out.old_vals[ref]);
  }
  ASSERT_GE(ref, 0);
  for (int j = 0; j < kRosterN; ++j) {
    ASSERT_EQ(out.new_vals[j].size(), static_cast<std::size_t>(kCoins))
        << "new member " << j;
    // The migrated sharing exposes to exactly the pre-migration values.
    EXPECT_EQ(out.new_vals[j], out.old_vals[ref]) << "new member " << j;
  }
}

TEST(EpochTest, MigrationPreservesExposedValues) {
  const MigrationRun out = run_migration();
  for (int p = 0; p < 2 * kRosterN; ++p) {
    EXPECT_TRUE(out.migrate_ok[p]) << "player " << p;
  }
  expect_values_preserved(out);
  for (int i = 0; i < kRosterN; ++i) {
    EXPECT_TRUE(out.old_shareless[i]) << "old member " << i;
    EXPECT_EQ(out.old_remaining[i], static_cast<std::size_t>(kCoins));
    EXPECT_EQ(out.old_consumed[i], 0u);  // migration never pops the pool
  }
}

TEST(EpochTest, ReshareToleratesCrashedDealer) {
  const MigrationRun out = run_migration(/*crashed_old_member=*/6);
  for (int p = 0; p < 2 * kRosterN; ++p) {
    if (p == 6) continue;
    EXPECT_TRUE(out.migrate_ok[p]) << "player " << p;
  }
  expect_values_preserved(out, /*crashed=*/6);
}

TEST(EpochTest, ScheduleArithmetic) {
  EpochSchedule never;  // batches_per_epoch = 0
  EXPECT_EQ(never.epoch_of(17), 0u);
  EXPECT_FALSE(never.rotation_due(0));
  EXPECT_FALSE(never.rotation_due(17));

  EpochSchedule every4{4};
  EXPECT_EQ(every4.epoch_of(0), 0u);
  EXPECT_EQ(every4.epoch_of(3), 0u);
  EXPECT_EQ(every4.epoch_of(4), 1u);
  EXPECT_FALSE(every4.rotation_due(0));
  EXPECT_FALSE(every4.rotation_due(3));
  EXPECT_TRUE(every4.rotation_due(4));
  EXPECT_FALSE(every4.rotation_due(5));
  EXPECT_TRUE(every4.rotation_due(8));
}

TEST(EpochTest, RosterLifecycleIsForwardOnly) {
  Cluster cluster(kRosterN, static_cast<int>(kT), kSeed);
  Committee com(cluster);
  EXPECT_EQ(com.state(), Committee::RosterState::kActive);
  com.begin_drain();
  EXPECT_EQ(com.state(), Committee::RosterState::kDraining);
  com.retire();
  EXPECT_EQ(com.state(), Committee::RosterState::kRetired);
  com.begin_drain();  // no effect after retirement
  EXPECT_EQ(com.state(), Committee::RosterState::kRetired);
  com.retire();  // idempotent
  EXPECT_EQ(com.state(), Committee::RosterState::kRetired);
}

}  // namespace
}  // namespace dprbg
