// Property suites: field-genericity of the protocol stack (typed tests
// over several GF(2^m)), parameterized sweeps over (n, t, seed) grids,
// and the D-PRBG bit-slicing cache.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/dprbg.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "vss/batch_vss.h"
#include "vss/vss.h"

namespace dprbg {
namespace {

// ---- Field-genericity: the whole stack works over any GF(2^m) ---------

template <typename F>
class FieldGenericTest : public ::testing::Test {};

using ProtocolFields = ::testing::Types<GF2_16, GF2_32, GF2<48>, GF2_64>;
TYPED_TEST_SUITE(FieldGenericTest, ProtocolFields);

TYPED_TEST(FieldGenericTest, VssRoundTrip) {
  using F = TypeParam;
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 1);
  Chacha dealer_rng(1, 777);
  const auto poly = Polynomial<F>::random(t, dealer_rng);
  std::vector<char> accepted(n, false);
  Cluster cluster(n, t, 1);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::optional<Polynomial<F>> mine;
    if (io.id() == 0) mine = poly;
    accepted[io.id()] =
        vss_share_and_verify<F>(io, 0, t, mine, coins[io.id()][0]).accepted;
  }));
  for (int i = 0; i < n; ++i) EXPECT_TRUE(accepted[i]) << i;
}

TYPED_TEST(FieldGenericTest, CoinGenAndExpose) {
  using F = TypeParam;
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 2);
  std::vector<std::optional<F>> values(n);
  Cluster cluster(n, t, 2);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    const auto result = coin_gen<F>(io, 2, pool);
    ASSERT_TRUE(result.success);
    const auto sealed = result.sealed_coins(static_cast<unsigned>(io.t()));
    values[io.id()] = coin_expose<F>(io, sealed[0], 100);
  }));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(values[i].has_value()) << i;
    EXPECT_EQ(*values[i], *values[0]);
  }
}

TYPED_TEST(FieldGenericTest, BatchVssCatchesBadPolynomial) {
  using F = TypeParam;
  const int n = 7, t = 2;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 3);
  Chacha dealer_rng(3, 777);
  std::vector<Polynomial<F>> polys;
  for (int j = 0; j < 8; ++j) {
    polys.push_back(Polynomial<F>::random(t, dealer_rng));
  }
  polys[5] = Polynomial<F>::random(t + 2, dealer_rng);
  std::vector<char> accepted(n, true);
  Cluster cluster(n, t, 3);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::span<const Polynomial<F>> mine;
    if (io.id() == 0) mine = polys;
    accepted[io.id()] =
        batch_vss<F>(io, 0, t, 8, mine, coins[io.id()][0]).accepted;
  }));
  // With k = 16 the false-accept probability is 8/65536 — allow it to be
  // observed never across this single deterministic run.
  for (int i = 0; i < n; ++i) EXPECT_FALSE(accepted[i]) << i;
}

// ---- Parameterized sweep: Coin-Gen across (n, faults, seed) ------------

class CoinGenSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CoinGenSweep, UnanimousCoinsUnderCrashFaults) {
  using F = GF2_64;
  const auto [t, crash_param, seed] = GetParam();
  const int n = 6 * t + 1;
  const int crash_count = std::min(crash_param, t);  // stay within model
  std::vector<int> faulty;
  for (int i = 0; i < crash_count; ++i) faulty.push_back((i * 5) % n);
  const std::set<int> faulty_set(faulty.begin(), faulty.end());

  auto genesis = trusted_dealer_coins<F>(n, t, 8, 7000 + seed);
  std::vector<CoinGenResult<F>> results(n);
  std::vector<std::optional<F>> values(n);
  Cluster cluster(n, t, 7000 + seed);
  cluster.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        results[io.id()] = coin_gen<F>(io, 2, pool);
        if (!results[io.id()].success) return;
        const auto sealed =
            results[io.id()].sealed_coins(static_cast<unsigned>(io.t()));
        values[io.id()] = coin_expose<F>(io, sealed[1], 100);
      },
      faulty, nullptr);

  int ref = -1;
  for (int i = 0; i < n; ++i) {
    if (faulty_set.count(i)) continue;
    ASSERT_TRUE(results[i].success) << "player " << i;
    EXPECT_GE(results[i].clique.size(),
              static_cast<std::size_t>(n - 2 * t));
    ASSERT_TRUE(values[i].has_value()) << "player " << i;
    if (ref < 0) ref = i;
    EXPECT_EQ(results[i].clique, results[ref].clique);
    EXPECT_EQ(*values[i], *values[ref]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoinGenSweep,
    ::testing::Combine(::testing::Values(1, 2),   // t (n = 6t+1)
                       ::testing::Values(0, 1, 2),  // crashed players <= t?
                       ::testing::Values(0, 1, 2)),  // seeds
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_crash" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

class VssSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(VssSweep, HonestAcceptCheaterReject) {
  using F = GF2_64;
  const auto [t, seed] = GetParam();
  const int n = 3 * t + 1;
  for (const bool cheat : {false, true}) {
    auto coins = trusted_dealer_coins<F>(n, t, 1, 8000 + seed + cheat);
    Chacha dealer_rng(8000 + seed + cheat, 777);
    const auto poly =
        Polynomial<F>::random(cheat ? t + 1 + seed % 3 : t, dealer_rng);
    std::vector<char> accepted(n, false);
    Cluster cluster(n, t, 8000 + seed + cheat);
    cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
      std::optional<Polynomial<F>> mine;
      if (io.id() == 0) mine = poly;
      accepted[io.id()] =
          vss_share_and_verify<F>(io, 0, t, mine, coins[io.id()][0])
              .accepted;
    }));
    for (int i = 0; i < n; ++i) {
      if (cheat && poly.degree() > static_cast<int>(t)) {
        EXPECT_FALSE(accepted[i]) << "t=" << t << " i=" << i;
      } else if (!cheat) {
        EXPECT_TRUE(accepted[i]) << "t=" << t << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, VssSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(0, 1, 2)),
                         [](const ::testing::TestParamInfo<
                             std::tuple<int, int>>& info) {
                           return "t" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_seed" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---- D-PRBG bit cache ---------------------------------------------------

TEST(BitCacheTest, SlicesKBitsPerCoin) {
  using F = GF2_64;
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 9000);
  std::uint64_t coins_for_64_bits = 0, coins_for_64_fresh = 0;
  Cluster cluster(n, t, 9000);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F>::Options opts;
    opts.batch_size = 16;
    opts.reserve = 4;
    {
      DPrbg<F> prbg(opts, genesis[io.id()]);
      for (int b = 0; b < 64; ++b) {
        ASSERT_TRUE(prbg.next_bit_cached(io).has_value());
      }
      if (io.id() == 0) coins_for_64_bits = prbg.coins_drawn();
    }
  }));
  // 64 sliced bits = exactly 1 k-ary coin (k = 64); fresh bits would cost
  // 64 coins.
  EXPECT_EQ(coins_for_64_bits, 1u);
  (void)coins_for_64_fresh;
}

TEST(BitCacheTest, CachedBitsMatchCoinBits) {
  using F = GF2_64;
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 9001);
  std::vector<int> bits;
  F coin_value = F::zero();
  Cluster cluster(n, t, 9001);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F>::Options opts;
    opts.batch_size = 16;
    opts.reserve = 4;
    DPrbg<F> prbg(opts, genesis[io.id()]);
    std::vector<int> local;
    for (int b = 0; b < 64; ++b) local.push_back(*prbg.next_bit_cached(io));
    if (io.id() == 0) bits = local;
  }));
  // Replay the same seed drawing the k-ary coin directly.
  auto genesis2 = trusted_dealer_coins<F>(n, t, 8, 9001);
  Cluster cluster2(n, t, 9001);
  cluster2.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F>::Options opts;
    opts.batch_size = 16;
    opts.reserve = 4;
    DPrbg<F> prbg(opts, genesis2[io.id()]);
    if (io.id() == 0) {
      coin_value = *prbg.next_coin(io);
    } else {
      (void)prbg.next_coin(io);
    }
  }));
  for (int b = 0; b < 64; ++b) {
    EXPECT_EQ(bits[b], static_cast<int>((coin_value.to_uint() >> b) & 1u));
  }
}

TEST(BitCacheTest, CachedBitsBalanced) {
  using F = GF2_64;
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 9002);
  int ones = 0;
  const int kBits = 64 * 8;
  Cluster cluster(n, t, 9002);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F>::Options opts;
    opts.batch_size = 16;
    opts.reserve = 4;
    DPrbg<F> prbg(opts, genesis[io.id()]);
    int local = 0;
    for (int b = 0; b < kBits; ++b) local += *prbg.next_bit_cached(io);
    if (io.id() == 0) ones = local;
  }));
  EXPECT_NEAR(double(ones) / kBits, 0.5, 0.07);
}

}  // namespace
}  // namespace dprbg
