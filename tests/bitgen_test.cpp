// Tests for Bit-Gen (Fig. 4): local acceptance of honest dealers,
// rejection of cheating dealers (Lemma 5), the batched all-dealers
// variant, cost accounting (Lemma 6).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "coin/bitgen.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

std::vector<Polynomial<F>> make_polys(unsigned m, unsigned deg,
                                      std::uint64_t seed) {
  Chacha rng(seed, 777);
  std::vector<Polynomial<F>> polys;
  for (unsigned j = 0; j < m; ++j) {
    polys.push_back(Polynomial<F>::random(deg, rng));
  }
  return polys;
}

TEST(BitGenTest, HonestDealerAcceptedByAll) {
  const int n = 7, t = 1;  // n >= 6t + 1
  const unsigned m = 8;
  const auto polys = make_polys(m, t, 1);
  auto coins = trusted_dealer_coins<F>(n, t, 1, 1);
  std::vector<BitGenView<F>> views(n);
  Cluster cluster(n, t, 1);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::span<const Polynomial<F>> mine;
    if (io.id() == 0) mine = polys;
    views[io.id()] =
        bit_gen_single<F>(io, 0, m, t, mine, coins[io.id()][0]);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(views[i].accepted()) << "player " << i;
    ASSERT_EQ(views[i].my_row.size(), m);
    for (unsigned j = 0; j < m; ++j) {
      EXPECT_EQ(views[i].my_row[j], polys[j](eval_point<F>(i)));
    }
  }
}

TEST(BitGenTest, DecodedPolynomialIsChallengeCombination) {
  // F(x) must equal sum_j r^j f_j(x).
  const int n = 7, t = 1;
  const unsigned m = 4;
  const auto polys = make_polys(m, t, 2);
  auto coins = trusted_dealer_coins<F>(n, t, 1, 2);
  std::vector<BitGenView<F>> views(n);
  std::vector<F> challenges(n);
  Cluster cluster(n, t, 2);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::span<const Polynomial<F>> mine;
    if (io.id() == 0) mine = polys;
    views[io.id()] =
        bit_gen_single<F>(io, 0, m, t, mine, coins[io.id()][0]);
  }));
  // Reconstruct the challenge from player 0's view: decode F and compare
  // against the combination of the true polynomials at a few points.
  ASSERT_TRUE(views[0].accepted());
  // Recover r by exposing the same coin offline.
  std::vector<PointValue<F>> pts;
  auto seed_coins = trusted_dealer_coins<F>(n, t, 1, 2);
  for (int i = 0; i < n; ++i) {
    pts.push_back({eval_point<F>(i), *seed_coins[i][0].share});
  }
  const F r = *reconstruct_secret<F>(pts, t, 0);
  Polynomial<F> expected;
  F rp = F::one();
  for (unsigned j = 0; j < m; ++j) {
    rp = rp * r;
    expected = expected + rp * polys[j];
  }
  EXPECT_EQ(*views[0].poly, expected);
}

TEST(BitGenTest, OverDegreeDealerRejected) {
  // Lemma 5: a sharing with some deg(f_j) > t is accepted with
  // probability <= M/p; over GF(2^64) that is never in practice.
  const int n = 7, t = 1;
  const unsigned m = 8;
  for (unsigned bad : {0u, 3u, 7u}) {
    auto polys = make_polys(m, t, 10 + bad);
    Chacha rng(99, bad);
    polys[bad] = Polynomial<F>::random(t + 2, rng);
    auto coins = trusted_dealer_coins<F>(n, t, 1, 10 + bad);
    std::vector<BitGenView<F>> views(n);
    Cluster cluster(n, t, 10 + bad);
    cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
      std::span<const Polynomial<F>> mine;
      if (io.id() == 0) mine = polys;
      views[io.id()] =
          bit_gen_single<F>(io, 0, m, t, mine, coins[io.id()][0]);
    }));
    for (int i = 0; i < n; ++i) {
      EXPECT_FALSE(views[i].accepted()) << "bad=" << bad << " player " << i;
    }
  }
}

TEST(BitGenTest, SilentDealerRejected) {
  const int n = 7, t = 1;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 20);
  std::vector<BitGenView<F>> views(n);
  Cluster cluster(n, t, 20);
  cluster.run(
      [&](PartyIo& io) {
        views[io.id()] =
            bit_gen_single<F>(io, 0, 4, t, {}, coins[io.id()][0]);
      },
      {0}, nullptr);
  for (int i = 1; i < n; ++i) {
    EXPECT_FALSE(views[i].accepted());
    EXPECT_TRUE(views[i].my_row.empty());
  }
}

TEST(BitGenTest, ByzantineCombinersDoNotSpoilHonestDealer) {
  const int n = 13, t = 2;
  const unsigned m = 4;
  const auto polys = make_polys(m, t, 30);
  auto coins = trusted_dealer_coins<F>(n, t, 1, 30);
  std::vector<BitGenView<F>> views(n);
  Cluster cluster(n, t, 30);
  cluster.run(
      [&](PartyIo& io) {
        std::span<const Polynomial<F>> mine;
        if (io.id() == 0) mine = polys;
        views[io.id()] =
            bit_gen_single<F>(io, 0, m, t, mine, coins[io.id()][0]);
      },
      {5, 9},
      [&](PartyIo& io) {
        // Expose the coin honestly, then send wrong combination shares.
        (void)coin_expose<F>(io, coins[io.id()][0]);
        ByteWriter w;
        write_elem(w, random_element<F>(io.rng()));
        io.send_all(make_tag(ProtoId::kBitGen, 0, 1), w.data());
        io.sync();
      });
  for (int i = 0; i < n; ++i) {
    if (i == 5 || i == 9) continue;
    EXPECT_TRUE(views[i].accepted()) << "player " << i;
  }
}

TEST(BitGenTest, AllDealersParallelAllAccepted) {
  const int n = 7, t = 1;
  const unsigned m_total = 5;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 40);
  std::vector<BitGenAllOutcome<F>> outcomes(n);
  Cluster cluster(n, t, 40);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::vector<Polynomial<F>> mine;
    for (unsigned j = 0; j < m_total; ++j) {
      mine.push_back(Polynomial<F>::random(t, io.rng()));
    }
    outcomes[io.id()] =
        bit_gen_all<F>(io, mine, m_total, t, coins[io.id()][0]);
  }));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(outcomes[i].challenge.has_value());
    EXPECT_EQ(*outcomes[i].challenge, *outcomes[0].challenge);
    for (int dealer = 0; dealer < n; ++dealer) {
      EXPECT_TRUE(outcomes[i].views[dealer].accepted())
          << "player " << i << " dealer " << dealer;
      EXPECT_EQ(outcomes[i].views[dealer].my_row.size(), m_total);
    }
  }
}

TEST(BitGenTest, AllDealersSameDecodedPolynomials) {
  // Every honest player decodes the same F_j for every honest dealer j.
  const int n = 7, t = 1;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 41);
  std::vector<BitGenAllOutcome<F>> outcomes(n);
  Cluster cluster(n, t, 41);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::vector<Polynomial<F>> mine;
    for (unsigned j = 0; j < 3; ++j) {
      mine.push_back(Polynomial<F>::random(t, io.rng()));
    }
    outcomes[io.id()] = bit_gen_all<F>(io, mine, 3, t, coins[io.id()][0]);
  }));
  for (int dealer = 0; dealer < n; ++dealer) {
    for (int i = 1; i < n; ++i) {
      EXPECT_EQ(*outcomes[i].views[dealer].poly,
                *outcomes[0].views[dealer].poly)
          << "dealer " << dealer << " player " << i;
    }
  }
}

TEST(BitGenTest, InterpolationCountMatchesLemma6) {
  // Lemma 6: 2 polynomial interpolations per player for the whole batch
  // (one for the coin, one for the combination decode), regardless of M.
  const int n = 7, t = 1;
  const unsigned m = 64;
  const auto polys = make_polys(m, t, 50);
  auto coins = trusted_dealer_coins<F>(n, t, 1, 50);
  Cluster cluster(n, t, 50);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::span<const Polynomial<F>> mine;
    if (io.id() == 0) mine = polys;
    (void)bit_gen_single<F>(io, 0, m, t, mine, coins[io.id()][0]);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_LE(cluster.per_player_field_ops()[i].interpolations, 2u)
        << "player " << i;
  }
}

TEST(BitGenTest, MessageVolumeMatchesTheorem2Shape) {
  // bit_gen_all: n row-messages of size ~M*k per dealer + n^2 coin shares
  // of size k + n^2 batched combos of size ~n*k.
  const int n = 7, t = 1;
  const unsigned m_total = 16;
  auto coins = trusted_dealer_coins<F>(n, t, 1, 51);
  Cluster cluster(n, t, 51);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::vector<Polynomial<F>> mine;
    for (unsigned j = 0; j < m_total; ++j) {
      mine.push_back(Polynomial<F>::random(t, io.rng()));
    }
    (void)bit_gen_all<F>(io, mine, m_total, t, coins[io.id()][0]);
  }));
  // 3 message groups of <= n^2 each (rows, coin shares, combos).
  EXPECT_LE(cluster.comm().messages, static_cast<std::uint64_t>(3 * n * n));
  EXPECT_EQ(cluster.comm().rounds, 2u);
}

}  // namespace
}  // namespace dprbg
