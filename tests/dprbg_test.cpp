// Tests for the bootstrapped D-PRBG (Fig. 1): expansion, self-refill,
// unanimity of the produced stream, fault tolerance, seed accounting.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "dprbg/dprbg.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

using Stream = std::vector<std::optional<F>>;

struct PrbgRun {
  std::vector<Stream> streams;  // [player][draw]
  std::vector<std::uint64_t> refills;
  std::vector<std::uint64_t> seed_spent;
};

PrbgRun run_prbg(int n, int t, std::uint64_t seed, int draws,
                 DPrbg<F>::Options opts, int genesis_coins,
                 const std::vector<int>& faulty = {},
                 const Cluster::Program& adversary = nullptr) {
  auto genesis = trusted_dealer_coins<F>(n, t, genesis_coins, seed);
  PrbgRun run;
  run.streams.assign(n, {});
  run.refills.assign(n, 0);
  run.seed_spent.assign(n, 0);
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        DPrbg<F> prbg(opts, genesis[io.id()]);
        for (int d = 0; d < draws; ++d) {
          run.streams[io.id()].push_back(prbg.next_coin(io));
        }
        run.refills[io.id()] = prbg.refills();
        run.seed_spent[io.id()] = prbg.seed_coins_spent_refilling();
      },
      faulty, adversary);
  return run;
}

TEST(DprbgTest, StreamIsUnanimous) {
  const int n = 7, t = 1, draws = 30;
  DPrbg<F>::Options opts;
  opts.batch_size = 16;
  opts.reserve = 4;
  const auto run = run_prbg(n, t, 1, draws, opts, /*genesis=*/8);
  for (int d = 0; d < draws; ++d) {
    ASSERT_TRUE(run.streams[0][d].has_value()) << "draw " << d;
    for (int i = 1; i < n; ++i) {
      ASSERT_TRUE(run.streams[i][d].has_value());
      EXPECT_EQ(*run.streams[i][d], *run.streams[0][d])
          << "player " << i << " draw " << d;
    }
  }
}

TEST(DprbgTest, ExpandsBeyondGenesisSupply) {
  // 8 genesis coins, 30 draws: impossible without the D-PRBG stretching
  // the seed — the defining property of the generator.
  const int n = 7, t = 1, draws = 30;
  DPrbg<F>::Options opts;
  opts.batch_size = 16;
  opts.reserve = 4;
  const auto run = run_prbg(n, t, 2, draws, opts, 8);
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(run.refills[i], 1u) << "player " << i;
  }
  for (int d = 0; d < draws; ++d) {
    EXPECT_TRUE(run.streams[0][d].has_value());
  }
}

TEST(DprbgTest, SelfSufficientOverManyRefills) {
  // Long stream forcing several bootstrap cycles: the seed regenerates
  // itself every time (Section 1.2: "our method is self-sufficient once
  // it gets kicked off").
  const int n = 7, t = 1, draws = 120;
  DPrbg<F>::Options opts;
  opts.batch_size = 12;
  opts.reserve = 4;
  const auto run = run_prbg(n, t, 3, draws, opts, 8);
  EXPECT_GE(run.refills[0], 10u);
  for (int d = 0; d < draws; ++d) {
    ASSERT_TRUE(run.streams[0][d].has_value()) << "draw " << d;
  }
}

TEST(DprbgTest, SeedConsumptionIsConstantPerRefill) {
  // Each refill costs 1 challenge + iterations leader coins; with honest
  // players, exactly 2. The *amortized* seed cost per coin is 2/M.
  const int n = 7, t = 1, draws = 60;
  DPrbg<F>::Options opts;
  opts.batch_size = 20;
  opts.reserve = 4;
  const auto run = run_prbg(n, t, 4, draws, opts, 8);
  EXPECT_EQ(run.seed_spent[0], 2 * run.refills[0]);
}

TEST(DprbgTest, BitsAreBalanced) {
  const int n = 7, t = 1, draws = 200;
  DPrbg<F>::Options opts;
  opts.batch_size = 32;
  opts.reserve = 4;
  const auto run = run_prbg(n, t, 5, draws, opts, 8);
  int ones = 0;
  for (int d = 0; d < draws; ++d) {
    ones += coin_to_bit(*run.streams[0][d]);
  }
  EXPECT_NEAR(double(ones) / draws, 0.5, 0.1);
}

TEST(DprbgTest, KaryCoinsAreDistinct) {
  const int n = 7, t = 1, draws = 50;
  DPrbg<F>::Options opts;
  opts.batch_size = 16;
  opts.reserve = 4;
  const auto run = run_prbg(n, t, 6, draws, opts, 8);
  std::set<std::uint64_t> seen;
  for (int d = 0; d < draws; ++d) {
    seen.insert(run.streams[0][d]->to_uint());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(draws));
}

TEST(DprbgTest, SurvivesCrashFaults) {
  const int n = 13, t = 2, draws = 25;
  DPrbg<F>::Options opts;
  opts.batch_size = 12;
  opts.reserve = 4;
  const auto run = run_prbg(n, t, 7, draws, opts, 8, {3, 9}, nullptr);
  for (int d = 0; d < draws; ++d) {
    std::optional<F> ref;
    for (int i = 0; i < n; ++i) {
      if (i == 3 || i == 9) continue;
      ASSERT_TRUE(run.streams[i][d].has_value())
          << "player " << i << " draw " << d;
      if (!ref) ref = *run.streams[i][d];
      EXPECT_EQ(*run.streams[i][d], *ref);
    }
  }
}

TEST(DprbgTest, DifferentSeedsDifferentStreams) {
  DPrbg<F>::Options opts;
  opts.batch_size = 8;
  opts.reserve = 3;
  const auto a = run_prbg(7, 1, 100, 10, opts, 8);
  const auto b = run_prbg(7, 1, 101, 10, opts, 8);
  int equal = 0;
  for (int d = 0; d < 10; ++d) {
    if (*a.streams[0][d] == *b.streams[0][d]) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(DprbgTest, ReplayIsDeterministic) {
  DPrbg<F>::Options opts;
  opts.batch_size = 8;
  opts.reserve = 3;
  const auto a = run_prbg(7, 1, 50, 12, opts, 8);
  const auto b = run_prbg(7, 1, 50, 12, opts, 8);
  for (int d = 0; d < 12; ++d) {
    EXPECT_EQ(*a.streams[0][d], *b.streams[0][d]);
  }
}

TEST(DprbgTest, PipelinedRefillStreamIsUnanimous) {
  // pipeline_depth = 2 routes refills through pipelined_coin_gen
  // (coin/coin_pipeline.h): each pass overlaps two batches on distinct
  // round streams. The drawn stream must stay unanimous and the
  // generator must still out-produce its genesis supply.
  const int n = 7, t = 1, draws = 40;
  DPrbg<F>::Options opts;
  opts.batch_size = 8;
  opts.reserve = 4;
  opts.pipeline_depth = 2;
  const auto run = run_prbg(n, t, 7, draws, opts, /*genesis=*/16);
  for (int d = 0; d < draws; ++d) {
    ASSERT_TRUE(run.streams[0][d].has_value()) << "draw " << d;
    for (int i = 1; i < n; ++i) {
      ASSERT_TRUE(run.streams[i][d].has_value());
      EXPECT_EQ(*run.streams[i][d], *run.streams[0][d])
          << "player " << i << " draw " << d;
    }
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(run.refills[i], 2u) << "player " << i;  // 2 batches/pass
    EXPECT_EQ(run.refills[i], run.refills[0]);
    EXPECT_EQ(run.seed_spent[i], run.seed_spent[0]);
  }
}

TEST(DprbgTest, PipelinedReplayIsDeterministic) {
  DPrbg<F>::Options opts;
  opts.batch_size = 8;
  opts.reserve = 3;
  opts.pipeline_depth = 2;
  const auto a = run_prbg(7, 1, 50, 20, opts, 16);
  const auto b = run_prbg(7, 1, 50, 20, opts, 16);
  for (int d = 0; d < 20; ++d) {
    ASSERT_TRUE(a.streams[0][d].has_value());
    EXPECT_EQ(*a.streams[0][d], *b.streams[0][d]);
  }
}

}  // namespace
}  // namespace dprbg
