// Tests for the protocol tracing layer (common/trace.h):
//   * enable/disable contract — a disabled tracer records nothing and an
//     enabled tracer does not perturb the execution (same comm bytes,
//     same field ops, same protocol outputs as an untraced run);
//   * TraceSpan delta capture;
//   * JSONL serialization round-trips;
//   * net-layer events: round/send events reconcile with Cluster::comm(),
//     and fault events sum exactly to Cluster::faults() (the chaos
//     acceptance criterion).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <vector>

#include "common/trace.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "net/fault.h"

namespace dprbg {
namespace {

using F = GF2_64;

// Every test leaves the global tracer off and empty.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().set_enabled(false);
    tracer().clear();
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().clear();
  }
};

struct CoinGenRun {
  CommCounters comm;
  FieldCounters ops;
  bool success = false;
  std::vector<int> clique;
  std::vector<std::optional<F>> coins;
};

CoinGenRun run_coin_gen(std::uint64_t seed, unsigned m = 2) {
  const int n = 7;
  const unsigned t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, seed);
  Cluster cluster(n, static_cast<int>(t), seed);
  CoinGenRun out;
  out.coins.assign(m, std::nullopt);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    const auto result = coin_gen<F>(io, m, pool);
    const auto sealed = result.sealed_coins(t);
    std::vector<std::optional<F>> coins(m);
    for (unsigned h = 0; h < m && result.success; ++h) {
      const SealedCoin<F> coin =
          h < sealed.size() ? sealed[h] : SealedCoin<F>{std::nullopt, t};
      coins[h] = coin_expose<F>(io, coin, /*instance=*/100 + h);
    }
    if (io.id() == 0) {
      out.success = result.success;
      out.clique = result.clique;
      out.coins = std::move(coins);
    }
  }));
  out.comm = cluster.comm();
  out.ops = cluster.field_ops();
  return out;
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(tracer().enabled());
  (void)run_coin_gen(/*seed=*/7);
  EXPECT_EQ(tracer().size(), 0u);
}

// Acceptance criterion: tracing compiled in but off leaves the execution
// identical — and flipping it on must not change what the protocol does,
// only observe it.
TEST_F(TraceTest, TracingDoesNotPerturbTheExecution) {
  const CoinGenRun off = run_coin_gen(/*seed=*/11);
  ASSERT_TRUE(off.success);
  ASSERT_EQ(tracer().size(), 0u);

  tracer().set_enabled(true);
  const CoinGenRun on = run_coin_gen(/*seed=*/11);
  tracer().set_enabled(false);
  EXPECT_GT(tracer().size(), 0u);

  EXPECT_EQ(on.success, off.success);
  EXPECT_EQ(on.clique, off.clique);
  for (std::size_t h = 0; h < off.coins.size(); ++h) {
    ASSERT_TRUE(on.coins[h].has_value());
    ASSERT_TRUE(off.coins[h].has_value());
    EXPECT_EQ(*on.coins[h], *off.coins[h]);
  }
  // Identical transcript: same messages, bytes, rounds, and field ops.
  EXPECT_EQ(on.comm.messages, off.comm.messages);
  EXPECT_EQ(on.comm.bytes, off.comm.bytes);
  EXPECT_EQ(on.comm.rounds, off.comm.rounds);
  EXPECT_EQ(on.ops.adds, off.ops.adds);
  EXPECT_EQ(on.ops.muls, off.ops.muls);
  EXPECT_EQ(on.ops.invs, off.ops.invs);
  EXPECT_EQ(on.ops.interpolations, off.ops.interpolations);
}

struct FakeIo {
  int id_value = 3;
  std::uint64_t rounds_value = 10;
  CommCounters sent_value{};
  [[nodiscard]] int id() const { return id_value; }
  [[nodiscard]] std::uint64_t rounds() const { return rounds_value; }
  [[nodiscard]] const CommCounters& sent() const { return sent_value; }
};

TEST_F(TraceTest, SpanCapturesRoundAndCounterDeltas) {
  tracer().set_enabled(true);
  FakeIo io;
  {
    TraceSpan span(io, "test-proto", "test-phase", "note=1");
    count_add();
    count_add();
    count_interpolation();
    io.rounds_value = 13;
    io.sent_value.messages = 6;
    io.sent_value.bytes = 120;
  }
  tracer().set_enabled(false);
  const auto events = tracer().events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& ev = events[0];
  EXPECT_EQ(ev.kind, TraceEventKind::kSpan);
  EXPECT_EQ(ev.protocol, "test-proto");
  EXPECT_EQ(ev.phase, "test-phase");
  EXPECT_EQ(ev.player, 3);
  EXPECT_EQ(ev.round_begin, 10u);
  EXPECT_EQ(ev.round_end, 13u);
  EXPECT_EQ(ev.rounds(), 3u);
  EXPECT_EQ(ev.ops.adds, 2u);
  EXPECT_EQ(ev.ops.interpolations, 1u);
  EXPECT_EQ(ev.comm.messages, 6u);
  EXPECT_EQ(ev.comm.bytes, 120u);
  EXPECT_EQ(ev.detail, "note=1");
}

TEST_F(TraceTest, SpanOpenedWhileDisabledRecordsNothing) {
  FakeIo io;
  {
    TraceSpan span(io, "p", "q");
    tracer().set_enabled(true);  // enabling mid-span must not record it
  }
  EXPECT_EQ(tracer().size(), 0u);
}

TEST_F(TraceTest, JsonlRoundTripsAllFields) {
  TraceEvent ev;
  ev.seq = 99;
  ev.kind = TraceEventKind::kSpan;
  ev.protocol = "coin-gen";
  ev.phase = "gradecast";
  ev.player = 5;
  ev.round_begin = 7;
  ev.round_end = 10;
  ev.ops = {1, 2, 3, 4};
  ev.comm = {5, 600, 3};
  ev.faults = {1, 0, 2, 0};
  ev.detail = "quote=\" slash=\\ nl=\n tab=\t";

  TraceEvent back;
  ASSERT_TRUE(from_jsonl(to_jsonl(ev), back));
  EXPECT_EQ(back.seq, ev.seq);
  EXPECT_EQ(back.kind, ev.kind);
  EXPECT_EQ(back.protocol, ev.protocol);
  EXPECT_EQ(back.phase, ev.phase);
  EXPECT_EQ(back.player, ev.player);
  EXPECT_EQ(back.round_begin, ev.round_begin);
  EXPECT_EQ(back.round_end, ev.round_end);
  EXPECT_EQ(back.ops.adds, ev.ops.adds);
  EXPECT_EQ(back.ops.muls, ev.ops.muls);
  EXPECT_EQ(back.ops.invs, ev.ops.invs);
  EXPECT_EQ(back.ops.interpolations, ev.ops.interpolations);
  EXPECT_EQ(back.comm.messages, ev.comm.messages);
  EXPECT_EQ(back.comm.bytes, ev.comm.bytes);
  EXPECT_EQ(back.faults.dropped, ev.faults.dropped);
  EXPECT_EQ(back.faults.duplicated, ev.faults.duplicated);
  EXPECT_EQ(back.detail, ev.detail);
}

TEST_F(TraceTest, ReadJsonlSkipsMalformedLines) {
  TraceEvent ev;
  ev.protocol = "x";
  ev.phase = "y";
  std::stringstream ss;
  ss << to_jsonl(ev) << "\n"
     << "not json at all\n"
     << "\n"
     << to_jsonl(ev) << "\n";
  std::size_t malformed = 0;
  const auto events = read_jsonl(ss, &malformed);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(malformed, 1u);
}

TEST_F(TraceTest, AggregatePhasesSumsOpsAndTakesLockstepRounds) {
  std::vector<TraceEvent> events;
  auto span = [](int player, std::uint64_t r0, std::uint64_t r1,
                 std::uint64_t adds) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kSpan;
    ev.protocol = "p";
    ev.phase = "f";
    ev.player = player;
    ev.round_begin = r0;
    ev.round_end = r1;
    ev.ops.adds = adds;
    return ev;
  };
  events.push_back(span(0, 0, 2, 10));  // player 0: 2 rounds
  events.push_back(span(1, 0, 2, 20));  // player 1: 2 rounds
  events.push_back(span(0, 5, 6, 5));   // player 0 again: +1 round
  const auto phases = aggregate_phases(events);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].spans, 3u);
  EXPECT_EQ(phases[0].players, 2u);
  EXPECT_EQ(phases[0].rounds, 3u);  // max over players: 0 has 2+1
  EXPECT_EQ(phases[0].ops.adds, 35u);
}

// ---------------------------------------------------------------------
// Net-layer event reconciliation.
// ---------------------------------------------------------------------

TEST_F(TraceTest, RoundAndSendEventsReconcileWithClusterComm) {
  const int n = 5;
  Cluster cluster(n, 1, /*seed=*/3);
  tracer().set_enabled(true);
  cluster.run(std::vector<Cluster::Program>(n, [](PartyIo& io) {
    for (int r = 0; r < 3; ++r) {
      io.send_all(make_tag(ProtoId::kApp, 0, r), {1, 2, 3});
      io.sync();
    }
  }));
  tracer().set_enabled(false);

  CommCounters from_round_events;
  CommCounters from_send_events;
  std::uint64_t round_events = 0;
  for (const auto& ev : tracer().events()) {
    if (ev.protocol != "net") continue;
    if (ev.phase == "round") {
      ++round_events;
      from_round_events += ev.comm;
    } else if (ev.phase == "send") {
      from_send_events += ev.comm;
    }
  }
  EXPECT_EQ(round_events, cluster.comm().rounds);
  EXPECT_EQ(from_round_events.messages, cluster.comm().messages);
  EXPECT_EQ(from_round_events.bytes, cluster.comm().bytes);
  EXPECT_EQ(from_send_events.messages, cluster.comm().messages);
  EXPECT_EQ(from_send_events.bytes, cluster.comm().bytes);
}

// Acceptance criterion: a chaos run's fault events sum to exactly
// Cluster::faults().
TEST_F(TraceTest, FaultEventsMatchClusterFaultTotalsExactly) {
  const int n = 7;
  const unsigned t = 1;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    tracer().clear();
    FaultPlanParams params;
    params.n = n;
    params.t = t;
    params.rounds = 24;
    params.fault_rate = 0.25;
    FaultPlan plan = random_fault_plan(params, seed);
    Cluster cluster(n, static_cast<int>(t), seed);
    cluster.set_fault_injector(
        std::make_shared<FaultInjector>(std::move(plan)));

    auto genesis = trusted_dealer_coins<F>(n, t, 8, seed);
    tracer().set_enabled(true);
    cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
      CoinPool<F> pool;
      for (auto& c : genesis[io.id()]) pool.add(std::move(c));
      (void)coin_gen<F>(io, /*m=*/2, pool);
    }));
    tracer().set_enabled(false);

    const FaultCounters traced = sum_fault_events(tracer().events());
    const FaultCounters& actual = cluster.faults();
    EXPECT_EQ(traced.dropped, actual.dropped);
    EXPECT_EQ(traced.delayed, actual.delayed);
    EXPECT_EQ(traced.duplicated, actual.duplicated);
    EXPECT_EQ(traced.corrupted, actual.corrupted);
    EXPECT_GT(actual.total(), 0u) << "plan injected nothing; weak test";
  }
}

}  // namespace
}  // namespace dprbg
