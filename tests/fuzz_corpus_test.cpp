// Replays the checked-in fuzz seed corpora (fuzz/corpus/) through the
// fuzz entry points in the plain (non-instrumented) build, so every
// tier-1 run exercises the exact adversarial inputs the fuzz targets
// gate on — a corpus regression (or an invariant the corpora violate)
// fails here, not only in the sanitizer smoke gate. Each file is also
// cross-fed through every other target: the decoders must tolerate any
// byte string, not just inputs shaped for them.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "fuzz/fuzz_targets.h"

#ifndef DPRBG_CORPUS_DIR
#error "DPRBG_CORPUS_DIR must point at the checked-in fuzz corpus root"
#endif

namespace dprbg {
namespace {

namespace fs = std::filesystem;

using FuzzEntry = int (*)(const std::uint8_t*, std::size_t);

const std::map<std::string, FuzzEntry>& targets() {
  static const std::map<std::string, FuzzEntry> kTargets{
      {"varint", &fuzz::varint_one},
      {"envelope_header", &fuzz::envelope_header_one},
      {"protocol_decoders", &fuzz::protocol_decoders_one},
  };
  return kTargets;
}

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

std::vector<fs::path> corpus_files(const std::string& target) {
  const fs::path dir = fs::path(DPRBG_CORPUS_DIR) / target;
  std::vector<fs::path> files;
  if (fs::exists(dir)) {
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (e.is_regular_file()) files.push_back(e.path());
    }
  }
  return files;
}

TEST(FuzzCorpusTest, CorporaAreCheckedInAndNonTrivial) {
  // A missing or near-empty corpus means the smoke gate fuzzes from
  // nothing — fail loudly instead of silently degrading coverage.
  for (const auto& [name, entry] : targets()) {
    (void)entry;
    EXPECT_GE(corpus_files(name).size(), 8u) << "corpus " << name;
  }
}

TEST(FuzzCorpusTest, EveryTargetReplaysItsOwnCorpus) {
  for (const auto& [name, entry] : targets()) {
    for (const fs::path& p : corpus_files(name)) {
      const auto bytes = read_file(p);
      // The harness invariants trap on violation; reaching the next
      // statement IS the assertion.
      entry(bytes.data(), bytes.size());
      SUCCEED() << name << ": " << p.filename();
    }
  }
}

TEST(FuzzCorpusTest, CrossFeedingCorporaNeverTraps) {
  // Inputs crafted for one decoder are hostile garbage to another —
  // exactly what a confused or malicious peer would deliver.
  for (const auto& [src, src_entry] : targets()) {
    (void)src_entry;
    for (const fs::path& p : corpus_files(src)) {
      const auto bytes = read_file(p);
      for (const auto& [dst, entry] : targets()) {
        if (dst == src) continue;
        entry(bytes.data(), bytes.size());
      }
    }
  }
}

TEST(FuzzCorpusTest, EmptyAndTinyInputsAreHandled) {
  for (const auto& [name, entry] : targets()) {
    (void)name;
    entry(nullptr, 0);
    const std::uint8_t one = 0x00;
    entry(&one, 1);
    const std::uint8_t ff = 0xFF;
    entry(&ff, 1);
  }
}

}  // namespace
}  // namespace dprbg
