// Fuzz regression for every untrusted-byte decoder: seeded random,
// truncated, and oversized inputs must be rejected cleanly — nullopt (or
// a failed reader), no throw, no allocation driven by an unvalidated
// length. These decoders are exactly the surfaces a Byzantine sender (or
// a corrupting link, net/fault.h) controls.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "coin/bitgen.h"
#include "coin/coin_gen.h"
#include "common/serial.h"
#include "gf/field_io.h"
#include "gf/gf2.h"
#include "gradecast/gradecast.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

using F = GF2_64;

std::vector<std::uint8_t> random_bytes(Chacha& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  rng.fill_bytes(out);
  return out;
}

// Valid encodings to mutate: truncation and padding of a well-formed
// message probe different failure edges than pure noise.
std::vector<std::uint8_t> valid_echoes(int n) {
  std::vector<gradecast_detail::MaybeValue> per_sender(n);
  for (int s = 0; s < n; s += 2) {
    per_sender[s] = std::vector<std::uint8_t>{1, 2, 3};
  }
  return gradecast_detail::encode_echoes(per_sender);
}

TEST(DecoderFuzzTest, DecodeEchoesRejectsGarbage) {
  const int n = 7;
  const std::size_t kMaxValue = 1u << 10;
  Chacha rng(2024, 0);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto bytes = random_bytes(rng, rng.uniform(4 * 5 * n));
    const auto decoded =
        gradecast_detail::decode_echoes(bytes, n, kMaxValue);
    if (decoded) {
      // Acceptance is fine only when every value respects the cap.
      for (const auto& v : *decoded) {
        if (v) {
          EXPECT_LE(v->size(), kMaxValue);
        }
      }
    }
  }
  // Truncations and oversizings of a valid message must all reject.
  const auto good = valid_echoes(n);
  ASSERT_TRUE(gradecast_detail::decode_echoes(good, n, kMaxValue));
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    const std::vector<std::uint8_t> trunc(good.begin(),
                                          good.begin() + cut);
    EXPECT_FALSE(gradecast_detail::decode_echoes(trunc, n, kMaxValue))
        << "truncated at " << cut;
  }
  auto padded = good;
  padded.push_back(0);
  EXPECT_FALSE(gradecast_detail::decode_echoes(padded, n, kMaxValue));
}

TEST(DecoderFuzzTest, DecodeEchoesNeverOverAllocates) {
  // A hostile length prefix far beyond the buffer (the GCC-flagged
  // alloc-size path): claim 4 GiB of value in a 40-byte message.
  const int n = 1;
  ByteWriter w;
  w.u8(1);
  w.u32(0xFFFFFFFFu);
  auto bytes = std::move(w).take();
  bytes.resize(40, 0xAB);
  EXPECT_FALSE(gradecast_detail::decode_echoes(bytes, n, 1u << 20));
}

TEST(DecoderFuzzTest, DecodeCliqueMsgRejectsGarbage) {
  const int n = 13;
  const unsigned t = 2;
  Chacha rng(2025, 0);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto bytes =
        random_bytes(rng, rng.uniform(2 * (1 + n * (1 + (t + 1) * 8))));
    const auto decoded =
        coin_gen_detail::decode_clique_msg<F>(bytes, n, t);
    if (decoded) {
      EXPECT_LE(decoded->clique.size(), static_cast<std::size_t>(n));
      for (int j : decoded->clique) {
        EXPECT_GE(j, 0);
        EXPECT_LT(j, n);
      }
    }
  }
  // Hostile count byte: 255 entries claimed in a short message.
  std::vector<std::uint8_t> hostile{255, 1, 2, 3};
  EXPECT_FALSE(coin_gen_detail::decode_clique_msg<F>(hostile, n, t));
  // Entry count exceeding n with a consistent length must also reject.
  const std::size_t entry = 1 + (t + 1) * F::kBytes;
  std::vector<std::uint8_t> oversize(1 + (n + 1) * entry, 0);
  oversize[0] = static_cast<std::uint8_t>(n + 1);
  EXPECT_FALSE(coin_gen_detail::decode_clique_msg<F>(oversize, n, t));
  EXPECT_FALSE(
      coin_gen_detail::decode_clique_msg<F>(std::vector<std::uint8_t>{},
                                            n, t));
}

TEST(DecoderFuzzTest, DecodeComboBatchRejectsAllButTheExactShape) {
  const int n = 7;
  const std::size_t exact = n * (1 + F::kBytes);
  Chacha rng(2026, 0);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.uniform(2 * exact);
    const auto bytes = random_bytes(rng, len);
    const auto decoded = bitgen_detail::decode_combo_batch<F>(bytes, n);
    EXPECT_EQ(decoded.has_value(), len == exact) << "len " << len;
  }
}

TEST(DecoderFuzzTest, DecodeElemRowRejectsAllButTheExactShape) {
  Chacha rng(2027, 0);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t count = rng.uniform(9);
    const std::size_t len = rng.uniform(2 * 8 * 8);
    const auto bytes = random_bytes(rng, len);
    const auto decoded = decode_elem_row<F>(bytes, count);
    EXPECT_EQ(decoded.has_value(), len == count * F::kBytes)
        << "count " << count << " len " << len;
    if (decoded) {
      EXPECT_EQ(decoded->size(), count);
    }
  }
}

TEST(DecoderFuzzTest, ByteReaderBulkReadIsBounded) {
  Chacha rng(2028, 0);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto data = random_bytes(rng, rng.uniform(64));
    ByteReader r(data);
    const std::size_t want = rng.uniform(128);
    const std::size_t cap = rng.uniform(128);
    const auto got = r.bytes(want, cap);
    if (want <= cap && want <= data.size()) {
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(got.size(), want);
      EXPECT_TRUE(std::equal(got.begin(), got.end(), data.begin()));
    } else {
      EXPECT_FALSE(r.ok());
      EXPECT_TRUE(got.empty());
      EXPECT_EQ(r.remaining(), 0u);  // failed readers park at the end
    }
  }
  // u64_vec's length guard still rejects hostile prefixes.
  ByteWriter w;
  w.u32(0xFFFFFFFFu);
  w.u64(1);
  const auto bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_TRUE(r.u64_vec().empty());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace dprbg
