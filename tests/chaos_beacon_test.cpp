// Chaos suite for beacon failover: one committee's barrier held hostage
// by a slow-drip link adversary (tests/chaos_util.h slow_drip_plan).
//
// Two regimes of the same adversary:
//   * drip + simulated latency + wall budget: the hostage committee is
//     genuinely slow in wall-clock, the monitor evicts it, and the
//     beacon still emits from the survivors — the liveness claim.
//   * drip alone, no monitor: the lockstep simulation absorbs the delays
//     (they cost rounds, not wall-clock), the run completes, and the
//     per-committee fault ledgers reconcile exactly with the cluster
//     totals — the accounting claim.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "beacon/beacon.h"
#include "beacon/beacon_failover.h"
#include "chaos_util.h"
#include "gf/gf2.h"
#include "net/fault.h"

namespace dprbg {
namespace {

using F = GF2_64;

constexpr std::uint64_t kSeed = 20260807;

typename Beacon<F>::Options base_options() {
  typename Beacon<F>::Options opts;
  opts.committees = 2;
  opts.committee_size = 7;
  opts.committee_t = 1;
  opts.coins_per_batch = 2;
  opts.batches = 3;
  opts.depth = 2;
  opts.seed = kSeed;
  return opts;
}

// Committee 1's member 2 drips delays on every outgoing link while the
// whole committee runs at 150 ms per simulated round; the monitor evicts
// it and the beacon finishes with exactly the solo committee-0 output.
TEST(ChaosBeaconTest, StallingCommitteeEvictedAndBeaconProgresses) {
  auto solo_opts = base_options();
  solo_opts.committees = 1;
  solo_opts.depth = 1;
  Beacon<F> solo(solo_opts);
  const auto ref = solo.run();
  ASSERT_TRUE(ref.success);

  auto opts = base_options();
  opts.depth = 1;
  opts.failover.wall_budget_ms = 600;
  opts.failover.evict_after = 2.0;
  opts.failover.poll_ms = 10;
  Beacon<F> beacon(opts);
  beacon.committee(1).set_fault_injector(chaos::slow_drip_plan(
      /*hostage=*/2, static_cast<int>(opts.committee_size), /*rounds=*/60,
      /*delay=*/2));
  beacon.committee(1).set_round_latency_us(150000);
  const auto out = beacon.run();

  ASSERT_TRUE(out.success) << chaos::replay_note(kSeed);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.committees[1].health, CommitteeHealth::kEvicted);
  EXPECT_EQ(out.committees[0].health, CommitteeHealth::kLive);
  EXPECT_EQ(out.beacon, ref.beacon) << chaos::replay_note(kSeed);
  for (std::uint32_t mask : out.window_mask) EXPECT_EQ(mask, 0b01u);
  EXPECT_EQ(beacon.cluster().foreign_rejections(), 0u);
}

// The drip alone (no latency, no monitor): the lockstep run completes,
// committee 0's coins are untouched by committee 1's faults, and the
// per-committee ledgers sum exactly to the cluster's fault total.
TEST(ChaosBeaconTest, SlowDripAloneCompletesWithExactLedgers) {
  auto solo_opts = base_options();
  solo_opts.committees = 1;
  Beacon<F> solo(solo_opts);
  const auto ref = solo.run();
  ASSERT_TRUE(ref.success);

  auto opts = base_options();
  Beacon<F> beacon(opts);
  beacon.committee(1).set_fault_injector(chaos::slow_drip_plan(
      /*hostage=*/2, static_cast<int>(opts.committee_size), /*rounds=*/40,
      /*delay=*/1));
  const auto out = beacon.run();

  // Committee independence under faults: committee 0 is bit-for-bit the
  // solo run no matter what committee 1's links do.
  EXPECT_EQ(out.committees[0].coins, ref.committees[0].coins)
      << chaos::replay_note(kSeed);
  EXPECT_EQ(out.committees[0].health, CommitteeHealth::kLive);

  const auto led0 = beacon.committee(0).ledger();
  const auto led1 = beacon.committee(1).ledger();
  EXPECT_EQ(led0.faults.total(), 0u);
  EXPECT_GT(led1.faults.total(), 0u) << "drip plan never fired";
  EXPECT_EQ(led0.faults.total() + led1.faults.total(),
            beacon.cluster().faults().total())
      << chaos::replay_note(kSeed);
  EXPECT_EQ(led1.faults.total(), beacon.committee(1).faults().total());
  EXPECT_EQ(beacon.cluster().foreign_rejections(), 0u);
  EXPECT_EQ(led0.foreign + led1.foreign, 0u);
}

}  // namespace
}  // namespace dprbg
