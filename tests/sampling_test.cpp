// Tests for shared-randomness sampling (leader election, committees,
// permutations) on top of the D-PRBG.

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <set>
#include <vector>

#include "dprbg/sampling.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

DPrbg<F>::Options small_opts() {
  DPrbg<F>::Options opts;
  opts.batch_size = 32;
  opts.reserve = 4;
  return opts;
}

TEST(SamplingTest, SharedUniformInRangeAndUnanimous) {
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 1);
  std::vector<std::vector<std::uint64_t>> draws(n);
  Cluster cluster(n, t, 1);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F> prbg(small_opts(), genesis[io.id()]);
    for (int d = 0; d < 20; ++d) {
      const auto v = shared_uniform<F>(io, prbg, 10);
      ASSERT_TRUE(v.has_value());
      ASSERT_LT(*v, 10u);
      draws[io.id()].push_back(*v);
    }
  }));
  for (int i = 1; i < n; ++i) EXPECT_EQ(draws[i], draws[0]);
}

TEST(SamplingTest, SharedUniformRoughlyUniform) {
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 2);
  std::array<int, 5> counts{};
  const int kDraws = 200;
  Cluster cluster(n, t, 2);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F> prbg(small_opts(), genesis[io.id()]);
    for (int d = 0; d < kDraws; ++d) {
      const auto v = shared_uniform<F>(io, prbg, 5);
      if (io.id() == 0) ++counts[*v];
    }
  }));
  for (int b = 0; b < 5; ++b) {
    EXPECT_NEAR(double(counts[b]) / kDraws, 0.2, 0.12) << "bucket " << b;
  }
}

TEST(SamplingTest, LeaderElectionCoversAllPlayers) {
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 3);
  std::set<int> leaders;
  Cluster cluster(n, t, 3);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F> prbg(small_opts(), genesis[io.id()]);
    for (int round = 0; round < 60; ++round) {
      const auto l = elect_leader<F>(io, prbg);
      ASSERT_TRUE(l.has_value());
      ASSERT_GE(*l, 0);
      ASSERT_LT(*l, n);
      if (io.id() == 0) leaders.insert(*l);
    }
  }));
  EXPECT_EQ(leaders.size(), static_cast<std::size_t>(n));  // all elected
}

TEST(SamplingTest, CommitteeSizeAndDistinctness) {
  const int n = 13, t = 2;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 4);
  std::vector<std::vector<int>> committees(n);
  Cluster cluster(n, t, 4);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F> prbg(small_opts(), genesis[io.id()]);
    const auto c = elect_committee<F>(io, prbg, 5);
    ASSERT_TRUE(c.has_value());
    committees[io.id()] = *c;
  }));
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(committees[i].size(), 5u);
    const std::set<int> distinct(committees[i].begin(),
                                 committees[i].end());
    EXPECT_EQ(distinct.size(), 5u);
    EXPECT_EQ(committees[i], committees[0]);
    for (int member : committees[i]) {
      EXPECT_GE(member, 0);
      EXPECT_LT(member, n);
    }
  }
}

TEST(SamplingTest, CommitteeMembershipIsFair) {
  // Over many committees, every player should be selected with frequency
  // ~ size/n.
  const int n = 7, t = 1;
  const int kRounds = 80;
  const int kSize = 3;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 5);
  std::array<int, 7> member_counts{};
  Cluster cluster(n, t, 5);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F> prbg(small_opts(), genesis[io.id()]);
    for (int round = 0; round < kRounds; ++round) {
      const auto c = elect_committee<F>(io, prbg, kSize);
      if (io.id() == 0) {
        for (int member : *c) ++member_counts[member];
      }
    }
  }));
  const double expected = double(kSize) / n;
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(double(member_counts[i]) / kRounds, expected, 0.18)
        << "player " << i;
  }
}

TEST(SamplingTest, PermutationIsValidAndUnanimous) {
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 6);
  std::vector<std::vector<int>> perms(n);
  Cluster cluster(n, t, 6);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F> prbg(small_opts(), genesis[io.id()]);
    const auto p = shared_permutation<F>(io, prbg, 10);
    ASSERT_TRUE(p.has_value());
    perms[io.id()] = *p;
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(perms[i], perms[0]);
    std::set<int> distinct(perms[i].begin(), perms[i].end());
    EXPECT_EQ(distinct.size(), 10u);
  }
}

TEST(SamplingTest, PermutationsVaryAcrossDraws) {
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 7);
  std::vector<int> first, second;
  Cluster cluster(n, t, 7);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    DPrbg<F> prbg(small_opts(), genesis[io.id()]);
    const auto a = shared_permutation<F>(io, prbg, 12);
    const auto b = shared_permutation<F>(io, prbg, 12);
    if (io.id() == 0) {
      first = *a;
      second = *b;
    }
  }));
  EXPECT_NE(first, second);
}

TEST(SamplingTest, SurvivesCrashFaults) {
  const int n = 13, t = 2;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 8);
  std::vector<std::optional<int>> leaders(n);
  Cluster cluster(n, t, 8);
  cluster.run(
      [&](PartyIo& io) {
        DPrbg<F> prbg(small_opts(), genesis[io.id()]);
        leaders[io.id()] = elect_leader<F>(io, prbg);
      },
      {0, 9}, nullptr);
  for (int i = 0; i < n; ++i) {
    if (i == 0 || i == 9) continue;
    ASSERT_TRUE(leaders[i].has_value());
    EXPECT_EQ(*leaders[i], *leaders[1]);
  }
}

}  // namespace
}  // namespace dprbg
