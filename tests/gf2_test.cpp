// Field-axiom and implementation tests for GF(2^m).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gf/gf2.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

template <typename F>
class Gf2FieldTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<GF2<4>, GF2_8, GF2_16, GF2<24>, GF2_32,
                                    GF2<40>, GF2<48>, GF2<56>, GF2_64>;
TYPED_TEST_SUITE(Gf2FieldTest, FieldTypes);

TYPED_TEST(Gf2FieldTest, AdditiveIdentityAndSelfInverse) {
  Chacha rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto a = random_element<TypeParam>(rng);
    EXPECT_EQ(a + TypeParam::zero(), a);
    EXPECT_TRUE((a + a).is_zero());  // char 2
    EXPECT_EQ(a - a, TypeParam::zero());
  }
}

TYPED_TEST(Gf2FieldTest, MultiplicativeIdentityAndZero) {
  Chacha rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto a = random_element<TypeParam>(rng);
    EXPECT_EQ(a * TypeParam::one(), a);
    EXPECT_TRUE((a * TypeParam::zero()).is_zero());
  }
}

TYPED_TEST(Gf2FieldTest, MultiplicationCommutesAndAssociates) {
  Chacha rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto a = random_element<TypeParam>(rng);
    const auto b = random_element<TypeParam>(rng);
    const auto c = random_element<TypeParam>(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
  }
}

TYPED_TEST(Gf2FieldTest, Distributivity) {
  Chacha rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto a = random_element<TypeParam>(rng);
    const auto b = random_element<TypeParam>(rng);
    const auto c = random_element<TypeParam>(rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TYPED_TEST(Gf2FieldTest, InverseRoundTrip) {
  Chacha rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto a = random_nonzero<TypeParam>(rng);
    EXPECT_EQ(a * a.inv(), TypeParam::one());
    EXPECT_EQ((a / a), TypeParam::one());
  }
}

TYPED_TEST(Gf2FieldTest, FrobeniusFixedField) {
  // x^(2^m) == x for every field element — this holds iff the modulus is
  // irreducible (otherwise the ring has nilpotents/zero divisors breaking
  // it), so this test certifies the constants in gf2_detail::modulus.
  Chacha rng(6);
  for (int i = 0; i < 50; ++i) {
    const auto a = random_element<TypeParam>(rng);
    auto x = a;
    for (unsigned s = 0; s < TypeParam::kBits; ++s) x = x * x;
    EXPECT_EQ(x, a);
  }
}

TYPED_TEST(Gf2FieldTest, NoZeroDivisors) {
  Chacha rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto a = random_nonzero<TypeParam>(rng);
    const auto b = random_nonzero<TypeParam>(rng);
    EXPECT_FALSE((a * b).is_zero());
  }
}

TYPED_TEST(Gf2FieldTest, PowMatchesRepeatedMultiplication) {
  Chacha rng(8);
  const auto a = random_nonzero<TypeParam>(rng);
  auto acc = TypeParam::one();
  for (unsigned e = 0; e < 20; ++e) {
    EXPECT_EQ(a.pow(e), acc);
    acc = acc * a;
  }
}

TYPED_TEST(Gf2FieldTest, FromUintMasksHighBits) {
  const auto a = TypeParam::from_uint(~std::uint64_t{0});
  EXPECT_EQ(a.to_uint(), TypeParam::kMask);
}

TEST(Gf2SmallFieldTest, Gf16ExhaustiveInverse) {
  for (std::uint64_t v = 1; v < 16; ++v) {
    const auto a = GF2<4>::from_uint(v);
    EXPECT_EQ(a * a.inv(), GF2<4>::one()) << "v=" << v;
  }
}

TEST(Gf2SmallFieldTest, Gf16MultiplicativeGroupOrder) {
  // Every nonzero element's order divides 15.
  for (std::uint64_t v = 1; v < 16; ++v) {
    const auto a = GF2<4>::from_uint(v);
    EXPECT_EQ(a.pow(15), GF2<4>::one()) << "v=" << v;
  }
}

TEST(Gf2SmallFieldTest, Gf256KnownProducts) {
  // AES field (modulus 0x1B): well-known vector 0x57 * 0x83 = 0xC1.
  const auto a = GF2_8::from_uint(0x57);
  const auto b = GF2_8::from_uint(0x83);
  EXPECT_EQ((a * b).to_uint(), 0xC1u);
  // And 0x57 * 0x13 = 0xFE from the AES specification.
  EXPECT_EQ((a * GF2_8::from_uint(0x13)).to_uint(), 0xFEu);
}

TEST(Gf2SmallFieldTest, TableAndGenericAgree) {
  // GF2<16> uses log tables; recompute products with the generic clmul
  // path and compare.
  Chacha rng(9);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next_u64() & 0xFFFF;
    const std::uint64_t b = rng.next_u64() & 0xFFFF;
    const std::uint64_t via_table =
        (GF2_16::from_uint(a) * GF2_16::from_uint(b)).to_uint();
    const std::uint64_t via_clmul = gf2_detail::clmul_reduce<16>(a, b);
    EXPECT_EQ(via_table, via_clmul);
  }
}

// Hardware PCLMUL vs the software shift-XOR loop: both must produce the
// same canonical remainder for every wide field (gf2_clmul.h contract).
// Skipped (vacuously green) on hosts without PCLMUL or when forced
// scalar, where mul_raw takes the software path anyway.
template <unsigned M>
void clmul_hw_differential(std::uint64_t seed) {
  if (!gf2_detail::clmul_hw) GTEST_SKIP() << "no hardware PCLMUL path";
  Chacha rng(seed);
  const std::uint64_t mask = GF2<M>::kBits == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << M) - 1;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next_u64() & mask;
    const std::uint64_t b = rng.next_u64() & mask;
    const std::uint64_t hw =
        gf2_detail::clmul_hw_mul(a, b, M, gf2_detail::modulus<M>());
    const std::uint64_t soft = gf2_detail::clmul_reduce<M>(a, b);
    ASSERT_EQ(hw, soft) << "M=" << M << " a=" << a << " b=" << b;
  }
  // Boundary values: all-ones, single top bit, zero, one.
  for (std::uint64_t a : {std::uint64_t{0}, std::uint64_t{1}, mask,
                          std::uint64_t{1} << (M - 1)}) {
    for (std::uint64_t b : {std::uint64_t{0}, std::uint64_t{1}, mask,
                            std::uint64_t{1} << (M - 1)}) {
      ASSERT_EQ(gf2_detail::clmul_hw_mul(a, b, M, gf2_detail::modulus<M>()),
                (gf2_detail::clmul_reduce<M>(a, b)));
    }
  }
}

TEST(Gf2ClmulHwTest, M24) { clmul_hw_differential<24>(24); }
TEST(Gf2ClmulHwTest, M32) { clmul_hw_differential<32>(32); }
TEST(Gf2ClmulHwTest, M40) { clmul_hw_differential<40>(40); }
TEST(Gf2ClmulHwTest, M48) { clmul_hw_differential<48>(48); }
TEST(Gf2ClmulHwTest, M56) { clmul_hw_differential<56>(56); }
TEST(Gf2ClmulHwTest, M64) { clmul_hw_differential<64>(64); }

TEST(Gf2MetricsTest, OperationsAreCounted) {
  const FieldCounters before = field_counters();
  const auto a = GF2_64::from_uint(123);
  const auto b = GF2_64::from_uint(456);
  auto c = a + b;
  c = c * a;
  (void)c.inv();
  const FieldCounters delta = field_counters() - before;
  EXPECT_EQ(delta.adds, 1u);
  EXPECT_EQ(delta.muls, 1u);
  EXPECT_EQ(delta.invs, 1u);
}

}  // namespace
}  // namespace dprbg
