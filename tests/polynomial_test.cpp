// Tests for dense polynomial arithmetic over finite fields.

#include <gtest/gtest.h>

#include "gf/gf2.h"
#include "poly/polynomial.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

using F = GF2_16;
using P = Polynomial<F>;

F fe(std::uint64_t v) { return F::from_uint(v); }

P random_poly(unsigned deg, Chacha& rng) { return P::random(deg, rng); }

TEST(PolynomialTest, ZeroPolynomialProperties) {
  const P z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  EXPECT_EQ(z(fe(5)), F::zero());
}

TEST(PolynomialTest, TrailingZerosAreTrimmed) {
  const P p{{fe(1), fe(2), F::zero(), F::zero()}};
  EXPECT_EQ(p.degree(), 1);
}

TEST(PolynomialTest, HornerEvaluation) {
  // p(x) = 3 + 2x + x^2 over GF(2^16): p(2) = 3 + 2*2 + 2*2.
  const P p{{fe(3), fe(2), fe(1)}};
  const F x = fe(2);
  EXPECT_EQ(p(x), fe(3) + fe(2) * x + x * x);
}

TEST(PolynomialTest, EvaluateAtZeroGivesConstantTerm) {
  Chacha rng(1);
  for (int i = 0; i < 20; ++i) {
    const P p = random_poly(7, rng);
    EXPECT_EQ(p(F::zero()), p.coeff(0));
  }
}

TEST(PolynomialTest, AdditionIsPointwise) {
  Chacha rng(2);
  const P a = random_poly(5, rng);
  const P b = random_poly(3, rng);
  const P s = a + b;
  for (std::uint64_t x = 0; x < 20; ++x) {
    EXPECT_EQ(s(fe(x)), a(fe(x)) + b(fe(x)));
  }
}

TEST(PolynomialTest, MultiplicationIsPointwise) {
  Chacha rng(3);
  const P a = random_poly(4, rng);
  const P b = random_poly(6, rng);
  const P prod = a * b;
  EXPECT_EQ(prod.degree(), a.degree() + b.degree());
  for (std::uint64_t x = 0; x < 20; ++x) {
    EXPECT_EQ(prod(fe(x)), a(fe(x)) * b(fe(x)));
  }
}

TEST(PolynomialTest, ScalarMultiple) {
  Chacha rng(4);
  const P a = random_poly(5, rng);
  const F s = fe(77);
  const P sa = s * a;
  for (std::uint64_t x = 1; x < 10; ++x) {
    EXPECT_EQ(sa(fe(x)), s * a(fe(x)));
  }
}

TEST(PolynomialTest, DivModRoundTrip) {
  Chacha rng(5);
  for (int i = 0; i < 50; ++i) {
    const P a = random_poly(9, rng);
    P b = random_poly(4, rng);
    if (b.is_zero()) continue;
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.degree(), b.degree());
  }
}

TEST(PolynomialTest, ExactDivisionHasZeroRemainder) {
  Chacha rng(6);
  const P a = random_poly(5, rng);
  P b = random_poly(3, rng);
  const P prod = a * b;
  const auto [q, r] = prod.divmod(b);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(q, a);
}

TEST(PolynomialTest, RandomWithSecretFixesConstantTerm) {
  Chacha rng(7);
  for (int i = 0; i < 50; ++i) {
    const F secret = random_element<F>(rng);
    const P p = P::random_with_secret(secret, 6, rng);
    EXPECT_EQ(p(F::zero()), secret);
    EXPECT_LE(p.degree(), 6);
  }
}

TEST(PolynomialTest, RandomDegreeBounded) {
  Chacha rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(random_poly(10, rng).degree(), 10);
  }
}

TEST(PolynomialTest, SubtractionInverseOfAddition) {
  Chacha rng(9);
  const P a = random_poly(6, rng);
  const P b = random_poly(6, rng);
  EXPECT_EQ((a + b) - b, a);
}

TEST(PolynomialTest, CoeffOutOfRangeIsZero) {
  const P p{{fe(1), fe(2)}};
  // volatile blocks constant propagation, which otherwise trips a known
  // GCC 12 -Warray-bounds false positive on the (guarded) vector access.
  volatile std::size_t idx = 5;
  EXPECT_EQ(p.coeff(idx), F::zero());
}

}  // namespace
}  // namespace dprbg
