// Differential tests for the batch Z_q kernels (gf/zq_simd.h): the
// scalar and AVX2 dispatch tables must produce bit-for-bit identical
// outputs, and both must match the element-wise Zq reference, across
// unaligned offsets, awkward lengths, and values hugging q.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gf/zq.h"
#include "gf/zq_simd.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

// Primes spanning the tabulated (q <= 1024) and Barrett regimes, up to
// the largest prime below 2^31 (the kernels' documented ceiling).
const std::uint32_t kPrimes[] = {2,    3,     17,        257,
                                 1021, 65537, 2147483629u};

const std::size_t kLengths[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33,
                                100, 1000};

std::vector<std::uint32_t> random_residues(const Zq& zq, std::size_t n,
                                           Chacha& rng) {
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix in the boundary values 0, 1, q-1, q-2 so the conditional
    // subtracts and borrows get exercised, not just the generic lane.
    switch (rng.next_u32() & 7u) {
      case 0: v[i] = 0; break;
      case 1: v[i] = 1 % zq.q(); break;
      case 2: v[i] = zq.q() - 1; break;
      case 3: v[i] = zq.q() >= 2 ? zq.q() - 2 : 0; break;
      default: v[i] = rng.next_u32() % zq.q();
    }
  }
  return v;
}

// Runs one kernel table over (a, b) at every length/offset combination
// and checks it against the Zq reference ops.
void check_table(const simd::ZqKernels& k, const Zq& zq, Chacha& rng) {
  const std::uint64_t br = zq.barrett();
  for (std::size_t len : kLengths) {
    for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{7}}) {
      const auto a = random_residues(zq, off + len, rng);
      const auto b = random_residues(zq, off + len, rng);
      const std::uint32_t s = rng.next_u32() % zq.q();
      std::vector<std::uint32_t> dst(off + len, 0xdeadbeefu);

      k.add(a.data() + off, b.data() + off, dst.data() + off, len, zq.q());
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(dst[off + i], zq.add(a[off + i], b[off + i]))
            << "add q=" << zq.q() << " len=" << len << " off=" << off;
      }
      k.sub(a.data() + off, b.data() + off, dst.data() + off, len, zq.q());
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(dst[off + i], zq.sub(a[off + i], b[off + i]))
            << "sub q=" << zq.q() << " len=" << len << " off=" << off;
      }
      k.mul(a.data() + off, b.data() + off, dst.data() + off, len, zq.q(),
            br);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(dst[off + i], zq.mul(a[off + i], b[off + i]))
            << "mul q=" << zq.q() << " len=" << len << " off=" << off;
      }
      k.scale(a.data() + off, s, dst.data() + off, len, zq.q(), br);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(dst[off + i], zq.mul(a[off + i], s))
            << "scale q=" << zq.q() << " len=" << len << " off=" << off;
      }
      std::vector<std::uint32_t> acc = a;
      k.axpy(acc.data() + off, b.data() + off, s, len, zq.q(), br);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(acc[off + i], zq.add(a[off + i], zq.mul(b[off + i], s)))
            << "axpy q=" << zq.q() << " len=" << len << " off=" << off;
      }
      std::vector<std::uint32_t> lo = a, hi = b;
      k.butterfly(lo.data() + off, hi.data() + off, b.data() + off, len,
                  zq.q(), br);
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint32_t v = zq.mul(b[off + i], b[off + i]);
        ASSERT_EQ(lo[off + i], zq.add(a[off + i], v)) << "bfly lo";
        ASSERT_EQ(hi[off + i], zq.sub(a[off + i], v)) << "bfly hi";
      }
    }
  }
}

TEST(ZqSimdTest, ScalarKernelsMatchZqReference) {
  Chacha rng(0x5ca1ab1eu);
  for (std::uint32_t q : kPrimes) check_table(simd::scalar_kernels(), Zq(q), rng);
}

TEST(ZqSimdTest, DispatchedKernelsMatchZqReference) {
  Chacha rng(0xd15b47c4u);
  for (std::uint32_t q : kPrimes) {
    check_table(simd::select_kernels(/*allow_simd=*/true), Zq(q), rng);
  }
}

// The central contract: scalar and SIMD tables agree bit-for-bit on the
// same inputs. (When the host has no AVX2 both tables are the scalar one
// and this degenerates to a self-check — still valid, trivially.)
TEST(ZqSimdTest, SimdAndScalarBitForBit) {
  const simd::ZqKernels& sc = simd::select_kernels(false);
  const simd::ZqKernels& vec = simd::select_kernels(true);
  Chacha rng(42);
  for (std::uint32_t q : kPrimes) {
    const Zq zq(q);
    const std::uint64_t br = zq.barrett();
    for (std::size_t len : kLengths) {
      const auto a = random_residues(zq, len, rng);
      const auto b = random_residues(zq, len, rng);
      const std::uint32_t s = rng.next_u32() % q;
      std::vector<std::uint32_t> d1(len), d2(len);
      sc.mul(a.data(), b.data(), d1.data(), len, q, br);
      vec.mul(a.data(), b.data(), d2.data(), len, q, br);
      ASSERT_EQ(d1, d2) << "mul q=" << q << " len=" << len;
      sc.add(a.data(), b.data(), d1.data(), len, q);
      vec.add(a.data(), b.data(), d2.data(), len, q);
      ASSERT_EQ(d1, d2) << "add q=" << q << " len=" << len;
      sc.sub(a.data(), b.data(), d1.data(), len, q);
      vec.sub(a.data(), b.data(), d2.data(), len, q);
      ASSERT_EQ(d1, d2) << "sub q=" << q << " len=" << len;
      sc.scale(a.data(), s, d1.data(), len, q, br);
      vec.scale(a.data(), s, d2.data(), len, q, br);
      ASSERT_EQ(d1, d2) << "scale q=" << q << " len=" << len;
      d1 = a;
      d2 = a;
      sc.axpy(d1.data(), b.data(), s, len, q, br);
      vec.axpy(d2.data(), b.data(), s, len, q, br);
      ASSERT_EQ(d1, d2) << "axpy q=" << q << " len=" << len;
      std::vector<std::uint32_t> lo1 = a, hi1 = b, lo2 = a, hi2 = b;
      sc.butterfly(lo1.data(), hi1.data(), b.data(), len, q, br);
      vec.butterfly(lo2.data(), hi2.data(), b.data(), len, q, br);
      ASSERT_EQ(lo1, lo2) << "bfly q=" << q << " len=" << len;
      ASSERT_EQ(hi1, hi2) << "bfly q=" << q << " len=" << len;
    }
  }
}

// dst aliasing a (documented as allowed) must behave as if out-of-place.
TEST(ZqSimdTest, AliasingDstIsAllowed) {
  const Zq zq(1000003);
  Chacha rng(7);
  for (const simd::ZqKernels* k :
       {&simd::select_kernels(false), &simd::select_kernels(true)}) {
    const auto a = random_residues(zq, 100, rng);
    const auto b = random_residues(zq, 100, rng);
    std::vector<std::uint32_t> expect(100);
    k->mul(a.data(), b.data(), expect.data(), 100, zq.q(), zq.barrett());
    std::vector<std::uint32_t> inplace = a;
    k->mul(inplace.data(), b.data(), inplace.data(), 100, zq.q(),
           zq.barrett());
    EXPECT_EQ(inplace, expect);
  }
}

TEST(ZqSimdTest, PowBlockMatchesZqPow) {
  const Zq zq(65537);
  Chacha rng(11);
  for (std::uint64_t e : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{2}, std::uint64_t{65536},
                          std::uint64_t{0x123456789abcull}}) {
    const auto a = random_residues(zq, 129, rng);
    std::vector<std::uint32_t> dst(129);
    simd::zq_pow_block(zq, a.data(), e, dst.data(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(dst[i], zq.pow(a[i], e)) << "e=" << e << " i=" << i;
    }
  }
}

TEST(ZqSimdTest, InvBlockMatchesZqInv) {
  const Zq zq(2147483629u);
  Chacha rng(13);
  std::vector<std::uint32_t> vals(257);
  for (auto& v : vals) v = 1 + rng.next_u32() % (zq.q() - 1);  // nonzero
  const auto orig = vals;
  simd::zq_inv_block(zq, vals.data(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    ASSERT_EQ(vals[i], zq.inv(orig[i])) << "i=" << i;
  }
}

TEST(ZqSimdTest, PowerSeriesMatchesIteratedMul) {
  const Zq zq(1021);
  Chacha rng(17);
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    const std::uint32_t r = rng.next_u32() % zq.q();
    std::vector<std::uint32_t> dst(n);
    simd::zq_power_series(zq, r, dst.data(), n);
    std::uint32_t acc = 1;
    for (std::size_t i = 0; i < n; ++i) {
      acc = zq.mul(acc, r);
      ASSERT_EQ(dst[i], acc) << "i=" << i;
    }
  }
}

// The dispatch plumbing itself: names are coherent and force_scalar is
// respected by active_kernels (exercised for real by the check.sh gate,
// which runs this whole binary under DPRBG_FORCE_SCALAR=1).
TEST(ZqSimdTest, DispatchPlumbing) {
  EXPECT_STREQ(simd::select_kernels(false).name, "scalar");
  if (simd::avx2_supported()) {
    EXPECT_STREQ(simd::select_kernels(true).name, "avx2");
  } else {
    EXPECT_STREQ(simd::select_kernels(true).name, "scalar");
  }
  if (simd::force_scalar()) {
    EXPECT_STREQ(simd::active_kernels().name, "scalar");
    EXPECT_STREQ(simd::dispatch_name(), "scalar");
  } else {
    EXPECT_STREQ(simd::active_kernels().name,
                 simd::select_kernels(true).name);
  }
}

}  // namespace
}  // namespace dprbg
