// Golden tests: lock down deterministic outputs so refactors cannot
// silently change the wire format, field constants, or replayable
// randomness. If one of these fails, either a bug was introduced or the
// format deliberately changed — in the latter case update the constants
// AND bump a protocol version in the release notes.

#include <gtest/gtest.h>

#include <vector>

#include "common/serial.h"
#include "gf/field_io.h"
#include "gf/gf2.h"
#include "net/msg.h"
#include "rng/chacha.h"
#include "sharing/shamir.h"

namespace dprbg {
namespace {

TEST(GoldenTest, TagLayout) {
  // tag = proto(8) | instance(12) | phase(8) | sub(4).
  EXPECT_EQ(make_tag(ProtoId::kVss, 0, 0, 0), 0x03000000u);
  EXPECT_EQ(make_tag(ProtoId::kBitGen, 1, 2, 3), 0x05001023u);
  EXPECT_EQ(make_tag(ProtoId::kCoinExpose, 4095, 255, 15), 0x02FFFFFFu);
  // Field overflow wraps into the mask, never into neighbours.
  EXPECT_EQ(make_tag(ProtoId::kVss, 4096, 0, 0),
            make_tag(ProtoId::kVss, 0, 0, 0));
}

TEST(GoldenTest, EnvelopeHeaderLayouts) {
  // Both envelope framings are golden: v0 is the fixed 14-byte header
  // every transcript since PR 1 was charged with; v1 is the varint
  // framing introduced with wire versioning (version byte 0x10, then
  // from / rotated tag / batch / body_len as canonical varints).
  EnvelopeHeader h;
  h.from = 5;
  h.tag = make_tag(ProtoId::kVss, 1, 2, 3);  // 0x03001023
  h.batch = 300;
  h.body_len = 130;

  ByteWriter v0;
  encode_envelope_header(v0, h, WireVersion::kV0);
  const std::vector<std::uint8_t> expect_v0 = {
      0x05, 0x00, 0x00, 0x00,  // from (u32 LE)
      0x23, 0x10, 0x00, 0x03,  // tag (u32 LE)
      0x2C, 0x01,              // batch (u16 LE)
      0x82, 0x00, 0x00, 0x00,  // body_len (u32 LE)
  };
  EXPECT_EQ(v0.data(), expect_v0);
  EXPECT_EQ(v0.size(), kV0HeaderBytes);

  ByteWriter v1;
  encode_envelope_header(v1, h, WireVersion::kV1);
  const std::vector<std::uint8_t> expect_v1 = {
      0x10,              // version 1, flags 0
      0x05,              // from
      0x83, 0xC6, 0x40,  // wire_tag(tag) = 0x00102303, 3-byte varint
      0xAC, 0x02,        // batch = 300
      0x82, 0x01,        // body_len = 130
  };
  EXPECT_EQ(v1.data(), expect_v1);

  for (const WireVersion v : {WireVersion::kV0, WireVersion::kV1}) {
    ByteWriter w;
    encode_envelope_header(w, h, v);
    ByteReader r(w.data());
    const auto back = decode_envelope_header(r, v);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->from, h.from);
    EXPECT_EQ(back->tag, h.tag);
    EXPECT_EQ(back->batch, h.batch);
    EXPECT_EQ(back->body_len, h.body_len);
  }
}

TEST(GoldenTest, FieldElementWireFormat) {
  // Little-endian, exactly kBytes bytes.
  ByteWriter w;
  write_elem(w, GF2_64::from_uint(0x0102030405060708ull));
  const std::vector<std::uint8_t> expected = {0x08, 0x07, 0x06, 0x05,
                                              0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(w.data(), expected);

  ByteWriter w16;
  write_elem(w16, GF2_16::from_uint(0xABCD));
  EXPECT_EQ(w16.data(), (std::vector<std::uint8_t>{0xCD, 0xAB}));
}

TEST(GoldenTest, SerializedVectorLayout) {
  ByteWriter w;
  w.u64_vec(std::vector<std::uint64_t>{0x11, 0x22});
  const std::vector<std::uint8_t> expected = {
      2,    0, 0, 0,                    // u32 length
      0x11, 0, 0, 0, 0, 0, 0, 0,        // first element LE
      0x22, 0, 0, 0, 0, 0, 0, 0,        // second element LE
  };
  EXPECT_EQ(w.data(), expected);
}

TEST(GoldenTest, ChachaKnownStream) {
  // Replayability contract: these values must never change for a given
  // (seed, stream) or every recorded experiment changes under users'
  // feet.
  Chacha a(0, 0);
  const std::uint64_t a0 = a.next_u64();
  const std::uint64_t a1 = a.next_u64();
  Chacha b(0, 0);
  EXPECT_EQ(b.next_u64(), a0);
  EXPECT_EQ(b.next_u64(), a1);
  // And distinct streams diverge immediately.
  Chacha c(0, 1);
  EXPECT_NE(c.next_u64(), a0);
}

TEST(GoldenTest, Gf2ModuliAreTheDocumentedOnes) {
  // The field constants are part of the wire contract (two builds with
  // different moduli cannot interoperate).
  EXPECT_EQ(gf2_detail::modulus<8>(), 0x1Bu);
  EXPECT_EQ(gf2_detail::modulus<16>(), 0x2Bu);
  EXPECT_EQ(gf2_detail::modulus<32>(), 0x8Du);
  EXPECT_EQ(gf2_detail::modulus<64>(), 0x1Bu);
}

TEST(GoldenTest, EvalPointsAreOneBased) {
  EXPECT_EQ(eval_point<GF2_64>(0).to_uint(), 1u);
  EXPECT_EQ(eval_point<GF2_64>(6).to_uint(), 7u);
}

TEST(GoldenTest, AesFieldVector) {
  // Cross-implementation anchor: AES's GF(2^8) test vector.
  EXPECT_EQ((GF2_8::from_uint(0x57) * GF2_8::from_uint(0x83)).to_uint(),
            0xC1u);
}

}  // namespace
}  // namespace dprbg
