// Tests for the deployment latency model (net/latency.h) and a cluster
// stress case at the maximum supported player count.

#include <gtest/gtest.h>

#include <vector>

#include "net/cluster.h"
#include "net/latency.h"
#include "net/msg.h"

namespace dprbg {
namespace {

TEST(LatencyModelTest, RoundsDominateOnWan) {
  CommCounters comm{/*messages=*/100, /*bytes=*/10000, /*rounds=*/10};
  const double lan = estimate_wall_ms(comm, 7, lan_model());
  const double wan = estimate_wall_ms(comm, 7, wan_model());
  const double global = estimate_wall_ms(comm, 7, global_model());
  EXPECT_LT(lan, wan);
  EXPECT_LT(wan, global);
  // 10 rounds at 75 ms one-way dominate the ~1.4 KB/player transfer.
  EXPECT_NEAR(global, 750.0, 10.0);
}

TEST(LatencyModelTest, BandwidthMattersForBulk) {
  // A byte-heavy single round: transfer term dominates on the slow link.
  CommCounters comm{/*messages=*/10, /*bytes=*/100000000, /*rounds=*/1};
  const double global = estimate_wall_ms(comm, 10, global_model());
  // 10 MB per player over 100 Mbps ~ 800 ms >> 75 ms traversal.
  EXPECT_GT(global, 800.0);
}

TEST(LatencyModelTest, ZeroTrafficCostsOnlyRounds) {
  CommCounters comm{0, 0, 5};
  EXPECT_DOUBLE_EQ(estimate_wall_ms(comm, 4, wan_model()), 5 * 25.0);
}

TEST(ClusterStressTest, SixtyFourPlayersOneRound) {
  // The protocol layer's hard ceiling is 64 players (field points,
  // bitmask cliques); the cluster itself must handle that width.
  const int n = 64;
  Cluster cluster(n, 10, 1);
  const std::uint32_t tag = make_tag(ProtoId::kApp, 0, 0);
  std::vector<int> received(n, 0);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    io.send_all(tag, {static_cast<std::uint8_t>(io.id())});
    const Inbox& in = io.sync();
    received[io.id()] = static_cast<int>(in.with_tag(tag).size());
  }));
  for (int i = 0; i < n; ++i) EXPECT_EQ(received[i], n) << i;
  EXPECT_EQ(cluster.comm().messages,
            static_cast<std::uint64_t>(n) * (n - 1));
}

TEST(ClusterStressTest, ManySequentialRounds) {
  // A thousand lockstep rounds: barrier plumbing stays consistent.
  const int n = 5;
  Cluster cluster(n, 1, 2);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    const std::uint32_t tag = make_tag(ProtoId::kApp, 1, 0);
    for (int round = 0; round < 1000; ++round) {
      io.send((io.id() + 1) % io.n(), tag, {1});
      const Inbox& in = io.sync();
      ASSERT_EQ(in.with_tag(tag).size(), 1u);
    }
  }));
  EXPECT_EQ(cluster.comm().rounds, 1000u);
}

}  // namespace
}  // namespace dprbg
