// Tests for Batch-VSS (Fig. 3): completeness over M sharings, soundness
// against one bad polynomial hidden in a batch (Lemma 3), amortized cost
// (Lemma 4 / Corollary 1).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"
#include "vss/batch_vss.h"

namespace dprbg {
namespace {

using F = GF2_64;

std::vector<Polynomial<F>> make_polys(unsigned m, unsigned deg,
                                      std::uint64_t seed) {
  Chacha rng(seed, 777);
  std::vector<Polynomial<F>> polys;
  for (unsigned j = 0; j < m; ++j) polys.push_back(Polynomial<F>::random(deg, rng));
  return polys;
}

std::vector<std::optional<BatchVssOutcome<F>>> run_batch(
    int n, int t, std::uint64_t seed, const std::vector<Polynomial<F>>& polys,
    unsigned m) {
  auto coins = trusted_dealer_coins<F>(n, t, 1, seed);
  std::vector<std::optional<BatchVssOutcome<F>>> outcomes(n);
  Cluster cluster(n, t, seed);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::span<const Polynomial<F>> mine;
    if (io.id() == 0) mine = polys;
    outcomes[io.id()] =
        batch_vss<F>(io, 0, t, m, mine, coins[io.id()][0]);
  }));
  return outcomes;
}

TEST(BatchVssTest, HonestBatchAccepted) {
  for (unsigned m : {1u, 4u, 32u}) {
    const auto polys = make_polys(m, 2, m);
    const auto outcomes = run_batch(7, 2, m, polys, m);
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(outcomes[i].has_value());
      EXPECT_TRUE(outcomes[i]->accepted) << "m=" << m << " player " << i;
    }
  }
}

TEST(BatchVssTest, SharesMatchAllPolynomials) {
  const unsigned m = 8;
  const auto polys = make_polys(m, 2, 50);
  const auto outcomes = run_batch(7, 2, 50, polys, m);
  for (int i = 0; i < 7; ++i) {
    ASSERT_EQ(outcomes[i]->shares.size(), m);
    for (unsigned j = 0; j < m; ++j) {
      EXPECT_EQ(outcomes[i]->shares[j], polys[j](eval_point<F>(i)));
    }
  }
}

TEST(BatchVssTest, OneBadPolynomialSpoilsBatch) {
  // 15 good degree-2 polynomials + 1 of degree 4 anywhere in the batch.
  for (unsigned bad_pos : {0u, 7u, 15u}) {
    auto polys = make_polys(16, 2, 60 + bad_pos);
    Chacha rng(99 + bad_pos, 3);
    polys[bad_pos] = Polynomial<F>::random(4, rng);
    const auto outcomes = run_batch(7, 2, 60 + bad_pos, polys, 16);
    for (int i = 0; i < 7; ++i) {
      EXPECT_FALSE(outcomes[i]->accepted)
          << "bad_pos=" << bad_pos << " player " << i;
    }
  }
}

TEST(BatchVssTest, AllBadPolynomialsRejected) {
  const auto polys = make_polys(8, 5, 70);  // all degree 5 > t = 2
  const auto outcomes = run_batch(7, 2, 70, polys, 8);
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(outcomes[i]->accepted);
}

TEST(BatchVssTest, BatchCombineIsHornerOfPowers) {
  // batch_combine(shares, r) = sum_j shares[j-1] * r^j (Fig. 3 step 2).
  Chacha rng(1);
  std::vector<F> shares;
  for (int j = 0; j < 6; ++j) shares.push_back(random_element<F>(rng));
  const F r = random_element<F>(rng);
  F expected = F::zero();
  F rp = F::one();
  for (int j = 0; j < 6; ++j) {
    rp = rp * r;
    expected = expected + shares[j] * rp;
  }
  EXPECT_EQ(batch_combine<F>(shares, r), expected);
}

TEST(BatchVssTest, CommunicationIndependentOfM) {
  // Lemma 4: the verification traffic (combination broadcast) does not
  // grow with M; only the one-time distribution does.
  auto comm_for = [&](unsigned m) {
    const auto polys = make_polys(m, 2, 80 + m);
    auto coins = trusted_dealer_coins<F>(7, 2, 1, 80 + m);
    Cluster cluster(7, 2, 80 + m);
    cluster.run(std::vector<Cluster::Program>(7, [&](PartyIo& io) {
      std::span<const Polynomial<F>> mine;
      if (io.id() == 0) mine = polys;
      (void)batch_vss<F>(io, 0, 2, m, mine, coins[io.id()][0]);
    }));
    return cluster.comm();
  };
  const auto small = comm_for(2);
  const auto large = comm_for(64);
  // Message *count* identical; byte growth only from the dealer's
  // distribution (6 messages of ~64*8 bytes).
  EXPECT_EQ(small.messages, large.messages);
  EXPECT_LT(large.bytes - small.bytes, 64u * 8u * 7u);
}

TEST(BatchVssTest, InterpolationCountIndependentOfM) {
  // Corollary 1: 2 interpolations however large the batch.
  const unsigned m = 128;
  const auto polys = make_polys(m, 2, 90);
  auto coins = trusted_dealer_coins<F>(7, 2, 1, 90);
  Cluster cluster(7, 2, 90);
  cluster.run(std::vector<Cluster::Program>(7, [&](PartyIo& io) {
    std::span<const Polynomial<F>> mine;
    if (io.id() == 0) mine = polys;
    (void)batch_vss<F>(io, 0, 2, m, mine, coins[io.id()][0]);
  }));
  for (int i = 0; i < 7; ++i) {
    EXPECT_LE(cluster.per_player_field_ops()[i].interpolations, 2u);
  }
}

TEST(BatchVssTest, TruncatedShareVectorHandled) {
  // Dealer sends fewer than M shares to one player: that player's row is
  // zeroed and (being inconsistent with other players' combinations) the
  // batch is rejected by everyone... except the dealer *is* inconsistent,
  // so rejection is the correct outcome for the cheated player; the other
  // players still see a valid combination from >= n - t players and may
  // accept. Assert no crash and a unanimous decision among honest
  // non-cheated players.
  const int n = 7, t = 2;
  const unsigned m = 4;
  const auto polys = make_polys(m, 2, 95);
  auto coins = trusted_dealer_coins<F>(n, t, 1, 95);
  std::vector<std::optional<BatchVssOutcome<F>>> outcomes(n);
  Cluster cluster(n, t, 95);
  cluster.run(
      [&](PartyIo& io) {
        outcomes[io.id()] = batch_vss<F>(io, 0, t, m, {}, coins[io.id()][0]);
      },
      {0},
      [&](PartyIo& io) {
        // Dealer: correct shares to everyone except player 3, who gets a
        // truncated vector.
        for (int i = 0; i < io.n(); ++i) {
          ByteWriter w;
          const unsigned count = (i == 3) ? m - 1 : m;
          for (unsigned j = 0; j < count; ++j) {
            write_elem(w, polys[j](eval_point<F>(i)));
          }
          io.send(i, make_tag(ProtoId::kBatchVss, 0, 0), std::move(w).take());
        }
        (void)coin_expose<F>(io, coins[io.id()][0]);
        ByteWriter w;
        write_elem(w, batch_combine<F>(
                          std::vector<F>{polys[0](eval_point<F>(0)),
                                         polys[1](eval_point<F>(0)),
                                         polys[2](eval_point<F>(0)),
                                         polys[3](eval_point<F>(0))},
                          F::zero()));
        io.sync();
      });
  // Honest players (1,2,4,5,6) all decide; player 3's row was zeroed but
  // the other 5 >= n - t combinations still certify the sharing.
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(outcomes[i].has_value()) << i;
  }
}

}  // namespace
}  // namespace dprbg
