// Tests driving the protocol stack with the reusable adversary library
// (net/adversary.h): every standard behaviour against the D-PRBG.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "dprbg/dprbg.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/adversary.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

// Runs a D-PRBG stream with the given adversary on players {2, 9} and
// asserts honest unanimity.
void expect_stream_survives(const Cluster::Program& adversary,
                            std::uint64_t seed) {
  const int n = 13, t = 2;
  const int kDraws = 12;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, seed);
  std::vector<std::vector<std::optional<F>>> streams(n);
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        DPrbg<F>::Options opts;
        opts.batch_size = 10;
        opts.reserve = 4;
        DPrbg<F> prbg(opts, genesis[io.id()]);
        for (int d = 0; d < kDraws; ++d) {
          streams[io.id()].push_back(prbg.next_coin(io));
        }
      },
      {2, 9}, adversary);
  for (int d = 0; d < kDraws; ++d) {
    std::optional<F> ref;
    for (int i = 0; i < n; ++i) {
      if (i == 2 || i == 9) continue;
      ASSERT_TRUE(streams[i][d].has_value())
          << "player " << i << " draw " << d;
      if (!ref) ref = *streams[i][d];
      EXPECT_EQ(*streams[i][d], *ref) << "player " << i << " draw " << d;
    }
  }
}

TEST(AdversaryLibTest, CrashAdversary) {
  expect_stream_survives(crash_adversary(), 1);
}

TEST(AdversaryLibTest, NoiseAdversary) {
  expect_stream_survives(noise_adversary(/*rounds=*/150), 2);
}

TEST(AdversaryLibTest, ReplayAdversary) {
  expect_stream_survives(replay_adversary(/*rounds=*/150), 3);
}

TEST(AdversaryLibTest, SpamAdversary) {
  expect_stream_survives(
      spam_adversary(/*victim=*/0, make_tag(ProtoId::kCoinExpose, 0, 0),
                     /*rounds=*/150),
      4);
}

TEST(AdversaryLibTest, SleeperRunsPhasesThenCrashes) {
  const int n = 4, t = 1;
  const std::uint32_t tag = make_tag(ProtoId::kApp, 0, 0);
  std::vector<int> seen(n, 0);
  PhaseList phases = {
      [&](PartyIo& io) {
        io.send_all(tag, {1});
        io.sync();
      },
      [&](PartyIo& io) {
        io.send_all(tag, {2});
        io.sync();
      },
  };
  Cluster cluster(n, t, 5);
  cluster.run(
      [&](PartyIo& io) {
        for (int round = 0; round < 3; ++round) {
          io.send_all(tag, {9});
          const Inbox& in = io.sync();
          if (io.id() == 0 && in.from(3, tag) != nullptr) {
            ++seen[round];
          }
        }
      },
      {3}, sleeper_adversary(std::move(phases), /*phases_to_run=*/1));
  // The sleeper participated in round 0 only.
  EXPECT_EQ(seen[0], 1);
  EXPECT_EQ(seen[1], 0);
  EXPECT_EQ(seen[2], 0);
}

TEST(AdversaryLibTest, NoiseDoesNotCorruptMetricsBeyondBytes) {
  // The adversary's traffic is visible in the cluster's comm counters
  // (bytes rise) but never in honest players' field-op counters.
  const int n = 7, t = 1;
  Cluster quiet(n, t, 6);
  quiet.run(std::vector<Cluster::Program>(n, [](PartyIo& io) {
    for (int r = 0; r < 10; ++r) io.sync();
  }));
  const auto quiet_bytes = quiet.comm().bytes;

  Cluster noisy(n, t, 6);
  noisy.run(
      [&](PartyIo& io) {
        for (int r = 0; r < 10; ++r) io.sync();
      },
      {0}, noise_adversary(10));
  EXPECT_GT(noisy.comm().bytes, quiet_bytes);
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(noisy.per_player_field_ops()[i].muls, 0u);
  }
}

}  // namespace
}  // namespace dprbg
