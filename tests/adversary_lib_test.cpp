// Tests driving the protocol stack with the reusable adversary library
// (net/adversary.h): every standard behaviour against the D-PRBG.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/dprbg.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/adversary.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

// Runs a D-PRBG stream with the given adversary on players {2, 9} and
// asserts honest unanimity.
void expect_stream_survives(const Cluster::Program& adversary,
                            std::uint64_t seed) {
  const int n = 13, t = 2;
  const int kDraws = 12;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, seed);
  std::vector<std::vector<std::optional<F>>> streams(n);
  Cluster cluster(n, t, seed);
  cluster.run(
      [&](PartyIo& io) {
        DPrbg<F>::Options opts;
        opts.batch_size = 10;
        opts.reserve = 4;
        DPrbg<F> prbg(opts, genesis[io.id()]);
        for (int d = 0; d < kDraws; ++d) {
          streams[io.id()].push_back(prbg.next_coin(io));
        }
      },
      {2, 9}, adversary);
  for (int d = 0; d < kDraws; ++d) {
    std::optional<F> ref;
    for (int i = 0; i < n; ++i) {
      if (i == 2 || i == 9) continue;
      ASSERT_TRUE(streams[i][d].has_value())
          << "player " << i << " draw " << d;
      if (!ref) ref = *streams[i][d];
      EXPECT_EQ(*streams[i][d], *ref) << "player " << i << " draw " << d;
    }
  }
}

TEST(AdversaryLibTest, CrashAdversary) {
  expect_stream_survives(crash_adversary(), 1);
}

TEST(AdversaryLibTest, NoiseAdversary) {
  expect_stream_survives(noise_adversary(/*rounds=*/150), 2);
}

TEST(AdversaryLibTest, ReplayAdversary) {
  expect_stream_survives(replay_adversary(/*rounds=*/150), 3);
}

TEST(AdversaryLibTest, SpamAdversary) {
  expect_stream_survives(
      spam_adversary(/*victim=*/0, make_tag(ProtoId::kCoinExpose, 0, 0),
                     /*rounds=*/150),
      4);
}

TEST(AdversaryLibTest, SleeperRunsPhasesThenCrashes) {
  const int n = 4, t = 1;
  const std::uint32_t tag = make_tag(ProtoId::kApp, 0, 0);
  std::vector<int> seen(n, 0);
  PhaseList phases = {
      [&](PartyIo& io) {
        io.send_all(tag, {1});
        io.sync();
      },
      [&](PartyIo& io) {
        io.send_all(tag, {2});
        io.sync();
      },
  };
  Cluster cluster(n, t, 5);
  cluster.run(
      [&](PartyIo& io) {
        for (int round = 0; round < 3; ++round) {
          io.send_all(tag, {9});
          const Inbox& in = io.sync();
          if (io.id() == 0 && in.from(3, tag) != nullptr) {
            ++seen[round];
          }
        }
      },
      {3}, sleeper_adversary(std::move(phases), /*phases_to_run=*/1));
  // The sleeper participated in round 0 only.
  EXPECT_EQ(seen[0], 1);
  EXPECT_EQ(seen[1], 0);
  EXPECT_EQ(seen[2], 0);
}

TEST(AdversaryLibTest, SilentAdversaryIsOmissionNotCrash) {
  // Omission faults (alive in every barrier, never sending) must be no
  // worse than crashes for the honest players.
  expect_stream_survives(silent_adversary(/*rounds=*/150), 7);
}

TEST(AdversaryLibTest, CoinGenDealerCrashesMidProtocol) {
  // A dealer that runs Coin-Gen's steps 1-3 (its own Bit-Gen instance,
  // honestly) and then dies *before* the grade-cast of cliques — the
  // nastiest crash point: its instance decodes everywhere and may appear
  // in honest cliques, but it never announces a clique of its own and
  // never votes. Honest players must still agree, and with only this one
  // fault (t = 1) the run must succeed.
  const int n = 7;
  const unsigned t = 1;
  const unsigned m = 2;
  const int crasher = 5;
  const std::uint64_t seed = 11;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, seed);
  std::vector<CoinGenResult<F>> results(n);
  std::vector<std::vector<std::optional<F>>> coins(
      n, std::vector<std::optional<F>>(m));

  PhaseList dealer_phases = {[&](PartyIo& io) {
    // Steps 1-3 of coin_gen, verbatim: challenge + honest Bit-Gen.
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    const SealedCoin<F> challenge = pool.take();
    const unsigned m_total = m + 1;
    std::vector<Polynomial<F>> my_polys;
    for (unsigned j = 0; j < m_total; ++j) {
      my_polys.push_back(Polynomial<F>::random(t, io.rng()));
    }
    bit_gen_all<F>(io, my_polys, m_total, t, challenge, /*instance=*/0);
    // ...and crash here, before grade_cast_all.
  }};

  Cluster cluster(n, static_cast<int>(t), seed);
  cluster.run(
      [&](PartyIo& io) {
        CoinPool<F> pool;
        for (auto& c : genesis[io.id()]) pool.add(std::move(c));
        results[io.id()] = coin_gen<F>(io, m, pool);
        if (!results[io.id()].success) return;
        const auto sealed = results[io.id()].sealed_coins(t);
        for (unsigned h = 0; h < m; ++h) {
          const SealedCoin<F> coin = h < sealed.size()
                                         ? sealed[h]
                                         : SealedCoin<F>{std::nullopt, t};
          coins[io.id()][h] = coin_expose<F>(io, coin, /*instance=*/100 + h);
        }
      },
      {crasher}, sleeper_adversary(std::move(dealer_phases), 1));

  int ref = crasher == 0 ? 1 : 0;
  EXPECT_TRUE(results[ref].success);
  for (int i = 0; i < n; ++i) {
    if (i == crasher) continue;
    EXPECT_EQ(results[i].success, results[ref].success) << "player " << i;
    EXPECT_EQ(results[i].clique, results[ref].clique) << "player " << i;
    EXPECT_EQ(results[i].summed_dealers, results[ref].summed_dealers)
        << "player " << i;
    for (unsigned h = 0; h < m; ++h) {
      ASSERT_TRUE(coins[i][h].has_value()) << "player " << i << " coin " << h;
      EXPECT_EQ(*coins[i][h], *coins[ref][h]) << "player " << i;
    }
  }
}

TEST(AdversaryLibTest, NoiseDoesNotCorruptMetricsBeyondBytes) {
  // The adversary's traffic is visible in the cluster's comm counters
  // (bytes rise) but never in honest players' field-op counters.
  const int n = 7, t = 1;
  Cluster quiet(n, t, 6);
  quiet.run(std::vector<Cluster::Program>(n, [](PartyIo& io) {
    for (int r = 0; r < 10; ++r) io.sync();
  }));
  const auto quiet_bytes = quiet.comm().bytes;

  Cluster noisy(n, t, 6);
  noisy.run(
      [&](PartyIo& io) {
        for (int r = 0; r < 10; ++r) io.sync();
      },
      {0}, noise_adversary(10));
  EXPECT_GT(noisy.comm().bytes, quiet_bytes);
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(noisy.per_player_field_ops()[i].muls, 0u);
  }
}

}  // namespace
}  // namespace dprbg
