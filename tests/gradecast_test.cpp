// Tests for Grade-Cast [14]: honest-sender confidence 2, the conf-2 =>
// common-value property, equivocation downgrades, parallel instances.

#include <gtest/gtest.h>

#include <vector>

#include "common/serial.h"
#include "gradecast/gradecast.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

TEST(GradeCastTest, HonestSenderFullConfidence) {
  const int n = 7, t = 2;
  std::vector<GradeCastResult> results(n);
  Cluster cluster(n, t, 1);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    results[io.id()] = grade_cast(io, /*sender=*/3, bytes({0xAA, 0xBB}));
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(results[i].confidence, 2) << "player " << i;
    EXPECT_EQ(results[i].value, bytes({0xAA, 0xBB}));
  }
}

TEST(GradeCastTest, SilentSenderZeroConfidence) {
  const int n = 7, t = 2;
  std::vector<GradeCastResult> results(n);
  Cluster cluster(n, t, 2);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = grade_cast(io, /*sender=*/0, {});
      },
      {0}, nullptr);
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(results[i].confidence, 0) << "player " << i;
  }
}

TEST(GradeCastTest, EquivocatingSenderNeverSplitsValues) {
  // The sender sends different values to two halves. Whatever happens,
  // no two honest players may output *different* values both with
  // confidence >= 1.
  const int n = 7, t = 2;
  std::vector<GradeCastResult> results(n);
  Cluster cluster(n, t, 3);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = grade_cast(io, 0, {});
      },
      {0},
      [&](PartyIo& io) {
        // Equivocate in round 1, then echo like an honest player would.
        const auto tag0 = make_tag(ProtoId::kGradeCast, 0, 0);
        for (int to = 0; to < io.n(); ++to) {
          io.send(to, tag0, to % 2 == 0 ? bytes({1}) : bytes({2}));
        }
        io.sync();
        io.sync();
        io.sync();
      });
  for (int i = 1; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (results[i].confidence >= 1 && results[j].confidence >= 1) {
        EXPECT_EQ(results[i].value, results[j].value)
            << "players " << i << "," << j;
      }
    }
  }
  // With a 4/3 split and t = 2, no value can reach the n - t echo
  // threshold, so nobody should reach confidence 2.
  for (int i = 1; i < n; ++i) EXPECT_LT(results[i].confidence, 2);
}

TEST(GradeCastTest, Confidence2ImpliesAllHonestAtLeast1) {
  // Faulty players echo garbage; sender honest. Some honest players may
  // drop to confidence < 2? (They cannot here: honest echoes alone reach
  // n - t.) Then assert the graded-consistency property.
  const int n = 7, t = 2;
  std::vector<GradeCastResult> results(n);
  Cluster cluster(n, t, 4);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = grade_cast(io, 3, bytes({0x42}));
      },
      {1, 5},
      [&](PartyIo& io) {
        io.sync();  // receive value
        // Echo a wrong value for every sender, then support it too
        // (batched wire format: per sender, presence flag + u32 length +
        // value).
        ByteWriter lie;
        for (int s = 0; s < io.n(); ++s) {
          lie.u8(1);
          lie.u32(1);
          lie.u8(0x13);
        }
        io.send_all(make_tag(ProtoId::kGradeCast, 0, 1), lie.data());
        io.sync();
        io.send_all(make_tag(ProtoId::kGradeCast, 0, 2), lie.data());
        io.sync();
      });
  bool some_conf2 = false;
  for (int i = 0; i < n; ++i) {
    if (i == 1 || i == 5) continue;
    if (results[i].confidence == 2) some_conf2 = true;
  }
  ASSERT_TRUE(some_conf2);
  for (int i = 0; i < n; ++i) {
    if (i == 1 || i == 5) continue;
    EXPECT_GE(results[i].confidence, 1) << "player " << i;
    EXPECT_EQ(results[i].value, bytes({0x42}));
  }
}

TEST(GradeCastTest, AllSendersInParallel) {
  const int n = 7, t = 2;
  std::vector<std::vector<GradeCastResult>> results(n);
  Cluster cluster(n, t, 5);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    results[io.id()] = grade_cast_all(
        io, bytes({static_cast<std::uint8_t>(0x10 + io.id())}));
  }));
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(results[i].size(), static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(results[i][s].confidence, 2);
      EXPECT_EQ(results[i][s].value,
                bytes({static_cast<std::uint8_t>(0x10 + s)}));
    }
  }
}

TEST(GradeCastTest, OversizedValueTreatedAsAbsent) {
  const int n = 4, t = 1;
  std::vector<GradeCastResult> results(n);
  Cluster cluster(n, t, 6);
  cluster.run(
      [&](PartyIo& io) {
        results[io.id()] = grade_cast(io, 0, {});
      },
      {0},
      [&](PartyIo& io) {
        io.send_all(make_tag(ProtoId::kGradeCast, 0, 0),
                    std::vector<std::uint8_t>((1u << 20) + 1, 0x77));
        io.sync();
        io.sync();
        io.sync();
      });
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(results[i].confidence, 0);
  }
}

TEST(GradeCastTest, SequentialInstancesIndependent) {
  const int n = 4, t = 1;
  std::vector<GradeCastResult> first(n), second(n);
  Cluster cluster(n, t, 7);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    first[io.id()] = grade_cast(io, 0, bytes({1}), /*instance=*/0);
    second[io.id()] = grade_cast(io, 0, bytes({2}), /*instance=*/1);
  }));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(first[i].value, bytes({1}));
    EXPECT_EQ(second[i].value, bytes({2}));
  }
}

}  // namespace
}  // namespace dprbg
