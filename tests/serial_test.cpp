// Tests for defensive serialization (ByteWriter/ByteReader) and field
// element I/O.

#include <gtest/gtest.h>

#include <vector>

#include "common/serial.h"
#include "gf/field_io.h"
#include "gf/gf2.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

TEST(SerialTest, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.done());
}

TEST(SerialTest, RoundTripU64Vector) {
  ByteWriter w;
  const std::vector<std::uint64_t> v = {1, 2, 3, 0xFFFFFFFFFFFFFFFFull};
  w.u64_vec(v);
  ByteReader r(w.data());
  EXPECT_EQ(r.u64_vec(), v);
  EXPECT_TRUE(r.done());
}

TEST(SerialTest, EmptyVectorRoundTrip) {
  ByteWriter w;
  w.u64_vec({});
  ByteReader r(w.data());
  EXPECT_TRUE(r.u64_vec().empty());
  EXPECT_TRUE(r.done());
}

TEST(SerialTest, TruncatedInputFailsGracefully) {
  ByteWriter w;
  w.u64(42);
  auto bytes = w.data();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_EQ(r.u64(), 0u);  // failed read returns zero
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
}

TEST(SerialTest, OversizedVectorLengthRejected) {
  // A Byzantine sender claims a 2^31-element vector in a 10-byte message.
  ByteWriter w;
  w.u32(0x80000000u);
  w.u32(0);
  ByteReader r(w.data());
  EXPECT_TRUE(r.u64_vec().empty());
  EXPECT_FALSE(r.ok());
}

TEST(SerialTest, ReadPastEndStaysFailed) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u64(), 0u);  // still zero, no UB
  EXPECT_FALSE(r.ok());
}

TEST(SerialTest, DoneDetectsTrailingGarbage) {
  ByteWriter w;
  w.u32(7);
  w.u8(99);  // trailing byte the decoder does not expect
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.done());
}

template <typename F>
class FieldIoTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<GF2_8, GF2_16, GF2_32, GF2<40>, GF2_64>;
TYPED_TEST_SUITE(FieldIoTest, FieldTypes);

TYPED_TEST(FieldIoTest, ElementRoundTrip) {
  Chacha rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto e = random_element<TypeParam>(rng);
    ByteWriter w;
    write_elem(w, e);
    EXPECT_EQ(w.size(), TypeParam::kBytes);
    ByteReader r(w.data());
    EXPECT_EQ(read_elem<TypeParam>(r), e);
    EXPECT_TRUE(r.done());
  }
}

TYPED_TEST(FieldIoTest, WireSizeMatchesSecurityParameter) {
  // A k-bit share costs ceil(k/8) bytes on the wire, matching the paper's
  // "messages of size k" accounting.
  EXPECT_EQ(TypeParam::kBytes, (TypeParam::kBits + 7) / 8);
}

TEST(FieldIoTest, TruncatedElementFails) {
  ByteWriter w;
  write_elem(w, GF2_64::from_uint(12345));
  auto bytes = w.data();
  bytes.resize(4);
  ByteReader r(bytes);
  (void)read_elem<GF2_64>(r);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace dprbg
