// Tests for the paper's special field GF(q^l) (Section 2 construction).

#include <gtest/gtest.h>

#include "gf/fft_field.h"
#include "gf/zq.h"
#include "rng/chacha.h"

namespace dprbg {
namespace {

FftElem random_elem(const FftField& f, Chacha& rng) {
  std::uint32_t words[FftElem::kMaxL];
  for (unsigned i = 0; i < f.l(); ++i) words[i] = rng.next_u32();
  return f.from_words(words);
}

TEST(ZqTest, PrimalityCheck) {
  EXPECT_TRUE(Zq::is_prime(2));
  EXPECT_TRUE(Zq::is_prime(17));
  EXPECT_TRUE(Zq::is_prime(257));
  EXPECT_TRUE(Zq::is_prime(65537));
  EXPECT_FALSE(Zq::is_prime(1));
  EXPECT_FALSE(Zq::is_prime(91));   // 7 * 13
  EXPECT_FALSE(Zq::is_prime(65535));
}

TEST(ZqTest, TabulatedArithmeticMatchesDirect) {
  const Zq small(257);  // tabulated
  ASSERT_TRUE(small.tabulated());
  for (std::uint32_t a = 0; a < 257; a += 13) {
    for (std::uint32_t b = 0; b < 257; b += 17) {
      EXPECT_EQ(small.mul(a, b), (a * b) % 257);
      EXPECT_EQ(small.add(a, b), (a + b) % 257);
      EXPECT_EQ(small.sub(a, b), (a + 257 - b) % 257);
    }
  }
}

TEST(ZqTest, InverseAndPow) {
  const Zq zq(101);
  for (std::uint32_t a = 1; a < 101; ++a) {
    EXPECT_EQ(zq.mul(a, zq.inv(a)), 1u);
  }
  EXPECT_EQ(zq.pow(2, 100), 1u);  // Fermat
}

TEST(ZqTest, GeneratorHasFullOrder) {
  const Zq zq(97);
  const std::uint32_t g = zq.find_generator();
  // Order of g must be exactly 96: g^96 = 1 and g^(96/p) != 1 for p | 96.
  EXPECT_EQ(zq.pow(g, 96), 1u);
  EXPECT_NE(zq.pow(g, 48), 1u);
  EXPECT_NE(zq.pow(g, 32), 1u);
}

TEST(ZqTest, RootOfUnityExactOrder) {
  const Zq zq(97);  // 96 = 2^5 * 3
  const std::uint32_t w = zq.root_of_unity(32);
  EXPECT_EQ(zq.pow(w, 32), 1u);
  EXPECT_NE(zq.pow(w, 16), 1u);
}

class FftFieldTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FftFieldTest, ConstructionSatisfiesPaperConstraints) {
  const unsigned l = GetParam();
  const FftField f(l);
  // Paper: q prime, q >= 2l + 1.
  EXPECT_TRUE(Zq::is_prime(f.q()));
  EXPECT_GE(f.q(), 2 * l + 1);
  EXPECT_EQ(f.modulus().size(), l);
}

TEST_P(FftFieldTest, NttAndNaiveMultiplicationAgree) {
  const unsigned l = GetParam();
  const FftField f(l);
  Chacha rng(42 + l);
  for (int i = 0; i < 50; ++i) {
    const FftElem a = random_elem(f, rng);
    const FftElem b = random_elem(f, rng);
    EXPECT_EQ(f.mul(a, b), f.mul_naive(a, b));
  }
}

TEST_P(FftFieldTest, FieldAxioms) {
  const unsigned l = GetParam();
  const FftField f(l);
  Chacha rng(7 + l);
  for (int i = 0; i < 30; ++i) {
    const FftElem a = random_elem(f, rng);
    const FftElem b = random_elem(f, rng);
    const FftElem c = random_elem(f, rng);
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.add(a, f.neg(a)), f.zero());
    EXPECT_EQ(f.mul(a, f.one()), a);
  }
}

TEST_P(FftFieldTest, InverseRoundTrip) {
  const unsigned l = GetParam();
  const FftField f(l);
  Chacha rng(99 + l);
  for (int i = 0; i < 20; ++i) {
    FftElem a = random_elem(f, rng);
    if (f.is_zero(a)) continue;
    EXPECT_EQ(f.mul(a, f.inv(a)), f.one());
  }
}

TEST_P(FftFieldTest, NoZeroDivisors) {
  const unsigned l = GetParam();
  const FftField f(l);
  Chacha rng(123 + l);
  for (int i = 0; i < 30; ++i) {
    FftElem a = random_elem(f, rng);
    FftElem b = random_elem(f, rng);
    if (f.is_zero(a) || f.is_zero(b)) continue;
    EXPECT_FALSE(f.is_zero(f.mul(a, b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftFieldTest,
                         ::testing::Values(2u, 3u, 4u, 8u, 16u, 32u, 64u, 128u));

TEST(FftFieldTest, SecurityParameterGrowsWithL) {
  const FftField small(8);
  const FftField large(32);
  EXPECT_GT(large.bits(), small.bits());
  EXPECT_GE(small.bits(), 8.0);  // q >= 17 => >= ~4 bits per coefficient
}

TEST(FftFieldTest, DeterministicConstruction) {
  const FftField a(16, 123);
  const FftField b(16, 123);
  EXPECT_EQ(a.q(), b.q());
  EXPECT_EQ(a.modulus(), b.modulus());
}

// --- Wide-batch compute engine additions (DESIGN.md §14) ---

// Randomized ring properties of the NTT multiply checked against
// schoolbook as the independent oracle: associativity and distributivity
// computed with mul() must equal the same expressions computed with
// mul_naive().
TEST_P(FftFieldTest, NttRingPropertiesMatchSchoolbook) {
  const unsigned l = GetParam();
  const FftField f(l);
  Chacha rng(2024 + l);
  for (int i = 0; i < 20; ++i) {
    const FftElem a = random_elem(f, rng);
    const FftElem b = random_elem(f, rng);
    const FftElem c = random_elem(f, rng);
    EXPECT_EQ(f.mul(f.mul(a, b), c),
              f.mul_naive(f.mul_naive(a, b), c));
    EXPECT_EQ(f.mul(a, f.add(b, c)),
              f.add(f.mul_naive(a, b), f.mul_naive(a, c)));
  }
}

// Forward-then-inverse NTT is the identity, at every supported l (each l
// exercises a different transform size / twiddle-stage table).
TEST_P(FftFieldTest, NttRoundTripIsIdentity) {
  const unsigned l = GetParam();
  const FftField f(l);
  Chacha rng(31337 + l);
  for (int i = 0; i < 10; ++i) {
    std::vector<std::uint32_t> a(f.ntt_size());
    for (auto& x : a) x = rng.next_u32() % f.q();
    const std::vector<std::uint32_t> orig = a;
    f.ntt(a, /*inverse=*/false);
    f.ntt(a, /*inverse=*/true);
    EXPECT_EQ(a, orig) << "l=" << l;
  }
}

// mul_auto agrees with both explicit paths on both sides of the
// crossover (it IS one of them, and the two agree with each other).
TEST_P(FftFieldTest, MulAutoAgreesWithExplicitPaths) {
  const unsigned l = GetParam();
  const FftField f(l);
  Chacha rng(555 + l);
  for (int i = 0; i < 20; ++i) {
    const FftElem a = random_elem(f, rng);
    const FftElem b = random_elem(f, rng);
    const FftElem expect = f.mul_naive(a, b);
    EXPECT_EQ(f.mul_auto(a, b), expect);
  }
}

TEST_P(FftFieldTest, MulBatchMatchesElementwise) {
  const unsigned l = GetParam();
  const FftField f(l);
  Chacha rng(777 + l);
  std::vector<FftElem> a, b;
  for (int i = 0; i < 33; ++i) {
    a.push_back(random_elem(f, rng));
    b.push_back(random_elem(f, rng));
  }
  std::vector<FftElem> out(a.size());
  f.mul_batch(a, b, out);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(out[i], f.mul_auto(a[i], b[i])) << "i=" << i;
  }
}

// The transform size contract: ntt() rejects buffers that are not
// exactly ntt_size() (in particular non-power-of-two sizes).
TEST(FftFieldDeathTest, NttRejectsWrongSizes) {
  const FftField f(16);
  std::vector<std::uint32_t> wrong(f.ntt_size() - 1, 0);
  EXPECT_DEATH(f.ntt(wrong, false), "DPRBG_CHECK");
  std::vector<std::uint32_t> odd(f.ntt_size() + 3, 0);
  EXPECT_DEATH(f.ntt(odd, true), "DPRBG_CHECK");
  std::vector<std::uint32_t> empty;
  EXPECT_DEATH(f.ntt(empty, false), "DPRBG_CHECK");
}

TEST(FftFieldTest, CrossoverConstantIsInTestedRange) {
  // kNttCrossoverL is a benchmark-derived constant; keep it inside the
  // range the parameterized suites actually cover so both mul_auto arms
  // are exercised by the tests above.
  EXPECT_GE(FftField::kNttCrossoverL, 2u);
  EXPECT_LE(FftField::kNttCrossoverL, 128u);
}

}  // namespace
}  // namespace dprbg
