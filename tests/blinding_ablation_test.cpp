// Ablation: why Bit-Gen batches carry a blinding polynomial (DESIGN.md §3).
//
// Fig. 4 publishes the combination polynomial F(x) = sum_j r^j f_j(x)
// during verification; in particular F(0) = sum_j r^j s_j is public,
// where s_j are the batch's sealed secrets. Without blinding, once the
// first M-1 coins of the batch are exposed the last one is *computable*:
//
//     s_M = (F(0) - sum_{j<M} r^j s_j) / r^M.
//
// This test demonstrates the attack end-to-end (the prediction matches
// the actually exposed coin every time), and then shows that one extra
// random polynomial folded into the combination — the library's standard
// configuration — reduces the attacker to a blind guess (the same
// formula now mispredicts, because F(0) contains the never-exposed
// blinder term).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "coin/bitgen.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

namespace dprbg {
namespace {

using F = GF2_64;

struct BatchRun {
  F challenge = F::zero();
  F public_f0 = F::zero();           // F(0) from the decoded combination
  std::vector<F> exposed;            // coins revealed so far (order 1..M)
  F last_coin = F::zero();           // ground truth of the final coin
};

// Runs Bit-Gen for `m_total` polynomials (optionally with the first one
// acting as a blinder that is never exposed), then exposes all usable
// coins. Returns what a passive adversary sees: r, F(0), and the exposed
// prefix.
BatchRun run_batch(bool with_blinder, std::uint64_t seed) {
  const int n = 7, t = 1;
  const unsigned usable = 5;
  const unsigned m_total = usable + (with_blinder ? 1 : 0);
  auto genesis = trusted_dealer_coins<F>(n, t, 1, seed);
  Chacha dealer_rng(seed, 777);
  std::vector<Polynomial<F>> polys;
  for (unsigned j = 0; j < m_total; ++j) {
    polys.push_back(Polynomial<F>::random(t, dealer_rng));
  }
  BatchRun run;
  Cluster cluster(n, t, seed);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    std::span<const Polynomial<F>> mine;
    if (io.id() == 0) mine = polys;
    auto view =
        bit_gen_single<F>(io, 0, m_total, t, mine, genesis[io.id()][0]);
    ASSERT_TRUE(view.accepted());
    // Expose every usable coin (skipping the blinder when present).
    const unsigned first = with_blinder ? 1 : 0;
    for (unsigned j = first; j < m_total; ++j) {
      SealedCoin<F> coin{view.my_row.empty()
                             ? std::nullopt
                             : std::optional<F>(view.my_row[j]),
                         t};
      const auto value = coin_expose<F>(io, coin, 10 + j);
      ASSERT_TRUE(value.has_value());
      if (io.id() == 1) {
        run.exposed.push_back(*value);
      }
    }
    if (io.id() == 1) {
      run.public_f0 = (*view.poly)(F::zero());
      // Recover r the same way the adversary does: it participated in
      // the exposure. (Ground truth from the dealer polynomials.)
    }
  }));
  // r is public: recompute from the genesis sharing.
  std::vector<PointValue<F>> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({eval_point<F>(i), *genesis[i][0].share});
  }
  run.challenge = *reconstruct_secret<F>(pts, t, 0);
  run.last_coin = run.exposed.back();
  return run;
}

// The adversary's prediction of the last coin from F(0), r, and the
// exposed prefix, assuming the combination used powers r^1..r^M over the
// exposed coins only (i.e. no blinder).
F predict_last(const BatchRun& run, unsigned m_total_assumed) {
  F acc = run.public_f0;
  F rp = F::one();
  for (unsigned j = 0; j + 1 < run.exposed.size(); ++j) {
    rp = rp * run.challenge;  // r^(j+1)
    acc = acc - rp * run.exposed[j];
  }
  // Subtract nothing for the final coin; divide by its power.
  F r_last = F::one();
  for (unsigned j = 0; j < m_total_assumed; ++j) r_last = r_last * run.challenge;
  return acc / r_last;
}

TEST(BlindingAblationTest, WithoutBlinderLastCoinIsPredictable) {
  // The attack works on every seed: the "sealed" final coin is computable
  // from public data before it is exposed.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const BatchRun run = run_batch(/*with_blinder=*/false, seed);
    ASSERT_EQ(run.exposed.size(), 5u);
    EXPECT_EQ(predict_last(run, 5), run.last_coin) << "seed " << seed;
  }
}

TEST(BlindingAblationTest, WithBlinderPredictionFails) {
  // Same formula against the blinded batch: the blinder term r^1*g(0)
  // hides the relation; prediction succeeds only with probability 2^-64.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const BatchRun run = run_batch(/*with_blinder=*/true, seed);
    ASSERT_EQ(run.exposed.size(), 5u);
    // The adversary does not know the blinder exists at which index /
    // its value; try the two natural guesses — both must fail.
    EXPECT_NE(predict_last(run, 5), run.last_coin) << "seed " << seed;
    EXPECT_NE(predict_last(run, 6), run.last_coin) << "seed " << seed;
  }
}

TEST(BlindingAblationTest, CoinGenBatchesAreBlindedByDefault) {
  // coin_gen deals m+1 polynomials for m coins: verify via the seed-coin
  // accounting that m coins come out while the combination covered m+1
  // polynomials (the coin_shares vector has exactly m entries and the
  // blinder is never exposed anywhere in the API).
  const int n = 7, t = 1;
  auto genesis = trusted_dealer_coins<F>(n, t, 8, 99);
  Cluster cluster(n, t, 99);
  cluster.run(std::vector<Cluster::Program>(n, [&](PartyIo& io) {
    CoinPool<F> pool;
    for (auto& c : genesis[io.id()]) pool.add(std::move(c));
    const auto result = coin_gen<F>(io, /*m=*/6, pool);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.coin_shares.size(), 6u);
  }));
}

}  // namespace
}  // namespace dprbg
