// ChaCha20-based deterministic CSPRNG.
//
// The paper's model gives every player "a source of perfectly random
// bits", and Section 1.1 notes players may realize it with a local
// cryptographic pseudo-random generator. We use the ChaCha20 block
// function (Bernstein 2008) in counter mode: cryptographic quality,
// trivially seekable, and — crucially for a reproduction — fully
// deterministic under a fixed seed, so every experiment in this repo can
// be replayed bit-for-bit.

#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "gf/field_concept.h"

namespace dprbg {

class Chacha {
 public:
  // Seeds the generator. `stream` separates independent generators drawn
  // from the same seed (e.g. one per player).
  explicit Chacha(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  std::uint32_t next_u32() noexcept;
  std::uint64_t next_u64() noexcept;
  // Uniform in [0, bound) via rejection sampling (bound > 0).
  std::uint64_t uniform(std::uint64_t bound) noexcept;
  void fill_bytes(std::span<std::uint8_t> out) noexcept;

  // UniformRandomBitGenerator interface, so <random> utilities work too.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint32_t, 16> block_{};
  unsigned pos_ = 16;  // next word in block_; 16 = empty
};

// Uniform field element (all bit patterns of GF(2^m) are valid elements).
template <FiniteField F>
F random_element(Chacha& rng) {
  return F::from_uint(rng.next_u64());
}

// Uniform *nonzero* field element.
template <FiniteField F>
F random_nonzero(Chacha& rng) {
  while (true) {
    F e = random_element<F>(rng);
    if (!e.is_zero()) return e;
  }
}

}  // namespace dprbg
