#include "rng/chacha.h"

#include <bit>
#include <cstring>

namespace dprbg {

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b,
                          std::uint32_t& c, std::uint32_t& d) noexcept {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

}  // namespace

Chacha::Chacha(std::uint64_t seed, std::uint64_t stream) noexcept {
  // "expand 32-byte k" constants.
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  // 256-bit key derived from (seed, stream) by simple expansion; the goal
  // is deterministic independence between streams, not secrecy.
  std::uint64_t x = seed;
  for (int i = 0; i < 4; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x ^ (stream * 0xbf58476d1ce4e5b9ull + i);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    state_[4 + 2 * i] = static_cast<std::uint32_t>(z);
    state_[5 + 2 * i] = static_cast<std::uint32_t>(z >> 32);
  }
  // Counter (words 12-13) starts at zero; nonce (words 14-15) = stream.
  state_[12] = 0;
  state_[13] = 0;
  state_[14] = static_cast<std::uint32_t>(stream);
  state_[15] = static_cast<std::uint32_t>(stream >> 32);
}

void Chacha::refill() noexcept {
  block_ = state_;
  for (int round = 0; round < 10; ++round) {  // 20 rounds: 10 double-rounds
    quarter_round(block_[0], block_[4], block_[8], block_[12]);
    quarter_round(block_[1], block_[5], block_[9], block_[13]);
    quarter_round(block_[2], block_[6], block_[10], block_[14]);
    quarter_round(block_[3], block_[7], block_[11], block_[15]);
    quarter_round(block_[0], block_[5], block_[10], block_[15]);
    quarter_round(block_[1], block_[6], block_[11], block_[12]);
    quarter_round(block_[2], block_[7], block_[8], block_[13]);
    quarter_round(block_[3], block_[4], block_[9], block_[14]);
  }
  for (int i = 0; i < 16; ++i) block_[i] += state_[i];
  // 64-bit block counter.
  if (++state_[12] == 0) ++state_[13];
  pos_ = 0;
}

std::uint32_t Chacha::next_u32() noexcept {
  if (pos_ >= 16) refill();
  return block_[pos_++];
}

std::uint64_t Chacha::next_u64() noexcept {
  const std::uint64_t lo = next_u32();
  const std::uint64_t hi = next_u32();
  return lo | (hi << 32);
}

std::uint64_t Chacha::uniform(std::uint64_t bound) noexcept {
  // Rejection sampling: draw from the largest multiple of bound below 2^64.
  const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

void Chacha::fill_bytes(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i < out.size()) {
    const std::uint32_t w = next_u32();
    const std::size_t take = std::min<std::size_t>(4, out.size() - i);
    std::memcpy(out.data() + i, &w, take);
    i += take;
  }
}

}  // namespace dprbg
