// Sharded randomness beacon: K independent committees, one combined coin
// stream.
//
// The paper's protocols are fixed-n cliques with Omega(n^2) messages per
// round, so one cluster's coin throughput is capped by its slowest
// member's round trip. Sharding is the standard way out: partition N =
// K*n players into K committees (net/committee.h), run the full
// pipelined Coin-Gen machinery (coin/coin_pipeline.h) in each committee
// concurrently — each on its own stream slice, roster barrier, fault
// plan and trace scope — and combine the K per-committee coin streams
// into one global beacon output by field addition, which in GF(2^k) is
// exactly bitwise XOR.
//
// Soundness of the combination (DESIGN.md §11): each committee's coin is
// unpredictable to an adversary bounded by t faults *in that committee*
// (Lemma 1/Lemma 3 soundness of the underlying VSS batches). XOR of
// independent committee coins is uniform as long as at least one
// contributing committee is honest-majority, because XOR with an
// independent uniform value is uniform. The beacon therefore degrades
// gracefully: corrupting a whole committee biases nothing while any
// other committee stays within its fault bound.
//
// Determinism contract (tests/beacon_test.cpp): the beacon output is a
// pure function of Options{seed, committees, committee_size, ...} —
// independent of pipeline depth and of how the committee threads
// interleave in wall-clock. Two ingredients make this hold:
//   * every Coin-Gen batch always runs on its own committee-local round
//     stream 1+b (even at depth 1, where the pipelined scheduler would
//     otherwise degenerate to the caller's stream), so the rng streams
//     consumed per batch never depend on the overlap window;
//   * seed coins are charged per batch up front from a genesis pool
//     sized to exactly batches * (1 + leader_coins) coins, so every
//     batch's charge is the same contiguous pool block at any depth
//     (returned unspent coins land at the pool's tail and are never
//     re-charged).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "gf/field_concept.h"
#include "net/cluster.h"
#include "net/committee.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "coin/coin_pipeline.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"

namespace dprbg {

// Per-committee genesis entropy: disjoint dealer streams per committee,
// derived from the beacon seed with a SplitMix64-style mix.
inline std::uint64_t committee_seed(std::uint64_t seed, std::uint32_t c) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (c + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

template <FiniteField F>
class Beacon {
 public:
  struct Options {
    // K: number of committees; the cluster holds K * committee_size
    // players. Bounded by the stream slices fitting the uint16 wire
    // batch id (16 committees at the default stride of 4096).
    unsigned committees = 2;
    unsigned committee_size = 7;
    unsigned committee_t = 1;
    // M: coins minted per Coin-Gen batch.
    unsigned coins_per_batch = 4;
    // Coin-Gen batches per committee (each on its own round stream).
    unsigned batches = 4;
    // Pipeline window per committee (1 = serial; transcripts are
    // depth-invariant either way, see the header comment).
    unsigned depth = 2;
    unsigned leader_coins = 3;
    unsigned max_iterations = 16;
    std::uint64_t seed = 0xBEAC04ull;
    // Simulated one-way per-round link latency (Cluster contract).
    unsigned round_latency_us = 0;
  };

  struct CommitteeOutcome {
    // Exposed coin values, in batch-then-coin order; identical at every
    // member when `unanimous`.
    std::vector<F> coins;
    unsigned batches_ok = 0;
    unsigned seed_coins_used = 0;
    bool unanimous = true;
  };

  struct Output {
    bool success = false;
    // beacon[i] = sum over committees of committees[c].coins[i] (XOR in
    // GF(2^k)); length = the shortest committee stream.
    std::vector<F> beacon;
    std::vector<CommitteeOutcome> committees;
  };

  explicit Beacon(Options opts)
      : opts_(opts),
        cluster_(static_cast<int>(opts.committees * opts.committee_size),
                 static_cast<int>(opts.committee_t), opts.seed) {
    DPRBG_CHECK(opts_.committees >= 1);
    DPRBG_CHECK(opts_.batches >= 1);
    DPRBG_CHECK(opts_.committees * kStride <= 0x10000u);
    // batches+1 local streams per committee: root + one per batch.
    DPRBG_CHECK(opts_.batches + 1 <= kStride);
    cluster_.set_round_latency_us(opts_.round_latency_us);
    const int n = static_cast<int>(opts_.committee_size);
    for (unsigned c = 0; c < opts_.committees; ++c) {
      std::vector<int> members(n);
      for (int i = 0; i < n; ++i) members[i] = static_cast<int>(c) * n + i;
      Committee::Options copts;
      copts.id = c;
      copts.first_stream = c * kStride;
      copts.stream_count = kStride;
      copts.t = static_cast<int>(opts_.committee_t);
      committees_.push_back(std::make_unique<Committee>(
          cluster_, std::move(members), copts));
    }
  }

  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] Committee& committee(unsigned c) { return *committees_[c]; }
  [[nodiscard]] const Options& options() const { return opts_; }

  // Runs the full beacon round: per-committee pipelined Coin-Gen, then
  // committee-local exposure of every minted coin, then the XOR-combine.
  // Blocks until every committee finishes. May be called once per Beacon
  // (stream ids are not reused across runs).
  Output run() {
    const unsigned K = opts_.committees;
    const int n = static_cast<int>(opts_.committee_size);
    const unsigned genesis_count =
        opts_.batches * (1 + opts_.leader_coins);
    std::vector<std::vector<std::vector<SealedCoin<F>>>> genesis(K);
    for (unsigned c = 0; c < K; ++c) {
      genesis[c] = trusted_dealer_coins<F>(
          n, opts_.committee_t, static_cast<int>(genesis_count),
          committee_seed(opts_.seed, c));
    }

    const int total = static_cast<int>(K) * n;
    std::vector<std::vector<F>> exposed(total);
    std::vector<PipelineResult<F>> results(total);
    cluster_.run(std::vector<Cluster::Program>(
        static_cast<std::size_t>(total), [&](PartyIo& io) {
          const unsigned c = static_cast<unsigned>(io.id() / n);
          Endpoint& ep = committees_[c]->endpoint(io);
          CoinPool<F> pool;
          for (auto& coin : genesis[c][ep.id()]) pool.add(std::move(coin));
          PipelineResult<F> res = run_batches(ep, pool);
          // Expose every minted coin on the committee's root stream.
          // Coin-Gen decides batch success unanimously, so the exposure
          // instance counter stays aligned across the committee.
          std::vector<F> vals;
          unsigned idx = 0;
          for (const auto& batch : res.batches) {
            if (!batch.success) continue;
            for (const auto& coin :
                 batch.sealed_coins(opts_.committee_t)) {
              const auto v = coin_expose<F>(ep, coin, idx++);
              if (v) vals.push_back(*v);
            }
          }
          exposed[io.id()] = std::move(vals);
          results[io.id()] = std::move(res);
        }));

    Output out;
    out.committees.resize(K);
    std::size_t min_len = exposed[0].size();
    for (unsigned c = 0; c < K; ++c) {
      CommitteeOutcome& oc = out.committees[c];
      oc.coins = exposed[static_cast<std::size_t>(c) * n];
      for (int m = 1; m < n; ++m) {
        if (exposed[static_cast<std::size_t>(c) * n + m] != oc.coins) {
          oc.unanimous = false;
        }
      }
      oc.batches_ok = results[static_cast<std::size_t>(c) * n].successes();
      oc.seed_coins_used =
          results[static_cast<std::size_t>(c) * n].seed_coins_used;
      min_len = std::min(min_len, oc.coins.size());
    }
    out.beacon.assign(min_len, F::zero());
    out.success = min_len > 0;
    for (unsigned c = 0; c < K; ++c) {
      if (!out.committees[c].unanimous) out.success = false;
      for (std::size_t i = 0; i < min_len; ++i) {
        out.beacon[i] = out.beacon[i] + out.committees[c].coins[i];
      }
    }
    return out;
  }

 private:
  // Committee-local stream slice width: 16 committees fit the uint16
  // wire batch id.
  static constexpr std::uint32_t kStride = 4096;

  // Depth-invariant batch schedule (see header comment): batch b always
  // runs on committee-local stream 1+b with the pipelined scheduler's
  // up-front seed-coin charge; depth only changes how many overlap.
  PipelineResult<F> run_batches(Endpoint& ep, CoinPool<F>& pool) {
    PipelineOptions popts;
    popts.depth = opts_.depth;
    popts.first_batch_id = 1;
    popts.leader_coins = opts_.leader_coins;
    popts.max_iterations = opts_.max_iterations;
    if (opts_.depth > 1) {
      return pipelined_coin_gen<F>(ep, opts_.coins_per_batch, pool,
                                   opts_.batches, popts);
    }
    PipelineResult<F> res;
    res.batches.resize(opts_.batches);
    for (unsigned b = 0; b < opts_.batches; ++b) {
      CoinPool<F> sub;
      sub.add_batch(pool.take_batch(std::min<std::size_t>(
          1 + opts_.leader_coins, pool.remaining())));
      res.batches[b] = coin_gen<F>(ep.instance(1 + b), opts_.coins_per_batch,
                                   sub, opts_.max_iterations);
      res.seed_coins_used += res.batches[b].seed_coins_used;
      if (!sub.empty()) pool.add_batch(sub.take_batch(sub.remaining()));
    }
    return res;
  }

  Options opts_;
  Cluster cluster_;
  std::vector<std::unique_ptr<Committee>> committees_;
};

}  // namespace dprbg
