// Sharded randomness beacon: K independent committees, one combined coin
// stream.
//
// The paper's protocols are fixed-n cliques with Omega(n^2) messages per
// round, so one cluster's coin throughput is capped by its slowest
// member's round trip. Sharding is the standard way out: partition N =
// K*n players into K committees (net/committee.h), run the full
// pipelined Coin-Gen machinery (coin/coin_pipeline.h) in each committee
// concurrently — each on its own stream slice, roster barrier, fault
// plan and trace scope — and combine the K per-committee coin streams
// into one global beacon output by field addition, which in GF(2^k) is
// exactly bitwise XOR.
//
// Soundness of the combination (DESIGN.md §11): each committee's coin is
// unpredictable to an adversary bounded by t faults *in that committee*
// (Lemma 1/Lemma 3 soundness of the underlying VSS batches). XOR of
// independent committee coins is uniform as long as at least one
// contributing committee is honest-majority, because XOR with an
// independent uniform value is uniform. The beacon therefore degrades
// gracefully: corrupting a whole committee biases nothing while any
// other committee stays within its fault bound.
//
// Determinism contract (tests/beacon_test.cpp): the beacon output is a
// pure function of Options{seed, committees, committee_size, ...} —
// independent of pipeline depth and of how the committee threads
// interleave in wall-clock. Two ingredients make this hold:
//   * every Coin-Gen batch always runs on its own committee-local round
//     stream 1+b (even at depth 1, where the pipelined scheduler would
//     otherwise degenerate to the caller's stream), so the rng streams
//     consumed per batch never depend on the overlap window;
//   * seed coins are charged per batch up front from a genesis pool
//     sized to exactly batches * (1 + leader_coins) coins, so every
//     batch's charge is the same contiguous pool block at any depth
//     (returned unspent coins land at the pool's tail and are never
//     re-charged).
//
// Failover (beacon_failover.h, DESIGN.md §11): every batch launch and
// every exposure passes through a shared HealthBoard whose verdicts are
// latched per (committee, batch), so a committee that blows its
// wall-clock budget, crashes, or accumulates misbehavior is dropped from
// the combination — entirely (the full-drop rule) — while the survivors
// keep emitting. The combine below is window-aligned: output window b is
// the XOR of every contributing committee's batch-b coins, with a
// per-window contributor mask, and `degraded` marks any output that is
// missing a committee. On the healthy path every gate is open and the
// output is bit-for-bit the pre-failover beacon (the golden tests in
// tests/beacon_test.cpp hold).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "gf/field_concept.h"
#include "net/cluster.h"
#include "net/committee.h"
#include "beacon/beacon_failover.h"
#include "beacon/beacon_status.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "coin/coin_pipeline.h"
#include "dprbg/coin_pool.h"
#include "dprbg/trusted_dealer.h"

namespace dprbg {

// Per-committee genesis entropy: disjoint dealer streams per committee,
// derived from the beacon seed with a SplitMix64-style mix.
inline std::uint64_t committee_seed(std::uint64_t seed, std::uint32_t c) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (c + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

template <FiniteField F>
class Beacon {
 public:
  struct Options {
    // K: number of committees; the cluster holds K * committee_size
    // players. Bounded by the stream slices fitting the uint16 wire
    // batch id (16 committees at the default stride of 4096).
    unsigned committees = 2;
    unsigned committee_size = 7;
    unsigned committee_t = 1;
    // M: coins minted per Coin-Gen batch.
    unsigned coins_per_batch = 4;
    // Coin-Gen batches per committee (each on its own round stream).
    unsigned batches = 4;
    // Pipeline window per committee (1 = serial; transcripts are
    // depth-invariant either way, see the header comment).
    unsigned depth = 2;
    unsigned leader_coins = 3;
    unsigned max_iterations = 16;
    std::uint64_t seed = 0xBEAC04ull;
    // Simulated one-way per-round link latency (Cluster contract).
    unsigned round_latency_us = 0;
    // Failover policy (beacon_failover.h). The defaults gate nothing on
    // a healthy run: wall-clock monitoring and misbehavior scoring are
    // both off until their budgets/thresholds are set.
    FailoverPolicy failover;
    // Scripted failures for tests and the liveness benchmark.
    BeaconChaos chaos;
  };

  struct CommitteeOutcome {
    // Exposed coin values, in batch-then-coin order; identical at every
    // member when `unanimous`.
    std::vector<F> coins;
    unsigned batches_ok = 0;
    unsigned seed_coins_used = 0;
    bool unanimous = true;
    // Final health verdicts from the HealthBoard.
    CommitteeHealth health = CommitteeHealth::kLive;
    EvictionReason reason = EvictionReason::kNone;
    unsigned evicted_at = 0;
    unsigned batches_done = 0;
  };

  struct Output {
    bool success = false;
    // Window-aligned combination: window b holds coins_per_batch values,
    // each the XOR over the contributing committees' batch-b coins. On a
    // healthy run this equals the flat XOR of the per-committee streams.
    std::vector<F> beacon;
    // Per emitted window, the contributing-committee bitmask (bit c =
    // committee c's batch went into that window).
    std::vector<std::uint32_t> window_mask;
    std::vector<CommitteeOutcome> committees;
    // True iff any committee left the live state or any emitted window
    // is missing a live committee's contribution.
    bool degraded = false;
    // HealthBoard counters for the whole run.
    HealthCounters health;
  };

  explicit Beacon(Options opts)
      : opts_(opts),
        cluster_(static_cast<int>(opts.committees * opts.committee_size),
                 static_cast<int>(opts.committee_t), opts.seed) {
    DPRBG_CHECK(opts_.committees >= 1);
    DPRBG_CHECK(opts_.batches >= 1);
    DPRBG_CHECK(opts_.committees * kStride <= 0x10000u);
    // batches+1 local streams per committee: root + one per batch.
    DPRBG_CHECK(opts_.batches + 1 <= kStride);
    cluster_.set_round_latency_us(opts_.round_latency_us);
    const int n = static_cast<int>(opts_.committee_size);
    for (unsigned c = 0; c < opts_.committees; ++c) {
      std::vector<int> members(n);
      for (int i = 0; i < n; ++i) members[i] = static_cast<int>(c) * n + i;
      Committee::Options copts;
      copts.id = c;
      copts.first_stream = c * kStride;
      copts.stream_count = kStride;
      copts.t = static_cast<int>(opts_.committee_t);
      committees_.push_back(std::make_unique<Committee>(
          cluster_, std::move(members), copts));
    }
    DPRBG_CHECK(opts_.chaos.crash_committee <
                static_cast<int>(opts_.committees));
    board_ = std::make_unique<HealthBoard>(opts_.committees, opts_.batches,
                                           opts_.failover);
  }

  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] Committee& committee(unsigned c) { return *committees_[c]; }
  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] HealthBoard& board() { return *board_; }
  // Point-in-time health aggregate (beacon_status.h) — safe to poll
  // mid-run; this is the future service's health endpoint.
  [[nodiscard]] BeaconStatus status() const { return beacon_status(*board_); }

  // Runs the full beacon round: per-committee pipelined Coin-Gen, then
  // committee-local exposure of every minted coin, then the XOR-combine.
  // Blocks until every committee finishes. May be called once per Beacon
  // (stream ids are not reused across runs).
  Output run() {
    const unsigned K = opts_.committees;
    const int n = static_cast<int>(opts_.committee_size);
    const unsigned genesis_count =
        opts_.batches * (1 + opts_.leader_coins);
    std::vector<std::vector<std::vector<SealedCoin<F>>>> genesis(K);
    for (unsigned c = 0; c < K; ++c) {
      genesis[c] = trusted_dealer_coins<F>(
          n, opts_.committee_t, static_cast<int>(genesis_count),
          committee_seed(opts_.seed, c));
    }

    // Scripted evictions close their gates before anything launches.
    for (const auto& [c, b] : opts_.chaos.scripted_evictions) {
      board_->evict(c, b, EvictionReason::kScripted);
    }
    // Misbehavior scoring reads the committees' locked fault ledgers.
    if (opts_.failover.misbehavior_threshold != 0) {
      board_->set_score_fn([this](unsigned c) {
        const Cluster::DomainLedger led = committees_[c]->ledger();
        const FailoverPolicy& p = opts_.failover;
        const std::uint64_t effects = led.faults.dropped +
                                      led.faults.delayed +
                                      led.faults.duplicated +
                                      led.faults.corrupted;
        return effects * p.fault_weight + led.stale * p.stale_weight +
               led.foreign * p.foreign_weight;
      });
    }

    const int total = static_cast<int>(K) * n;
    // exposed[player][batch] = that batch's exposed coin values (empty
    // for failed/cancelled batches; the outer vector stays empty for
    // members that crashed before the exposure phase).
    std::vector<std::vector<std::vector<F>>> exposed(total);
    std::vector<PipelineResult<F>> results(total);
    {
      // The wall-clock watchdog lives exactly as long as the run (no-op
      // thread unless failover.wall_budget_ms > 0).
      BudgetMonitor monitor(*board_, K);
      cluster_.run(std::vector<Cluster::Program>(
          static_cast<std::size_t>(total), [&](PartyIo& io) {
            const unsigned c = static_cast<unsigned>(io.id() / n);
            const bool crashing =
                opts_.chaos.crash_committee == static_cast<int>(c);
            if (crashing && opts_.chaos.crash_at_batch == 0) return;
            Endpoint& ep = committees_[c]->endpoint(io);
            CoinPool<F> pool;
            for (auto& coin : genesis[c][ep.id()]) pool.add(std::move(coin));
            PipelineResult<F> res = run_batches(c, crashing, ep, pool);
            const bool expose_ok = !crashing && board_->may_expose(c);
            if (!expose_ok) {
              results[io.id()] = std::move(res);
              return;
            }
            // Expose every minted coin on the committee's root stream.
            // Coin-Gen decides batch success unanimously, so the exposure
            // instance counter stays aligned across the committee.
            std::vector<std::vector<F>> mine(opts_.batches);
            unsigned idx = 0;
            for (unsigned b = 0; b < res.batches.size(); ++b) {
              if (!res.batches[b].success) continue;
              for (const auto& coin :
                   res.batches[b].sealed_coins(opts_.committee_t)) {
                const auto v = coin_expose<F>(ep, coin, idx++);
                if (v) mine[b].push_back(*v);
              }
            }
            exposed[io.id()] = std::move(mine);
            results[io.id()] = std::move(res);
          }));
    }

    Output out;
    out.committees.resize(K);
    // Crash fallback: a committee that went silent without the monitor
    // noticing (every member returned before exposing anything, with
    // batches left to do) is evicted here so the combine drops it.
    for (unsigned c = 0; c < K; ++c) {
      if (board_->health(c) == CommitteeHealth::kEvicted) continue;
      if (board_->batches_done(c) >= opts_.batches) continue;
      bool all_silent = true;
      for (int m = 0; m < n; ++m) {
        if (!exposed[static_cast<std::size_t>(c) * n + m].empty()) {
          all_silent = false;
          break;
        }
      }
      if (all_silent) {
        board_->evict(c, board_->batches_done(c), EvictionReason::kCrashed);
      }
    }

    for (unsigned c = 0; c < K; ++c) {
      CommitteeOutcome& oc = out.committees[c];
      const std::size_t base = static_cast<std::size_t>(c) * n;
      for (const auto& batch : exposed[base]) {
        oc.coins.insert(oc.coins.end(), batch.begin(), batch.end());
      }
      for (int m = 1; m < n; ++m) {
        if (exposed[base + m] != exposed[base]) oc.unanimous = false;
      }
      oc.batches_ok = results[base].successes();
      oc.seed_coins_used = results[base].seed_coins_used;
      oc.health = board_->health(c);
      oc.reason = board_->reason(c);
      oc.evicted_at = board_->evicted_at(c);
      oc.batches_done = board_->batches_done(c);
    }

    // Window-aligned combine under the full-drop rule: an evicted
    // committee contributes nothing (not even pre-eviction batches), so
    // the degraded output is a pure function of the surviving set.
    // Committee c contributes to window b iff every member reported an
    // identical full batch of coins_per_batch values for it.
    std::uint32_t full_mask = 0;
    for (unsigned c = 0; c < K; ++c) {
      if (out.committees[c].health != CommitteeHealth::kEvicted) {
        full_mask |= 1u << c;
      }
    }
    const std::size_t M = opts_.coins_per_batch;
    const bool tel_on = telemetry_enabled();
    TelemetryClock::time_point combine_t0;
    if (tel_on) combine_t0 = TelemetryClock::now();
    for (unsigned b = 0; b < opts_.batches; ++b) {
      std::uint32_t mask = 0;
      std::vector<F> window(M, F::zero());
      for (unsigned c = 0; c < K; ++c) {
        if (out.committees[c].health == CommitteeHealth::kEvicted) continue;
        const std::size_t base = static_cast<std::size_t>(c) * n;
        bool ok = exposed[base].size() == opts_.batches &&
                  exposed[base][b].size() == M;
        for (int m = 1; ok && m < n; ++m) {
          ok = exposed[base + m].size() == opts_.batches &&
               exposed[base + m][b] == exposed[base][b];
        }
        if (!ok) continue;
        mask |= 1u << c;
        for (std::size_t i = 0; i < M; ++i) {
          window[i] = window[i] + exposed[base][b][i];
        }
      }
      if (mask == 0) continue;
      out.window_mask.push_back(mask);
      out.beacon.insert(out.beacon.end(), window.begin(), window.end());
      if (mask != full_mask) {
        out.degraded = true;
        board_->note_degraded_window();
      }
    }
    if (tel_on) {
      metrics().histogram("beacon_combine_us")
          .observe(telemetry_elapsed_us(combine_t0));
      metrics().counter("beacon_windows_total")
          .add(out.window_mask.size());
    }

    for (unsigned c = 0; c < K; ++c) {
      if (out.committees[c].health != CommitteeHealth::kLive) {
        out.degraded = true;
      }
    }
    out.success = !out.beacon.empty();
    for (unsigned c = 0; c < K; ++c) {
      if (out.committees[c].health == CommitteeHealth::kEvicted) continue;
      if (!out.committees[c].unanimous) out.success = false;
    }
    out.health = board_->counters();
    return out;
  }

 private:
  // Committee-local stream slice width: 16 committees fit the uint16
  // wire batch id.
  static constexpr std::uint32_t kStride = 4096;

  // Depth-invariant batch schedule (see header comment): batch b always
  // runs on committee-local stream 1+b with the pipelined scheduler's
  // up-front seed-coin charge; depth only changes how many overlap.
  // Every launch consults the HealthBoard's latched gate (plus the
  // scripted crash cutoff), every join reports progress — in both the
  // pipelined and the serial schedule, so failover behaves identically
  // at any depth.
  PipelineResult<F> run_batches(unsigned c, bool crashing, Endpoint& ep,
                                CoinPool<F>& pool) {
    const unsigned crash_at = opts_.chaos.crash_at_batch;
    auto gate = [this, c, crashing, crash_at](unsigned b) {
      if (crashing && b >= crash_at) return false;
      return board_->may_launch(c, b);
    };
    auto heartbeat = [this, c](unsigned b) {
      board_->report_batch_done(c, b);
    };
    PipelineOptions popts;
    popts.depth = opts_.depth;
    popts.first_batch_id = 1;
    popts.leader_coins = opts_.leader_coins;
    popts.max_iterations = opts_.max_iterations;
    popts.may_launch = gate;
    popts.on_batch_joined = heartbeat;
    if (opts_.depth > 1) {
      return pipelined_coin_gen<F>(ep, opts_.coins_per_batch, pool,
                                   opts_.batches, popts);
    }
    PipelineResult<F> res;
    res.batches.resize(opts_.batches);
    for (unsigned b = 0; b < opts_.batches; ++b) {
      if (!gate(b)) {
        res.cancelled = true;
        break;
      }
      CoinPool<F> sub;
      sub.add_batch(pool.take_batch(std::min<std::size_t>(
          1 + opts_.leader_coins, pool.remaining())));
      res.batches[b] = coin_gen<F>(ep.instance(1 + b), opts_.coins_per_batch,
                                   sub, opts_.max_iterations);
      res.seed_coins_used += res.batches[b].seed_coins_used;
      ++res.launched;
      if (!sub.empty()) pool.add_batch(sub.take_batch(sub.remaining()));
      heartbeat(b);
    }
    return res;
  }

  Options opts_;
  Cluster cluster_;
  std::vector<std::unique_ptr<Committee>> committees_;
  std::unique_ptr<HealthBoard> board_;
};

}  // namespace dprbg
