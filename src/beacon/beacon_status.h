// BeaconStatus: the beacon's machine-readable health endpoint.
//
// A beacon-as-a-service deployment (ROADMAP) needs one aggregate a load
// balancer or operator dashboard can poll: how many committees are live,
// who was evicted and why, how deep the seed pool is, and whether the
// output stream is currently degraded. This header distills the
// HealthBoard's ledger (beacon/beacon_failover.h) plus the telemetry
// pool gauge into that aggregate, serialized as one flat JSON line (the
// same tolerant conventions as the trace and metrics snapshots —
// common/flat_json.h).
//
// The status is a point-in-time read: it is safe to build mid-run (the
// HealthBoard accessors lock internally), which is exactly how a serving
// loop would poll it.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flat_json.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "beacon/beacon_failover.h"

namespace dprbg {

struct BeaconStatus {
  struct CommitteeStatus {
    unsigned id = 0;
    CommitteeHealth health = CommitteeHealth::kLive;
    EvictionReason reason = EvictionReason::kNone;
    unsigned batches_done = 0;
    unsigned evicted_at = 0;  // meaningful only when evicted
  };

  unsigned committees = 0;
  unsigned live = 0;
  unsigned lagging = 0;
  unsigned evicted = 0;
  unsigned batches = 0;  // scheduled batches per committee
  // Any committee out of the live state, or any window emitted short.
  bool degraded = false;
  HealthCounters counters;
  // The pool_depth telemetry gauge at snapshot time; -1 when telemetry
  // is disabled (no pool is being watched).
  std::int64_t pool_depth = -1;
  // Output rate, filled in by the serving loop that measured it (the
  // status itself has no clock); 0 = unknown.
  double coins_per_sec = 0.0;
  std::vector<CommitteeStatus> per_committee;

  // One flat JSON object: scalar summary fields plus a compact
  // "committees" detail string ("0:live done=8;1:evicted(crashed)@2
  // done=2"), keeping the line nesting-free.
  [[nodiscard]] std::string to_json() const {
    std::string detail;
    for (const auto& c : per_committee) {
      if (!detail.empty()) detail += ';';
      detail += std::to_string(c.id);
      detail += ':';
      detail += to_string(c.health);
      if (c.health == CommitteeHealth::kEvicted) {
        detail += '(';
        detail += to_string(c.reason);
        detail += ")@";
        detail += std::to_string(c.evicted_at);
      }
      detail += " done=";
      detail += std::to_string(c.batches_done);
    }
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.2f", coins_per_sec);

    std::string out;
    out.reserve(256);
    out += "{\"kind\":\"beacon_status\"";
    auto num = [&out](const char* key, std::int64_t v) {
      out += ",\"";
      out += key;
      out += "\":";
      out += std::to_string(v);
    };
    num("committees", committees);
    num("live", live);
    num("lagging", lagging);
    num("evicted", evicted);
    num("batches", batches);
    num("degraded", degraded ? 1 : 0);
    num("pool_depth", pool_depth);
    num("evictions", static_cast<std::int64_t>(counters.evictions));
    num("lagging_transitions",
        static_cast<std::int64_t>(counters.lagging_transitions));
    num("cancelled_batches",
        static_cast<std::int64_t>(counters.cancelled_batches));
    num("degraded_windows",
        static_cast<std::int64_t>(counters.degraded_windows));
    out += ",\"coins_per_sec\":\"";
    out += rate;
    out += "\",\"detail\":\"";
    flat_json_escape(out, detail);
    out += "\"}";
    return out;
  }
};

// Builds the status from a (possibly mid-run) HealthBoard. Thread-safe:
// every board accessor locks internally; the pool gauge is read only
// when telemetry is enabled.
[[nodiscard]] inline BeaconStatus beacon_status(const HealthBoard& board) {
  BeaconStatus st;
  st.committees = board.committees();
  st.batches = board.batches();
  st.counters = board.counters();
  st.per_committee.reserve(st.committees);
  for (unsigned c = 0; c < st.committees; ++c) {
    BeaconStatus::CommitteeStatus cs;
    cs.id = c;
    cs.health = board.health(c);
    cs.reason = board.reason(c);
    cs.batches_done = board.batches_done(c);
    cs.evicted_at = board.evicted_at(c);
    switch (cs.health) {
      case CommitteeHealth::kLive: ++st.live; break;
      case CommitteeHealth::kLagging: ++st.lagging; break;
      case CommitteeHealth::kEvicted: ++st.evicted; break;
    }
    st.per_committee.push_back(cs);
  }
  st.degraded = st.live < st.committees || st.counters.degraded_windows != 0;
  if (telemetry_enabled()) {
    st.pool_depth = metrics().gauge("pool_depth").value();
  }
  return st;
}

}  // namespace dprbg
