// Committee failover and epoch reconfiguration for the sharded beacon.
//
// The beacon's XOR-combine (beacon.h, DESIGN.md §11) is sound as long as
// at least one contributing committee stays honest-majority — which means
// a crashed, stalled, or rotten committee need not stop the beacon; it
// only needs to be REMOVED from the combination. This header supplies the
// machinery:
//
//   * HealthBoard — the shared per-committee health ledger
//     (live/lagging/evicted) with LATCHED launch and exposure gates. The
//     latch is the correctness crux: an eviction verdict consulted
//     mid-run must be identical at every member of a committee, or the
//     per-batch roster barriers deadlock (some members launch batch b,
//     others don't, and both camps park forever). The first member to
//     consult gate (c, b) fixes the verdict; everyone after reads the
//     latch.
//   * BudgetMonitor — a wall-clock watchdog derived from the Lemma 8
//     round budgets: a committee that has not completed a batch within
//     its budget is marked lagging, and at a multiple of the budget it is
//     evicted as crashed (no batch ever finished) or stalled. Off by
//     default (wall_budget_ms = 0) so deterministic tests never flake.
//   * Full-drop combine rule: an evicted committee contributes NOTHING
//     to the combination — not even batches it completed before
//     eviction. This makes the degraded output a pure function of the
//     surviving committee set (tests/beacon_failover_test.cpp pins
//     "evict c" == "run from scratch without c"), at the cost of
//     discarding a prefix of good coins. A hard floor of min_live
//     committees can never be evicted.
//   * EpochSchedule / EpochBridge — roster rotation: a bridge committee
//     over the union of an old and a new roster runs
//     cross_roster_reshare (dprbg/proactive.h) to migrate a sealed
//     CoinPool from the retiring roster to its replacement without
//     exposing any coin, preserving pool order and consumed() so the
//     exposure instance counters stay aligned across the epoch boundary.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "gf/field_concept.h"
#include "net/cluster.h"
#include "net/committee.h"
#include "coin/sealed_coin.h"
#include "dprbg/coin_pool.h"
#include "dprbg/proactive.h"

namespace dprbg {

enum class CommitteeHealth : std::uint8_t { kLive, kLagging, kEvicted };

enum class EvictionReason : std::uint8_t {
  kNone,         // not evicted
  kOverBudget,   // reserved: per-round budget overrun
  kStalled,      // wall-clock budget exceeded after partial progress
  kCrashed,      // no batch ever completed
  kMisbehavior,  // fault-ledger score crossed the threshold
  kScripted,     // test/chaos-injected eviction
};

inline const char* to_string(CommitteeHealth h) {
  switch (h) {
    case CommitteeHealth::kLive: return "live";
    case CommitteeHealth::kLagging: return "lagging";
    case CommitteeHealth::kEvicted: return "evicted";
  }
  return "?";
}

inline const char* to_string(EvictionReason r) {
  switch (r) {
    case EvictionReason::kNone: return "none";
    case EvictionReason::kOverBudget: return "over-budget";
    case EvictionReason::kStalled: return "stalled";
    case EvictionReason::kCrashed: return "crashed";
    case EvictionReason::kMisbehavior: return "misbehavior";
    case EvictionReason::kScripted: return "scripted";
  }
  return "?";
}

struct FailoverPolicy {
  // Master switch: disabled = every gate is open and no eviction ever
  // happens (bit-for-bit the pre-failover beacon).
  bool enabled = true;
  // Hard floor: the board refuses to evict below this many non-evicted
  // committees, so the beacon never goes silent.
  unsigned min_live = 1;
  // Expected lockstep rounds per Coin-Gen batch (Lemma 8: ~10 at t=1,
  // plus slack for the exposure rounds) — the basis for wall budgets.
  unsigned rounds_per_batch = 12;
  // A committee idle for lagging_after (resp. evict_after) times its
  // wall budget is marked lagging (resp. evicted).
  double lagging_after = 1.0;
  double evict_after = 2.0;
  // Wall-clock budget per batch, in ms. 0 = wall-clock monitoring off
  // (the default: deterministic tests must never flake on timing).
  unsigned wall_budget_ms = 0;
  // Monitor poll interval.
  unsigned poll_ms = 5;
  // Misbehavior score weights over a committee's Cluster::DomainLedger:
  // link-fault effects count once, demux rejections (stale/foreign —
  // always protocol violations) count heavily.
  unsigned fault_weight = 1;
  unsigned stale_weight = 100;
  unsigned foreign_weight = 100;
  // Eviction threshold on the weighted score. 0 = score-based eviction
  // off.
  std::uint64_t misbehavior_threshold = 0;

  // Budget heuristic: rounds_per_batch traversals at the simulated
  // latency, times a slack factor, floored so fast clusters are not
  // evicted on scheduler jitter.
  [[nodiscard]] unsigned derive_wall_budget_ms(unsigned round_latency_us,
                                               double slack = 4.0,
                                               unsigned floor_ms = 50) const {
    const double ms =
        static_cast<double>(rounds_per_batch) *
        (static_cast<double>(round_latency_us) / 1000.0) * slack;
    return ms > static_cast<double>(floor_ms) ? static_cast<unsigned>(ms)
                                              : floor_ms;
  }
};

// Chaos knobs for tests and the liveness benchmark (bench/beacon
// --crash-committee): scripted failures injected above the transport.
struct BeaconChaos {
  // Committee whose members exit their program at crash_at_batch without
  // running or exposing anything further (-1 = none). Detected either by
  // the wall-clock monitor or by the combine-time crash fallback.
  int crash_committee = -1;
  unsigned crash_at_batch = 0;
  // (committee, batch) pairs: evict the committee just before it would
  // launch the given batch, reason kScripted.
  std::vector<std::pair<unsigned, unsigned>> scripted_evictions;
};

// The shared health ledger: one per beacon run, consulted concurrently
// by every member thread (launch/exposure gates), the wall-clock monitor
// and the combine step. All state is guarded by one mutex; gates are
// latched (see header comment) so concurrent readers of the same gate
// always agree.
class HealthBoard {
 public:
  using Clock = std::chrono::steady_clock;
  // Committee id -> current misbehavior score (typically a weighted sum
  // of its Cluster::DomainLedger). Must be safe to call mid-run.
  using ScoreFn = std::function<std::uint64_t(unsigned)>;

  HealthBoard(unsigned committees, unsigned batches, FailoverPolicy policy)
      : policy_(policy), batches_(batches) {
    DPRBG_CHECK(committees >= 1);
    DPRBG_CHECK(policy_.min_live >= 1);
    states_.resize(committees);
    const auto now = Clock::now();
    for (auto& s : states_) s.last_progress = now;
    // Seed the health gauges so a snapshot taken before any transition
    // already lists every committee as live.
    for (unsigned c = 0; c < committees; ++c) {
      tel_health(c, CommitteeHealth::kLive);
    }
  }

  HealthBoard(const HealthBoard&) = delete;
  HealthBoard& operator=(const HealthBoard&) = delete;

  void set_score_fn(ScoreFn fn) {
    std::lock_guard lk(mu_);
    score_fn_ = std::move(fn);
  }

  // Launch gate for batch b of committee c. Latched: the first caller
  // fixes the verdict (checking the misbehavior score on the way) and
  // every later caller — other members, any order — reads the latch.
  [[nodiscard]] bool may_launch(unsigned c, unsigned b) {
    std::lock_guard lk(mu_);
    State& s = state(c);
    if (auto it = s.gates.find(b); it != s.gates.end()) return it->second;
    if (s.health != CommitteeHealth::kEvicted && score_fn_ &&
        policy_.enabled && policy_.misbehavior_threshold != 0 &&
        score_fn_(c) >= policy_.misbehavior_threshold) {
      evict_locked(s, c, b, EvictionReason::kMisbehavior);
    }
    const bool open = !policy_.enabled ||
                      s.health != CommitteeHealth::kEvicted ||
                      b < s.evicted_at;
    if (!open) {
      ++counters_.cancelled_batches;
      if (telemetry_enabled()) {
        metrics().counter("beacon_cancelled_batches_total").add(1);
      }
    }
    s.gates.emplace(b, open);
    return open;
  }

  // The verdict batch b got, or false if its gate was never consulted.
  [[nodiscard]] bool launched(unsigned c, unsigned b) const {
    std::lock_guard lk(mu_);
    const State& s = state(c);
    const auto it = s.gates.find(b);
    return it != s.gates.end() && it->second;
  }

  // Exposure gate: consulted once per member before the committee's
  // exposure phase; latched on first consult for the same reason as the
  // launch gates (exposure runs on the committee's root stream).
  [[nodiscard]] bool may_expose(unsigned c) {
    std::lock_guard lk(mu_);
    State& s = state(c);
    if (s.expose.has_value()) return *s.expose;
    const bool ok =
        !policy_.enabled || s.health != CommitteeHealth::kEvicted;
    s.expose = ok;
    return ok;
  }

  // Restarts every committee's idle clock; the monitor calls this when
  // it starts so construction-to-run gaps are not billed as idle time.
  void reset_progress_clocks() {
    std::lock_guard lk(mu_);
    const auto now = Clock::now();
    for (auto& s : states_) s.last_progress = now;
  }

  // Progress heartbeat: batch b of committee c joined at some member.
  void report_batch_done(unsigned c, unsigned b) {
    std::lock_guard lk(mu_);
    State& s = state(c);
    if (b + 1 > s.batches_done) s.batches_done = b + 1;
    s.last_progress = Clock::now();
    if (s.health == CommitteeHealth::kLagging) {
      s.health = CommitteeHealth::kLive;
      tel_health(c, CommitteeHealth::kLive);
      trace_beacon("health", c, "state=live batch=" + std::to_string(b));
    }
  }

  // Drops committee c from the beacon starting at from_batch (its gates
  // for batches >= from_batch close; its exposure gate closes). Returns
  // false if the min_live floor blocks the eviction; true if evicted
  // (idempotently so).
  bool evict(unsigned c, unsigned from_batch, EvictionReason reason) {
    std::lock_guard lk(mu_);
    State& s = state(c);
    if (s.health == CommitteeHealth::kEvicted) return true;
    return evict_locked(s, c, from_batch, reason);
  }

  void mark_lagging(unsigned c) {
    std::lock_guard lk(mu_);
    State& s = state(c);
    if (s.health != CommitteeHealth::kLive) return;
    s.health = CommitteeHealth::kLagging;
    ++counters_.lagging_transitions;
    tel_health(c, CommitteeHealth::kLagging);
    if (telemetry_enabled()) {
      metrics().counter("beacon_lagging_total").add(1);
    }
    trace_beacon("health", c, "state=lagging");
  }

  // Combine-step bookkeeping: a window was emitted without every live
  // committee's contribution.
  void note_degraded_window() {
    std::lock_guard lk(mu_);
    ++counters_.degraded_windows;
    if (telemetry_enabled()) {
      metrics().counter("beacon_degraded_windows_total").add(1);
    }
  }

  [[nodiscard]] CommitteeHealth health(unsigned c) const {
    std::lock_guard lk(mu_);
    return state(c).health;
  }
  [[nodiscard]] EvictionReason reason(unsigned c) const {
    std::lock_guard lk(mu_);
    return state(c).reason;
  }
  [[nodiscard]] unsigned evicted_at(unsigned c) const {
    std::lock_guard lk(mu_);
    return state(c).evicted_at;
  }
  [[nodiscard]] unsigned batches_done(unsigned c) const {
    std::lock_guard lk(mu_);
    return state(c).batches_done;
  }
  [[nodiscard]] double ms_since_progress(unsigned c) const {
    std::lock_guard lk(mu_);
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     state(c).last_progress)
        .count();
  }
  [[nodiscard]] unsigned live_count() const {
    std::lock_guard lk(mu_);
    return live_count_locked();
  }
  [[nodiscard]] unsigned committees() const {
    return static_cast<unsigned>(states_.size());
  }
  [[nodiscard]] unsigned batches() const { return batches_; }
  [[nodiscard]] HealthCounters counters() const {
    std::lock_guard lk(mu_);
    return counters_;
  }
  [[nodiscard]] const FailoverPolicy& policy() const { return policy_; }

 private:
  struct State {
    CommitteeHealth health = CommitteeHealth::kLive;
    EvictionReason reason = EvictionReason::kNone;
    unsigned evicted_at = 0;   // first batch the committee must not launch
    unsigned batches_done = 0;
    std::optional<bool> expose;       // latched exposure verdict
    std::map<unsigned, bool> gates;   // latched launch verdicts by batch
    Clock::time_point last_progress;
  };

  State& state(unsigned c) {
    DPRBG_CHECK(c < states_.size());
    return states_[c];
  }
  const State& state(unsigned c) const {
    DPRBG_CHECK(c < states_.size());
    return states_[c];
  }

  [[nodiscard]] unsigned live_count_locked() const {
    unsigned live = 0;
    for (const auto& s : states_) {
      if (s.health != CommitteeHealth::kEvicted) ++live;
    }
    return live;
  }

  bool evict_locked(State& s, unsigned c, unsigned from_batch,
                    EvictionReason reason) {
    if (live_count_locked() <= policy_.min_live) return false;
    s.health = CommitteeHealth::kEvicted;
    s.reason = reason;
    s.evicted_at = from_batch;
    // Never override an already-latched exposure verdict: if some member
    // has read "expose" and entered the exposure rounds, every other
    // member must follow it through or the roster barrier deadlocks.
    // With the policy disabled the eviction is bookkeeping only — the
    // launch gates ignore it, so the exposure gate must stay open too.
    if (policy_.enabled && !s.expose.has_value()) s.expose = false;
    ++counters_.evictions;
    tel_health(c, CommitteeHealth::kEvicted);
    if (telemetry_enabled()) {
      metrics().counter("beacon_evictions_total",
                        std::string("reason=") + to_string(reason))
          .add(1);
    }
    trace_beacon("evict", c,
                 std::string("reason=") + to_string(reason) +
                     " batch=" + std::to_string(from_batch));
    return true;
  }

  // Health-state gauge, one per committee, value = enum (0 live,
  // 1 lagging, 2 evicted). Transitions are rare, so the registry lookup
  // per call is fine; no registry mutation while telemetry is disabled.
  static void tel_health(unsigned c, CommitteeHealth h) {
    if (!telemetry_enabled()) return;
    metrics()
        .gauge("beacon_committee_health", "committee=" + std::to_string(c))
        .set(static_cast<std::int64_t>(h));
  }

  const FailoverPolicy policy_;
  const unsigned batches_;
  mutable std::mutex mu_;
  std::vector<State> states_;
  ScoreFn score_fn_;
  HealthCounters counters_;
};

// Wall-clock watchdog: a background thread that marks committees lagging
// and evicts them when they blow their batch budget. Runs only when the
// policy sets wall_budget_ms > 0; otherwise construction is a no-op.
class BudgetMonitor {
 public:
  BudgetMonitor(HealthBoard& board, unsigned committees)
      : board_(board), committees_(committees) {
    if (board_.policy().wall_budget_ms > 0) {
      th_ = std::thread([this] { loop(); });
    }
  }
  ~BudgetMonitor() { stop(); }

  BudgetMonitor(const BudgetMonitor&) = delete;
  BudgetMonitor& operator=(const BudgetMonitor&) = delete;

  void stop() {
    {
      std::lock_guard lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (th_.joinable()) th_.join();
  }

 private:
  void loop() {
    const FailoverPolicy& p = board_.policy();
    const double budget = static_cast<double>(p.wall_budget_ms);
    board_.reset_progress_clocks();
    std::unique_lock lk(mu_);
    while (!stopping_) {
      cv_.wait_for(lk, std::chrono::milliseconds(p.poll_ms));
      if (stopping_) break;
      lk.unlock();
      for (unsigned c = 0; c < committees_; ++c) {
        if (board_.health(c) == CommitteeHealth::kEvicted) continue;
        const unsigned done = board_.batches_done(c);
        if (done >= board_.batches()) continue;  // finished, can't stall
        const double idle = board_.ms_since_progress(c);
        if (idle >= budget * p.evict_after) {
          board_.evict(c, done,
                       done == 0 ? EvictionReason::kCrashed
                                 : EvictionReason::kStalled);
        } else if (idle >= budget * p.lagging_after) {
          board_.mark_lagging(c);
        }
      }
      lk.lock();
    }
  }

  HealthBoard& board_;
  const unsigned committees_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread th_;
};

// Epoch arithmetic for roster rotation drivers: epochs are fixed-size
// runs of batches; a rotation is due each time an epoch's worth of
// batches has completed.
struct EpochSchedule {
  unsigned batches_per_epoch = 0;  // 0 = never rotate
  [[nodiscard]] unsigned epoch_of(unsigned batch) const {
    return batches_per_epoch == 0 ? 0 : batch / batches_per_epoch;
  }
  [[nodiscard]] bool rotation_due(unsigned completed) const {
    return batches_per_epoch != 0 && completed != 0 &&
           completed % batches_per_epoch == 0;
  }
};

// One epoch handover: an old roster, its replacement, and a bridge
// committee over their union that carries the cross_roster_reshare
// traffic. The union-local id layout required by the reshare protocol
// (old roster first) is enforced by requiring every old member's global
// id to be smaller than every new member's — Committee sorts members, so
// rank order then puts the old roster at union-local ids 0..n_old-1.
class EpochBridge {
 public:
  struct Options {
    unsigned t_old = 1;
    unsigned t_new = 1;
    std::uint32_t old_first_stream = 0;
    std::uint32_t new_first_stream = 4096;
    std::uint32_t bridge_first_stream = 8192;
    std::uint32_t stream_count = 4096;
    std::uint32_t old_id = 0;
    std::uint32_t new_id = 1;
    std::uint32_t bridge_id = 2;
  };

  EpochBridge(Cluster& cluster, std::vector<int> old_members,
              std::vector<int> new_members)
      : EpochBridge(cluster, std::move(old_members), std::move(new_members),
                    Options()) {}

  EpochBridge(Cluster& cluster, std::vector<int> old_members,
              std::vector<int> new_members, Options opts)
      : opts_(opts), n_old_(static_cast<int>(old_members.size())) {
    DPRBG_CHECK(!old_members.empty() && !new_members.empty());
    int max_old = old_members[0];
    for (int g : old_members) max_old = g > max_old ? g : max_old;
    int min_new = new_members[0];
    for (int g : new_members) min_new = g < min_new ? g : min_new;
    DPRBG_CHECK(max_old < min_new);  // union-local layout: old roster first

    std::vector<int> union_members = old_members;
    union_members.insert(union_members.end(), new_members.begin(),
                         new_members.end());

    Committee::Options co;
    co.id = opts_.old_id;
    co.first_stream = opts_.old_first_stream;
    co.stream_count = opts_.stream_count;
    co.t = static_cast<int>(opts_.t_old);
    old_ = std::make_unique<Committee>(cluster, std::move(old_members), co);

    Committee::Options cn;
    cn.id = opts_.new_id;
    cn.first_stream = opts_.new_first_stream;
    cn.stream_count = opts_.stream_count;
    cn.t = static_cast<int>(opts_.t_new);
    new_ = std::make_unique<Committee>(cluster, std::move(new_members), cn);

    Committee::Options cb;
    cb.id = opts_.bridge_id;
    cb.first_stream = opts_.bridge_first_stream;
    cb.stream_count = opts_.stream_count;
    cb.t = static_cast<int>(opts_.t_old > opts_.t_new ? opts_.t_old
                                                      : opts_.t_new);
    bridge_ =
        std::make_unique<Committee>(cluster, std::move(union_members), cb);
  }

  [[nodiscard]] Committee& old_roster() { return *old_; }
  [[nodiscard]] Committee& new_roster() { return *new_; }
  [[nodiscard]] Committee& bridge() { return *bridge_; }
  [[nodiscard]] int n_old() const { return n_old_; }

  // Migrates `pool` across the epoch boundary: every bridge member (old
  // and new roster alike) calls this in lockstep with its own view of
  // the same pool. On success the pool holds the same coins in the same
  // order with consumed() untouched — new members now hold live shares,
  // old members hold shareless views. `challenge` is one sealed coin of
  // the OLD sharing spent on batch verification (new members pass a
  // shareless view of it).
  template <FiniteField F>
  bool migrate_pool(PartyIo& io, CoinPool<F>& pool,
                    const SealedCoin<F>& challenge, unsigned instance = 0) {
    Endpoint& ep = bridge_->endpoint(io);
    std::vector<SealedCoin<F>> view(pool.coins().begin(),
                                    pool.coins().end());
    const auto res = cross_roster_reshare<F>(ep, n_old_, opts_.t_new, view,
                                             challenge, instance);
    if (!res.success) return false;
    pool.replace_all(std::move(res.coins));
    if (ep.id() == 0) {
      trace_beacon("epoch", opts_.bridge_id,
                   "migrated=" + std::to_string(view.size()));
    }
    return true;
  }

  // A pool of `count` shareless views (degree `degree`) — what a NEW
  // roster member passes into migrate_pool before it holds any shares.
  template <FiniteField F>
  [[nodiscard]] static CoinPool<F> shareless_pool(std::size_t count,
                                                  unsigned degree) {
    CoinPool<F> pool;
    for (std::size_t i = 0; i < count; ++i) {
      pool.add(SealedCoin<F>{std::nullopt, degree});
    }
    return pool;
  }

 private:
  Options opts_;
  int n_old_;
  std::unique_ptr<Committee> old_;
  std::unique_ptr<Committee> new_;
  std::unique_ptr<Committee> bridge_;
};

}  // namespace dprbg
