// Serialization of field elements into protocol messages.
//
// Elements travel as fixed-width little-endian integers of F::kBytes
// bytes, so message sizes match the paper's accounting (a share of a
// k-bit secret costs k bits on the wire).

#pragma once

#include "common/serial.h"
#include "gf/field_concept.h"

namespace dprbg {

template <FiniteField F>
void write_elem(ByteWriter& w, F e) {
  std::uint64_t v = e.to_uint();
  for (unsigned i = 0; i < F::kBytes; ++i) {
    w.u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

template <FiniteField F>
F read_elem(ByteReader& r) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < F::kBytes; ++i) {
    v |= std::uint64_t{r.u8()} << (8 * i);
  }
  return F::from_uint(v);
}

}  // namespace dprbg
