// Serialization of field elements into protocol messages.
//
// Elements travel as fixed-width little-endian integers of F::kBytes
// bytes, so message sizes match the paper's accounting (a share of a
// k-bit secret costs k bits on the wire).

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/serial.h"
#include "gf/field_concept.h"

namespace dprbg {

template <FiniteField F>
void write_elem(ByteWriter& w, F e) {
  std::uint64_t v = e.to_uint();
  for (unsigned i = 0; i < F::kBytes; ++i) {
    w.u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

template <FiniteField F>
F read_elem(ByteReader& r) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < F::kBytes; ++i) {
    v |= std::uint64_t{r.u8()} << (8 * i);
  }
  return F::from_uint(v);
}

// Decodes an untrusted buffer as exactly `count` field elements — the
// only shape an honest sender produces for a share row. The size is
// validated before any allocation, so a Byzantine body can neither
// over-allocate nor smuggle trailing bytes.
template <FiniteField F>
std::optional<std::vector<F>> decode_elem_row(
    std::span<const std::uint8_t> bytes, std::size_t count) {
  if (bytes.size() != count * F::kBytes) return std::nullopt;
  ByteReader r(bytes);
  std::vector<F> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(read_elem<F>(r));
  return out;
}

}  // namespace dprbg
