#include "gf/fft_field.h"

#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "gf/zq_simd.h"

namespace dprbg {

namespace {

// Dense polynomial helpers over Z_q, used only during field construction
// (irreducibility testing), so clarity beats speed here. Polynomials are
// coefficient vectors, low degree first, with no trailing zeros.

using Poly = std::vector<std::uint32_t>;

void trim(Poly& p) {
  while (!p.empty() && p.back() == 0) p.pop_back();
}

Poly poly_mul(const Zq& zq, const Poly& a, const Poly& b) {
  if (a.empty() || b.empty()) return {};
  Poly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = zq.add(out[i + j], zq.mul(a[i], b[j]));
    }
  }
  trim(out);
  return out;
}

// a mod f, where f is monic.
Poly poly_mod(const Zq& zq, Poly a, const Poly& f) {
  DPRBG_CHECK(!f.empty() && f.back() == 1);
  trim(a);
  while (a.size() >= f.size()) {
    const std::uint32_t lead = a.back();
    const std::size_t shift = a.size() - f.size();
    if (lead != 0) {
      for (std::size_t i = 0; i < f.size(); ++i) {
        a[shift + i] = zq.sub(a[shift + i], zq.mul(lead, f[i]));
      }
    }
    a.pop_back();
    trim(a);
    if (a.size() < f.size()) break;
  }
  return a;
}

// x^e mod f by square and multiply; e can be astronomically large so it is
// given as repeated squaring count + base exponent: we just need x^(q^j).
Poly poly_powmod_x_q_to(const Zq& zq, const Poly& f, unsigned j) {
  // Compute x^q mod f once, then iterate Frobenius via exponentiation:
  // x^(q^j) = (x^(q^(j-1)))^q. Each step is a powmod with exponent q.
  Poly cur = {0, 1};  // x
  cur = poly_mod(zq, cur, f);
  for (unsigned step = 0; step < j; ++step) {
    // cur <- cur^q mod f
    Poly result = {1};
    Poly base = cur;
    std::uint64_t e = zq.q();
    while (e != 0) {
      if (e & 1u) result = poly_mod(zq, poly_mul(zq, result, base), f);
      base = poly_mod(zq, poly_mul(zq, base, base), f);
      e >>= 1;
    }
    cur = result;
  }
  return cur;
}

Poly poly_sub(const Zq& zq, Poly a, const Poly& b) {
  if (a.size() < b.size()) a.resize(b.size(), 0);
  for (std::size_t i = 0; i < b.size(); ++i) a[i] = zq.sub(a[i], b[i]);
  trim(a);
  return a;
}

Poly poly_gcd(const Zq& zq, Poly a, Poly b) {
  trim(a);
  trim(b);
  while (!b.empty()) {
    // Make b monic for poly_mod.
    const std::uint32_t lead_inv = zq.inv(b.back());
    Poly monic = b;
    for (auto& c : monic) c = zq.mul(c, lead_inv);
    Poly r = poly_mod(zq, a, monic);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::vector<unsigned> prime_divisors(unsigned n) {
  std::vector<unsigned> out;
  for (unsigned p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      out.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) out.push_back(n);
  return out;
}

// Simple xorshift for the deterministic modulus search.
std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

unsigned next_pow2(unsigned n) {
  unsigned p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FftField::FftField(unsigned l, std::uint64_t seed) : l_(l), zq_([&] {
  DPRBG_CHECK(l >= 2 && l <= FftElem::kMaxL);
  // N-point NTT needs N | q-1; products have degree <= 2l-2, so N >= 2l-1.
  const unsigned n = next_pow2(2 * l - 1);
  // Paper constraint q >= 2l+1 plus the NTT constraint q ≡ 1 (mod N).
  std::uint32_t q = n + 1;
  while (q < 2 * l + 1 || !Zq::is_prime(q)) q += n;
  return Zq(q);
}()) {
  ntt_size_ = next_pow2(2 * l_ - 1);

  // Twiddle factors: w^i for the forward transform, w^-i for the inverse.
  const std::uint32_t w = zq_.root_of_unity(ntt_size_);
  ntt_roots_.resize(ntt_size_);
  ntt_inv_roots_.resize(ntt_size_);
  std::uint32_t wi = 1;
  for (unsigned i = 0; i < ntt_size_; ++i) {
    ntt_roots_[i] = wi;
    ntt_inv_roots_[i] = zq_.inv(wi);
    wi = zq_.mul(wi, w);
  }
  ntt_size_inv_ = zq_.inv(ntt_size_ % zq_.q());

  // Per-stage dense twiddle tables (header comment): stage s covers
  // len = 2^(s+1), needing len/2 twiddles w^(j * N/len). These replace
  // the strided roots[j*step] gathers so each stage is one contiguous
  // batch-butterfly call per block.
  for (unsigned len = 2; len <= ntt_size_; len <<= 1) {
    const unsigned step = ntt_size_ / len;
    std::vector<std::uint32_t> fwd(len / 2), inv(len / 2);
    for (unsigned j = 0; j < len / 2; ++j) {
      fwd[j] = ntt_roots_[j * step];
      inv[j] = ntt_inv_roots_[j * step];
    }
    stage_twiddles_.push_back(std::move(fwd));
    stage_inv_twiddles_.push_back(std::move(inv));
  }

  // Irreducible modulus of degree l. Prefer a binomial x^l - a: its
  // reduction rows x^(l+i) ≡ a*x^i have a single nonzero coefficient, so
  // reduce() costs O(l) and the end-to-end multiply keeps the paper's
  // O(l log l) bound. Fall back to a random dense modulus (Rabin's test
  // accepts a random monic polynomial with probability ~1/l) if no
  // binomial of degree l is irreducible over this Z_q.
  bool found = false;
  for (std::uint32_t a = 1; a < zq_.q() && !found; ++a) {
    Poly f(l_ + 1, 0);
    f[0] = zq_.neg(a);
    f[l_] = 1;
    if (is_irreducible(f)) {
      modulus_.assign(f.begin(), f.end() - 1);
      found = true;
    }
  }
  std::uint64_t state = seed;
  while (!found) {
    Poly f(l_ + 1);
    for (unsigned i = 0; i < l_; ++i) {
      f[i] = static_cast<std::uint32_t>(splitmix(state) % zq_.q());
    }
    f[l_] = 1;
    if (is_irreducible(f)) {
      modulus_.assign(f.begin(), f.end() - 1);
      found = true;
    }
  }

  // Precompute x^(l+i) mod f for i in [0, l-2], stored sparsely (with a
  // binomial modulus each row has exactly one nonzero entry, keeping
  // reduce() at O(l) and the full multiply at the paper's O(l log l)).
  reduction_.resize(l_ > 1 ? l_ - 1 : 0);
  Poly x_pow(l_ + 1, 0);  // x^l
  x_pow[l_] = 1;
  Poly f_full = modulus_;
  f_full.push_back(1);
  Poly cur = poly_mod(zq_, x_pow, f_full);
  for (unsigned i = 0; i + 1 < l_; ++i) {
    cur.resize(l_, 0);
    reduction_[i].clear();
    for (unsigned j = 0; j < l_; ++j) {
      if (cur[j] != 0) {
        reduction_[i].push_back({static_cast<std::uint16_t>(j), cur[j]});
      }
    }
    // cur <- cur * x mod f
    Poly shifted(cur.size() + 1, 0);
    for (std::size_t j = 0; j < cur.size(); ++j) shifted[j + 1] = cur[j];
    cur = poly_mod(zq_, shifted, f_full);
  }
}

bool FftField::is_irreducible(const std::vector<std::uint32_t>& f) const {
  // Rabin: f (monic, degree l) is irreducible over Z_q iff
  //   x^(q^l) ≡ x (mod f), and
  //   gcd(x^(q^(l/r)) - x, f) = 1 for every prime r dividing l.
  const Poly x = {0, 1};
  Poly frob_l = poly_powmod_x_q_to(zq_, f, l_);
  if (poly_sub(zq_, frob_l, x) != Poly{}) return false;
  for (unsigned r : prime_divisors(l_)) {
    Poly frob = poly_powmod_x_q_to(zq_, f, l_ / r);
    Poly g = poly_gcd(zq_, poly_sub(zq_, frob, x), f);
    if (g.size() > 1) return false;  // nontrivial common factor
  }
  return true;
}

double FftField::bits() const { return l_ * std::log2(double(zq_.q())); }

FftElem FftField::one() const {
  FftElem e;
  e.c[0] = 1;
  return e;
}

FftElem FftField::from_uint(std::uint64_t v) const {
  FftElem e;
  for (unsigned i = 0; i < l_ && v != 0; ++i) {
    e.c[i] = static_cast<std::uint32_t>(v % zq_.q());
    v /= zq_.q();
  }
  return e;
}

FftElem FftField::from_words(const std::uint32_t* words) const {
  FftElem e;
  for (unsigned i = 0; i < l_; ++i) e.c[i] = words[i] % zq_.q();
  return e;
}

bool FftField::is_zero(const FftElem& a) const {
  for (unsigned i = 0; i < l_; ++i) {
    if (a.c[i] != 0) return false;
  }
  return true;
}

FftElem FftField::add(const FftElem& a, const FftElem& b) const {
  count_add();
  FftElem out;
  for (unsigned i = 0; i < l_; ++i) out.c[i] = zq_.add(a.c[i], b.c[i]);
  return out;
}

FftElem FftField::sub(const FftElem& a, const FftElem& b) const {
  count_add();
  FftElem out;
  for (unsigned i = 0; i < l_; ++i) out.c[i] = zq_.sub(a.c[i], b.c[i]);
  return out;
}

FftElem FftField::neg(const FftElem& a) const {
  FftElem out;
  for (unsigned i = 0; i < l_; ++i) out.c[i] = zq_.neg(a.c[i]);
  return out;
}

void FftField::ntt(std::span<std::uint32_t> a, bool inverse) const {
  DPRBG_CHECK(a.size() == ntt_size_);
  const unsigned n = ntt_size_;
  const auto& stages = inverse ? stage_inv_twiddles_ : stage_twiddles_;
  // Bit-reversal permutation.
  for (unsigned i = 1, j = 0; i < n; ++i) {
    unsigned bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  unsigned s = 0;
  for (unsigned len = 2; len <= n; len <<= 1, ++s) {
    const unsigned half = len / 2;
    const std::uint32_t* tw = stages[s].data();
    for (unsigned i = 0; i < n; i += len) {
      simd::zq_butterfly(zq_, a.data() + i, a.data() + i + half, tw, half);
    }
  }
  if (inverse) {
    simd::zq_scale(zq_, a.data(), ntt_size_inv_, a.data(), n);
  }
}

FftElem FftField::reduce(const std::vector<std::uint32_t>& prod) const {
  FftElem out;
  for (unsigned i = 0; i < l_; ++i) out.c[i] = prod[i];
  for (unsigned i = 0; i + 1 < l_ && l_ + i < prod.size(); ++i) {
    const std::uint32_t hi = prod[l_ + i];
    if (hi == 0) continue;
    for (const auto& [j, coeff] : reduction_[i]) {
      out.c[j] = zq_.add(out.c[j], zq_.mul(hi, coeff));
    }
  }
  return out;
}

FftElem FftField::mul_impl(const FftElem& a, const FftElem& b,
                           bool use_ntt) const {
  count_mul();
  // Scratch buffers are reused across calls (per thread) so the hot
  // multiply path does not allocate.
  thread_local std::vector<std::uint32_t> fa, fb;
  if (use_ntt) {
    fa.assign(ntt_size_, 0);
    fb.assign(ntt_size_, 0);
    for (unsigned i = 0; i < l_; ++i) {
      fa[i] = a.c[i];
      fb[i] = b.c[i];
    }
    ntt(std::span(fa), /*inverse=*/false);
    ntt(std::span(fb), /*inverse=*/false);
    simd::zq_mul(zq_, fa.data(), fb.data(), fa.data(), ntt_size_);
    ntt(std::span(fa), /*inverse=*/true);
  } else {
    fa.assign(2 * l_ - 1, 0);
    for (unsigned i = 0; i < l_; ++i) {
      if (a.c[i] == 0) continue;
      for (unsigned j = 0; j < l_; ++j) {
        fa[i + j] = zq_.add(fa[i + j], zq_.mul(a.c[i], b.c[j]));
      }
    }
  }
  return reduce(fa);
}

FftElem FftField::mul(const FftElem& a, const FftElem& b) const {
  return mul_impl(a, b, /*use_ntt=*/true);
}

FftElem FftField::mul_naive(const FftElem& a, const FftElem& b) const {
  return mul_impl(a, b, /*use_ntt=*/false);
}

void FftField::mul_batch(std::span<const FftElem> a,
                         std::span<const FftElem> b,
                         std::span<FftElem> out) const {
  DPRBG_CHECK(a.size() == b.size() && a.size() == out.size());
  const bool use_ntt = l_ >= kNttCrossoverL;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = mul_impl(a[i], b[i], use_ntt);
  }
}

FftElem FftField::pow(const FftElem& a, std::uint64_t e) const {
  FftElem result = one();
  FftElem base = a;
  while (e != 0) {
    if (e & 1u) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

FftElem FftField::inv(const FftElem& a) const {
  DPRBG_CHECK(!is_zero(a));
  count_inv();
  // a^(q^l - 2). Exponent can exceed 64 bits for large fields; exponentiate
  // via the base-q expansion of q^l - 2 = (q-1, q-1, ..., q-1, q-2) to
  // avoid big integers: q^l - 2 = sum_{i=0}^{l-1} d_i q^i with d_0 = q-2
  // and d_i = q-1 for i >= 1.
  // result = prod_i (a^(q^i))^(d_i); a^(q^i) via iterated pow(., q).
  FftElem result = pow(a, zq_.q() - 2);  // d_0
  FftElem frob = a;
  for (unsigned i = 1; i < l_; ++i) {
    frob = pow(frob, zq_.q());  // a^(q^i)
    result = mul(result, pow(frob, zq_.q() - 1));
  }
  return result;
}

}  // namespace dprbg
