#include "gf/zq_simd.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/telemetry.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DPRBG_X86 1
#endif

namespace dprbg::simd {

namespace {

// ---------------------------------------------------------------------
// Scalar reference kernels. The reduction is the same Barrett step as
// Zq::reduce (same reciprocal, same conditional subtract), so these are
// the canonical semantics the AVX2 path must reproduce bit-for-bit.

inline std::uint32_t reduce1(std::uint64_t p, std::uint32_t q,
                             std::uint64_t barrett) {
#ifdef __SIZEOF_INT128__
  const std::uint64_t q_hat = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(p) * barrett) >> 64);
  std::uint64_t r = p - q_hat * q;
  if (r >= q) r -= q;
  return static_cast<std::uint32_t>(r);
#else
  (void)barrett;
  return static_cast<std::uint32_t>(p % q);
#endif
}

void add_scalar(const std::uint32_t* a, const std::uint32_t* b,
                std::uint32_t* dst, std::size_t n, std::uint32_t q) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = a[i] + b[i];
    dst[i] = s >= q ? s - q : s;
  }
}

void sub_scalar(const std::uint32_t* a, const std::uint32_t* b,
                std::uint32_t* dst, std::size_t n, std::uint32_t q) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + q - b[i];
  }
}

void mul_scalar(const std::uint32_t* a, const std::uint32_t* b,
                std::uint32_t* dst, std::size_t n, std::uint32_t q,
                std::uint64_t barrett) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = reduce1(std::uint64_t{a[i]} * b[i], q, barrett);
  }
}

void scale_scalar(const std::uint32_t* a, std::uint32_t s, std::uint32_t* dst,
                  std::size_t n, std::uint32_t q, std::uint64_t barrett) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = reduce1(std::uint64_t{a[i]} * s, q, barrett);
  }
}

void axpy_scalar(std::uint32_t* acc, const std::uint32_t* x, std::uint32_t s,
                 std::size_t n, std::uint32_t q, std::uint64_t barrett) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t p = reduce1(std::uint64_t{x[i]} * s, q, barrett);
    const std::uint32_t sum = acc[i] + p;
    acc[i] = sum >= q ? sum - q : sum;
  }
}

void butterfly_scalar(std::uint32_t* lo, std::uint32_t* hi,
                      const std::uint32_t* tw, std::size_t n, std::uint32_t q,
                      std::uint64_t barrett) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t u = lo[i];
    const std::uint32_t v = reduce1(std::uint64_t{hi[i]} * tw[i], q, barrett);
    const std::uint32_t s = u + v;
    lo[i] = s >= q ? s - q : s;
    hi[i] = u >= v ? u - v : u + q - v;
  }
}

constexpr ZqKernels kScalar = {
    "scalar",    add_scalar,  sub_scalar,
    mul_scalar,  scale_scalar, axpy_scalar,
    butterfly_scalar,
};

#ifdef DPRBG_X86

// ---------------------------------------------------------------------
// AVX2 kernels: 8 lanes of u32 per iteration. 32x32 products land in
// 64-bit lanes via the even/odd _mm256_mul_epu32 split; the Barrett step
// computes mulhi64(p, reciprocal) exactly with 32-bit limb schoolbook
// (4 partial products), so q_hat — and therefore the canonical residue —
// matches the scalar path for every input.

// p mod q over 4 u64 lanes (p < 2^64, q < 2^31); result in the low 32
// bits of each lane, high bits zero.
__attribute__((target("avx2"))) inline __m256i barrett4(
    __m256i p, __m256i vq64, std::uint64_t m0, std::uint64_t m1) {
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffll);
  const __m256i vm0 = _mm256_set1_epi64x(static_cast<long long>(m0));
  const __m256i vm1 = _mm256_set1_epi64x(static_cast<long long>(m1));
  const __m256i p0 = _mm256_and_si256(p, mask32);
  const __m256i p1 = _mm256_srli_epi64(p, 32);
  // mulhi64(p, m) with m = m1*2^32 + m0:
  //   t = (p0*m0) >> 32; u = p1*m0 + t; v = p0*m1 + (u & mask32);
  //   hi = p1*m1 + (u >> 32) + (v >> 32)          (no 64-bit overflow)
  const __m256i t = _mm256_srli_epi64(_mm256_mul_epu32(p0, vm0), 32);
  const __m256i u = _mm256_add_epi64(_mm256_mul_epu32(p1, vm0), t);
  const __m256i v = _mm256_add_epi64(_mm256_mul_epu32(p0, vm1),
                                     _mm256_and_si256(u, mask32));
  const __m256i q_hat = _mm256_add_epi64(
      _mm256_mul_epu32(p1, vm1),
      _mm256_add_epi64(_mm256_srli_epi64(u, 32), _mm256_srli_epi64(v, 32)));
  // q_hat * q mod 2^64 (q fits 32 bits; q_hat may not).
  const __m256i prod_lo = _mm256_mul_epu32(q_hat, vq64);
  const __m256i prod_hi =
      _mm256_slli_epi64(_mm256_mul_epu32(_mm256_srli_epi64(q_hat, 32), vq64),
                        32);
  __m256i r = _mm256_sub_epi64(p, _mm256_add_epi64(prod_lo, prod_hi));
  // r < 2q < 2^32: one conditional subtract, signed 64-bit compare is
  // safe because both operands are < 2^33.
  const __m256i lt = _mm256_cmpgt_epi64(vq64, r);  // q > r
  r = _mm256_sub_epi64(r, _mm256_andnot_si256(lt, vq64));
  return r;
}

// (a*b) mod q over 8 u32 lanes.
__attribute__((target("avx2"))) inline __m256i mul8(
    __m256i va, __m256i vb, __m256i vq64, std::uint64_t m0,
    std::uint64_t m1) {
  const __m256i pe = _mm256_mul_epu32(va, vb);
  const __m256i po = _mm256_mul_epu32(_mm256_srli_epi64(va, 32),
                                      _mm256_srli_epi64(vb, 32));
  const __m256i re = barrett4(pe, vq64, m0, m1);
  const __m256i ro = barrett4(po, vq64, m0, m1);
  return _mm256_or_si256(re, _mm256_slli_epi64(ro, 32));
}

// (a+b) mod q over 8 u32 lanes (a, b < q so the raw sum fits u32).
__attribute__((target("avx2"))) inline __m256i add8(__m256i va, __m256i vb,
                                                    __m256i vq32) {
  const __m256i s = _mm256_add_epi32(va, vb);
  // s >= q  <=>  max_epu32(s, q) == s
  const __m256i ge = _mm256_cmpeq_epi32(_mm256_max_epu32(s, vq32), s);
  return _mm256_sub_epi32(s, _mm256_and_si256(ge, vq32));
}

// (a-b) mod q over 8 u32 lanes. a, b < q < 2^31 so signed compare works.
__attribute__((target("avx2"))) inline __m256i sub8(__m256i va, __m256i vb,
                                                    __m256i vq32) {
  const __m256i borrow = _mm256_cmpgt_epi32(vb, va);
  return _mm256_sub_epi32(_mm256_add_epi32(va, _mm256_and_si256(borrow, vq32)),
                          vb);
}

__attribute__((target("avx2"))) void add_avx2(const std::uint32_t* a,
                                              const std::uint32_t* b,
                                              std::uint32_t* dst,
                                              std::size_t n, std::uint32_t q) {
  const __m256i vq32 = _mm256_set1_epi32(static_cast<int>(q));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        add8(va, vb, vq32));
  }
  add_scalar(a + i, b + i, dst + i, n - i, q);
}

__attribute__((target("avx2"))) void sub_avx2(const std::uint32_t* a,
                                              const std::uint32_t* b,
                                              std::uint32_t* dst,
                                              std::size_t n, std::uint32_t q) {
  const __m256i vq32 = _mm256_set1_epi32(static_cast<int>(q));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        sub8(va, vb, vq32));
  }
  sub_scalar(a + i, b + i, dst + i, n - i, q);
}

__attribute__((target("avx2"))) void mul_avx2(const std::uint32_t* a,
                                              const std::uint32_t* b,
                                              std::uint32_t* dst,
                                              std::size_t n, std::uint32_t q,
                                              std::uint64_t barrett) {
  const __m256i vq64 = _mm256_set1_epi64x(static_cast<long long>(q));
  const std::uint64_t m0 = barrett & 0xffffffffull;
  const std::uint64_t m1 = barrett >> 32;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul8(va, vb, vq64, m0, m1));
  }
  mul_scalar(a + i, b + i, dst + i, n - i, q, barrett);
}

__attribute__((target("avx2"))) void scale_avx2(const std::uint32_t* a,
                                                std::uint32_t s,
                                                std::uint32_t* dst,
                                                std::size_t n, std::uint32_t q,
                                                std::uint64_t barrett) {
  const __m256i vq64 = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vs = _mm256_set1_epi32(static_cast<int>(s));
  const std::uint64_t m0 = barrett & 0xffffffffull;
  const std::uint64_t m1 = barrett >> 32;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul8(va, vs, vq64, m0, m1));
  }
  scale_scalar(a + i, s, dst + i, n - i, q, barrett);
}

__attribute__((target("avx2"))) void axpy_avx2(std::uint32_t* acc,
                                               const std::uint32_t* x,
                                               std::uint32_t s, std::size_t n,
                                               std::uint32_t q,
                                               std::uint64_t barrett) {
  const __m256i vq64 = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vq32 = _mm256_set1_epi32(static_cast<int>(q));
  const __m256i vs = _mm256_set1_epi32(static_cast<int>(s));
  const std::uint64_t m0 = barrett & 0xffffffffull;
  const std::uint64_t m1 = barrett >> 32;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i p = mul8(vx, vs, vq64, m0, m1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        add8(va, p, vq32));
  }
  axpy_scalar(acc + i, x + i, s, n - i, q, barrett);
}

__attribute__((target("avx2"))) void butterfly_avx2(
    std::uint32_t* lo, std::uint32_t* hi, const std::uint32_t* tw,
    std::size_t n, std::uint32_t q, std::uint64_t barrett) {
  const __m256i vq64 = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vq32 = _mm256_set1_epi32(static_cast<int>(q));
  const std::uint64_t m0 = barrett & 0xffffffffull;
  const std::uint64_t m1 = barrett >> 32;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vh =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    const __m256i vt =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tw + i));
    const __m256i vu =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    const __m256i v = mul8(vh, vt, vq64, m0, m1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + i),
                        add8(vu, v, vq32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + i),
                        sub8(vu, v, vq32));
  }
  butterfly_scalar(lo + i, hi + i, tw + i, n - i, q, barrett);
}

constexpr ZqKernels kAvx2 = {
    "avx2",    add_avx2,   sub_avx2,
    mul_avx2,  scale_avx2, axpy_avx2,
    butterfly_avx2,
};

#endif  // DPRBG_X86

// ---------------------------------------------------------------------
// Telemetry plumbing: per-op counters, bound lazily and only when
// telemetry is enabled (one relaxed load on the disabled path).

void tel_block(const char* op, std::size_t n) {
  if (!telemetry_enabled()) return;
  MetricsRegistry& reg = metrics();
  const std::string labels =
      std::string("op=") + op + " mode=" + dispatch_name();
  reg.counter("field_kernel_elems_total", labels).add(n);
  reg.histogram("field_kernel_block_len", std::string("op=") + op)
      .observe(n);
}

}  // namespace

const ZqKernels& scalar_kernels() { return kScalar; }

const ZqKernels& avx2_kernels() {
#ifdef DPRBG_X86
  return kAvx2;
#else
  return kScalar;
#endif
}

bool avx2_supported() {
#ifdef DPRBG_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool pclmul_supported() {
#ifdef DPRBG_X86
  return __builtin_cpu_supports("pclmul") != 0 &&
         __builtin_cpu_supports("sse4.1") != 0;
#else
  return false;
#endif
}

bool force_scalar() {
  static const bool forced = [] {
#ifdef DPRBG_FORCE_SCALAR
    return true;
#else
    const char* e = std::getenv("DPRBG_FORCE_SCALAR");
    return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
#endif
  }();
  return forced;
}

const ZqKernels& select_kernels(bool allow_simd) {
  if (allow_simd && avx2_supported()) return avx2_kernels();
  return scalar_kernels();
}

const ZqKernels& active_kernels() {
  static const ZqKernels& k = select_kernels(!force_scalar());
  return k;
}

const char* dispatch_name() { return active_kernels().name; }

void zq_add(const Zq& zq, const std::uint32_t* a, const std::uint32_t* b,
            std::uint32_t* dst, std::size_t n) {
  tel_block("add", n);
  active_kernels().add(a, b, dst, n, zq.q());
}

void zq_sub(const Zq& zq, const std::uint32_t* a, const std::uint32_t* b,
            std::uint32_t* dst, std::size_t n) {
  tel_block("sub", n);
  active_kernels().sub(a, b, dst, n, zq.q());
}

void zq_mul(const Zq& zq, const std::uint32_t* a, const std::uint32_t* b,
            std::uint32_t* dst, std::size_t n) {
  tel_block("mul", n);
  active_kernels().mul(a, b, dst, n, zq.q(), zq.barrett());
}

void zq_scale(const Zq& zq, const std::uint32_t* a, std::uint32_t s,
              std::uint32_t* dst, std::size_t n) {
  tel_block("scale", n);
  active_kernels().scale(a, s, dst, n, zq.q(), zq.barrett());
}

void zq_axpy(const Zq& zq, std::uint32_t* acc, const std::uint32_t* x,
             std::uint32_t s, std::size_t n) {
  tel_block("axpy", n);
  active_kernels().axpy(acc, x, s, n, zq.q(), zq.barrett());
}

void zq_butterfly(const Zq& zq, std::uint32_t* lo, std::uint32_t* hi,
                  const std::uint32_t* tw, std::size_t n) {
  tel_block("butterfly", n);
  active_kernels().butterfly(lo, hi, tw, n, zq.q(), zq.barrett());
}

void zq_pow_block(const Zq& zq, const std::uint32_t* a, std::uint64_t e,
                  std::uint32_t* dst, std::size_t n) {
  tel_block("pow", n);
  const ZqKernels& k = active_kernels();
  const std::uint32_t q = zq.q();
  const std::uint64_t m = zq.barrett();
  // dst = 1; base = a; square-and-multiply over the whole vector. The
  // base is squared in a scratch that reuses dst's tail... keep it
  // simple: a thread_local scratch sized to n.
  thread_local std::vector<std::uint32_t> base;
  base.assign(a, a + n);
  for (std::size_t i = 0; i < n; ++i) dst[i] = 1 % q;
  while (e != 0) {
    if (e & 1u) k.mul(dst, base.data(), dst, n, q, m);
    e >>= 1;
    if (e != 0) k.mul(base.data(), base.data(), base.data(), n, q, m);
  }
}

void zq_inv_block(const Zq& zq, std::uint32_t* vals, std::size_t n) {
  if (n == 0) return;
  tel_block("inv", n);
  const ZqKernels& k = active_kernels();
  const std::uint32_t q = zq.q();
  const std::uint64_t m = zq.barrett();
  // Montgomery's trick: prefix products, one scalar inversion, backward
  // sweep. The sweeps are inherently sequential, so this building block
  // gains from the shared Barrett reduce rather than from lane
  // parallelism; it exists so callers have one audited batch-inverse.
  thread_local std::vector<std::uint32_t> prefix;
  prefix.resize(n);
  std::uint32_t acc = 1 % q;
  for (std::size_t i = 0; i < n; ++i) {
    DPRBG_CHECK(vals[i] != 0);
    prefix[i] = acc;
    acc = reduce1(std::uint64_t{acc} * vals[i], q, m);
  }
  std::uint32_t inv_acc = zq.inv(acc);
  for (std::size_t i = n; i-- > 0;) {
    const std::uint32_t v = vals[i];
    vals[i] = reduce1(std::uint64_t{inv_acc} * prefix[i], q, m);
    inv_acc = reduce1(std::uint64_t{inv_acc} * v, q, m);
  }
  (void)k;
}

void zq_power_series(const Zq& zq, std::uint32_t r, std::uint32_t* dst,
                     std::size_t n) {
  if (n == 0) return;
  tel_block("power_series", n);
  const std::uint32_t q = zq.q();
  const std::uint64_t m = zq.barrett();
  std::uint32_t acc = r % q;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = acc;
    acc = reduce1(std::uint64_t{acc} * r, q, m);
  }
}

}  // namespace dprbg::simd
