// Batch (vector) kernels over Z_q for contiguous uint32 arrays, with
// runtime CPU dispatch: an AVX2 implementation where the host supports it
// and a portable scalar fallback everywhere else.
//
// Contracts (every kernel, both implementations):
//  * inputs are canonical residues in [0, q); outputs are canonical too,
//  * q is prime and q < 2^31 (the same overflow headroom Zq::add needs),
//  * the AVX2 and scalar paths produce bit-for-bit identical outputs —
//    canonical residues are unique, and both reduce with the same Barrett
//    reciprocal floor((2^64-1)/q) — so dispatch never changes results,
//  * dst may alias a or b (each element is loaded before it is stored),
//    but must not partially overlap them,
//  * length 0 is a no-op; unaligned pointers and odd lengths are fine
//    (the vector body uses unaligned loads and a scalar tail).
//
// Dispatch: `active_kernels()` picks AVX2 when the CPU reports it, unless
// forced scalar by the DPRBG_FORCE_SCALAR environment variable (any value
// but "0") or the DPRBG_FORCE_SCALAR compile definition (the CMake option
// of the same name). `select_kernels(allow_simd)` is the pure chooser for
// tests that must exercise both paths in one process.
//
// Telemetry: the Zq-taking wrappers below publish field_kernel_* counters
// and a block-length histogram when telemetry is enabled (zero registry
// mutations otherwise, matching common/telemetry.h).

#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/zq.h"

namespace dprbg::simd {

// Raw kernel table. All functions take explicit q (and the Barrett
// reciprocal where reduction is needed) so the inner loops carry no
// object state.
struct ZqKernels {
  const char* name;  // "scalar" or "avx2"
  // dst[i] = (a[i] + b[i]) mod q
  void (*add)(const std::uint32_t* a, const std::uint32_t* b,
              std::uint32_t* dst, std::size_t n, std::uint32_t q);
  // dst[i] = (a[i] - b[i]) mod q
  void (*sub)(const std::uint32_t* a, const std::uint32_t* b,
              std::uint32_t* dst, std::size_t n, std::uint32_t q);
  // dst[i] = (a[i] * b[i]) mod q
  void (*mul)(const std::uint32_t* a, const std::uint32_t* b,
              std::uint32_t* dst, std::size_t n, std::uint32_t q,
              std::uint64_t barrett);
  // dst[i] = (a[i] * s) mod q
  void (*scale)(const std::uint32_t* a, std::uint32_t s, std::uint32_t* dst,
                std::size_t n, std::uint32_t q, std::uint64_t barrett);
  // acc[i] = (acc[i] + x[i] * s) mod q
  void (*axpy)(std::uint32_t* acc, const std::uint32_t* x, std::uint32_t s,
               std::size_t n, std::uint32_t q, std::uint64_t barrett);
  // One NTT stage over n butterfly pairs:
  //   v = hi[i] * tw[i];  hi[i] = lo[i] - v;  lo[i] = lo[i] + v   (mod q)
  void (*butterfly)(std::uint32_t* lo, std::uint32_t* hi,
                    const std::uint32_t* tw, std::size_t n, std::uint32_t q,
                    std::uint64_t barrett);
};

const ZqKernels& scalar_kernels();
// Valid to call only when avx2_supported(); scalar otherwise.
const ZqKernels& avx2_kernels();

[[nodiscard]] bool avx2_supported();
// True iff the hardware PCLMUL path for GF(2^m) is usable (see gf2.h).
[[nodiscard]] bool pclmul_supported();
// DPRBG_FORCE_SCALAR (env var != "0", or the CMake compile definition).
[[nodiscard]] bool force_scalar();
// Pure chooser: AVX2 table iff allow_simd and the CPU supports it.
const ZqKernels& select_kernels(bool allow_simd);
// The process-wide table: select_kernels(!force_scalar()), decided once.
const ZqKernels& active_kernels();
// active_kernels().name — for bench/status output.
[[nodiscard]] const char* dispatch_name();

// Telemetry-wrapped convenience entry points over a Zq instance. These
// are what the NTT / blocked-combination layers call.
void zq_add(const Zq& zq, const std::uint32_t* a, const std::uint32_t* b,
            std::uint32_t* dst, std::size_t n);
void zq_sub(const Zq& zq, const std::uint32_t* a, const std::uint32_t* b,
            std::uint32_t* dst, std::size_t n);
void zq_mul(const Zq& zq, const std::uint32_t* a, const std::uint32_t* b,
            std::uint32_t* dst, std::size_t n);
void zq_scale(const Zq& zq, const std::uint32_t* a, std::uint32_t s,
              std::uint32_t* dst, std::size_t n);
void zq_axpy(const Zq& zq, std::uint32_t* acc, const std::uint32_t* x,
             std::uint32_t s, std::size_t n);
void zq_butterfly(const Zq& zq, std::uint32_t* lo, std::uint32_t* hi,
                  const std::uint32_t* tw, std::size_t n);

// Batched building blocks (orchestrated on top of the dispatched mul
// kernel, so they inherit the SIMD path automatically).
//
// dst[i] = a[i]^e mod q, square-and-multiply across the whole vector.
void zq_pow_block(const Zq& zq, const std::uint32_t* a, std::uint64_t e,
                  std::uint32_t* dst, std::size_t n);
// In-place vals[i] <- vals[i]^{-1} via Montgomery's trick: one Zq::inv
// plus ~3n multiplications. Every entry must be nonzero.
void zq_inv_block(const Zq& zq, std::uint32_t* vals, std::size_t n);
// dst[i] = r^{i+1} mod q (the Horner power series batch_combine walks).
void zq_power_series(const Zq& zq, std::uint32_t r, std::uint32_t* dst,
                     std::size_t n);

}  // namespace dprbg::simd
