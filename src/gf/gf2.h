// GF(2^m) for m <= 64, with the two multiplication strategies the paper
// discusses in Section 2:
//
//  * naive shift-and-XOR ("naive multiplication in a field of size 2^k
//    takes O(k^2) steps"), used for m > 16, and
//  * log/antilog tables for m <= 16, which is the regime where the paper
//    notes that "when k is small, working over GF(2^k) with the naive
//    O(k^2) multiplication is faster than working over our special field".
//
// Elements are value types holding the polynomial's bit pattern in a
// uint64_t; every value in [0, 2^m) is a valid element, so uniform
// sampling is just masking random bits.

#pragma once

#include <array>
#include <cstdint>

#include "common/check.h"
#include "common/metrics.h"
#include "gf/gf2_clmul.h"

namespace dprbg {

namespace gf2_detail {

// Low-weight irreducible polynomials over GF(2), from the standard
// tables (Seroussi, "Table of low-weight binary irreducible polynomials",
// HP Labs HPL-98-135). The value encodes the polynomial minus the leading
// x^m term; e.g. for m=8, 0x1B = x^4+x^3+x+1 means x^8+x^4+x^3+x+1.
template <unsigned M>
constexpr std::uint64_t modulus();

template <> constexpr std::uint64_t modulus<4>() { return 0x3; }    // x^4+x+1
template <> constexpr std::uint64_t modulus<8>() { return 0x1B; }   // x^8+x^4+x^3+x+1
template <> constexpr std::uint64_t modulus<16>() { return 0x2B; }  // x^16+x^5+x^3+x+1
template <> constexpr std::uint64_t modulus<24>() { return 0x1B; }  // x^24+x^4+x^3+x+1
template <> constexpr std::uint64_t modulus<32>() { return 0x8D; }  // x^32+x^7+x^3+x^2+1
template <> constexpr std::uint64_t modulus<40>() { return 0x39; }  // x^40+x^5+x^4+x^3+1
template <> constexpr std::uint64_t modulus<48>() { return 0x2D; }  // x^48+x^5+x^3+x^2+1
template <> constexpr std::uint64_t modulus<56>() { return 0x95; }  // x^56+x^7+x^4+x^2+1
template <> constexpr std::uint64_t modulus<64>() { return 0x1B; }  // x^64+x^4+x^3+x+1

// Carry-less multiply of two m-bit operands followed by reduction modulo
// the field polynomial. constexpr so tables below can be built at startup
// from the same primitive.
template <unsigned M>
constexpr std::uint64_t clmul_reduce(std::uint64_t a, std::uint64_t b) {
  // Product has up to 2M-1 bits; keep it in (hi, lo) 64-bit halves.
  std::uint64_t lo = 0, hi = 0;
  for (unsigned i = 0; i < M; ++i) {
    if ((b >> i) & 1u) {
      lo ^= a << i;
      if (i != 0) hi ^= a >> (64 - i);
    }
  }
  // Reduce bits [M, 2M-1] down using x^M = modulus (mod f).
  constexpr std::uint64_t kMod = modulus<M>();
  for (int bit = static_cast<int>(2 * M - 2); bit >= static_cast<int>(M);
       --bit) {
    const bool set = bit >= 64 ? ((hi >> (bit - 64)) & 1u) != 0
                               : ((lo >> bit) & 1u) != 0;
    if (!set) continue;
    if (bit >= 64) {
      hi ^= std::uint64_t{1} << (bit - 64);
    } else {
      lo ^= std::uint64_t{1} << bit;
    }
    // XOR in (x^M + kMod) shifted by (bit - M): clears the bit via the
    // x^M term and adds the low-order tail.
    const unsigned sh = static_cast<unsigned>(bit) - M;
    lo ^= kMod << sh;
    if (sh != 0) hi ^= kMod >> (64 - sh);
  }
  constexpr std::uint64_t kMask =
      M == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << M) - 1);
  return lo & kMask;
}

// Log/antilog tables for small fields. exp_table has 2^(M+1) entries so
// that exp[log[a] + log[b]] works without a modular reduction.
template <unsigned M>
struct LogTables {
  std::array<std::uint16_t, (std::size_t{1} << M)> log{};
  std::array<std::uint16_t, (std::size_t{1} << (M + 1))> exp{};
  std::uint64_t generator = 0;

  LogTables() {
    const std::uint64_t order = (std::uint64_t{1} << M) - 1;
    // Find a generator: try successive elements until one has full order.
    for (std::uint64_t g = 2;; ++g) {
      std::uint64_t x = 1;
      bool full_order = true;
      for (std::uint64_t e = 1; e < order; ++e) {
        x = clmul_reduce<M>(x, g);
        if (x == 1) {
          full_order = false;
          break;
        }
      }
      x = clmul_reduce<M>(x, g);
      if (full_order && x == 1) {
        generator = g;
        break;
      }
    }
    std::uint64_t x = 1;
    for (std::uint64_t e = 0; e < order; ++e) {
      exp[e] = static_cast<std::uint16_t>(x);
      exp[e + order] = static_cast<std::uint16_t>(x);
      log[x] = static_cast<std::uint16_t>(e);
      x = clmul_reduce<M>(x, generator);
    }
    // Two extra slots so exp[log a + log b] is always in range.
    exp[2 * order] = 1;
    exp[2 * order + 1] = static_cast<std::uint16_t>(generator);
  }
};

template <unsigned M>
const LogTables<M>& log_tables() {
  static const LogTables<M> tables;
  return tables;
}

}  // namespace gf2_detail

// A GF(2^m) element. Satisfies the FiniteField concept.
template <unsigned M>
class GF2 {
  static_assert(M >= 4 && M <= 64);

 public:
  static constexpr unsigned kBits = M;
  static constexpr unsigned kBytes = (M + 7) / 8;
  static constexpr std::uint64_t kMask =
      M == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << M) - 1);

  constexpr GF2() = default;

  static constexpr GF2 zero() { return GF2{}; }
  static constexpr GF2 one() { return GF2{1}; }
  // Any bit pattern is a valid element; extra high bits are masked off so
  // `from_uint(random_bits)` is a uniform sample.
  static constexpr GF2 from_uint(std::uint64_t v) { return GF2{v & kMask}; }

  [[nodiscard]] constexpr std::uint64_t to_uint() const { return v_; }
  [[nodiscard]] constexpr bool is_zero() const { return v_ == 0; }

  friend GF2 operator+(GF2 a, GF2 b) {
    count_add();
    return GF2{a.v_ ^ b.v_};
  }
  // Characteristic 2: subtraction is addition.
  friend GF2 operator-(GF2 a, GF2 b) { return a + b; }
  GF2 operator-() const { return *this; }

  friend GF2 operator*(GF2 a, GF2 b) {
    count_mul();
    return GF2{mul_raw(a.v_, b.v_)};
  }
  friend GF2 operator/(GF2 a, GF2 b) { return a * b.inv(); }

  GF2& operator+=(GF2 o) { return *this = *this + o; }
  GF2& operator-=(GF2 o) { return *this = *this - o; }
  GF2& operator*=(GF2 o) { return *this = *this * o; }
  GF2& operator/=(GF2 o) { return *this = *this / o; }

  // Multiplicative inverse by Fermat (a^(2^m - 2)); counted as a single
  // inversion so the operation-count metrics match the paper's model
  // (which treats inversions during interpolation as a unit).
  [[nodiscard]] GF2 inv() const {
    DPRBG_CHECK(v_ != 0);
    count_inv();
    if constexpr (M <= 16) {
      const auto& t = gf2_detail::log_tables<M>();
      const std::uint64_t order = (std::uint64_t{1} << M) - 1;
      return GF2{static_cast<std::uint64_t>(t.exp[order - t.log[v_]])};
    } else {
      // a^(2^m - 2) = prod of squarings: the addition-chain below performs
      // m-1 squarings and m-2 multiplies.
      std::uint64_t result = 1;
      std::uint64_t base = v_;  // base = a^(2^i)
      for (unsigned i = 1; i < M; ++i) {
        base = mul_raw(base, base);
        result = mul_raw(result, base);
      }
      return GF2{result};
    }
  }

  [[nodiscard]] GF2 pow(std::uint64_t e) const {
    std::uint64_t result = 1;
    std::uint64_t base = v_;
    while (e != 0) {
      if (e & 1u) result = mul_raw(result, base);
      base = mul_raw(base, base);
      e >>= 1;
    }
    return GF2{result};
  }

  friend constexpr bool operator==(GF2 a, GF2 b) = default;

 private:
  constexpr explicit GF2(std::uint64_t v) : v_(v) {}

  // Raw multiply without metric accounting (used inside inv/pow so the
  // counters reflect protocol-level operations, not micro-steps).
  static std::uint64_t mul_raw(std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0) return 0;
    if constexpr (M <= 16) {
      const auto& t = gf2_detail::log_tables<M>();
      return t.exp[t.log[a] + t.log[b]];
    } else {
      // Hardware PCLMUL when available (gf2_clmul.h); bit-for-bit the
      // same canonical remainder as the software loop, ~20x faster.
      if (gf2_detail::clmul_hw) {
        return gf2_detail::clmul_hw_mul(a, b, M, gf2_detail::modulus<M>());
      }
      return gf2_detail::clmul_reduce<M>(a, b);
    }
  }

  std::uint64_t v_ = 0;
};

// The fields used throughout the repository. GF2_64 is the production
// default (security parameter k = 64); GF2_8 is used by the soundness
// experiments where the error probability 1/p must be large enough to
// observe.
using GF2_8 = GF2<8>;
using GF2_16 = GF2<16>;
using GF2_32 = GF2<32>;
using GF2_64 = GF2<64>;

}  // namespace dprbg
