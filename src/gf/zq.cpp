#include "gf/zq.h"

namespace dprbg {

namespace {

// Prime factors of n, without multiplicity (n is small: < 2^32).
std::vector<std::uint32_t> prime_factors(std::uint32_t n) {
  std::vector<std::uint32_t> factors;
  for (std::uint32_t p = 2; std::uint64_t{p} * p <= n; ++p) {
    if (n % p == 0) {
      factors.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

}  // namespace

Zq::Zq(std::uint32_t q) : q_(q) {
  DPRBG_CHECK(is_prime(q));
  barrett_ = ~std::uint64_t{0} / q;  // floor((2^64 - 1) / q)
  if (q <= kTableLimit) {
    mul_table_.resize(std::size_t{q} * q);
    for (std::uint32_t a = 0; a < q; ++a) {
      for (std::uint32_t b = 0; b < q; ++b) {
        mul_table_[std::size_t{a} * q + b] =
            static_cast<std::uint32_t>((std::uint64_t{a} * b) % q);
      }
    }
    inv_table_.resize(q);
    for (std::uint32_t a = 1; a < q; ++a) inv_table_[a] = pow(a, q - 2);
  }
}

std::uint32_t Zq::pow(std::uint32_t a, std::uint64_t e) const {
  // Square-and-multiply over the Barrett-reduced product.
  std::uint64_t result = 1;
  std::uint64_t base = a % q_;
  while (e != 0) {
    if (e & 1u) result = reduce(result * base);
    base = reduce(base * base);
    e >>= 1;
  }
  return static_cast<std::uint32_t>(result);
}

bool Zq::is_generator(std::uint32_t g) const {
  if (g == 0) return false;
  for (std::uint32_t p : prime_factors(q_ - 1)) {
    if (pow(g, (q_ - 1) / p) == 1) return false;
  }
  return true;
}

std::uint32_t Zq::find_generator() const {
  for (std::uint32_t g = 2; g < q_; ++g) {
    if (is_generator(g)) return g;
  }
  DPRBG_CHECK(false && "no generator found (q not prime?)");
  return 0;
}

std::uint32_t Zq::root_of_unity(std::uint32_t order) const {
  DPRBG_CHECK(order != 0 && (q_ - 1) % order == 0);
  const std::uint32_t g = find_generator();
  return pow(g, (q_ - 1) / order);
}

bool Zq::is_prime(std::uint32_t n) {
  if (n < 2) return false;
  for (std::uint32_t p = 2; std::uint64_t{p} * p <= n; ++p) {
    if (n % p == 0) return false;
  }
  return true;
}

}  // namespace dprbg
