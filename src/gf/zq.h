// Z_q arithmetic for a small runtime prime q, the base field of the
// paper's special construction GF(q^l) (Section 2).
//
// The paper: "We can implement operations over Z_q via a table". When q is
// small enough we precompute a q*q multiplication table and a q-entry
// inverse table; otherwise we fall back to direct modular arithmetic.

#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dprbg {

class Zq {
 public:
  // q must be prime (checked).
  explicit Zq(std::uint32_t q);

  [[nodiscard]] std::uint32_t q() const { return q_; }
  [[nodiscard]] bool tabulated() const { return !mul_table_.empty(); }
  // The Barrett reciprocal floor((2^64 - 1) / q). Exposed for the batch
  // kernels in gf/zq_simd.h, which reduce whole vectors with the same
  // constant (and therefore produce the same canonical residues).
  [[nodiscard]] std::uint64_t barrett() const { return barrett_; }

  [[nodiscard]] std::uint32_t add(std::uint32_t a, std::uint32_t b) const {
    const std::uint32_t s = a + b;
    return s >= q_ ? s - q_ : s;
  }
  [[nodiscard]] std::uint32_t sub(std::uint32_t a, std::uint32_t b) const {
    return a >= b ? a - b : a + q_ - b;
  }
  [[nodiscard]] std::uint32_t neg(std::uint32_t a) const {
    return a == 0 ? 0 : q_ - a;
  }
  [[nodiscard]] std::uint32_t mul(std::uint32_t a, std::uint32_t b) const {
    if (!mul_table_.empty()) return mul_table_[std::size_t{a} * q_ + b];
    return reduce(std::uint64_t{a} * b);
  }
  [[nodiscard]] std::uint32_t inv(std::uint32_t a) const {
    DPRBG_CHECK(a != 0);
    if (!inv_table_.empty()) return inv_table_[a];
    return pow(a, q_ - 2);
  }
  [[nodiscard]] std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

  // True iff g generates the full multiplicative group Z_q^*.
  [[nodiscard]] bool is_generator(std::uint32_t g) const;
  // Some generator of Z_q^*.
  [[nodiscard]] std::uint32_t find_generator() const;
  // An element of exact multiplicative order `order` (must divide q-1).
  [[nodiscard]] std::uint32_t root_of_unity(std::uint32_t order) const;

  static bool is_prime(std::uint32_t n);

 private:
  // Barrett reduction of p < 2^64 modulo q on the non-tabulated hot path
  // (NTT butterflies call mul() in a tight loop): with the precomputed
  // reciprocal m = floor((2^64-1) / q), q_hat = mulhi64(p, m) satisfies
  // floor(p/q) - 1 <= q_hat <= floor(p/q), so r = p - q_hat*q < 2q and
  // one conditional subtract finishes — no hardware divide, for every
  // q >= 1.
  [[nodiscard]] std::uint32_t reduce(std::uint64_t p) const {
#ifdef __SIZEOF_INT128__
    const std::uint64_t q_hat = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(p) * barrett_) >> 64);
    std::uint64_t r = p - q_hat * q_;
    if (r >= q_) r -= q_;
    return static_cast<std::uint32_t>(r);
#else
    return static_cast<std::uint32_t>(p % q_);
#endif
  }

  std::uint32_t q_;
  std::uint64_t barrett_ = 0;             // floor((2^64 - 1) / q)
  std::vector<std::uint32_t> mul_table_;  // q*q entries when q <= kTableLimit
  std::vector<std::uint32_t> inv_table_;  // q entries when tabulated

  static constexpr std::uint32_t kTableLimit = 1024;
};

}  // namespace dprbg
