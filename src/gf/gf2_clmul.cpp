#include "gf/gf2_clmul.h"

#include "gf/zq_simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DPRBG_X86 1
#endif

namespace dprbg::gf2_detail {

bool clmul_hw_probe() {
  return simd::pclmul_supported() && !simd::force_scalar();
}

#ifdef DPRBG_X86

__attribute__((target("pclmul,sse4.1"))) std::uint64_t clmul_hw_mul(
    std::uint64_t a, std::uint64_t b, unsigned m, std::uint64_t mod) {
  const __m128i pa = _mm_cvtsi64_si128(static_cast<long long>(a));
  const __m128i pb = _mm_cvtsi64_si128(static_cast<long long>(b));
  const __m128i p = _mm_clmulepi64_si128(pa, pb, 0x00);
  std::uint64_t lo = static_cast<std::uint64_t>(_mm_cvtsi128_si64(p));
  std::uint64_t hi =
      static_cast<std::uint64_t>(_mm_extract_epi64(p, 1));
  const std::uint64_t mask =
      m == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << m) - 1);
  const __m128i pm = _mm_cvtsi64_si128(static_cast<long long>(mod));
  // Fold the overflow T = p >> m back in via x^m ≡ mod (mod f):
  // p ≡ (p mod x^m) ⊕ T*mod. The product has < 2m <= 128 bits, so T
  // always fits one 64-bit limb; each fold shrinks the overflow by
  // ~(m - deg mod) bits and the loop terminates in <= 3 passes.
  for (;;) {
    const std::uint64_t t =
        m == 64 ? hi : ((lo >> m) | (hi << (64 - m)));
    if (t == 0) break;
    hi = 0;
    lo &= mask;
    const __m128i f = _mm_clmulepi64_si128(
        _mm_cvtsi64_si128(static_cast<long long>(t)), pm, 0x00);
    lo ^= static_cast<std::uint64_t>(_mm_cvtsi128_si64(f));
    hi ^= static_cast<std::uint64_t>(_mm_extract_epi64(f, 1));
  }
  return lo & mask;
}

#else

std::uint64_t clmul_hw_mul(std::uint64_t, std::uint64_t, unsigned,
                           std::uint64_t) {
  return 0;  // unreachable: clmul_hw_probe() is false off x86
}

#endif

}  // namespace dprbg::gf2_detail
