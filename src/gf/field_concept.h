// The FiniteField concept: the contract every field used by the protocol
// layer satisfies.
//
// The paper presents its protocols over GF(2^k) ("For simplicity however
// the algorithms we provide below assume we work over GF(2^k)") and
// separately constructs a special field GF(q^l) with fast multiplication
// (Section 2). We follow the same split: protocols are generic over this
// concept and are instantiated with GF2<k>; the NTT field lives in
// fft_field.h as a runtime-parameterized substrate with its own benchmark
// (experiment E1).

#pragma once

#include <concepts>
#include <cstdint>

namespace dprbg {

template <typename F>
concept FiniteField = requires(F a, F b, std::uint64_t v) {
  { F::zero() } -> std::same_as<F>;
  { F::one() } -> std::same_as<F>;
  { F::from_uint(v) } -> std::same_as<F>;
  { a + b } -> std::same_as<F>;
  { a - b } -> std::same_as<F>;
  { a * b } -> std::same_as<F>;
  { a / b } -> std::same_as<F>;
  { a.inv() } -> std::same_as<F>;
  { a.to_uint() } -> std::same_as<std::uint64_t>;
  { a == b } -> std::convertible_to<bool>;
  { a.is_zero() } -> std::convertible_to<bool>;
  // Number of bits in the field size (the security parameter k: |F| = 2^k
  // for GF(2^k)); used for soundness-error accounting and serialization.
  { F::kBits } -> std::convertible_to<unsigned>;
  { F::kBytes } -> std::convertible_to<unsigned>;
};

}  // namespace dprbg
