// Hardware carry-less multiplication for GF(2^m), m > 16.
//
// gf2.h's software `clmul_reduce` is a shift-and-XOR bit loop — hundreds
// of cycles per product — and GF2_64 multiplication is the single hottest
// operation of every wide-batch protocol run (Horner combinations touch
// O(n*M) of them per round). On x86 the PCLMULQDQ instruction computes
// the 128-bit carry-less product in one instruction; reduction modulo the
// low-weight field polynomial folds the high bits down in <= 3 passes.
//
// The result is the canonical remainder mod f = x^m + tail, bit-for-bit
// identical to clmul_reduce<M> (remainders of degree < m are unique), so
// switching paths never changes protocol outputs — tests/gf2_test.cpp
// asserts the differential.
//
// Dispatch: `clmul_hw` latches once per process — CPU support (PCLMUL +
// SSE4.1) and not DPRBG_FORCE_SCALAR (env var or CMake option). gf2.h
// consults it on the m > 16 multiply path. The inline variable
// zero-initializes to false, so any multiplication that races static
// initialization simply takes the (correct) software path.

#pragma once

#include <cstdint>

namespace dprbg::gf2_detail {

// True iff the PCLMUL path should be used: hardware support and not
// forced scalar. Reads the environment once.
[[nodiscard]] bool clmul_hw_probe();

inline const bool clmul_hw = clmul_hw_probe();

// (a * b) mod (x^m + mod) with deg a, deg b < m and 16 < m <= 64.
// Canonical result (degree < m). Call only when clmul_hw is true.
[[nodiscard]] std::uint64_t clmul_hw_mul(std::uint64_t a, std::uint64_t b,
                                         unsigned m, std::uint64_t mod);

}  // namespace dprbg::gf2_detail
