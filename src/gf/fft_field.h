// The paper's special field GF(q^l) with O(l log l) multiplication
// (Section 2, "Model"):
//
//   "Let q be a prime and l an integer such that q >= 2l+1 and q^l >= 2^k.
//    We work over GF(q^l). We view the field elements as degree l
//    polynomials over Z_q. Then we use discrete Fourier transforms to do
//    the multiplication, modulo some irreducible polynomial, in O(l log l)
//    operations over Z_q."
//
// The paper omits the details; this file supplies them:
//  * q is chosen as the smallest prime with q >= 2l+1 and q ≡ 1 (mod N),
//    where N is the smallest power of two >= 2l-1, so Z_q contains the
//    N-th roots of unity needed for a radix-2 NTT,
//  * the modulus is a uniformly random monic degree-l polynomial accepted
//    by Rabin's irreducibility test,
//  * multiplication runs: forward NTT of both operands (zero-padded to N),
//    pointwise product, inverse NTT, then reduction modulo the field
//    polynomial via a precomputed table of x^(l+i) mod f.
//
// A naive O(l^2) schoolbook multiply is also provided so experiment E1 can
// reproduce the paper's remark that naive GF(2^k) wins for small k.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gf/zq.h"

namespace dprbg {

// An element of GF(q^l): coefficients c[0..l-1] over Z_q, low degree
// first. Fixed-capacity so elements are cheap value types.
struct FftElem {
  static constexpr unsigned kMaxL = 256;
  std::array<std::uint32_t, kMaxL> c{};

  friend bool operator==(const FftElem&, const FftElem&) = default;
};

class FftField {
 public:
  // Builds GF(q^l). `seed` drives the random search for an irreducible
  // modulus (deterministic for reproducibility).
  explicit FftField(unsigned l, std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  [[nodiscard]] unsigned l() const { return l_; }
  [[nodiscard]] std::uint32_t q() const { return zq_.q(); }
  // log2(|field|), the effective security parameter k = l * log2(q).
  [[nodiscard]] double bits() const;
  // The irreducible modulus f (degree l, monic; coefficient of x^l is 1 and
  // omitted: modulus()[i] is the coefficient of x^i, i < l).
  [[nodiscard]] const std::vector<std::uint32_t>& modulus() const {
    return modulus_;
  }

  [[nodiscard]] FftElem zero() const { return {}; }
  [[nodiscard]] FftElem one() const;
  // Builds an element from arbitrary bits (coefficients taken mod q); used
  // for deterministic test vectors, not uniform sampling.
  [[nodiscard]] FftElem from_uint(std::uint64_t v) const;
  // Element from l caller-supplied 32-bit words, each reduced mod q. The
  // reduction bias is ~q/2^32 per coefficient; this field is a substrate
  // for the E1 arithmetic benchmark, not a protocol sampling path, so the
  // bias is irrelevant here.
  [[nodiscard]] FftElem from_words(const std::uint32_t* words) const;

  [[nodiscard]] bool is_zero(const FftElem& a) const;
  [[nodiscard]] FftElem add(const FftElem& a, const FftElem& b) const;
  [[nodiscard]] FftElem sub(const FftElem& a, const FftElem& b) const;
  [[nodiscard]] FftElem neg(const FftElem& a) const;
  // NTT-based multiplication: O(l log l) operations over Z_q.
  [[nodiscard]] FftElem mul(const FftElem& a, const FftElem& b) const;
  // Schoolbook multiplication: O(l^2) operations over Z_q (for E1).
  [[nodiscard]] FftElem mul_naive(const FftElem& a, const FftElem& b) const;
  // Fermat inverse: a^(q^l - 2).
  [[nodiscard]] FftElem inv(const FftElem& a) const;
  [[nodiscard]] FftElem pow(const FftElem& a, std::uint64_t e) const;

 private:
  // In-place radix-2 NTT of size ntt_size_ over Z_q.
  void ntt(std::vector<std::uint32_t>& a, bool inverse) const;
  // Reduce a degree <= 2l-2 polynomial modulo f using the x^(l+i) table.
  [[nodiscard]] FftElem reduce(const std::vector<std::uint32_t>& prod) const;
  [[nodiscard]] FftElem mul_impl(const FftElem& a, const FftElem& b,
                                 bool use_ntt) const;

  // Rabin's irreducibility test over Z_q[x].
  [[nodiscard]] bool is_irreducible(
      const std::vector<std::uint32_t>& f) const;

  unsigned l_;
  Zq zq_;
  std::vector<std::uint32_t> modulus_;  // coefficients of f below x^l
  unsigned ntt_size_ = 0;               // power of two >= 2l-1
  std::vector<std::uint32_t> ntt_roots_;      // forward twiddles
  std::vector<std::uint32_t> ntt_inv_roots_;  // inverse twiddles
  std::uint32_t ntt_size_inv_ = 0;            // 1/N mod q
  // reduction_[i] = x^(l+i) mod f, for i in [0, l-2], stored as sparse
  // (coefficient index, value) pairs — a single pair per row when the
  // modulus is a binomial x^l - a.
  std::vector<std::vector<std::pair<std::uint16_t, std::uint32_t>>>
      reduction_;
};

}  // namespace dprbg
