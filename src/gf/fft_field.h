// The paper's special field GF(q^l) with O(l log l) multiplication
// (Section 2, "Model"):
//
//   "Let q be a prime and l an integer such that q >= 2l+1 and q^l >= 2^k.
//    We work over GF(q^l). We view the field elements as degree l
//    polynomials over Z_q. Then we use discrete Fourier transforms to do
//    the multiplication, modulo some irreducible polynomial, in O(l log l)
//    operations over Z_q."
//
// The paper omits the details; this file supplies them:
//  * q is chosen as the smallest prime with q >= 2l+1 and q ≡ 1 (mod N),
//    where N is the smallest power of two >= 2l-1, so Z_q contains the
//    N-th roots of unity needed for a radix-2 NTT,
//  * the modulus is a uniformly random monic degree-l polynomial accepted
//    by Rabin's irreducibility test,
//  * multiplication runs: forward NTT of both operands (zero-padded to N),
//    pointwise product, inverse NTT, then reduction modulo the field
//    polynomial via a precomputed table of x^(l+i) mod f.
//
// A naive O(l^2) schoolbook multiply is also provided so experiment E1 can
// reproduce the paper's remark that naive GF(2^k) wins for small k.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "gf/zq.h"

namespace dprbg {

// An element of GF(q^l): coefficients c[0..l-1] over Z_q, low degree
// first. Fixed-capacity so elements are cheap value types.
struct FftElem {
  static constexpr unsigned kMaxL = 256;
  std::array<std::uint32_t, kMaxL> c{};

  friend bool operator==(const FftElem&, const FftElem&) = default;
};

class FftField {
 public:
  // Builds GF(q^l). `seed` drives the random search for an irreducible
  // modulus (deterministic for reproducibility).
  explicit FftField(unsigned l, std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  [[nodiscard]] unsigned l() const { return l_; }
  [[nodiscard]] std::uint32_t q() const { return zq_.q(); }
  // log2(|field|), the effective security parameter k = l * log2(q).
  [[nodiscard]] double bits() const;
  // The irreducible modulus f (degree l, monic; coefficient of x^l is 1 and
  // omitted: modulus()[i] is the coefficient of x^i, i < l).
  [[nodiscard]] const std::vector<std::uint32_t>& modulus() const {
    return modulus_;
  }

  [[nodiscard]] FftElem zero() const { return {}; }
  [[nodiscard]] FftElem one() const;
  // Builds an element from arbitrary bits (coefficients taken mod q); used
  // for deterministic test vectors, not uniform sampling.
  [[nodiscard]] FftElem from_uint(std::uint64_t v) const;
  // Element from l caller-supplied 32-bit words, each reduced mod q. The
  // reduction bias is ~q/2^32 per coefficient; this field is a substrate
  // for the E1 arithmetic benchmark, not a protocol sampling path, so the
  // bias is irrelevant here.
  [[nodiscard]] FftElem from_words(const std::uint32_t* words) const;

  [[nodiscard]] bool is_zero(const FftElem& a) const;
  [[nodiscard]] FftElem add(const FftElem& a, const FftElem& b) const;
  [[nodiscard]] FftElem sub(const FftElem& a, const FftElem& b) const;
  [[nodiscard]] FftElem neg(const FftElem& a) const;
  // NTT-based multiplication: O(l log l) operations over Z_q.
  [[nodiscard]] FftElem mul(const FftElem& a, const FftElem& b) const;
  // Schoolbook multiplication: O(l^2) operations over Z_q (for E1).
  [[nodiscard]] FftElem mul_naive(const FftElem& a, const FftElem& b) const;
  // Crossover-dispatched multiplication: schoolbook below kNttCrossoverL,
  // NTT at or above it. mul() and mul_naive() stay explicit so experiment
  // E1 can measure both sides of the crossover; production callers that
  // just want "the fast one" use this.
  [[nodiscard]] FftElem mul_auto(const FftElem& a, const FftElem& b) const {
    return mul_impl(a, b, /*use_ntt=*/l_ >= kNttCrossoverL);
  }
  // Elementwise out[i] = a[i] * b[i] through the crossover-dispatched
  // path. The per-stage twiddle tables and NTT scratch stay hot in cache
  // across the batch, which is where the wide-batch pipeline hands whole
  // rounds of products at once.
  void mul_batch(std::span<const FftElem> a, std::span<const FftElem> b,
                 std::span<FftElem> out) const;
  // Fermat inverse: a^(q^l - 2).
  [[nodiscard]] FftElem inv(const FftElem& a) const;
  [[nodiscard]] FftElem pow(const FftElem& a, std::uint64_t e) const;

  // Smallest l where the NTT multiply beats schoolbook end-to-end,
  // located by `bench/field_ops --sweep-M` (EXPERIMENTS.md E20):
  // schoolbook's tight O(l^2) inner loop wins through l = 64 on its
  // constant factors; from l = 128 up the O(l log l) path is ahead
  // (1.2x at 128, 3.5x at 256) and the gap widens with l. Matches E1's
  // crossover at k ~ 1-3 x 10^3 bits (k ~ 31 l).
  static constexpr unsigned kNttCrossoverL = 128;

  // In-place radix-2 NTT over Z_q; a.size() must equal ntt_size().
  // Public so the property tests can exercise round-trips and the size
  // contract directly; butterflies run through the dispatched batch
  // kernels (gf/zq_simd.h) over per-stage contiguous twiddle tables.
  void ntt(std::span<std::uint32_t> a, bool inverse) const;
  [[nodiscard]] unsigned ntt_size() const { return ntt_size_; }

 private:
  // Reduce a degree <= 2l-2 polynomial modulo f using the x^(l+i) table.
  [[nodiscard]] FftElem reduce(const std::vector<std::uint32_t>& prod) const;
  [[nodiscard]] FftElem mul_impl(const FftElem& a, const FftElem& b,
                                 bool use_ntt) const;

  // Rabin's irreducibility test over Z_q[x].
  [[nodiscard]] bool is_irreducible(
      const std::vector<std::uint32_t>& f) const;

  unsigned l_;
  Zq zq_;
  std::vector<std::uint32_t> modulus_;  // coefficients of f below x^l
  unsigned ntt_size_ = 0;               // power of two >= 2l-1
  std::vector<std::uint32_t> ntt_roots_;      // forward twiddles
  std::vector<std::uint32_t> ntt_inv_roots_;  // inverse twiddles
  std::uint32_t ntt_size_inv_ = 0;            // 1/N mod q
  // Per-stage contiguous twiddles: stage_twiddles_[s][j] = w^(j * N/len)
  // for stage s (len = 2^(s+1)), so each butterfly stage walks a dense
  // table instead of the strided roots[j*step] gather — the layout the
  // batch butterfly kernel wants.
  std::vector<std::vector<std::uint32_t>> stage_twiddles_;
  std::vector<std::vector<std::uint32_t>> stage_inv_twiddles_;
  // reduction_[i] = x^(l+i) mod f, for i in [0, l-2], stored as sparse
  // (coefficient index, value) pairs — a single pair per row when the
  // modulus is a binomial x^l - a.
  std::vector<std::vector<std::pair<std::uint16_t, std::uint32_t>>>
      reduction_;
};

}  // namespace dprbg
