// Live telemetry: a process-wide registry of named, label-tagged
// instruments — monotonic counters, gauges, and log-bucketed latency
// histograms — cheap enough for protocol hot paths.
//
// The trace layer (common/trace.h) answers "what did this run COST",
// after the fact, as per-phase ledgers gated against the paper's lemmas.
// This module answers "how is the system doing RIGHT NOW": pool depth,
// refill latency percentiles, per-committee health, barrier wait time —
// the signals a randomness-beacon operator watches while the service
// runs. It deliberately mirrors trace.h's enable/disable contract:
//
//   * OFF by default. Every instrument mutator is behind one relaxed
//     atomic load (`telemetry_enabled()`), so a disabled build-in adds a
//     single predictable branch per site and allocates nothing — golden
//     transcripts and bench numbers are unchanged
//     (tests/telemetry_test.cpp locks this in, EXPERIMENTS.md E19
//     bounds the overhead).
//   * Instrumentation sites that need registry lookups or clock reads
//     guard them behind `telemetry_enabled()` too, so the disabled mode
//     performs ZERO registry mutations — not even instrument creation.
//   * When enabled, instrument cells are relaxed atomics: player threads
//     bump them concurrently without locks; the registry mutex is only
//     taken to create/look up instruments and to snapshot.
//
// Aggregation semantics in the lockstep simulated cluster: instruments
// observing SHARED state (the exchange path, the HealthBoard) count each
// event once; instruments observing PER-PLAYER state (coin pools, the
// pipeline scheduler) are bumped once per player per event — honest
// players run in lockstep, so gauges agree (last writer wins) and
// counters read as `players x events`. The reconciliation gates
// (bench/pipeline --metrics, bench/beacon --metrics) are built on the
// shared-state counters, which must equal Cluster::faults(), the
// per-domain ledgers, and Cluster::comm() exactly.
//
// Exposition: `metrics().snapshot()` freezes every instrument into a
// `MetricsSnapshot` that serializes to flat JSONL (same tolerant
// conventions as the trace schema — unknown keys ignored, any key
// order) and to Prometheus text format. `tools/metrics_report` renders
// and diffs snapshots.

#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dprbg {

// ---------------------------------------------------------------------
// Global enable flag (mirrors tracer().enabled()).
// ---------------------------------------------------------------------

namespace telemetry_detail {
inline std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> on{false};
  return on;
}
}  // namespace telemetry_detail

[[nodiscard]] inline bool telemetry_enabled() noexcept {
  return telemetry_detail::enabled_flag().load(std::memory_order_relaxed);
}
inline void set_telemetry_enabled(bool on) noexcept {
  telemetry_detail::enabled_flag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Instruments. All cells are relaxed atomics; every mutator no-ops when
// telemetry is disabled. Instruments are created by the registry and
// live for the process lifetime (reset() zeroes values but never
// invalidates a handle), so call sites may cache references.
// ---------------------------------------------------------------------

// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!telemetry_enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> v_{0};
};

// Last-written level (pool depth, in-flight window, health state).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!telemetry_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    if (!telemetry_enabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> v_{0};
};

// Log-bucketed histogram of non-negative integer observations (latency
// in microseconds, sizes, depths). Buckets: values below kSubBuckets are
// exact; above, each power-of-two octave is split into kSubBuckets
// geometric sub-buckets, bounding the relative quantization error by
// 1/kSubBuckets (12.5%). 496 buckets cover the full uint64 range.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;  // 8
  static constexpr unsigned kBuckets =
      ((64 - kSubBits) << kSubBits) + kSubBuckets;  // 496

  // The bucket index recording value `v`.
  [[nodiscard]] static unsigned bucket_of(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<unsigned>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    const unsigned sub = static_cast<unsigned>(v >> shift) & (kSubBuckets - 1);
    return ((msb - kSubBits + 1) << kSubBits) + sub;
  }
  // Inclusive [lower, upper] value range of bucket `idx`.
  [[nodiscard]] static std::uint64_t bucket_lower(unsigned idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const unsigned msb = (idx >> kSubBits) + kSubBits - 1;
    const unsigned sub = idx & (kSubBuckets - 1);
    const std::uint64_t width = std::uint64_t{1} << (msb - kSubBits);
    return (std::uint64_t{1} << msb) + sub * width;
  }
  [[nodiscard]] static std::uint64_t bucket_upper(unsigned idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const unsigned msb = (idx >> kSubBits) + kSubBits - 1;
    const std::uint64_t width = std::uint64_t{1} << (msb - kSubBits);
    return bucket_lower(idx) + width - 1;
  }

  void observe(std::uint64_t v) noexcept {
    if (!telemetry_enabled()) return;
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(unsigned idx) const noexcept {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

  // The q-quantile (q in [0, 1]) as the upper bound of the bucket
  // holding the rank-ceil(q * count) observation — exact for values
  // below kSubBuckets, within 1/kSubBuckets relative error above.
  // Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

 private:
  friend class MetricsRegistry;
  void reset() noexcept;
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// ---------------------------------------------------------------------
// Snapshot: a frozen, serializable copy of every instrument.
// ---------------------------------------------------------------------

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricType t) noexcept;

struct MetricSample {
  std::string name;
  // Canonical label string "k=v" or "k=v,k=v" (empty: unlabeled). The
  // cardinality rules (DESIGN.md §13) keep label values to bounded
  // small sets: committee id, player id, eviction reason.
  std::string labels;
  MetricType type = MetricType::kCounter;
  std::int64_t value = 0;  // counter/gauge level (counter: >= 0)
  // Histogram-only fields.
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<unsigned, std::uint64_t>> buckets;  // sparse idx:count
  std::uint64_t p50 = 0, p90 = 0, p99 = 0, p999 = 0;
};

// One flat JSON object (single line, no trailing newline).
[[nodiscard]] std::string to_json(const MetricSample& s);
// Parses one snapshot line; returns false on malformed input. Unknown
// keys are ignored so the schema can grow.
bool from_json(std::string_view line, MetricSample& s);

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // registration order

  // The sample with exactly this (name, labels), or nullptr.
  [[nodiscard]] const MetricSample* find(std::string_view name,
                                         std::string_view labels = {}) const;
  // Counter/gauge `value` summed over every label set of `name`.
  [[nodiscard]] std::int64_t sum_values(std::string_view name) const;

  // JSONL: one sample per line.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;
  // Prometheus text exposition (counters/gauges plus cumulative
  // histogram buckets); metric names get a "dprbg_" prefix.
  void write_prometheus(std::ostream& os) const;
};

// Parses a whole snapshot stream, skipping blank lines; malformed lines
// are counted in `*malformed` (if non-null) and dropped.
MetricsSnapshot read_snapshot(std::istream& is,
                              std::size_t* malformed = nullptr);

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

class MetricsRegistry {
 public:
  // Finds or creates the instrument with this (name, labels). The
  // returned reference is valid for the process lifetime. Asking for an
  // existing name+labels with a different instrument type aborts
  // (DPRBG_CHECK) — one name, one type. Lookup takes the registry
  // mutex: hot paths should acquire once and cache the reference, and
  // call sites must guard acquisition behind telemetry_enabled() so the
  // disabled mode never mutates the registry.
  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {});

  // Zeroes every instrument's cells. Instruments are never destroyed, so
  // cached references stay valid across resets (benches reset between
  // measured runs).
  void reset();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    std::string labels;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(std::string_view name, std::string_view labels,
               MetricType type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

// The process-wide registry used by every instrumentation site.
MetricsRegistry& metrics() noexcept;

// ---------------------------------------------------------------------
// Timing helper: a steady-clock stamp that call sites take only when
// telemetry is enabled, so the disabled mode performs no clock reads.
// ---------------------------------------------------------------------

using TelemetryClock = std::chrono::steady_clock;

[[nodiscard]] inline std::uint64_t telemetry_elapsed_us(
    TelemetryClock::time_point since) noexcept {
  const auto d = TelemetryClock::now() - since;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

}  // namespace dprbg
