// Bump-allocated scratch memory for per-round hot paths.
//
// The interpolation/decode layers used to allocate a handful of short
// std::vectors per call (numerators, weights, prefix products, quotient
// rows) — per-round malloc traffic that dominates once the field ops
// themselves are vectorized. An Arena hands out trivially-destructible
// storage by bumping a pointer into geometrically growing chunks;
// `ArenaScope` gives stack discipline so nested users (interpolate inside
// Berlekamp-Welch inside coin_expose) rewind to their caller's high-water
// mark on exit, and the chunks themselves are reused forever.
//
// Lifetime rules (DESIGN.md §14):
//  * arena memory is valid until the enclosing ArenaScope is destroyed;
//    never return or stash arena pointers past the scope,
//  * only trivially-destructible element types (no destructors run),
//  * the thread-local `scratch_arena()` is single-threaded by
//    construction — player threads each get their own, so no locking and
//    no sanitizer noise,
//  * scopes must nest LIFO (guaranteed by C++ scoping when ArenaScope
//    lives on the stack).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace dprbg {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 4096)
      : initial_bytes_(initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    DPRBG_CHECK(align != 0 && (align & (align - 1)) == 0);
    for (;;) {
      if (chunk_ < chunks_.size()) {
        Chunk& c = chunks_[chunk_];
        const std::size_t base =
            reinterpret_cast<std::uintptr_t>(c.data.get()) + offset_;
        const std::size_t aligned = (base + align - 1) & ~(align - 1);
        const std::size_t pad = aligned - base;
        if (offset_ + pad + bytes <= c.size) {
          offset_ += pad + bytes;
          return reinterpret_cast<void*>(aligned);
        }
        // Doesn't fit: advance to the next (larger) chunk.
        ++chunk_;
        offset_ = 0;
        continue;
      }
      // Grow: each chunk doubles the last, and always fits the request.
      std::size_t want =
          chunks_.empty() ? initial_bytes_ : chunks_.back().size * 2;
      if (want < bytes + align) want = bytes + align;
      chunks_.push_back(
          Chunk{std::make_unique<std::uint8_t[]>(want), want});
    }
  }

  template <typename T>
  std::span<T> alloc_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (p + i) T();
    return {p, n};
  }

  // Uninitialized variant for buffers the caller fully overwrites.
  template <typename T>
  std::span<T> alloc_span_uninit(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T> &&
                  std::is_trivially_default_constructible_v<T>);
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    return {p, n};
  }

  // Rewind everything; capacity is retained.
  void reset() {
    chunk_ = 0;
    offset_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const {
    std::size_t c = 0;
    for (const Chunk& ch : chunks_) c += ch.size;
    return c;
  }

 private:
  friend class ArenaScope;

  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size;
  };

  std::size_t initial_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // current chunk index
  std::size_t offset_ = 0;  // bump offset within the current chunk
};

// RAII high-water mark: allocations made while the scope is alive are
// released (pointer-rewind, no destructors) when it dies.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& a)
      : arena_(a), chunk_(a.chunk_), offset_(a.offset_) {}
  ~ArenaScope() {
    arena_.chunk_ = chunk_;
    arena_.offset_ = offset_;
  }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  std::size_t chunk_;
  std::size_t offset_;
};

// The per-thread scratch arena the hot paths share. Every user opens an
// ArenaScope, so the arena's footprint is the high-water mark of the
// deepest call chain, reused across every round.
inline Arena& scratch_arena() {
  thread_local Arena arena(std::size_t{1} << 14);
  return arena;
}

// A vector-shaped view over scoped arena memory. Value-initialized (zero
// for trivial T, T() otherwise). Falls back to a heap vector for types
// the arena cannot hold (non-trivial destructors), so generic field code
// can use it unconditionally.
template <typename T>
class ScratchVec {
 public:
  ScratchVec(ArenaScope& scope, std::size_t n) {
    if constexpr (std::is_trivially_destructible_v<T>) {
      span_ = scope.arena().template alloc_span<T>(n);
    } else {
      fallback_.resize(n);
      span_ = fallback_;
    }
  }

  [[nodiscard]] T* data() { return span_.data(); }
  [[nodiscard]] const T* data() const { return span_.data(); }
  [[nodiscard]] std::size_t size() const { return span_.size(); }
  T& operator[](std::size_t i) { return span_[i]; }
  const T& operator[](std::size_t i) const { return span_[i]; }
  operator std::span<T>() { return span_; }              // NOLINT
  operator std::span<const T>() const { return span_; }  // NOLINT
  [[nodiscard]] auto begin() { return span_.begin(); }
  [[nodiscard]] auto end() { return span_.end(); }

 private:
  std::span<T> span_;
  std::vector<T> fallback_;
};

}  // namespace dprbg
