// Bit-sequence statistics for validating coin quality.
//
// A D-PRBG must produce a "random looking sequence" (Section 1.1). These
// are the classic FIPS/NIST-style checks at toy scale — monobit
// frequency, runs, and serial (lag-1) correlation — used by the
// coin_quality experiment and the statistical tests. Each returns a
// z-score-like normalized statistic; |z| < ~4 passes at any reasonable
// sample size.

#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "common/check.h"

namespace dprbg {

// Monobit frequency test: z = (2 * #ones - n) / sqrt(n).
inline double monobit_z(std::span<const int> bits) {
  DPRBG_CHECK(!bits.empty());
  double sum = 0;
  for (int b : bits) sum += b ? 1.0 : -1.0;
  return sum / std::sqrt(static_cast<double>(bits.size()));
}

// Runs test (Wald-Wolfowitz): number of maximal runs vs expectation under
// independence, normalized. Returns 0 when the sequence is degenerate
// (all equal) — callers treat |z| as the failure signal, and degenerate
// sequences already fail monobit spectacularly.
inline double runs_z(std::span<const int> bits) {
  DPRBG_CHECK(bits.size() >= 2);
  const double n = static_cast<double>(bits.size());
  double ones = 0;
  for (int b : bits) ones += b ? 1 : 0;
  const double pi = ones / n;
  if (pi == 0.0 || pi == 1.0) return 0.0;
  double runs = 1;
  for (std::size_t i = 1; i < bits.size(); ++i) {
    if (bits[i] != bits[i - 1]) ++runs;
  }
  const double expected = 2 * n * pi * (1 - pi);
  const double sigma = 2 * std::sqrt(n) * pi * (1 - pi);
  return (runs - expected) / sigma;
}

// Lag-1 serial correlation, normalized: for independent fair bits the
// statistic is ~N(0, 1).
inline double serial_z(std::span<const int> bits) {
  DPRBG_CHECK(bits.size() >= 2);
  const std::size_t n = bits.size() - 1;
  double agree = 0;
  for (std::size_t i = 0; i < n; ++i) {
    agree += (bits[i] == bits[i + 1]) ? 1.0 : -1.0;
  }
  return agree / std::sqrt(static_cast<double>(n));
}

struct BitQuality {
  double monobit;
  double runs;
  double serial;

  [[nodiscard]] bool passes(double threshold = 4.5) const {
    return std::abs(monobit) < threshold && std::abs(runs) < threshold &&
           std::abs(serial) < threshold;
  }
};

inline BitQuality analyze_bits(std::span<const int> bits) {
  return {monobit_z(bits), runs_z(bits), serial_z(bits)};
}

}  // namespace dprbg
