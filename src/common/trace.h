// Structured protocol tracing: per-phase spans and point events.
//
// The paper's results are *cost* claims — Lemmas 2/4/6/8 charge additions,
// interpolations, messages, and rounds to specific protocol phases — but
// the aggregate counters in common/metrics.h only show end-to-end totals.
// This module records where the costs land: every protocol wraps its
// paper-figure phases (deal / challenge / respond / interpolate / expose /
// clique / ...) in a `TraceSpan`, and the network layer emits point events
// for round advances, sends, and injected link faults. The result is a
// per-phase, per-player, per-round ledger that `tools/trace_report`
// aggregates into Lemma-style cost tables and that
// `tests/trace_budget_test.cpp` gates against checked-in budgets.
//
// Enable/disable contract: the global `tracer()` is OFF by default and
// every hook is behind a single relaxed atomic load, so a disabled tracer
// adds one predictable branch per span/event site and allocates nothing —
// golden transcripts, byte counts, and bench numbers are unchanged
// (tests/trace_test.cpp locks this in). Recording is mutex-serialized;
// spans opened on different player threads interleave by a global
// sequence number.
//
// Layering: this header sits in common/ (below net/), so `TraceSpan` is a
// template over any io-like object exposing id()/rounds()/sent() — in
// practice net::PartyIo. Field-op deltas come from the calling thread's
// `field_counters()` (per-player in the cluster's thread-per-player
// model); comm deltas from the io object's sent() counters.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"

namespace dprbg {

enum class TraceEventKind : std::uint8_t {
  kSpan,   // a closed TraceSpan: [round_begin, round_end) + cost deltas
  kPoint,  // an instantaneous event (fault fired, decode failure, edge)
};

// One trace record. Flat on purpose: every record serializes to one JSONL
// line with fixed keys, so external tools can aggregate with zero schema
// knowledge.
struct TraceEvent {
  std::uint64_t seq = 0;  // global order of record completion
  TraceEventKind kind = TraceEventKind::kPoint;
  std::string protocol;  // "vss", "bitgen", "coin-gen", "net", ...
  std::string phase;     // "deal", "challenge", "round", "fault", ...
  int player = -1;       // -1: cluster-level (exchange thread)
  std::uint32_t batch = 0;        // round-stream id (0: root stream)
  std::uint32_t committee = 0;    // committee/stream-domain id (0: default)
  std::uint64_t round_begin = 0;  // spans: rounds() at open
  std::uint64_t round_end = 0;    // spans: rounds() at close; points: ==begin
  FieldCounters ops;      // span delta of the player thread's field ops
  CommCounters comm;      // span delta of the player's sent() counters
  FaultCounters faults;   // fault events: per-message effect delta
  std::string detail;     // freeform "k=v k=v" payload (tag, peer, ...)

  [[nodiscard]] std::uint64_t rounds() const noexcept {
    return round_end - round_begin;
  }
};

// Global, thread-safe event recorder.
class Tracer {
 public:
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Appends `ev` (stamping ev.seq) if enabled; drops it otherwise.
  void record(TraceEvent ev);

  // Snapshot of everything recorded so far, in seq order.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  // JSONL: one event per line, flat string/integer fields.
  void write_jsonl(std::ostream& os) const;
  bool write_jsonl_file(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// The process-wide tracer used by every instrumentation site.
Tracer& tracer() noexcept;

// Serialization of a single event (used by write_jsonl; exposed for
// tests).
std::string to_jsonl(const TraceEvent& ev);
// Parses one JSONL line; returns false on malformed input. Unknown keys
// are ignored so the schema can grow.
bool from_jsonl(std::string_view line, TraceEvent& ev);
// Parses a whole JSONL stream, skipping blank lines; malformed lines are
// counted in `*malformed` (if non-null) and dropped.
std::vector<TraceEvent> read_jsonl(std::istream& is,
                                   std::size_t* malformed = nullptr);

// Records a point event (no-op when disabled). `detail` is copied only
// when enabled, so call sites may build it lazily behind enabled().
// `batch` is the round-stream id of the io handle the event happened on
// (0 for the root stream); `committee` the stream-domain/committee id
// (0 for the default domain).
void trace_point(std::string_view protocol, std::string_view phase,
                 int player, std::uint64_t round, std::string detail = {},
                 std::uint32_t batch = 0, std::uint32_t committee = 0);

// Beacon failover / epoch vocabulary (beacon_failover.h): cluster-level
// point events under protocol "beacon" with phase in {"health", "evict",
// "epoch"} and `committee` the affected roster. These are control-plane
// events (eviction verdicts, roster hand-offs), not lockstep-round
// events, so they carry no round stamp.
void trace_beacon(std::string_view phase, std::uint32_t committee,
                  std::string detail = {});

// RAII span over one protocol phase. `Io` must expose id(), rounds() (sync
// count so far), and sent() (CommCounters). Captures nothing when the
// tracer is disabled; close() (or destruction) records the deltas.
template <typename Io>
class TraceSpan {
 public:
  TraceSpan(Io& io, std::string_view protocol, std::string_view phase,
            std::string detail = {})
      : io_(&io) {
    if (!tracer().enabled()) return;
    active_ = true;
    ev_.kind = TraceEventKind::kSpan;
    ev_.protocol.assign(protocol);
    ev_.phase.assign(phase);
    ev_.player = io.id();
    // Pipelined runs open spans on per-batch io handles; stamp the
    // stream id so per-batch cost ledgers stay separable. Committee
    // endpoints additionally carry their committee id, so sharded runs
    // keep one ledger per (committee, batch).
    if constexpr (requires { io.stream(); }) ev_.batch = io.stream();
    if constexpr (requires { io.committee(); }) ev_.committee = io.committee();
    ev_.round_begin = io.rounds();
    ev_.detail = std::move(detail);
    ops0_ = field_counters();
    comm0_ = io.sent();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { close(); }

  // Records the span now (idempotent).
  void close() {
    if (!active_) return;
    active_ = false;
    ev_.round_end = io_->rounds();
    ev_.ops = field_counters() - ops0_;
    ev_.comm = io_->sent() - comm0_;
    tracer().record(std::move(ev_));
  }

 private:
  Io* io_;
  bool active_ = false;
  TraceEvent ev_;
  FieldCounters ops0_;
  CommCounters comm0_;
};

// ---------------------------------------------------------------------
// Aggregation (shared by tools/trace_report and the budget tests).
// ---------------------------------------------------------------------

// Per-(protocol, phase) cost totals over one trace.
struct PhaseCost {
  std::string protocol;
  std::string phase;
  std::uint64_t spans = 0;    // span records aggregated
  std::uint64_t players = 0;  // distinct players with a span here
  // Rounds consumed by this phase per player: max over players of the sum
  // of that player's span round ranges (honest players are in lockstep,
  // so max == min in a clean run).
  std::uint64_t rounds = 0;
  FieldCounters ops;   // summed over all spans
  CommCounters comm;   // summed over all spans (messages/bytes only)
};

// Aggregates the span records of `events` keyed by (protocol, phase), in
// first-appearance order. Point events are ignored.
std::vector<PhaseCost> aggregate_phases(const std::vector<TraceEvent>& events);

// Sums the fault-event deltas of `events` (protocol "net", phase "fault").
FaultCounters sum_fault_events(const std::vector<TraceEvent>& events);

}  // namespace dprbg
