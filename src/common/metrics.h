// Instrumentation counters for reproducing the paper's cost accounting.
//
// The paper (Section 2) measures computation in "number of additions" of
// k-bit field elements, and communication in messages and bits. The field
// layer bumps the thread-local `FieldCounters` on every arithmetic
// operation; the network layer aggregates per-player message/byte counts.
// `MetricsScope` captures deltas RAII-style so benchmarks can report the
// cost of exactly one protocol phase.

#pragma once

#include <cstdint>
#include <string>

namespace dprbg {

// Per-thread field-arithmetic counters. Every player in the synchronous
// cluster runs on its own thread, so these counters are naturally
// per-player during a protocol run.
struct FieldCounters {
  std::uint64_t adds = 0;        // field additions/subtractions
  std::uint64_t muls = 0;        // field multiplications
  std::uint64_t invs = 0;        // field inversions/divisions
  std::uint64_t interpolations = 0;  // full polynomial interpolations

  FieldCounters& operator+=(const FieldCounters& o) noexcept {
    adds += o.adds;
    muls += o.muls;
    invs += o.invs;
    interpolations += o.interpolations;
    return *this;
  }
  FieldCounters operator-(const FieldCounters& o) const noexcept {
    return {adds - o.adds, muls - o.muls, invs - o.invs,
            interpolations - o.interpolations};
  }
};

// Access the calling thread's counters.
FieldCounters& field_counters() noexcept;

// Convenience hooks used by the field implementations. Kept out-of-line
// cheap: a thread_local increment.
inline void count_add() noexcept { ++field_counters().adds; }
inline void count_mul() noexcept { ++field_counters().muls; }
inline void count_inv() noexcept { ++field_counters().invs; }
inline void count_interpolation() noexcept {
  ++field_counters().interpolations;
}

// RAII capture of this thread's field-counter delta.
class MetricsScope {
 public:
  MetricsScope() noexcept : start_(field_counters()) {}
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

  [[nodiscard]] FieldCounters delta() const noexcept {
    return field_counters() - start_;
  }

 private:
  FieldCounters start_;
};

// Communication totals, filled in by net::Cluster.
struct CommCounters {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t rounds = 0;

  CommCounters& operator+=(const CommCounters& o) noexcept {
    messages += o.messages;
    bytes += o.bytes;
    rounds += o.rounds;
    return *this;
  }
  CommCounters operator-(const CommCounters& o) const noexcept {
    return {messages - o.messages, bytes - o.bytes, rounds - o.rounds};
  }
};

// Link-fault totals, filled in by net::Cluster when a FaultInjector
// (net/fault.h) is installed. All-zero in a fault-free run; each counter
// is per affected message (a message both corrupted and delayed bumps
// both `corrupted` and `delayed`).
struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;  // extra copies created
  std::uint64_t corrupted = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return dropped + delayed + duplicated + corrupted;
  }
  FaultCounters& operator+=(const FaultCounters& o) noexcept {
    dropped += o.dropped;
    delayed += o.delayed;
    duplicated += o.duplicated;
    corrupted += o.corrupted;
    return *this;
  }
  FaultCounters operator-(const FaultCounters& o) const noexcept {
    return {dropped - o.dropped, delayed - o.delayed,
            duplicated - o.duplicated, corrupted - o.corrupted};
  }
};

// Beacon failover totals, filled in by the HealthBoard
// (src/beacon/beacon_failover.h): committee health transitions and
// degraded-mode output accounting for one beacon run.
struct HealthCounters {
  std::uint64_t lagging_transitions = 0;  // live -> lagging flips
  std::uint64_t evictions = 0;            // committees dropped for good
  std::uint64_t cancelled_batches = 0;    // launch gates closed
  std::uint64_t degraded_windows = 0;     // emitted windows missing a live
                                          // committee's contribution

  HealthCounters& operator+=(const HealthCounters& o) noexcept {
    lagging_transitions += o.lagging_transitions;
    evictions += o.evictions;
    cancelled_batches += o.cancelled_batches;
    degraded_windows += o.degraded_windows;
    return *this;
  }
  HealthCounters operator-(const HealthCounters& o) const noexcept {
    return {lagging_transitions - o.lagging_transitions,
            evictions - o.evictions,
            cancelled_batches - o.cancelled_batches,
            degraded_windows - o.degraded_windows};
  }
};

// Human-readable one-line summaries for harness output.
std::string to_string(const FieldCounters& c);
std::string to_string(const CommCounters& c);
std::string to_string(const FaultCounters& c);
std::string to_string(const HealthCounters& c);

}  // namespace dprbg
