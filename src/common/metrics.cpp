#include "common/metrics.h"

#include <sstream>

namespace dprbg {

FieldCounters& field_counters() noexcept {
  thread_local FieldCounters counters;
  return counters;
}

std::string to_string(const FieldCounters& c) {
  std::ostringstream os;
  os << "adds=" << c.adds << " muls=" << c.muls << " invs=" << c.invs
     << " interps=" << c.interpolations;
  return os.str();
}

std::string to_string(const CommCounters& c) {
  std::ostringstream os;
  os << "msgs=" << c.messages << " bytes=" << c.bytes
     << " rounds=" << c.rounds;
  return os.str();
}

std::string to_string(const FaultCounters& c) {
  std::ostringstream os;
  os << "dropped=" << c.dropped << " delayed=" << c.delayed
     << " duplicated=" << c.duplicated << " corrupted=" << c.corrupted;
  return os.str();
}

std::string to_string(const HealthCounters& c) {
  std::ostringstream os;
  os << "lagging=" << c.lagging_transitions << " evictions=" << c.evictions
     << " cancelled=" << c.cancelled_batches
     << " degraded_windows=" << c.degraded_windows;
  return os.str();
}

}  // namespace dprbg
