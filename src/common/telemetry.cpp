#include "common/telemetry.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <string>

#include "common/check.h"
#include "common/flat_json.h"

namespace dprbg {

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

std::uint64_t Histogram::percentile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based; ceil without float drift.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t seen = 0;
  for (unsigned i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return bucket_upper(i);
  }
  // Bucket cells are read racily against concurrent observers; fall back
  // to the largest populated bucket.
  for (unsigned i = kBuckets; i-- > 0;) {
    if (bucket_count(i) != 0) return bucket_upper(i);
  }
  return 0;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

MetricsRegistry& metrics() noexcept {
  static MetricsRegistry r;
  return r;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               std::string_view labels,
                                               MetricType type) {
  std::lock_guard g(mu_);
  for (auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      // One name+labels, one instrument type — re-registering as a
      // different kind is a programmer error.
      DPRBG_CHECK(e->type == type);
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name.assign(name);
  e->labels.assign(labels);
  e->type = type;
  switch (type) {
    case MetricType::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      e->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels) {
  return *entry(name, labels, MetricType::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels) {
  return *entry(name, labels, MetricType::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view labels) {
  return *entry(name, labels, MetricType::kHistogram).histogram;
}

void MetricsRegistry::reset() {
  std::lock_guard g(mu_);
  for (auto& e : entries_) {
    switch (e->type) {
      case MetricType::kCounter: e->counter->reset(); break;
      case MetricType::kGauge: e->gauge->reset(); break;
      case MetricType::kHistogram: e->histogram->reset(); break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard g(mu_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard g(mu_);
  out.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.labels = e->labels;
    s.type = e->type;
    switch (e->type) {
      case MetricType::kCounter:
        s.value = static_cast<std::int64_t>(e->counter->value());
        break;
      case MetricType::kGauge:
        s.value = e->gauge->value();
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *e->histogram;
        s.count = h.count();
        s.sum = h.sum();
        for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
          const std::uint64_t c = h.bucket_count(i);
          if (c != 0) s.buckets.emplace_back(i, c);
        }
        s.p50 = h.percentile(0.50);
        s.p90 = h.percentile(0.90);
        s.p99 = h.percentile(0.99);
        s.p999 = h.percentile(0.999);
        break;
      }
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------

const char* to_string(MetricType t) noexcept {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

namespace {

void append_kv_str(std::string& out, std::string_view key,
                   std::string_view v) {
  out += '"';
  out += key;
  out += "\":\"";
  flat_json_escape(out, v);
  out += '"';
}

void append_kv_num(std::string& out, std::string_view key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

// Sparse bucket encoding "idx:count,idx:count" kept as a string field so
// every snapshot line stays a flat object (FlatJsonScanner contract).
std::string encode_buckets(
    const std::vector<std::pair<unsigned, std::uint64_t>>& buckets) {
  std::string out;
  for (const auto& [idx, c] : buckets) {
    if (!out.empty()) out += ',';
    out += std::to_string(idx);
    out += ':';
    out += std::to_string(c);
  }
  return out;
}

bool decode_buckets(std::string_view enc,
                    std::vector<std::pair<unsigned, std::uint64_t>>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < enc.size()) {
    const std::size_t colon = enc.find(':', pos);
    if (colon == std::string_view::npos) return false;
    std::size_t comma = enc.find(',', colon + 1);
    if (comma == std::string_view::npos) comma = enc.size();
    unsigned idx = 0;
    std::uint64_t c = 0;
    try {
      idx = static_cast<unsigned>(
          std::stoul(std::string(enc.substr(pos, colon - pos))));
      c = std::stoull(std::string(enc.substr(colon + 1, comma - colon - 1)));
    } catch (...) {
      return false;
    }
    if (idx >= Histogram::kBuckets) return false;
    out.emplace_back(idx, c);
    pos = comma + 1;
  }
  return true;
}

}  // namespace

std::string to_json(const MetricSample& s) {
  std::string out;
  out.reserve(160);
  out += '{';
  append_kv_str(out, "name", s.name);
  out += ',';
  append_kv_str(out, "labels", s.labels);
  out += ',';
  append_kv_str(out, "type", to_string(s.type));
  if (s.type == MetricType::kHistogram) {
    out += ',';
    append_kv_num(out, "count", s.count);
    out += ',';
    append_kv_num(out, "sum", s.sum);
    out += ',';
    append_kv_num(out, "p50", s.p50);
    out += ',';
    append_kv_num(out, "p90", s.p90);
    out += ',';
    append_kv_num(out, "p99", s.p99);
    out += ',';
    append_kv_num(out, "p999", s.p999);
    out += ',';
    append_kv_str(out, "buckets", encode_buckets(s.buckets));
  } else {
    out += ",\"value\":";
    out += std::to_string(s.value);
  }
  out += '}';
  return out;
}

bool from_json(std::string_view line, MetricSample& s) {
  s = MetricSample{};
  bool have_name = false;
  bool type_ok = true;
  bool buckets_ok = true;
  FlatJsonScanner scanner(line);
  const bool ok = scanner.scan([&](const std::string& key,
                                   const std::string& sval, std::uint64_t nval,
                                   bool is_string) {
    if (key == "name") {
      s.name = sval;
      have_name = true;
    } else if (key == "labels") {
      s.labels = sval;
    } else if (key == "type") {
      if (sval == "counter") s.type = MetricType::kCounter;
      else if (sval == "gauge") s.type = MetricType::kGauge;
      else if (sval == "histogram") s.type = MetricType::kHistogram;
      else type_ok = false;
    } else if (key == "value") {
      s.value = static_cast<std::int64_t>(nval);
    } else if (key == "count") {
      s.count = nval;
    } else if (key == "sum") {
      s.sum = nval;
    } else if (key == "p50") {
      s.p50 = nval;
    } else if (key == "p90") {
      s.p90 = nval;
    } else if (key == "p99") {
      s.p99 = nval;
    } else if (key == "p999") {
      s.p999 = nval;
    } else if (key == "buckets") {
      if (!sval.empty()) buckets_ok = decode_buckets(sval, s.buckets);
    }
    // unknown keys: ignored (forward compatibility)
    (void)is_string;
  });
  return ok && have_name && type_ok && buckets_ok;
}

const MetricSample* MetricsSnapshot::find(std::string_view name,
                                          std::string_view labels) const {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

std::int64_t MetricsSnapshot::sum_values(std::string_view name) const {
  std::int64_t total = 0;
  for (const auto& s : samples) {
    if (s.name == name && s.type != MetricType::kHistogram) total += s.value;
  }
  return total;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  for (const auto& s : samples) os << to_json(s) << '\n';
}

bool MetricsSnapshot::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

MetricsSnapshot read_snapshot(std::istream& is, std::size_t* malformed) {
  MetricsSnapshot out;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    MetricSample s;
    if (from_json(line, s)) {
      out.samples.push_back(std::move(s));
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return out;
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

namespace {

// "k=v,k=v" -> {k="v",k="v"}; empty labels render as no brace block.
std::string prometheus_labels(const std::string& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  std::size_t pos = 0;
  while (pos < labels.size()) {
    std::size_t comma = labels.find(',', pos);
    if (comma == std::string::npos) comma = labels.size();
    const std::string_view kv(labels.data() + pos, comma - pos);
    const std::size_t eq = kv.find('=');
    if (out.size() > 1) out += ',';
    if (eq == std::string_view::npos) {
      out += "label=\"";
      flat_json_escape(out, kv);
      out += '"';
    } else {
      out.append(kv.substr(0, eq));
      out += "=\"";
      flat_json_escape(out, kv.substr(eq + 1));
      out += '"';
    }
    pos = comma + 1;
  }
  out += '}';
  return out;
}

}  // namespace

void MetricsSnapshot::write_prometheus(std::ostream& os) const {
  std::string last_typed;
  for (const auto& s : samples) {
    const std::string name = "dprbg_" + s.name;
    if (name != last_typed) {
      os << "# TYPE " << name << ' ' << to_string(s.type) << '\n';
      last_typed = name;
    }
    const std::string lbl = prometheus_labels(s.labels);
    if (s.type != MetricType::kHistogram) {
      os << name << lbl << ' ' << s.value << '\n';
      continue;
    }
    // Cumulative buckets keyed by inclusive upper bound, then +Inf.
    std::uint64_t cum = 0;
    for (const auto& [idx, c] : s.buckets) {
      cum += c;
      std::string blbl = s.labels;
      if (!blbl.empty()) blbl += ',';
      blbl += "le=" + std::to_string(Histogram::bucket_upper(idx));
      os << name << "_bucket" << prometheus_labels(blbl) << ' ' << cum << '\n';
    }
    std::string inf = s.labels;
    if (!inf.empty()) inf += ',';
    inf += "le=+Inf";
    os << name << "_bucket" << prometheus_labels(inf) << ' ' << s.count
       << '\n';
    os << name << "_sum" << lbl << ' ' << s.sum << '\n';
    os << name << "_count" << lbl << ' ' << s.count << '\n';
  }
}

}  // namespace dprbg
