// Minimal byte-oriented serialization for protocol messages.
//
// All protocol payloads are encoded with these little-endian writers and
// readers. Readers are *defensive*: malformed input (as a Byzantine sender
// would produce) never causes undefined behaviour — it flips the reader
// into a failed state that the caller must check.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/varint.h"

namespace dprbg {

// Append-only little-endian byte writer.
class ByteWriter {
 public:
  ByteWriter() = default;
  // Pre-reserves capacity for payloads whose size is known up front (row
  // and envelope encoders), so the hot encode paths append without
  // reallocating.
  explicit ByteWriter(std::size_t reserve_bytes) {
    buf_.reserve(reserve_bytes);
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }

  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  // Canonical unsigned varint (wire v1 integer encoding, common/varint.h).
  void uvarint(std::uint64_t v) { append_varint(buf_, v); }

  // Length-prefixed vector of u64 (the common share-list payload).
  void u64_vec(std::span<const std::uint64_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::uint64_t x : v) u64(x);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const& {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

// Little-endian byte reader over a borrowed buffer. On any out-of-bounds
// read the reader fails permanently and returns zeros; callers check
// `ok()` once at the end of decoding.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return get_le<std::uint8_t>(); }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }

  // Reads a length-prefixed u64 vector; rejects absurd lengths so a
  // Byzantine sender cannot force a huge allocation.
  std::vector<std::uint64_t> u64_vec(std::size_t max_len = 1u << 20) {
    const std::uint32_t len = u32();
    if (len > max_len || len * 8ull > remaining()) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint64_t> out;
    out.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) out.push_back(u64());
    return out;
  }

  // Bounds-checked bulk read of `len` raw bytes. The length is validated
  // against both the caller's cap and the bytes actually present *before*
  // anything is allocated, so a hostile length prefix can neither trigger
  // a huge allocation nor read out of bounds.
  std::vector<std::uint8_t> bytes(std::size_t len,
                                  std::size_t max_len = 1u << 20) {
    if (!ok_ || len > max_len || len > remaining()) {
      ok_ = false;
      pos_ = data_.size();
      return {};
    }
    std::vector<std::uint8_t> out(data_.begin() + pos_,
                                  data_.begin() + pos_ + len);
    pos_ += len;
    return out;
  }

  // Canonical unsigned varint; an overlong, truncated, or overflowing
  // encoding fails the reader like any other malformed field.
  std::uint64_t uvarint() {
    if (!ok_) return 0;
    const VarintDecode d = read_varint(data_.subspan(pos_));
    if (!d.ok) {
      ok_ = false;
      pos_ = data_.size();
      return 0;
    }
    pos_ += d.bytes;
    return d.value;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  // True iff decoding consumed the whole buffer without error.
  [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  template <typename T>
  T get_le() {
    if (pos_ + sizeof(T) > data_.size()) {
      ok_ = false;
      pos_ = data_.size();
      return T{0};
    }
    T v{0};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dprbg
