// Tolerant flat-JSON helpers shared by the trace layer (common/trace.h)
// and the telemetry layer (common/telemetry.h).
//
// Both layers serialize to one flat JSON object per line — string and
// unsigned-integer values only, no nesting — so external tools can
// aggregate with zero schema knowledge, and both parse with the same
// tolerant contract: unknown keys are ignored (schemas can grow),
// arbitrary key order is accepted, and a malformed line fails cleanly
// instead of poisoning the stream.

#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace dprbg {

// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
// control characters).
inline void flat_json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Minimal scanner for the flat JSON objects emitted by to_jsonl /
// MetricsSnapshot::write_json: string and unsigned-integer values only,
// no nesting. Tolerates unknown keys and arbitrary key order so the
// schema can grow.
class FlatJsonScanner {
 public:
  explicit FlatJsonScanner(std::string_view s) : s_(s) {}

  // Calls on_field(key, string_value, numeric_value, is_string) per pair.
  template <typename Fn>
  bool scan(Fn&& on_field) {
    skip_ws();
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '"') {
        std::string value;
        if (!parse_string(value)) return false;
        on_field(key, value, std::uint64_t{0}, true);
      } else {
        std::uint64_t value = 0;
        bool negative = eat('-');  // player may be -1
        const char* begin = s_.data() + pos_;
        const char* end = s_.data() + s_.size();
        auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc() || ptr == begin) return false;
        pos_ += static_cast<std::size_t>(ptr - begin);
        if (negative) {
          value = static_cast<std::uint64_t>(-static_cast<std::int64_t>(value));
        }
        on_field(key, std::string{}, value, false);
      }
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
      skip_ws();
    }
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          auto [ptr, ec] = std::from_chars(s_.data() + pos_,
                                           s_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != s_.data() + pos_ + 4) return false;
          pos_ += 4;
          out += static_cast<char>(code & 0xFF);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace dprbg
