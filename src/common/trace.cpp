#include "common/trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "common/flat_json.h"

namespace dprbg {

Tracer& tracer() noexcept {
  static Tracer t;
  return t;
}

void Tracer::record(TraceEvent ev) {
  if (!enabled()) return;
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard g(mu_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard g(mu_);
  auto out = events_;
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard g(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard g(mu_);
  events_.clear();
  seq_.store(0, std::memory_order_relaxed);
}

void Tracer::write_jsonl(std::ostream& os) const {
  for (const auto& ev : events()) os << to_jsonl(ev) << '\n';
}

bool Tracer::write_jsonl_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_jsonl(os);
  return static_cast<bool>(os);
}

void trace_point(std::string_view protocol, std::string_view phase,
                 int player, std::uint64_t round, std::string detail,
                 std::uint32_t batch, std::uint32_t committee) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  TraceEvent ev;
  ev.kind = TraceEventKind::kPoint;
  ev.protocol.assign(protocol);
  ev.phase.assign(phase);
  ev.player = player;
  ev.batch = batch;
  ev.committee = committee;
  ev.round_begin = ev.round_end = round;
  ev.detail = std::move(detail);
  t.record(std::move(ev));
}

void trace_beacon(std::string_view phase, std::uint32_t committee,
                  std::string detail) {
  trace_point("beacon", phase, /*player=*/-1, /*round=*/0, std::move(detail),
              /*batch=*/0, committee);
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  flat_json_escape(out, s);
}

void append_kv(std::string& out, std::string_view key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
  out += ',';
}

}  // namespace

std::string to_jsonl(const TraceEvent& ev) {
  std::string out;
  out.reserve(256);
  out += '{';
  append_kv(out, "seq", ev.seq);
  out += "\"kind\":\"";
  out += ev.kind == TraceEventKind::kSpan ? "span" : "point";
  out += "\",\"proto\":\"";
  append_escaped(out, ev.protocol);
  out += "\",\"phase\":\"";
  append_escaped(out, ev.phase);
  out += "\",\"player\":";
  out += std::to_string(ev.player);
  out += ',';
  append_kv(out, "batch", ev.batch);
  append_kv(out, "committee", ev.committee);
  append_kv(out, "r0", ev.round_begin);
  append_kv(out, "r1", ev.round_end);
  append_kv(out, "adds", ev.ops.adds);
  append_kv(out, "muls", ev.ops.muls);
  append_kv(out, "invs", ev.ops.invs);
  append_kv(out, "interps", ev.ops.interpolations);
  append_kv(out, "msgs", ev.comm.messages);
  append_kv(out, "bytes", ev.comm.bytes);
  append_kv(out, "dropped", ev.faults.dropped);
  append_kv(out, "delayed", ev.faults.delayed);
  append_kv(out, "duplicated", ev.faults.duplicated);
  append_kv(out, "corrupted", ev.faults.corrupted);
  out += "\"detail\":\"";
  append_escaped(out, ev.detail);
  out += "\"}";
  return out;
}

bool from_jsonl(std::string_view line, TraceEvent& ev) {
  ev = TraceEvent{};
  FlatJsonScanner scanner(line);
  bool kind_ok = true;
  const bool ok = scanner.scan([&](const std::string& key,
                                   const std::string& sval,
                                   std::uint64_t nval, bool is_string) {
    if (key == "seq") ev.seq = nval;
    else if (key == "kind") {
      if (sval == "span") ev.kind = TraceEventKind::kSpan;
      else if (sval == "point") ev.kind = TraceEventKind::kPoint;
      else kind_ok = false;
    } else if (key == "proto") ev.protocol = sval;
    else if (key == "phase") ev.phase = sval;
    else if (key == "player") ev.player = static_cast<int>(static_cast<std::int64_t>(nval));
    else if (key == "batch") ev.batch = static_cast<std::uint32_t>(nval);
    else if (key == "committee") ev.committee = static_cast<std::uint32_t>(nval);
    else if (key == "r0") ev.round_begin = nval;
    else if (key == "r1") ev.round_end = nval;
    else if (key == "adds") ev.ops.adds = nval;
    else if (key == "muls") ev.ops.muls = nval;
    else if (key == "invs") ev.ops.invs = nval;
    else if (key == "interps") ev.ops.interpolations = nval;
    else if (key == "msgs") ev.comm.messages = nval;
    else if (key == "bytes") ev.comm.bytes = nval;
    else if (key == "dropped") ev.faults.dropped = nval;
    else if (key == "delayed") ev.faults.delayed = nval;
    else if (key == "duplicated") ev.faults.duplicated = nval;
    else if (key == "corrupted") ev.faults.corrupted = nval;
    else if (key == "detail") ev.detail = sval;
    // unknown keys: ignored (forward compatibility)
    (void)is_string;
  });
  return ok && kind_ok;
}

std::vector<TraceEvent> read_jsonl(std::istream& is, std::size_t* malformed) {
  std::vector<TraceEvent> out;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    TraceEvent ev;
    if (from_jsonl(line, ev)) {
      out.push_back(std::move(ev));
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return out;
}

std::vector<PhaseCost> aggregate_phases(
    const std::vector<TraceEvent>& events) {
  std::vector<PhaseCost> out;
  std::map<std::pair<std::string, std::string>, std::size_t> index;
  // Per (phase index, player): summed rounds, for the max-over-players
  // lockstep measure.
  std::vector<std::map<int, std::uint64_t>> per_player_rounds;
  for (const auto& ev : events) {
    if (ev.kind != TraceEventKind::kSpan) continue;
    const auto key = std::make_pair(ev.protocol, ev.phase);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, out.size()).first;
      out.push_back(PhaseCost{ev.protocol, ev.phase, 0, 0, 0, {}, {}});
      per_player_rounds.emplace_back();
    }
    PhaseCost& cost = out[it->second];
    ++cost.spans;
    cost.ops += ev.ops;
    cost.comm += ev.comm;
    per_player_rounds[it->second][ev.player] += ev.rounds();
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].players = per_player_rounds[i].size();
    for (const auto& [player, rounds] : per_player_rounds[i]) {
      out[i].rounds = std::max(out[i].rounds, rounds);
    }
  }
  return out;
}

FaultCounters sum_fault_events(const std::vector<TraceEvent>& events) {
  FaultCounters total;
  for (const auto& ev : events) {
    if (ev.kind == TraceEventKind::kPoint && ev.protocol == "net" &&
        ev.phase == "fault") {
      total += ev.faults;
    }
  }
  return total;
}

}  // namespace dprbg
