// Internal invariant checking.
//
// DPRBG_CHECK is for programmer errors (violated preconditions inside our
// own code); it aborts with a message. It is *never* used on data received
// from the network — Byzantine input is handled by explicit validation and
// graceful rejection, per the protocol specifications.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace dprbg::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "DPRBG_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace dprbg::detail

#define DPRBG_CHECK(expr)                                       \
  do {                                                          \
    if (!(expr)) {                                              \
      ::dprbg::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                           \
  } while (false)
