// Canonical unsigned varints (LEB128 layout) — the wire-v1 integer
// encoding.
//
// Encoding: little-endian base-128 groups, low group first; bit 7 of
// each byte is the continuation flag. A uint64 takes 1..10 bytes; values
// below 128 take exactly one byte, which is what makes the v1 envelope
// header and the Grade-Cast echo layout shrink at small field values
// (net/msg.h, gradecast/gradecast.h).
//
// Decoding is *canonical*: exactly one byte string encodes each value.
// Overlong encodings (a final zero group, e.g. 0x80 0x00 for 0), runs
// past 10 bytes, and 10-byte encodings spilling beyond 64 bits are all
// rejected, as is truncation. Canonicality is a security property, not a
// nicety — it keeps "decode then re-encode" byte-identical, so signed or
// hashed messages cannot be mutated into a second valid spelling
// (fuzz/fuzz_varint.cpp round-trips every accepted input; the adversarial
// property suite is tests/varint_test.cpp).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dprbg {

inline constexpr std::size_t kMaxVarintBytes = 10;

// Encoded size of `v`: 1..10 bytes.
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Appends the canonical encoding of `v` to `out`.
inline void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

struct VarintDecode {
  std::uint64_t value = 0;
  std::size_t bytes = 0;  // consumed iff ok
  bool ok = false;
};

// Decodes one canonical varint from the front of `data`. Fails (ok ==
// false, nothing consumed) on truncation, an overlong encoding, or
// 64-bit overflow.
[[nodiscard]] inline VarintDecode read_varint(
    std::span<const std::uint8_t> data) {
  VarintDecode r;
  std::uint64_t v = 0;
  const std::size_t limit =
      data.size() < kMaxVarintBytes ? data.size() : kMaxVarintBytes;
  for (std::size_t i = 0; i < limit; ++i) {
    const std::uint8_t b = data[i];
    const std::uint64_t group = b & 0x7Fu;
    // The 10th byte holds bits 63..69: anything above bit 0 overflows.
    if (i == kMaxVarintBytes - 1 && group > 1) return r;
    v |= group << (7 * i);
    if ((b & 0x80u) == 0) {
      // Canonical form: the final group is nonzero (except the
      // single-byte encoding of 0 itself).
      if (i > 0 && group == 0) return r;
      r.value = v;
      r.bytes = i + 1;
      r.ok = true;
      return r;
    }
  }
  return r;  // truncated, or a continuation run past 10 bytes
}

}  // namespace dprbg
