// Protocol Batch-VSS (Fig. 3): verify M sharings at the cost of one.
//
// Model as in vss.h (Section 3: n >= 3t+1, broadcast assumption, one
// sealed coin available).
//
//   1. r <- Coin-Expose(k-ary coin).
//   2. P_i computes beta_i = r*alpha_iM + ... evaluated by Horner as
//      ((...(r*alpha_iM + alpha_i(M-1))r + ...)r + alpha_i1)r
//      = sum_{j=1}^{M} alpha_ij r^j.
//   3. P_i broadcasts beta_i.
//   4. Interpolate F(x) through beta_1..beta_n; accept iff deg(F) <= t.
//
// Soundness (Lemma 3): if some f_j has degree > t, acceptance requires r
// to be a root of a nonzero degree-M polynomial fixed before r was
// exposed — probability at most M/p.
//
// Costs (Lemma 4): 2 interpolations total and 2 rounds of n messages —
// *independent of M* — so the amortized cost per verified secret is
// O(1) communication and ~2k log k additions (Corollary 1).
//
// Secrecy note: the broadcast combination reveals one random linear
// combination of each player's M shares. When the shared values must stay
// unpredictable even after M-1 of them are later revealed (the coin
// use-case), the dealer includes one extra blinding polynomial in the
// batch — see Bit-Gen (coin/bitgen.h) and DESIGN.md §3. As a pure degree
// check (Problem 2) the protocol is implemented here exactly as in Fig. 3.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/trace.h"
#include "gf/field_concept.h"
#include "gf/field_io.h"
#include "net/endpoint.h"
#include "net/msg.h"
#include "poly/berlekamp_welch.h"
#include "poly/polynomial.h"
#include "sharing/shamir.h"
#include "coin/coin_expose.h"
#include "coin/sealed_coin.h"

namespace dprbg {

// Horner combination of Fig. 3 / Fig. 4: sum_{j=1..M} shares[j-1] * r^j.
template <FiniteField F>
F batch_combine(std::span<const F> shares, F r) {
  F acc = F::zero();
  for (std::size_t j = shares.size(); j-- > 0;) {
    acc = (acc + shares[j]) * r;
  }
  return acc;
}

template <FiniteField F>
struct BatchVssOutcome {
  bool accepted = false;
  // This player's M shares (row i of the share matrix), as received.
  std::vector<F> shares;
  F challenge = F::zero();
};

// Distribution (1 round) + challenge exposure (1 round) + combination
// broadcast and local decision (1 round). The dealer passes its M
// polynomials; everyone else passes an empty span. `expected_m` is the
// publicly known batch size M.
template <FiniteField F, NetEndpoint Io>
BatchVssOutcome<F> batch_vss(
    Io& io, int dealer, unsigned t, unsigned expected_m,
    std::span<const Polynomial<F>> dealer_polys,
    const SealedCoin<F>& challenge_coin, unsigned instance = 0) {
  const std::uint32_t share_tag = make_tag(ProtoId::kBatchVss, instance, 0);
  const std::uint32_t combo_tag = make_tag(ProtoId::kBatchVss, instance, 2);
  const int n = io.n();

  // Distribution round: the dealer hands every player its row of the
  // share matrix in a single message of M field elements (size Mk bits,
  // matching Lemma 6's accounting).
  {
    TraceSpan deal(io, "batch-vss", "deal");
    if (io.id() == dealer) {
      DPRBG_CHECK(dealer_polys.size() == expected_m);
      ArenaScope scope(scratch_arena());
      ScratchVec<F> vals(scope, expected_m);
      for (int i = 0; i < n; ++i) {
        eval_polys_block<F>(dealer_polys, eval_point<F>(i), vals);
        ByteWriter w(expected_m * F::kBytes);
        for (const F& v : vals) write_elem(w, v);
        io.send(i, share_tag, std::move(w).take());
      }
    }
  }

  // Step 1: expose the challenge (delivers the shares at the same sync;
  // the dealer committed before r became known).
  TraceSpan challenge(io, "batch-vss", "challenge");
  const std::optional<F> r_val = coin_expose<F>(io, challenge_coin, instance);
  challenge.close();

  BatchVssOutcome<F> out;
  out.shares.assign(expected_m, F::zero());
  if (const Msg* mine = io.inbox().from(dealer, share_tag)) {
    // Exactly M elements, size-validated before any allocation.
    if (auto received = decode_elem_row<F>(mine->body, expected_m)) {
      out.shares = std::move(*received);
    }
  }
  if (!r_val.has_value()) {
    io.sync();
    return out;
  }
  const F r = *r_val;
  out.challenge = r;

  // Steps 2-3: Horner combination, broadcast.
  TraceSpan combine(io, "batch-vss", "combine");
  ByteWriter w;
  write_elem(w, batch_combine<F>(out.shares, r));
  io.send_all(combo_tag, w.data());
  const Inbox& in = io.sync();
  combine.close();

  // Step 4: one interpolation (Berlekamp-Welch, tolerating faulty
  // announcers as in vss.h) certifies all M sharings at once.
  TraceSpan interpolate(io, "batch-vss", "interpolate");
  std::vector<PointValue<F>> points;
  for (const Msg* m : in.with_tag(combo_tag)) {
    const auto beta = decode_elem_row<F>(m->body, 1);
    if (!beta) {
      io.note_decode_failure(m->from);
      continue;
    }
    points.push_back({eval_point<F>(m->from), (*beta)[0]});
  }
  if (points.size() < static_cast<std::size_t>(n - static_cast<int>(t))) {
    return out;
  }
  const unsigned max_errors =
      std::min(static_cast<unsigned>(io.t()),
               static_cast<unsigned>((points.size() - t - 1) / 2));
  const auto decoded = berlekamp_welch<F>(points, t, max_errors);
  if (!decoded) {
    trace_point("batch-vss", "decode-fail", io.id(), io.rounds(),
                "berlekamp-welch failed", io.stream(), io.committee());
    return out;
  }
  unsigned agreements = 0;
  for (const auto& pv : points) {
    if ((*decoded)(pv.x) == pv.y) ++agreements;
  }
  out.accepted = agreements >= static_cast<unsigned>(n) - t;
  return out;
}

}  // namespace dprbg
