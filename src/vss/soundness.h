// Monte Carlo soundness experiments for Lemmas 1, 3 and 5.
//
// The lemmas bound the probability that an *optimal* cheating dealer gets
// an invalid sharing accepted: 1/p for single VSS (Lemma 1), M/p for
// Batch-VSS (Lemma 3) and Bit-Gen (Lemma 5). To make these probabilities
// measurable the experiments run over a deliberately small field
// (GF(2^8), p = 256) and implement the dealer strategy that meets the
// bound with equality:
//
//  * Lemma 1: the dealer guesses a challenge r*, shares f of degree t+1,
//    and picks the blinding polynomial g with x^(t+1)-coefficient
//    -a_(t+1)/r*, so the combination f + r g has degree <= t iff r = r*.
//    Acceptance probability: exactly 1/p.
//  * Lemma 3/5: the dealer picks M-1 distinct nonzero target challenges
//    rho_1..rho_(M-1) and chooses the x^(t+1)-coefficients c_j of its M
//    polynomials so that sum_j c_j r^j = r * prod_i (r - rho_i). The
//    combination has degree <= t iff r is one of the M roots {0, rho_i}.
//    Acceptance probability: exactly M/p.
//
// These are pure algebra (the network adds nothing to the event), so the
// trials run offline and fast; the protocol-level plumbing is covered by
// the cluster tests.

#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "gf/field_concept.h"
#include "poly/berlekamp_welch.h"
#include "poly/interpolate.h"
#include "poly/polynomial.h"
#include "rng/chacha.h"
#include "sharing/shamir.h"

namespace dprbg {

struct SoundnessResult {
  std::uint64_t trials = 0;
  std::uint64_t accepts = 0;

  [[nodiscard]] double rate() const {
    return trials == 0 ? 0.0 : double(accepts) / double(trials);
  }
};

// Lemma 1: single-VSS soundness against the optimal cheating dealer.
template <FiniteField F>
SoundnessResult vss_soundness_trials(int n, unsigned t,
                                     std::uint64_t trials,
                                     std::uint64_t seed) {
  Chacha rng(seed, 0x50FD);
  SoundnessResult result;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    // Dealer: invalid sharing (degree t+1, leading coefficient nonzero).
    auto f = Polynomial<F>::random(t, rng);
    std::vector<F> f_coeffs(f.coeffs());
    f_coeffs.resize(t + 2, F::zero());
    f_coeffs[t + 1] = random_nonzero<F>(rng);
    const Polynomial<F> bad_f{std::move(f_coeffs)};
    // Dealer guesses r* and builds the canceling blinder.
    const F r_guess = random_nonzero<F>(rng);
    auto g = Polynomial<F>::random(t, rng);
    std::vector<F> g_coeffs(g.coeffs());
    g_coeffs.resize(t + 2, F::zero());
    g_coeffs[t + 1] = bad_f.coeff(t + 1) / r_guess;  // char 2: -x = x
    const Polynomial<F> blind{std::move(g_coeffs)};
    // Honest challenge.
    const F r = random_element<F>(rng);
    // Players broadcast beta_i = f(i) + r g(i); accept iff deg <= t.
    std::vector<PointValue<F>> points;
    for (int i = 0; i < n; ++i) {
      const F x = eval_point<F>(i);
      points.push_back({x, bad_f(x) + r * blind(x)});
    }
    ++result.trials;
    if (is_degree_at_most<F>(points, t)) ++result.accepts;
  }
  return result;
}

namespace soundness_detail {

// x^(t+1)-coefficients c_1..c_M such that sum_j c_j r^j =
// r * prod_{i<M} (r - rho_i) for distinct nonzero rho_i.
template <FiniteField F>
std::vector<F> rooted_coefficients(unsigned m, Chacha& rng) {
  // Distinct nonzero roots.
  std::vector<F> roots;
  while (roots.size() + 1 < m) {
    const F rho = random_nonzero<F>(rng);
    bool fresh = true;
    for (const F& r0 : roots) {
      if (r0 == rho) fresh = false;
    }
    if (fresh) roots.push_back(rho);
  }
  Polynomial<F> q = Polynomial<F>::constant(F::one());
  for (const F& rho : roots) {
    q = q * Polynomial<F>{{rho, F::one()}};  // (x + rho) = (x - rho)
  }
  // q has degree m-1; c_j = coeff of x^(j-1) in q (the extra factor r
  // shifts indices by one).
  std::vector<F> c(m);
  for (unsigned j = 1; j <= m; ++j) c[j - 1] = q.coeff(j - 1);
  return c;
}

}  // namespace soundness_detail

// Lemma 3: Batch-VSS soundness, optimal M-root dealer. `m` must satisfy
// m <= p - 1 so the distinct roots exist.
template <FiniteField F>
SoundnessResult batch_soundness_trials(int n, unsigned t, unsigned m,
                                       std::uint64_t trials,
                                       std::uint64_t seed) {
  DPRBG_CHECK(m >= 1);
  Chacha rng(seed, 0xBA7C);
  SoundnessResult result;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const auto c = soundness_detail::rooted_coefficients<F>(m, rng);
    // M polynomials of degree t+1 whose high coefficients are c_j; the
    // degree-<=t parts are irrelevant to the acceptance event but are
    // randomized anyway.
    std::vector<Polynomial<F>> polys;
    for (unsigned j = 0; j < m; ++j) {
      auto base = Polynomial<F>::random(t, rng);
      std::vector<F> coeffs(base.coeffs());
      coeffs.resize(t + 2, F::zero());
      coeffs[t + 1] = c[j];
      polys.emplace_back(std::move(coeffs));
    }
    const F r = random_element<F>(rng);
    std::vector<PointValue<F>> points;
    for (int i = 0; i < n; ++i) {
      const F x = eval_point<F>(i);
      F beta = F::zero();
      F rp = F::one();
      for (unsigned j = 0; j < m; ++j) {
        rp = rp * r;
        beta = beta + rp * polys[j](x);
      }
      points.push_back({x, beta});
    }
    ++result.trials;
    if (is_degree_at_most<F>(points, t)) ++result.accepts;
  }
  return result;
}

// Lemma 5: Bit-Gen soundness — same dealer strategy, but acceptance runs
// through the broadcast-free decision rule (Berlekamp-Welch with >= n - t
// agreement) and t of the combination shares are adversarial garbage.
template <FiniteField F>
SoundnessResult bitgen_soundness_trials(int n, unsigned t, unsigned m,
                                        std::uint64_t trials,
                                        std::uint64_t seed) {
  Chacha rng(seed, 0xB17);
  SoundnessResult result;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const auto c = soundness_detail::rooted_coefficients<F>(m, rng);
    std::vector<Polynomial<F>> polys;
    for (unsigned j = 0; j < m; ++j) {
      auto base = Polynomial<F>::random(t, rng);
      std::vector<F> coeffs(base.coeffs());
      coeffs.resize(t + 2, F::zero());
      coeffs[t + 1] = c[j];
      polys.emplace_back(std::move(coeffs));
    }
    const F r = random_element<F>(rng);
    std::vector<PointValue<F>> points;
    for (int i = 0; i < n; ++i) {
      const F x = eval_point<F>(i);
      F beta = F::zero();
      F rp = F::one();
      for (unsigned j = 0; j < m; ++j) {
        rp = rp * r;
        beta = beta + rp * polys[j](x);
      }
      // The last t players are faulty and send garbage.
      if (i >= n - static_cast<int>(t)) beta = random_element<F>(rng);
      points.push_back({x, beta});
    }
    ++result.trials;
    const unsigned need = static_cast<unsigned>(n) - t;
    const unsigned max_errors = std::min(
        t, static_cast<unsigned>((points.size() - t - 1) / 2));
    const auto decoded = berlekamp_welch<F>(points, t, max_errors);
    if (decoded) {
      unsigned agreements = 0;
      for (const auto& pv : points) {
        if ((*decoded)(pv.x) == pv.y) ++agreements;
      }
      if (agreements >= need) ++result.accepts;
    }
  }
  return result;
}

}  // namespace dprbg
