// Protocol VSS (Fig. 2): verifiable secret sharing of a single secret.
//
// Model (Section 3): n >= 3t + 1, broadcast channel available. The
// broadcast channel is an *assumption* of this section (Section 4 removes
// it); we realize it as send-to-all — protocols in this file may only be
// run with adversaries that respect the broadcast abstraction (no
// equivocation on broadcast tags). Access to one sealed random k-ary coin
// is assumed, "a realistic assumption in the presence of a D-PRBG".
//
//   1. The dealer D shares f(x) (the secret sharing under test) and an
//      additional blinding polynomial g(x), so each player P_i holds
//      alpha_i = f(i) and gamma_i = g(i).
//   2. r <- Coin-Expose(k-ary coin).
//   3. P_i broadcasts beta_i = alpha_i + r * gamma_i.
//   4. Interpolate F(x) through beta_1..beta_n; accept iff deg(F) <= t.
//
// Soundness (Lemma 1): if no degree-<=t polynomial matches the honest
// shares, acceptance requires the dealer to have guessed -a_j / r before
// r was exposed — probability at most 1/p.
//
// Costs (Lemma 2): 2 polynomial interpolations (one here, one inside
// Coin-Expose), 2 rounds of n messages of size k each.

#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "common/trace.h"
#include "gf/field_concept.h"
#include "gf/field_io.h"
#include "net/endpoint.h"
#include "net/msg.h"
#include "poly/berlekamp_welch.h"
#include "poly/polynomial.h"
#include "sharing/shamir.h"
#include "coin/coin_expose.h"
#include "coin/sealed_coin.h"

namespace dprbg {

template <FiniteField F>
struct VssOutcome {
  // Unanimous accept/reject (under the broadcast assumption all honest
  // players decide identically).
  bool accepted = false;
  // This player's share alpha_i of the secret (meaningful when accepted).
  F share = F::zero();
  // The challenge used (exposed seed coin), for diagnostics.
  F challenge = F::zero();
};

// Runs the full protocol: share distribution (1 round), challenge
// exposure (1 round), combination broadcast + local decision (1 round).
// `dealer_poly` must be set iff io.id() == dealer; a *cheating* dealer
// passes a polynomial of degree > t (or sends inconsistent shares via a
// custom program instead of calling this function).
template <FiniteField F, NetEndpoint Io>
VssOutcome<F> vss_share_and_verify(
    Io& io, int dealer, unsigned t,
    const std::optional<Polynomial<F>>& dealer_poly,
    const SealedCoin<F>& challenge_coin, unsigned instance = 0) {
  const std::uint32_t share_tag = make_tag(ProtoId::kVss, instance, 0);
  const std::uint32_t combo_tag = make_tag(ProtoId::kVss, instance, 2);
  const int n = io.n();

  // Step 1: dealer distributes alpha_i = f(i) and gamma_i = g(i).
  {
    TraceSpan deal(io, "vss", "deal");
    if (io.id() == dealer) {
      DPRBG_CHECK(dealer_poly.has_value());
      const std::array<Polynomial<F>, 2> fg{
          *dealer_poly, Polynomial<F>::random(t, io.rng())};
      std::array<F, 2> vals;
      for (int i = 0; i < n; ++i) {
        eval_polys_block<F>(std::span<const Polynomial<F>>(fg),
                            eval_point<F>(i), vals);
        ByteWriter w(2 * F::kBytes);
        write_elem(w, vals[0]);
        write_elem(w, vals[1]);
        io.send(i, share_tag, std::move(w).take());
      }
    }
  }

  // Step 2: expose the challenge coin (consumes one round; the share
  // messages land at this sync as well).
  // Note ordering: the dealer committed to f and g in the round *before*
  // r is revealed — the crux of Lemma 1.
  F alpha = F::zero();
  F gamma = F::zero();
  {
    // Both the share delivery and the coin shares arrive at the next
    // sync; coin_expose performs it.
    TraceSpan challenge(io, "vss", "challenge");
    const std::optional<F> r_val =
        coin_expose<F>(io, challenge_coin, instance);
    challenge.close();
    const Msg* mine = io.inbox().from(dealer, share_tag);
    if (mine != nullptr) {
      // Exactly (alpha, gamma), size-validated before reading.
      if (const auto pair = decode_elem_row<F>(mine->body, 2)) {
        alpha = (*pair)[0];
        gamma = (*pair)[1];
      }
    }
    if (!r_val.has_value()) {
      // Seed coin failed to expose: abort-reject (cannot happen within the
      // model's fault bounds).
      io.sync();  // keep lockstep with players broadcasting below
      return {};
    }
    const F r = *r_val;

    // Step 3: broadcast beta_i = alpha_i + r * gamma_i.
    TraceSpan respond(io, "vss", "respond");
    ByteWriter w;
    write_elem(w, alpha + r * gamma);
    io.send_all(combo_tag, w.data());
    const Inbox& in = io.sync();
    respond.close();
    TraceSpan interpolate(io, "vss", "interpolate");

    // Step 4: interpolate through the broadcast values; accept iff a
    // degree-<=t polynomial explains all honest contributions. Faulty
    // players may broadcast garbage or stay silent, so we decode with
    // Berlekamp-Welch tolerating up to t errors and require agreement
    // with at least n - t of the announced points (n >= 3t+1 makes the
    // decoding unambiguous).
    std::vector<PointValue<F>> points;
    for (const Msg* m : in.with_tag(combo_tag)) {
      const auto beta = decode_elem_row<F>(m->body, 1);
      if (!beta) {
        io.note_decode_failure(m->from);
        continue;
      }
      points.push_back({eval_point<F>(m->from), (*beta)[0]});
    }
    VssOutcome<F> out;
    out.challenge = r;
    out.share = alpha;
    if (points.size() < static_cast<std::size_t>(n - static_cast<int>(t))) {
      return out;  // not enough announcements to certify anything
    }
    const unsigned max_errors = std::min(
        static_cast<unsigned>(io.t()),
        static_cast<unsigned>((points.size() - t - 1) / 2));
    const auto decoded = berlekamp_welch<F>(points, t, max_errors);
    if (!decoded) {
      trace_point("vss", "decode-fail", io.id(), io.rounds(),
                  "berlekamp-welch failed", io.stream(), io.committee());
      return out;
    }
    // Require the decoded polynomial to explain >= n - t announcements.
    unsigned agreements = 0;
    for (const auto& pv : points) {
      if ((*decoded)(pv.x) == pv.y) ++agreements;
    }
    out.accepted =
        agreements >= static_cast<unsigned>(n) - t;
    return out;
  }
}

}  // namespace dprbg
