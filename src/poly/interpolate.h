// Lagrange interpolation ("the basic solution ... compute the unique
// polynomial that they define (using, say, the Lagrange method)", §3.1).
//
// Two entry points: full interpolation returning the polynomial, and
// evaluation of the interpolating polynomial at a single target point
// (the common case is reconstructing the secret f(0) from shares). Both
// bump the `interpolations` metric once, matching the paper's habit of
// counting "polynomial interpolations" as a unit of work.
//
// Hot-path kernels:
//  * Montgomery's-trick batch inversion turns the n barycentric-weight
//    inversions into one inv() plus ~3(n-1) multiplications.
//  * The share x-coordinates are almost always the canonical grid
//    1..n (sharing/shamir.h's eval_point), so the master polynomial
//    N(x) = prod (x - x_j) and the inverted weights
//    w_i = prod_{j != i} (x_i - x_j)^{-1} are computed once per
//    (field, grid size) and cached thread-locally — every later
//    VSS/Bit-Gen/expose interpolation on that grid reuses them. Inputs
//    off the grid (e.g. Berlekamp-Welch over a share subset under
//    faults) fall back to the generic path.
//  * Per-call scratch (numerators, local weights, quotients) lives on
//    the thread's bump arena (common/arena.h) instead of the heap, so
//    repeated rounds allocate nothing after warm-up.
//  * Blocked SoA kernels at the bottom of this header evaluate all M
//    columns of a round's share matrix in one pass (batch_combine_block,
//    accumulate_rows_block, interpolate_at_block). The first two replay
//    the scalar per-row operation sequence exactly — bit-for-bit outputs
//    AND identical add/mul counts, so the Lemma 2/4/6/8 trace budgets
//    are untouched (asserted in tests/block_kernels_test.cpp).

#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "gf/field_concept.h"
#include "poly/polynomial.h"

namespace dprbg {

template <FiniteField F>
struct PointValue {
  F x;
  F y;
};

namespace interp_detail {

// Montgomery's trick: replaces vals[i] with vals[i]^{-1} for all i using
// one inv() and 3(n-1) multiplications (prefix products, one inversion
// of the total, then a backward sweep). All entries must be nonzero.
template <FiniteField F>
void batch_invert(std::span<F> vals) {
  const std::size_t n = vals.size();
  if (n == 0) return;
  ArenaScope scope(scratch_arena());
  ScratchVec<F> prefix(scope, n);
  F acc = F::one();
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i] = acc;
    acc = acc * vals[i];
  }
  F inv_acc = acc.inv();
  for (std::size_t i = n; i-- > 0;) {
    const F v = vals[i];
    vals[i] = inv_acc * prefix[i];
    inv_acc = inv_acc * v;
  }
}

// Cached barycentric data for the canonical grid x = 1..n: the master
// polynomial's coefficients and the pre-inverted weights.
template <FiniteField F>
struct GridData {
  std::vector<F> master;   // n+1 coefficients of prod_j (x - x_j)
  std::vector<F> weights;  // w_i = prod_{j != i} (x_i - x_j)^{-1}
};

// Builds N(x) = prod_j (x - x_j) in place (master must hold n+1 zeros on
// entry; on exit master[k] is the coefficient of x^k).
template <FiniteField F>
void build_master(std::span<const PointValue<F>> points,
                  std::span<F> master) {
  const std::size_t n = points.size();
  master[0] = F::one();
  std::size_t deg = 0;
  for (std::size_t j = 0; j < n; ++j) {
    // master *= (x - x_j)
    for (std::size_t i = deg + 1; i-- > 0;) {
      F carry = master[i];
      master[i] = (i > 0 ? master[i - 1] : F::zero()) - carry * points[j].x;
    }
    master[deg + 1] = F::one();
    ++deg;
  }
}

// Denominators d_i = prod_{j != i} (x_i - x_j), inverted in one batch,
// written into caller-provided storage (arena-friendly).
template <FiniteField F>
void compute_inverted_weights(std::span<const PointValue<F>> points,
                              std::span<F> w) {
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = F::one();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) w[i] = w[i] * (points[i].x - points[j].x);
    }
  }
  batch_invert(w);
}

template <FiniteField F>
std::vector<F> inverted_weights(std::span<const PointValue<F>> points) {
  std::vector<F> w(points.size(), F::one());
  compute_inverted_weights(points, std::span<F>(w));
  return w;
}

// The cached grid data when `points`' x-coordinates are exactly
// 1, 2, ..., n (the Shamir evaluation grid); nullptr otherwise. The
// cache is thread-local (player threads are born per run, so a run's
// op counts stay deterministic) and the one-time build cost is charged
// to the first interpolation that needs the size.
template <FiniteField F>
const GridData<F>* grid_lookup(std::span<const PointValue<F>> points) {
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!(points[i].x == F::from_uint(i + 1))) return nullptr;
  }
  thread_local std::map<std::size_t, GridData<F>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    GridData<F> data;
    data.master.assign(n + 1, F::zero());
    build_master(points, std::span<F>(data.master));
    data.weights = inverted_weights(points);
    it = cache.emplace(n, std::move(data)).first;
  }
  return &it->second;
}

}  // namespace interp_detail

// The unique polynomial of degree < points.size() through the given points
// (x-coordinates must be distinct).
template <FiniteField F>
Polynomial<F> lagrange_interpolate(std::span<const PointValue<F>> points) {
  count_interpolation();
  const std::size_t n = points.size();
  DPRBG_CHECK(n > 0);
  // Sum of y_i * prod_{j != i} (x - x_j) / (x_i - x_j), built with O(n^2)
  // coefficient arithmetic via the "master" product trick:
  //   N(x) = prod_j (x - x_j);  L_i(x) = N(x) / (x - x_i) * w_i,
  // where w_i = prod_{j != i} (x_i - x_j)^{-1} (barycentric weights).
  const interp_detail::GridData<F>* grid =
      interp_detail::grid_lookup<F>(points);
  ArenaScope scope(scratch_arena());
  // Local storage must outlive the branch (the arena memory would, but
  // the ScratchVec's non-trivial-type fallback would not).
  ScratchVec<F> master_local(scope, grid == nullptr ? n + 1 : 0);
  ScratchVec<F> weights_local(scope, grid == nullptr ? n : 0);
  const F* master = nullptr;
  const F* weights = nullptr;
  if (grid != nullptr) {
    master = grid->master.data();
    weights = grid->weights.data();
  } else {
    interp_detail::build_master(points, std::span<F>(master_local));
    interp_detail::compute_inverted_weights(points,
                                            std::span<F>(weights_local));
    master = master_local.data();
    weights = weights_local.data();
  }
  std::vector<F> result(n, F::zero());
  ScratchVec<F> quotient(scope, n);
  for (std::size_t i = 0; i < n; ++i) {
    const F scale = points[i].y * weights[i];
    // Synthetic division: quotient = master / (x - x_i).
    F carry = master[n];
    for (std::size_t k = n; k-- > 0;) {
      quotient[k] = carry;
      carry = master[k] + carry * points[i].x;
    }
    // carry is now the remainder master(x_i) = 0 (distinct x's).
    for (std::size_t k = 0; k < n; ++k) {
      result[k] = result[k] + scale * quotient[k];
    }
  }
  return Polynomial<F>{std::move(result)};
}

// Evaluate the interpolating polynomial at `target` without materializing
// it: sum of y_i * prod_{j != i} (target - x_j)/(x_i - x_j). The
// numerators come from prefix/suffix products (O(n) multiplications, no
// divisions); the denominators from the cached grid weights or one batch
// inversion.
template <FiniteField F>
F interpolate_at(std::span<const PointValue<F>> points, F target) {
  count_interpolation();
  const std::size_t n = points.size();
  DPRBG_CHECK(n > 0);
  const interp_detail::GridData<F>* grid =
      interp_detail::grid_lookup<F>(points);
  ArenaScope scope(scratch_arena());
  ScratchVec<F> weights_local(scope, grid == nullptr ? n : 0);
  const F* weights = nullptr;
  if (grid != nullptr) {
    weights = grid->weights.data();
  } else {
    interp_detail::compute_inverted_weights(points,
                                            std::span<F>(weights_local));
    weights = weights_local.data();
  }
  // num_i = prod_{j != i} (target - x_j) = prefix_i * suffix_i. Handles
  // target == x_j too: every other numerator contains the zero factor.
  ScratchVec<F> num(scope, n);
  F acc = F::one();
  for (std::size_t i = 0; i < n; ++i) {
    num[i] = acc;
    acc = acc * (target - points[i].x);
  }
  acc = F::one();
  for (std::size_t i = n; i-- > 0;) {
    num[i] = num[i] * acc;
    acc = acc * (target - points[i].x);
  }
  F sum = F::zero();
  for (std::size_t i = 0; i < n; ++i) {
    sum = sum + points[i].y * num[i] * weights[i];
  }
  return sum;
}

// ---------------------------------------------------------------------
// Blocked SoA kernels: evaluate all M columns of a round's share matrix
// in one pass. See the header comment for the equivalence contract.

namespace interp_detail {

// field_kernel_* telemetry for the generic-field blocked kernels (the
// Zq-specific kernels in gf/zq_simd.cpp publish under the same names).
inline void tel_block(const char* op, std::size_t elems) {
  if (!telemetry_enabled()) return;
  MetricsRegistry& reg = metrics();
  const std::string labels = std::string("op=") + op;
  reg.counter("field_kernel_elems_total", labels).add(elems);
  reg.histogram("field_kernel_block_len", labels).observe(elems);
}

}  // namespace interp_detail

// Horner combinations of many rows under one challenge r, all in one
// blocked pass: out[i] = sum_{j=1..m} rows[i][j-1] * r^j, i.e. exactly
// batch_combine(rows[i], r) for every row. Rows are register-tiled so a
// tile's accumulators stay hot while the shared power-of-r walk streams
// each column once; the per-row operation sequence — (acc + x) * r from
// j = m-1 down to 0 — is replayed verbatim, so outputs AND add/mul
// counts are identical to the scalar loop (trace budgets unaffected).
// Every row must have m elements.
template <FiniteField F>
void batch_combine_block(std::span<const F* const> rows, std::size_t m, F r,
                         std::span<F> out) {
  DPRBG_CHECK(out.size() == rows.size());
  interp_detail::tel_block("combine_block", rows.size() * m);
  constexpr std::size_t kTile = 32;
  F acc[kTile];
  for (std::size_t r0 = 0; r0 < rows.size(); r0 += kTile) {
    const std::size_t tile = std::min(kTile, rows.size() - r0);
    for (std::size_t t = 0; t < tile; ++t) acc[t] = F::zero();
    for (std::size_t j = m; j-- > 0;) {
      for (std::size_t t = 0; t < tile; ++t) {
        acc[t] = (acc[t] + rows[r0 + t][j]) * r;
      }
    }
    for (std::size_t t = 0; t < tile; ++t) out[r0 + t] = acc[t];
  }
}

// Column sums of a set of rows: out[h] += rows[0][h] + rows[1][h] + ...
// (the Coin-Gen output step's sigma accumulation, Fig. 6's sum over the
// dealers of S). Per output element the adds happen in row order — the
// same sequence as the scalar h-outer/j-inner loop — so outputs and add
// counts match exactly. Every row must have out.size() elements.
template <FiniteField F>
void accumulate_rows_block(std::span<const F* const> rows,
                           std::span<F> out) {
  interp_detail::tel_block("row_sum", rows.size() * out.size());
  constexpr std::size_t kTile = 64;
  const std::size_t m = out.size();
  for (std::size_t h0 = 0; h0 < m; h0 += kTile) {
    const std::size_t tile = std::min(kTile, m - h0);
    for (const F* row : rows) {
      for (std::size_t t = 0; t < tile; ++t) {
        out[h0 + t] = out[h0 + t] + row[h0 + t];
      }
    }
  }
}

// Evaluate, for every column h of an n x m share matrix (rows[i] holds
// player i's m values), the polynomial interpolating (points[i].x,
// rows[i][h]) at `target` — m interpolations sharing one set of
// barycentric weights and one numerator walk. Bit-for-bit equal to m
// independent interpolate_at calls on the per-column points (the final
// sum replays interpolate_at's i-order and association); the shared
// numerators make it ~3x cheaper in multiplications, which is why it is
// metered separately and used only outside the budget-traced protocol
// phases. points[i].y is ignored; counted as m interpolations.
template <FiniteField F>
void interpolate_at_block(std::span<const PointValue<F>> points,
                          std::span<const F* const> rows, F target,
                          std::span<F> out) {
  const std::size_t n = points.size();
  const std::size_t m = out.size();
  DPRBG_CHECK(n > 0 && rows.size() == n);
  for (std::size_t h = 0; h < m; ++h) count_interpolation();
  interp_detail::tel_block("interp_block", n * m);
  const interp_detail::GridData<F>* grid =
      interp_detail::grid_lookup<F>(points);
  ArenaScope scope(scratch_arena());
  ScratchVec<F> weights_local(scope, grid == nullptr ? n : 0);
  const F* weights = nullptr;
  if (grid != nullptr) {
    weights = grid->weights.data();
  } else {
    interp_detail::compute_inverted_weights(points,
                                            std::span<F>(weights_local));
    weights = weights_local.data();
  }
  ScratchVec<F> num(scope, n);
  F acc = F::one();
  for (std::size_t i = 0; i < n; ++i) {
    num[i] = acc;
    acc = acc * (target - points[i].x);
  }
  acc = F::one();
  for (std::size_t i = n; i-- > 0;) {
    num[i] = num[i] * acc;
    acc = acc * (target - points[i].x);
  }
  // coeff_i = num_i * w_i, shared by every column.
  ScratchVec<F> coeff(scope, n);
  for (std::size_t i = 0; i < n; ++i) coeff[i] = num[i] * weights[i];
  constexpr std::size_t kTile = 64;
  for (std::size_t h0 = 0; h0 < m; h0 += kTile) {
    const std::size_t tile = std::min(kTile, m - h0);
    for (std::size_t t = 0; t < tile; ++t) out[h0 + t] = F::zero();
    for (std::size_t i = 0; i < n; ++i) {
      const F c = coeff[i];
      const F* row = rows[i];
      for (std::size_t t = 0; t < tile; ++t) {
        out[h0 + t] = out[h0 + t] + row[h0 + t] * c;
      }
    }
  }
}

// Checks whether the given points lie on a single polynomial of degree at
// most `max_degree` (the degree test of Problem 1): interpolate through
// the first max_degree+1 points and verify the rest.
template <FiniteField F>
bool is_degree_at_most(std::span<const PointValue<F>> points,
                       unsigned max_degree) {
  if (points.size() <= max_degree + 1) return true;
  const auto head = points.first(max_degree + 1);
  const Polynomial<F> f = lagrange_interpolate<F>(head);
  for (std::size_t i = max_degree + 1; i < points.size(); ++i) {
    if (f(points[i].x) != points[i].y) return false;
  }
  return true;
}

}  // namespace dprbg
