// Lagrange interpolation ("the basic solution ... compute the unique
// polynomial that they define (using, say, the Lagrange method)", §3.1).
//
// Two entry points: full interpolation returning the polynomial, and
// evaluation of the interpolating polynomial at a single target point
// (the common case is reconstructing the secret f(0) from shares). Both
// bump the `interpolations` metric once, matching the paper's habit of
// counting "polynomial interpolations" as a unit of work.

#pragma once

#include <span>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "gf/field_concept.h"
#include "poly/polynomial.h"

namespace dprbg {

template <FiniteField F>
struct PointValue {
  F x;
  F y;
};

// The unique polynomial of degree < points.size() through the given points
// (x-coordinates must be distinct).
template <FiniteField F>
Polynomial<F> lagrange_interpolate(std::span<const PointValue<F>> points) {
  count_interpolation();
  const std::size_t n = points.size();
  DPRBG_CHECK(n > 0);
  // Sum of y_i * prod_{j != i} (x - x_j) / (x_i - x_j), built with O(n^2)
  // coefficient arithmetic via the "master" product trick:
  //   N(x) = prod_j (x - x_j);  L_i(x) = N(x) / (x - x_i) * w_i,
  // where w_i = prod_{j != i} (x_i - x_j)^{-1} (barycentric weights).
  std::vector<F> master(n + 1, F::zero());
  master[0] = F::one();
  std::size_t deg = 0;
  for (std::size_t j = 0; j < n; ++j) {
    // master *= (x - x_j)
    for (std::size_t i = deg + 1; i-- > 0;) {
      F carry = master[i];
      master[i] = (i > 0 ? master[i - 1] : F::zero()) - carry * points[j].x;
    }
    master[deg + 1] = F::one();
    ++deg;
  }
  std::vector<F> result(n, F::zero());
  std::vector<F> quotient(n, F::zero());
  for (std::size_t i = 0; i < n; ++i) {
    F w = F::one();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) w = w * (points[i].x - points[j].x);
    }
    const F scale = points[i].y * w.inv();
    // Synthetic division: quotient = master / (x - x_i).
    F carry = master[n];
    for (std::size_t k = n; k-- > 0;) {
      quotient[k] = carry;
      carry = master[k] + carry * points[i].x;
    }
    // carry is now the remainder master(x_i) = 0 (distinct x's).
    for (std::size_t k = 0; k < n; ++k) {
      result[k] = result[k] + scale * quotient[k];
    }
  }
  return Polynomial<F>{std::move(result)};
}

// Evaluate the interpolating polynomial at `target` without materializing
// it: sum of y_i * prod_{j != i} (target - x_j)/(x_i - x_j).
template <FiniteField F>
F interpolate_at(std::span<const PointValue<F>> points, F target) {
  count_interpolation();
  DPRBG_CHECK(!points.empty());
  F acc = F::zero();
  for (std::size_t i = 0; i < points.size(); ++i) {
    F num = F::one();
    F den = F::one();
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      num = num * (target - points[j].x);
      den = den * (points[i].x - points[j].x);
    }
    acc = acc + points[i].y * num * den.inv();
  }
  return acc;
}

// Checks whether the given points lie on a single polynomial of degree at
// most `max_degree` (the degree test of Problem 1): interpolate through
// the first max_degree+1 points and verify the rest.
template <FiniteField F>
bool is_degree_at_most(std::span<const PointValue<F>> points,
                       unsigned max_degree) {
  if (points.size() <= max_degree + 1) return true;
  const auto head = points.first(max_degree + 1);
  const Polynomial<F> f = lagrange_interpolate<F>(head);
  for (std::size_t i = max_degree + 1; i < points.size(); ++i) {
    if (f(points[i].x) != points[i].y) return false;
  }
  return true;
}

}  // namespace dprbg
