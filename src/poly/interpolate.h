// Lagrange interpolation ("the basic solution ... compute the unique
// polynomial that they define (using, say, the Lagrange method)", §3.1).
//
// Two entry points: full interpolation returning the polynomial, and
// evaluation of the interpolating polynomial at a single target point
// (the common case is reconstructing the secret f(0) from shares). Both
// bump the `interpolations` metric once, matching the paper's habit of
// counting "polynomial interpolations" as a unit of work.
//
// Hot-path kernels:
//  * Montgomery's-trick batch inversion turns the n barycentric-weight
//    inversions into one inv() plus ~3(n-1) multiplications.
//  * The share x-coordinates are almost always the canonical grid
//    1..n (sharing/shamir.h's eval_point), so the master polynomial
//    N(x) = prod (x - x_j) and the inverted weights
//    w_i = prod_{j != i} (x_i - x_j)^{-1} are computed once per
//    (field, grid size) and cached thread-locally — every later
//    VSS/Bit-Gen/expose interpolation on that grid reuses them. Inputs
//    off the grid (e.g. Berlekamp-Welch over a share subset under
//    faults) fall back to the generic path.

#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "gf/field_concept.h"
#include "poly/polynomial.h"

namespace dprbg {

template <FiniteField F>
struct PointValue {
  F x;
  F y;
};

namespace interp_detail {

// Montgomery's trick: replaces vals[i] with vals[i]^{-1} for all i using
// one inv() and 3(n-1) multiplications (prefix products, one inversion
// of the total, then a backward sweep). All entries must be nonzero.
template <FiniteField F>
void batch_invert(std::vector<F>& vals) {
  const std::size_t n = vals.size();
  if (n == 0) return;
  std::vector<F> prefix(n);
  F acc = F::one();
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i] = acc;
    acc = acc * vals[i];
  }
  F inv_acc = acc.inv();
  for (std::size_t i = n; i-- > 0;) {
    const F v = vals[i];
    vals[i] = inv_acc * prefix[i];
    inv_acc = inv_acc * v;
  }
}

// Cached barycentric data for the canonical grid x = 1..n: the master
// polynomial's coefficients and the pre-inverted weights.
template <FiniteField F>
struct GridData {
  std::vector<F> master;   // n+1 coefficients of prod_j (x - x_j)
  std::vector<F> weights;  // w_i = prod_{j != i} (x_i - x_j)^{-1}
};

// Builds N(x) = prod_j (x - x_j) in place (master must hold n+1 zeros on
// entry; on exit master[k] is the coefficient of x^k).
template <FiniteField F>
void build_master(std::span<const PointValue<F>> points,
                  std::vector<F>& master) {
  const std::size_t n = points.size();
  master[0] = F::one();
  std::size_t deg = 0;
  for (std::size_t j = 0; j < n; ++j) {
    // master *= (x - x_j)
    for (std::size_t i = deg + 1; i-- > 0;) {
      F carry = master[i];
      master[i] = (i > 0 ? master[i - 1] : F::zero()) - carry * points[j].x;
    }
    master[deg + 1] = F::one();
    ++deg;
  }
}

// Denominators d_i = prod_{j != i} (x_i - x_j), inverted in one batch.
template <FiniteField F>
std::vector<F> inverted_weights(std::span<const PointValue<F>> points) {
  const std::size_t n = points.size();
  std::vector<F> w(n, F::one());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) w[i] = w[i] * (points[i].x - points[j].x);
    }
  }
  batch_invert(w);
  return w;
}

// The cached grid data when `points`' x-coordinates are exactly
// 1, 2, ..., n (the Shamir evaluation grid); nullptr otherwise. The
// cache is thread-local (player threads are born per run, so a run's
// op counts stay deterministic) and the one-time build cost is charged
// to the first interpolation that needs the size.
template <FiniteField F>
const GridData<F>* grid_lookup(std::span<const PointValue<F>> points) {
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!(points[i].x == F::from_uint(i + 1))) return nullptr;
  }
  thread_local std::map<std::size_t, GridData<F>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    GridData<F> data;
    data.master.assign(n + 1, F::zero());
    build_master(points, data.master);
    data.weights = inverted_weights(points);
    it = cache.emplace(n, std::move(data)).first;
  }
  return &it->second;
}

}  // namespace interp_detail

// The unique polynomial of degree < points.size() through the given points
// (x-coordinates must be distinct).
template <FiniteField F>
Polynomial<F> lagrange_interpolate(std::span<const PointValue<F>> points) {
  count_interpolation();
  const std::size_t n = points.size();
  DPRBG_CHECK(n > 0);
  // Sum of y_i * prod_{j != i} (x - x_j) / (x_i - x_j), built with O(n^2)
  // coefficient arithmetic via the "master" product trick:
  //   N(x) = prod_j (x - x_j);  L_i(x) = N(x) / (x - x_i) * w_i,
  // where w_i = prod_{j != i} (x_i - x_j)^{-1} (barycentric weights).
  const interp_detail::GridData<F>* grid =
      interp_detail::grid_lookup<F>(points);
  std::vector<F> master_local;
  std::vector<F> weights_local;
  const std::vector<F>* master = nullptr;
  const std::vector<F>* weights = nullptr;
  if (grid != nullptr) {
    master = &grid->master;
    weights = &grid->weights;
  } else {
    master_local.assign(n + 1, F::zero());
    interp_detail::build_master(points, master_local);
    weights_local = interp_detail::inverted_weights(points);
    master = &master_local;
    weights = &weights_local;
  }
  std::vector<F> result(n, F::zero());
  std::vector<F> quotient(n, F::zero());
  for (std::size_t i = 0; i < n; ++i) {
    const F scale = points[i].y * (*weights)[i];
    // Synthetic division: quotient = master / (x - x_i).
    F carry = (*master)[n];
    for (std::size_t k = n; k-- > 0;) {
      quotient[k] = carry;
      carry = (*master)[k] + carry * points[i].x;
    }
    // carry is now the remainder master(x_i) = 0 (distinct x's).
    for (std::size_t k = 0; k < n; ++k) {
      result[k] = result[k] + scale * quotient[k];
    }
  }
  return Polynomial<F>{std::move(result)};
}

// Evaluate the interpolating polynomial at `target` without materializing
// it: sum of y_i * prod_{j != i} (target - x_j)/(x_i - x_j). The
// numerators come from prefix/suffix products (O(n) multiplications, no
// divisions); the denominators from the cached grid weights or one batch
// inversion.
template <FiniteField F>
F interpolate_at(std::span<const PointValue<F>> points, F target) {
  count_interpolation();
  const std::size_t n = points.size();
  DPRBG_CHECK(n > 0);
  const interp_detail::GridData<F>* grid =
      interp_detail::grid_lookup<F>(points);
  std::vector<F> weights_local;
  const std::vector<F>* weights = nullptr;
  if (grid != nullptr) {
    weights = &grid->weights;
  } else {
    weights_local = interp_detail::inverted_weights(points);
    weights = &weights_local;
  }
  // num_i = prod_{j != i} (target - x_j) = prefix_i * suffix_i. Handles
  // target == x_j too: every other numerator contains the zero factor.
  std::vector<F> num(n, F::one());
  F acc = F::one();
  for (std::size_t i = 0; i < n; ++i) {
    num[i] = acc;
    acc = acc * (target - points[i].x);
  }
  acc = F::one();
  for (std::size_t i = n; i-- > 0;) {
    num[i] = num[i] * acc;
    acc = acc * (target - points[i].x);
  }
  F sum = F::zero();
  for (std::size_t i = 0; i < n; ++i) {
    sum = sum + points[i].y * num[i] * (*weights)[i];
  }
  return sum;
}

// Checks whether the given points lie on a single polynomial of degree at
// most `max_degree` (the degree test of Problem 1): interpolate through
// the first max_degree+1 points and verify the rest.
template <FiniteField F>
bool is_degree_at_most(std::span<const PointValue<F>> points,
                       unsigned max_degree) {
  if (points.size() <= max_degree + 1) return true;
  const auto head = points.first(max_degree + 1);
  const Polynomial<F> f = lagrange_interpolate<F>(head);
  for (std::size_t i = max_degree + 1; i < points.size(); ++i) {
    if (f(points[i].x) != points[i].y) return false;
  }
  return true;
}

}  // namespace dprbg
