// Berlekamp-Welch decoding [5] (US Patent 4,633,470), the error-correcting
// interpolation used by Bit-Gen (Fig. 4, step 5) and Coin-Expose (Fig. 6,
// step 2): given points of which at most `max_errors` are corrupted,
// recover the unique polynomial of degree <= max_degree through the rest.
//
// Method: find a nonzero "error locator" E(x) of degree <= e and a
// polynomial Q(x) of degree <= e + d such that for every received point
// (x_i, y_i):  y_i * E(x_i) = Q(x_i). Any solution of this linear system
// satisfies Q = f * E for the true codeword polynomial f, so f = Q / E.
// Decoding succeeds whenever points.size() >= d + 2e + 1.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/metrics.h"
#include "gf/field_concept.h"
#include "poly/interpolate.h"
#include "poly/linalg.h"
#include "poly/polynomial.h"

namespace dprbg {

// Decodes a polynomial of degree <= max_degree from points with at most
// max_errors corruptions. Returns nullopt when no such polynomial exists
// (e.g. more corruption than the distance allows, or a cheating dealer's
// over-degree sharing). Counted as one interpolation in the metrics,
// matching the paper's treatment of Berlekamp-Welch decoding as "a single
// polynomial interpolation".
template <FiniteField F>
std::optional<Polynomial<F>> berlekamp_welch(
    std::span<const PointValue<F>> points, unsigned max_degree,
    unsigned max_errors) {
  const std::size_t n = points.size();
  if (n < static_cast<std::size_t>(max_degree) + 1) return std::nullopt;

  // Fast path: no errors permitted, plain interpolation + degree check.
  if (max_errors == 0) {
    if (!is_degree_at_most<F>(points, max_degree)) return std::nullopt;
    const auto head = points.first(
        std::min<std::size_t>(n, static_cast<std::size_t>(max_degree) + 1));
    return lagrange_interpolate<F>(head);
  }

  count_interpolation();
  // Try decreasing error counts: the key equation with e' < actual number
  // of errors is unsolvable, while e' > actual may produce spurious
  // solutions with E not dividing Q; scanning e from max down and
  // verifying the division handles both.
  for (unsigned e = max_errors;; --e) {
    // Unknowns: E_0..E_{e-1} (E is monic of degree e) and Q_0..Q_{e+d}.
    const std::size_t num_e = e;
    const std::size_t num_q = e + max_degree + 1;
    Matrix<F> a(n, num_e + num_q);
    std::vector<F> b(n, F::zero());
    for (std::size_t i = 0; i < n; ++i) {
      const F x = points[i].x;
      const F y = points[i].y;
      // y * (x^e + sum_j E_j x^j) - sum_j Q_j x^j = 0
      F xp = F::one();
      for (std::size_t j = 0; j < num_e; ++j) {
        a.at(i, j) = y * xp;
        xp = xp * x;
      }
      b[i] = F::zero() - y * xp;  // -(y * x^e)
      xp = F::one();
      for (std::size_t j = 0; j < num_q; ++j) {
        a.at(i, num_e + j) = F::zero() - xp;
        xp = xp * x;
      }
    }
    if (auto sol = solve_linear<F>(std::move(a), std::move(b))) {
      std::vector<F> e_coeffs(sol->begin(), sol->begin() + num_e);
      e_coeffs.push_back(F::one());  // monic
      std::vector<F> q_coeffs(sol->begin() + num_e, sol->end());
      const Polynomial<F> ep{std::move(e_coeffs)};
      const Polynomial<F> qp{std::move(q_coeffs)};
      auto [quot, rem] = qp.divmod(ep);
      if (rem.is_zero() && quot.degree() <= static_cast<int>(max_degree)) {
        // Confirm the decoded polynomial disagrees with at most
        // max_errors points (guards against spurious solutions).
        unsigned disagreements = 0;
        for (const auto& pv : points) {
          if (quot(pv.x) != pv.y) ++disagreements;
        }
        if (disagreements <= max_errors) return quot;
      }
    }
    if (e == 0) break;
  }
  return std::nullopt;
}

}  // namespace dprbg
