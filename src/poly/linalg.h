// Dense linear algebra over a FiniteField: Gaussian elimination with
// partial pivoting (any nonzero pivot works in a field). Only needed by
// the Berlekamp-Welch decoder, whose systems have O(n) unknowns.

#pragma once

#include <optional>
#include <vector>

#include "common/check.h"
#include "gf/field_concept.h"

namespace dprbg {

// Row-major dense matrix.
template <FiniteField F>
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, F::zero()) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  F& at(std::size_t r, std::size_t c) {
    DPRBG_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const F& at(std::size_t r, std::size_t c) const {
    DPRBG_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_, cols_;
  std::vector<F> data_;
};

// Solves A x = b. Returns nullopt when the system is inconsistent; when it
// is underdetermined, free variables are set to zero (any solution of the
// Berlekamp-Welch key equation yields the same decoded polynomial, so a
// particular solution suffices).
template <FiniteField F>
std::optional<std::vector<F>> solve_linear(Matrix<F> a, std::vector<F> b) {
  DPRBG_CHECK(a.rows() == b.size());
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  std::vector<std::size_t> pivot_col_of_row;
  std::size_t row = 0;
  for (std::size_t col = 0; col < n && row < m; ++col) {
    // Find a pivot in this column.
    std::size_t piv = row;
    while (piv < m && a.at(piv, col).is_zero()) ++piv;
    if (piv == m) continue;
    if (piv != row) {
      for (std::size_t c = col; c < n; ++c) std::swap(a.at(row, c), a.at(piv, c));
      std::swap(b[row], b[piv]);
    }
    const F inv = a.at(row, col).inv();
    for (std::size_t c = col; c < n; ++c) a.at(row, c) = a.at(row, c) * inv;
    b[row] = b[row] * inv;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == row || a.at(r, col).is_zero()) continue;
      const F factor = a.at(r, col);
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) = a.at(r, c) - factor * a.at(row, c);
      }
      b[r] = b[r] - factor * b[row];
    }
    pivot_col_of_row.push_back(col);
    ++row;
  }
  // Inconsistency: a zero row with nonzero rhs.
  for (std::size_t r = row; r < m; ++r) {
    if (!b[r].is_zero()) return std::nullopt;
  }
  std::vector<F> x(n, F::zero());
  for (std::size_t r = 0; r < pivot_col_of_row.size(); ++r) {
    x[pivot_col_of_row[r]] = b[r];
  }
  return x;
}

}  // namespace dprbg
