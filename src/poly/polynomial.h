// Dense univariate polynomials over a FiniteField.
//
// Coefficients are stored low-degree-first with no trailing zeros, so the
// zero polynomial is the empty vector and degree() of a nonzero polynomial
// is coeffs().size() - 1. The protocols only ever need degree-t secret
// polynomials (t < n <= 64), so all operations are simple dense loops.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "gf/field_concept.h"
#include "rng/chacha.h"

namespace dprbg {

template <FiniteField F>
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<F> coeffs) : coeffs_(std::move(coeffs)) {
    trim();
  }
  static Polynomial constant(F c) { return Polynomial{{c}}; }

  // Uniformly random polynomial of degree <= deg (exactly `deg + 1` random
  // coefficients). This is the dealer's sharing polynomial: the secret is
  // the constant term f(0).
  static Polynomial random(unsigned deg, Chacha& rng) {
    std::vector<F> c(deg + 1);
    for (auto& x : c) x = random_element<F>(rng);
    return Polynomial{std::move(c)};
  }
  // Random polynomial of degree <= deg with a prescribed secret f(0).
  static Polynomial random_with_secret(F secret, unsigned deg, Chacha& rng) {
    Polynomial p = random(deg, rng);
    if (p.coeffs_.empty()) p.coeffs_.resize(1);
    p.coeffs_[0] = secret;
    p.trim();
    return p;
  }

  [[nodiscard]] bool is_zero() const { return coeffs_.empty(); }
  // Degree of the zero polynomial is reported as -1.
  [[nodiscard]] int degree() const {
    return static_cast<int>(coeffs_.size()) - 1;
  }
  [[nodiscard]] const std::vector<F>& coeffs() const { return coeffs_; }
  [[nodiscard]] F coeff(std::size_t i) const {
    if (i >= coeffs_.size()) return F::zero();
    return coeffs_[i];
  }

  // Horner evaluation.
  [[nodiscard]] F operator()(F x) const {
    F acc = F::zero();
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
      acc = acc * x + coeffs_[i];
    }
    return acc;
  }

  friend Polynomial operator+(const Polynomial& a, const Polynomial& b) {
    std::vector<F> c(std::max(a.coeffs_.size(), b.coeffs_.size()),
                     F::zero());
    for (std::size_t i = 0; i < c.size(); ++i) {
      c[i] = a.coeff(i) + b.coeff(i);
    }
    return Polynomial{std::move(c)};
  }
  friend Polynomial operator-(const Polynomial& a, const Polynomial& b) {
    std::vector<F> c(std::max(a.coeffs_.size(), b.coeffs_.size()),
                     F::zero());
    for (std::size_t i = 0; i < c.size(); ++i) {
      c[i] = a.coeff(i) - b.coeff(i);
    }
    return Polynomial{std::move(c)};
  }
  friend Polynomial operator*(const Polynomial& a, const Polynomial& b) {
    if (a.is_zero() || b.is_zero()) return {};
    std::vector<F> c(a.coeffs_.size() + b.coeffs_.size() - 1, F::zero());
    for (std::size_t i = 0; i < a.coeffs_.size(); ++i) {
      for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
        c[i + j] = c[i + j] + a.coeffs_[i] * b.coeffs_[j];
      }
    }
    return Polynomial{std::move(c)};
  }
  friend Polynomial operator*(F s, const Polynomial& p) {
    std::vector<F> c(p.coeffs_);
    for (auto& x : c) x = s * x;
    return Polynomial{std::move(c)};
  }

  // Quotient and remainder of *this by a nonzero divisor.
  struct DivMod {
    Polynomial quotient;
    Polynomial remainder;
  };
  [[nodiscard]] DivMod divmod(const Polynomial& d) const {
    DPRBG_CHECK(!d.is_zero());
    std::vector<F> rem = coeffs_;
    std::vector<F> quot(
        coeffs_.size() >= d.coeffs_.size()
            ? coeffs_.size() - d.coeffs_.size() + 1
            : 0,
        F::zero());
    const F lead_inv = d.coeffs_.back().inv();
    for (std::size_t i = rem.size(); i-- > 0;) {
      if (i + 1 < d.coeffs_.size()) break;
      const F factor = rem[i] * lead_inv;
      if (factor.is_zero()) continue;
      const std::size_t shift = i + 1 - d.coeffs_.size();
      quot[shift] = factor;
      for (std::size_t j = 0; j < d.coeffs_.size(); ++j) {
        rem[shift + j] = rem[shift + j] - factor * d.coeffs_[j];
      }
    }
    return {Polynomial{std::move(quot)}, Polynomial{std::move(rem)}};
  }

  friend bool operator==(const Polynomial& a, const Polynomial& b) {
    return a.coeffs_ == b.coeffs_;
  }

 private:
  void trim() {
    while (!coeffs_.empty() && coeffs_.back().is_zero()) coeffs_.pop_back();
  }

  std::vector<F> coeffs_;
};

// Evaluate a whole batch of polynomials at one point in a blocked SoA
// pass: out[j] = polys[j](x). The dealer's distribution step evaluates
// all M+1 sharing polynomials per recipient; walking them in a register
// tile keeps the accumulators hot instead of re-running M independent
// Horner loops. Each polynomial's own Horner sequence (acc = acc*x + c_i
// from the top coefficient down) is replayed verbatim, so outputs and
// add/mul counts are identical to calling polys[j](x) in a loop — the
// trace budgets can't tell the difference (tests/block_kernels_test.cpp
// asserts both).
template <FiniteField F>
void eval_polys_block(std::span<const Polynomial<F>> polys, F x,
                      std::span<F> out) {
  DPRBG_CHECK(out.size() == polys.size());
  constexpr std::size_t kTile = 32;
  F acc[kTile];
  for (std::size_t p0 = 0; p0 < polys.size(); p0 += kTile) {
    const std::size_t tile = std::min(kTile, polys.size() - p0);
    std::size_t max_len = 0;
    for (std::size_t t = 0; t < tile; ++t) {
      acc[t] = F::zero();
      max_len = std::max(max_len, polys[p0 + t].coeffs().size());
    }
    // Polynomials are trimmed, so lengths can be ragged within a tile;
    // each engages once the column index enters its coefficient range
    // (a zero accumulator times x plus the top coefficient is exactly
    // where its own Horner loop starts... except the ops before that
    // point must not run at all to keep counts identical, hence the
    // length guard).
    for (std::size_t j = max_len; j-- > 0;) {
      for (std::size_t t = 0; t < tile; ++t) {
        const auto& c = polys[p0 + t].coeffs();
        if (j < c.size()) acc[t] = acc[t] * x + c[j];
      }
    }
    for (std::size_t t = 0; t < tile; ++t) out[p0 + t] = acc[t];
  }
}

}  // namespace dprbg
