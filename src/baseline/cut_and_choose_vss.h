// Baseline: cut-and-choose VSS in the style of Chaum-Crepeau-Damgard [9]
// (Section 3.1: "The method presented in [9] is a cut-and-choose
// protocol. Roughly speaking, the dealer ... is asked to share k
// additional polynomials g_1..g_k. For each j the players decide whether
// to reconstruct g_j(x) or f(x) + g_j(x), and check if the reconstructed
// polynomial is of degree <= t. Thus, in this approach k polynomial
// interpolations are computed in order to achieve a probability of error
// less than 1/2^k.")
//
// This is the comparison point of experiment E3: against our VSS (Fig. 2)
// which achieves error 1/p = 2^-k with ONE degree-check interpolation,
// the cut-and-choose baseline pays kappa interpolations for error
// 2^-kappa.
//
// The challenge bits are the bits of one exposed k-ary coin, so both
// protocols consume exactly one sealed coin and the measured difference
// is purely the per-instance verification work.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "gf/field_concept.h"
#include "gf/field_io.h"
#include "net/endpoint.h"
#include "net/msg.h"
#include "poly/berlekamp_welch.h"
#include "poly/polynomial.h"
#include "sharing/shamir.h"
#include "coin/coin_expose.h"
#include "coin/sealed_coin.h"

namespace dprbg {

template <FiniteField F>
struct CutAndChooseOutcome {
  bool accepted = false;
  F share = F::zero();  // alpha_i = f(i)
};

// kappa <= F::kBits challenge rounds from one coin. Dealer passes f;
// blinding polynomials are generated internally from its local
// randomness. 3 rounds total (distribute, expose, reveal).
template <FiniteField F, NetEndpoint Io>
CutAndChooseOutcome<F> cut_and_choose_vss(
    Io& io, int dealer, unsigned t, unsigned kappa,
    const std::optional<Polynomial<F>>& dealer_poly,
    const SealedCoin<F>& challenge_coin, unsigned instance = 0) {
  DPRBG_CHECK(kappa >= 1 && kappa <= F::kBits);
  const std::uint32_t share_tag =
      make_tag(ProtoId::kBaselineCoin, instance, 0);
  const std::uint32_t reveal_tag =
      make_tag(ProtoId::kBaselineCoin, instance, 2);
  const int n = io.n();

  // Round 1: dealer distributes shares of f and of g_1..g_kappa.
  if (io.id() == dealer) {
    DPRBG_CHECK(dealer_poly.has_value());
    std::vector<Polynomial<F>> blinds;
    for (unsigned j = 0; j < kappa; ++j) {
      blinds.push_back(Polynomial<F>::random(t, io.rng()));
    }
    for (int i = 0; i < n; ++i) {
      ByteWriter w;
      write_elem(w, (*dealer_poly)(eval_point<F>(i)));
      for (const auto& g : blinds) write_elem(w, g(eval_point<F>(i)));
      io.send(i, share_tag, std::move(w).take());
    }
  }

  // Round 2: expose the coin; its bits are the kappa cut-and-choose
  // challenges.
  const std::optional<F> coin_val =
      coin_expose<F>(io, challenge_coin, instance);
  F alpha = F::zero();
  std::vector<F> gammas(kappa, F::zero());
  bool have_shares = false;
  if (const Msg* mine = io.inbox().from(dealer, share_tag)) {
    // Exactly alpha + kappa gammas, size-validated before reading.
    if (const auto row = decode_elem_row<F>(mine->body, 1 + kappa)) {
      alpha = (*row)[0];
      for (unsigned j = 0; j < kappa; ++j) gammas[j] = (*row)[1 + j];
      have_shares = true;
    }
  }
  if (!coin_val.has_value()) {
    io.sync();
    return {};
  }
  const std::uint64_t challenge_bits = coin_val->to_uint();

  // Round 3: for each j reveal g_j(i) or f(i) + g_j(i) per challenge bit.
  {
    ByteWriter w;
    for (unsigned j = 0; j < kappa; ++j) {
      const bool add_f = ((challenge_bits >> j) & 1u) != 0;
      write_elem(w, have_shares
                        ? (add_f ? alpha + gammas[j] : gammas[j])
                        : F::zero());
    }
    io.send_all(reveal_tag, w.data());
  }
  const Inbox& in = io.sync();

  // kappa degree checks = kappa interpolations (the baseline's cost).
  std::vector<std::vector<PointValue<F>>> points(kappa);
  for (const Msg* m : in.with_tag(reveal_tag)) {
    const auto values = decode_elem_row<F>(m->body, kappa);
    if (!values) continue;
    for (unsigned j = 0; j < kappa; ++j) {
      points[j].push_back({eval_point<F>(m->from), (*values)[j]});
    }
  }
  CutAndChooseOutcome<F> out;
  out.share = alpha;
  for (unsigned j = 0; j < kappa; ++j) {
    if (points[j].size() < static_cast<std::size_t>(n - io.t())) return out;
    const unsigned max_errors = std::min(
        static_cast<unsigned>(io.t()),
        static_cast<unsigned>((points[j].size() - t - 1) / 2));
    const auto decoded = berlekamp_welch<F>(points[j], t, max_errors);
    if (!decoded) return out;
    unsigned agreements = 0;
    for (const auto& pv : points[j]) {
      if ((*decoded)(pv.x) == pv.y) ++agreements;
    }
    if (agreements < static_cast<unsigned>(n - io.t())) return out;
  }
  out.accepted = true;
  return out;
}

}  // namespace dprbg
