// Analytic cost models for the literature comparison of Section 1.4
// (experiment E10).
//
// The paper compares its D-PRBG against prior shared-coin protocols by
// asymptotic cost. Feldman-Micali [14] and Beaver-So [2] are large
// protocols whose full mechanics are out of scope for a cost comparison
// (and Beaver-So additionally relies on the intractability of factoring,
// which the paper's own protocol deliberately avoids); following the
// paper itself, they enter the E10 table through the cost expressions it
// quotes:
//
//   [14] Feldman-Micali: "resilient against a third of the players, the
//        computations comprise O(n^4 log^2 n) steps per player, the
//        communication is O(n^5) messages, and there exists a
//        non-negligible probability that not all players will see the
//        coin."
//   [2]  Beaver-So: "only needs a majority of good players, but relies on
//        complexity assumptions ... the generation of bits is limited to
//        a pre-set size."
//   [11] Dwork-Shmoys-Stockmeyer: "tolerates n/log n faults ... not all
//        the players see the coin."
//
// These are per-coin, from-scratch figures (constants set to 1; the
// comparison is about asymptotic shape, which is all the paper claims).

#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace dprbg {

struct CoinCostModel {
  std::string name;
  // Basic operations (k-bit additions) per player per coin.
  double ops_per_coin;
  // Messages network-wide per coin.
  double messages_per_coin;
  // Fault tolerance expressed as max t for a given n.
  double max_t;
  bool all_players_see_coin;
  bool needs_complexity_assumptions;
  std::string notes;
};

inline double log2d(double x) { return std::log2(x); }

// Feldman-Micali [14] per-player/per-coin model.
inline CoinCostModel feldman_micali_model(int n, unsigned /*k*/) {
  const double nd = n;
  return {
      "Feldman-Micali [14]",
      nd * nd * nd * nd * log2d(nd) * log2d(nd),  // O(n^4 log^2 n)
      nd * nd * nd * nd * nd,                     // O(n^5)
      (nd - 1) / 3,
      /*all_players_see_coin=*/false,
      /*needs_complexity_assumptions=*/false,
      "non-negligible probability that not all players see the coin",
  };
}

// Beaver-So [2]: majority resilience, factoring assumption. The paper
// gives no closed-form op count; we charge one modular exponentiation
// (~k^3 bit ops ~ k^2 k-bit additions) per player per bit as the
// standard cost of number-theoretic generators, with O(n^2) messages.
inline CoinCostModel beaver_so_model(int n, unsigned k) {
  const double nd = n, kd = k;
  return {
      "Beaver-So [2]",
      kd * kd,
      nd * nd,
      (nd - 1) / 2,
      /*all_players_see_coin=*/true,
      /*needs_complexity_assumptions=*/true,
      "intractability of factoring; bits limited to a pre-set size",
  };
}

// Dwork-Shmoys-Stockmeyer [11].
inline CoinCostModel dss_model(int n, unsigned /*k*/) {
  const double nd = n;
  return {
      "Dwork-Shmoys-Stockmeyer [11]",
      nd * nd,  // constant expected time, poly work; shape only
      nd * nd,
      nd / log2d(nd),
      /*all_players_see_coin=*/false,
      /*needs_complexity_assumptions=*/false,
      "tolerates n/log n faults; not all players see the coin",
  };
}

// This paper's D-PRBG, amortized (Corollary 3): O(n^2 log k) ops... per
// k-ary coin across all players; per player it is O(n log k); messages
// amortized n + O(n^4 / M) bits -> n messages for large M.
inline CoinCostModel dprbg_model(int n, unsigned k, unsigned m) {
  const double nd = n, kd = k, md = m;
  return {
      "D-PRBG (this paper)",
      nd * log2d(kd),
      nd + nd * nd * nd * nd / md / kd,
      (nd - 1) / 6,
      /*all_players_see_coin=*/true,
      /*needs_complexity_assumptions=*/false,
      "amortized over M coins per Coin-Gen run; unanimity error M n 2^-k",
  };
}

inline std::vector<CoinCostModel> all_models(int n, unsigned k, unsigned m) {
  return {feldman_micali_model(n, k), beaver_so_model(n, k), dss_model(n, k),
          dprbg_model(n, k, m)};
}

}  // namespace dprbg
