// Baseline: "from-scratch" shared-coin generation.
//
// Section 4: "A straightforward way to generate a coin would be to
// interpolate a number of polynomials which at least equals the number of
// the faults to be tolerated. Coins generated this way, however, would
// still be highly expensive. In this section we show how to achieve this
// with just one polynomial interpolation."
//
// This file implements that straightforward way, as the cost baseline of
// experiment E10: every player deals a fresh degree-t sharing of a random
// secret, all sharings are immediately opened, each receiver decodes
// every dealer's polynomial separately (n Berlekamp-Welch interpolations
// per coin!), and the coin is the sum of the secrets of the dealers whose
// opening decoded cleanly with >= n - t support.
//
// Cost per coin: n interpolations and ~2n^2 messages of size k — against
// the D-PRBG's amortized 1 interpolation and ~n messages (Corollary 3).
//
// Unanimity caveat (part of why this baseline is inferior, not a bug): a
// Byzantine dealer that equivocates its opening can make honest players
// disagree on whether its decode "succeeded", splitting the coin — the
// exact problem Coin-Gen's clique/grade-cast/BA machinery exists to
// solve. The benchmark runs it fault-free to measure its best-case cost.

#pragma once

#include <optional>
#include <vector>

#include "gf/field_concept.h"
#include "gf/field_io.h"
#include "net/endpoint.h"
#include "net/msg.h"
#include "poly/berlekamp_welch.h"
#include "poly/polynomial.h"
#include "sharing/shamir.h"

namespace dprbg {

// Generates one shared coin from scratch. 2 rounds: deal, open.
template <FiniteField F, NetEndpoint Io>
std::optional<F> naive_coin(Io& io, unsigned t, unsigned instance = 0) {
  const std::uint32_t deal_tag =
      make_tag(ProtoId::kBaselineCoin, instance, 4);
  const std::uint32_t open_tag =
      make_tag(ProtoId::kBaselineCoin, instance, 5);
  const int n = io.n();

  // Round 1: every player deals a fresh degree-t sharing.
  const auto my_poly = Polynomial<F>::random(t, io.rng());
  for (int i = 0; i < n; ++i) {
    ByteWriter w;
    write_elem(w, my_poly(eval_point<F>(i)));
    io.send(i, deal_tag, std::move(w).take());
  }
  io.sync();
  std::vector<std::optional<F>> my_shares(n);
  for (int dealer = 0; dealer < n; ++dealer) {
    if (const Msg* m = io.inbox().from(dealer, deal_tag)) {
      if (const auto share = decode_elem_row<F>(m->body, 1)) {
        my_shares[dealer] = (*share)[0];
      }
    }
  }

  // Round 2: open everything — one batched message with my share of every
  // dealer's polynomial.
  {
    ByteWriter w;
    for (int dealer = 0; dealer < n; ++dealer) {
      w.u8(my_shares[dealer].has_value() ? 1 : 0);
      write_elem(w, my_shares[dealer].value_or(F::zero()));
    }
    io.send_all(open_tag, w.data());
  }
  const Inbox& in = io.sync();

  // n separate decodes: the cost the paper eliminates.
  std::vector<std::vector<PointValue<F>>> points(n);
  for (const Msg* m : in.with_tag(open_tag)) {
    // Exact-size batch validation before parsing; a malformed batch is
    // rejected wholesale rather than contributing a valid-looking prefix.
    if (m->body.size() !=
        static_cast<std::size_t>(n) * (1 + F::kBytes)) {
      continue;
    }
    ByteReader rd(m->body);
    for (int dealer = 0; dealer < n; ++dealer) {
      const bool present = rd.u8() != 0;
      const F share = read_elem<F>(rd);
      if (present) {
        points[dealer].push_back({eval_point<F>(m->from), share});
      }
    }
  }
  F coin = F::zero();
  bool any = false;
  for (int dealer = 0; dealer < n; ++dealer) {
    if (points[dealer].size() < static_cast<std::size_t>(n - io.t())) {
      continue;
    }
    const unsigned max_errors = std::min(
        static_cast<unsigned>(io.t()),
        static_cast<unsigned>((points[dealer].size() - t - 1) / 2));
    const auto decoded = berlekamp_welch<F>(points[dealer], t, max_errors);
    if (!decoded) continue;
    unsigned agreements = 0;
    for (const auto& pv : points[dealer]) {
      if ((*decoded)(pv.x) == pv.y) ++agreements;
    }
    if (agreements < static_cast<unsigned>(n - io.t())) continue;
    coin = coin + (*decoded)(F::zero());
    any = true;
  }
  if (!any) return std::nullopt;
  return coin;
}

}  // namespace dprbg
