#include "net/misbehavior.h"

#include <string>

#include "common/check.h"

namespace dprbg {

const char* to_string(PeerStanding s) {
  switch (s) {
    case PeerStanding::kHealthy: return "healthy";
    case PeerStanding::kSuspect: return "suspect";
    case PeerStanding::kBanned: return "banned";
  }
  return "?";
}

const char* to_string(MisbehaviorSignal s) {
  switch (s) {
    case MisbehaviorSignal::kDecodeFailure: return "decode_failure";
    case MisbehaviorSignal::kStaleFlood: return "stale_flood";
    case MisbehaviorSignal::kForeignTraffic: return "foreign_traffic";
    case MisbehaviorSignal::kSlowEnvelope: return "slow_envelope";
  }
  return "?";
}

MisbehaviorManager::MisbehaviorManager(int n, MisbehaviorPolicy policy)
    : n_(n), policy_(policy) {
  DPRBG_CHECK(n >= 1);
  DPRBG_CHECK(policy_.suspect_exit <= policy_.suspect_enter);
  DPRBG_CHECK(policy_.suspect_enter <= policy_.ban_enter);
  DPRBG_CHECK(policy_.ban_exit <= policy_.ban_enter);
  peers_.resize(static_cast<std::size_t>(n));
  banned_flags_ =
      std::make_unique<std::atomic<std::uint8_t>[]>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    banned_flags_[static_cast<std::size_t>(i)].store(
        0, std::memory_order_relaxed);
  }
}

void MisbehaviorManager::publish_standing(int peer, PeerState& p) {
  if (!telemetry_enabled()) return;
  if (p.tel_standing == nullptr) {
    p.tel_standing = &metrics().gauge("net_peer_standing",
                                      "player=" + std::to_string(peer));
  }
  p.tel_standing->set(static_cast<std::int64_t>(p.standing));
}

void MisbehaviorManager::apply_transitions(int peer, PeerState& p,
                                           bool rising) {
  const PeerStanding before = p.standing;
  if (rising) {
    if (p.standing != PeerStanding::kBanned &&
        p.score >= policy_.ban_enter) {
      p.standing = PeerStanding::kBanned;
      ++p.bans;
      ++totals_.bans;
      banned_flags_[static_cast<std::size_t>(peer)].store(
          1, std::memory_order_relaxed);
      if (telemetry_enabled()) {
        if (tel_bans_ == nullptr) {
          tel_bans_ = &metrics().counter("net_peer_bans_total");
        }
        tel_bans_->add(1);
      }
    } else if (p.standing == PeerStanding::kHealthy &&
               p.score >= policy_.suspect_enter) {
      p.standing = PeerStanding::kSuspect;
    }
  } else {
    if (p.standing == PeerStanding::kBanned && !policy_.permanent_ban &&
        p.score < policy_.ban_exit) {
      p.standing = PeerStanding::kSuspect;
      ++p.unbans;
      ++totals_.unbans;
      banned_flags_[static_cast<std::size_t>(peer)].store(
          0, std::memory_order_relaxed);
      if (telemetry_enabled()) {
        if (tel_unbans_ == nullptr) {
          tel_unbans_ = &metrics().counter("net_peer_unbans_total");
        }
        tel_unbans_->add(1);
      }
    }
    if (p.standing == PeerStanding::kSuspect &&
        p.score < policy_.suspect_exit) {
      p.standing = PeerStanding::kHealthy;
    }
  }
  if (p.standing != before) publish_standing(peer, p);
}

void MisbehaviorManager::report(int peer, MisbehaviorSignal sig,
                                std::uint64_t count) {
  if (peer < 0 || peer >= n_ || count == 0) return;
  std::lock_guard lk(mu_);
  PeerState& p = peers_[static_cast<std::size_t>(peer)];
  const auto s = static_cast<std::size_t>(sig);
  p.reports[s] += count;
  totals_.reports += count;
  p.score += policy_.weight(sig) * count;
  if (telemetry_enabled()) {
    if (tel_reports_[s] == nullptr) {
      tel_reports_[s] = &metrics().counter(
          "net_misbehavior_reports_total",
          std::string("signal=") + to_string(sig));
    }
    tel_reports_[s]->add(count);
  }
  apply_transitions(peer, p, /*rising=*/true);
}

void MisbehaviorManager::tick(std::uint64_t ticks) {
  if (ticks == 0 || policy_.decay_per_tick == 0) return;
  std::lock_guard lk(mu_);
  const std::uint64_t decay = policy_.decay_per_tick * ticks;
  for (int i = 0; i < n_; ++i) {
    PeerState& p = peers_[static_cast<std::size_t>(i)];
    p.score = p.score > decay ? p.score - decay : 0;
    apply_transitions(i, p, /*rising=*/false);
  }
}

std::uint64_t MisbehaviorManager::score(int peer) const {
  if (peer < 0 || peer >= n_) return 0;
  std::lock_guard lk(mu_);
  return peers_[static_cast<std::size_t>(peer)].score;
}

PeerStanding MisbehaviorManager::standing(int peer) const {
  if (peer < 0 || peer >= n_) return PeerStanding::kHealthy;
  std::lock_guard lk(mu_);
  return peers_[static_cast<std::size_t>(peer)].standing;
}

void MisbehaviorManager::note_suppressed(int peer, std::uint64_t count) {
  if (peer < 0 || peer >= n_ || count == 0) return;
  std::lock_guard lk(mu_);
  peers_[static_cast<std::size_t>(peer)].suppressed += count;
  totals_.suppressed += count;
}

MisbehaviorManager::PeerSnapshot MisbehaviorManager::peer(int peer) const {
  PeerSnapshot out;
  if (peer < 0 || peer >= n_) return out;
  std::lock_guard lk(mu_);
  const PeerState& p = peers_[static_cast<std::size_t>(peer)];
  out.score = p.score;
  out.standing = p.standing;
  for (std::size_t s = 0; s < kMisbehaviorSignals; ++s) {
    out.reports[s] = p.reports[s];
  }
  out.suppressed = p.suppressed;
  out.bans = p.bans;
  out.unbans = p.unbans;
  return out;
}

MisbehaviorManager::Totals MisbehaviorManager::totals() const {
  std::lock_guard lk(mu_);
  return totals_;
}

}  // namespace dprbg
