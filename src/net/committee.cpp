#include "net/committee.h"

#include <algorithm>

#include "common/check.h"
#include "common/trace.h"

namespace dprbg {

int Endpoint::n() const { return committee_->n(); }
int Endpoint::t() const { return committee_->t(); }
std::uint32_t Endpoint::committee() const { return committee_->id(); }

Endpoint& Endpoint::instance(std::uint32_t batch) {
  if (batch == 0 || batch == local_stream_) return *this;
  return committee_->instance(local_id_, batch);
}

void Endpoint::send(int to, std::uint32_t tag,
                    std::vector<std::uint8_t> body) {
  if (to < 0 || to >= committee_->n()) return;
  io_->send(committee_->global_id(to), tag, std::move(body));
}

void Endpoint::send_all(std::uint32_t tag,
                        const std::vector<std::uint8_t>& body) {
  for (int to = 0; to < committee_->n(); ++to) send(to, tag, body);
}

void Endpoint::note_decode_failure(int from) {
  if (from < 0 || from >= committee_->n()) return;
  io_->note_decode_failure(committee_->global_id(from));
}

const Inbox& Endpoint::sync() {
  io_->sync();
  std::vector<Msg> msgs = io_->take_inbox();
  // Remap sender ids onto committee-local ranks. The domain roster
  // guarantees every sender is a member; global ids are ascending in
  // local order, so the cluster's (from, tag) sort order is preserved.
  for (Msg& m : msgs) {
    const int local = committee_->local_id(m.from);
    DPRBG_CHECK(local >= 0);
    m.from = local;
  }
  inbox_ = Inbox{std::move(msgs)};
  return inbox_;
}

namespace {

std::vector<int> identity_members(int n) {
  std::vector<int> members(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) members[static_cast<std::size_t>(i)] = i;
  return members;
}

}  // namespace

Committee::Committee(Cluster& cluster, std::vector<int> members, Options opts)
    : cluster_(cluster), members_(std::move(members)), opts_(opts) {
  std::sort(members_.begin(), members_.end());
  DPRBG_CHECK(!members_.empty());
  t_ = opts_.t >= 0 ? opts_.t : cluster_.t();
  DPRBG_CHECK(t_ < n());
  local_of_.assign(static_cast<std::size_t>(cluster_.n()), -1);
  for (int i = 0; i < n(); ++i) {
    const int g = members_[static_cast<std::size_t>(i)];
    DPRBG_CHECK(g >= 0 && g < cluster_.n());
    DPRBG_CHECK(local_of_[static_cast<std::size_t>(g)] == -1);  // distinct
    local_of_[static_cast<std::size_t>(g)] = i;
  }
  cluster_.register_stream_domain(opts_.id, opts_.first_stream,
                                  opts_.stream_count, members_);
}

Committee::Committee(Cluster& cluster)
    : Committee(cluster, identity_members(cluster.n()), Options{}) {}

Endpoint& Committee::endpoint(PartyIo& io) {
  const int local = local_id(io.id());
  DPRBG_CHECK(local >= 0);  // only members have endpoints
  return instance(local, 0);
}

int Committee::global_id(int local) const {
  DPRBG_CHECK(local >= 0 && local < n());
  return members_[static_cast<std::size_t>(local)];
}

int Committee::local_id(int global) const {
  if (global < 0 || global >= static_cast<int>(local_of_.size())) return -1;
  return local_of_[static_cast<std::size_t>(global)];
}

std::uint32_t Committee::global_stream(std::uint32_t local) const {
  DPRBG_CHECK(local < opts_.stream_count);
  return opts_.first_stream + local;
}

void Committee::set_fault_injector(FaultPlan local_plan,
                                   std::uint64_t corruption_seed) {
  cluster_.set_domain_fault_injector(
      opts_.id, std::make_shared<FaultInjector>(
                    local_plan.remapped(members_), corruption_seed));
}

const FaultCounters& Committee::faults() const {
  return cluster_.domain_faults(opts_.id);
}

Cluster::DomainLedger Committee::ledger() const {
  return cluster_.domain_ledger(opts_.id);
}

void Committee::set_round_latency_us(int us) {
  cluster_.set_domain_round_latency_us(opts_.id, us);
}

void Committee::begin_drain() {
  RosterState expected = RosterState::kActive;
  if (state_.compare_exchange_strong(expected, RosterState::kDraining,
                                     std::memory_order_acq_rel)) {
    trace_beacon("epoch", opts_.id, "state=draining");
  }
}

void Committee::retire() {
  // Valid from kActive or kDraining; retiring twice is a no-op.
  if (state_.exchange(RosterState::kRetired, std::memory_order_acq_rel) !=
      RosterState::kRetired) {
    trace_beacon("epoch", opts_.id, "state=retired");
  }
}

CommCounters Committee::comm() const {
  std::lock_guard lk(mu_);
  CommCounters total;
  for (const auto& [key, ep] : endpoints_) total += ep->io_->sent();
  return total;
}

Endpoint& Committee::instance(int local_player, std::uint32_t local_stream) {
  DPRBG_CHECK(local_player >= 0 && local_player < n());
  std::lock_guard lk(mu_);
  const auto key = std::make_pair(local_player, local_stream);
  auto it = endpoints_.find(key);
  if (it == endpoints_.end()) {
    PartyIo& io = cluster_.handle(global_id(local_player),
                                  global_stream(local_stream));
    it = endpoints_
             .emplace(key, std::unique_ptr<Endpoint>(new Endpoint(
                               *this, io, local_player, local_stream)))
             .first;
  }
  return *it->second;
}

}  // namespace dprbg
