// A library of standard Byzantine behaviours for tests and experiments.
//
// The model (Section 2) lets faulty players "deviate arbitrarily from the
// protocol, and even collude". Tests exercise that power with a zoo of
// reusable adversary programs; ad-hoc attacks (which need knowledge of a
// specific protocol's tags and rounds) are written inline at the call
// site, but the generic ones below cover the recurring shapes:
//
//   crash            — send nothing, ever (the Cluster's default).
//   sleeper          — behave honestly for a while, then crash. The
//                      end-to-end shape (a Coin-Gen dealer that completes
//                      Bit-Gen honestly and dies before grade-cast) is
//                      exercised by AdversaryLibTest.CoinGenDealerCrashes
//                      MidProtocol.
//   silent           — participate in every barrier but never send
//                      (omission fault; unlike crash it keeps the barrier
//                      count, so it models a live-but-mute peer).
//   noise            — spray random bytes with plausible protocol tags
//                      every round (fuzzes every deserialization path).
//   replayer         — echo back every message it receives, to everyone
//                      (stale/duplicated traffic).
//   spammer          — flood one victim with junk on one tag.
//
// For *link*-level misbehaviour (lost/delayed/duplicated/corrupted
// traffic attributed to a player budget) see net/fault.h — the injector
// composes with any adversary in this zoo.
//
// All of them run for a bounded number of rounds and then return (the
// Cluster's drop semantics keep the honest players running).

#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/cluster.h"
#include "net/msg.h"
#include "rng/chacha.h"

namespace dprbg {

// Crash fault: never sends anything (identical to passing a null
// adversary to Cluster::run; named for explicitness in tables).
inline Cluster::Program crash_adversary() {
  return [](PartyIo&) {};
}

// Runs `honest` but abandons the protocol after `rounds_before_crash`
// syncs. Useful for mid-protocol failure injection. The honest program is
// executed inside a fence that counts rounds; once the budget is spent,
// the player simply stops participating.
//
// Implementation note: we cannot interrupt an arbitrary honest program
// from outside, so the sleeper is expressed as a wrapper the *caller*
// builds from protocol phases. For whole-protocol use, prefer noise or
// crash; sleeper is provided for phase-structured call sites.
using PhaseList = std::vector<std::function<void(PartyIo&)>>;

inline Cluster::Program sleeper_adversary(PhaseList phases,
                                          std::size_t phases_to_run) {
  return [phases = std::move(phases), phases_to_run](PartyIo& io) {
    for (std::size_t p = 0; p < phases.size() && p < phases_to_run; ++p) {
      phases[p](io);
    }
  };
}

// Omission fault: stays in lockstep (keeps arriving at barriers) for
// `rounds` rounds without ever sending, then crashes. Distinct from
// crash_adversary: the cluster still counts this player as active, so it
// exercises the "live but mute" shape rather than the dropped-thread one.
inline Cluster::Program silent_adversary(int rounds) {
  return [rounds](PartyIo& io) {
    for (int round = 0; round < rounds; ++round) io.sync();
  };
}

// Random-byte noise with plausible tags, every round.
inline Cluster::Program noise_adversary(int rounds, int bursts_per_round = 5,
                                        std::size_t max_body = 64) {
  return [=](PartyIo& io) {
    Chacha& rng = io.rng();
    for (int round = 0; round < rounds; ++round) {
      for (int b = 0; b < bursts_per_round; ++b) {
        const auto tag = make_tag(
            static_cast<ProtoId>(1 + rng.uniform(10)),
            static_cast<unsigned>(rng.uniform(4096)),
            static_cast<unsigned>(rng.uniform(8)),
            static_cast<unsigned>(rng.uniform(16)));
        std::vector<std::uint8_t> junk(rng.uniform(max_body));
        rng.fill_bytes(junk);
        io.send(static_cast<int>(rng.uniform(io.n())), tag,
                std::move(junk));
      }
      io.sync();
    }
  };
}

// Replays received messages back to all players, every round. Bounded
// per round: two replayers otherwise feed each other and the traffic
// grows without limit (the simulation would melt long before any honest
// invariant broke).
inline Cluster::Program replay_adversary(int rounds,
                                         std::size_t max_per_round = 16) {
  return [=](PartyIo& io) {
    for (int round = 0; round < rounds; ++round) {
      std::size_t replayed = 0;
      for (const Msg& m : io.inbox().all()) {
        if (replayed++ >= max_per_round) break;
        io.send_all(m.tag, m.body);
      }
      io.sync();
    }
  };
}

// Floods `victim` with `per_round` junk messages on a fixed tag.
inline Cluster::Program spam_adversary(int victim, std::uint32_t tag,
                                       int rounds, int per_round = 64) {
  return [=](PartyIo& io) {
    for (int round = 0; round < rounds; ++round) {
      for (int i = 0; i < per_round; ++i) {
        std::vector<std::uint8_t> junk(16);
        io.rng().fill_bytes(junk);
        io.send(victim, tag, std::move(junk));
      }
      io.sync();
    }
  };
}

}  // namespace dprbg
