// Committee: an index-remapped view of n player endpoints.
//
// The paper's protocols are fixed-n cliques; scaling past one clique
// means running many of them side by side (the sharded beacon in
// src/beacon/beacon.h). A `Committee` carves a member subset and a
// contiguous round-stream slice out of a larger `Cluster` and presents
// them as a self-contained n-player world: member i of the committee
// sees itself as player i of n, streams starting at 0, an inbox whose
// sender ids are committee-local, and its own fault plan and fault/trace
// accounting. `Endpoint` is the committee-local counterpart of
// `PartyIo` and models the same `NetEndpoint` concept, so every protocol
// template runs unchanged over either.
//
// Mapping: committee members are the sorted global player ids; local id
// = rank. Local stream s rides on global stream `first_stream + s`, so
// a committee's lockstep barriers involve exactly its members (the
// cluster's stream domains, net/cluster.h). Since global ids are
// ascending in local order, the cluster's (from, tag) inbox order is
// preserved by the remap — no re-sort, and the identity committee
// (committee #0, all players, first_stream 0) is bit-for-bit the raw
// cluster: same rng streams, same staging order, same wire bytes, same
// trace stamps (tests/committee_test.cpp locks this in).
//
// Fault plans: `set_fault_injector(FaultPlan)` takes a plan written
// against committee-local indices, remaps it onto global ids, and
// installs it on the committee's stream domain only; effects are charged
// to both the committee's ledger (`faults()`) and the cluster total.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "net/cluster.h"
#include "net/endpoint.h"
#include "net/fault.h"
#include "net/msg.h"
#include "rng/chacha.h"

namespace dprbg {

class Committee;

// A member's handle on one committee round stream — the committee-local
// `PartyIo`. Created via Committee::endpoint()/instance(); like PartyIo,
// all methods are called only from the thread currently driving that
// stream for that member.
class Endpoint {
 public:
  // Committee-local identity: my rank among the committee's members.
  [[nodiscard]] int id() const { return local_id_; }
  [[nodiscard]] int n() const;
  [[nodiscard]] int t() const;
  // The underlying (global player, global stream) ChaCha stream — for
  // the identity committee this is exactly the raw handle's rng.
  [[nodiscard]] Chacha& rng() { return io_->rng(); }
  // Committee-local stream id (0: the committee's root stream).
  [[nodiscard]] std::uint32_t stream() const { return local_stream_; }
  [[nodiscard]] std::uint32_t committee() const;

  // The sibling endpoint for committee-local round stream `batch`;
  // `instance(0)` and `instance(stream())` return this endpoint itself.
  Endpoint& instance(std::uint32_t batch);

  // Lockstep messaging in committee-local indices. send/send_all remap
  // the receiver onto its global id; sync() barriers the committee's
  // stream and delivers the round's messages with sender ids remapped
  // back to committee-local ranks.
  void send(int to, std::uint32_t tag, std::vector<std::uint8_t> body);
  void send_all(std::uint32_t tag, const std::vector<std::uint8_t>& body);
  const Inbox& sync();
  [[nodiscard]] const Inbox& inbox() const { return inbox_; }

  // Reports a decode failure against committee-local sender `from`;
  // remapped onto the global id and charged to the committee's domain
  // ledger and misbehavior score (PartyIo::note_decode_failure).
  void note_decode_failure(int from);

  // Accounting of the underlying handle (identical to what a raw PartyIo
  // on the same stream would report).
  [[nodiscard]] const CommCounters& sent() const { return io_->sent(); }
  [[nodiscard]] std::uint64_t rounds() const { return io_->rounds(); }

 private:
  friend class Committee;
  Endpoint(Committee& committee, PartyIo& io, int local_id,
           std::uint32_t local_stream)
      : committee_(&committee),
        io_(&io),
        local_id_(local_id),
        local_stream_(local_stream) {}

  Committee* committee_;
  PartyIo* io_;  // handle on the committee's global stream
  int local_id_;
  std::uint32_t local_stream_;
  Inbox inbox_;  // last delivery, sender ids committee-local
};

class Committee {
 public:
  struct Options {
    // Committee id: stamped on trace events and used as the stream
    // domain key. Must be unique per cluster.
    std::uint32_t id = 0;
    // Global round stream carrying the committee's local stream 0;
    // local stream s rides on first_stream + s. Committee stream slices
    // must be disjoint (and fit the uint16 wire bound, so a stride of
    // 4096 local streams supports 16 committees).
    std::uint32_t first_stream = 0;
    std::uint32_t stream_count = 4096;
    // Fault tolerance inside the committee; -1: inherit the cluster's t.
    int t = -1;
  };

  // Carves `members` (global player ids, deduplicated and sorted
  // internally) out of `cluster` and registers the committee's stream
  // domain. Must happen before the cluster run that uses it.
  Committee(Cluster& cluster, std::vector<int> members, Options opts);
  // The identity committee: committee #0 over every player, streams
  // unshifted — the single-committee case, bit-for-bit the raw cluster.
  explicit Committee(Cluster& cluster);

  Committee(const Committee&) = delete;
  Committee& operator=(const Committee&) = delete;

  [[nodiscard]] std::uint32_t id() const { return opts_.id; }
  [[nodiscard]] int n() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] int t() const { return t_; }
  // Sorted global player ids; index == committee-local id.
  [[nodiscard]] const std::vector<int>& members() const { return members_; }
  [[nodiscard]] Cluster& cluster() { return cluster_; }

  // The calling member's endpoint on the committee's root stream. `io`
  // may be any handle of that player (typically the root handle its
  // program received); the player must be a member.
  Endpoint& endpoint(PartyIo& io);

  // local <-> global translation. local_id returns -1 for non-members.
  [[nodiscard]] int global_id(int local) const;
  [[nodiscard]] int local_id(int global) const;
  [[nodiscard]] std::uint32_t global_stream(std::uint32_t local) const;

  // Installs `local_plan` (written in committee-local indices) as this
  // committee's link-fault injector: it applies to the committee's
  // streams only and leaves every other committee's links clean. Same
  // replay contract as Cluster::set_fault_injector.
  void set_fault_injector(FaultPlan local_plan,
                          std::uint64_t corruption_seed = 0xFA0175EEDull);
  // Fault effects charged to this committee's streams; summed over all
  // committees (plus the default domain) this equals Cluster::faults().
  [[nodiscard]] const FaultCounters& faults() const;

  // Locked snapshot of this committee's misbehavior ledger — link-fault
  // effects plus stale/foreign demux rejections on its streams. Safe to
  // poll from a monitor thread mid-run; the beacon failover layer's
  // eviction score (beacon_failover.h) is a weighted sum of exactly
  // these counters.
  [[nodiscard]] Cluster::DomainLedger ledger() const;

  // Per-committee simulated round latency override (Cluster contract;
  // -1 inherits the cluster-wide value). Models a slow roster on an
  // otherwise fast cluster. Must not be called while a run is active.
  void set_round_latency_us(int us);

  // Roster lifecycle for epoch reconfiguration (beacon_failover.h).
  // Forward-only: kActive (serving) -> kDraining (finishing in-flight
  // batches, pool migration underway) -> kRetired (shares migrated away;
  // the roster must not expose or deal again). The state is bookkeeping
  // for epoch drivers — the transport itself keeps working in any state.
  enum class RosterState : std::uint8_t { kActive, kDraining, kRetired };
  [[nodiscard]] RosterState state() const {
    return state_.load(std::memory_order_acquire);
  }
  void begin_drain();
  void retire();

  // Aggregate communication staged through this committee's endpoints
  // (messages/bytes as the underlying handles report them). Must not be
  // called while a run is active.
  [[nodiscard]] CommCounters comm() const;

 private:
  friend class Endpoint;
  // The (member, local stream) endpoint, created on first use.
  Endpoint& instance(int local_player, std::uint32_t local_stream);

  Cluster& cluster_;
  std::vector<int> members_;   // local id -> global id, ascending
  std::vector<int> local_of_;  // global id -> local id, -1 for outsiders
  Options opts_;
  int t_ = 0;
  std::atomic<RosterState> state_{RosterState::kActive};

  // Endpoints are created lazily from member threads (the pipelined
  // scheduler opens per-batch endpoints mid-run); the map is guarded and
  // unique_ptr keeps references stable.
  mutable std::mutex mu_;
  std::map<std::pair<int, std::uint32_t>, std::unique_ptr<Endpoint>>
      endpoints_;
};

// Both transports satisfy the protocol-facing concept.
static_assert(NetEndpoint<PartyIo>);
static_assert(NetEndpoint<Endpoint>);

}  // namespace dprbg
