// Per-peer misbehavior scoring and ban policy.
//
// The chaos layer (net/fault.h) models *link* faults; this layer models
// the hostile-*peer* view a production beacon needs on top of it: every
// observable protocol violation — a malformed body that failed to decode,
// a stale-batch envelope, traffic from outside a committee roster, an
// envelope that arrived late enough to have held a round barrier hostage
// — is reported as a weighted signal against the sending peer, and the
// accumulated score drives a three-state standing machine:
//
//     healthy --(score >= suspect_enter)--> suspect
//     suspect --(score >= ban_enter)-----> banned
//     banned  --(decay below ban_exit)---> suspect
//     suspect --(decay below suspect_exit)-> healthy
//
// Enter and exit thresholds are deliberately distinct (hysteresis): a
// peer hovering around a single threshold cannot flap in and out of the
// banned set, which matters because the cluster demux suppresses a banned
// peer's traffic and flapping would make delivery depend on score timing.
// Scores decay via tick() (typically once per completed protocol or
// epoch), so a peer that had a bad patch but recovers is eventually
// readmitted — unless the policy says bans are permanent.
//
// Scope and trust: signals reported by the Cluster demux itself (stale,
// foreign, slow-envelope) are infrastructure observations and fully
// trusted. Decode failures are reported by the *receiving* player
// (PartyIo::note_decode_failure), so a Byzantine receiver could try to
// frame an honest sender; the manager records them all the same — it is
// an aggregation point, and DESIGN.md §15 spells out the reporter-quorum
// hardening a multi-trust-domain deployment would add on top.
//
// Thread-safety: report()/tick()/standing() take an internal mutex and
// may be called from any player thread or a monitor thread while run()
// is active. banned() is a lock-free relaxed-atomic read — it sits on
// the demux admit path of every exchanged envelope.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/telemetry.h"

namespace dprbg {

enum class PeerStanding : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kBanned = 2,
};

enum class MisbehaviorSignal : std::uint8_t {
  kDecodeFailure = 0,  // body failed protocol decoding (receiver-reported)
  kStaleFlood = 1,     // envelope for a dead batch/stream (demux-reported)
  kForeignTraffic = 2,  // sender/receiver outside the domain roster
  kSlowEnvelope = 3,    // delay-queue merge: arrived a round (or more) late
};
inline constexpr std::size_t kMisbehaviorSignals = 4;

[[nodiscard]] const char* to_string(PeerStanding s);
[[nodiscard]] const char* to_string(MisbehaviorSignal s);

// Weights and thresholds. Defaults are deliberately conservative: a
// single malformed message never bans, a sustained flood does. Invariants
// (checked at manager construction): suspect_exit <= suspect_enter <=
// ban_enter and ban_exit <= ban_enter.
struct MisbehaviorPolicy {
  std::uint64_t decode_weight = 10;
  std::uint64_t stale_weight = 5;
  std::uint64_t foreign_weight = 20;
  std::uint64_t slow_weight = 2;

  std::uint64_t suspect_enter = 50;
  std::uint64_t suspect_exit = 25;
  std::uint64_t ban_enter = 200;
  std::uint64_t ban_exit = 100;

  // Score subtracted per tick() unit; 0 disables decay.
  std::uint64_t decay_per_tick = 0;
  // When true a banned peer never recovers, regardless of decay.
  bool permanent_ban = false;

  [[nodiscard]] std::uint64_t weight(MisbehaviorSignal s) const {
    switch (s) {
      case MisbehaviorSignal::kDecodeFailure: return decode_weight;
      case MisbehaviorSignal::kStaleFlood: return stale_weight;
      case MisbehaviorSignal::kForeignTraffic: return foreign_weight;
      case MisbehaviorSignal::kSlowEnvelope: return slow_weight;
    }
    return 0;
  }
};

class MisbehaviorManager {
 public:
  explicit MisbehaviorManager(int n, MisbehaviorPolicy policy = {});

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] const MisbehaviorPolicy& policy() const { return policy_; }

  // Records `count` occurrences of `sig` against `peer` and applies any
  // standing transition the new score triggers. Out-of-range peers are
  // ignored (defensive: signals can carry attacker-controlled ids).
  void report(int peer, MisbehaviorSignal sig, std::uint64_t count = 1);

  // Decays every peer's score by `ticks * decay_per_tick` and applies
  // downward standing transitions (banned -> suspect -> healthy) as
  // scores fall below the exit thresholds.
  void tick(std::uint64_t ticks = 1);

  [[nodiscard]] std::uint64_t score(int peer) const;
  [[nodiscard]] PeerStanding standing(int peer) const;

  // Lock-free: is `peer` currently banned? Safe on the demux hot path;
  // out-of-range peers read as not banned.
  [[nodiscard]] bool banned(int peer) const noexcept {
    if (peer < 0 || peer >= n_) return false;
    return banned_flags_[static_cast<std::size_t>(peer)].load(
               std::memory_order_relaxed) != 0;
  }

  // Called by the demux when it suppresses a banned peer's envelope —
  // the traffic is counted (here and in the cluster ledgers) but never
  // delivered.
  void note_suppressed(int peer, std::uint64_t count = 1);

  struct PeerSnapshot {
    std::uint64_t score = 0;
    PeerStanding standing = PeerStanding::kHealthy;
    std::uint64_t reports[kMisbehaviorSignals] = {0, 0, 0, 0};
    std::uint64_t suppressed = 0;  // envelopes dropped while banned
    std::uint64_t bans = 0;        // times this peer entered kBanned
    std::uint64_t unbans = 0;      // times it decayed back out
  };
  [[nodiscard]] PeerSnapshot peer(int peer) const;

  struct Totals {
    std::uint64_t reports = 0;
    std::uint64_t bans = 0;
    std::uint64_t unbans = 0;
    std::uint64_t suppressed = 0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  struct PeerState {
    std::uint64_t score = 0;
    PeerStanding standing = PeerStanding::kHealthy;
    std::uint64_t reports[kMisbehaviorSignals] = {0, 0, 0, 0};
    std::uint64_t suppressed = 0;
    std::uint64_t bans = 0;
    std::uint64_t unbans = 0;
    Gauge* tel_standing = nullptr;  // net_peer_standing{player=i}
  };

  // Applies standing transitions for the peer's current score; called
  // with mu_ held. `rising` selects enter (report) vs exit (tick)
  // thresholds so hysteresis is honored.
  void apply_transitions(int peer, PeerState& p, bool rising);
  void publish_standing(int peer, PeerState& p);

  const int n_;
  const MisbehaviorPolicy policy_;

  mutable std::mutex mu_;
  std::vector<PeerState> peers_;
  Totals totals_;

  // Mirrors peers_[i].standing == kBanned for lock-free demux reads.
  std::unique_ptr<std::atomic<std::uint8_t>[]> banned_flags_;

  // Cached telemetry instruments (lazily created under mu_ when
  // telemetry is enabled; registry keeps them alive process-wide).
  Counter* tel_reports_[kMisbehaviorSignals] = {nullptr, nullptr, nullptr,
                                                nullptr};
  Counter* tel_bans_ = nullptr;
  Counter* tel_unbans_ = nullptr;
};

}  // namespace dprbg
