// A synchronous n-player cluster with private channels.
//
// Each player runs on its own thread; rounds advance in lockstep through a
// barrier. Messages sent during round r are delivered (to everyone,
// sorted deterministically) at the start of round r+1 — exactly the
// synchronous model of Section 2. Byzantine players are ordinary programs
// that misbehave; the honest code never trusts anything it receives
// without validation.
//
// Determinism: every player gets an independent ChaCha20 stream derived
// from (cluster seed, player id), inboxes are sorted by (from, tag, send
// order), and threads only interact at barriers — a fixed seed replays an
// identical execution.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "net/fault.h"
#include "net/msg.h"
#include "rng/chacha.h"

namespace dprbg {

class Cluster;

// Per-player handle passed to the player's program. All methods are called
// only from that player's thread.
class PartyIo {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int n() const;
  [[nodiscard]] int t() const;
  [[nodiscard]] Chacha& rng() { return rng_; }

  // Queue a private message for delivery next round.
  void send(int to, std::uint32_t tag, std::vector<std::uint8_t> body);
  // Point-to-point "announce": send the same body to every player
  // (including a free self-delivery). This is NOT a broadcast channel —
  // a Byzantine sender can equivocate by calling send() per receiver.
  void send_all(std::uint32_t tag, const std::vector<std::uint8_t>& body);

  // End the round: block until all players arrive, then receive the
  // messages sent to this player during the ended round.
  const Inbox& sync();

  // Messages delivered at the last sync().
  [[nodiscard]] const Inbox& inbox() const { return inbox_; }

  // Communication this player has staged so far (self-deliveries free);
  // `sent().rounds` counts this player's completed sync() calls.
  [[nodiscard]] const CommCounters& sent() const { return sent_; }
  // Rounds this player has completed (== sent().rounds). TraceSpan
  // (common/trace.h) uses this to stamp per-phase round ranges.
  [[nodiscard]] std::uint64_t rounds() const { return sent_.rounds; }

 private:
  friend class Cluster;
  PartyIo(Cluster& cluster, int id, std::uint64_t seed)
      : cluster_(cluster), id_(id), rng_(seed, static_cast<std::uint64_t>(id)) {}

  struct Envelope {
    int to;
    Msg msg;
  };

  std::vector<Envelope>& staged_buffer() { return staged_; }
  void deliver(Inbox inbox) { inbox_ = std::move(inbox); }

  Cluster& cluster_;
  int id_;
  Chacha rng_;
  Inbox inbox_;
  std::vector<Envelope> staged_;  // outgoing, merged at the barrier
  CommCounters sent_;
};

class Cluster {
 public:
  using Program = std::function<void(PartyIo&)>;

  // n players tolerating t faults; `seed` drives all player randomness.
  Cluster(int n, int t, std::uint64_t seed);

  // Runs one program per player to completion (spawns n threads; a program
  // that returns early keeps participating in barriers so the rest can
  // finish). Rethrows the first player exception, if any.
  void run(std::vector<Program> programs);

  // Convenience: every player runs `honest` except the ids in `faulty`,
  // which run `adversary` (if null, faulty players crash immediately —
  // they never send anything).
  void run(const Program& honest, const std::vector<int>& faulty,
           const Program& adversary);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int t() const { return t_; }

  // Installs a link-fault injector consulted at every exchange (see
  // net/fault.h for the fault model and replay contract). Pass nullptr to
  // restore perfect links. Must not be called while run() is active; with
  // no injector (or an empty plan) delivery is byte-identical to a
  // fault-free cluster. Fault rounds are indexed by the cluster's total
  // exchange count since construction.
  void set_fault_injector(std::shared_ptr<const FaultInjector> injector) {
    injector_ = std::move(injector);
  }
  [[nodiscard]] const FaultInjector* fault_injector() const {
    return injector_.get();
  }
  // Aggregate fault effects across all run() calls (all-zero without an
  // injector).
  [[nodiscard]] const FaultCounters& faults() const { return faults_; }

  // Aggregate communication across all players and all run() calls.
  [[nodiscard]] const CommCounters& comm() const { return comm_; }
  // Per-player communication staged so far (player i's PartyIo::sent()).
  // Must not be called while run() is active. For programs that end with
  // a sync(), the message/byte sums equal comm() exactly; `rounds` is the
  // player's own sync count (not summed into comm().rounds, which counts
  // cluster exchanges).
  [[nodiscard]] std::vector<CommCounters> per_player_comm() const {
    std::vector<CommCounters> out;
    out.reserve(parties_.size());
    for (const auto& p : parties_) out.push_back(p->sent());
    return out;
  }
  // Aggregate field-operation counts across all player threads.
  [[nodiscard]] const FieldCounters& field_ops() const { return field_ops_; }
  // Per-player field-operation counts from the last run().
  [[nodiscard]] const std::vector<FieldCounters>& per_player_field_ops()
      const {
    return per_player_field_ops_;
  }

 private:
  friend class PartyIo;

  // Custom barrier with drop support: the last active thread to arrive
  // performs the message exchange, then releases everyone. A player whose
  // program returns "drops" — the barrier stops waiting for it, so
  // crash-faulty or early-returning programs cannot deadlock the round.
  void arrive_and_exchange();
  void drop();
  void do_exchange();  // called with mu_ held by exactly one thread

  int n_;
  int t_;
  std::uint64_t seed_;

  std::vector<std::unique_ptr<PartyIo>> parties_;

  std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  int expected_ = 0;  // active (not yet returned) player threads
  std::uint64_t generation_ = 0;

  CommCounters comm_;
  FieldCounters field_ops_;
  std::vector<FieldCounters> per_player_field_ops_;

  // Link-fault injection state (see net/fault.h). `exchange_index_`
  // counts do_exchange calls since construction and indexes fault plans;
  // `delayed_` holds kDelay-ed messages until their delivery exchange.
  std::shared_ptr<const FaultInjector> injector_;
  DelayQueue delayed_;
  std::uint64_t exchange_index_ = 0;
  FaultCounters faults_;
};

}  // namespace dprbg
