// A synchronous n-player cluster with private channels and per-batch
// round streams.
//
// Each player runs on its own thread; rounds advance in lockstep through a
// barrier. Messages sent during round r are delivered (to everyone,
// sorted deterministically) at the start of round r+1 — exactly the
// synchronous model of Section 2. Byzantine players are ordinary programs
// that misbehave; the honest code never trusts anything it receives
// without validation.
//
// Round streams: the cluster multiplexes any number of independent
// lockstep streams over the same player set. Stream 0 is the root stream
// every program starts on; `PartyIo::instance(batch)` opens (or revisits)
// a per-(player, batch) handle on stream `batch`, with its own rng,
// inbox, staging buffer, and round counter. Every envelope carries its
// stream id on the wire (Msg::batch) and the demux delivers it only to
// that stream, so a player can be in round r of batch k's exposure while
// round 1 of batch k+1's Bit-Gen deal is in flight — the pipelined
// Coin-Gen scheduler (src/coin/coin_pipeline.h) is built on exactly this.
// A stream's barrier fires when every active player of its domain roster
// is waiting on it (by default: every active player — the single-stream
// case degenerates to the old global barrier bit-for-bit). Stream
// domains (`register_stream_domain`) carve contiguous stream ranges out
// for player subsets — the transport under the Committee view in
// net/committee.h, which is how K independent n-player committees share
// one cluster.
//
// Determinism: every (player, stream) handle gets an independent ChaCha20
// stream derived from (cluster seed, stream id, player id) — stream 0
// reproduces the historical per-player streams exactly — inboxes are
// sorted by (from, tag, send order), and threads only interact at
// barriers — a fixed seed replays an identical execution per stream.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/telemetry.h"
#include "net/fault.h"
#include "net/misbehavior.h"
#include "net/msg.h"
#include "rng/chacha.h"

namespace dprbg {

class Cluster;
class Committee;
class Endpoint;

// Per-(player, stream) handle passed to the player's program. All methods
// are called only from the thread currently driving that stream for that
// player (the player's root thread, or the worker thread the pipelined
// scheduler dedicates to the batch).
class PartyIo {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int n() const;
  [[nodiscard]] int t() const;
  [[nodiscard]] Chacha& rng() { return rng_; }
  // The round stream this handle sends and receives on (0: root).
  [[nodiscard]] std::uint32_t stream() const { return stream_; }
  // The committee (stream domain) this handle's stream belongs to — 0
  // unless the stream falls in a range registered via
  // Cluster::register_stream_domain (net/committee.h builds on this).
  [[nodiscard]] std::uint32_t committee() const;

  // The per-(player, batch) handle for round stream `batch`, created on
  // first use (stable thereafter). `instance(0)` and `instance(stream())`
  // return this handle itself. Handles share the player's identity but
  // nothing else: independent rng, inbox, staging, and round counter.
  PartyIo& instance(std::uint32_t batch);

  // Queue a private message for delivery next round (of this stream).
  void send(int to, std::uint32_t tag, std::vector<std::uint8_t> body);
  // Point-to-point "announce": send the same body to every player
  // (including a free self-delivery). This is NOT a broadcast channel —
  // a Byzantine sender can equivocate by calling send() per receiver.
  void send_all(std::uint32_t tag, const std::vector<std::uint8_t>& body);

  // End the round: block until all active players arrive on this stream,
  // then receive the messages sent to this player during the ended round.
  const Inbox& sync();

  // Messages delivered at the last sync().
  [[nodiscard]] const Inbox& inbox() const { return inbox_; }

  // Reports that a message from `from` (delivered on this stream) failed
  // protocol decoding. Counted per domain (decode_rejections), surfaced
  // as telemetry, and forwarded to the misbehavior manager as a
  // kDecodeFailure signal against `from`. Self-reports and out-of-range
  // senders are ignored. Honest decoders call this at every `if
  // (!decoded)` drop site, turning what used to be a silent drop into an
  // attributable event.
  void note_decode_failure(int from);

  // Communication this player has staged so far on this stream
  // (self-deliveries free); `sent().rounds` counts this handle's
  // completed sync() calls.
  [[nodiscard]] const CommCounters& sent() const { return sent_; }
  // Rounds this handle has completed (== sent().rounds). TraceSpan
  // (common/trace.h) uses this to stamp per-phase round ranges.
  [[nodiscard]] std::uint64_t rounds() const { return sent_.rounds; }

 private:
  friend class Cluster;
  friend class Endpoint;  // steals the delivered inbox for id remapping
  PartyIo(Cluster& cluster, int id, std::uint64_t seed, std::uint32_t stream)
      : cluster_(cluster),
        id_(id),
        stream_(stream),
        rng_(seed, rng_stream(id, stream)) {}

  // Stream 0 keeps the historical per-player ChaCha stream ids (plain
  // player id) so root-stream transcripts are bit-for-bit unchanged;
  // batch streams get (batch << 32 | player), disjoint from both the
  // root ids and the trusted dealer's genesis stream.
  static std::uint64_t rng_stream(int id, std::uint32_t stream) {
    if (stream == 0) return static_cast<std::uint64_t>(id);
    return (static_cast<std::uint64_t>(stream) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
  }

  struct Envelope {
    int to;
    Msg msg;
  };

  std::vector<Envelope>& staged_buffer() { return staged_; }
  void deliver(Inbox inbox) { inbox_ = std::move(inbox); }
  // Moves the last delivered messages out (committee endpoints remap
  // sender ids and re-deliver into their own inbox).
  std::vector<Msg> take_inbox() { return std::move(inbox_).take_all(); }

  Cluster& cluster_;
  int id_;
  std::uint32_t stream_;
  Chacha rng_;
  Inbox inbox_;
  std::vector<Envelope> staged_;  // outgoing, merged at the barrier
  CommCounters sent_;
};

class Cluster {
 public:
  using Program = std::function<void(PartyIo&)>;

  // n players tolerating t faults; `seed` drives all player randomness.
  Cluster(int n, int t, std::uint64_t seed);

  // Runs one program per player to completion (spawns n threads; a program
  // that returns early keeps participating in barriers so the rest can
  // finish). Rethrows the first player exception, if any.
  void run(std::vector<Program> programs);

  // Convenience: every player runs `honest` except the ids in `faulty`,
  // which run `adversary` (if null, faulty players crash immediately —
  // they never send anything).
  void run(const Program& honest, const std::vector<int>& faulty,
           const Program& adversary);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int t() const { return t_; }

  // Installs a link-fault injector consulted at every exchange (see
  // net/fault.h for the fault model and replay contract). Pass nullptr to
  // restore perfect links. Must not be called while run() is active; with
  // no injector (or an empty plan) delivery is byte-identical to a
  // fault-free cluster. Fault rounds are indexed by each stream's own
  // exchange count since construction — for single-stream (root-only)
  // runs this is the cluster's total exchange count, exactly the old
  // contract; a pipelined run applies the plan to every stream's round r
  // independently, which keeps delivery deterministic regardless of how
  // the streams interleave in wall-clock.
  void set_fault_injector(std::shared_ptr<const FaultInjector> injector) {
    injector_ = std::move(injector);
  }
  [[nodiscard]] const FaultInjector* fault_injector() const {
    return injector_.get();
  }
  // Aggregate fault effects across all run() calls (all-zero without an
  // injector).
  [[nodiscard]] const FaultCounters& faults() const { return faults_; }

  // Installs a per-peer misbehavior manager (net/misbehavior.h). The
  // demux feeds it stale/foreign/slow-envelope signals, decoders feed it
  // decode failures via PartyIo::note_decode_failure, and envelopes from
  // a peer the manager has banned are suppressed at admit time (counted
  // in banned_suppressions and the domain ledgers, never delivered).
  // Self-deliveries are never suppressed — a banned peer keeps its own
  // loopback, exactly like a disconnected node still sees itself. Pass
  // nullptr to disable; must not be called while run() is active. The
  // manager's n must match the cluster's.
  void set_misbehavior_manager(std::shared_ptr<MisbehaviorManager> mgr);
  [[nodiscard]] MisbehaviorManager* misbehavior() const {
    return misbehavior_.get();
  }

  // -------------------------------------------------------------------
  // Stream domains (committees).
  //
  // A domain carves out a contiguous slice of the round-stream id space
  // for a subset of players: streams [first_stream, first_stream +
  // stream_count) barrier over exactly `members` (instead of the whole
  // cluster), may carry their own fault injector, and account injected
  // faults separately. This is the transport half of the Committee view
  // in net/committee.h — protocols never see it directly.
  //
  // Rules (DPRBG_CHECK-enforced): registration only while run() is not
  // active; committee ids unique; stream ranges disjoint from other
  // registered domains; members distinct and in [0, n). Streams outside
  // every registered range stay in the default domain (committee 0, all
  // players) — the unregistered cluster therefore behaves bit-for-bit as
  // before. Re-registering a range over an already-opened stream (the
  // root stream exists from construction) is allowed only before that
  // stream's first exchange.
  // -------------------------------------------------------------------
  void register_stream_domain(std::uint32_t committee,
                              std::uint32_t first_stream,
                              std::uint32_t stream_count,
                              const std::vector<int>& members);
  // Installs a fault injector consulted for this domain's streams only
  // (overriding the cluster-wide injector there). Same replay contract as
  // set_fault_injector; rounds are still indexed per-stream.
  void set_domain_fault_injector(std::uint32_t committee,
                                 std::shared_ptr<const FaultInjector> injector);
  // Fault effects charged to one domain's streams. For committee 0 with
  // no registered domain this is the default domain, i.e. everything a
  // plain cluster injects; summed over all domains it equals faults().
  [[nodiscard]] const FaultCounters& domain_faults(
      std::uint32_t committee) const;
  // A locked snapshot of one domain's misbehavior ledger — link-fault
  // effects plus the demux rejections charged to its streams. Unlike
  // domain_faults() (a reference the exchanges keep mutating), this is
  // safe to poll from a monitor thread while run() is active; the
  // beacon's eviction score (beacon_failover.h) reads exactly this.
  struct DomainLedger {
    FaultCounters faults;
    std::uint64_t stale = 0;    // stale-tag rejections on this domain
    std::uint64_t foreign = 0;  // foreign-roster rejections on this domain
    std::uint64_t decode = 0;   // decode failures reported by receivers
    std::uint64_t slow = 0;     // delay-queue merges (late envelopes)
    std::uint64_t banned = 0;   // envelopes suppressed from banned peers
  };
  [[nodiscard]] DomainLedger domain_ledger(std::uint32_t committee) const;
  // The committee id owning `stream` (0: default domain).
  [[nodiscard]] std::uint32_t committee_of(std::uint32_t stream) const;
  // Envelopes rejected because sender or receiver was outside the
  // stream's domain roster. PartyIo handles are roster-guarded at
  // creation and at sync, so like stale_rejections() this must stay 0 —
  // a nonzero count means committee traffic leaked across rosters.
  [[nodiscard]] std::uint64_t foreign_rejections() const {
    return foreign_rejections_;
  }

  // Simulated one-way link latency per lockstep exchange, in
  // microseconds. Zero (the default) reproduces the historical
  // compute-bound barrier. When nonzero, every thread sleeps this long
  // after its stream's exchange — transcripts are unaffected (barriers
  // already fix the order), but wall-clock now charges one network
  // traversal per round, so overlapped streams genuinely hide round
  // latency (bench/pipeline measures exactly this).
  void set_round_latency_us(unsigned us) { round_latency_us_ = us; }
  [[nodiscard]] unsigned round_latency_us() const {
    return round_latency_us_;
  }
  // Per-domain override of the simulated round latency: a slow committee
  // on an otherwise fast cluster (the failover chaos tests and the
  // crash-committee bench model stalls exactly this way). -1 (the
  // default) inherits the cluster-wide value; committee 0 with no
  // registered domain addresses the default domain. Must not be called
  // while run() is active.
  void set_domain_round_latency_us(std::uint32_t committee, int us);

  // Envelopes whose wire batch id did not match the stream being
  // exchanged, rejected by the demux instead of delivered. PartyIo
  // stamps every envelope with its own stream and delay queues are
  // per-stream, so this must stay 0 — the chaos tests assert it under
  // stale-tag delay floods (a nonzero count would mean cross-batch
  // misdelivery).
  [[nodiscard]] std::uint64_t stale_rejections() const {
    return stale_rejections_;
  }

  // Envelopes whose body failed protocol decoding at the receiver
  // (reported via PartyIo::note_decode_failure). Unlike stale/foreign —
  // which are demux invariants that must stay 0 — this counts actual
  // Byzantine (or corrupted) payloads and is nonzero under chaos plans.
  [[nodiscard]] std::uint64_t decode_rejections() const {
    return decode_rejections_;
  }
  // Envelopes that arrived via the delay queue, i.e. at least one round
  // later than sent — each is one barrier-stall observation charged to
  // its sender.
  [[nodiscard]] std::uint64_t slow_envelopes() const {
    return slow_envelopes_;
  }
  // Envelopes suppressed at admit time because the misbehavior manager
  // had banned the sender: counted here and in the ledgers, delivered
  // nowhere.
  [[nodiscard]] std::uint64_t banned_suppressions() const {
    return banned_suppressions_;
  }

  // Aggregate communication across all players, streams, and run() calls.
  [[nodiscard]] const CommCounters& comm() const { return comm_; }
  // Per-player communication staged so far: player i's root handle plus
  // all of its per-batch instance handles. Must not be called while
  // run() is active. For programs that end with a sync(), the
  // message/byte sums equal comm() exactly; `rounds` is the player's own
  // total sync count across its handles (not summed into comm().rounds,
  // which counts cluster exchanges).
  [[nodiscard]] std::vector<CommCounters> per_player_comm() const;
  // Surfaces the per-peer communication ledgers (per_player_comm) as
  // labeled telemetry counters net_player_{messages,bytes}_total
  // {player=i}. Adds the delta since the previous publish, so repeated
  // calls keep the counters monotonic. No-op while telemetry is
  // disabled; must not be called while run() is active (it reads
  // per_player_comm).
  void publish_comm_telemetry();
  // Aggregate field-operation counts across all player threads.
  [[nodiscard]] const FieldCounters& field_ops() const { return field_ops_; }
  // Per-player field-operation counts from the last run(). Work done on
  // pipeline worker threads is included as long as the driver folds the
  // worker deltas back into the root thread before the program returns
  // (pipelined_coin_gen does).
  [[nodiscard]] const std::vector<FieldCounters>& per_player_field_ops()
      const {
    return per_player_field_ops_;
  }

 private:
  friend class PartyIo;
  friend class Committee;  // opens member handles on committee streams

  // A registered slice of the stream-id space (see the public section).
  // The default domain has stream_count 0 (covers every unregistered
  // stream) and an empty roster (meaning: all players).
  struct StreamDomain {
    std::uint32_t committee = 0;
    std::uint32_t first_stream = 0;
    std::uint32_t stream_count = 0;
    std::vector<char> roster;  // indexed by player id; empty: everyone
    std::shared_ptr<const FaultInjector> injector;  // nullptr: cluster-wide
    FaultCounters faults;
    // Demux rejections charged to this domain's streams (also summed into
    // the cluster-wide counters).
    std::uint64_t stale = 0;
    std::uint64_t foreign = 0;
    std::uint64_t decode = 0;
    std::uint64_t slow = 0;
    std::uint64_t banned = 0;
    // Simulated round latency override; -1 inherits the cluster's value.
    int round_latency_us = -1;
    // Cached telemetry counters for this domain, labeled
    // committee=<id>; filled lazily under mu_ the first time an
    // exchange runs with telemetry enabled (never touched while
    // disabled), and stable thereafter — the registry keeps instruments
    // alive for the process lifetime.
    Counter* tel_messages = nullptr;
    Counter* tel_bytes = nullptr;
    Counter* tel_stale = nullptr;
    Counter* tel_foreign = nullptr;
    Counter* tel_faults = nullptr;
    Counter* tel_decode = nullptr;
    Counter* tel_slow = nullptr;
    Counter* tel_banned = nullptr;
  };

  // One independent lockstep round stream. Streams share the cluster's
  // mutex and cv; each keeps its own barrier generation, exchange
  // counter, delay queue, member handles, and owning domain.
  struct RoundStream {
    std::uint32_t id = 0;
    int waiting = 0;
    std::uint64_t generation = 0;
    std::uint64_t exchange_index = 0;
    DelayQueue delayed;
    // Indexed by player id; nullptr until that player opens its handle
    // (a crashed player never does — its column is skipped).
    std::vector<PartyIo*> members;
    StreamDomain* domain = nullptr;
  };

  // Custom barrier with drop support: the last roster thread to arrive on
  // a stream performs that stream's message exchange, then releases its
  // waiters. A player whose program returns "drops" — every stream's
  // barrier stops waiting for it, so crash-faulty or early-returning
  // programs cannot deadlock any round.
  void arrive_and_exchange(PartyIo& party);
  void drop(int player);
  void do_exchange(RoundStream& st);  // called with mu_ held
  // Fills a domain's cached telemetry counters (with mu_ held, telemetry
  // enabled).
  void ensure_domain_telemetry(StreamDomain& dom);

  // Domain lookup/roster helpers (domain registration is forbidden while
  // run() is active, so lock-free reads from player threads are safe).
  StreamDomain& domain_of(std::uint32_t stream);
  [[nodiscard]] const StreamDomain& domain_of(std::uint32_t stream) const;
  static bool in_roster(const StreamDomain& d, int player) {
    return d.roster.empty() || d.roster[static_cast<std::size_t>(player)] != 0;
  }
  // Threads a stream's barrier waits for: active players in its roster.
  [[nodiscard]] int stream_expected(const RoundStream& st) const;

  // The (player, batch) handle, created on first use (with mu_ taken).
  PartyIo& instance_io(int player, std::uint32_t batch);
  // Any-stream variant: stream 0 resolves to the root handle.
  PartyIo& handle(int player, std::uint32_t stream);

  int n_;
  int t_;
  std::uint64_t seed_;

  std::vector<std::unique_ptr<PartyIo>> parties_;  // root-stream handles
  std::map<std::pair<int, std::uint32_t>, std::unique_ptr<PartyIo>>
      instances_;  // per-batch handles, stable for the cluster's lifetime

  mutable std::mutex mu_;  // domain_ledger() snapshots under the lock
  std::condition_variable cv_;
  int expected_ = 0;  // active (not yet returned) player threads
  std::vector<char> active_;  // per-player: root program still running
  // Keyed by stream id; std::map keeps references stable while new
  // streams are opened mid-run.
  std::map<std::uint32_t, RoundStream> streams_;

  StreamDomain default_domain_;
  // unique_ptr keeps RoundStream::domain pointers stable across
  // registrations.
  std::vector<std::unique_ptr<StreamDomain>> domains_;

  CommCounters comm_;
  FieldCounters field_ops_;
  std::vector<FieldCounters> per_player_field_ops_;

  // Handles a receiver-reported decode failure on `stream` (the locked
  // half of PartyIo::note_decode_failure).
  void note_decode_failure(std::uint32_t stream, int reporter, int from);

  std::shared_ptr<const FaultInjector> injector_;
  std::shared_ptr<MisbehaviorManager> misbehavior_;
  FaultCounters faults_;
  std::uint64_t stale_rejections_ = 0;
  std::uint64_t foreign_rejections_ = 0;
  std::uint64_t decode_rejections_ = 0;
  std::uint64_t slow_envelopes_ = 0;
  std::uint64_t banned_suppressions_ = 0;
  unsigned round_latency_us_ = 0;
  // Reused per-exchange routing scratch (guarded by mu_, like every
  // do_exchange structure): the outer vector survives across exchanges
  // so routing does not malloc per round. The inner vectors move into
  // the delivered Inboxes, so only the outer shell is retained.
  std::vector<std::vector<Msg>> exchange_scratch_;

  // Telemetry: barrier-wait histogram (cached under mu_) and the
  // per-player comm levels already published as counters.
  Histogram* tel_barrier_wait_ = nullptr;
  std::vector<CommCounters> published_comm_;
};

}  // namespace dprbg
