// Wall-clock latency model for deployments.
//
// The simulator runs all players in one process, so measured wall time
// reflects computation only. In a real deployment the synchronous rounds
// dominate: each round costs one network traversal plus the time to push
// the round's bytes through the slowest link. This model converts the
// cluster's (rounds, bytes) metrics into wall-clock estimates for
// standard settings — which is where the paper's amortization shines:
// Coin-Gen's round count is CONSTANT in M, so the per-coin latency of a
// large batch collapses to (almost) zero rounds per coin plus one
// exposure round.

#pragma once

#include <string>

#include "common/metrics.h"

namespace dprbg {

struct LatencyModel {
  std::string name;
  double one_way_ms;        // per-round network traversal
  double bandwidth_mbps;    // per-player effective bandwidth
};

inline LatencyModel lan_model() { return {"LAN", 0.05, 10000}; }
inline LatencyModel wan_model() { return {"WAN (regional)", 25, 1000}; }
inline LatencyModel global_model() { return {"WAN (global)", 75, 100}; }

// Estimated wall-clock milliseconds for a protocol execution that used
// `comm` network resources, with `n` players sharing the byte volume
// (every player pushes ~bytes/n through its own link each round).
inline double estimate_wall_ms(const CommCounters& comm, int n,
                               const LatencyModel& model) {
  const double traversal = static_cast<double>(comm.rounds) * model.one_way_ms;
  const double per_player_bytes = static_cast<double>(comm.bytes) / n;
  const double transfer_ms =
      per_player_bytes * 8.0 / (model.bandwidth_mbps * 1000.0);
  return traversal + transfer_ms;
}

}  // namespace dprbg
