// Protocol messages and tagging.
//
// The model (Section 2): a synchronous network of n players communicating
// over private point-to-point channels. A message carries an opaque body
// plus a 32-bit tag that multiplexes concurrent protocol instances (e.g.
// the n parallel Bit-Gen invocations inside Coin-Gen, Fig. 5 step 3).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dprbg {

// Top-level protocol identifiers for tag composition.
enum class ProtoId : std::uint8_t {
  kTrustedDealer = 1,
  kCoinExpose = 2,
  kVss = 3,
  kBatchVss = 4,
  kBitGen = 5,
  kGradeCast = 6,
  kPhaseKing = 7,
  kCoinGen = 8,
  kRandomizedBa = 9,
  kBaselineCoin = 10,
  kReshare = 11,
  kApp = 15,
};

// tag = proto(8) | instance(12) | phase(8) | sub(4). `instance`
// distinguishes parallel invocations (e.g. dealer index, coin index);
// `phase` the round/step within a protocol; `sub` nested sub-usage.
constexpr std::uint32_t make_tag(ProtoId proto, unsigned instance,
                                 unsigned phase, unsigned sub = 0) {
  return (static_cast<std::uint32_t>(proto) << 24) |
         ((instance & 0xFFFu) << 12) | ((phase & 0xFFu) << 4) | (sub & 0xFu);
}

struct Msg {
  int from = -1;
  std::uint32_t tag = 0;
  // Round-stream (batch/instance) id stamped by the sending PartyIo
  // handle: 0 is the root lockstep stream, nonzero ids name per-batch
  // streams opened via PartyIo::instance() (pipelined Coin-Gen). On the
  // wire this rides in the header as a uint16 alongside sender and tag
  // (see kHeaderBytes in net/cluster.cpp) — enforced by a
  // DPRBG_CHECK(batch <= 0xFFFF) where stream handles are created, since
  // batch ids grow monotonically and are never reused. The demux
  // delivers an envelope only to the round stream it was sent on, so
  // traffic from batch k can never surface in batch k' — even delayed or
  // duplicated by a link fault.
  std::uint32_t batch = 0;
  std::vector<std::uint8_t> body;
};

// One round's worth of delivered messages, sorted by (from, tag, send
// order) for determinism.
class Inbox {
 public:
  explicit Inbox(std::vector<Msg> msgs) : msgs_(std::move(msgs)) {}
  Inbox() = default;

  [[nodiscard]] const std::vector<Msg>& all() const { return msgs_; }

  // First message from `sender` with `tag`, if any. A Byzantine sender may
  // send several; taking the first is a fixed deterministic rule shared by
  // all honest players only when the sender sends the same multiplicity to
  // everyone — protocols treat duplicates as a faulty sender and the first
  // message as its "announced" value.
  [[nodiscard]] const Msg* from(int sender, std::uint32_t tag) const {
    for (const Msg& m : msgs_) {
      if (m.from == sender && m.tag == tag) return &m;
    }
    return nullptr;
  }

  // Moves the messages out (rvalue only: the inbox is spent afterwards).
  // Committee endpoints use this to remap sender ids onto committee-local
  // indices before re-wrapping the round's delivery.
  [[nodiscard]] std::vector<Msg> take_all() && { return std::move(msgs_); }

  // All messages carrying `tag`, at most one per sender (first wins).
  [[nodiscard]] std::vector<const Msg*> with_tag(std::uint32_t tag) const {
    std::vector<const Msg*> out;
    int last_from = -1;
    for (const Msg& m : msgs_) {
      if (m.tag != tag) continue;
      if (m.from == last_from) continue;  // duplicate from same sender
      last_from = m.from;
      out.push_back(&m);
    }
    return out;
  }

 private:
  std::vector<Msg> msgs_;
};

}  // namespace dprbg
