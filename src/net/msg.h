// Protocol messages and tagging.
//
// The model (Section 2): a synchronous network of n players communicating
// over private point-to-point channels. A message carries an opaque body
// plus a 32-bit tag that multiplexes concurrent protocol instances (e.g.
// the n parallel Bit-Gen invocations inside Coin-Gen, Fig. 5 step 3).

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/serial.h"
#include "common/varint.h"

namespace dprbg {

// Top-level protocol identifiers for tag composition.
enum class ProtoId : std::uint8_t {
  kTrustedDealer = 1,
  kCoinExpose = 2,
  kVss = 3,
  kBatchVss = 4,
  kBitGen = 5,
  kGradeCast = 6,
  kPhaseKing = 7,
  kCoinGen = 8,
  kRandomizedBa = 9,
  kBaselineCoin = 10,
  kReshare = 11,
  kApp = 15,
};

// tag = proto(8) | instance(12) | phase(8) | sub(4). `instance`
// distinguishes parallel invocations (e.g. dealer index, coin index);
// `phase` the round/step within a protocol; `sub` nested sub-usage.
constexpr std::uint32_t make_tag(ProtoId proto, unsigned instance,
                                 unsigned phase, unsigned sub = 0) {
  return (static_cast<std::uint32_t>(proto) << 24) |
         ((instance & 0xFFFu) << 12) | ((phase & 0xFFu) << 4) | (sub & 0xFu);
}

struct Msg {
  int from = -1;
  std::uint32_t tag = 0;
  // Round-stream (batch/instance) id stamped by the sending PartyIo
  // handle: 0 is the root lockstep stream, nonzero ids name per-batch
  // streams opened via PartyIo::instance() (pipelined Coin-Gen). On the
  // wire this rides in the envelope header alongside sender and tag (u16
  // under v0, varint under v1; see EnvelopeHeader below) — enforced by a
  // DPRBG_CHECK(batch <= 0xFFFF) where stream handles are created, since
  // batch ids grow monotonically and are never reused. The demux
  // delivers an envelope only to the round stream it was sent on, so
  // traffic from batch k can never surface in batch k' — even delayed or
  // duplicated by a link fault.
  std::uint32_t batch = 0;
  std::vector<std::uint8_t> body;
};

// One round's worth of delivered messages, sorted by (from, tag, send
// order) for determinism.
class Inbox {
 public:
  explicit Inbox(std::vector<Msg> msgs) : msgs_(std::move(msgs)) {}
  Inbox() = default;

  [[nodiscard]] const std::vector<Msg>& all() const { return msgs_; }

  // First message from `sender` with `tag`, if any. A Byzantine sender may
  // send several; taking the first is a fixed deterministic rule shared by
  // all honest players only when the sender sends the same multiplicity to
  // everyone — protocols treat duplicates as a faulty sender and the first
  // message as its "announced" value.
  [[nodiscard]] const Msg* from(int sender, std::uint32_t tag) const {
    for (const Msg& m : msgs_) {
      if (m.from == sender && m.tag == tag) return &m;
    }
    return nullptr;
  }

  // Moves the messages out (rvalue only: the inbox is spent afterwards).
  // Committee endpoints use this to remap sender ids onto committee-local
  // indices before re-wrapping the round's delivery.
  [[nodiscard]] std::vector<Msg> take_all() && { return std::move(msgs_); }

  // All messages carrying `tag`, at most one per sender (first wins).
  [[nodiscard]] std::vector<const Msg*> with_tag(std::uint32_t tag) const {
    std::vector<const Msg*> out;
    int last_from = -1;
    for (const Msg& m : msgs_) {
      if (m.tag != tag) continue;
      if (m.from == last_from) continue;  // duplicate from same sender
      last_from = m.from;
      out.push_back(&m);
    }
    return out;
  }

 private:
  std::vector<Msg> msgs_;
};

// ---------------------------------------------------------------------------
// Versioned wire framing.
//
// v0 is the historical fixed-width envelope header: u32 from | u32 tag |
// u16 batch | u32 body_len = 14 bytes, all little-endian. It has no
// version byte — 14 bytes was simply the constant the byte accounting
// charged per envelope — so versioning is introduced *around* it: v0
// stays the default and stays bit-for-bit identical (golden tests pin the
// layout), while v1 is opt-in per process via set_wire_version().
//
// v1 framing: one version byte (high nibble = version 1, low nibble =
// flags, all reserved-zero today), then canonical varints for sender,
// tag, batch and body length. The tag is byte-rotated before encoding
// (`wire_tag`) so the proto id — the only byte that is always nonzero —
// lands in the low bits and a bare tag like make_tag(kGradeCast,0,1)
// costs 2 varint bytes instead of 5. Typical v1 header: 5-7 bytes vs 14.

enum class WireVersion : std::uint8_t { kV0 = 0, kV1 = 1 };

namespace wire_detail {
inline std::atomic<WireVersion>& version_flag() noexcept {
  static std::atomic<WireVersion> v{WireVersion::kV0};
  return v;
}
}  // namespace wire_detail

// Process-wide wire version. Relaxed atomics (same pattern as the
// telemetry enable flag): cheap to poll on the send path. Must not be
// flipped while a Cluster::run is in flight — byte accounting and echo
// codecs read it per call.
[[nodiscard]] inline WireVersion wire_version() noexcept {
  return wire_detail::version_flag().load(std::memory_order_relaxed);
}
inline void set_wire_version(WireVersion v) noexcept {
  wire_detail::version_flag().store(v, std::memory_order_relaxed);
}

inline constexpr std::size_t kV0HeaderBytes = 14;
// v1 byte 0 for flags == 0: version 1 in the high nibble.
inline constexpr std::uint8_t kV1VersionByte = 0x10;

// Rotates the proto byte (bits 31..24 of a tag) into the low byte so the
// varint encoding of a small tag is short. Self-inverse-paired helpers;
// pure byte rotation, so every tag survives the round trip.
[[nodiscard]] constexpr std::uint32_t wire_tag(std::uint32_t tag) {
  return (tag << 8) | (tag >> 24);
}
[[nodiscard]] constexpr std::uint32_t unwire_tag(std::uint32_t w) {
  return (w >> 8) | (w << 24);
}

struct EnvelopeHeader {
  std::uint8_t flags = 0;  // v1 only; reserved, must be zero
  std::uint32_t from = 0;
  std::uint32_t tag = 0;
  std::uint32_t batch = 0;  // <= 0xFFFF under v0 (u16 on the wire)
  std::uint32_t body_len = 0;
};

inline void encode_envelope_header(ByteWriter& w, const EnvelopeHeader& h,
                                   WireVersion v) {
  if (v == WireVersion::kV0) {
    w.u32(h.from);
    w.u32(h.tag);
    w.u16(static_cast<std::uint16_t>(h.batch));
    w.u32(h.body_len);
    return;
  }
  w.u8(static_cast<std::uint8_t>(kV1VersionByte | (h.flags & 0x0Fu)));
  w.uvarint(h.from);
  w.uvarint(wire_tag(h.tag));
  w.uvarint(h.batch);
  w.uvarint(h.body_len);
}

// Decodes one envelope header; nullopt on malformed input (truncation,
// wrong version nibble, nonzero reserved flags, non-canonical varints, or
// a field overflowing its 32-bit range). The reader is left positioned
// after the header on success so the body can be read next.
[[nodiscard]] inline std::optional<EnvelopeHeader> decode_envelope_header(
    ByteReader& r, WireVersion v) {
  EnvelopeHeader h;
  if (v == WireVersion::kV0) {
    h.from = r.u32();
    h.tag = r.u32();
    h.batch = r.u16();
    h.body_len = r.u32();
    if (!r.ok()) return std::nullopt;
    return h;
  }
  const std::uint8_t b0 = r.u8();
  if (!r.ok() || (b0 >> 4) != 1) return std::nullopt;
  h.flags = b0 & 0x0Fu;
  if (h.flags != 0) return std::nullopt;  // reserved bits must be zero
  const std::uint64_t from = r.uvarint();
  const std::uint64_t tagw = r.uvarint();
  const std::uint64_t batch = r.uvarint();
  const std::uint64_t len = r.uvarint();
  if (!r.ok() || from > 0xFFFFFFFFull || tagw > 0xFFFFFFFFull ||
      batch > 0xFFFFFFFFull || len > 0xFFFFFFFFull) {
    return std::nullopt;
  }
  h.from = static_cast<std::uint32_t>(from);
  h.tag = unwire_tag(static_cast<std::uint32_t>(tagw));
  h.batch = static_cast<std::uint32_t>(batch);
  h.body_len = static_cast<std::uint32_t>(len);
  return h;
}

// Exact on-wire size of the header under `v` — what the per-envelope byte
// accounting in net/cluster.cpp charges.
[[nodiscard]] inline std::size_t envelope_header_bytes(const EnvelopeHeader& h,
                                                       WireVersion v) {
  if (v == WireVersion::kV0) return kV0HeaderBytes;
  return 1 + varint_size(h.from) + varint_size(wire_tag(h.tag)) +
         varint_size(h.batch) + varint_size(h.body_len);
}

}  // namespace dprbg
