#include "net/cluster.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/trace.h"

namespace dprbg {

namespace {

// Approximate wire overhead per message (sender id + tag + batch id +
// length), used for byte accounting only. The batch id is a uint16 on
// the wire; ids grow monotonically without reuse, so the bound is
// enforced (DPRBG_CHECK in instance_io) rather than assumed.
constexpr std::uint64_t kHeaderBytes = 14;

}  // namespace

int PartyIo::n() const { return cluster_.n(); }
int PartyIo::t() const { return cluster_.t(); }

PartyIo& PartyIo::instance(std::uint32_t batch) {
  if (batch == 0 || batch == stream_) return *this;
  return cluster_.instance_io(id_, batch);
}

void PartyIo::send(int to, std::uint32_t tag,
                   std::vector<std::uint8_t> body) {
  if (to < 0 || to >= cluster_.n()) return;
  if (to != id_) {
    ++sent_.messages;
    sent_.bytes += body.size() + kHeaderBytes;
    if (tracer().enabled()) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kPoint;
      ev.protocol = "net";
      ev.phase = "send";
      ev.player = id_;
      ev.batch = stream_;
      ev.round_begin = ev.round_end = sent_.rounds;
      ev.comm.messages = 1;
      ev.comm.bytes = body.size() + kHeaderBytes;
      ev.detail = "to=" + std::to_string(to) +
                  " tag=" + std::to_string(tag);
      tracer().record(std::move(ev));
    }
  }
  Msg msg;
  msg.from = id_;
  msg.tag = tag;
  msg.batch = stream_;
  msg.body = std::move(body);
  staged_.push_back(Envelope{to, std::move(msg)});
}

void PartyIo::send_all(std::uint32_t tag,
                       const std::vector<std::uint8_t>& body) {
  for (int to = 0; to < cluster_.n(); ++to) {
    send(to, tag, body);
  }
}

const Inbox& PartyIo::sync() {
  cluster_.arrive_and_exchange(*this);
  ++sent_.rounds;
  return inbox_;
}

Cluster::Cluster(int n, int t, std::uint64_t seed)
    : n_(n), t_(t), seed_(seed) {
  DPRBG_CHECK(n >= 1 && t >= 0 && t < n);
  parties_.reserve(n);
  RoundStream& root = streams_[0];
  root.id = 0;
  root.members.assign(n, nullptr);
  for (int i = 0; i < n; ++i) {
    parties_.push_back(
        std::unique_ptr<PartyIo>(new PartyIo(*this, i, seed, 0)));
    root.members[i] = parties_.back().get();
  }
}

PartyIo& Cluster::instance_io(int player, std::uint32_t batch) {
  // The wire header encodes the stream id as a uint16 (kHeaderBytes
  // above); every nonzero-stream envelope is staged via a handle created
  // here, so checking at this choke point enforces the claim for all
  // traffic. Batch ids grow monotonically without reuse (DPrbg never
  // recycles them), so a long-running instance hits this loudly instead
  // of silently breaking the byte accounting.
  DPRBG_CHECK(batch <= 0xFFFF);
  std::lock_guard lk(mu_);
  const auto key = std::make_pair(player, batch);
  auto it = instances_.find(key);
  if (it == instances_.end()) {
    it = instances_
             .emplace(key, std::unique_ptr<PartyIo>(
                               new PartyIo(*this, player, seed_, batch)))
             .first;
    RoundStream& st = streams_[batch];
    st.id = batch;
    if (st.members.empty()) st.members.assign(n_, nullptr);
    st.members[player] = it->second.get();
  }
  return *it->second;
}

void Cluster::do_exchange(RoundStream& st) {
  // Runs with mu_ held, all active threads quiescent on this stream.
  // Collect every staged envelope of the stream's members, account
  // communication, and deliver sorted inboxes.
  std::vector<std::vector<Msg>> next(n_);
  const std::uint64_t round = st.exchange_index++;
  const bool trace_on = tracer().enabled();
  const CommCounters comm_before = comm_;
  // Demux guard shared by delayed and fresh traffic: an envelope may
  // only surface in the stream it was sent on. PartyIo stamps
  // Msg::batch and the delay queue is per-stream, so a mismatch means a
  // wiring bug — reject (count, don't deliver) rather than misdeliver.
  auto admit = [&](int to, Msg&& msg) {
    if (msg.batch != st.id) {
      ++stale_rejections_;
      if (trace_on) {
        trace_point("net", "stale", to, round,
                    "from=" + std::to_string(msg.from) +
                        " batch=" + std::to_string(msg.batch),
                    st.id);
      }
      return;
    }
    next[to].push_back(std::move(msg));
  };
  if (injector_ != nullptr) {
    // Delay-fault arrivals merge in ahead of this round's fresh traffic;
    // the (from, tag) stable sort below interleaves them deterministically.
    const auto due = st.delayed.find(round);
    if (due != st.delayed.end()) {
      for (auto& d : due->second) admit(d.to, std::move(d.msg));
      st.delayed.erase(due);
    }
  }
  for (PartyIo* p : st.members) {
    if (p == nullptr) continue;
    for (auto& env : p->staged_buffer()) {
      if (env.to != env.msg.from) {
        ++comm_.messages;
        comm_.bytes += env.msg.body.size() + kHeaderBytes;
      }
      if (injector_ != nullptr && env.to != env.msg.from) {
        // Self-deliveries are not links and are never faulted.
        const FaultCounters faults_before = faults_;
        const int from = env.msg.from;
        const std::uint32_t tag = env.msg.tag;
        std::vector<Msg> routed;
        injector_->route(round, env.to, std::move(env.msg), routed,
                         st.delayed, faults_);
        for (Msg& m : routed) admit(env.to, std::move(m));
        if (trace_on) {
          const FaultCounters delta = faults_ - faults_before;
          if (delta.total() != 0) {
            TraceEvent ev;
            ev.kind = TraceEventKind::kPoint;
            ev.protocol = "net";
            ev.phase = "fault";
            ev.player = env.to;
            ev.batch = st.id;
            ev.round_begin = ev.round_end = round;
            ev.faults = delta;
            ev.detail = "from=" + std::to_string(from) +
                        " tag=" + std::to_string(tag);
            tracer().record(std::move(ev));
          }
        }
      } else {
        admit(env.to, std::move(env.msg));
      }
    }
    p->staged_buffer().clear();
  }
  ++comm_.rounds;
  if (trace_on) {
    // Round-advance marker, stamped with the exchange's delivered totals.
    TraceEvent ev;
    ev.kind = TraceEventKind::kPoint;
    ev.protocol = "net";
    ev.phase = "round";
    ev.player = -1;
    ev.batch = st.id;
    ev.round_begin = ev.round_end = round;
    ev.comm = comm_ - comm_before;
    tracer().record(std::move(ev));
  }
  for (int i = 0; i < n_; ++i) {
    if (st.members[i] == nullptr) continue;  // never joined this stream
    // Stable by send order; sort by (from, tag) so same-sender same-tag
    // duplicates are adjacent and ordering is deterministic.
    std::stable_sort(next[i].begin(), next[i].end(),
                     [](const Msg& a, const Msg& b) {
                       return a.from != b.from ? a.from < b.from
                                               : a.tag < b.tag;
                     });
    st.members[i]->deliver(Inbox{std::move(next[i])});
  }
}

void Cluster::arrive_and_exchange(PartyIo& party) {
  {
    std::unique_lock lk(mu_);
    RoundStream& st = streams_.at(party.stream_);
    ++st.waiting;
    if (st.waiting == expected_) {
      do_exchange(st);
      st.waiting = 0;
      ++st.generation;
      cv_.notify_all();
    } else {
      const std::uint64_t gen = st.generation;
      cv_.wait(lk, [&] { return st.generation != gen; });
    }
  }
  if (round_latency_us_ != 0) {
    // One simulated network traversal per round, paid by every member
    // concurrently (outside the lock, so other streams keep exchanging —
    // this is what overlapped batches hide).
    std::this_thread::sleep_for(std::chrono::microseconds(round_latency_us_));
  }
}

void Cluster::drop() {
  std::unique_lock lk(mu_);
  --expected_;
  if (expected_ <= 0) return;
  // A stream's waiting counts worker threads, not players, so several
  // batch streams can simultaneously sit at waiting == expected_ when a
  // player drops mid-pipeline (e.g. a crashed player never opens its
  // per-batch handles and every in-flight stream is parked at n-1
  // waiters). Fire them all: each fired stream's waiting resets to 0 and
  // its waiters cannot re-arrive while mu_ is held, so one pass
  // suffices.
  bool fired = false;
  for (auto& [sid, st] : streams_) {
    if (st.waiting > 0 && st.waiting == expected_) {
      do_exchange(st);
      st.waiting = 0;
      ++st.generation;
      fired = true;
    }
  }
  if (fired) cv_.notify_all();
}

std::vector<CommCounters> Cluster::per_player_comm() const {
  std::vector<CommCounters> out;
  out.reserve(parties_.size());
  for (const auto& p : parties_) out.push_back(p->sent());
  for (const auto& [key, io] : instances_) out[key.first] += io->sent();
  return out;
}

void Cluster::run(std::vector<Program> programs) {
  DPRBG_CHECK(static_cast<int>(programs.size()) == n_);
  {
    std::unique_lock lk(mu_);
    expected_ = n_;
    for (auto& [sid, st] : streams_) st.waiting = 0;
  }
  per_player_field_ops_.assign(n_, FieldCounters{});

  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::thread> threads;
  threads.reserve(n_);
  for (int i = 0; i < n_; ++i) {
    threads.emplace_back([&, i] {
      const FieldCounters before = field_counters();
      try {
        programs[i](*parties_[i]);
      } catch (...) {
        std::lock_guard g(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      per_player_field_ops_[i] = field_counters() - before;
      drop();
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& ops : per_player_field_ops_) field_ops_ += ops;
  if (first_error) std::rethrow_exception(first_error);
}

void Cluster::run(const Program& honest, const std::vector<int>& faulty,
                  const Program& adversary) {
  std::vector<Program> programs(n_);
  for (int i = 0; i < n_; ++i) programs[i] = honest;
  for (int id : faulty) {
    DPRBG_CHECK(id >= 0 && id < n_);
    programs[id] = adversary ? adversary : [](PartyIo&) {};  // crash fault
  }
  run(std::move(programs));
}

}  // namespace dprbg
