#include "net/cluster.h"

#include <algorithm>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/trace.h"

namespace dprbg {

namespace {

// Approximate wire overhead per message (sender id + tag + length), used
// for byte accounting only.
constexpr std::uint64_t kHeaderBytes = 12;

}  // namespace

int PartyIo::n() const { return cluster_.n(); }
int PartyIo::t() const { return cluster_.t(); }

void PartyIo::send(int to, std::uint32_t tag,
                   std::vector<std::uint8_t> body) {
  if (to < 0 || to >= cluster_.n()) return;
  if (to != id_) {
    ++sent_.messages;
    sent_.bytes += body.size() + kHeaderBytes;
    if (tracer().enabled()) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kPoint;
      ev.protocol = "net";
      ev.phase = "send";
      ev.player = id_;
      ev.round_begin = ev.round_end = sent_.rounds;
      ev.comm.messages = 1;
      ev.comm.bytes = body.size() + kHeaderBytes;
      ev.detail = "to=" + std::to_string(to) +
                  " tag=" + std::to_string(tag);
      tracer().record(std::move(ev));
    }
  }
  staged_.push_back(Envelope{to, Msg{id_, tag, std::move(body)}});
}

void PartyIo::send_all(std::uint32_t tag,
                       const std::vector<std::uint8_t>& body) {
  for (int to = 0; to < cluster_.n(); ++to) {
    send(to, tag, body);
  }
}

const Inbox& PartyIo::sync() {
  cluster_.arrive_and_exchange();
  ++sent_.rounds;
  return inbox_;
}

Cluster::Cluster(int n, int t, std::uint64_t seed)
    : n_(n), t_(t), seed_(seed) {
  DPRBG_CHECK(n >= 1 && t >= 0 && t < n);
  parties_.reserve(n);
  for (int i = 0; i < n; ++i) {
    parties_.push_back(std::unique_ptr<PartyIo>(new PartyIo(*this, i, seed)));
  }
}

void Cluster::do_exchange() {
  // Runs with mu_ held, all active threads quiescent. Collect every staged
  // envelope, account communication, and deliver sorted inboxes.
  std::vector<std::vector<Msg>> next(n_);
  const std::uint64_t round = exchange_index_++;
  const bool trace_on = tracer().enabled();
  const CommCounters comm_before = comm_;
  if (injector_ != nullptr) {
    // Delay-fault arrivals merge in ahead of this round's fresh traffic;
    // the (from, tag) stable sort below interleaves them deterministically.
    const auto due = delayed_.find(round);
    if (due != delayed_.end()) {
      for (auto& d : due->second) next[d.to].push_back(std::move(d.msg));
      delayed_.erase(due);
    }
  }
  for (auto& p : parties_) {
    for (auto& env : p->staged_buffer()) {
      if (env.to != env.msg.from) {
        ++comm_.messages;
        comm_.bytes += env.msg.body.size() + kHeaderBytes;
      }
      if (injector_ != nullptr && env.to != env.msg.from) {
        // Self-deliveries are not links and are never faulted.
        const FaultCounters faults_before = faults_;
        const int from = env.msg.from;
        const std::uint32_t tag = env.msg.tag;
        injector_->route(round, env.to, std::move(env.msg), next[env.to],
                         delayed_, faults_);
        if (trace_on) {
          const FaultCounters delta = faults_ - faults_before;
          if (delta.total() != 0) {
            TraceEvent ev;
            ev.kind = TraceEventKind::kPoint;
            ev.protocol = "net";
            ev.phase = "fault";
            ev.player = env.to;
            ev.round_begin = ev.round_end = round;
            ev.faults = delta;
            ev.detail = "from=" + std::to_string(from) +
                        " tag=" + std::to_string(tag);
            tracer().record(std::move(ev));
          }
        }
      } else {
        next[env.to].push_back(std::move(env.msg));
      }
    }
    p->staged_buffer().clear();
  }
  ++comm_.rounds;
  if (trace_on) {
    // Round-advance marker, stamped with the exchange's delivered totals.
    TraceEvent ev;
    ev.kind = TraceEventKind::kPoint;
    ev.protocol = "net";
    ev.phase = "round";
    ev.player = -1;
    ev.round_begin = ev.round_end = round;
    ev.comm = comm_ - comm_before;
    tracer().record(std::move(ev));
  }
  for (int i = 0; i < n_; ++i) {
    // Stable by send order; sort by (from, tag) so same-sender same-tag
    // duplicates are adjacent and ordering is deterministic.
    std::stable_sort(next[i].begin(), next[i].end(),
                     [](const Msg& a, const Msg& b) {
                       return a.from != b.from ? a.from < b.from
                                               : a.tag < b.tag;
                     });
    parties_[i]->deliver(Inbox{std::move(next[i])});
  }
}

void Cluster::arrive_and_exchange() {
  std::unique_lock lk(mu_);
  ++waiting_;
  if (waiting_ == expected_) {
    do_exchange();
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    const std::uint64_t gen = generation_;
    cv_.wait(lk, [&] { return generation_ != gen; });
  }
}

void Cluster::drop() {
  std::unique_lock lk(mu_);
  --expected_;
  if (expected_ > 0 && waiting_ == expected_) {
    do_exchange();
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  }
}

void Cluster::run(std::vector<Program> programs) {
  DPRBG_CHECK(static_cast<int>(programs.size()) == n_);
  {
    std::unique_lock lk(mu_);
    expected_ = n_;
    waiting_ = 0;
  }
  per_player_field_ops_.assign(n_, FieldCounters{});

  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::thread> threads;
  threads.reserve(n_);
  for (int i = 0; i < n_; ++i) {
    threads.emplace_back([&, i] {
      const FieldCounters before = field_counters();
      try {
        programs[i](*parties_[i]);
      } catch (...) {
        std::lock_guard g(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      per_player_field_ops_[i] = field_counters() - before;
      drop();
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& ops : per_player_field_ops_) field_ops_ += ops;
  if (first_error) std::rethrow_exception(first_error);
}

void Cluster::run(const Program& honest, const std::vector<int>& faulty,
                  const Program& adversary) {
  std::vector<Program> programs(n_);
  for (int i = 0; i < n_; ++i) programs[i] = honest;
  for (int id : faulty) {
    DPRBG_CHECK(id >= 0 && id < n_);
    programs[id] = adversary ? adversary : [](PartyIo&) {};  // crash fault
  }
  run(std::move(programs));
}

}  // namespace dprbg
