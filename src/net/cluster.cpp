#include "net/cluster.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/trace.h"

namespace dprbg {

namespace {

// Exact wire overhead per message under the active wire version, used
// for byte accounting. v0 is the historical fixed 14-byte header
// (kV0HeaderBytes: sender id + tag + batch id + length; batch is a
// uint16 on the wire — ids grow monotonically without reuse, so the
// bound is enforced by a DPRBG_CHECK in instance_io rather than
// assumed). v1 charges the varint-framed header (net/msg.h), which is
// what the byte-savings rows in bench/field_ops measure.
std::uint64_t envelope_overhead(int from, std::uint32_t tag,
                                std::uint32_t batch, std::size_t body_len,
                                WireVersion v) {
  if (v == WireVersion::kV0) return kV0HeaderBytes;
  EnvelopeHeader h;
  h.from = static_cast<std::uint32_t>(from);
  h.tag = tag;
  h.batch = batch;
  h.body_len = static_cast<std::uint32_t>(body_len);
  return envelope_header_bytes(h, v);
}

}  // namespace

int PartyIo::n() const { return cluster_.n(); }
int PartyIo::t() const { return cluster_.t(); }

std::uint32_t PartyIo::committee() const {
  return cluster_.committee_of(stream_);
}

PartyIo& PartyIo::instance(std::uint32_t batch) {
  if (batch == 0 || batch == stream_) return *this;
  return cluster_.instance_io(id_, batch);
}

void PartyIo::send(int to, std::uint32_t tag,
                   std::vector<std::uint8_t> body) {
  if (to < 0 || to >= cluster_.n()) return;
  if (to != id_) {
    const std::uint64_t overhead =
        envelope_overhead(id_, tag, stream_, body.size(), wire_version());
    ++sent_.messages;
    sent_.bytes += body.size() + overhead;
    if (tracer().enabled()) {
      // Net events carry the domain-local batch id (global stream minus
      // the domain's base) plus the committee id, matching the ids the
      // protocol spans above them use. The default domain starts at 0,
      // so unsharded traces are unchanged.
      const auto& dom = cluster_.domain_of(stream_);
      TraceEvent ev;
      ev.kind = TraceEventKind::kPoint;
      ev.protocol = "net";
      ev.phase = "send";
      ev.player = id_;
      ev.batch = stream_ - dom.first_stream;
      ev.committee = dom.committee;
      ev.round_begin = ev.round_end = sent_.rounds;
      ev.comm.messages = 1;
      ev.comm.bytes = body.size() + overhead;
      ev.detail = "to=" + std::to_string(to) +
                  " tag=" + std::to_string(tag);
      tracer().record(std::move(ev));
    }
  }
  Msg msg;
  msg.from = id_;
  msg.tag = tag;
  msg.batch = stream_;
  msg.body = std::move(body);
  staged_.push_back(Envelope{to, std::move(msg)});
}

void PartyIo::send_all(std::uint32_t tag,
                       const std::vector<std::uint8_t>& body) {
  for (int to = 0; to < cluster_.n(); ++to) {
    send(to, tag, body);
  }
}

const Inbox& PartyIo::sync() {
  cluster_.arrive_and_exchange(*this);
  ++sent_.rounds;
  return inbox_;
}

void PartyIo::note_decode_failure(int from) {
  cluster_.note_decode_failure(stream_, id_, from);
}

Cluster::Cluster(int n, int t, std::uint64_t seed)
    : n_(n), t_(t), seed_(seed) {
  DPRBG_CHECK(n >= 1 && t >= 0 && t < n);
  active_.assign(n, 1);
  parties_.reserve(n);
  RoundStream& root = streams_[0];
  root.id = 0;
  root.members.assign(n, nullptr);
  root.domain = &default_domain_;
  for (int i = 0; i < n; ++i) {
    parties_.push_back(
        std::unique_ptr<PartyIo>(new PartyIo(*this, i, seed, 0)));
    root.members[i] = parties_.back().get();
  }
}

Cluster::StreamDomain& Cluster::domain_of(std::uint32_t stream) {
  for (auto& d : domains_) {
    if (stream >= d->first_stream &&
        stream - d->first_stream < d->stream_count) {
      return *d;
    }
  }
  return default_domain_;
}

const Cluster::StreamDomain& Cluster::domain_of(std::uint32_t stream) const {
  return const_cast<Cluster*>(this)->domain_of(stream);
}

std::uint32_t Cluster::committee_of(std::uint32_t stream) const {
  return domain_of(stream).committee;
}

int Cluster::stream_expected(const RoundStream& st) const {
  const StreamDomain& d = *st.domain;
  if (d.roster.empty()) return expected_;
  int count = 0;
  for (int i = 0; i < n_; ++i) {
    if (d.roster[static_cast<std::size_t>(i)] != 0 && active_[i] != 0) {
      ++count;
    }
  }
  return count;
}

void Cluster::register_stream_domain(std::uint32_t committee,
                                     std::uint32_t first_stream,
                                     std::uint32_t stream_count,
                                     const std::vector<int>& members) {
  std::lock_guard lk(mu_);
  DPRBG_CHECK(expected_ == 0);  // never while run() is active
  DPRBG_CHECK(stream_count > 0);
  DPRBG_CHECK(!members.empty());
  auto dom = std::make_unique<StreamDomain>();
  dom->committee = committee;
  dom->first_stream = first_stream;
  dom->stream_count = stream_count;
  dom->roster.assign(static_cast<std::size_t>(n_), 0);
  for (int m : members) {
    DPRBG_CHECK(m >= 0 && m < n_);
    DPRBG_CHECK(dom->roster[static_cast<std::size_t>(m)] == 0);
    dom->roster[static_cast<std::size_t>(m)] = 1;
  }
  for (const auto& d : domains_) {
    DPRBG_CHECK(d->committee != committee);
    const bool disjoint =
        first_stream + stream_count <= d->first_stream ||
        d->first_stream + d->stream_count <= first_stream;
    DPRBG_CHECK(disjoint);
  }
  // Re-point already-opened streams in range (the root stream exists from
  // construction); only legal while the stream is still untouched, since
  // changing a live stream's roster would corrupt its barrier.
  for (auto& [sid, st] : streams_) {
    if (sid >= first_stream && sid - first_stream < stream_count) {
      DPRBG_CHECK(st.exchange_index == 0 && st.waiting == 0);
      st.domain = dom.get();
    }
  }
  domains_.push_back(std::move(dom));
}

void Cluster::set_domain_fault_injector(
    std::uint32_t committee, std::shared_ptr<const FaultInjector> injector) {
  std::lock_guard lk(mu_);
  DPRBG_CHECK(expected_ == 0);
  for (auto& d : domains_) {
    if (d->committee == committee) {
      d->injector = std::move(injector);
      return;
    }
  }
  DPRBG_CHECK(committee == 0);  // default domain: use set_fault_injector
  default_domain_.injector = std::move(injector);
}

const FaultCounters& Cluster::domain_faults(std::uint32_t committee) const {
  for (const auto& d : domains_) {
    if (d->committee == committee) return d->faults;
  }
  DPRBG_CHECK(committee == 0);
  return default_domain_.faults;
}

Cluster::DomainLedger Cluster::domain_ledger(std::uint32_t committee) const {
  std::lock_guard lk(mu_);
  const StreamDomain* dom = nullptr;
  for (const auto& d : domains_) {
    if (d->committee == committee) {
      dom = d.get();
      break;
    }
  }
  if (dom == nullptr) {
    DPRBG_CHECK(committee == 0);
    dom = &default_domain_;
  }
  return DomainLedger{dom->faults, dom->stale,  dom->foreign,
                      dom->decode, dom->slow, dom->banned};
}

void Cluster::set_misbehavior_manager(std::shared_ptr<MisbehaviorManager> mgr) {
  std::lock_guard lk(mu_);
  DPRBG_CHECK(expected_ == 0);  // never while run() is active
  if (mgr != nullptr) DPRBG_CHECK(mgr->n() == n_);
  misbehavior_ = std::move(mgr);
}

void Cluster::note_decode_failure(std::uint32_t stream, int reporter,
                                  int from) {
  if (from < 0 || from >= n_ || from == reporter) return;
  std::lock_guard lk(mu_);
  StreamDomain& dom = domain_of(stream);
  ++decode_rejections_;
  ++dom.decode;
  if (telemetry_enabled()) {
    ensure_domain_telemetry(dom);
    dom.tel_decode->add(1);
  }
  if (tracer().enabled()) {
    // Round stamp: the stream's exchange count (the inbox being decoded
    // was delivered by the previous exchange).
    std::uint64_t round = 0;
    const auto it = streams_.find(stream);
    if (it != streams_.end()) round = it->second.exchange_index;
    trace_point("net", "decode_reject", reporter, round,
                "from=" + std::to_string(from), stream - dom.first_stream,
                dom.committee);
  }
  if (misbehavior_ != nullptr) {
    misbehavior_->report(from, MisbehaviorSignal::kDecodeFailure);
  }
}

void Cluster::set_domain_round_latency_us(std::uint32_t committee, int us) {
  std::lock_guard lk(mu_);
  DPRBG_CHECK(expected_ == 0);  // never while run() is active
  for (auto& d : domains_) {
    if (d->committee == committee) {
      d->round_latency_us = us;
      return;
    }
  }
  DPRBG_CHECK(committee == 0);
  default_domain_.round_latency_us = us;
}

PartyIo& Cluster::instance_io(int player, std::uint32_t batch) {
  // The v0 wire header encodes the stream id as a uint16 (kV0HeaderBytes
  // in net/msg.h); every nonzero-stream envelope is staged via a handle created
  // here, so checking at this choke point enforces the claim for all
  // traffic. Batch ids grow monotonically without reuse (DPrbg never
  // recycles them), so a long-running instance hits this loudly instead
  // of silently breaking the byte accounting.
  DPRBG_CHECK(batch <= 0xFFFF);
  std::lock_guard lk(mu_);
  StreamDomain& dom = domain_of(batch);
  // A player may only open handles on streams whose domain roster
  // includes it — this is what keeps committee traffic inside the
  // committee (the admit()-time foreign check is only a backstop).
  DPRBG_CHECK(in_roster(dom, player));
  const auto key = std::make_pair(player, batch);
  auto it = instances_.find(key);
  if (it == instances_.end()) {
    it = instances_
             .emplace(key, std::unique_ptr<PartyIo>(
                               new PartyIo(*this, player, seed_, batch)))
             .first;
    RoundStream& st = streams_[batch];
    st.id = batch;
    st.domain = &dom;
    if (st.members.empty()) st.members.assign(n_, nullptr);
    st.members[player] = it->second.get();
  }
  return *it->second;
}

PartyIo& Cluster::handle(int player, std::uint32_t stream) {
  DPRBG_CHECK(player >= 0 && player < n_);
  if (stream == 0) return *parties_[static_cast<std::size_t>(player)];
  return instance_io(player, stream);
}

void Cluster::ensure_domain_telemetry(StreamDomain& dom) {
  // Called with mu_ held and telemetry enabled; the cached pointers stay
  // valid for the process lifetime (registry never destroys instruments).
  if (dom.tel_messages != nullptr) return;
  const std::string l = "committee=" + std::to_string(dom.committee);
  MetricsRegistry& reg = metrics();
  dom.tel_messages = &reg.counter("net_domain_messages_total", l);
  dom.tel_bytes = &reg.counter("net_domain_bytes_total", l);
  dom.tel_stale = &reg.counter("net_stale_rejections_total", l);
  dom.tel_foreign = &reg.counter("net_foreign_rejections_total", l);
  dom.tel_faults = &reg.counter("net_fault_effects_total", l);
  dom.tel_decode = &reg.counter("net_decode_rejections_total", l);
  dom.tel_slow = &reg.counter("net_slow_envelopes_total", l);
  dom.tel_banned = &reg.counter("net_banned_suppressed_total", l);
}

void Cluster::do_exchange(RoundStream& st) {
  // Runs with mu_ held, all roster threads quiescent on this stream.
  // Collect every staged envelope of the stream's members, account
  // communication, and deliver sorted inboxes. `next` is the cluster's
  // reused routing scratch; clearing up front also drops any leftovers
  // admitted last round for members that never joined (the delivery loop
  // below skips those, exactly as the old fresh-vector code did).
  std::vector<std::vector<Msg>>& next = exchange_scratch_;
  next.resize(static_cast<std::size_t>(n_));
  for (auto& v : next) v.clear();
  const std::uint64_t round = st.exchange_index++;
  const bool trace_on = tracer().enabled();
  const bool tel_on = telemetry_enabled();
  const CommCounters comm_before = comm_;
  StreamDomain& dom = *st.domain;
  if (tel_on) ensure_domain_telemetry(dom);
  // Trace events carry the domain-local batch id; the default domain
  // starts at 0, so unsharded traces are unchanged.
  const std::uint32_t local_batch = st.id - dom.first_stream;
  // The injector consulted for this stream: the domain's own, falling
  // back to the cluster-wide one.
  const FaultInjector* inj =
      dom.injector != nullptr ? dom.injector.get() : injector_.get();
  MisbehaviorManager* mgr = misbehavior_.get();
  const WireVersion wv = wire_version();
  // Demux guard shared by delayed and fresh traffic: an envelope may
  // only surface in the stream it was sent on, and only between roster
  // members of the stream's domain. PartyIo stamps Msg::batch, the delay
  // queue is per-stream, and handles are roster-guarded at creation, so
  // a mismatch means a wiring bug — reject (count, don't deliver) rather
  // than misdeliver.
  auto admit = [&](int to, Msg&& msg) {
    if (msg.batch != st.id) {
      ++stale_rejections_;
      ++dom.stale;
      if (tel_on) dom.tel_stale->add(1);
      if (mgr != nullptr) {
        mgr->report(msg.from, MisbehaviorSignal::kStaleFlood);
      }
      if (trace_on) {
        trace_point("net", "stale", to, round,
                    "from=" + std::to_string(msg.from) +
                        " batch=" + std::to_string(msg.batch),
                    local_batch, dom.committee);
      }
      return;
    }
    if (!in_roster(dom, msg.from) || !in_roster(dom, to)) {
      ++foreign_rejections_;
      ++dom.foreign;
      if (tel_on) dom.tel_foreign->add(1);
      if (mgr != nullptr) {
        mgr->report(msg.from, MisbehaviorSignal::kForeignTraffic);
      }
      if (trace_on) {
        trace_point("net", "foreign", to, round,
                    "from=" + std::to_string(msg.from), local_batch,
                    dom.committee);
      }
      return;
    }
    // Ban suppression is the last gate before delivery: the envelope has
    // already been charged to comm and the fault ledgers (so every
    // reconciliation still balances), it just never reaches an inbox.
    // Self-deliveries are exempt — a banned peer keeps its loopback.
    if (mgr != nullptr && to != msg.from && mgr->banned(msg.from)) {
      ++banned_suppressions_;
      ++dom.banned;
      if (tel_on) dom.tel_banned->add(1);
      mgr->note_suppressed(msg.from);
      if (trace_on) {
        trace_point("net", "banned", to, round,
                    "from=" + std::to_string(msg.from), local_batch,
                    dom.committee);
      }
      return;
    }
    next[to].push_back(std::move(msg));
  };
  if (inj != nullptr) {
    // Delay-fault arrivals merge in ahead of this round's fresh traffic;
    // the (from, tag) stable sort below interleaves them deterministically.
    // Each merged envelope is, by construction, at least one round late —
    // that is the barrier-stall observation the misbehavior layer scores
    // as kSlowEnvelope, charged to the sender (consistent with the fault
    // model: delays on a link are attributed to the charged player).
    const auto due = st.delayed.find(round);
    if (due != st.delayed.end()) {
      for (auto& d : due->second) {
        ++slow_envelopes_;
        ++dom.slow;
        if (tel_on) dom.tel_slow->add(1);
        if (mgr != nullptr) {
          mgr->report(d.msg.from, MisbehaviorSignal::kSlowEnvelope);
        }
        admit(d.to, std::move(d.msg));
      }
      st.delayed.erase(due);
    }
  }
  for (int sender = 0; sender < n_; ++sender) {
    PartyIo* p = st.members[sender];
    if (p == nullptr || !in_roster(dom, sender)) continue;
    for (auto& env : p->staged_buffer()) {
      if (env.to != env.msg.from) {
        ++comm_.messages;
        comm_.bytes += env.msg.body.size() +
                       envelope_overhead(env.msg.from, env.msg.tag,
                                         env.msg.batch, env.msg.body.size(),
                                         wv);
      }
      if (inj != nullptr && env.to != env.msg.from) {
        // Self-deliveries are not links and are never faulted.
        const FaultCounters faults_before = faults_;
        const int from = env.msg.from;
        const std::uint32_t tag = env.msg.tag;
        std::vector<Msg> routed;
        inj->route(round, env.to, std::move(env.msg), routed, st.delayed,
                   faults_);
        for (Msg& m : routed) admit(env.to, std::move(m));
        const FaultCounters delta = faults_ - faults_before;
        if (delta.total() != 0) {
          // Every effect is charged to the stream's domain as well, so
          // per-committee fault ledgers sum to faults() exactly.
          dom.faults += delta;
          if (tel_on) dom.tel_faults->add(delta.total());
          if (trace_on) {
            TraceEvent ev;
            ev.kind = TraceEventKind::kPoint;
            ev.protocol = "net";
            ev.phase = "fault";
            ev.player = env.to;
            ev.batch = local_batch;
            ev.committee = dom.committee;
            ev.round_begin = ev.round_end = round;
            ev.faults = delta;
            ev.detail = "from=" + std::to_string(from) +
                        " tag=" + std::to_string(tag);
            tracer().record(std::move(ev));
          }
        }
      } else {
        admit(env.to, std::move(env.msg));
      }
    }
    p->staged_buffer().clear();
  }
  ++comm_.rounds;
  if (tel_on) {
    const CommCounters delivered = comm_ - comm_before;
    dom.tel_messages->add(delivered.messages);
    dom.tel_bytes->add(delivered.bytes);
  }
  if (trace_on) {
    // Round-advance marker, stamped with the exchange's delivered totals.
    TraceEvent ev;
    ev.kind = TraceEventKind::kPoint;
    ev.protocol = "net";
    ev.phase = "round";
    ev.player = -1;
    ev.batch = local_batch;
    ev.committee = dom.committee;
    ev.round_begin = ev.round_end = round;
    ev.comm = comm_ - comm_before;
    tracer().record(std::move(ev));
  }
  for (int i = 0; i < n_; ++i) {
    if (st.members[i] == nullptr) continue;  // never joined this stream
    if (!in_roster(dom, i)) continue;        // outside the domain roster
    // Stable by send order; sort by (from, tag) so same-sender same-tag
    // duplicates are adjacent and ordering is deterministic.
    std::stable_sort(next[i].begin(), next[i].end(),
                     [](const Msg& a, const Msg& b) {
                       return a.from != b.from ? a.from < b.from
                                               : a.tag < b.tag;
                     });
    st.members[i]->deliver(Inbox{std::move(next[i])});
  }
}

void Cluster::arrive_and_exchange(PartyIo& party) {
  unsigned latency = round_latency_us_;
  {
    std::unique_lock lk(mu_);
    RoundStream& st = streams_.at(party.stream_);
    // A handle may only drive a stream whose domain roster includes its
    // player (instance_io already guards creation; this catches root
    // handles syncing on a stream 0 that a committee claimed).
    DPRBG_CHECK(in_roster(*st.domain, party.id_));
    if (st.domain->round_latency_us >= 0) {
      latency = static_cast<unsigned>(st.domain->round_latency_us);
    }
    ++st.waiting;
    if (st.waiting == stream_expected(st)) {
      do_exchange(st);
      st.waiting = 0;
      ++st.generation;
      cv_.notify_all();
    } else {
      const std::uint64_t gen = st.generation;
      // Barrier wait time as seen by the waiting (non-exchanging)
      // threads — the operator's backpressure signal. Clock reads only
      // when telemetry is on; cv_.wait reacquires mu_, so the cached
      // histogram pointer is read and filled under the lock.
      TelemetryClock::time_point t0;
      const bool tel_on = telemetry_enabled();
      if (tel_on) t0 = TelemetryClock::now();
      cv_.wait(lk, [&] { return st.generation != gen; });
      if (tel_on) {
        if (tel_barrier_wait_ == nullptr) {
          tel_barrier_wait_ = &metrics().histogram("net_barrier_wait_us");
        }
        tel_barrier_wait_->observe(telemetry_elapsed_us(t0));
      }
    }
  }
  if (latency != 0) {
    // One simulated network traversal per round, paid by every member
    // concurrently (outside the lock, so other streams keep exchanging —
    // this is what overlapped batches hide).
    std::this_thread::sleep_for(std::chrono::microseconds(latency));
  }
}

void Cluster::drop(int player) {
  std::unique_lock lk(mu_);
  active_[static_cast<std::size_t>(player)] = 0;
  --expected_;
  if (expected_ <= 0) return;
  // A stream's waiting counts worker threads, not players, so several
  // batch streams can simultaneously reach their (now reduced) expected
  // count when a player drops mid-pipeline (e.g. a crashed player never
  // opens its per-batch handles and every in-flight stream is parked at
  // one short of full). Fire them all: each fired stream's waiting
  // resets to 0 and its waiters cannot re-arrive while mu_ is held, so
  // one pass suffices. Streams whose roster never contained the dropped
  // player keep their expected count and are left alone.
  bool fired = false;
  for (auto& [sid, st] : streams_) {
    if (st.waiting > 0 && st.waiting == stream_expected(st)) {
      do_exchange(st);
      st.waiting = 0;
      ++st.generation;
      fired = true;
    }
  }
  if (fired) cv_.notify_all();
}

void Cluster::publish_comm_telemetry() {
  if (!telemetry_enabled()) return;
  const std::vector<CommCounters> now = per_player_comm();
  if (published_comm_.size() < now.size()) {
    published_comm_.resize(now.size());
  }
  MetricsRegistry& reg = metrics();
  for (std::size_t i = 0; i < now.size(); ++i) {
    const CommCounters delta = now[i] - published_comm_[i];
    const std::string l = "player=" + std::to_string(i);
    reg.counter("net_player_messages_total", l).add(delta.messages);
    reg.counter("net_player_bytes_total", l).add(delta.bytes);
    published_comm_[i] = now[i];
  }
}

std::vector<CommCounters> Cluster::per_player_comm() const {
  std::vector<CommCounters> out;
  out.reserve(parties_.size());
  for (const auto& p : parties_) out.push_back(p->sent());
  for (const auto& [key, io] : instances_) out[key.first] += io->sent();
  return out;
}

void Cluster::run(std::vector<Program> programs) {
  DPRBG_CHECK(static_cast<int>(programs.size()) == n_);
  {
    std::unique_lock lk(mu_);
    expected_ = n_;
    active_.assign(static_cast<std::size_t>(n_), 1);
    for (auto& [sid, st] : streams_) st.waiting = 0;
  }
  per_player_field_ops_.assign(n_, FieldCounters{});

  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::thread> threads;
  threads.reserve(n_);
  for (int i = 0; i < n_; ++i) {
    threads.emplace_back([&, i] {
      const FieldCounters before = field_counters();
      try {
        programs[i](*parties_[i]);
      } catch (...) {
        std::lock_guard g(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      per_player_field_ops_[i] = field_counters() - before;
      drop(i);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& ops : per_player_field_ops_) field_ops_ += ops;
  if (first_error) std::rethrow_exception(first_error);
}

void Cluster::run(const Program& honest, const std::vector<int>& faulty,
                  const Program& adversary) {
  std::vector<Program> programs(n_);
  for (int i = 0; i < n_; ++i) programs[i] = honest;
  for (int id : faulty) {
    DPRBG_CHECK(id >= 0 && id < n_);
    programs[id] = adversary ? adversary : [](PartyIo&) {};  // crash fault
  }
  run(std::move(programs));
}

}  // namespace dprbg
