// The endpoint abstraction every protocol is written against.
//
// The paper's protocols (VSS, Bit-Gen, Coin-Gen, the BA family) are
// fixed-n cliques: they care about "my index among n players", not about
// which transport those players live on. `NetEndpoint` captures exactly
// the surface the protocol entry points use — identity (id/n/t), per-
// handle randomness, the lockstep round API (send/send_all/sync/inbox),
// per-batch instances, and the accounting hooks TraceSpan reads — so the
// same template body runs unchanged over:
//
//   * `net::PartyIo`  — a player's raw handle on the concrete Cluster
//     (the historical single-committee case), and
//   * `net::Endpoint` — a committee-local view (net/committee.h) that
//     remaps a committee's member indices onto a slice of a larger
//     cluster's players and round streams.
//
// Keeping this a concept (mirroring the `FiniteField` concept in
// gf/field.h) rather than a virtual interface keeps the per-message hot
// path free of dispatch and lets each Io type return its own concrete
// references from `instance()`.

#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "net/msg.h"
#include "rng/chacha.h"

namespace dprbg {

template <typename Io>
concept NetEndpoint =
    requires(Io& io, const Io& cio, int to, std::uint32_t tag,
             std::uint32_t batch, std::vector<std::uint8_t> body) {
      // Identity: my index in [0, n), the clique size, the fault bound.
      { cio.id() } -> std::convertible_to<int>;
      { cio.n() } -> std::convertible_to<int>;
      { cio.t() } -> std::convertible_to<int>;
      // Per-(player, stream) deterministic randomness.
      { io.rng() } -> std::same_as<Chacha&>;
      // The round stream this handle drives (0: the endpoint's root) and
      // the committee/stream-domain it belongs to (0: default/whole
      // cluster). TraceSpan stamps both onto every span.
      { cio.stream() } -> std::convertible_to<std::uint32_t>;
      { cio.committee() } -> std::convertible_to<std::uint32_t>;
      // The sibling handle for round stream `batch` (same identity,
      // independent rng/inbox/round counter); `instance(0)` is `io`.
      { io.instance(batch) } -> std::same_as<Io&>;
      // Lockstep messaging: point-to-point send, all-player announce,
      // barrier + delivery, and the last delivered inbox.
      io.send(to, tag, std::move(body));
      io.send_all(tag, body);
      { io.sync() } -> std::same_as<const Inbox&>;
      { cio.inbox() } -> std::same_as<const Inbox&>;
      // Misbehavior feedback: report that the last-delivered message from
      // player `to` (an index in this endpoint's clique) failed protocol
      // decoding. Transports attribute and score it (net/misbehavior.h);
      // a no-op transport is a valid model.
      io.note_decode_failure(to);
      // Accounting: staged communication and completed rounds, as
      // consumed by TraceSpan (common/trace.h).
      { cio.sent() } -> std::same_as<const CommCounters&>;
      { cio.rounds() } -> std::convertible_to<std::uint64_t>;
    };

}  // namespace dprbg
