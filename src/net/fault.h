// Deterministic link-fault injection for the synchronous cluster.
//
// The paper's model (Section 2) assumes reliable private channels: every
// message staged in round r arrives intact in round r+1. Real networks
// lose, delay, duplicate, and corrupt traffic. This module lets tests and
// benchmarks subject the cluster to exactly those failures while keeping
// the paper's guarantees checkable, via *attribution*: every faulted link
// must be adjacent to a player in the plan's "charged" set. A lossy link
// next to player c is indistinguishable (to everyone else) from c being
// Byzantine — dropping c's outgoing message is c staying silent,
// corrupting it is c lying, delaying it is c sending stale traffic, and
// faults on c's incoming links are c ignoring what it was sent. So as
// long as the charged set has size <= t, Lemmas 1-8 must still hold for
// the players *outside* it, and the chaos harness asserts exactly that
// (see tests/chaos_soak_test.cpp and DESIGN.md "Link faults").
//
// Determinism/replay contract: a FaultPlan is a pure value (explicit
// per-(round, from->to) actions); `random_fault_plan(params, seed)` is a
// pure function of its arguments; corruption masks are derived from
// (corruption seed, round, from, to) only. Faults are applied inside
// Cluster::do_exchange by the single thread that won the barrier, so a
// fixed (cluster seed, plan seed) replays an identical execution —
// failing chaos seeds reproduce exactly.
//
// Round indexing: `round` counts the exchanges of the round stream the
// message was staged on, starting at 0 — i.e. the exchange that delivers
// a stream's first-round messages has index 0. For root-only runs this
// is the cluster's total exchange count (the original contract); a
// pipelined run applies the plan to round r of *every* stream
// independently, which keeps fault placement deterministic no matter how
// the streams interleave in wall-clock (see net/cluster.h).

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/metrics.h"
#include "net/msg.h"

namespace dprbg {

enum class FaultAction : std::uint8_t {
  kDrop,       // discard the link's messages this round
  kDelay,      // withhold them, merge into exchange round + param
  kDuplicate,  // deliver param extra copies alongside the original
  kCorrupt,    // deterministically mangle param bytes of each body
};

struct FaultSpec {
  FaultAction action = FaultAction::kDrop;
  // kDelay: rounds withheld (>= 1); kDuplicate: extra copies (>= 1);
  // kCorrupt: bytes mangled (>= 1); ignored for kDrop.
  unsigned param = 1;
};

// A value describing which directed links misbehave at which exchanges,
// plus the player set the faults are charged to. `add` aborts (programmer
// error) unless the link touches a charged player — charge first.
class FaultPlan {
 public:
  FaultPlan() = default;

  // Marks `player` as charged: faults on its adjacent links are
  // attributed to it, and it counts against the t-budget.
  void charge(int player) { charged_.insert(player); }
  [[nodiscard]] const std::set<int>& charged() const { return charged_; }
  // True when the plan's faults are attributable to <= t players.
  [[nodiscard]] bool attributable(unsigned t) const {
    return charged_.size() <= t;
  }

  // Registers `spec` for every message sent from->to during exchange
  // `round`. Self-links (from == to) are not real links and are rejected.
  void add(std::uint64_t round, int from, int to, FaultSpec spec);

  // Drops all traffic between `island` and the rest of an n-player
  // cluster for exchanges [first_round, last_round]. Every cross link
  // must be chargeable, so either the whole island or the whole
  // complement must have been charged.
  void add_partition(std::uint64_t first_round, std::uint64_t last_round,
                     const std::vector<int>& island, int n);

  // Severs one player from everyone else for a window of exchanges
  // (the player must be charged).
  void isolate(std::uint64_t first_round, std::uint64_t last_round,
               int player, int n);

  // The specs for (round, from->to), or nullptr when the link is clean.
  [[nodiscard]] const std::vector<FaultSpec>* find(std::uint64_t round,
                                                  int from, int to) const;

  [[nodiscard]] bool empty() const { return faults_.empty(); }
  // Total number of registered (round, link, action) entries.
  [[nodiscard]] std::size_t size() const;
  // Largest round with a registered fault (0 when empty).
  [[nodiscard]] std::uint64_t horizon() const;

  // The same plan with every player id pushed through `local_to_global`
  // (index = local id). Committees build plans against their local
  // indices [0, committee n) and remap onto cluster player ids before
  // installing the injector on their stream domain; rounds are already
  // per-stream, so they translate unchanged.
  [[nodiscard]] FaultPlan remapped(
      const std::vector<int>& local_to_global) const;

 private:
  using Key = std::tuple<std::uint64_t, int, int>;  // (round, from, to)
  std::set<int> charged_;
  std::map<Key, std::vector<FaultSpec>> faults_;
};

// Parameters for the seeded random-plan generator.
struct FaultPlanParams {
  int n = 0;
  unsigned t = 0;
  std::uint64_t rounds = 32;   // exchanges covered: [0, rounds)
  double fault_rate = 0.05;    // per (round, charged directed link)
  unsigned max_delay = 3;      // kDelay param drawn from [1, max_delay]
  // Players that must stay outside the charged set (e.g. a dealer whose
  // honesty the test asserts on). Capped charged-set size defaults to t.
  std::vector<int> never_charge;
  unsigned max_charged = ~0u;
};

// Draws a uniformly random charged set of size min(t, max_charged, #
// chargeable players), then flips a `fault_rate` coin for every (round,
// directed link adjacent to the charged set) and picks a random action.
// Pure function of (params, seed): the same arguments always yield the
// same plan, which is what makes failing chaos seeds replayable.
FaultPlan random_fault_plan(const FaultPlanParams& params,
                            std::uint64_t seed);

// A message withheld by a kDelay fault, waiting for its delivery round.
struct DelayedMsg {
  int to;
  Msg msg;
};
// Keyed by the exchange index at which the messages are merged in.
using DelayQueue = std::map<std::uint64_t, std::vector<DelayedMsg>>;

// Applies a FaultPlan to staged messages. Stateless apart from the plan
// and the corruption seed; all mutable bookkeeping (delay queues, fault
// counters) lives in the Cluster so one injector can be shared.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan,
                         std::uint64_t corruption_seed = 0xFA0175EEDull)
      : plan_(std::move(plan)), corruption_seed_(corruption_seed) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // Routes one staged message through the plan. Clean/duplicated/
  // corrupted copies are appended to `now`; delayed copies to `later`
  // keyed by delivery exchange; `counters` accumulates per-message
  // effects. Action composition on one link: kDrop wins outright;
  // otherwise kCorrupt mangles the body, kDuplicate adds copies of the
  // (possibly corrupted) message, and kDelay reschedules all copies.
  void route(std::uint64_t round, int to, Msg msg, std::vector<Msg>& now,
             DelayQueue& later, FaultCounters& counters) const;

 private:
  void corrupt_body(std::uint64_t round, int from, int to, unsigned bytes,
                    std::vector<std::uint8_t>& body) const;

  FaultPlan plan_;
  std::uint64_t corruption_seed_;
};

}  // namespace dprbg
