#include "net/fault.h"

#include <algorithm>

#include "common/check.h"
#include "rng/chacha.h"

namespace dprbg {

namespace {

// Mixes the fault coordinates into a per-(round, link) stream id so the
// corruption mask depends only on replayable quantities.
std::uint64_t link_stream(std::uint64_t round, int from, int to) {
  std::uint64_t h = round * 0x9E3779B97F4A7C15ull;
  h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
       static_cast<std::uint32_t>(to);
  return h;
}

}  // namespace

void FaultPlan::add(std::uint64_t round, int from, int to, FaultSpec spec) {
  DPRBG_CHECK(from != to);
  // Attribution: a link fault must be chargeable to a (budgeted) player.
  DPRBG_CHECK(charged_.count(from) != 0 || charged_.count(to) != 0);
  if (spec.param == 0) spec.param = 1;
  faults_[Key{round, from, to}].push_back(spec);
}

void FaultPlan::add_partition(std::uint64_t first_round,
                              std::uint64_t last_round,
                              const std::vector<int>& island, int n) {
  std::set<int> inside(island.begin(), island.end());
  for (std::uint64_t r = first_round; r <= last_round; ++r) {
    for (int a : island) {
      for (int b = 0; b < n; ++b) {
        if (inside.count(b) != 0) continue;
        add(r, a, b, {FaultAction::kDrop, 1});
        add(r, b, a, {FaultAction::kDrop, 1});
      }
    }
  }
}

void FaultPlan::isolate(std::uint64_t first_round, std::uint64_t last_round,
                        int player, int n) {
  add_partition(first_round, last_round, {player}, n);
}

const std::vector<FaultSpec>* FaultPlan::find(std::uint64_t round, int from,
                                              int to) const {
  const auto it = faults_.find(Key{round, from, to});
  return it == faults_.end() ? nullptr : &it->second;
}

std::size_t FaultPlan::size() const {
  std::size_t total = 0;
  for (const auto& [key, specs] : faults_) total += specs.size();
  return total;
}

std::uint64_t FaultPlan::horizon() const {
  return faults_.empty() ? 0 : std::get<0>(faults_.rbegin()->first);
}

FaultPlan FaultPlan::remapped(const std::vector<int>& local_to_global) const {
  auto remap = [&](int local) {
    DPRBG_CHECK(local >= 0 &&
                local < static_cast<int>(local_to_global.size()));
    return local_to_global[static_cast<std::size_t>(local)];
  };
  FaultPlan out;
  for (int c : charged_) out.charge(remap(c));
  for (const auto& [key, specs] : faults_) {
    const auto& [round, from, to] = key;
    for (const FaultSpec& spec : specs) {
      out.add(round, remap(from), remap(to), spec);
    }
  }
  return out;
}

FaultPlan random_fault_plan(const FaultPlanParams& params,
                            std::uint64_t seed) {
  DPRBG_CHECK(params.n >= 2);
  Chacha rng(seed, /*stream=*/0xFA017ull);
  FaultPlan plan;

  // Pick the charged set: a uniform subset of the chargeable players of
  // size min(t, max_charged, #chargeable).
  std::vector<int> chargeable;
  for (int i = 0; i < params.n; ++i) {
    if (std::find(params.never_charge.begin(), params.never_charge.end(),
                  i) == params.never_charge.end()) {
      chargeable.push_back(i);
    }
  }
  std::size_t budget = std::min<std::size_t>(
      {params.t, params.max_charged, chargeable.size()});
  for (std::size_t picked = 0; picked < budget; ++picked) {
    const std::size_t idx =
        picked + static_cast<std::size_t>(
                     rng.uniform(chargeable.size() - picked));
    std::swap(chargeable[picked], chargeable[idx]);
    plan.charge(chargeable[picked]);
  }
  if (plan.charged().empty()) return plan;  // t == 0: nothing to fault

  // Directed links adjacent to the charged set, in deterministic order.
  std::vector<std::pair<int, int>> links;
  for (int c : plan.charged()) {
    for (int other = 0; other < params.n; ++other) {
      if (other == c) continue;
      links.emplace_back(c, other);
      if (plan.charged().count(other) == 0) links.emplace_back(other, c);
    }
  }

  // fault_rate as a fixed-point threshold keeps the draw integral (and
  // hence bit-exact across platforms).
  const std::uint64_t kScale = 1u << 20;
  const auto threshold = static_cast<std::uint64_t>(
      std::clamp(params.fault_rate, 0.0, 1.0) *
      static_cast<double>(kScale));
  const unsigned max_delay = std::max(1u, params.max_delay);
  for (std::uint64_t round = 0; round < params.rounds; ++round) {
    for (const auto& [from, to] : links) {
      if (rng.uniform(kScale) >= threshold) continue;
      FaultSpec spec;
      switch (rng.uniform(5)) {
        case 0:
        case 1:  // drops are the most common real-world failure
          spec = {FaultAction::kDrop, 1};
          break;
        case 2:
          spec = {FaultAction::kDelay,
                  1 + static_cast<unsigned>(rng.uniform(max_delay))};
          break;
        case 3:
          spec = {FaultAction::kDuplicate, 1};
          break;
        default:
          spec = {FaultAction::kCorrupt,
                  1 + static_cast<unsigned>(rng.uniform(4))};
          break;
      }
      plan.add(round, from, to, spec);
    }
  }
  return plan;
}

void FaultInjector::corrupt_body(std::uint64_t round, int from, int to,
                                 unsigned bytes,
                                 std::vector<std::uint8_t>& body) const {
  Chacha rng(corruption_seed_, link_stream(round, from, to));
  if (body.empty()) {
    // Garbage on an otherwise silent wire: materialize `bytes` junk.
    body.resize(bytes);
    rng.fill_bytes(body);
    return;
  }
  for (unsigned i = 0; i < bytes; ++i) {
    const auto pos = static_cast<std::size_t>(rng.uniform(body.size()));
    // Nonzero mask: a corruption always changes the byte it touches.
    body[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
  }
}

void FaultInjector::route(std::uint64_t round, int to, Msg msg,
                          std::vector<Msg>& now, DelayQueue& later,
                          FaultCounters& counters) const {
  const std::vector<FaultSpec>* specs = plan_.find(round, msg.from, to);
  if (specs == nullptr) {
    now.push_back(std::move(msg));
    return;
  }
  bool drop = false;
  bool corrupt = false;
  unsigned corrupt_bytes = 0;
  unsigned delay = 0;
  unsigned extra_copies = 0;
  for (const FaultSpec& spec : *specs) {
    switch (spec.action) {
      case FaultAction::kDrop:
        drop = true;
        break;
      case FaultAction::kDelay:
        delay = std::max(delay, std::max(1u, spec.param));
        break;
      case FaultAction::kDuplicate:
        extra_copies += std::max(1u, spec.param);
        break;
      case FaultAction::kCorrupt:
        corrupt = true;
        corrupt_bytes += std::max(1u, spec.param);
        break;
    }
  }
  if (drop) {
    ++counters.dropped;
    return;
  }
  if (corrupt) {
    corrupt_body(round, msg.from, to, corrupt_bytes, msg.body);
    ++counters.corrupted;
  }
  counters.duplicated += extra_copies;
  if (delay > 0) counters.delayed += 1 + extra_copies;
  for (unsigned copy = 0; copy < extra_copies; ++copy) {
    if (delay > 0) {
      later[round + delay].push_back(DelayedMsg{to, msg});
    } else {
      now.push_back(msg);
    }
  }
  if (delay > 0) {
    later[round + delay].push_back(DelayedMsg{to, std::move(msg)});
  } else {
    now.push_back(std::move(msg));
  }
}

}  // namespace dprbg
