// Protocol Coin-Expose (Fig. 6): reveal a sealed coin.
//
//   1. Every player holding a (valid) share of coin h sends it to all
//      players. (When the coin came from Coin-Gen, the share is the
//      pre-combined sigma_i = sum_{j in S} alpha_{i,j,h}; the sum over the
//      3t+1 contributing dealers was taken when the batch was stored.)
//   2. Everyone interpolates a polynomial F(x) through the received shares
//      using the Berlekamp-Welch decoder.
//   3. The k-ary coin is F(0); the binary coin is F(0) mod 2.
//
// Costs (Section 3.1): n additions and a single polynomial interpolation
// per player; n messages of size k per exposing player.
//
// Unanimity: with at most t faulty players, at least (#senders - t) of the
// received points are correct and lie on the degree-t sharing polynomial.
// Berlekamp-Welch returns that unique polynomial for every receiver as
// long as points >= degree + 2t + 1, no matter which garbage the faulty
// players send (even different garbage to different receivers).

#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/trace.h"
#include "gf/field_concept.h"
#include "gf/field_io.h"
#include "net/endpoint.h"
#include "net/msg.h"
#include "poly/berlekamp_welch.h"
#include "sharing/shamir.h"
#include "coin/sealed_coin.h"

namespace dprbg {

// Runs one round. All players must call this in lockstep (it performs
// exactly one sync()). `instance` disambiguates parallel exposures.
// Returns the coin value, or nullopt when decoding fails (possible only
// when the coin's guarantees are violated, e.g. fewer than degree + 2t + 1
// honest share-holders).
template <FiniteField F, NetEndpoint Io>
std::optional<F> coin_expose(Io& io, const SealedCoin<F>& coin,
                             unsigned instance = 0) {
  TraceSpan span(io, "coin-expose", "expose",
                 tracer().enabled() ? "instance=" + std::to_string(instance)
                                    : std::string{});
  const std::uint32_t tag = make_tag(ProtoId::kCoinExpose, instance, 0);
  if (coin.share.has_value()) {
    ByteWriter w;
    write_elem(w, *coin.share);
    io.send_all(tag, w.data());
  }
  const Inbox& in = io.sync();

  // The share points live in per-thread arena scratch: one exposure runs
  // per coin per round, so the round loop reuses the same warm chunk
  // instead of mallocing a fresh vector every time.
  ArenaScope scope(scratch_arena());
  ScratchVec<PointValue<F>> points(scope, static_cast<std::size_t>(io.n()));
  std::size_t n_points = 0;
  for (const Msg* m : in.with_tag(tag)) {
    // Exactly one field element, validated before use; anything else is
    // malformed and drops the sender's point.
    const auto share = decode_elem_row<F>(m->body, 1);
    if (!share) {
      io.note_decode_failure(m->from);
      continue;
    }
    if (n_points >= points.size()) continue;
    points[n_points++] = {eval_point<F>(m->from), (*share)[0]};
  }
  if (n_points < coin.degree + 1) {
    trace_point("coin-expose", "decode-fail", io.id(), io.rounds(),
                "too few shares", io.stream(), io.committee());
    return std::nullopt;
  }
  // Tolerate up to t lies, but never more than the distance allows.
  const unsigned by_distance =
      static_cast<unsigned>((n_points - coin.degree - 1) / 2);
  const unsigned max_errors =
      std::min(static_cast<unsigned>(io.t()), by_distance);
  const auto poly = berlekamp_welch<F>(
      std::span<const PointValue<F>>(points.data(), n_points), coin.degree,
      max_errors);
  if (!poly) {
    trace_point("coin-expose", "decode-fail", io.id(), io.rounds(),
                "berlekamp-welch failed", io.stream(), io.committee());
    return std::nullopt;
  }
  return (*poly)(F::zero());
}

}  // namespace dprbg
