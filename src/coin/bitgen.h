// Protocol Bit-Gen (Fig. 4): broadcast-free batch sharing of sealed bits.
//
// Model (Section 4): n >= 6t + 1, point-to-point channels only, access to
// sealed random k-ary coins.
//
//   Dealer: picks M_total random degree-t polynomials f_1..f_M and sends
//           player P_i the row (f_1(i), ..., f_M(i)).          [1 round]
//   All:    r <- Coin-Expose(k-ary coin).
//   P_i:    beta_i = sum_j alpha_ij r^j (Horner), sent to ALL players
//           point-to-point.                                     [1 round]
//   P_i:    S = set of received betas; Berlekamp-Welch a polynomial F
//           with deg(F) <= t agreeing with >= n - t values of S;
//           output (F, S) or (bottom, S).
//
// Without a broadcast channel players may disagree on whether a given
// dealer's run succeeded — that is resolved by Coin-Gen's clique +
// grade-cast + BA machinery (coin_gen.h); Bit-Gen itself only produces
// each player's local view.
//
// Round layout: the dealer's rows travel in the same round as the
// challenge-coin shares. This is sound — the dealer commits to its rows
// before anyone (itself included) can know r — and matches Lemma 6's
// message accounting (n messages of size Mk for the rows, n^2 of size k
// for the coin, n^2 of size k for the combinations).
//
// Blinding: callers that later *reveal* some of the shared secrets
// (Coin-Gen) prepend one extra random polynomial to the batch, so the
// published combination beta does not reduce the adversary's uncertainty
// about the usable secrets (DESIGN.md §3). Bit-Gen itself is agnostic:
// it verifies whatever batch it is given.

#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/trace.h"
#include "gf/field_concept.h"
#include "gf/field_io.h"
#include "net/endpoint.h"
#include "net/msg.h"
#include "poly/berlekamp_welch.h"
#include "poly/interpolate.h"
#include "poly/polynomial.h"
#include "sharing/shamir.h"
#include "vss/batch_vss.h"
#include "coin/coin_expose.h"
#include "coin/sealed_coin.h"

namespace dprbg {

// One player's local view of one dealer's Bit-Gen instance.
template <FiniteField F>
struct BitGenView {
  // The row of shares this player received from the dealer (size M_total),
  // or empty when the dealer sent nothing/garbage to us.
  std::vector<F> my_row;
  // S: the combination shares received in step 3, keyed by sender.
  std::map<int, F> combos;
  // F(x): the decoded combined polynomial, or nullopt for "bottom".
  std::optional<Polynomial<F>> poly;

  [[nodiscard]] bool accepted() const { return poly.has_value(); }
};

namespace bitgen_detail {

// Decode step (Fig. 4 step 5): find deg<=t F agreeing with >= n - t of
// the received combination shares.
template <FiniteField F>
std::optional<Polynomial<F>> decode_combination(
    const std::map<int, F>& combos, int n, unsigned t) {
  std::vector<PointValue<F>> points;
  points.reserve(combos.size());
  for (const auto& [sender, beta] : combos) {
    points.push_back({eval_point<F>(sender), beta});
  }
  const std::size_t need =
      static_cast<std::size_t>(n) - static_cast<std::size_t>(t);
  if (points.size() < need) return std::nullopt;
  const unsigned max_errors = std::min<unsigned>(
      static_cast<unsigned>(points.size() - need),
      static_cast<unsigned>((points.size() - t - 1) / 2));
  auto poly = berlekamp_welch<F>(points, t, max_errors);
  if (!poly) return std::nullopt;
  std::size_t agreements = 0;
  for (const auto& pv : points) {
    if ((*poly)(pv.x) == pv.y) ++agreements;
  }
  if (agreements < need) return std::nullopt;
  return poly;
}

// Batched combination message (bit_gen_all step 3): per dealer, one
// presence flag + one field element. Exact-size validation up front; a
// malformed batch rejects as a whole (the sender is dropped from every
// instance), so a Byzantine sender cannot contribute to some instances
// and corrupt others within one message.
template <FiniteField F>
std::optional<std::vector<std::optional<F>>> decode_combo_batch(
    std::span<const std::uint8_t> bytes, int n) {
  if (bytes.size() != static_cast<std::size_t>(n) * (1 + F::kBytes)) {
    return std::nullopt;
  }
  ByteReader rd(bytes);
  std::vector<std::optional<F>> out(n);
  for (int dealer = 0; dealer < n; ++dealer) {
    const bool present = rd.u8() != 0;
    const F beta = read_elem<F>(rd);
    if (present) out[dealer] = beta;
  }
  if (!rd.done()) return std::nullopt;
  return out;
}

}  // namespace bitgen_detail

// Single-dealer Bit-Gen, exactly Fig. 4 (used standalone by tests and the
// E6 benchmark). The dealer passes its M_total polynomials; everyone else
// passes an empty span. Consumes 2 rounds.
template <FiniteField F, NetEndpoint Io>
BitGenView<F> bit_gen_single(Io& io, int dealer, unsigned m_total,
                             unsigned t,
                             std::span<const Polynomial<F>> dealer_polys,
                             const SealedCoin<F>& challenge_coin,
                             unsigned instance = 0) {
  const std::uint32_t row_tag = make_tag(ProtoId::kBitGen, instance, 0);
  const std::uint32_t combo_tag = make_tag(ProtoId::kBitGen, instance, 1);
  const int n = io.n();

  // Dealer step 1: distribute rows.
  {
    TraceSpan deal(io, "bitgen", "deal");
    if (io.id() == dealer) {
      DPRBG_CHECK(dealer_polys.size() == m_total);
      ArenaScope scope(scratch_arena());
      ScratchVec<F> vals(scope, m_total);
      for (int i = 0; i < n; ++i) {
        eval_polys_block<F>(dealer_polys, eval_point<F>(i), vals);
        ByteWriter w(m_total * F::kBytes);
        for (const F& v : vals) write_elem(w, v);
        io.send(i, row_tag, std::move(w).take());
      }
    }
  }

  // Step 2: expose the challenge (same round as row delivery).
  TraceSpan challenge(io, "bitgen", "challenge");
  const std::optional<F> r_val = coin_expose<F>(io, challenge_coin, instance);
  challenge.close();

  BitGenView<F> view;
  if (const Msg* mine = io.inbox().from(dealer, row_tag)) {
    if (auto row = decode_elem_row<F>(mine->body, m_total)) {
      view.my_row = std::move(*row);
    }
  }
  if (!r_val.has_value()) {
    io.sync();
    return view;
  }

  // Step 3: send the Horner combination to all players.
  TraceSpan combine(io, "bitgen", "combine");
  if (!view.my_row.empty()) {
    ByteWriter w;
    write_elem(w, batch_combine<F>(view.my_row, *r_val));
    io.send_all(combo_tag, w.data());
  }
  const Inbox& in = io.sync();
  combine.close();

  // Steps 4-5: collect S and decode.
  TraceSpan decode(io, "bitgen", "decode");
  for (const Msg* m : in.with_tag(combo_tag)) {
    const auto beta = decode_elem_row<F>(m->body, 1);
    if (!beta) {
      io.note_decode_failure(m->from);
      continue;
    }
    view.combos.emplace(m->from, (*beta)[0]);
  }
  view.poly = bitgen_detail::decode_combination<F>(view.combos, n, t);
  if (!view.poly && tracer().enabled()) {
    trace_point("bitgen", "decode-fail", io.id(), io.rounds(),
                "dealer=" + std::to_string(dealer), io.stream(),
                io.committee());
  }
  return view;
}

// All n Bit-Gen instances in parallel with one shared challenge coin
// (Fig. 5 steps 1-3: "Participate in all invocations of Bit-Gen_j ...
// using the same coin r for all invocations"). Each player deals the
// polynomials in `my_polys` (size M_total). Combination shares for all n
// instances are batched into a single message per recipient, giving the
// n^2 messages of size kn of Theorem 2. Consumes 2 rounds.
template <FiniteField F>
struct BitGenAllOutcome {
  std::optional<F> challenge;
  std::vector<BitGenView<F>> views;  // indexed by dealer
};

template <FiniteField F, NetEndpoint Io>
BitGenAllOutcome<F> bit_gen_all(Io& io,
                                std::span<const Polynomial<F>> my_polys,
                                unsigned m_total, unsigned t,
                                const SealedCoin<F>& challenge_coin,
                                unsigned instance = 0) {
  const std::uint32_t row_tag = make_tag(ProtoId::kBitGen, instance, 0);
  const std::uint32_t combo_tag = make_tag(ProtoId::kBitGen, instance, 1);
  const int n = io.n();
  DPRBG_CHECK(my_polys.size() == m_total);

  // Everyone deals (step 1 of its own instance).
  {
    TraceSpan deal(io, "bitgen", "deal");
    ArenaScope scope(scratch_arena());
    ScratchVec<F> vals(scope, m_total);
    for (int i = 0; i < n; ++i) {
      eval_polys_block<F>(my_polys, eval_point<F>(i), vals);
      ByteWriter w(m_total * F::kBytes);
      for (const F& v : vals) write_elem(w, v);
      io.send(i, row_tag, std::move(w).take());
    }
  }

  BitGenAllOutcome<F> out;
  out.views.resize(n);
  TraceSpan challenge(io, "bitgen", "challenge");
  const std::optional<F> r_val = coin_expose<F>(io, challenge_coin, instance);
  challenge.close();
  for (int dealer = 0; dealer < n; ++dealer) {
    if (const Msg* m = io.inbox().from(dealer, row_tag)) {
      if (auto row = decode_elem_row<F>(m->body, m_total)) {
        out.views[dealer].my_row = std::move(*row);
      }
    }
  }
  if (!r_val.has_value()) {
    io.sync();
    return out;
  }
  out.challenge = r_val;

  // Batched combination message: one presence flag + beta per dealer.
  // The Horner combinations for all present dealers run through the
  // blocked kernel (one SoA pass over the share matrix); wire format and
  // per-row op counts are identical to the scalar per-dealer loop.
  TraceSpan combine(io, "bitgen", "combine");
  {
    ArenaScope scope(scratch_arena());
    ScratchVec<const F*> rows(scope, n);
    std::size_t present = 0;
    for (int dealer = 0; dealer < n; ++dealer) {
      const auto& row = out.views[dealer].my_row;
      if (!row.empty()) rows[present++] = row.data();
    }
    ScratchVec<F> betas(scope, present);
    batch_combine_block<F>(std::span<const F* const>(rows.data(), present),
                           m_total, *r_val, betas);
    ByteWriter w(static_cast<std::size_t>(n) * (1 + F::kBytes));
    std::size_t next_beta = 0;
    for (int dealer = 0; dealer < n; ++dealer) {
      const bool have = !out.views[dealer].my_row.empty();
      w.u8(have ? 1 : 0);
      write_elem(w, have ? betas[next_beta++] : F::zero());
    }
    io.send_all(combo_tag, w.data());
  }
  const Inbox& in = io.sync();
  combine.close();

  TraceSpan decode(io, "bitgen", "decode");
  for (const Msg* m : in.with_tag(combo_tag)) {
    const auto batch = bitgen_detail::decode_combo_batch<F>(m->body, n);
    if (!batch) {
      // malformed: drop the sender from every instance, and score it
      io.note_decode_failure(m->from);
      continue;
    }
    for (int dealer = 0; dealer < n; ++dealer) {
      if ((*batch)[dealer]) {
        out.views[dealer].combos.emplace(m->from, *(*batch)[dealer]);
      }
    }
  }
  for (int dealer = 0; dealer < n; ++dealer) {
    out.views[dealer].poly = bitgen_detail::decode_combination<F>(
        out.views[dealer].combos, n, t);
    if (!out.views[dealer].poly && tracer().enabled()) {
      trace_point("bitgen", "decode-fail", io.id(), io.rounds(),
                  "dealer=" + std::to_string(dealer), io.stream(),
                  io.committee());
    }
  }
  return out;
}

}  // namespace dprbg
