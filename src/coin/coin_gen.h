// Protocol Coin-Gen (Fig. 5): generation of M sealed shared coins.
//
// Model: n >= 6t + 1, point-to-point channels, O(1) sealed k-ary seed
// coins available. Per player:
//
//   1-3. Act as dealer of a Bit-Gen batch; participate in everyone
//        else's instance, all with the same exposed challenge r.
//   4-5. Build the mutual-verification graph G: edge (j,k) when each of
//        j,k holds a share satisfying the other's decoded combination
//        polynomial.
//   6.   Find a clique C of size >= n - 2t (matching approximation).
//   7-8. Grade-Cast (C_i, {F_j}_{j in C_i}); record everyone's clique and
//        confidence.
//   9.   l <- Coin-Expose(seed coin) mod n  (leader selection).
//   10.  Run BA with input 1 iff (i) conf_l = 2, (ii) |C_l| >= n - 2t,
//        and (iii) >= 3t + 1 members of C_l hold shares satisfying F_k
//        for every k in C_l (checked against this player's own copy of
//        the combination shares, which were sent to everyone).
//   11.  If BA decides 1, output C_l; otherwise repeat from step 9.
//
// Expected O(1) iterations (Lemma 8): a repeat requires the coin-selected
// leader to be faulty, probability <= t/n per iteration.
//
// Output handling (Fig. 6's "Given"): the M coins of the batch are the
// sums over the first 3t+1 dealers of C_l ("S"). A player is *qualified*
// if its own shares satisfy F_k for all k in C_l — qualified players are
// exactly those who may send sigma shares in later Coin-Expose runs.
// At least 2t+1 honest players are qualified whenever BA decides 1
// (condition (iii) seen by an honest voter plus <= t faults), which is
// what Berlekamp-Welch needs at reconstruction.
//
// Blinding: each dealer's batch has M+1 polynomials; index 0 is the
// blinding polynomial absorbed by the published combination and never
// used as a coin (DESIGN.md §3).

#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ba/binary_ba.h"
#include "common/arena.h"
#include "common/trace.h"
#include "gf/field_concept.h"
#include "gf/field_io.h"
#include "gradecast/gradecast.h"
#include "net/endpoint.h"
#include "net/msg.h"
#include "poly/interpolate.h"
#include "poly/polynomial.h"
#include "sharing/shamir.h"
#include "coin/bitgen.h"
#include "coin/clique.h"
#include "coin/coin_expose.h"
#include "coin/sealed_coin.h"
#include "dprbg/coin_pool.h"

namespace dprbg {

template <FiniteField F>
struct CoinGenResult {
  bool success = false;
  // Agreed set of dealers (C_l) — identical at every honest player.
  std::vector<int> clique;
  // The first 3t+1 members of the clique: the dealers whose secrets are
  // summed into each coin (the set "S" of Fig. 6).
  std::vector<int> summed_dealers;
  // Whether this player holds verified shares of every summed dealer and
  // may therefore send sigma shares during Coin-Expose.
  bool qualified = false;
  // sigma_{i,h} = sum_{j in S} alpha_{i,j,h} for h = 1..M (pre-summed;
  // empty when not qualified).
  std::vector<F> coin_shares;
  // Seed coins consumed from the pool (challenge + one per BA iteration).
  unsigned seed_coins_used = 0;
  // Number of BA iterations run (Lemma 8: expected O(1)).
  unsigned iterations = 0;

  // The freshly minted coins as SealedCoin views for this player.
  [[nodiscard]] std::vector<SealedCoin<F>> sealed_coins(unsigned t) const {
    std::vector<SealedCoin<F>> coins;
    if (!success) return coins;
    const std::size_t m = coin_shares.size();
    coins.reserve(m);
    for (std::size_t h = 0; h < m; ++h) {
      coins.push_back(SealedCoin<F>{
          qualified ? std::optional<F>(coin_shares[h]) : std::nullopt, t});
    }
    return coins;
  }
};

namespace coin_gen_detail {

// Grade-cast payload: |C| entries of (dealer id, t+1 coefficients of the
// dealer's combined polynomial F_j).
template <FiniteField F>
std::vector<std::uint8_t> encode_clique_msg(
    const std::vector<int>& clique,
    const std::vector<BitGenView<F>>& views, unsigned t) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(clique.size()));
  for (int j : clique) {
    w.u8(static_cast<std::uint8_t>(j));
    const auto& poly = views[j].poly;
    for (unsigned c = 0; c <= t; ++c) {
      write_elem(w, poly ? poly->coeff(c) : F::zero());
    }
  }
  return std::move(w).take();
}

template <FiniteField F>
struct CliqueMsg {
  std::vector<int> clique;                 // sorted, distinct
  std::map<int, Polynomial<F>> polys;      // F_j per clique member
};

template <FiniteField F>
std::optional<CliqueMsg<F>> decode_clique_msg(
    const std::vector<std::uint8_t>& bytes, int n, unsigned t) {
  // Shape check before any parsing or allocation: an honest message is
  // one count byte plus `size` fixed-width entries, and a clique can
  // never exceed n dealers.
  if (bytes.empty()) return std::nullopt;
  const unsigned size = bytes[0];
  const std::size_t entry_bytes =
      1 + static_cast<std::size_t>(t + 1) * F::kBytes;
  if (size > static_cast<unsigned>(n) ||
      bytes.size() != 1 + size * entry_bytes) {
    return std::nullopt;
  }
  ByteReader rd(bytes);
  rd.u8();  // the count byte validated above
  CliqueMsg<F> msg;
  for (unsigned e = 0; e < size; ++e) {
    const int j = rd.u8();
    if (j >= n) return std::nullopt;
    std::vector<F> coeffs;
    coeffs.reserve(t + 1);
    for (unsigned c = 0; c <= t; ++c) coeffs.push_back(read_elem<F>(rd));
    msg.clique.push_back(j);
    msg.polys.emplace(j, Polynomial<F>{std::move(coeffs)});
  }
  if (!rd.done()) return std::nullopt;
  std::sort(msg.clique.begin(), msg.clique.end());
  if (std::adjacent_find(msg.clique.begin(), msg.clique.end()) !=
      msg.clique.end()) {
    return std::nullopt;  // duplicate dealer ids
  }
  return msg;
}

}  // namespace coin_gen_detail

// Generates M sealed coins. All players call in lockstep; seed coins are
// drawn from `pool` (honest pools are structurally identical, so draws
// stay aligned). Returns success=false — identically at all honest
// players — when the pool runs dry or `max_iterations` leader draws all
// land on faulty players (probability <= (t/n)^max_iterations).
template <FiniteField F, NetEndpoint Io, typename Ba = DefaultBinaryBa>
CoinGenResult<F> coin_gen(Io& io, unsigned m, CoinPool<F>& pool,
                          unsigned max_iterations = 16,
                          const Ba& ba = default_binary_ba) {
  const int n = io.n();
  const unsigned t = static_cast<unsigned>(io.t());
  const unsigned m_total = m + 1;  // index 0: blinding polynomial
  CoinGenResult<F> result;

  // Steps 1-3: n parallel Bit-Gens under one challenge.
  if (pool.empty()) return result;
  const SealedCoin<F> challenge = pool.take();
  ++result.seed_coins_used;
  TraceSpan deal_span(io, "coin-gen", "deal");
  std::vector<Polynomial<F>> my_polys;
  my_polys.reserve(m_total);
  for (unsigned j = 0; j < m_total; ++j) {
    my_polys.push_back(Polynomial<F>::random(t, io.rng()));
  }
  auto bg = bit_gen_all<F>(io, my_polys, m_total, t, challenge,
                           /*instance=*/0);
  deal_span.close();

  // Steps 4-5: the mutual-verification graph. Directed edge j -> k when
  // instance j decoded and k's combination share fits; G keeps mutual
  // edges. Every honest pair is connected: both decode (>= n - t honest
  // combos agree) and both sent fitting shares.
  TraceSpan graph_span(io, "coin-gen", "graph");
  Graph g(n);
  for (int j = 0; j < n; ++j) {
    const auto& vj = bg.views[j];
    if (!vj.poly) continue;
    for (int k = j + 1; k < n; ++k) {
      const auto& vk = bg.views[k];
      if (!vk.poly) continue;
      const auto j_has_k = vj.combos.find(k);
      const auto k_has_j = vk.combos.find(j);
      const bool jk = j_has_k != vj.combos.end() &&
                      (*vj.poly)(eval_point<F>(k)) == j_has_k->second;
      const bool kj = k_has_j != vk.combos.end() &&
                      (*vk.poly)(eval_point<F>(j)) == k_has_j->second;
      if (jk && kj) {
        g.add_edge(j, k);
        if (tracer().enabled()) {
          trace_point("coin-gen", "edge", io.id(), io.rounds(),
                      "j=" + std::to_string(j) + " k=" + std::to_string(k),
                      io.stream(), io.committee());
        }
      }
    }
  }
  graph_span.close();

  // Step 6: clique of size >= n - 2t. (find_large_clique guarantees that
  // bound only when the complement's cover is <= t; with more faults the
  // found clique may be smaller — condition (ii) below catches it.)
  TraceSpan clique_span(io, "coin-gen", "clique");
  const std::vector<int> my_clique = find_large_clique(g);
  clique_span.close();

  // Steps 7-8: grade-cast cliques + combined polynomials.
  TraceSpan gc_span(io, "coin-gen", "gradecast");
  const auto gc = grade_cast_all(
      io, coin_gen_detail::encode_clique_msg<F>(my_clique, bg.views, t));
  gc_span.close();

  // Steps 9-11: leader selection + BA, repeated until BA decides 1.
  const unsigned clique_min = static_cast<unsigned>(n) - 2 * t;
  for (unsigned iter = 0; iter < max_iterations; ++iter) {
    if (pool.empty()) return result;
    const SealedCoin<F> leader_coin = pool.take();
    ++result.seed_coins_used;
    ++result.iterations;
    TraceSpan leader_span(io, "coin-gen", "leader",
                          tracer().enabled()
                              ? "iter=" + std::to_string(iter)
                              : std::string{});
    const std::optional<F> leader_val =
        coin_expose<F>(io, leader_coin, /*instance=*/1 + iter);
    leader_span.close();
    // A failed exposure cannot happen within the fault bounds; treat it
    // as a faulty leader (everyone votes 0 — still unanimous).
    const int l = leader_val.has_value()
                      ? static_cast<int>(leader_val->to_uint() %
                                         static_cast<std::uint64_t>(n))
                      : -1;

    int my_vote = 0;
    std::optional<coin_gen_detail::CliqueMsg<F>> msg;
    if (l >= 0 && gc[l].confidence >= 1) {
      msg = coin_gen_detail::decode_clique_msg<F>(gc[l].value, n, t);
      // The grade-cast carried a value but it is not a well-formed clique
      // message: the leader itself authored garbage.
      if (!msg) io.note_decode_failure(l);
    }
    if (msg && gc[l].confidence == 2 &&                      // (i)
        msg->clique.size() >= clique_min) {                  // (ii)
      // (iii): count dealers j in C_l whose combination shares (as *I*
      // received them in Bit-Gen step 3) satisfy F_k for every k in C_l.
      unsigned good = 0;
      for (int j : msg->clique) {
        bool ok = true;
        for (int k : msg->clique) {
          const auto& combos_k = bg.views[k].combos;
          const auto it = combos_k.find(j);
          if (it == combos_k.end() ||
              msg->polys.at(k)(eval_point<F>(j)) != it->second) {
            ok = false;
            break;
          }
        }
        if (ok) ++good;
      }
      if (good >= 3 * t + 1) my_vote = 1;
    }

    TraceSpan ba_span(io, "coin-gen", "ba",
                      tracer().enabled() ? "iter=" + std::to_string(iter)
                                         : std::string{});
    const int decision = ba(io, my_vote, /*instance=*/iter);
    ba_span.close();
    if (decision != 1) continue;

    // Agreement reached on C_l. If an honest player voted 1, conf_l = 2
    // there, hence conf >= 1 (same value) here.
    if (!msg) {
      // Model violated (BA decided 1 with no honest support); fail
      // identically everywhere we can.
      return result;
    }
    TraceSpan output_span(io, "coin-gen", "output");
    result.success = true;
    result.clique = msg->clique;
    result.summed_dealers.assign(
        msg->clique.begin(),
        msg->clique.begin() +
            std::min<std::size_t>(msg->clique.size(), 3 * t + 1));

    // Qualification: my own rows satisfy F_k for every summed dealer...
    // for every clique member (condition (iii) quantifies over all of
    // C_l, and qualification must match what other players verified).
    // All |C_l| Horner combinations run through the blocked kernel in
    // one SoA pass (same per-row op sequence as the scalar loop); any
    // missing row disqualifies outright, exactly as before.
    result.qualified = bg.challenge.has_value();
    for (int k : msg->clique) {
      if (bg.views[k].my_row.empty()) result.qualified = false;
    }
    if (result.qualified) {
      ArenaScope scope(scratch_arena());
      ScratchVec<const F*> rows(scope, msg->clique.size());
      for (std::size_t c = 0; c < msg->clique.size(); ++c) {
        rows[c] = bg.views[msg->clique[c]].my_row.data();
      }
      ScratchVec<F> betas(scope, msg->clique.size());
      batch_combine_block<F>(rows, m_total, *bg.challenge, betas);
      for (std::size_t c = 0; c < msg->clique.size(); ++c) {
        const int k = msg->clique[c];
        if (msg->polys.at(k)(eval_point<F>(io.id())) != betas[c]) {
          result.qualified = false;
          break;
        }
      }
    }
    if (result.qualified) {
      ArenaScope scope(scratch_arena());
      result.coin_shares.assign(m, F::zero());
      // Row offset +1 skips the blinding polynomial at index 0. The
      // blocked row sum performs the same m * |S| additions as the
      // scalar h-outer/j-inner loop (addition is associative and exact,
      // so the reordering is bit-for-bit invisible).
      ScratchVec<const F*> rows(scope, result.summed_dealers.size());
      for (std::size_t c = 0; c < result.summed_dealers.size(); ++c) {
        rows[c] = bg.views[result.summed_dealers[c]].my_row.data() + 1;
      }
      accumulate_rows_block<F>(rows, result.coin_shares);
    }
    return result;
  }
  return result;  // exhausted iterations: unanimous failure
}

}  // namespace dprbg
