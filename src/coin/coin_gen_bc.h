// Broadcast-model coin generation — the paper's "simpler algorithm".
//
// Section 4 opens: "Coins are often used as a source of randomness to
// execute Byzantine agreement, and hence implement a broadcast channel.
// Thus, we will omit the assumption of a broadcast channel from the
// model. Yet, if the coins are used for an application other than
// broadcast, then the simpler algorithm which assumes broadcast can be
// utilized."
//
// This is that simpler algorithm (n >= 3t + 1, broadcast assumed as in
// Section 3): every player deals a Batch-VSS-style batch of m+1
// polynomials (blinder at index 0), all verified with ONE shared
// challenge; because combination values are broadcast, all honest
// players compute the same accepted-dealer set with no clique finding,
// no grade-cast, and no Byzantine agreement. Each coin is the sum of the
// first t+1 accepted dealers' secrets — any t+1 dealers include at least
// one honest one, whose secret the adversary cannot know from t shares.
//
// The cost gap between this and the full Coin-Gen (Fig. 5) is precisely
// the price of removing the broadcast assumption; the `ablation`
// benchmark measures it.

#pragma once

#include <vector>

#include "common/check.h"
#include "gf/field_concept.h"
#include "net/endpoint.h"
#include "poly/polynomial.h"
#include "coin/bitgen.h"
#include "coin/sealed_coin.h"

namespace dprbg {

template <FiniteField F>
struct BcCoinGenResult {
  bool success = false;
  // Dealers whose batch verified (unanimous under the broadcast
  // assumption).
  std::vector<int> accepted_dealers;
  // The first t+1 accepted dealers, whose secrets are summed per coin.
  std::vector<int> summed_dealers;
  // sigma_{i,h} for h = 1..m; empty when this player misses some summed
  // dealer's row (cannot happen to an honest player under an honest
  // accepted dealer, whose row reached everyone).
  std::vector<F> coin_shares;

  [[nodiscard]] std::vector<SealedCoin<F>> sealed_coins(unsigned t) const {
    std::vector<SealedCoin<F>> coins;
    if (!success) return coins;
    coins.reserve(coin_shares.size());
    for (const F& share : coin_shares) {
      coins.push_back(SealedCoin<F>{share, t});
    }
    return coins;
  }
};

// Generates m sealed coins under the Section 3 model (n >= 3t+1 plus a
// broadcast channel; adversaries must not equivocate announced values —
// that is the assumption this variant buys its simplicity with).
// 2 rounds, one challenge coin.
template <FiniteField F, NetEndpoint Io>
BcCoinGenResult<F> coin_gen_broadcast(Io& io, unsigned m,
                                      const SealedCoin<F>& challenge_coin,
                                      unsigned instance = 0) {
  const unsigned t = static_cast<unsigned>(io.t());
  DPRBG_CHECK(io.n() >= static_cast<int>(3 * t + 1));
  const unsigned m_total = m + 1;  // index 0: blinding polynomial

  std::vector<Polynomial<F>> my_polys;
  my_polys.reserve(m_total);
  for (unsigned j = 0; j < m_total; ++j) {
    my_polys.push_back(Polynomial<F>::random(t, io.rng()));
  }
  const auto bg =
      bit_gen_all<F>(io, my_polys, m_total, t, challenge_coin, instance);

  BcCoinGenResult<F> result;
  if (!bg.challenge.has_value()) return result;
  for (int dealer = 0; dealer < io.n(); ++dealer) {
    if (bg.views[dealer].accepted()) {
      result.accepted_dealers.push_back(dealer);
    }
  }
  if (result.accepted_dealers.size() < t + 1) return result;
  result.summed_dealers.assign(result.accepted_dealers.begin(),
                               result.accepted_dealers.begin() + t + 1);
  // Sum my rows across the summed dealers (skipping the blinder row 0).
  for (int dealer : result.summed_dealers) {
    if (bg.views[dealer].my_row.empty()) return result;  // not a holder
  }
  result.coin_shares.assign(m, F::zero());
  for (unsigned h = 0; h < m; ++h) {
    F sigma = F::zero();
    for (int dealer : result.summed_dealers) {
      sigma = sigma + bg.views[dealer].my_row[h + 1];
    }
    result.coin_shares[h] = sigma;
  }
  result.success = true;
  return result;
}

}  // namespace dprbg
