// The clique step of Coin-Gen (Fig. 5, steps 4-6).
//
// Each player builds a graph whose vertices are players and whose edges
// record *mutual* successful verification of each other's Bit-Gen
// sharings. Honest players are pairwise connected, so the complement
// graph's edges all touch faulty players: its vertex cover is at most t.
// "Utilizing the protocol of Gabril ([Garey & Johnson], p. 134), a clique
// can be found of size at least n - 2t": take a maximal matching of the
// complement (<= t edges, since a matching is no larger than any vertex
// cover) and drop its endpoints — the rest is independent in the
// complement, i.e. a clique in G, of size >= n - 2t.

#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dprbg {

// Small dense undirected graph on n vertices.
class Graph {
 public:
  explicit Graph(int n) : n_(n), adj_(static_cast<std::size_t>(n) * n) {}

  [[nodiscard]] int size() const { return n_; }

  void add_edge(int a, int b) {
    DPRBG_CHECK(a >= 0 && a < n_ && b >= 0 && b < n_);
    if (a == b) return;
    adj_[static_cast<std::size_t>(a) * n_ + b] = true;
    adj_[static_cast<std::size_t>(b) * n_ + a] = true;
  }

  [[nodiscard]] bool has_edge(int a, int b) const {
    if (a == b) return false;
    return adj_[static_cast<std::size_t>(a) * n_ + b];
  }

  [[nodiscard]] bool is_clique(const std::vector<int>& vertices) const {
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      for (std::size_t j = i + 1; j < vertices.size(); ++j) {
        if (!has_edge(vertices[i], vertices[j])) return false;
      }
    }
    return true;
  }

 private:
  int n_;
  std::vector<bool> adj_;
};

// Exact maximum clique by Bron-Kerbosch with pivoting (n <= 64). Only
// used by the `ablation` benchmark to quantify how much the polynomial-
// time approximation below gives up; protocols never call this (max
// clique is NP-hard — the whole reason the paper reaches for the
// Garey-Johnson approximation).
inline std::vector<int> find_max_clique_exact(const Graph& g) {
  const int n = g.size();
  DPRBG_CHECK(n <= 64);
  std::vector<std::uint64_t> adj(n, 0);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (g.has_edge(a, b)) adj[a] |= std::uint64_t{1} << b;
    }
  }
  std::uint64_t best = 0;
  // Iterative-friendly recursive lambda: R = current clique, P =
  // candidates, X = excluded.
  auto bk = [&](auto&& self, std::uint64_t r, std::uint64_t p,
                std::uint64_t x) -> void {
    if (p == 0 && x == 0) {
      if (std::popcount(r) > std::popcount(best)) best = r;
      return;
    }
    // Pivot: vertex in P|X with most neighbours in P.
    int pivot = -1, pivot_deg = -1;
    for (std::uint64_t px = p | x; px != 0; px &= px - 1) {
      const int v = std::countr_zero(px);
      const int deg = std::popcount(adj[v] & p);
      if (deg > pivot_deg) {
        pivot = v;
        pivot_deg = deg;
      }
    }
    for (std::uint64_t cand = p & ~adj[pivot]; cand != 0;
         cand &= cand - 1) {
      const int v = std::countr_zero(cand);
      const std::uint64_t vbit = std::uint64_t{1} << v;
      self(self, r | vbit, p & adj[v], x & adj[v]);
      p &= ~vbit;
      x |= vbit;
    }
  };
  const std::uint64_t all =
      n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  bk(bk, 0, all, 0);
  std::vector<int> out;
  for (int v = 0; v < n; ++v) {
    if ((best >> v) & 1u) out.push_back(v);
  }
  return out;
}

// Matching-based clique approximation. Returns a clique (sorted vertex
// ids) of size >= n - 2 * vc(complement(g)). Deterministic: scans vertex
// pairs in increasing order, so all honest players compute the same
// clique from the same graph.
inline std::vector<int> find_large_clique(const Graph& g) {
  const int n = g.size();
  std::vector<bool> matched(n, false);
  // Greedy maximal matching on the complement graph.
  for (int a = 0; a < n; ++a) {
    if (matched[a]) continue;
    for (int b = a + 1; b < n; ++b) {
      if (matched[b] || g.has_edge(a, b)) continue;
      matched[a] = matched[b] = true;  // complement edge (a, b)
      break;
    }
  }
  std::vector<int> clique;
  for (int v = 0; v < n; ++v) {
    if (!matched[v]) clique.push_back(v);
  }
  // By construction the unmatched vertices are pairwise adjacent in g
  // (otherwise the matching was not maximal); assert the invariant.
  DPRBG_CHECK(g.is_clique(clique));
  return clique;
}

}  // namespace dprbg
