// Sealed shared coins.
//
// A sealed k-ary coin (Section 1.1) is a random field element that the
// players jointly hold as a degree-t Shamir sharing: no coalition of <= t
// players can predict it, and any later Coin-Expose run reveals the same
// value to everyone (unanimity). This header defines the per-player view
// of such a coin; Coin-Expose (coin_expose.h) turns it into a public
// value.

#pragma once

#include <optional>

#include "gf/field_concept.h"

namespace dprbg {

// One player's view of one sealed coin.
template <FiniteField F>
struct SealedCoin {
  // This player's share of the coin polynomial, or nullopt when the player
  // holds no (valid) share — e.g. it was not in the qualified
  // reconstruction set of the Coin-Gen run that minted the coin. Players
  // without a share still learn the coin at expose time.
  std::optional<F> share;
  // Degree of the sharing polynomial (the fault threshold t it hides
  // against).
  unsigned degree = 0;
};

// A coin value interpreted per the paper: the full field element is the
// k-ary coin, its low bit the binary coin (Fig. 6 step 3: "coin_h = F(0)
// mod 2").
template <FiniteField F>
int coin_to_bit(F value) {
  return static_cast<int>(value.to_uint() & 1u);
}

}  // namespace dprbg
