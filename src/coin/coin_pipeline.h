// Pipelined Coin-Gen scheduler: a depth-D window of in-flight Coin-Gen
// batches over the cluster's round streams (net/cluster.h).
//
// Coin-Gen's ~10 rounds (Lemma 8 at t=1) are latency-bound: each round is
// one network traversal, and the protocol's per-round compute is tiny.
// Running B batches back-to-back therefore costs B * 10 round trips. But
// distinct batches share no state — each is its own dealing, its own
// graph, its own leader draw — so batch k+1's deal round can ride the
// same traversal as batch k's gradecast. This driver overlaps up to
// `depth` batches, each on its own round stream (wire-tagged, demuxed by
// the cluster), cutting wall-clock to ~B/D * 10 traversals while leaving
// every per-batch transcript identical to a serial run.
//
// Scheduling rule (identical at every player, which is what keeps the
// streams deadlock-free): launch batches 0..D-1, then on joining batch b
// launch batch b+D; batches complete and are drained strictly in order.
// Each batch runs on a dedicated worker thread against the per-batch
// PartyIo handle `io.instance(first_batch_id + b)`.
//
// Seed-coin accounting: the pool must be touched only from the driving
// thread in a canonical order (honest pools are index-aligned across
// players). Each batch is charged an up-front sub-pool of
// min(1 + leader_coins, pool.remaining()) coins at launch; unspent coins
// return to the pool when the batch is joined. Both happen in launch /
// join order, so pool alignment is preserved no matter how the batches
// interleave in wall-clock.
//
// depth <= 1 degenerates to the plain serial coin_gen() loop on the
// caller's own stream — bit-for-bit the pre-pipeline behavior.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "ba/binary_ba.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "gf/field_concept.h"
#include "net/endpoint.h"
#include "coin/coin_gen.h"
#include "dprbg/coin_pool.h"

namespace dprbg {

struct PipelineOptions {
  // In-flight window: how many Coin-Gen batches overlap. 1 = serial.
  unsigned depth = 2;
  // Round-stream id of batch 0; batch b runs on stream first_batch_id + b.
  // Must be nonzero (stream 0 is the caller's root stream) and must not
  // reuse a stream id from an earlier pipeline run on the same cluster.
  std::uint32_t first_batch_id = 1;
  // Seed coins charged per batch beyond the Bit-Gen challenge: one per
  // leader draw the batch may need. Lemma 8 makes >1 draw unlikely
  // (probability <= t/n each), so a small budget covers the expected
  // case; a batch that exhausts it fails unanimously and is retried by
  // the caller's refill loop.
  unsigned leader_coins = 3;
  // Forwarded to coin_gen (cap on BA iterations per batch).
  unsigned max_iterations = 16;
  // Launch gate: consulted once per batch index, in batch order, right
  // before that batch would be launched. Returning false stops the
  // pipeline — the gated batch and everything after it never run (their
  // result slots stay default, success=false) and `cancelled` is set.
  // The verdict MUST be identical across all players for a given batch
  // index, or the per-batch roster barriers deadlock; the beacon layer
  // guarantees this by latching verdicts in a shared HealthBoard
  // (beacon/beacon_failover.h). Empty = always launch.
  std::function<bool(unsigned)> may_launch;
  // Heartbeat: invoked on the driving thread after batch b has been
  // joined and drained (in batch order). The failover monitor uses it as
  // the committee's progress signal. Empty = no reporting.
  std::function<void(unsigned)> on_batch_joined;
};

template <FiniteField F>
struct PipelineResult {
  // Per-batch outcomes, in batch order (index b = stream
  // first_batch_id + b).
  std::vector<CoinGenResult<F>> batches;
  // Seed coins actually consumed across all batches (unspent charges are
  // returned to the pool and not counted).
  unsigned seed_coins_used = 0;
  // Batches actually launched (== batches.size() unless the launch gate
  // closed the pipeline early).
  unsigned launched = 0;
  // True iff opts.may_launch stopped the pipeline before every batch ran.
  bool cancelled = false;

  [[nodiscard]] unsigned successes() const {
    unsigned s = 0;
    for (const auto& b : batches) {
      if (b.success) ++s;
    }
    return s;
  }
};

// Runs `batches` Coin-Gen instances of M=m coins each, overlapping up to
// opts.depth of them. All players call in lockstep with identical
// arguments (as with coin_gen itself). Exceptions from worker threads are
// rethrown only after every launched batch has been joined.
template <FiniteField F, NetEndpoint Io, typename Ba = DefaultBinaryBa>
PipelineResult<F> pipelined_coin_gen(Io& io, unsigned m,
                                     CoinPool<F>& pool, unsigned batches,
                                     const PipelineOptions& opts = {},
                                     const Ba& ba = default_binary_ba) {
  PipelineResult<F> result;
  result.batches.resize(batches);
  if (batches == 0) return result;

  // Telemetry handles, acquired once per call and only when enabled (the
  // disabled mode performs zero registry mutations). Counted once per
  // player per event — see the aggregation note in common/telemetry.h.
  struct PipelineTel {
    Counter* batches = nullptr;   // joined batches
    Counter* failures = nullptr;  // joined with success=false
    Histogram* batch_us = nullptr;  // launch -> join wall time
    Histogram* gen_us = nullptr;    // worker coin_gen wall time
    Gauge* inflight = nullptr;      // current window occupancy
  };
  PipelineTel tel;
  const bool tel_on = telemetry_enabled();
  if (tel_on) {
    MetricsRegistry& reg = metrics();
    tel.batches = &reg.counter("pipeline_batches_total");
    tel.failures = &reg.counter("pipeline_batch_failures_total");
    tel.batch_us = &reg.histogram("pipeline_batch_us");
    tel.gen_us = &reg.histogram("pipeline_gen_us");
    tel.inflight = &reg.gauge("pipeline_inflight_depth");
  }

  if (opts.depth <= 1) {
    for (unsigned b = 0; b < batches; ++b) {
      if (opts.may_launch && !opts.may_launch(b)) {
        result.cancelled = true;
        break;
      }
      TelemetryClock::time_point t0;
      if (tel_on) t0 = TelemetryClock::now();
      result.batches[b] = coin_gen<F>(io, m, pool, opts.max_iterations, ba);
      if (tel_on) {
        const std::uint64_t us = telemetry_elapsed_us(t0);
        tel.batch_us->observe(us);
        tel.gen_us->observe(us);
        tel.batches->add(1);
        if (!result.batches[b].success) tel.failures->add(1);
      }
      result.seed_coins_used += result.batches[b].seed_coins_used;
      ++result.launched;
      if (opts.on_batch_joined) opts.on_batch_joined(b);
    }
    return result;
  }

  struct InFlight {
    std::thread th;
    CoinPool<F> subpool;          // this batch's seed-coin charge
    CoinGenResult<F> outcome;
    FieldCounters ops;            // worker-thread field ops, harvested
    std::exception_ptr error;
    TelemetryClock::time_point launched_at;  // set only when telemetry on
  };
  std::vector<InFlight> flight(batches);

  auto launch = [&](unsigned b) {
    InFlight& fl = flight[b];
    const std::size_t charge =
        std::min<std::size_t>(1 + opts.leader_coins, pool.remaining());
    fl.subpool.add_batch(pool.take_batch(charge));
    const std::uint32_t stream = opts.first_batch_id + b;
    if (tel_on) fl.launched_at = TelemetryClock::now();
    Histogram* const gen_us = tel.gen_us;
    fl.th = std::thread([&fl, &io, &opts, &ba, m, stream, gen_us] {
      // field_counters() is thread_local; measure this worker's delta so
      // the driver can fold it back into the driving thread's counters
      // (keeping Cluster::per_player_field_ops exact). scratch_arena()
      // (common/arena.h) is likewise thread_local: every round of this
      // batch reuses this worker's bump chunks, and no arena memory is
      // ever shared across the window's threads.
      const FieldCounters before = field_counters();
      TelemetryClock::time_point t0;
      if (gen_us != nullptr) t0 = TelemetryClock::now();
      try {
        Io& bio = io.instance(stream);
        fl.outcome =
            coin_gen<F>(bio, m, fl.subpool, opts.max_iterations, ba);
      } catch (...) {
        fl.error = std::current_exception();
      }
      if (gen_us != nullptr) gen_us->observe(telemetry_elapsed_us(t0));
      fl.ops = field_counters() - before;
    });
  };

  // Launch through the gate: once it closes, no further batch starts
  // (every player sees the same latched verdict, so all of them stop
  // launching at the same index and the join loop drains what's left).
  unsigned next_launch = 0;
  auto try_launch = [&] {
    if (result.cancelled || next_launch >= batches) return;
    if (opts.may_launch && !opts.may_launch(next_launch)) {
      result.cancelled = true;
      return;
    }
    launch(next_launch);
    ++next_launch;
  };

  const unsigned window = std::min(opts.depth, batches);
  for (unsigned i = 0; i < window; ++i) try_launch();
  if (tel_on) tel.inflight->set(next_launch);

  std::exception_ptr first_error;
  for (unsigned b = 0; b < next_launch; ++b) {  // next_launch grows below
    InFlight& fl = flight[b];
    fl.th.join();
    field_counters() += fl.ops;
    if (fl.error && !first_error) first_error = fl.error;
    result.batches[b] = std::move(fl.outcome);
    result.seed_coins_used += result.batches[b].seed_coins_used;
    if (!fl.subpool.empty()) {
      pool.add_batch(fl.subpool.take_batch(fl.subpool.remaining()));
    }
    if (tel_on) {
      tel.batch_us->observe(telemetry_elapsed_us(fl.launched_at));
      tel.batches->add(1);
      if (!result.batches[b].success) tel.failures->add(1);
    }
    if (opts.on_batch_joined) opts.on_batch_joined(b);
    try_launch();
    if (tel_on) {
      tel.inflight->set(static_cast<std::int64_t>(next_launch) - (b + 1));
    }
  }
  result.launched = next_launch;
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

}  // namespace dprbg
