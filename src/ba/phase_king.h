// Deterministic binary Byzantine agreement: the King algorithm
// (Berman-Garay-Perry style, as presented by Attiya & Welch), n > 4t.
//
// Coin-Gen says "Run any BA protocol" and the paper "assume[s] ... that
// deterministic BA is carried out" (Section 1.2). The king algorithm is
// the textbook deterministic choice; its n > 4t requirement is strictly
// weaker than the n >= 6t + 1 model of Section 4 where it is used.
//
// t + 1 phases of 2 rounds. In each phase a designated king breaks ties:
//   Round 1: everyone sends its current value; compute the majority value
//            and its multiplicity.
//   Round 2: the king sends its majority value; a player keeps its own
//            majority if its multiplicity exceeds n/2 + t, otherwise
//            adopts the king's value.
// With t+1 phases some phase has an honest king, establishing agreement;
// persistence keeps it (an agreed value has multiplicity >= n - t >
// n/2 + t for n > 4t).

#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/trace.h"
#include "net/endpoint.h"
#include "net/msg.h"

namespace dprbg {

// Runs one Byzantine agreement on a binary input. All players call it in
// lockstep; returns the agreed bit. Rounds: 2 * (t + 1).
template <NetEndpoint Io>
int phase_king_ba(Io& io, int input, unsigned instance = 0) {
  const int n = io.n();
  const int t = io.t();
  DPRBG_CHECK(n > 4 * t);
  int value = input != 0 ? 1 : 0;
  TraceSpan span(io, "phase-king", "run");

  for (int phase = 0; phase <= t; ++phase) {
    const int king = phase % n;
    const std::uint32_t vote_tag =
        make_tag(ProtoId::kPhaseKing, instance, 2 * phase);
    const std::uint32_t king_tag =
        make_tag(ProtoId::kPhaseKing, instance, 2 * phase + 1);

    // Round 1: universal exchange.
    io.send_all(vote_tag, {static_cast<std::uint8_t>(value)});
    const Inbox& in1 = io.sync();
    int count[2] = {0, 0};
    for (const Msg* m : in1.with_tag(vote_tag)) {
      if (m->body.size() == 1 && m->body[0] <= 1) ++count[m->body[0]];
    }
    const int maj = count[1] > count[0] ? 1 : 0;
    const int mult = count[maj];

    // Round 2: the king proposes its majority as the tiebreaker.
    if (io.id() == king) {
      io.send_all(king_tag, {static_cast<std::uint8_t>(maj)});
    }
    const Inbox& in2 = io.sync();
    int king_value = 0;  // default when the king is silent/garbled
    if (const Msg* m = in2.from(king, king_tag)) {
      if (m->body.size() == 1 && m->body[0] <= 1) king_value = m->body[0];
    }
    value = (mult > n / 2 + t) ? maj : king_value;
  }
  return value;
}

}  // namespace dprbg
