// Multivalued Byzantine agreement (Turpin-Coan reduction) and reliable
// broadcast built from it.
//
// The paper's motivation chain runs: shared coins -> (randomized) BA ->
// broadcast ("Coins are often used as a source of randomness to execute
// Byzantine agreement, and hence implement a broadcast channel",
// Section 4). This file completes that chain as a substrate: arbitrary
// byte-string agreement from binary agreement (n > 3t), and a broadcast
// primitive where a designated sender's value is agreed upon by all.
//
// Turpin-Coan (2 extra rounds + one binary BA):
//   Round 1: send own value; a value seen >= n-t times becomes the
//            player's "proper" candidate (at most one exists).
//   Round 2: send the candidate; let x* be the most frequent non-empty
//            candidate received. Vote 1 in binary BA iff x* was seen
//            >= n-t times.
//   If BA decides 1, output x* (all honest players' x* coincide: a
//   1-vote implies >= n-2t >= t+1 honest supporters of x*, and two
//   distinct proper candidates are impossible for n > 3t); otherwise
//   output the fallback value.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ba/binary_ba.h"
#include "common/check.h"
#include "common/trace.h"
#include "net/endpoint.h"
#include "net/msg.h"

namespace dprbg {

struct MultivaluedResult {
  std::vector<std::uint8_t> value;  // agreed value, or the fallback
  bool from_inputs = false;         // true iff BA accepted a proper value
};

template <NetEndpoint Io, typename Ba = DefaultBinaryBa>
MultivaluedResult multivalued_ba(
    Io& io, const std::vector<std::uint8_t>& my_value,
    const std::vector<std::uint8_t>& fallback = {}, unsigned instance = 0,
    const Ba& binary = default_binary_ba,
    std::size_t max_value_size = 1u << 20) {
  const int n = io.n();
  const int t = io.t();
  DPRBG_CHECK(n > 3 * t);
  TraceSpan span(io, "multivalued-ba", "run");
  const std::uint32_t r1 = make_tag(ProtoId::kRandomizedBa, instance, 40);
  const std::uint32_t r2 = make_tag(ProtoId::kRandomizedBa, instance, 41);

  // Round 1: exchange values; find the (unique) proper candidate.
  io.send_all(r1, my_value);
  const Inbox& in1 = io.sync();
  std::map<std::vector<std::uint8_t>, int> counts;
  for (const Msg* m : in1.with_tag(r1)) {
    if (m->body.size() <= max_value_size) ++counts[m->body];
  }
  std::optional<std::vector<std::uint8_t>> proper;
  for (const auto& [value, count] : counts) {
    if (count >= n - t) {
      proper = value;
      break;  // at most one value reaches n - t for n > 3t
    }
  }

  // Round 2: exchange candidates (empty message = no candidate; an empty
  // *value* is legal, so presence is flagged with a leading byte).
  {
    std::vector<std::uint8_t> body;
    body.push_back(proper.has_value() ? 1 : 0);
    if (proper && !proper->empty()) {
      body.insert(body.end(), proper->begin(), proper->end());
    }
    io.send_all(r2, body);
  }
  const Inbox& in2 = io.sync();
  std::map<std::vector<std::uint8_t>, int> candidates;
  for (const Msg* m : in2.with_tag(r2)) {
    if (m->body.empty() || m->body.size() > max_value_size + 1) continue;
    if (m->body[0] != 1) continue;
    candidates[{m->body.begin() + 1, m->body.end()}]++;
  }
  const std::pair<const std::vector<std::uint8_t>, int>* best = nullptr;
  for (const auto& entry : candidates) {
    if (best == nullptr || entry.second > best->second) best = &entry;
  }

  const int vote = (best != nullptr && best->second >= n - t) ? 1 : 0;
  const int decision = binary(io, vote, instance);

  MultivaluedResult out;
  if (decision == 1 && best != nullptr && best->second >= t + 1) {
    out.value = best->first;
    out.from_inputs = true;
  } else {
    out.value = fallback;
  }
  return out;
}

// Reliable broadcast from multivalued BA: the sender distributes its
// value, then everyone agrees on what was received. If the sender is
// honest every player outputs its value; a faulty sender still cannot
// make honest players output different values.
template <NetEndpoint Io, typename Ba = DefaultBinaryBa>
MultivaluedResult broadcast_via_ba(
    Io& io, int sender, const std::vector<std::uint8_t>& value,
    unsigned instance = 0, const Ba& binary = default_binary_ba) {
  const std::uint32_t tag = make_tag(ProtoId::kRandomizedBa, instance, 42);
  if (io.id() == sender) io.send_all(tag, value);
  const Inbox& in = io.sync();
  std::vector<std::uint8_t> received;
  if (const Msg* m = in.from(sender, tag)) received = m->body;
  return multivalued_ba(io, received, /*fallback=*/{}, instance, binary);
}

}  // namespace dprbg
