// The binary-agreement extension point shared by protocols that "run any
// BA protocol" (Coin-Gen step 10, the Turpin-Coan reduction): callers
// pick the deterministic Phase-King (default) or a coin-driven randomized
// BA, and the paper's accounting remark applies ("If a randomized BA
// protocol is used, then the coins needed by the BA protocol must be
// taken into consideration when setting the level of coins needed for
// the bootstrapping mechanism", Section 1.2).

#pragma once

#include <functional>

#include "ba/phase_king.h"
#include "net/cluster.h"

namespace dprbg {

using BinaryBa = std::function<int(PartyIo&, int input, unsigned instance)>;

inline int default_binary_ba(PartyIo& io, int input, unsigned instance) {
  return phase_king_ba(io, input, instance);
}

}  // namespace dprbg
