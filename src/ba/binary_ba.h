// The binary-agreement extension point shared by protocols that "run any
// BA protocol" (Coin-Gen step 10, the Turpin-Coan reduction): callers
// pick the deterministic Phase-King (default) or a coin-driven randomized
// BA, and the paper's accounting remark applies ("If a randomized BA
// protocol is used, then the coins needed by the BA protocol must be
// taken into consideration when setting the level of coins needed for
// the bootstrapping mechanism", Section 1.2).
//
// Protocols take the BA as a generic callable `ba(io, input, instance)`
// so it works over any NetEndpoint (raw PartyIo or a committee
// Endpoint). `DefaultBinaryBa` is the polymorphic default; the
// `BinaryBa` std::function alias remains for callers that store a
// PartyIo-bound BA (tests, examples).

#pragma once

#include <functional>

#include "ba/phase_king.h"
#include "net/cluster.h"
#include "net/endpoint.h"

namespace dprbg {

// Default BA: deterministic Phase-King, over any endpoint type.
struct DefaultBinaryBa {
  template <NetEndpoint Io>
  int operator()(Io& io, int input, unsigned instance) const {
    return phase_king_ba(io, input, instance);
  }
};

inline constexpr DefaultBinaryBa default_binary_ba{};

// Type-erased BA over a concrete PartyIo (historical signature; new code
// should prefer passing any callable straight through the templates).
using BinaryBa = std::function<int(PartyIo&, int input, unsigned instance)>;

}  // namespace dprbg
