// Randomized Byzantine agreement driven by shared coins — the paper's
// motivating application ("Shared coins are needed, amongst other things,
// for Byzantine agreement (BA) and broadcast", Section 1.1; "coins are
// often used as a source of randomness to execute Byzantine agreement,
// and hence implement a broadcast channel", Section 4).
//
// A Ben-Or-style synchronous protocol with a *common* coin, n >= 5t + 1.
// Each phase (1 round + 1 coin exposure):
//
//   1. Send the current value to all; count votes.
//   2. If some value w has > (n+t)/2 votes, adopt it (at most one value
//      can clear that bar across all honest players); if w reaches
//      n - t votes, also decide w.
//   3. Otherwise adopt the phase's shared coin.
//
// If an honest player decides w in phase p, every honest player counted
// >= n - 2t > (n+t)/2 votes for w (n > 5t) and adopted it, so all decide
// in phase p + 1. If nobody clears the adoption bar, the common coin
// matches the (unique) adopted value with probability 1/2 — expected O(1)
// phases, each consuming exactly one shared coin. This is precisely the
// consumption pattern the D-PRBG amortizes (Section 1.2: "the coins
// needed by the BA protocol must be taken into consideration when setting
// the level of coins for the bootstrapping mechanism").
//
// Every player runs all `max_phases` phases (decided players keep voting
// their decision), so the round pattern is identical everywhere; the
// failure probability of the fixed budget is ~2^-(max_phases).

#pragma once

#include <functional>
#include <optional>

#include "common/check.h"
#include "common/trace.h"
#include "gf/field_concept.h"
#include "net/cluster.h"
#include "net/endpoint.h"
#include "net/msg.h"
#include "coin/sealed_coin.h"

namespace dprbg {

// Source of shared coin bits consumed by the protocol; typically wraps
// DPrbg<F>::next_bit. Must behave identically (same sequence) at every
// honest player. The protocol takes any callable `source(io) ->
// std::optional<int>`; this alias is the type-erased form over a
// concrete PartyIo for callers that store one.
using SharedCoinSource = std::function<std::optional<int>(PartyIo&)>;

struct RandomizedBaResult {
  std::optional<int> decision;  // nullopt if the phase budget ran out
  unsigned phases_run = 0;      // phases until first decision (or budget)
  unsigned coins_consumed = 0;
};

template <NetEndpoint Io, typename CoinSource>
RandomizedBaResult randomized_ba(Io& io, int input,
                                 const CoinSource& coin_source,
                                 unsigned max_phases = 20,
                                 unsigned instance = 0) {
  const int n = io.n();
  const int t = io.t();
  DPRBG_CHECK(n >= 5 * t + 1);
  int value = input != 0 ? 1 : 0;
  RandomizedBaResult result;
  TraceSpan span(io, "randomized-ba", "run");

  for (unsigned phase = 0; phase < max_phases; ++phase) {
    const std::uint32_t vote_tag =
        make_tag(ProtoId::kRandomizedBa, instance, phase & 0xFF);
    io.send_all(vote_tag, {static_cast<std::uint8_t>(value)});
    const Inbox& in = io.sync();
    int count[2] = {0, 0};
    for (const Msg* m : in.with_tag(vote_tag)) {
      if (m->body.size() == 1 && m->body[0] <= 1) ++count[m->body[0]];
    }
    const int maj = count[1] > count[0] ? 1 : 0;
    const int mult = count[maj];

    // The coin is exposed every phase to keep all players' round pattern
    // (and coin consumption) aligned, whether or not they use it.
    const std::optional<int> coin = coin_source(io);
    ++result.coins_consumed;
    if (!coin.has_value()) return result;  // coin supply violated

    if (2 * mult > n + t) {
      value = maj;
      if (mult >= n - t && !result.decision.has_value()) {
        result.decision = maj;
        result.phases_run = phase + 1;
      }
    } else {
      value = *coin;
    }
  }
  if (!result.decision.has_value()) result.phases_run = max_phases;
  return result;
}

}  // namespace dprbg
