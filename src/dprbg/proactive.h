// Pro-active refresh of sealed coins — the application the paper calls
// out in Section 1.2: "one of the motivations and applications of our
// work is pro-active security (e.g., [8, 16]), which deals with settings
// where intruders are allowed to move over time. Our solution to
// multiple-coin generation can be easily adapted to this scenario."
//
// A mobile adversary that corrupts t players per epoch eventually visits
// more than t players overall; shares gathered across epochs would then
// reconstruct a still-sealed coin. The classical countermeasure
// (Herzberg-Jarecki-Krawczyk-Yung [16]) re-randomizes the sharing each
// epoch with verified *zero-secret* polynomials, erasing the old shares'
// value to the adversary.
//
// The refresh below adapts the paper's own batch trick to this job: each
// player deals a batch of M+1 zero-secret degree-t polynomials (f(0)=0,
// index 0 a zero-secret blinder), all batches are verified with ONE
// shared challenge — the combination polynomial must have degree <= t
// AND zero constant term, which by the Lemma 3 root argument certifies
// every polynomial in the batch with error <= (M+1)/p — and each coin's
// share is incremented by the first t+1 accepted dealers' contributions
// (any t+1 dealers include an honest one, so the re-randomization is
// uniform).
//
// Model: Section 3 (n >= 3t+1, broadcast for the combination values), as
// with coin_gen_broadcast; the full point-to-point treatment would reuse
// Coin-Gen's clique/grade-cast/BA machinery verbatim.
//
// The second protocol here, cross_roster_reshare, extends the same batch
// trick from "re-randomize within one roster" to "move the sharing to a
// DIFFERENT roster": epoch reconfiguration for the sharded beacon
// (beacon/beacon_failover.h), where a retiring committee hands its
// sealed CoinPool to its replacement without ever exposing the coins.

#pragma once

#include <map>
#include <span>
#include <vector>

#include "common/check.h"
#include "gf/field_concept.h"
#include "net/endpoint.h"
#include "poly/polynomial.h"
#include "coin/bitgen.h"
#include "coin/sealed_coin.h"

namespace dprbg {

// A uniformly random degree-<=t polynomial with zero constant term:
// x * g(x) for uniform g of degree <= t-1.
template <FiniteField F>
Polynomial<F> random_zero_secret(unsigned t, Chacha& rng) {
  std::vector<F> coeffs(t + 1, F::zero());
  for (unsigned i = 1; i <= t; ++i) coeffs[i] = random_element<F>(rng);
  return Polynomial<F>{std::move(coeffs)};
}

template <FiniteField F>
struct RefreshResult {
  bool success = false;
  // Dealers whose zero-secret batch verified.
  std::vector<int> accepted_dealers;
  // The t+1 dealers whose contributions were added.
  std::vector<int> refreshers;
  // Refreshed coins (same values as before, fresh sharings).
  std::vector<SealedCoin<F>> coins;
};

// Refreshes the sharings of `coins` in place-value terms: the coin
// values are unchanged, the shares are re-randomized. 2 rounds, one
// challenge coin. All players pass their views of the same coins in the
// same order.
template <FiniteField F, NetEndpoint Io>
RefreshResult<F> proactive_refresh(Io& io,
                                   std::span<const SealedCoin<F>> coins,
                                   const SealedCoin<F>& challenge_coin,
                                   unsigned instance = 0) {
  const unsigned t = static_cast<unsigned>(io.t());
  DPRBG_CHECK(io.n() >= static_cast<int>(3 * t + 1));
  const unsigned m = static_cast<unsigned>(coins.size());
  const unsigned m_total = m + 1;  // zero-secret blinder at index 0

  std::vector<Polynomial<F>> my_polys;
  my_polys.reserve(m_total);
  for (unsigned j = 0; j < m_total; ++j) {
    my_polys.push_back(random_zero_secret<F>(t, io.rng()));
  }
  const auto bg =
      bit_gen_all<F>(io, my_polys, m_total, t, challenge_coin, instance);

  RefreshResult<F> result;
  if (!bg.challenge.has_value()) return result;
  for (int dealer = 0; dealer < io.n(); ++dealer) {
    const auto& poly = bg.views[dealer].poly;
    // Zero-secret batches must combine to a polynomial with F(0) = 0:
    // F(0) = sum_j r^j f_j(0), and a nonzero f_j(0) survives into a
    // nonzero degree-(M+1) polynomial in r with probability 1 - (M+1)/p.
    if (poly.has_value() && (*poly)(F::zero()).is_zero()) {
      result.accepted_dealers.push_back(dealer);
    }
  }
  if (result.accepted_dealers.size() < t + 1) return result;
  result.refreshers.assign(result.accepted_dealers.begin(),
                           result.accepted_dealers.begin() + t + 1);
  for (int dealer : result.refreshers) {
    if (bg.views[dealer].my_row.empty()) return result;
  }

  result.coins.reserve(m);
  bool holds_all = true;
  for (const auto& c : coins) holds_all = holds_all && c.share.has_value();
  if (holds_all) {
    // Share-holding players (the common case) sum the refreshers' rows
    // in one blocked pass; the add count per coin is the same t+1 adds
    // the scalar loop performs.
    ArenaScope scope(scratch_arena());
    ScratchVec<const F*> row_ptrs(scope, result.refreshers.size());
    for (std::size_t c = 0; c < result.refreshers.size(); ++c) {
      // Row offset +1 skips the zero-secret blinder at index 0.
      row_ptrs[c] = bg.views[result.refreshers[c]].my_row.data() + 1;
    }
    ScratchVec<F> delta(scope, m);
    accumulate_rows_block<F>(row_ptrs, delta);
    for (unsigned h = 0; h < m; ++h) {
      SealedCoin<F> refreshed = coins[h];
      refreshed.share = *refreshed.share + delta[h];
      result.coins.push_back(refreshed);
    }
  } else {
    for (unsigned h = 0; h < m; ++h) {
      SealedCoin<F> refreshed = coins[h];
      if (refreshed.share.has_value()) {
        F delta = F::zero();
        for (int dealer : result.refreshers) {
          delta = delta + bg.views[dealer].my_row[h + 1];
        }
        refreshed.share = *refreshed.share + delta;
      }
      result.coins.push_back(refreshed);
    }
  }
  result.success = true;
  return result;
}

template <FiniteField F>
struct ReshareResult {
  bool success = false;
  // Old-roster dealers whose reshare batch verified (degree <= t_new).
  std::vector<int> accepted_dealers;
  // The first t_old+1 accepted dealers, whose constant terms determine
  // the migrated secrets.
  std::vector<int> resharers;
  // New members: the migrated coins (same values, degree-t_new sharings
  // over the NEW roster). Old members: shareless views of the same coins
  // — their old shares are dead after the epoch and must not be reused.
  std::vector<SealedCoin<F>> coins;
};

// Cross-roster reshare: moves the sharings of `coins` from an old roster
// to a new one without reconstructing any coin. Runs over a BRIDGE
// committee holding the union of both rosters, with the old roster's
// members occupying union-local ids 0..n_old-1 and the new roster's
// members n_old..n-1 (new-local id j = union id n_old + j).
//
// Protocol (2 rounds, one challenge coin):
//   Dealer i (old member holding shares of all m coins): draws one
//   uniform degree-t_new blinder plus, per coin h, a uniform degree-t_new
//   polynomial with constant term = its OWN share f_h(x_i); sends new
//   member j the batch evaluated at j's NEW-local point.      [1 round]
//   All:    r <- Coin-Expose(challenge) on the union (new members hold
//           no share of the challenge but still learn it).
//   New j:  sends everyone the Horner combination per dealer. [1 round]
//   All:    Berlekamp-Welch each dealer's combination over the NEW
//           roster's points; accepted iff deg <= t_new. By the Lemma 3
//           root argument one challenge certifies the whole batch with
//           error <= (m+1)/p.
//   New j:  for the first t_old+1 accepted dealers, Lagrange-combines
//           their rows at 0 over the OLD points: g_h = sum_i lambda_i
//           h_{i,h} has degree <= t_new and g_h(0) = f_h(0) exactly
//           (t_old+1 points determine the degree-t_old f_h), so j's new
//           share is sum_i lambda_i h_{i,h}(x_j).
//
// Secrecy: every g_h is blinded by the honest resharers' fresh
// randomness, so <= t_new new members plus the retired old shares reveal
// nothing (HJKY-style, as with proactive_refresh). Same Section 3 model
// caveat: combination values travel point-to-point where the paper
// assumes broadcast; the full treatment would reuse Coin-Gen's
// clique/grade-cast/BA machinery. Requires n_new >= 3t_new+1 and
// t_old+1 <= n_old surviving dealers.
//
// All players pass their views of the same coins in the same order; new
// members (who hold no old shares) pass shareless views with the correct
// degree.
template <FiniteField F, NetEndpoint Io>
ReshareResult<F> cross_roster_reshare(Io& io, int n_old, unsigned t_new,
                                      std::span<const SealedCoin<F>> coins,
                                      const SealedCoin<F>& challenge_coin,
                                      unsigned instance = 0) {
  ReshareResult<F> result;
  const int n_new = io.n() - n_old;
  DPRBG_CHECK(n_old >= 1);
  DPRBG_CHECK(n_new >= static_cast<int>(3 * t_new + 1));
  const unsigned m = static_cast<unsigned>(coins.size());
  DPRBG_CHECK(m >= 1);
  const unsigned t_old = coins[0].degree;
  for (const auto& c : coins) DPRBG_CHECK(c.degree == t_old);
  DPRBG_CHECK(static_cast<int>(t_old + 1) <= n_old);
  const unsigned m_total = m + 1;  // blinder at index 0

  const std::uint32_t row_tag = make_tag(ProtoId::kReshare, instance, 0);
  const std::uint32_t combo_tag = make_tag(ProtoId::kReshare, instance, 1);
  const bool old_side = io.id() < n_old;

  // Round A: old-side dealers distribute rows to the new roster (a
  // dealer participates only if it holds shares of ALL m coins — partial
  // holders would leak which coins they hold through presence patterns).
  {
    TraceSpan deal(io, "reshare", "deal");
    bool holds_all = old_side;
    for (const auto& c : coins) holds_all = holds_all && c.share.has_value();
    if (holds_all) {
      std::vector<Polynomial<F>> polys;
      polys.reserve(m_total);
      polys.push_back(Polynomial<F>::random(t_new, io.rng()));
      for (const auto& c : coins) {
        polys.push_back(
            Polynomial<F>::random_with_secret(*c.share, t_new, io.rng()));
      }
      ArenaScope scope(scratch_arena());
      ScratchVec<F> vals(scope, m_total);
      for (int j = 0; j < n_new; ++j) {
        eval_polys_block<F>(polys, eval_point<F>(j), vals);
        ByteWriter w(m_total * F::kBytes);
        for (const F& v : vals) write_elem(w, v);
        io.send(n_old + j, row_tag, std::move(w).take());
      }
    }
  }

  // The challenge exposure rides the same round as the rows; the dealers
  // committed before anyone could know r.
  TraceSpan challenge(io, "reshare", "challenge");
  const std::optional<F> r_val = coin_expose<F>(io, challenge_coin, instance);
  challenge.close();

  // New members harvest their rows (indexed by dealer = old-local id).
  std::vector<std::vector<F>> rows(static_cast<std::size_t>(n_old));
  if (!old_side) {
    for (int dealer = 0; dealer < n_old; ++dealer) {
      if (const Msg* msg = io.inbox().from(dealer, row_tag)) {
        if (auto row = decode_elem_row<F>(msg->body, m_total)) {
          rows[static_cast<std::size_t>(dealer)] = std::move(*row);
        }
      }
    }
  }
  if (!r_val.has_value()) {
    io.sync();
    return result;
  }

  // Round B: new members send everyone the batched combinations (the
  // bit_gen_all wire format: presence flag + beta per dealer). Old
  // members receive them too, so both sides agree on the accepted set.
  TraceSpan combine(io, "reshare", "combine");
  if (!old_side) {
    // Blocked Horner combinations over the present dealers' rows, same
    // wire format and per-row op counts as the scalar loop (bitgen.h has
    // the same shape).
    ArenaScope scope(scratch_arena());
    ScratchVec<const F*> row_ptrs(scope, static_cast<std::size_t>(n_old));
    std::size_t present = 0;
    for (int dealer = 0; dealer < n_old; ++dealer) {
      const auto& row = rows[static_cast<std::size_t>(dealer)];
      if (!row.empty()) row_ptrs[present++] = row.data();
    }
    ScratchVec<F> betas(scope, present);
    batch_combine_block<F>(
        std::span<const F* const>(row_ptrs.data(), present), m_total,
        *r_val, betas);
    ByteWriter w(static_cast<std::size_t>(n_old) * (1 + F::kBytes));
    std::size_t next_beta = 0;
    for (int dealer = 0; dealer < n_old; ++dealer) {
      const bool have = !rows[static_cast<std::size_t>(dealer)].empty();
      w.u8(have ? 1 : 0);
      write_elem(w, have ? betas[next_beta++] : F::zero());
    }
    io.send_all(combo_tag, w.data());
  }
  const Inbox& in = io.sync();
  combine.close();

  // Decode each dealer's combination over the NEW roster's eval points:
  // combos are keyed by NEW-local sender id so decode_combination's
  // eval_point(sender) lands on the points the dealers evaluated at.
  TraceSpan decode(io, "reshare", "decode");
  std::vector<std::map<int, F>> combos(static_cast<std::size_t>(n_old));
  for (const Msg* msg : in.with_tag(combo_tag)) {
    if (msg->from < n_old) continue;  // only the new roster combines
    const auto batch = bitgen_detail::decode_combo_batch<F>(msg->body, n_old);
    if (!batch) {
      // malformed: drop sender from every instance, and score it
      io.note_decode_failure(msg->from);
      continue;
    }
    for (int dealer = 0; dealer < n_old; ++dealer) {
      if ((*batch)[dealer]) {
        combos[static_cast<std::size_t>(dealer)].emplace(
            msg->from - n_old, *(*batch)[dealer]);
      }
    }
  }
  for (int dealer = 0; dealer < n_old; ++dealer) {
    const auto poly = bitgen_detail::decode_combination<F>(
        combos[static_cast<std::size_t>(dealer)], n_new, t_new);
    if (poly.has_value()) result.accepted_dealers.push_back(dealer);
  }
  if (result.accepted_dealers.size() < t_old + 1) return result;
  result.resharers.assign(result.accepted_dealers.begin(),
                          result.accepted_dealers.begin() + t_old + 1);

  result.coins.reserve(m);
  if (old_side) {
    // The old shares are now dead: the new roster holds the live
    // sharing. Old members keep shareless views (they still learn coin
    // values at expose time, as any non-holder does).
    for (unsigned h = 0; h < m; ++h) {
      result.coins.push_back(SealedCoin<F>{std::nullopt, t_new});
    }
    result.success = true;
    return result;
  }

  for (int dealer : result.resharers) {
    if (rows[static_cast<std::size_t>(dealer)].empty()) return result;
  }
  // Lagrange coefficients at 0 over the resharers' OLD eval points:
  // lambda_i = prod_{k != i} x_k / (x_k - x_i).
  std::vector<F> lambda;
  lambda.reserve(result.resharers.size());
  for (std::size_t i = 0; i < result.resharers.size(); ++i) {
    const F xi = eval_point<F>(result.resharers[i]);
    F li = F::one();
    for (std::size_t k = 0; k < result.resharers.size(); ++k) {
      if (k == i) continue;
      const F xk = eval_point<F>(result.resharers[k]);
      li = li * (xk / (xk - xi));
    }
    lambda.push_back(li);
  }
  for (unsigned h = 0; h < m; ++h) {
    F share = F::zero();
    for (std::size_t i = 0; i < result.resharers.size(); ++i) {
      const auto& row =
          rows[static_cast<std::size_t>(result.resharers[i])];
      share = share + lambda[i] * row[h + 1];
    }
    result.coins.push_back(SealedCoin<F>{share, t_new});
  }
  result.success = true;
  return result;
}

}  // namespace dprbg
