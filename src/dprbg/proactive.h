// Pro-active refresh of sealed coins — the application the paper calls
// out in Section 1.2: "one of the motivations and applications of our
// work is pro-active security (e.g., [8, 16]), which deals with settings
// where intruders are allowed to move over time. Our solution to
// multiple-coin generation can be easily adapted to this scenario."
//
// A mobile adversary that corrupts t players per epoch eventually visits
// more than t players overall; shares gathered across epochs would then
// reconstruct a still-sealed coin. The classical countermeasure
// (Herzberg-Jarecki-Krawczyk-Yung [16]) re-randomizes the sharing each
// epoch with verified *zero-secret* polynomials, erasing the old shares'
// value to the adversary.
//
// The refresh below adapts the paper's own batch trick to this job: each
// player deals a batch of M+1 zero-secret degree-t polynomials (f(0)=0,
// index 0 a zero-secret blinder), all batches are verified with ONE
// shared challenge — the combination polynomial must have degree <= t
// AND zero constant term, which by the Lemma 3 root argument certifies
// every polynomial in the batch with error <= (M+1)/p — and each coin's
// share is incremented by the first t+1 accepted dealers' contributions
// (any t+1 dealers include an honest one, so the re-randomization is
// uniform).
//
// Model: Section 3 (n >= 3t+1, broadcast for the combination values), as
// with coin_gen_broadcast; the full point-to-point treatment would reuse
// Coin-Gen's clique/grade-cast/BA machinery verbatim.

#pragma once

#include <span>
#include <vector>

#include "common/check.h"
#include "gf/field_concept.h"
#include "net/endpoint.h"
#include "poly/polynomial.h"
#include "coin/bitgen.h"
#include "coin/sealed_coin.h"

namespace dprbg {

// A uniformly random degree-<=t polynomial with zero constant term:
// x * g(x) for uniform g of degree <= t-1.
template <FiniteField F>
Polynomial<F> random_zero_secret(unsigned t, Chacha& rng) {
  std::vector<F> coeffs(t + 1, F::zero());
  for (unsigned i = 1; i <= t; ++i) coeffs[i] = random_element<F>(rng);
  return Polynomial<F>{std::move(coeffs)};
}

template <FiniteField F>
struct RefreshResult {
  bool success = false;
  // Dealers whose zero-secret batch verified.
  std::vector<int> accepted_dealers;
  // The t+1 dealers whose contributions were added.
  std::vector<int> refreshers;
  // Refreshed coins (same values as before, fresh sharings).
  std::vector<SealedCoin<F>> coins;
};

// Refreshes the sharings of `coins` in place-value terms: the coin
// values are unchanged, the shares are re-randomized. 2 rounds, one
// challenge coin. All players pass their views of the same coins in the
// same order.
template <FiniteField F, NetEndpoint Io>
RefreshResult<F> proactive_refresh(Io& io,
                                   std::span<const SealedCoin<F>> coins,
                                   const SealedCoin<F>& challenge_coin,
                                   unsigned instance = 0) {
  const unsigned t = static_cast<unsigned>(io.t());
  DPRBG_CHECK(io.n() >= static_cast<int>(3 * t + 1));
  const unsigned m = static_cast<unsigned>(coins.size());
  const unsigned m_total = m + 1;  // zero-secret blinder at index 0

  std::vector<Polynomial<F>> my_polys;
  my_polys.reserve(m_total);
  for (unsigned j = 0; j < m_total; ++j) {
    my_polys.push_back(random_zero_secret<F>(t, io.rng()));
  }
  const auto bg =
      bit_gen_all<F>(io, my_polys, m_total, t, challenge_coin, instance);

  RefreshResult<F> result;
  if (!bg.challenge.has_value()) return result;
  for (int dealer = 0; dealer < io.n(); ++dealer) {
    const auto& poly = bg.views[dealer].poly;
    // Zero-secret batches must combine to a polynomial with F(0) = 0:
    // F(0) = sum_j r^j f_j(0), and a nonzero f_j(0) survives into a
    // nonzero degree-(M+1) polynomial in r with probability 1 - (M+1)/p.
    if (poly.has_value() && (*poly)(F::zero()).is_zero()) {
      result.accepted_dealers.push_back(dealer);
    }
  }
  if (result.accepted_dealers.size() < t + 1) return result;
  result.refreshers.assign(result.accepted_dealers.begin(),
                           result.accepted_dealers.begin() + t + 1);
  for (int dealer : result.refreshers) {
    if (bg.views[dealer].my_row.empty()) return result;
  }

  result.coins.reserve(m);
  for (unsigned h = 0; h < m; ++h) {
    SealedCoin<F> refreshed = coins[h];
    if (refreshed.share.has_value()) {
      F delta = F::zero();
      for (int dealer : result.refreshers) {
        delta = delta + bg.views[dealer].my_row[h + 1];
      }
      refreshed.share = *refreshed.share + delta;
    }
    result.coins.push_back(refreshed);
  }
  result.success = true;
  return result;
}

}  // namespace dprbg
