// Shared-randomness sampling utilities on top of the D-PRBG.
//
// Applications rarely want raw bits: they want jointly-random *choices* —
// a leader nobody could predict or bias, a committee, a shuffled order.
// These helpers turn the D-PRBG's unanimous k-ary coins into unanimous
// samples. Every helper consumes coins through the generator, so all
// honest players produce the SAME sample, and the adversary's coalition
// could neither predict nor influence it beyond its 2^-k error (the
// shared-coin guarantees of Section 1.1 lift directly).
//
// Rejection sampling keeps every output exactly uniform: a k-ary coin is
// a uniform value in [0, 2^k); values in the "overhang" above the largest
// multiple of the bound are rejected and a fresh coin is drawn (expected
// < 2 coins per sample, and all honest players reject in lockstep since
// they see the same coin values).

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"
#include "gf/field_concept.h"
#include "net/endpoint.h"
#include "dprbg/dprbg.h"

namespace dprbg {

// Uniform shared integer in [0, bound). Consumes one coin in expectation
// (at most a few under rejection). Returns nullopt only on coin-supply
// failure.
template <FiniteField F, NetEndpoint Io>
std::optional<std::uint64_t> shared_uniform(Io& io, DPrbg<F>& prbg,
                                            std::uint64_t bound) {
  DPRBG_CHECK(bound > 0);
  // Accept coins in [threshold, 2^k): that interval's length is an exact
  // multiple of bound, so (v % bound) is exactly uniform.
  const std::uint64_t threshold =
      F::kBits >= 64 ? (0 - bound) % bound
                     : (std::uint64_t{1} << F::kBits) % bound;
  while (true) {
    const auto coin = prbg.next_coin(io);
    if (!coin) return std::nullopt;
    const std::uint64_t v = coin->to_uint();
    if (v >= threshold) return v % bound;
    // Rejected: every honest player saw the same coin and rejects too.
  }
}

// Uniformly random shared leader in [0, n).
template <FiniteField F, NetEndpoint Io>
std::optional<int> elect_leader(Io& io, DPrbg<F>& prbg) {
  const auto v = shared_uniform<F>(io, prbg,
                                   static_cast<std::uint64_t>(io.n()));
  if (!v) return std::nullopt;
  return static_cast<int>(*v);
}

// Uniformly random shared committee: a size-`size` subset of [0, n),
// sampled without replacement (partial Fisher-Yates driven by shared
// coins). Returned sorted.
template <FiniteField F, NetEndpoint Io>
std::optional<std::vector<int>> elect_committee(Io& io, DPrbg<F>& prbg,
                                                int size) {
  const int n = io.n();
  DPRBG_CHECK(size >= 0 && size <= n);
  std::vector<int> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = i;
  for (int i = 0; i < size; ++i) {
    const auto j = shared_uniform<F>(io, prbg,
                                     static_cast<std::uint64_t>(n - i));
    if (!j) return std::nullopt;
    std::swap(ids[i], ids[i + static_cast<int>(*j)]);
  }
  std::vector<int> committee(ids.begin(), ids.begin() + size);
  std::sort(committee.begin(), committee.end());
  return committee;
}

// Uniformly random shared permutation of [0, n) (full Fisher-Yates).
template <FiniteField F, NetEndpoint Io>
std::optional<std::vector<int>> shared_permutation(Io& io,
                                                   DPrbg<F>& prbg, int n) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    const auto j = shared_uniform<F>(io, prbg,
                                     static_cast<std::uint64_t>(i + 1));
    if (!j) return std::nullopt;
    std::swap(perm[i], perm[static_cast<int>(*j)]);
  }
  return perm;
}

}  // namespace dprbg
