// The Distributed Pseudo-Random Bit Generator with bootstrapping
// (Fig. 1, Sections 1.1-1.2): the paper's headline object.
//
//            O(k) bits                    kM bits
//   Initial seed  ----->  D-PRBG  ----->  Consume bits
//                            ^               |
//                            +--- O(k) bits -+
//
// Each player wraps its pool of sealed coins in a DPrbg. Drawing a coin
// exposes the next sealed coin (one round). When the pool level falls to
// the reserve threshold, the generator "stretches" the remaining seed:
// one Coin-Gen run consumes an expected ~2 seed coins and mints M fresh
// sealed coins — including the seed for the next refill, so after the
// once-only genesis the supply never ends ("the generation process is
// endless, as bits are generated upon demand", Section 1.4).
//
// All honest players drive their DPrbg instances in lockstep (same call
// sequence); the pools stay structurally identical, so refills trigger at
// the same instant everywhere.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/telemetry.h"
#include "gf/field_concept.h"
#include "net/endpoint.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "coin/coin_pipeline.h"
#include "coin/sealed_coin.h"
#include "dprbg/coin_pool.h"
#include "dprbg/proactive.h"

namespace dprbg {

template <FiniteField F>
class DPrbg {
 public:
  struct Options {
    // M: sealed coins minted per Coin-Gen run. Soundness degrades as M/p
    // (Lemma 3), so M can be "exponentially large" in k = F::kBits.
    unsigned batch_size = 64;
    // Refill when the pool drops below this level. Must cover one
    // Coin-Gen run: 1 challenge + expected O(1) leader draws + slack.
    unsigned reserve = 6;
    // Leader-draw budget per Coin-Gen run.
    unsigned max_iterations = 16;
    // Refill pipelining: how many Coin-Gen batches a refill keeps in
    // flight (coin/coin_pipeline.h). 1 (the default) is the serial
    // pre-pipeline behavior, bit-for-bit. Depths > 1 run each batch on
    // its own round stream and overlap their rounds; every refill uses a
    // fresh block of stream ids, so stale delayed traffic from an old
    // refill can never alias a live stream.
    unsigned pipeline_depth = 1;
    // Seed-coin charge per pipelined batch beyond the challenge (see
    // PipelineOptions::leader_coins). Unused in serial mode.
    unsigned leader_coins = 3;
  };

  DPrbg(Options opts, std::vector<SealedCoin<F>> genesis_coins)
      : opts_(opts) {
    // The generator's pool is the canonical seed pool — the one whose
    // depth an operator watches (pool_depth gauge and take counters).
    pool_.watch_telemetry();
    for (auto& c : genesis_coins) pool_.add(std::move(c));
  }

  // Draws the next shared k-ary coin. Runs Coin-Expose (1 round), plus a
  // Coin-Gen refill first when the pool is low. Returns nullopt only when
  // the model's guarantees were violated (refill impossible).
  template <NetEndpoint Io>
  std::optional<F> next_coin(Io& io) {
    if (!maybe_refill(io)) return std::nullopt;
    if (pool_.empty()) return std::nullopt;
    const unsigned instance =
        static_cast<unsigned>(pool_.consumed() % 4096);
    const SealedCoin<F> coin = pool_.take();
    ++coins_drawn_;
    return coin_expose<F>(io, coin, instance);
  }

  // Binary projection ("F(0) mod 2", Fig. 6). One fresh coin per bit:
  // safe for *adaptive* consumers (e.g. randomized BA, where each phase's
  // coin must stay unpredictable until that phase's votes are cast).
  template <NetEndpoint Io>
  std::optional<int> next_bit(Io& io) {
    const auto v = next_coin(io);
    if (!v) return std::nullopt;
    return coin_to_bit(*v);
  }

  // Sliced bits: "As all our coins will be generated in the field
  // GF(2^k) we can assume that each coin generates in fact k random
  // coins in {0,1}. Hence, we shall call these coins 'k-coins'"
  // (Section 3.1). One exposure yields k bits.
  //
  // SECURITY CAVEAT: all k bits become public at the single exposure.
  // Use this for non-adaptive randomness (sampling, symmetric tie-
  // breaking, seeding) — NOT where each bit must remain secret until a
  // later adversarial choice (use next_bit there).
  template <NetEndpoint Io>
  std::optional<int> next_bit_cached(Io& io) {
    if (cached_bits_ == 0) {
      const auto v = next_coin(io);
      if (!v) return std::nullopt;
      bit_cache_ = v->to_uint();
      cached_bits_ = F::kBits;
    }
    const int bit = static_cast<int>(bit_cache_ & 1u);
    bit_cache_ >>= 1;
    --cached_bits_;
    return bit;
  }

  // Pro-actively re-randomizes every sealed coin left in the pool
  // (Section 1.2's mobile-adversary epochs), consuming one pool coin as
  // the refresh challenge. Model caveat: the refresh subprotocol runs in
  // the Section 3 broadcast model (see dprbg/proactive.h); call it at
  // epoch boundaries where that assumption holds (or when coins feed
  // applications other than broadcast). Returns false — uniformly across
  // honest players — when the pool is too small or the refresh failed
  // (the old, still-valid sharings are kept in that case).
  template <NetEndpoint Io>
  bool refresh_pool(Io& io) {
    if (pool_.remaining() < 2) return false;
    const unsigned instance =
        static_cast<unsigned>(pool_.consumed() % 4096);
    const SealedCoin<F> challenge = pool_.take();
    const std::vector<SealedCoin<F>> current(pool_.coins().begin(),
                                             pool_.coins().end());
    auto result = proactive_refresh<F>(
        io, std::span<const SealedCoin<F>>(current), challenge, instance);
    if (!result.success) return false;
    pool_.replace_all(std::move(result.coins));
    ++refreshes_;
    return true;
  }

  [[nodiscard]] std::size_t pool_remaining() const {
    return pool_.remaining();
  }
  [[nodiscard]] std::uint64_t refreshes() const { return refreshes_; }
  [[nodiscard]] std::uint64_t coins_drawn() const { return coins_drawn_; }
  [[nodiscard]] std::uint64_t refills() const { return refills_; }
  [[nodiscard]] std::uint64_t seed_coins_spent_refilling() const {
    return seed_spent_;
  }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  // Adaptive refill ("a constant threshold triggering the generation of
  // new coins", Section 1.2). Returns false when refilling failed and the
  // pool cannot serve the request.
  template <NetEndpoint Io>
  bool maybe_refill(Io& io) {
    if (opts_.pipeline_depth <= 1) {
      while (pool_.remaining() <= opts_.reserve) {
        TelemetryClock::time_point t0;
        const bool tel_on = telemetry_enabled();
        if (tel_on) t0 = TelemetryClock::now();
        auto gen = coin_gen<F>(io, opts_.batch_size, pool_,
                               opts_.max_iterations);
        if (tel_on) note_refill_telemetry(t0);
        seed_spent_ += gen.seed_coins_used;
        if (!gen.success) return pool_.remaining() > 0;
        ++refills_;
        for (auto& c : gen.sealed_coins(static_cast<unsigned>(io.t()))) {
          pool_.add(std::move(c));
        }
      }
      return true;
    }
    // Pipelined refill: one full window of overlapped batches per pass.
    // The trigger threshold grows to cover charging the whole window's
    // seed coins up front (short-charged batches would fail and waste a
    // pass). Every pass consumes a fresh block of stream ids — ids are
    // never reused, so an envelope delayed from an old pass can only ever
    // be rejected by the demux, not surface in a live batch.
    const std::size_t reserve_eff = std::max<std::size_t>(
        opts_.reserve,
        std::size_t{opts_.pipeline_depth} * (1 + opts_.leader_coins));
    while (pool_.remaining() <= reserve_eff) {
      PipelineOptions popts;
      popts.depth = opts_.pipeline_depth;
      popts.first_batch_id = next_batch_id_;
      popts.leader_coins = opts_.leader_coins;
      popts.max_iterations = opts_.max_iterations;
      next_batch_id_ += opts_.pipeline_depth;
      TelemetryClock::time_point t0;
      const bool tel_on = telemetry_enabled();
      if (tel_on) t0 = TelemetryClock::now();
      auto gen = pipelined_coin_gen<F>(io, opts_.batch_size, pool_,
                                       opts_.pipeline_depth, popts);
      if (tel_on) note_refill_telemetry(t0);
      seed_spent_ += gen.seed_coins_used;
      if (gen.successes() == 0) return pool_.remaining() > 0;
      for (const auto& batch : gen.batches) {
        if (!batch.success) continue;
        ++refills_;
        pool_.add_batch(batch.sealed_coins(static_cast<unsigned>(io.t())));
      }
    }
    return true;
  }

  // One refill pass (serial coin_gen run or pipelined window) completed.
  // Called only when telemetry is enabled at pass start.
  static void note_refill_telemetry(TelemetryClock::time_point t0) {
    static Histogram& refill_us = metrics().histogram("dprbg_refill_us");
    static Counter& refills = metrics().counter("dprbg_refills_total");
    refill_us.observe(telemetry_elapsed_us(t0));
    refills.add(1);
  }

  Options opts_;
  CoinPool<F> pool_;
  std::uint64_t coins_drawn_ = 0;
  std::uint64_t refills_ = 0;
  std::uint64_t seed_spent_ = 0;
  std::uint64_t bit_cache_ = 0;
  unsigned cached_bits_ = 0;
  std::uint64_t refreshes_ = 0;
  // Next unused round-stream id for pipelined refills (stream 0 is the
  // root stream; ids advance monotonically and are never reused).
  std::uint32_t next_batch_id_ = 1;
};

}  // namespace dprbg
