// Per-player pool of sealed coins (the "distributed seed" storage of the
// bootstrap loop, Fig. 1).
//
// Every honest player holds a structurally identical pool (same coins in
// the same order; only the share values differ), and all honest players
// consume coins in lockstep FIFO order — the pool index doubles as the
// Coin-Expose instance tag, so concurrent exposures never cross wires.

#pragma once

#include <cstddef>
#include <deque>
#include <iterator>
#include <vector>

#include "common/check.h"
#include "common/telemetry.h"
#include "gf/field_concept.h"
#include "coin/sealed_coin.h"

namespace dprbg {

template <FiniteField F>
class CoinPool {
 public:
  CoinPool() = default;

  // Opts this pool instance into telemetry (pool_depth gauge,
  // pool_taken_total / pool_drained_total counters). Only the canonical
  // seed pool should watch — DPrbg enables it on its own pool — so that
  // scratch pools (the pipeline's per-batch subpool charges) don't
  // thrash the depth gauge or double-count takes.
  void watch_telemetry() { watched_ = true; }

  void add(SealedCoin<F> coin) {
    coins_.push_back(std::move(coin));
    note_depth();
  }

  [[nodiscard]] std::size_t remaining() const { return coins_.size(); }
  [[nodiscard]] bool empty() const { return coins_.empty(); }

  // Total coins ever taken; identical across honest players, hence usable
  // as a globally consistent instance id for the next exposure.
  [[nodiscard]] std::size_t consumed() const { return consumed_; }

  // Read-only view of the queued coins (front = next to be taken).
  [[nodiscard]] const std::deque<SealedCoin<F>>& coins() const {
    return coins_;
  }

  // Replaces the queued coins in place (same count, same order), used by
  // pro-active refresh: the coin VALUES are unchanged, only the sharings
  // rotate, so cross-player pool alignment is preserved.
  void replace_all(std::vector<SealedCoin<F>> fresh) {
    DPRBG_CHECK(fresh.size() == coins_.size());
    coins_.assign(std::make_move_iterator(fresh.begin()),
                  std::make_move_iterator(fresh.end()));
  }

  // Pops the next coin. All honest players call this in the same order.
  SealedCoin<F> take() {
    DPRBG_CHECK(!coins_.empty());
    SealedCoin<F> c = std::move(coins_.front());
    coins_.pop_front();
    ++consumed_;
    note_take(1);
    return c;
  }

  // Pops the next m coins at once (front first). Equivalent to m take()
  // calls — consumed() advances by m — but a single bulk splice. The
  // pipelined refill loop uses this to charge each in-flight Coin-Gen
  // batch its seed-coin budget up front, which keeps the pool index /
  // instance-id alignment identical across honest players no matter how
  // the batches interleave in wall-clock.
  std::vector<SealedCoin<F>> take_batch(std::size_t m) {
    DPRBG_CHECK(m <= coins_.size());
    std::vector<SealedCoin<F>> out;
    out.reserve(m);
    const auto end = coins_.begin() + static_cast<std::ptrdiff_t>(m);
    out.assign(std::make_move_iterator(coins_.begin()),
               std::make_move_iterator(end));
    coins_.erase(coins_.begin(), end);
    consumed_ += m;
    note_take(m);
    return out;
  }

  // Appends a run of coins in order (the bulk form of add()); used to
  // return a batch's unspent seed coins and to bank freshly generated
  // ones.
  void add_batch(std::vector<SealedCoin<F>> fresh) {
    for (auto& c : fresh) coins_.push_back(std::move(c));
    note_depth();
  }

 private:
  // Telemetry is bumped once per honest player per event (lockstep
  // pools agree, so the depth gauge is last-writer-wins consistent; the
  // counters read as players x coins). Guarded so the disabled mode
  // never touches the registry; the statics bind once and stay valid
  // across registry resets.
  void note_depth() {
    if (!watched_ || !telemetry_enabled()) return;
    static Gauge& depth = metrics().gauge("pool_depth");
    depth.set(static_cast<std::int64_t>(coins_.size()));
  }
  void note_take(std::size_t m) {
    if (!watched_ || !telemetry_enabled()) return;
    static Counter& taken = metrics().counter("pool_taken_total");
    static Counter& drained = metrics().counter("pool_drained_total");
    taken.add(m);
    if (coins_.empty()) drained.add(1);
    note_depth();
  }

  std::deque<SealedCoin<F>> coins_;
  std::size_t consumed_ = 0;
  bool watched_ = false;
};

}  // namespace dprbg
