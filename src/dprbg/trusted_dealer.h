// Trusted-dealer genesis for the initial distributed seed.
//
// Section 1.2: "The initial set of coins can be obtained from a trusted
// third party, as in the case of Rabin [17] ... in our approach the
// services of a trusted dealer would be used only once, and for a small
// number of coins." This is that once-only dealer: it runs *before* the
// protocol (no network involvement) and hands each player its shares of a
// few sealed k-ary coins. Everything after genesis is self-sufficient
// (experiment E11 demonstrates this).

#pragma once

#include <vector>

#include "gf/field_concept.h"
#include "poly/polynomial.h"
#include "rng/chacha.h"
#include "sharing/shamir.h"
#include "coin/sealed_coin.h"

namespace dprbg {

// Deals `count` sealed coins to n players with threshold t. Result is
// indexed [player][coin]. The dealer's randomness is derived from `seed`;
// in a real deployment this is the trusted party's entropy.
template <FiniteField F>
std::vector<std::vector<SealedCoin<F>>> trusted_dealer_coins(
    int n, unsigned t, int count, std::uint64_t seed) {
  // A dedicated stream id keeps dealer randomness disjoint from the
  // players' own streams (which use stream = player id).
  Chacha rng(seed, /*stream=*/0xDEA1E4ull);
  std::vector<std::vector<SealedCoin<F>>> out(n);
  for (int c = 0; c < count; ++c) {
    const auto poly = Polynomial<F>::random(t, rng);
    const auto shares = deal_shares(poly, n);
    for (int i = 0; i < n; ++i) {
      out[i].push_back(SealedCoin<F>{shares[i], t});
    }
  }
  return out;
}

}  // namespace dprbg
