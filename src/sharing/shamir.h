// Shamir secret sharing [18], the paper's substrate for every sharing:
// "the secret is the value of a polynomial at the origin, while the
// players' shares are the values of the polynomial evaluated at the
// players' id's" (Section 1.3).

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "gf/field_concept.h"
#include "poly/berlekamp_welch.h"
#include "poly/polynomial.h"
#include "rng/chacha.h"

namespace dprbg {

// The field point at which player `player` (0-based) evaluates sharings.
// Points are 1..n: nonzero (so shares never reveal f(0)) and distinct for
// any n < 2^k.
template <FiniteField F>
F eval_point(int player) {
  return F::from_uint(static_cast<std::uint64_t>(player) + 1);
}

// Shares f(1), ..., f(n); index i belongs to player i (0-based).
template <FiniteField F>
std::vector<F> deal_shares(const Polynomial<F>& f, int n) {
  std::vector<F> shares(n);
  for (int i = 0; i < n; ++i) shares[i] = f(eval_point<F>(i));
  return shares;
}

// Fresh random degree-t sharing of `secret`.
template <FiniteField F>
std::vector<F> share_secret(F secret, unsigned t, int n, Chacha& rng) {
  return deal_shares(Polynomial<F>::random_with_secret(secret, t, rng), n);
}

// Reconstructs the secret f(0) from (point, share) pairs, tolerating up to
// `max_errors` corrupted shares via Berlekamp-Welch. Returns nullopt when
// no degree-<=t polynomial is consistent with enough of the shares.
template <FiniteField F>
std::optional<F> reconstruct_secret(std::span<const PointValue<F>> shares,
                                    unsigned t, unsigned max_errors) {
  auto f = berlekamp_welch<F>(shares, t, max_errors);
  if (!f) return std::nullopt;
  return (*f)(F::zero());
}

}  // namespace dprbg
