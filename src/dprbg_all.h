// Umbrella header: the library's entire public API.
//
//   #include "dprbg_all.h"          (with -I<repo>/src)
//   link against the dprbg::all CMake target.
//
// For finer-grained builds include the per-module headers directly; the
// layering is documented in README.md ("Architecture") and DESIGN.md.

#pragma once

// Substrates.
#include "common/check.h"
#include "common/metrics.h"
#include "common/serial.h"
#include "common/stats.h"
#include "gf/field_concept.h"
#include "gf/field_io.h"
#include "gf/fft_field.h"
#include "gf/gf2.h"
#include "gf/zq.h"
#include "poly/berlekamp_welch.h"
#include "poly/interpolate.h"
#include "poly/linalg.h"
#include "poly/polynomial.h"
#include "rng/chacha.h"
#include "net/adversary.h"
#include "net/cluster.h"
#include "net/msg.h"
#include "sharing/shamir.h"

// Agreement primitives.
#include "ba/binary_ba.h"
#include "ba/multivalued.h"
#include "ba/phase_king.h"
#include "ba/randomized_ba.h"
#include "gradecast/gradecast.h"

// Verifiable secret sharing (Section 3).
#include "vss/batch_vss.h"
#include "vss/soundness.h"
#include "vss/vss.h"

// Coin protocols (Section 4).
#include "coin/bitgen.h"
#include "coin/clique.h"
#include "coin/coin_expose.h"
#include "coin/coin_gen.h"
#include "coin/coin_gen_bc.h"
#include "coin/sealed_coin.h"

// The D-PRBG (Sections 1.1-1.2).
#include "dprbg/coin_pool.h"
#include "dprbg/dprbg.h"
#include "dprbg/proactive.h"
#include "dprbg/trusted_dealer.h"

// Baselines (Section 1.4 comparisons).
#include "baseline/cost_models.h"
#include "baseline/cut_and_choose_vss.h"
#include "baseline/dealer_stream.h"
#include "baseline/naive_coin.h"
