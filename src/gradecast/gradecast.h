// Grade-Cast (Feldman-Micali [14]), "the three level-outcome primitive":
// a sender distributes a value; every player outputs a value plus a
// confidence in {0, 1, 2}.
//
// Guarantees for n >= 3t + 1:
//   * honest sender: every honest player outputs the sender's value with
//     confidence 2;
//   * if any honest player outputs (v, 2), every honest player outputs v
//     with confidence >= 1 ("a confidence of 2 indicates that all other
//     honest players have seen the value");
//   * confidences of honest players differ by at most one level.
//
// Three rounds: the sender sends its value, everybody echoes, everybody
// echoes the echo-majority. Values are opaque byte strings; equality is
// byte equality.
//
// Message batching: with n grade-casts running in parallel (Coin-Gen
// step 7 has every player as a sender), the echo rounds would naively
// cost n^2 sends per player. Instead each player sends ONE message per
// recipient per round carrying its echoes for all n senders — n^2
// messages of size ~n|v| per round network-wide, which is the accounting
// Theorem 2 uses ("n^2 messages each of size ntk").

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/serial.h"
#include "common/trace.h"
#include "net/endpoint.h"
#include "net/msg.h"

namespace dprbg {

struct GradeCastResult {
  std::vector<std::uint8_t> value;  // empty when confidence == 0
  int confidence = 0;               // 0, 1, or 2
};

namespace gradecast_detail {

using MaybeValue = std::optional<std::vector<std::uint8_t>>;

// One batched echo message. Two wire layouts (net/msg.h picks the
// process default):
//   v0 — per sender, a presence flag byte and a u32 length: 5 bytes of
//        overhead per sender, which dominates echo bytes at small field
//        values (a GF(2^16) value is 2 bytes).
//   v1 — per sender, one canonical varint key: 0 = absent, else
//        value length + 1, followed by the raw value bytes. 1 byte of
//        overhead for values under 127 bytes — the byte-savings row in
//        bench/field_ops measures exactly this delta.
inline std::vector<std::uint8_t> encode_echoes(
    const std::vector<MaybeValue>& per_sender,
    WireVersion wire = wire_version()) {
  ByteWriter w;
  if (wire == WireVersion::kV0) {
    for (const auto& v : per_sender) {
      w.u8(v.has_value() ? 1 : 0);
      const std::uint32_t len =
          v ? static_cast<std::uint32_t>(v->size()) : 0;
      w.u32(len);
      if (v) w.bytes(*v);
    }
    return std::move(w).take();
  }
  for (const auto& v : per_sender) {
    if (!v) {
      w.uvarint(0);
      continue;
    }
    w.uvarint(static_cast<std::uint64_t>(v->size()) + 1);
    w.bytes(*v);
  }
  return std::move(w).take();
}

inline std::optional<std::vector<MaybeValue>> decode_echoes(
    const std::vector<std::uint8_t>& bytes, int n,
    std::size_t max_value_size, WireVersion wire = wire_version()) {
  // Every sender entry occupies at least 5 bytes under v0 (flag + u32
  // length) and at least 1 byte under v1 (the key varint); reject
  // batches that cannot possibly hold n entries before touching them,
  // so length validation always precedes allocation.
  const std::size_t min_entry = wire == WireVersion::kV0 ? 5 : 1;
  if (bytes.size() < static_cast<std::size_t>(n) * min_entry) {
    return std::nullopt;
  }
  ByteReader r(bytes);
  std::vector<MaybeValue> out(n);
  for (int s = 0; s < n; ++s) {
    if (wire == WireVersion::kV0) {
      const bool present = r.u8() != 0;
      const std::uint32_t len = r.u32();
      if (!r.ok() || len > max_value_size || len > r.remaining()) {
        return std::nullopt;
      }
      std::vector<std::uint8_t> value = r.bytes(len, max_value_size);
      if (!r.ok()) return std::nullopt;
      if (present) out[s] = std::move(value);
      continue;
    }
    const std::uint64_t key = r.uvarint();
    if (!r.ok()) return std::nullopt;
    if (key == 0) continue;  // absent
    const std::uint64_t len = key - 1;
    if (len > max_value_size || len > r.remaining()) return std::nullopt;
    std::vector<std::uint8_t> value =
        r.bytes(static_cast<std::size_t>(len), max_value_size);
    if (!r.ok()) return std::nullopt;
    out[s] = std::move(value);
  }
  if (!r.done()) return std::nullopt;
  return out;
}

}  // namespace gradecast_detail

// Runs n parallel grade-casts, one per sender, in 3 shared rounds.
// `my_value` is what this player grade-casts as a sender. Returns the
// result for each sender (index = sender id). `instance` disambiguates
// sequential invocations.
//
// Byte-bounded: a Byzantine value larger than `max_value_size` is treated
// as absent, so a faulty sender cannot blow up honest memory.
template <NetEndpoint Io>
std::vector<GradeCastResult> grade_cast_all(
    Io& io, const std::vector<std::uint8_t>& my_value,
    unsigned instance = 0, std::size_t max_value_size = 1u << 20) {
  using gradecast_detail::MaybeValue;
  const int n = io.n();
  const int t = io.t();
  // Pin the wire version for the whole invocation so a mid-protocol flip
  // of the process default cannot desynchronize encode and decode.
  const WireVersion wire = wire_version();
  const std::uint32_t send_tag =
      make_tag(ProtoId::kGradeCast, instance, 0);
  const std::uint32_t echo_tag =
      make_tag(ProtoId::kGradeCast, instance, 1);
  const std::uint32_t support_tag =
      make_tag(ProtoId::kGradeCast, instance, 2);

  // Round 1: every sender distributes its value.
  TraceSpan send_span(io, "gradecast", "send");
  io.send_all(send_tag, my_value);
  const Inbox& in1 = io.sync();
  send_span.close();
  std::vector<MaybeValue> received(n);
  for (int s = 0; s < n; ++s) {
    if (const Msg* m = in1.from(s, send_tag)) {
      if (m->body.size() <= max_value_size) received[s] = m->body;
    }
  }

  // Round 2: echo what we received from each sender (batched).
  TraceSpan echo_span(io, "gradecast", "echo");
  io.send_all(echo_tag, gradecast_detail::encode_echoes(received, wire));
  const Inbox& in2 = io.sync();
  echo_span.close();
  // echoes[s]: value -> count of players echoing it for sender s.
  std::vector<std::map<std::vector<std::uint8_t>, int>> echoes(n);
  for (const Msg* m : in2.with_tag(echo_tag)) {
    const auto decoded =
        gradecast_detail::decode_echoes(m->body, n, max_value_size, wire);
    if (!decoded) {
      // Malformed batch: drop the sender entirely, and score it.
      io.note_decode_failure(m->from);
      continue;
    }
    for (int s = 0; s < n; ++s) {
      if ((*decoded)[s]) ++echoes[s][*(*decoded)[s]];
    }
  }

  // Round 3: support the value echoed by >= n - t players, if any
  // (batched like round 2).
  std::vector<MaybeValue> supports(n);
  for (int s = 0; s < n; ++s) {
    for (const auto& [value, count] : echoes[s]) {
      if (count >= n - t) {
        supports[s] = value;
        break;  // at most one value can reach n - t with n >= 3t+1
      }
    }
  }
  TraceSpan support_span(io, "gradecast", "support");
  io.send_all(support_tag, gradecast_detail::encode_echoes(supports, wire));
  const Inbox& in3 = io.sync();
  support_span.close();

  std::vector<GradeCastResult> out(n);
  std::vector<std::map<std::vector<std::uint8_t>, int>> votes(n);
  for (const Msg* m : in3.with_tag(support_tag)) {
    const auto decoded =
        gradecast_detail::decode_echoes(m->body, n, max_value_size, wire);
    if (!decoded) {
      io.note_decode_failure(m->from);
      continue;
    }
    for (int s = 0; s < n; ++s) {
      if ((*decoded)[s]) ++votes[s][*(*decoded)[s]];
    }
  }
  for (int s = 0; s < n; ++s) {
    const std::pair<const std::vector<std::uint8_t>, int>* best = nullptr;
    for (const auto& entry : votes[s]) {
      if (best == nullptr || entry.second > best->second) best = &entry;
    }
    if (best == nullptr) continue;
    if (best->second >= n - t) {
      out[s] = {best->first, 2};
    } else if (best->second >= t + 1) {
      out[s] = {best->first, 1};
    }
  }
  return out;
}

// Single-sender convenience wrapper (used by tests): only `sender`
// contributes a value; everyone participates in the echo rounds.
template <NetEndpoint Io>
GradeCastResult grade_cast(Io& io, int sender,
                           const std::vector<std::uint8_t>& value,
                           unsigned instance = 0) {
  std::vector<std::uint8_t> mine;
  if (io.id() == sender) mine = value;
  return grade_cast_all(io, mine, instance)[sender];
}

}  // namespace dprbg
