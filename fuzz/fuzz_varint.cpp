// libFuzzer entry point for the canonical varint codec (common/varint.h).

#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return dprbg::fuzz::varint_one(data, size);
}
