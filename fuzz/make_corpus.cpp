// Regenerates the checked-in seed corpora under fuzz/corpus/.
//
//   make_corpus <corpus-root>
//
// Seeds are deterministic: boundary varints, valid and malformed
// envelope headers of both wire versions, and well-formed protocol
// bodies for every decoder the dispatching target covers — so the
// fuzzers start from inputs that already reach the deep accept paths,
// and the plain-build corpus replay (tests/fuzz_corpus_test.cpp)
// exercises both accept and reject branches of every decoder.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_targets.h"

namespace {

namespace fs = std::filesystem;

void write_seed(const fs::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> varint_of(std::uint64_t v) {
  std::vector<std::uint8_t> out;
  dprbg::append_varint(out, v);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_corpus <corpus-root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  using dprbg::ByteWriter;
  using dprbg::EnvelopeHeader;
  using dprbg::WireVersion;

  // --- varint -------------------------------------------------------------
  {
    const fs::path dir = root / "varint";
    write_seed(dir, "zero", varint_of(0));
    write_seed(dir, "one_byte_max", varint_of(127));
    write_seed(dir, "two_byte_min", varint_of(128));
    write_seed(dir, "boundary_2_14", varint_of((1ull << 14) - 1));
    write_seed(dir, "boundary_2_32", varint_of(1ull << 32));
    write_seed(dir, "u64_max", varint_of(~0ull));
    write_seed(dir, "overlong_zero", {0x80, 0x00});
    write_seed(dir, "truncated_run", {0xFF, 0xFF, 0xFF});
    write_seed(dir, "overflow_10_bytes",
               {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F});
    // 8 bytes so the differential direction in the target kicks in.
    write_seed(dir, "differential", {1, 2, 3, 4, 5, 6, 7, 8});
  }

  // --- envelope_header ----------------------------------------------------
  {
    const fs::path dir = root / "envelope_header";
    EnvelopeHeader h;
    h.from = 3;
    h.tag = dprbg::make_tag(dprbg::ProtoId::kGradeCast, 2, 1);
    h.batch = 7;
    h.body_len = 96;
    for (const WireVersion v : {WireVersion::kV0, WireVersion::kV1}) {
      ByteWriter w;
      // The target reads data[0] & 1 as the version selector.
      w.u8(v == WireVersion::kV1 ? 1 : 0);
      dprbg::encode_envelope_header(w, h, v);
      write_seed(dir,
                 v == WireVersion::kV1 ? "v1_gradecast" : "v0_gradecast",
                 w.data());
    }
    {
      ByteWriter w;
      w.u8(1);
      w.u8(0x17);  // v1 with nonzero reserved flags: must be rejected
      w.u8(3);
      write_seed(dir, "v1_bad_flags", w.data());
    }
    {
      ByteWriter w;
      w.u8(1);
      w.u8(0x20);  // unknown version nibble
      write_seed(dir, "v1_bad_version", w.data());
    }
    write_seed(dir, "v0_truncated", {0x00, 0x01, 0x02, 0x03});
    {
      ByteWriter w;
      w.u8(1);
      w.u8(0x10);
      w.bytes(varint_of(5));
      w.u8(0x80);  // truncated varint tag
      write_seed(dir, "v1_truncated_tag", w.data());
    }
    // Maximal field values: every header field at its 32-bit ceiling.
    {
      EnvelopeHeader big;
      big.from = 0xFFFFFFFFu;
      big.tag = 0xFFFFFFFFu;
      big.batch = 0xFFFFu;
      big.body_len = 0xFFFFFFFFu;
      for (const WireVersion v : {WireVersion::kV0, WireVersion::kV1}) {
        ByteWriter w;
        w.u8(v == WireVersion::kV1 ? 1 : 0);
        dprbg::encode_envelope_header(w, big, v);
        write_seed(dir, v == WireVersion::kV1 ? "v1_max_fields"
                                              : "v0_max_fields",
                   w.data());
      }
    }
    // v1 header whose varint `from` overflows 32 bits: must be rejected.
    {
      ByteWriter w;
      w.u8(1);
      w.u8(0x10);
      w.bytes(varint_of(0x1FFFFFFFFull));
      w.bytes(varint_of(1));
      w.bytes(varint_of(1));
      w.bytes(varint_of(1));
      write_seed(dir, "v1_from_overflow", w.data());
    }
  }

  // --- protocol_decoders --------------------------------------------------
  {
    using F = dprbg::GF2_64;
    const fs::path dir = root / "protocol_decoders";
    // data[0] selects the decoder, data[1] parameterizes, rest is body.
    auto with_prefix = [](std::uint8_t sel, std::uint8_t param,
                          const std::vector<std::uint8_t>& body) {
      std::vector<std::uint8_t> out{sel, param};
      out.insert(out.end(), body.begin(), body.end());
      return out;
    };
    // Grade-Cast echoes, both versions, n == 4 (param 3 -> 1 + 3 % 16).
    std::vector<dprbg::gradecast_detail::MaybeValue> echoes(4);
    echoes[0] = std::vector<std::uint8_t>{0xAA, 0xBB};
    echoes[2] = std::vector<std::uint8_t>{};
    echoes[3] = std::vector<std::uint8_t>(8, 0x42);
    write_seed(dir, "echoes_v0",
               with_prefix(0, 3,
                           dprbg::gradecast_detail::encode_echoes(
                               echoes, WireVersion::kV0)));
    write_seed(dir, "echoes_v1",
               with_prefix(1, 3,
                           dprbg::gradecast_detail::encode_echoes(
                               echoes, WireVersion::kV1)));
    write_seed(dir, "echoes_v1_short", with_prefix(1, 3, {0, 0, 0}));
    // Clique message for n == 13, t == 2: two entries of 1 + 3*8 bytes.
    {
      ByteWriter w;
      w.u8(2);
      for (const std::uint8_t j : {std::uint8_t{1}, std::uint8_t{5}}) {
        w.u8(j);
        for (int c = 0; c < 3; ++c) {
          w.u64(0x0101010101010101ull * (j + 1) + static_cast<unsigned>(c));
        }
      }
      write_seed(dir, "clique_two_entries", with_prefix(2, 0, w.data()));
    }
    write_seed(dir, "clique_bad_count", with_prefix(2, 0, {0xFF, 0x00}));
    // Combo batch for n == 7: exactly 7 * (1 + kBytes) bytes.
    {
      std::vector<std::uint8_t> body(7 * (1 + F::kBytes), 0);
      for (int i = 0; i < 7; ++i) {
        body[static_cast<std::size_t>(i) * (1 + F::kBytes)] =
            static_cast<std::uint8_t>(i % 2);
      }
      write_seed(dir, "combo_batch_exact", with_prefix(3, 0, body));
      body.pop_back();
      write_seed(dir, "combo_batch_short", with_prefix(3, 0, body));
    }
    // Field-element row: param 4 -> count 4, body exactly 4 elements.
    write_seed(dir, "elem_row_exact",
               with_prefix(4, 4, std::vector<std::uint8_t>(4 * F::kBytes, 7)));
    // ByteReader torture: u8 + uvarint + u64_vec + bytes.
    {
      ByteWriter w;
      w.u8(0x5A);
      w.uvarint(300);
      w.u64_vec(std::vector<std::uint64_t>{1, 2, 3});
      w.bytes(std::vector<std::uint8_t>(5, 0xEE));
      write_seed(dir, "reader_mixed", with_prefix(5, 5, w.data()));
    }
    write_seed(dir, "reader_hostile_len",
               with_prefix(5, 64, {0x00, 0x01, 0xFF, 0xFF, 0xFF, 0xFF}));
  }

  std::printf("corpus written under %s\n", root.string().c_str());
  return 0;
}
