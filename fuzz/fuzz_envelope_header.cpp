// libFuzzer entry point for the v0/v1 envelope header codec (net/msg.h).

#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return dprbg::fuzz::envelope_header_one(data, size);
}
