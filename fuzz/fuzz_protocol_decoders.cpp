// libFuzzer entry point dispatching over every length-validated protocol
// decoder (Grade-Cast echoes v0/v1, Coin-Gen clique messages, Bit-Gen
// combination batches, field-element rows, and the defensive ByteReader).

#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return dprbg::fuzz::protocol_decoders_one(data, size);
}
