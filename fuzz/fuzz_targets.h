// Shared fuzz-target bodies.
//
// Each target is an ordinary function `<name>_one(data, size)` so the
// same body is reachable three ways:
//   * `fuzz_<name>.cpp` wraps it in LLVMFuzzerTestOneInput for libFuzzer
//     (clang) or the standalone driver (gcc, standalone_main.cpp);
//   * `tests/fuzz_corpus_test.cpp` replays the checked-in corpora
//     through it in the plain tier-1 build, so every crash-found input
//     regresses without needing a fuzzing toolchain;
//   * `make_corpus.cpp` uses the same decoders to sanity-check seeds.
//
// Targets assert *invariants*, not outcomes: decoding arbitrary bytes
// may fail, but it must fail cleanly (no UB — the sanitizers' job), and
// when it succeeds the decoded value must re-encode canonically and
// respect every documented bound. FUZZ_CHECK traps on violation, which
// libFuzzer, the standalone driver, and gtest all surface as a crash.

#pragma once

#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "coin/bitgen.h"
#include "coin/coin_gen.h"
#include "common/serial.h"
#include "common/varint.h"
#include "gf/field_io.h"
#include "gf/gf2.h"
#include "gradecast/gradecast.h"
#include "net/msg.h"

#define FUZZ_CHECK(cond)            \
  do {                              \
    if (!(cond)) __builtin_trap();  \
  } while (0)

namespace dprbg::fuzz {

// --- varint ---------------------------------------------------------------
//
// Accepted inputs must round-trip byte-identically (canonicality) and
// agree with varint_size; and every encodable value must decode back.
inline int varint_one(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> in(data, size);
  const VarintDecode d = read_varint(in);
  if (d.ok) {
    FUZZ_CHECK(d.bytes >= 1 && d.bytes <= kMaxVarintBytes);
    FUZZ_CHECK(d.bytes <= size);
    FUZZ_CHECK(varint_size(d.value) == d.bytes);
    std::vector<std::uint8_t> re;
    append_varint(re, d.value);
    FUZZ_CHECK(re.size() == d.bytes);
    for (std::size_t i = 0; i < re.size(); ++i) FUZZ_CHECK(re[i] == data[i]);
  }
  // Differential direction: treat the first 8 bytes as a value; its
  // encoding must decode to itself with full consumption.
  if (size >= 8) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
    }
    std::vector<std::uint8_t> enc;
    append_varint(enc, v);
    FUZZ_CHECK(enc.size() == varint_size(v));
    const VarintDecode back = read_varint(enc);
    FUZZ_CHECK(back.ok && back.value == v && back.bytes == enc.size());
  }
  return 0;
}

// --- envelope header ------------------------------------------------------
//
// Both framings must decode arbitrary bytes cleanly; any accepted header
// must re-encode to exactly the consumed bytes and agree with
// envelope_header_bytes.
inline int envelope_header_one(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const WireVersion v =
      (data[0] & 1) != 0 ? WireVersion::kV1 : WireVersion::kV0;
  const std::span<const std::uint8_t> payload(data + 1, size - 1);
  ByteReader r(payload);
  const auto h = decode_envelope_header(r, v);
  if (h) {
    const std::size_t consumed = payload.size() - r.remaining();
    ByteWriter w;
    encode_envelope_header(w, *h, v);
    FUZZ_CHECK(w.size() == consumed);
    FUZZ_CHECK(envelope_header_bytes(*h, v) == consumed);
    for (std::size_t i = 0; i < consumed; ++i) {
      FUZZ_CHECK(w.data()[i] == payload[i]);
    }
    if (v == WireVersion::kV1) FUZZ_CHECK(h->flags == 0);
    if (v == WireVersion::kV0) FUZZ_CHECK(consumed == kV0HeaderBytes);
    FUZZ_CHECK(unwire_tag(wire_tag(h->tag)) == h->tag);
  }
  return 0;
}

// --- protocol decoders ----------------------------------------------------
//
// One dispatching target over every length-validated protocol decoder:
// the Grade-Cast echo batch (both wire versions), the Coin-Gen clique
// message, the Bit-Gen combination batch, the field-element row, and the
// defensive ByteReader itself. data[0] selects the decoder, data[1]
// parameterizes it, the rest is the hostile body.
inline int protocol_decoders_one(const std::uint8_t* data, std::size_t size) {
  using F = GF2_64;
  if (size < 2) return 0;
  const std::uint8_t sel = data[0] % 6;
  const std::uint8_t param = data[1];
  const std::vector<std::uint8_t> body(data + 2, data + size);
  constexpr std::size_t kMaxValue = 1u << 10;
  switch (sel) {
    case 0:
    case 1: {
      const WireVersion wire = sel == 0 ? WireVersion::kV0 : WireVersion::kV1;
      const int n = 1 + param % 16;
      const auto decoded =
          gradecast_detail::decode_echoes(body, n, kMaxValue, wire);
      if (decoded) {
        FUZZ_CHECK(static_cast<int>(decoded->size()) == n);
        std::size_t present = 0;
        for (const auto& v : *decoded) {
          if (v) {
            FUZZ_CHECK(v->size() <= kMaxValue);
            ++present;
          }
        }
        // v1 is canonical: re-encoding reproduces the exact bytes. (v0 is
        // not — any nonzero flag byte means "present", and an absent
        // entry may still carry ignored value bytes.)
        if (wire == WireVersion::kV1) {
          const auto re = gradecast_detail::encode_echoes(*decoded, wire);
          FUZZ_CHECK(re.size() == body.size());
          for (std::size_t i = 0; i < re.size(); ++i) {
            FUZZ_CHECK(re[i] == body[i]);
          }
        }
        (void)present;
      }
      break;
    }
    case 2: {
      const int n = 13;
      const unsigned t = 2;
      const auto msg = coin_gen_detail::decode_clique_msg<F>(body, n, t);
      if (msg) {
        FUZZ_CHECK(msg->clique.size() <= static_cast<std::size_t>(n));
        for (int m : msg->clique) FUZZ_CHECK(m >= 0 && m < n);
        for (const auto& [j, poly] : msg->polys) {
          FUZZ_CHECK(j >= 0 && j < n);
          FUZZ_CHECK(poly.degree() <= static_cast<int>(t));
        }
      }
      break;
    }
    case 3: {
      const int n = 7;
      const auto batch = bitgen_detail::decode_combo_batch<F>(body, n);
      // Shape-validated: accepted iff exactly n entries of 1 + kBytes.
      FUZZ_CHECK(batch.has_value() ==
                 (body.size() == static_cast<std::size_t>(n) * (1 + F::kBytes)));
      break;
    }
    case 4: {
      const std::size_t count = param % 9;
      const auto row = decode_elem_row<F>(body, count);
      FUZZ_CHECK(row.has_value() == (body.size() == count * F::kBytes));
      if (row) FUZZ_CHECK(row->size() == count);
      break;
    }
    case 5: {
      // The defensive reader itself: arbitrary interleaved reads never
      // read out of bounds and fail permanently once failed.
      ByteReader r(body);
      (void)r.u8();
      (void)r.uvarint();
      const auto vec = r.u64_vec(/*max_len=*/256);
      FUZZ_CHECK(vec.size() <= 256);
      const auto raw = r.bytes(param, /*max_len=*/64);
      FUZZ_CHECK(raw.size() <= 64);
      if (!r.ok()) {
        FUZZ_CHECK(r.remaining() == 0);  // failed readers park at the end
        FUZZ_CHECK(!r.done());
      }
      break;
    }
    default:
      break;
  }
  return 0;
}

}  // namespace dprbg::fuzz
