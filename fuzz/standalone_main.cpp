// Standalone driver for fuzz targets when the toolchain has no libFuzzer
// (the baked-in compiler is gcc). Linked into each fuzz_* binary instead
// of -fsanitize=fuzzer; speaks enough of the libFuzzer CLI for
// tools/check.sh to treat both flavors identically:
//
//   fuzz_varint CORPUS_DIR...            replay every file, then exit
//   fuzz_varint -max_total_time=N DIR... replay, then mutate corpus
//                                        inputs for ~N seconds
//   fuzz_varint -seed=S ...              deterministic mutation stream
//
// Mutation is a seeded xorshift loop over the corpus (bit flips, byte
// sets, truncations, extensions, splices) — no coverage feedback, but
// under ASan/UBSan it gives the smoke gate real teeth: every mutant runs
// through the same invariant checks a libFuzzer build would.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

constexpr std::size_t kMaxInput = 1u << 16;

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void mutate(std::vector<std::uint8_t>& buf, std::uint64_t& rng) {
  const int kind = static_cast<int>(xorshift(rng) % 5);
  switch (kind) {
    case 0:  // bit flip
      if (!buf.empty()) {
        buf[xorshift(rng) % buf.size()] ^=
            static_cast<std::uint8_t>(1u << (xorshift(rng) % 8));
      }
      break;
    case 1:  // byte set
      if (!buf.empty()) {
        buf[xorshift(rng) % buf.size()] =
            static_cast<std::uint8_t>(xorshift(rng));
      }
      break;
    case 2:  // truncate
      if (!buf.empty()) buf.resize(xorshift(rng) % buf.size());
      break;
    case 3:  // extend
      if (buf.size() < kMaxInput) {
        const std::size_t add = 1 + xorshift(rng) % 16;
        for (std::size_t i = 0; i < add && buf.size() < kMaxInput; ++i) {
          buf.push_back(static_cast<std::uint8_t>(xorshift(rng)));
        }
      }
      break;
    default:  // rotate a window (cheap splice)
      if (buf.size() >= 2) {
        const std::size_t a = xorshift(rng) % buf.size();
        const std::size_t b = xorshift(rng) % buf.size();
        std::swap(buf[a], buf[b]);
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long max_total_time = 0;
  std::uint64_t seed = 0x5EEDF00Dull;
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::strtol(arg.c_str() + 16, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(
          std::strtoull(arg.c_str() + 6, nullptr, 10));
    } else if (arg.rfind("-", 0) == 0) {
      // Ignore other libFuzzer flags (-runs=, -print_final_stats=, ...).
    } else if (std::filesystem::is_directory(arg)) {
      for (const auto& e :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (e.is_regular_file()) inputs.push_back(e.path());
      }
    } else if (std::filesystem::is_regular_file(arg)) {
      inputs.emplace_back(arg);
    }
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(inputs.size());
  for (const auto& p : inputs) corpus.push_back(read_file(p));

  std::uint64_t runs = 0;
  for (const auto& buf : corpus) {
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
    ++runs;
  }

  if (max_total_time > 0) {
    if (corpus.empty()) corpus.push_back({});  // mutate from scratch
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(max_total_time);
    std::size_t next = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      // A small batch between clock reads keeps the loop throughput-bound.
      for (int b = 0; b < 512; ++b) {
        std::vector<std::uint8_t> buf = corpus[next];
        next = (next + 1) % corpus.size();
        const int m = 1 + static_cast<int>(xorshift(seed) % 4);
        for (int i = 0; i < m; ++i) mutate(buf, seed);
        LLVMFuzzerTestOneInput(buf.data(), buf.size());
        ++runs;
      }
    }
  }

  std::printf("standalone fuzz driver: %llu runs, %zu corpus inputs\n",
              static_cast<unsigned long long>(runs), corpus.size());
  return 0;
}
