// Randomized Byzantine agreement powered by the D-PRBG — the application
// the paper leads with ("Powerful applications in fault-tolerant
// distributed computing are today being held up by the inefficiency of
// existing protocols", Section 1).
//
// 11 players (t = 2) must agree whether to commit a distributed
// transaction. Two players are Byzantine and vote inconsistently; the
// honest majority starts split. Each BA phase consumes one shared coin
// from the generator — exactly the "coins in bulk" workload the D-PRBG
// amortizes.
//
// Build & run:  ./build/examples/randomized_agreement

#include <cstdio>
#include <vector>

#include "ba/randomized_ba.h"
#include "dprbg/dprbg.h"
#include "dprbg/trusted_dealer.h"
#include "gf/gf2.h"
#include "net/cluster.h"

using namespace dprbg;

int main() {
  using F = GF2_64;
  const int n = 11, t = 2;
  std::printf(
      "randomized agreement demo: n=%d, t=%d Byzantine, common coins from "
      "the D-PRBG\n\n",
      n, t);

  auto genesis = trusted_dealer_coins<F>(n, t, 8, /*seed=*/42);
  std::vector<int> inputs = {1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  std::vector<int> decisions(n, -1);
  std::vector<unsigned> phases(n, 0), coins(n, 0);

  Cluster cluster(n, t, 42);
  cluster.run(
      [&](PartyIo& io) {
        DPrbg<F>::Options opts;
        opts.batch_size = 48;
        opts.reserve = 4;
        DPrbg<F> prbg(opts, genesis[io.id()]);
        const auto result = randomized_ba(
            io, inputs[io.id()],
            [&](PartyIo& pio) { return prbg.next_bit(pio); });
        if (result.decision) decisions[io.id()] = *result.decision;
        phases[io.id()] = result.phases_run;
        coins[io.id()] = result.coins_consumed;
      },
      /*faulty=*/{3, 8},
      [&](PartyIo& io) {
        // Byzantine: vote differently to every receiver, every phase, and
        // contribute nothing to the coin exposures.
        for (unsigned phase = 0; phase < 20; ++phase) {
          const auto tag = make_tag(ProtoId::kRandomizedBa, 0, phase & 0xFF);
          for (int to = 0; to < io.n(); ++to) {
            io.send(to, tag, {static_cast<std::uint8_t>((to + phase) % 2)});
          }
          io.sync();  // votes delivered
          io.sync();  // coin exposure round
        }
      });

  std::printf("honest players' inputs were split; Byzantine players 3 and "
              "8 equivocated.\n\n");
  int agreed = -1;
  bool agreement = true;
  for (int i = 0; i < n; ++i) {
    if (i == 3 || i == 8) {
      std::printf("  player %2d: (Byzantine)\n", i);
      continue;
    }
    std::printf("  player %2d: input=%d decided=%d after %u phases (%u "
                "coins consumed)\n",
                i, inputs[i], decisions[i], phases[i], coins[i]);
    if (agreed == -1) agreed = decisions[i];
    if (decisions[i] != agreed) agreement = false;
  }
  std::printf("\nagreement among honest players: %s (value %d)\n",
              agreement ? "OK" : "VIOLATED", agreed);
  return agreement ? 0 : 1;
}
